(* Theorem 2.1 made concrete: the PARTITION reduction gadget.

   Static placement on hierarchical bus networks is NP-hard already on a
   4-ary tree of height 1. This example encodes PARTITION instances into
   the paper's gadget (processors a, b, s, s̄ around one bus; objects
   x_1..x_n and y) and shows the congestion-4k threshold: a placement of
   congestion 4k exists iff the items split into two halves of equal sum.

   Run with:  dune exec examples/partition_gadget.exe *)

module Partition = Hbn_workload.Partition
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Gadget_opt = Hbn_exact.Gadget_opt
module Brute_force = Hbn_exact.Brute_force
module Table = Hbn_util.Table

let show name items =
  let inst = Partition.make items in
  let g = Partition.gadget inst in
  let w = g.Partition.workload in
  Printf.printf "\n%s: items = {%s}, sum = 2k = %d\n" name
    (String.concat ", " (List.map string_of_int items))
    (Partition.sum inst);
  (match Partition.find_subset inst with
  | Some subset ->
    Printf.printf "  PARTITION solvable: subset {%s} sums to k = %d\n"
      (String.concat ", "
         (List.map (fun i -> string_of_int (List.nth items i)) subset))
      g.Partition.k;
    let witness =
      Placement.single w (Partition.yes_placement g subset)
    in
    Printf.printf "  witness placement (y on a, x_i on s / s̄): congestion %.0f = 4k\n"
      (Placement.congestion w witness)
  | None ->
    Printf.printf "  PARTITION unsolvable: no subset sums to k = %d\n"
      g.Partition.k);
  let opt = Gadget_opt.family_optimum inst in
  Printf.printf "  optimal congestion (subset-sum DP):   %d %s\n" opt
    (if opt = 4 * g.Partition.k then "(= 4k)" else "(> 4k)");
  (match Brute_force.optimum ~budget:3_000_000 w ~candidates:`Leaves with
  | bf ->
    Printf.printf "  optimal congestion (branch & bound): %.0f\n"
      bf.Brute_force.congestion
  | exception Brute_force.Too_large _ ->
    print_endline "  (instance too large for exhaustive search)");
  let res = Strategy.run w in
  let c = Placement.congestion w res.Strategy.placement in
  Printf.printf "  extended-nibble strategy:             %.0f (ratio %.2f <= 7)\n"
    c (c /. float_of_int opt)

let () =
  print_endline "Theorem 2.1: NP-hardness on a 4-ary tree of height 1";
  print_endline "====================================================";
  show "balanced" [ 3; 1; 1; 2; 3; 2 ];
  show "unsolvable" [ 1; 1; 4 ];
  show "unsolvable (even)" [ 2; 2; 2; 10 ];
  show "singletons" [ 1; 1; 1; 1; 1; 1 ];
  show "larger" [ 7; 5; 4; 3; 2; 2; 1 ];
  print_endline
    "\nThe decision threshold at 4k is what makes computing optimal \
     placements NP-hard once buses cannot hold copies; the nibble \
     strategy's tree model (inner copies allowed) stays solvable in \
     linear time.";
  (* Show the contrast: the tree-model optimum for the same workloads. *)
  let inst = Partition.make [ 1; 1; 4 ] in
  let g = Partition.gadget inst in
  let tree_opt =
    Brute_force.optimum g.Partition.workload ~candidates:`All_nodes
  in
  Printf.printf
    "e.g. 'unsolvable': bus-model optimum %d vs tree-model optimum %.0f \
     (copies on the bus allowed)\n"
    (Gadget_opt.family_optimum inst)
    tree_opt.Brute_force.congestion
