(* Capacity planning: how much processor memory does low congestion need?

   The paper's companion work ([13] in its bibliography) extends
   congestion-driven data management to memory-limited nodes. This example
   sizes the per-workstation object store of the SCI cluster from the
   sci_cluster example: sweep the per-processor capacity and watch the
   congestion/replication trade-off, then find the knee.

   Run with:  dune exec examples/capacity_planning.exe *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Capacitated = Hbn_core.Capacitated
module Lower_bounds = Hbn_exact.Lower_bounds
module Table = Hbn_util.Table

let () =
  let cabinet =
    { Builders.ring_bandwidth = 4;
      members = List.init 4 (fun _ -> Builders.Ring_processor) }
  in
  let cluster =
    { Builders.ring_bandwidth = 8;
      members =
        [ Builders.Ring_processor; Builders.Ring_processor;
          Builders.Sub_ring (2, cabinet); Builders.Sub_ring (2, cabinet);
          Builders.Sub_ring (2, cabinet) ] }
  in
  let network = Builders.of_ring cluster in
  let prng = Prng.create 1717 in
  let pages = 40 in
  let w =
    Generators.zipf_popularity ~prng network ~objects:pages
      ~requests_per_leaf:30 ~exponent:1.1 ~write_fraction:0.1
  in
  let res = Strategy.run w in
  let unconstrained = Placement.congestion w res.Strategy.placement in
  Printf.printf
    "%d shared pages on %d workstations; unconstrained congestion %.1f (LB %.1f)\n\n"
    pages (Tree.num_leaves network) unconstrained (Lower_bounds.combined w);
  let t =
    Table.create
      [ "capacity"; "total copies"; "moved"; "merged"; "congestion"; "penalty" ]
  in
  List.iter
    (fun cap ->
      match
        Capacitated.apply w ~capacity:(fun _ -> cap) res.Strategy.placement
      with
      | out ->
        let p = out.Capacitated.placement in
        let copies =
          Array.fold_left (fun a op -> a + List.length op.Placement.copies) 0 p
        in
        let c = Placement.congestion w p in
        Table.add_row t
          [
            string_of_int cap;
            string_of_int copies;
            string_of_int out.Capacitated.relocations;
            string_of_int out.Capacitated.merges;
            Table.fmt_float ~digits:1 c;
            Table.fmt_ratio c unconstrained;
          ]
      | exception Capacitated.Infeasible msg ->
        Table.add_row t [ string_of_int cap; "-"; "-"; "-"; "infeasible"; msg ])
    [ 64; 16; 8; 6; 4; 3; 2 ];
  Table.print t;
  print_endline
    "\nThe knee of the curve tells the cluster architect how much object\n\
     store per workstation buys near-unconstrained congestion; below it,\n\
     evictions strip replicas from read-shared pages and the remaining\n\
     copies' switches saturate."
