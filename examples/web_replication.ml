(* Replicating WWW pages on a hierarchical provider network.

   The paper's introduction names "pages in the WWW" as a target
   application: a provider tree (backbone, regional networks, access
   networks, servers) carries requests to pages with Zipf popularity.
   This example sweeps the write fraction (page update rate) and shows
   how the extended-nibble strategy adapts the replication degree: few
   writes -> wide replication (reads served locally); many writes ->
   shrinking copy sets (updates get expensive).

   Run with:  dune exec examples/web_replication.exe *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Baselines = Hbn_baselines.Baselines
module Lower_bounds = Hbn_exact.Lower_bounds
module Table = Hbn_util.Table

let () =
  (* A provider hierarchy: backbone of 3 regions x 3 access networks x 3
     servers, with capacity scaled to the subtree it serves. *)
  let network =
    Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Scaled_by_subtree 1)
  in
  Printf.printf
    "provider tree: %d servers, %d networks, height %d, fat-tree bandwidths\n\n"
    (Tree.num_leaves network)
    (List.length (Tree.buses network))
    (Tree.height network);
  let t =
    Table.create
      [ "write%"; "copies/page"; "C ext"; "C owner"; "C full-repl"; "LB";
        "ext/LB" ]
  in
  List.iter
    (fun write_fraction ->
      let prng = Prng.create 3000 in
      let w =
        Generators.zipf_popularity ~prng network ~objects:30
          ~requests_per_leaf:40 ~exponent:1.1 ~write_fraction
      in
      let res = Strategy.run w in
      let p = res.Strategy.placement in
      let pages_with_copies =
        Array.to_list p |> List.filter (fun op -> op.Placement.copies <> [])
      in
      let avg_copies =
        float_of_int
          (List.fold_left
             (fun a op -> a + List.length op.Placement.copies)
             0 pages_with_copies)
        /. float_of_int (max 1 (List.length pages_with_copies))
      in
      let c = Placement.congestion w p in
      let lb = Lower_bounds.combined w in
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (write_fraction *. 100.);
          Table.fmt_float ~digits:1 avg_copies;
          Table.fmt_float c;
          Table.fmt_float (Placement.congestion w (Baselines.owner w));
          Table.fmt_float (Placement.congestion w (Baselines.full_replication w));
          Table.fmt_float lb;
          Table.fmt_ratio c lb;
        ])
    [ 0.0; 0.02; 0.05; 0.1; 0.25; 0.5; 0.9 ];
  Table.print t;
  print_endline
    "\nRead-mostly pages are replicated widely (full replication is also \
     fine there); as updates grow, the strategy contracts each page onto \
     few servers while single-home placement (owner) pays for remote reads.";
  print_endline
    "The crossover between full replication and owner placement is exactly \
     what the extended-nibble strategy navigates per page, with a proven \
     factor-7 guarantee."
