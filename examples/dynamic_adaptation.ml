(* Online adaptation: the dynamic companion strategy at work.

   Section 1.3 of the paper discusses dynamic data management, where no
   access frequencies are known in advance (its reference [10] proves a
   competitive ratio of 3 for trees). This example runs the reconstructed
   online strategy on phase-structured traffic - repeated cycles of "many
   processors read a result object" followed by "one producer rewrites it"
   - and compares against (a) the exact per-edge offline optimum and
   (b) the best static placement in hindsight.

   Run with:  dune exec examples/dynamic_adaptation.exe *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Nibble = Hbn_nibble.Nibble
module Request = Hbn_dynamic.Request
module Online = Hbn_dynamic.Online
module Offline = Hbn_dynamic.Offline
module Table = Hbn_util.Table

let () =
  let network =
    Builders.balanced ~arity:3 ~height:2 ~profile:(Builders.Uniform 2)
  in
  let leaves = Array.of_list (Tree.leaves network) in
  let producer = leaves.(0) in
  let consumers = [ leaves.(2); leaves.(4); leaves.(6); leaves.(8) ] in
  Printf.printf
    "network: %d processors; producer P%d, consumers %s\n\n"
    (Tree.num_leaves network) producer
    (String.concat ", " (List.map (Printf.sprintf "P%d") consumers));
  let t =
    Table.create
      [ "phase len"; "requests"; "online load"; "offline OPT"; "static best";
        "online/OPT"; "repl"; "migr" ]
  in
  List.iter
    (fun len ->
      let prng = Prng.create 99 in
      let seq =
        Request.phases ~prng network ~readers:consumers ~writer:producer
          ~phase_length:len ~phases:10
      in
      let dyn = Online.run network ~initial:producer seq in
      let online = Array.fold_left ( + ) 0 dyn.Online.edge_loads in
      let opt =
        Array.fold_left ( + ) 0
          (Offline.per_edge_optimum network ~initial:producer seq)
      in
      (* Best static placement in hindsight: nibble on the aggregated
         frequencies (per-edge optimal over all static placements). *)
      let w = Workload.empty network ~objects:1 in
      List.iter
        (fun (r : Request.t) ->
          let v = r.Request.node in
          match r.Request.kind with
          | Request.Read ->
            Workload.set_read w ~obj:0 v (Workload.reads w ~obj:0 v + 1)
          | Request.Write ->
            Workload.set_write w ~obj:0 v (Workload.writes w ~obj:0 v + 1))
        seq;
      let static = Array.fold_left ( + ) 0 (Nibble.edge_loads w) in
      Table.add_row t
        [
          string_of_int len;
          string_of_int (List.length seq);
          string_of_int online;
          string_of_int opt;
          string_of_int static;
          Table.fmt_ratio (float_of_int online) (float_of_int opt);
          string_of_int dyn.Online.replications;
          string_of_int dyn.Online.migrations;
        ])
    [ 1; 2; 5; 10; 30; 100 ];
  Table.print t;
  print_endline
    "\nPhase-structured traffic is the adversarial read/write alternation \
     at phase granularity: online and offline both pay once per phase \
     change (replicate for the readers, contract for the writer), so the \
     online strategy tracks the offline optimum at exactly the factor 3 \
     proven for trees - independent of phase length. Static placements \
     cannot adapt at all: their cost grows linearly with phase length and \
     is soon orders of magnitude worse.";
  print_endline
    "(The static data management problem of the paper is the complementary \
     regime: frequencies known, copies restricted to processors, solved by \
     the extended-nibble strategy with a factor-7 guarantee.)"
