(* Quickstart: the smallest end-to-end tour of the public API.

   Build a hierarchical bus network, describe who reads and writes each
   shared object, run the extended-nibble strategy, and inspect the
   resulting placement and congestion.

   Run with:  dune exec examples/quickstart.exe *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy

let () =
  (* A binary tree of buses of height 2: four processors, three buses. *)
  let network =
    Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 2)
  in
  Format.printf "%a@." Tree.pp network;

  (* Two shared objects. Processors are the leaves of the tree. *)
  let procs = Array.of_list (Tree.leaves network) in
  let w = Workload.empty network ~objects:2 in
  (* Object 0: processor 0 produces (writes), everyone reads. *)
  Workload.set_write w ~obj:0 procs.(0) 10;
  Array.iter (fun p -> Workload.set_read w ~obj:0 p 6) procs;
  (* Object 1: two processors update a shared counter. *)
  Workload.set_write w ~obj:1 procs.(1) 8;
  Workload.set_write w ~obj:1 procs.(2) 8;

  (* Run the paper's 7-approximation strategy. *)
  let result = Strategy.run w in
  let placement = result.Strategy.placement in

  Array.iteri
    (fun obj _ ->
      Format.printf "object %d: copies on processors [%s]@." obj
        (String.concat "; "
           (List.map string_of_int (Placement.copies placement ~obj))))
    placement;

  let c = Placement.evaluate w placement in
  Format.printf "congestion: %.2f (bottleneck: %s)@." c.Placement.value
    (match c.Placement.bottleneck with
    | `Edge e -> Printf.sprintf "edge %d" e
    | `Bus b -> Printf.sprintf "bus %d" b);

  (* The nibble placement (copies allowed on buses) is a lower bound: *)
  Format.printf "tree-model lower bound: %.2f@."
    (Placement.congestion w result.Strategy.nibble);
  Format.printf "guarantee: congestion <= 7 x optimal (Theorem 4.3)@."
