(* An SCI cluster as in Figures 1 and 2 of the paper.

   A workstation cluster is cabled as a ring of rings (SCI ringlets
   connected by switches). Because every SCI request-response transaction
   circles its whole unidirectional ringlet, each ringlet is, load-wise, a
   bus - so the cluster is a hierarchical bus network. This example builds
   the topology from a ring description, places the pages of a virtual
   shared memory with the extended-nibble strategy, and verifies the
   placement with a packet-level simulation.

   Run with:  dune exec examples/sci_cluster.exe *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Baselines = Hbn_baselines.Baselines
module Sim = Hbn_sim.Sim
module Table = Hbn_util.Table

let () =
  (* Three cabinets of four workstations each, joined by a backbone
     ringlet that also hosts two infrastructure nodes. Switch links into
     the cabinets run at 2x the base rate; ringlet bandwidths reflect SCI
     link speed shared per ring. *)
  let cabinet =
    {
      Builders.ring_bandwidth = 4;
      members = List.init 4 (fun _ -> Builders.Ring_processor);
    }
  in
  let cluster =
    {
      Builders.ring_bandwidth = 8;
      members =
        [
          Builders.Ring_processor;
          Builders.Ring_processor;
          Builders.Sub_ring (2, cabinet);
          Builders.Sub_ring (2, cabinet);
          Builders.Sub_ring (2, cabinet);
        ];
    }
  in
  let network = Builders.of_ring cluster in
  Printf.printf
    "SCI cluster: %d workstations on %d ringlets (height %d) modeled as a \
     bus network\n"
    (Tree.num_leaves network)
    (List.length (Tree.buses network))
    (Tree.height network);

  (* Virtual-shared-memory pages: most pages have an affine home cabinet
     (local producer, cluster-wide readers), a few are global hot pages. *)
  let prng = Prng.create 2000 in
  let pages = 24 in
  let w =
    Generators.local_with_background ~prng network ~objects:pages
      ~local_rate:30 ~background_rate:3
  in

  let strategies =
    [
      ("extended-nibble", (Strategy.run w).Strategy.placement);
      ("owner (home node)", Baselines.owner w);
      ("full replication", Baselines.full_replication w);
      ("local search", Baselines.local_search ~iterations:100 ~prng w);
    ]
  in
  let t =
    Table.create
      [ "strategy"; "congestion"; "total load"; "sim makespan"; "copies" ]
  in
  List.iter
    (fun (name, p) ->
      let copies =
        Array.fold_left (fun a op -> a + List.length op.Placement.copies) 0 p
      in
      Table.add_row t
        [
          name;
          Table.fmt_float (Placement.congestion w p);
          string_of_int (Placement.total_load w p);
          string_of_int (Sim.run ~scale:2 w p).Sim.makespan;
          string_of_int copies;
        ])
    strategies;
  Table.print t;
  print_endline
    "\nGraphviz rendering of the converted network (paste into `dot`):";
  print_string (Tree.to_dot network)
