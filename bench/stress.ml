(* Scale check: the strategy and its certificates on large networks.

   Run with:  dune exec bench/stress.exe
   Not part of `dune runtest` (takes seconds, not milliseconds); used to
   confirm the implementation is practical far beyond the unit-test sizes
   and that every certificate still holds there. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Certificates = Hbn_core.Certificates
module Lower_bounds = Hbn_exact.Lower_bounds
module Sim = Hbn_sim.Sim
module Dist_nibble = Hbn_dist.Dist_nibble
module Nibble = Hbn_nibble.Nibble
module Table = Hbn_util.Table

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let prng = Prng.create 987654 in
  let cases =
    [
      ("ternary-h6", Builders.balanced ~arity:3 ~height:6 ~profile:(Builders.Uniform 4), 64);
      ("caterpillar-200x3", Builders.caterpillar ~spine:200 ~leaves_per_bus:3 ~profile:(Builders.Uniform 2), 64);
      ("random-1200", Builders.random ~prng ~buses:400 ~leaves:800 ~profile:(Builders.Scaled_by_subtree 1), 128);
      ("star-1000", Builders.star ~leaves:1000 ~profile:(Builders.Uniform 16), 256);
      ( "rings-deep",
        (let rec ring depth =
           {
             Builders.ring_bandwidth = 4 + depth;
             members =
               List.init 3 (fun _ -> Builders.Ring_processor)
               @ (if depth = 0 then []
                  else List.init 2 (fun _ -> Builders.Sub_ring (2, ring (depth - 1))));
           }
         in
         Builders.of_ring (ring 6)),
        128 );
    ]
  in
  let t =
    Table.create
      [ "topology"; "|V|"; "h"; "deg"; "|X|"; "requests"; "run (ms)";
        "certs (ms)"; "C/LB"; "certs" ]
  in
  List.iter
    (fun (name, tree, objects) ->
      let w =
        Generators.zipf_popularity ~prng tree ~objects ~requests_per_leaf:24
          ~exponent:1.1 ~write_fraction:0.25
      in
      let res, run_s = time (fun () -> Strategy.run w) in
      let cert, cert_s = time (fun () -> Certificates.check_all w res) in
      let c = Placement.congestion w res.Strategy.placement in
      let lb = Lower_bounds.combined w in
      Table.add_row t
        [
          name;
          string_of_int (Tree.n tree);
          string_of_int (Tree.height tree);
          string_of_int (Tree.max_degree tree);
          string_of_int objects;
          string_of_int (Workload.total_requests w);
          Table.fmt_float ~digits:1 (run_s *. 1000.);
          Table.fmt_float ~digits:1 (cert_s *. 1000.);
          Table.fmt_ratio c lb;
          (match cert with Ok () -> "ok" | Error m -> "FAIL: " ^ m);
        ])
    cases;
  Table.print t;
  (* The distributed protocol at scale, checked against the sequential
     placement. *)
  let tree = Builders.balanced ~arity:2 ~height:8 ~profile:(Builders.Uniform 2) in
  let w = Generators.uniform ~prng tree ~objects:32 ~max_rate:5 in
  let (sets, stats), secs = time (fun () -> Dist_nibble.run w) in
  let seq = Nibble.place_all w in
  Array.iteri (fun obj nodes -> assert (nodes = seq.(obj).Nibble.nodes)) sets;
  Printf.printf
    "\ndistributed nibble on %d nodes, %d objects: %d rounds, %d messages, \
     %.1f ms (== sequential placement)\n"
    (Tree.n tree) 32 stats.Hbn_dist.Runtime.rounds
    stats.Hbn_dist.Runtime.messages (secs *. 1000.);
  (* A large simulation. *)
  let res = Strategy.run w in
  let out, secs = time (fun () -> Sim.run ~scale:2 w res.Strategy.placement) in
  Printf.printf
    "packet sim: %d packets, %d transmissions, makespan %d, %.1f ms\n"
    out.Sim.packets out.Sim.transmissions out.Sim.makespan (secs *. 1000.);
  print_endline "stress: all certificates held at scale."
