(* Flat-kernel microbench driver.

   Run with:  dune exec bench/micro_main.exe            # timed F1-F3, E1-E2
          or  dune exec bench/micro_main.exe -- --smoke # fast agreement pass
   The timed run prints Bechamel ns/run estimates for the Tree.Flat
   primitives (path folds, batched LCA, scratch reuse) next to their
   list-returning Tree counterparts, then for the discrete-event engine
   kernels (pairing-heap churn, tick chains). [--smoke] skips timing and
   instead cross-checks the flat kernels against Tree and the pairing
   heap against a stable sort on the bench instances — the cheap gate
   `make bench-quick` (and through it `make check`) runs. *)

let () =
  if Array.exists (( = ) "--smoke") Sys.argv then begin
    Micro.smoke_flat ();
    Micro.smoke_event ()
  end
  else begin
    Micro.run_flat ();
    Micro.run_event ()
  end
