(* Flat-kernel microbench driver.

   Run with:  dune exec bench/micro_main.exe            # timed F1-F3
          or  dune exec bench/micro_main.exe -- --smoke # fast agreement pass
   The timed run prints Bechamel ns/run estimates for the Tree.Flat
   primitives (path folds, batched LCA, scratch reuse) next to their
   list-returning Tree counterparts. [--smoke] skips timing and instead
   cross-checks every kernel against Tree on the bench instance — the
   cheap gate `make bench-quick` (and through it `make check`) runs. *)

let () =
  if Array.exists (( = ) "--smoke") Sys.argv then Micro.smoke_flat ()
  else Micro.run_flat ()
