(* Shared metadata header for the BENCH_*.json writers.

   Every baseline file opens with the same two lines — the schema tag and
   a "meta" object recording the environment the numbers were taken in
   (core count, compiler, git state) — so tooling that diffs baselines
   can tell an algorithmic change from a host change. The deterministic
   payload fields follow; bench/check.exe ignores "meta" entirely. *)

(* Best-effort only: spawning can fail (no /bin/sh, fork limits), git can
   be absent or print nothing (not a repo, empty repo), and reaping can
   raise (ECHILD under some process managers). Every such path must
   degrade to "unknown" — a bench run on a weird host should still write
   a valid baseline, just an unattributed one. *)
let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
    let line = String.trim (try input_line ic with _ -> "") in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ | (exception _) -> "unknown")

(* The opening brace, schema and meta fields of one BENCH file; the
   caller appends its own fields after the trailing comma. *)
let header ~schema =
  Printf.sprintf
    "{\"schema\":%S,\n\
    \ \"meta\":{\"detected_cores\":%d,\"ocaml\":%S,\"git\":%S},\n"
    schema
    (Domain.recommended_domain_count ())
    Sys.ocaml_version (git_describe ())
