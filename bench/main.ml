(* Experiment harness driver.

   Usage:
     dune exec bench/main.exe                 # every experiment, full size
     dune exec bench/main.exe -- --quick      # reduced instance counts
     dune exec bench/main.exe -- --only E7    # one experiment
     dune exec bench/main.exe -- --no-micro   # skip the Bechamel benches

   Every experiment is seeded and deterministic; EXPERIMENTS.md records
   the expected qualitative outcome of each table. *)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let no_micro = List.mem "--no-micro" args in
  let only =
    let rec find = function
      | "--only" :: v :: _ -> Some (String.uppercase_ascii v)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  print_endline "Data Management in Hierarchical Bus Networks (SPAA 2000)";
  print_endline "Experiment harness - see EXPERIMENTS.md for the index.";
  if quick then print_endline "(quick mode: reduced instance counts)";
  let experiments = Experiments.all ~quick in
  let selected =
    match only with
    | None -> experiments
    | Some id -> List.filter (fun (eid, _) -> eid = id) experiments
  in
  (match (selected, only) with
  | [], Some id when id <> "MICRO" ->
    Printf.eprintf "unknown experiment %s (expected E1..E17 or micro)\n" id;
    exit 1
  | _ -> ());
  List.iter (fun (_, f) -> f ()) selected;
  let micro_selected = only = Some "MICRO" in
  if micro_selected || ((not no_micro) && only = None) then Micro.run ();
  print_endline "\nAll requested experiments completed."
