(* Asynchronous-simulation benchmark: writes BENCH_async.json.

   Run with:  dune exec bench/async.exe [-- --smoke]
   Replays the Async_cases matrix — the same workload and placement per
   topology, simulated once per per-level link model — and records the
   deterministic schedule profile per case. bench/check.exe diffs those
   fields against the committed file.

   The matrix is self-validating (Async_cases.validate_group): traffic
   fields must not vary with the link, Link.sync must reproduce the
   synchronous engine bit for bit, and completion must actually move
   across the bandwidth-asymmetric rows.

   --smoke simulates one topology synchronously and on a uniformly
   starved link (bandwidth 1 under bus caps of 2, so every hop is
   slower on both axes) and checks the controlled-experiment shape by
   hand; no JSON. *)

module AC = Async_cases
module Prng = Hbn_prng.Prng
module Generators = Hbn_workload.Generators
module Strategy = Hbn_core.Strategy

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  if smoke then begin
    let prng = Prng.create AC.seed in
    let topology, tree = List.hd (AC.topologies ()) in
    let w = Generators.uniform ~prng tree ~objects:AC.objects ~max_rate:8 in
    let placement = (Strategy.run w).Strategy.placement in
    let sync = AC.run_case ~w ~placement ~topology ~link:None in
    let slow = AC.run_case ~w ~placement ~topology ~link:(Some "1:1") in
    if
      sync.AC.packets <> slow.AC.packets
      || sync.AC.transmissions <> slow.AC.transmissions
      || sync.AC.congestion <> slow.AC.congestion
    then begin
      Printf.eprintf
        "bench/async --smoke: traffic varied with the link model on %s\n"
        topology;
      exit 1
    end;
    if slow.AC.completion <= sync.AC.completion then begin
      Printf.eprintf
        "bench/async --smoke: halved bandwidth did not raise completion \
         (%g vs %g) on %s\n"
        slow.AC.completion sync.AC.completion topology;
      exit 1
    end;
    Printf.printf
      "bench/async --smoke: %s completion %g (sync) -> %g (1:1) with \
       traffic pinned (%d packets, %d transmissions)\n"
      topology sync.AC.completion slow.AC.completion sync.AC.packets
      sync.AC.transmissions
  end
  else begin
    let cases = AC.all () in
    let oc = open_out "BENCH_async.json" in
    output_string oc (Meta.header ~schema:AC.schema);
    output_string oc " \"cases\":[\n";
    List.iteri
      (fun i c ->
        if i > 0 then output_string oc ",\n";
        output_string oc (AC.json_of_case c))
      cases;
    output_string oc "\n]}\n";
    close_out oc;
    Printf.printf "bench/async: wrote BENCH_async.json (%d cases)\n"
      (List.length cases);
    List.iter
      (fun c ->
        Printf.printf "  %-16s %-10s %5d ticks  completion %8.3f  %5d pkts \
                       %6d hops  congestion %.3f\n"
          c.AC.topology c.AC.link c.AC.makespan c.AC.completion c.AC.packets
          c.AC.transmissions c.AC.congestion)
      cases
  end
