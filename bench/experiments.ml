(* The experiment harness: one function per experiment of EXPERIMENTS.md.
   Each regenerates the paper-derived result as an ASCII table. All
   randomness is seeded, so tables reproduce exactly. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Partition = Hbn_workload.Partition
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Strategy = Hbn_core.Strategy
module Certificates = Hbn_core.Certificates
module Mapping = Hbn_core.Mapping
module Copy = Hbn_core.Copy
module Brute_force = Hbn_exact.Brute_force
module Gadget_opt = Hbn_exact.Gadget_opt
module Lower_bounds = Hbn_exact.Lower_bounds
module Baselines = Hbn_baselines.Baselines
module Sim = Hbn_sim.Sim
module Dist = Hbn_dist.Dist
module Table = Hbn_util.Table
module Stats = Hbn_util.Stats
module Capacitated = Hbn_core.Capacitated

let header id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let footnote fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* Shared instance families, scaled by the --quick flag. *)

let topo_families prng =
  [
    ("star-16", Builders.star ~leaves:16 ~profile:(Builders.Uniform 4));
    ("binary-h4", Builders.balanced ~arity:2 ~height:4 ~profile:(Builders.Uniform 2));
    ("ternary-h3", Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Scaled_by_subtree 1));
    ("caterpillar-8x2", Builders.caterpillar ~spine:8 ~leaves_per_bus:2 ~profile:(Builders.Uniform 2));
    ( "random-24",
      Builders.random ~prng ~buses:8 ~leaves:16 ~profile:(Builders.Uniform 3) );
    ( "ring-of-rings",
      Builders.of_ring
        (Builders.sample_ring_of_rings ~prng ~depth:3 ~fanout:3 ~procs_per_ring:3) );
  ]

let workload_families prng tree ~objects =
  [
    ("uniform", Generators.uniform ~prng tree ~objects ~max_rate:8);
    ( "zipf",
      Generators.zipf_popularity ~prng tree ~objects ~requests_per_leaf:24
        ~exponent:1.1 ~write_fraction:0.3 );
    ( "hotspot",
      Generators.hotspot ~prng tree ~objects ~writers_per_object:2 ~write_rate:9
        ~read_rate:6 );
    ( "prod-cons",
      Generators.producer_consumer ~prng tree ~objects ~consumers:4 ~rate:6 );
    ( "local",
      Generators.local_with_background ~prng tree ~objects ~local_rate:40
        ~background_rate:2 );
  ]

(* ------------------------------------------------------------------ *)
(* E1: Figures 1 and 2 — ring-of-rings modeled as a bus network.       *)

let e1 ~quick () =
  header "E1" "Figures 1-2: SCI ring-of-rings -> hierarchical bus network";
  let t =
    Table.create
      [ "topology"; "rings"; "procs"; "height"; "degree"; "C_ext"; "C_nib"; "ratio" ]
  in
  let prng = Prng.create 101 in
  let figure1 =
    (* The paper's Figure 1: a top ring joining two rings of processors. *)
    let leaf_ring n =
      { Builders.ring_bandwidth = 4;
        members = List.init n (fun _ -> Builders.Ring_processor) }
    in
    { Builders.ring_bandwidth = 8;
      members =
        [ Builders.Ring_processor;
          Builders.Sub_ring (2, leaf_ring 4);
          Builders.Sub_ring (2, leaf_ring 3) ] }
  in
  let cases =
    ("figure-1", figure1)
    :: List.init (if quick then 2 else 5) (fun i ->
           ( Printf.sprintf "sampled-%d" i,
             Builders.sample_ring_of_rings ~prng ~depth:3 ~fanout:3
               ~procs_per_ring:3 ))
  in
  List.iter
    (fun (name, ring) ->
      let net = Builders.of_ring ring in
      (match Tree.validate_paper_assumptions net with
      | Ok () -> ()
      | Error m -> failwith m);
      let w =
        Generators.zipf_popularity ~prng net ~objects:8 ~requests_per_leaf:16
          ~exponent:1.0 ~write_fraction:0.25
      in
      let res = Strategy.run w in
      let c = Placement.congestion w res.Strategy.placement in
      let nib = Placement.congestion w res.Strategy.nibble in
      Table.add_row t
        [
          name;
          string_of_int (List.length (Tree.buses net));
          string_of_int (Tree.num_leaves net);
          string_of_int (Tree.height net);
          string_of_int (Tree.max_degree net);
          Table.fmt_float c;
          Table.fmt_float nib;
          Table.fmt_ratio c nib;
        ])
    cases;
  Table.print t;
  footnote
    "Rings become buses (a request-response transaction circles the whole \
     ringlet), switches become tree edges; every converted network passes \
     the paper's modeling assumptions and the strategy runs unchanged."

(* ------------------------------------------------------------------ *)
(* E2: Theorem 2.1 — the PARTITION gadget threshold.                   *)

let e2 ~quick () =
  header "E2" "Theorem 2.1: congestion 4k achievable iff PARTITION solvable";
  let t =
    Table.create
      [ "instance"; "items"; "2k"; "solvable"; "opt(DP)"; "opt(B&B)"; "witness";
        "C_ext"; "opt=4k?" ]
  in
  let prng = Prng.create 202 in
  let named =
    [
      ("paper-style", Partition.make [ 3; 1; 1; 2; 3; 2 ]);
      ("tiny-yes", Partition.make [ 1; 1 ]);
      ("no-1", Partition.make [ 1; 1; 4 ]);
      ("no-2", Partition.make [ 2; 2; 2; 10 ]);
    ]
  in
  let sampled =
    List.init (if quick then 2 else 6) (fun i ->
        let inst =
          if i mod 2 = 0 then Partition.random_yes ~prng ~items:6 ~max_item:5
          else Partition.random ~prng ~items:5 ~max_item:5
        in
        (Printf.sprintf "sampled-%d" i, inst))
  in
  List.iter
    (fun (name, inst) ->
      let g = Partition.gadget inst in
      let w = g.Partition.workload in
      let dp = Gadget_opt.family_optimum inst in
      let bnb =
        match Brute_force.optimum ~budget:3_000_000 w ~candidates:`Leaves with
        | o -> Table.fmt_float ~digits:0 o.Brute_force.congestion
        | exception Brute_force.Too_large _ -> "(skip)"
      in
      let witness =
        match Partition.find_subset inst with
        | None -> "-"
        | Some s ->
          let p = Placement.single w (Partition.yes_placement g s) in
          Table.fmt_float ~digits:0 (Placement.congestion w p)
      in
      let res = Strategy.run w in
      let c = Placement.congestion w res.Strategy.placement in
      Table.add_row t
        [
          name;
          String.concat "+" (Array.to_list (Array.map string_of_int inst.Partition.items));
          string_of_int (Partition.sum inst);
          string_of_bool (Partition.solvable inst);
          string_of_int dp;
          bnb;
          witness;
          Table.fmt_float ~digits:1 c;
          string_of_bool (dp = 4 * g.Partition.k);
        ])
    (named @ sampled);
  Table.print t;
  footnote
    "opt(DP) is the closed-form optimum over the proof's canonical family; \
     the branch-and-bound optimum over ALL placements agrees with it, and \
     it equals 4k exactly on solvable instances - the reduction's threshold."

(* ------------------------------------------------------------------ *)
(* E3: Theorem 3.1 — nibble per-edge optimality in the tree model.     *)

let e3 ~quick () =
  header "E3" "Theorem 3.1: nibble placement minimizes every edge simultaneously";
  let t =
    Table.create
      [ "family"; "instances"; "edges checked"; "mismatches";
        "max opt(bus)/opt(tree)" ]
  in
  let n_inst = if quick then 10 else 40 in
  let families = [ ("sparse", 0); ("write-heavy", 1); ("read-heavy", 2) ] in
  List.iter
    (fun (fam, salt) ->
      let edges = ref 0 and mismatches = ref 0 and worst = ref 1. in
      for i = 0 to n_inst - 1 do
        let prng = Prng.create ((1000 * salt) + i) in
        let tree =
          Builders.random ~prng ~buses:2 ~leaves:(Prng.int_in prng 3 5)
            ~profile:(Builders.Uniform (Prng.int_in prng 1 3))
        in
        let w = Workload.empty tree ~objects:2 in
        List.iter
          (fun leaf ->
            if Prng.int prng 3 > 0 then begin
              let r, wr =
                match salt with
                | 1 -> (Prng.int prng 2, Prng.int_in prng 1 6)
                | 2 -> (Prng.int_in prng 1 6, Prng.int prng 2)
                | _ -> (Prng.int prng 4, Prng.int prng 4)
              in
              Workload.set_read w ~obj:(Prng.int prng 2) leaf r;
              Workload.set_write w ~obj:(Prng.int prng 2) leaf wr
            end)
          (Tree.leaves tree);
        match Brute_force.min_edge_loads w ~candidates:`All_nodes with
        | exception Brute_force.Too_large _ -> ()
        | mins ->
          let nib = Nibble.edge_loads w in
          Array.iteri
            (fun e l ->
              incr edges;
              if l <> mins.(e) then incr mismatches)
            nib;
          (match
             ( Brute_force.optimum w ~candidates:`Leaves,
               Brute_force.optimum w ~candidates:`All_nodes )
           with
          | bus, tree_opt when tree_opt.Brute_force.congestion > 0. ->
            worst :=
              Float.max !worst
                (bus.Brute_force.congestion /. tree_opt.Brute_force.congestion)
          | _ -> ()
          | exception Brute_force.Too_large _ -> ())
      done;
      Table.add_row t
        [
          fam;
          string_of_int n_inst;
          string_of_int !edges;
          string_of_int !mismatches;
          Table.fmt_float !worst;
        ])
    families;
  Table.print t;
  footnote
    "Mismatches must be 0: the nibble load equals the exhaustive per-edge \
     minimum on every edge. The last column is the measured price of \
     forbidding copies on buses (the gap the extended-nibble strategy \
     must close within factor 7)."

(* ------------------------------------------------------------------ *)
(* E4: Observation 3.2 — the deletion algorithm's guarantees.          *)

let e4 ~quick () =
  header "E4" "Observation 3.2: deletion keeps s(c) in [kappa, 2 kappa], load <= 2x";
  let t =
    Table.create
      [ "workload"; "copies"; "deleted"; "clones"; "min s/k"; "max s/2k";
        "max edge ratio" ]
  in
  let prng = Prng.create 404 in
  let tree = Builders.balanced ~arity:3 ~height:(if quick then 2 else 3)
      ~profile:(Builders.Uniform 2)
  in
  List.iter
    (fun (name, w) ->
      let res = Strategy.run w in
      let min_ratio = ref infinity and max_ratio = ref 0. in
      List.iter
        (fun c ->
          if c.Copy.kappa > 0 then begin
            let s = float_of_int c.Copy.served and k = float_of_int c.Copy.kappa in
            min_ratio := Float.min !min_ratio (s /. k);
            max_ratio := Float.max !max_ratio (s /. (2. *. k))
          end)
        res.Strategy.copies;
      let edge_ratio = ref 0. in
      for obj = 0 to Workload.num_objects w - 1 do
        let nib = Placement.object_edge_loads w res.Strategy.nibble ~obj in
        let del = Placement.object_edge_loads w res.Strategy.modified ~obj in
        Array.iteri
          (fun e l ->
            if nib.(e) > 0 then
              edge_ratio :=
                Float.max !edge_ratio (float_of_int l /. float_of_int nib.(e)))
          del
      done;
      Table.add_row t
        [
          name;
          string_of_int (List.length res.Strategy.copies);
          string_of_int res.Strategy.deletions;
          string_of_int res.Strategy.splits;
          (if !min_ratio = infinity then "-" else Table.fmt_float !min_ratio);
          Table.fmt_float !max_ratio;
          Table.fmt_float !edge_ratio;
        ])
    (workload_families prng tree ~objects:12);
  Table.print t;
  footnote
    "min s/k >= 1 and max s/2k <= 1 certify the observation's first bullet; \
     the per-object per-edge modified/nibble ratio never exceeds 2.";
  footnote ""

(* ------------------------------------------------------------------ *)
(* E5: Invariant 4.2 / Observation 3.3 / Lemma 4.1.                    *)

let e5 ~quick () =
  header "E5" "Invariant 4.2 and the free-edge guarantee (Lemma 4.1)";
  let t =
    Table.create
      [ "scenario"; "instances"; "inv checks"; "violations"; "no-free-edge" ]
  in
  let n = if quick then 20 else 100 in
  (* Sound runs. *)
  let checks = ref 0 and violations = ref 0 and stuck = ref 0 in
  for seed = 0 to n - 1 do
    let prng = Prng.create (5000 + seed) in
    let tree =
      Builders.random ~prng ~buses:(Prng.int_in prng 2 6)
        ~leaves:(Prng.int_in prng 4 12) ~profile:(Builders.Uniform 2)
    in
    let w = Generators.uniform ~prng tree ~objects:4 ~max_rate:9 in
    let on_round st =
      incr checks;
      match Mapping.check_invariant st with
      | Ok () -> ()
      | Error _ -> incr violations
    in
    try ignore (Strategy.run ~on_mapping_round:on_round w)
    with Mapping.No_free_edge _ -> incr stuck
  done;
  Table.add_row t
    [ "sound runs"; string_of_int n; string_of_int !checks;
      string_of_int !violations; string_of_int !stuck ];
  (* Failure injection: corrupting the acceptable loads must break one of
     the guarantees (shows the checks are not vacuous). *)
  let broken = ref 0 and total = ref 0 in
  for seed = 0 to (n / 4) - 1 do
    let prng = Prng.create (6000 + seed) in
    let tree =
      Builders.balanced ~arity:2 ~height:3 ~profile:(Builders.Uniform 2)
    in
    let w = Generators.hotspot ~prng tree ~objects:4 ~writers_per_object:3
        ~write_rate:6 ~read_rate:6
    in
    (* Rebuild steps 1-2 by hand so we can inject into step 3. *)
    let next_id = ref 0 in
    let all =
      List.concat_map
        (fun obj ->
          if
            Workload.write_contention w ~obj > 0
            && Workload.total_weight w ~obj > 0
          then begin
            let out =
              Hbn_core.Deletion.run ~first_id:!next_id w (Nibble.place w ~obj)
            in
            next_id := !next_id + out.Hbn_core.Deletion.ids_used;
            out.Hbn_core.Deletion.copies
          end
          else [])
        (List.init (Workload.num_objects w) (fun i -> i))
    in
    let movable =
      List.filter (fun c -> not (Tree.is_leaf tree c.Copy.node)) all
    in
    if movable <> [] then begin
      incr total;
      let basic_up, basic_down = Mapping.basic_loads tree all in
      match
        Mapping.run ~verify:true ~inject_lacc_error:1_000_000 tree ~basic_up
          ~basic_down ~movable
      with
      | _ -> ()
      | exception (Mapping.No_free_edge _ | Failure _) -> incr broken
    end
  done;
  Table.add_row t
    [ "injected corruption"; string_of_int !total; "-"; "-";
      Printf.sprintf "%d/%d" !broken !total ];
  Table.print t;
  footnote
    "Sound runs: zero invariant violations and a free child edge always \
     exists. Corrupted acceptable loads make every run fail, so the \
     guarantee is non-vacuous.";
  footnote
    "(Erratum: the invariant holds in the corrected form with S(s+kappa); \
     the paper's printed 2*S(s) variant is violated on real runs - see \
     DESIGN.md.)"

(* ------------------------------------------------------------------ *)
(* E6: Lemmas 4.5 / 4.6 — per-edge and per-bus load certificates.      *)

let e6 ~quick () =
  header "E6" "Lemmas 4.5/4.6: L(e) <= 4 L_nib(e) + tau_max, same per bus";
  let t =
    Table.create
      [ "topology"; "workload"; "tau"; "max edge slack"; "edge ok"; "bus ok" ]
  in
  let prng = Prng.create 606 in
  List.iter
    (fun (tname, tree) ->
      List.iter
        (fun (wname, w) ->
          let res = Strategy.run w in
          let edge_ok = Certificates.check_lemma_4_5 w res = Ok () in
          let bus_ok = Certificates.check_lemma_4_6 w res = Ok () in
          Table.add_row t
            [
              tname;
              wname;
              string_of_int res.Strategy.tau_max;
              Table.fmt_float (Certificates.max_edge_slack w res);
              string_of_bool edge_ok;
              string_of_bool bus_ok;
            ])
        (workload_families prng tree ~objects:(if quick then 6 else 16)))
    (topo_families prng);
  Table.print t;
  footnote
    "max edge slack is the tightest L(e)/(4 L_nib(e)+tau) over edges; the \
     lemmas hold whenever it stays <= 1 (and both columns must read true)."

(* ------------------------------------------------------------------ *)
(* E7: Theorem 4.3 — the 7-approximation, measured.                    *)

let e7 ~quick () =
  header "E7" "Theorem 4.3: measured approximation ratios (bound: 7)";
  let t =
    Table.create
      [ "family"; "n"; "mean C/opt"; "p90"; "max"; "max C/LB (large)" ]
  in
  let n_small = if quick then 20 else 80 in
  let families =
    [ ("uniform", 0); ("write-heavy", 1); ("read-heavy", 2); ("hotspot", 3) ]
  in
  List.iter
    (fun (fam, salt) ->
      let ratios = ref [] in
      for i = 0 to n_small - 1 do
        let prng = Prng.create ((salt * 7919) + i) in
        let tree =
          Builders.random ~prng ~buses:(Prng.int_in prng 1 3)
            ~leaves:(Prng.int_in prng 3 5)
            ~profile:(Builders.Uniform (Prng.int_in prng 1 2))
        in
        let w = Workload.empty tree ~objects:(Prng.int_in prng 1 2) in
        List.iter
          (fun leaf ->
            for obj = 0 to Workload.num_objects w - 1 do
              if Prng.int prng 3 > 0 then begin
                let r, wr =
                  match salt with
                  | 1 -> (Prng.int prng 2, Prng.int_in prng 1 5)
                  | 2 -> (Prng.int_in prng 1 5, Prng.int prng 2)
                  | 3 -> if Prng.int prng 4 = 0 then (0, 6) else (3, 0)
                  | _ -> (Prng.int prng 4, Prng.int prng 4)
                in
                Workload.set_read w ~obj leaf r;
                Workload.set_write w ~obj leaf wr
              end
            done)
          (Tree.leaves tree);
        let res = Strategy.run w in
        let c = Placement.congestion w res.Strategy.placement in
        match Brute_force.optimum w ~candidates:`Leaves ~upper_bound:c with
        | opt when opt.Brute_force.congestion > 0. ->
          ratios := (c /. opt.Brute_force.congestion) :: !ratios
        | _ -> ()
        | exception Brute_force.Too_large _ -> ()
      done;
      (* Large instances: ratio against the certified lower bound. *)
      let lb_worst = ref 0. in
      for i = 0 to (if quick then 5 else 20) - 1 do
        let prng = Prng.create ((salt * 104729) + i) in
        let tree =
          Builders.random ~prng ~buses:10 ~leaves:24 ~profile:(Builders.Uniform 2)
        in
        let w =
          match salt with
          | 1 -> Generators.hotspot ~prng tree ~objects:10 ~writers_per_object:4
                   ~write_rate:6 ~read_rate:1
          | 2 -> Generators.zipf_popularity ~prng tree ~objects:10
                   ~requests_per_leaf:20 ~exponent:1.2 ~write_fraction:0.05
          | 3 -> Generators.producer_consumer ~prng tree ~objects:10 ~consumers:6
                   ~rate:5
          | _ -> Generators.uniform ~prng tree ~objects:10 ~max_rate:6
        in
        let res = Strategy.run w in
        let c = Placement.congestion w res.Strategy.placement in
        let lb = Lower_bounds.combined w in
        if lb > 0. then lb_worst := Float.max !lb_worst (c /. lb)
      done;
      let rs = !ratios in
      Table.add_row t
        [
          fam;
          string_of_int (List.length rs);
          Table.fmt_float (Stats.mean rs);
          Table.fmt_float (Stats.percentile 90. rs);
          Table.fmt_float (List.fold_left Float.max 0. rs);
          Table.fmt_float !lb_worst;
        ])
    families;
  Table.print t;
  footnote
    "Every measured ratio stays below the proven factor 7; the paper's \
     bound is loose in practice (typical max ~2-4). On large instances \
     the ratio is against the certified lower bound, so it overstates \
     the true gap."

(* ------------------------------------------------------------------ *)
(* E8: Theorem 4.3 — sequential runtime scaling.                       *)

let time_of f =
  (* Median-of-5 wall time, seconds. *)
  let samples =
    List.init 5 (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Stats.median samples

let e8 ~quick () =
  header "E8" "Runtime scaling vs O(|X| |V| height(T) log(degree(T)))";
  let t =
    Table.create
      [ "sweep"; "|X|"; "|V|"; "h"; "deg"; "time (ms)"; "time/bound (ns)" ]
  in
  let prng = Prng.create 808 in
  let measure name w =
    let tree = Workload.tree w in
    let x = Workload.num_objects w in
    let v = Tree.n tree in
    let h = max 1 (Tree.height tree) in
    let d = Tree.max_degree tree in
    let logd = max 1. (log (float_of_int d) /. log 2.) in
    let secs = time_of (fun () -> ignore (Strategy.run w)) in
    let bound = float_of_int (x * v * h) *. logd in
    Table.add_row t
      [
        name;
        string_of_int x;
        string_of_int v;
        string_of_int h;
        string_of_int d;
        Table.fmt_float (secs *. 1000.);
        Table.fmt_float (secs /. bound *. 1e9);
      ]
  in
  let scale = if quick then 1 else 2 in
  (* Sweep |X| on a fixed topology. *)
  let tree = Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2) in
  List.iter
    (fun x ->
      measure "objects" (Generators.uniform ~prng tree ~objects:x ~max_rate:6))
    [ 8 * scale; 16 * scale; 32 * scale; 64 * scale ];
  Table.add_sep t;
  (* Sweep |V| with balanced trees. *)
  List.iter
    (fun h ->
      let tree = Builders.balanced ~arity:2 ~height:h ~profile:(Builders.Uniform 2) in
      measure "nodes" (Generators.uniform ~prng tree ~objects:16 ~max_rate:6))
    [ 3; 4; 5; 6 ];
  Table.add_sep t;
  (* Sweep height with caterpillars of ~constant size. *)
  List.iter
    (fun spine ->
      let tree =
        Builders.caterpillar ~spine ~leaves_per_bus:(max 1 (32 / spine))
          ~profile:(Builders.Uniform 2)
      in
      measure "height" (Generators.uniform ~prng tree ~objects:16 ~max_rate:6))
    [ 4; 8; 16; 32 ];
  Table.add_sep t;
  (* Sweep degree with stars. *)
  List.iter
    (fun leaves ->
      let tree = Builders.star ~leaves ~profile:(Builders.Uniform 4) in
      measure "degree" (Generators.uniform ~prng tree ~objects:16 ~max_rate:6))
    [ 16; 32; 64; 128 ];
  Table.print t;
  footnote
    "The last column divides measured time by |X| |V| h log2(deg); a \
     roughly flat (or shrinking) column across each sweep means the \
     implementation stays within the claimed asymptotic envelope."

(* ------------------------------------------------------------------ *)
(* E9: distributed execution cost.                                     *)

let e9 ~quick () =
  header "E9" "Distributed emulation vs O(|X| |V| log(deg) + height)";
  let t =
    Table.create
      [ "topology"; "|X|"; "rounds"; "msg rounds"; "(|X|+h)"; "messages";
        "max work"; "work bound" ]
  in
  let prng = Prng.create 909 in
  let cases =
    List.concat_map
      (fun (name, tree) ->
        List.map (fun x -> (name, tree, x)) (if quick then [ 8 ] else [ 8; 32 ]))
      (topo_families prng)
  in
  List.iter
    (fun (name, tree, objects) ->
      let w = Generators.uniform ~prng tree ~objects ~max_rate:6 in
      let placement, stats = Dist.strategy_rounds w in
      (* Sanity: same answer as the sequential strategy. *)
      let seq = Strategy.run w in
      assert (
        Placement.edge_loads w placement
        = Placement.edge_loads w seq.Strategy.placement);
      let h = Tree.height tree in
      let d = Tree.max_degree tree in
      let logd = max 1 (int_of_float (ceil (log (float_of_int d) /. log 2.))) in
      (* Message-granular check: the nibble protocol really run on the
         synchronous network, every node deciding locally. *)
      let dist_sets, msg_stats = Hbn_dist.Dist_nibble.run w in
      let seq_sets = Hbn_nibble.Nibble.place_all w in
      Array.iteri
        (fun obj nodes ->
          assert (nodes = seq_sets.(obj).Hbn_nibble.Nibble.nodes))
        dist_sets;
      Table.add_row t
        [
          name;
          string_of_int objects;
          string_of_int stats.Dist.rounds;
          string_of_int msg_stats.Hbn_dist.Runtime.rounds;
          string_of_int (objects + h);
          string_of_int stats.Dist.messages;
          string_of_int stats.Dist.max_node_work;
          string_of_int (objects * Tree.n tree * logd);
        ])
    cases;
  Table.print t;
  footnote
    "Rounds track |X| + height (pipelined sweeps), and the busiest node's \
     work stays below |X| |V| log2(degree) - the paper's distributed bound. \
     'msg rounds' comes from actually executing the nibble protocol on a \
     synchronous message-passing network (lib/dist Runtime + Dist_nibble); \
     its per-node decisions are asserted equal to the sequential \
     placement, as is the schedule-model placement."

(* ------------------------------------------------------------------ *)
(* E10: congestion predicts simulated completion time.                 *)

let e10 ~quick () =
  header "E10" "Congestion as performance predictor (substitute for [8])";
  let t =
    Table.create
      [ "workload"; "strategy"; "congestion"; "makespan"; "mk/cong" ]
  in
  let prng = Prng.create 1010 in
  let tree = Builders.balanced ~arity:3 ~height:(if quick then 2 else 3)
      ~profile:(Builders.Uniform 2)
  in
  let pairs = ref [] in
  let winners_agree = ref 0 and cases = ref 0 in
  List.iter
    (fun (wname, w) ->
      let strategies =
        [
          ("ext-nibble", (Strategy.run w).Strategy.placement);
          ("owner", Baselines.owner w);
          ("full-repl", Baselines.full_replication w);
          ("random", Baselines.random_leaf ~prng w);
          ("local-search", Baselines.local_search ~iterations:80 ~prng w);
        ]
      in
      let rows =
        List.map
          (fun (sname, p) ->
            let c = Placement.congestion w p in
            let mk = (Sim.run ~scale:2 w p).Sim.makespan in
            pairs := (c, float_of_int mk) :: !pairs;
            (sname, c, mk))
          strategies
      in
      List.iter
        (fun (sname, c, mk) ->
          Table.add_row t
            [
              wname;
              sname;
              Table.fmt_float c;
              string_of_int mk;
              Table.fmt_ratio (float_of_int mk) c;
            ])
        rows;
      Table.add_sep t;
      (* Does the lowest-congestion strategy also finish first? *)
      let by_c = List.sort (fun (_, a, _) (_, b, _) -> compare a b) rows in
      let by_mk = List.sort (fun (_, _, a) (_, _, b) -> compare a b) rows in
      incr cases;
      (match (by_c, by_mk) with
      | (s1, _, _) :: _, (s2, _, _) :: _ when s1 = s2 -> incr winners_agree
      | _ -> ()))
    (workload_families prng tree ~objects:(if quick then 6 else 12));
  Table.print t;
  footnote "Pearson (congestion, makespan)  = %s"
    (Table.fmt_float (Stats.pearson !pairs));
  footnote "Spearman (congestion, makespan) = %s"
    (Table.fmt_float (Stats.spearman !pairs));
  footnote "lowest congestion also finishes first in %d/%d workloads"
    !winners_agree !cases;
  footnote
    "This reproduces the qualitative claim of the paper's introduction \
     (citing its [8]): completion time on the bus network tracks the \
     congestion of the data management strategy."

(* ------------------------------------------------------------------ *)
(* E11: strategy comparison + ablation.                                *)

let e11 ~quick () =
  header "E11" "Strategy comparison across topology x workload (C / LB)";
  let t =
    Table.create
      [ "topology"; "workload"; "LB"; "ext"; "ext+pol"; "ext-lit"; "owner";
        "gravity"; "random"; "full"; "lsearch" ]
  in
  let prng = Prng.create 1111 in
  let sums = Hashtbl.create 8 in
  let add name v =
    let s, n = try Hashtbl.find sums name with Not_found -> (0., 0) in
    Hashtbl.replace sums name (s +. v, n + 1)
  in
  List.iter
    (fun (tname, tree) ->
      List.iter
        (fun (wname, w) ->
          let lb = Lower_bounds.combined w in
          let ext = (Strategy.run w).Strategy.placement in
          let entries =
            [
              ("ext", ext);
              ("ext+pol", Baselines.polish ~iterations:60 ~prng w ext);
              ("ext-lit", (Strategy.run ~move_leaf_copies:true w).Strategy.placement);
              ("owner", Baselines.owner w);
              ("gravity", Baselines.gravity_leaf w);
              ("random", Baselines.random_leaf ~prng w);
              ("full", Baselines.full_replication w);
              ("lsearch", Baselines.local_search ~iterations:60 ~prng w);
            ]
          in
          let cells =
            List.map
              (fun (name, p) ->
                let c = Placement.congestion w p in
                let r = if lb > 0. then c /. lb else Float.nan in
                if not (Float.is_nan r) then add name r;
                Table.fmt_float r)
              entries
          in
          Table.add_row t ((tname :: wname :: Table.fmt_float lb :: cells)))
        (workload_families prng tree ~objects:(if quick then 6 else 12)))
    (topo_families prng);
  Table.print t;
  let avg name =
    match Hashtbl.find_opt sums name with
    | Some (s, n) when n > 0 -> s /. float_of_int n
    | _ -> Float.nan
  in
  footnote
    "mean C/LB: ext=%s ext+pol=%s ext-lit=%s owner=%s gravity=%s random=%s full=%s lsearch=%s"
    (Table.fmt_float (avg "ext")) (Table.fmt_float (avg "ext+pol"))
    (Table.fmt_float (avg "ext-lit"))
    (Table.fmt_float (avg "owner")) (Table.fmt_float (avg "gravity"))
    (Table.fmt_float (avg "random")) (Table.fmt_float (avg "full"))
    (Table.fmt_float (avg "lsearch"));
  footnote
    "ext-lit is the Figure-5-verbatim ablation (leaf copies join the \
     upwards phase); both variants respect the factor-7 guarantee, the \
     default is usually at least as good. ext+pol runs improvement-only \
     local search from the extended-nibble placement: it keeps the \
     guarantee and beats the unguaranteed heuristics in practice."

(* ------------------------------------------------------------------ *)
(* E12: the dynamic companion strategy (Section 1.3 / reference [10]). *)

let e12 ~quick () =
  header "E12"
    "Dynamic strategy: per-edge competitive ratio vs exact offline optimum";
  let t =
    Table.create
      [ "pattern"; "sequences"; "mean ratio"; "max ratio"; "max dyn-3opt";
        "repl"; "migr" ]
  in
  let n = if quick then 20 else 80 in
  let patterns =
    [ ("shuffled", `Shuffled); ("bursty", `Bursty); ("phases", `Phases) ]
  in
  List.iter
    (fun (name, pattern) ->
      let ratios = ref [] and excess = ref 0 in
      let repl = ref 0 and migr = ref 0 and sequences = ref 0 in
      for seed = 0 to n - 1 do
        let prng = Prng.create (120000 + seed) in
        let tree =
          Builders.random ~prng ~buses:(Prng.int_in prng 2 6)
            ~leaves:(Prng.int_in prng 4 10) ~profile:(Builders.Uniform 2)
        in
        let w = Generators.uniform ~prng tree ~objects:3 ~max_rate:8 in
        for obj = 0 to Workload.num_objects w - 1 do
          let reqs =
            match pattern with
            | `Shuffled -> Hbn_dynamic.Request.of_workload ~prng w ~obj
            | `Bursty -> Hbn_dynamic.Request.bursty ~prng w ~obj ~burst:6
            | `Phases ->
              let leaves = Array.of_list (Tree.leaves tree) in
              Prng.shuffle prng leaves;
              Hbn_dynamic.Request.phases ~prng tree
                ~readers:(Array.to_list (Array.sub leaves 0 (min 3 (Array.length leaves))))
                ~writer:leaves.(Array.length leaves - 1)
                ~phase_length:12 ~phases:6
          in
          match reqs with
          | [] -> ()
          | first :: _ ->
            incr sequences;
            let dyn =
              Hbn_dynamic.Online.run tree
                ~initial:first.Hbn_dynamic.Request.node reqs
            in
            let opt =
              Hbn_dynamic.Offline.per_edge_optimum tree
                ~initial:first.Hbn_dynamic.Request.node reqs
            in
            repl := !repl + dyn.Hbn_dynamic.Online.replications;
            migr := !migr + dyn.Hbn_dynamic.Online.migrations;
            Array.iteri
              (fun e l ->
                excess := max !excess (l - (3 * opt.(e)));
                if opt.(e) > 0 then
                  ratios := (float_of_int l /. float_of_int opt.(e)) :: !ratios)
              dyn.Hbn_dynamic.Online.edge_loads
        done
      done;
      Table.add_row t
        [
          name;
          string_of_int !sequences;
          Table.fmt_float (Stats.mean !ratios);
          Table.fmt_float (List.fold_left Float.max 0. !ratios);
          string_of_int !excess;
          string_of_int !repl;
          string_of_int !migr;
        ])
    patterns;
  Table.print t;
  footnote
    "The offline comparator is the exact per-edge 3-state DP - a bound no \
     strategy can beat. Loads never exceed 3*OPT by more than a constant, \
     matching the competitive ratio 3 proven for trees in the paper's \
     reference [10]. The read/write alternation adversary attains 3.";
  (* Dynamic vs static in hindsight on phase-structured traffic. *)
  let t2 = Table.create [ "phase length"; "dynamic load"; "static (nibble) load"; "dyn/static" ] in
  List.iter
    (fun len ->
      let prng = Prng.create 121212 in
      let tree = Builders.balanced ~arity:2 ~height:3 ~profile:(Builders.Uniform 2) in
      let leaves = Array.of_list (Tree.leaves tree) in
      let seq =
        Hbn_dynamic.Request.phases ~prng tree
          ~readers:[ leaves.(1); leaves.(2); leaves.(3) ]
          ~writer:leaves.(0) ~phase_length:len ~phases:8
      in
      let dyn = Hbn_dynamic.Online.run tree ~initial:leaves.(0) seq in
      let dyn_total = Array.fold_left ( + ) 0 dyn.Hbn_dynamic.Online.edge_loads in
      let w1 = Workload.empty tree ~objects:1 in
      List.iter
        (fun (r : Hbn_dynamic.Request.t) ->
          let v = r.Hbn_dynamic.Request.node in
          match r.Hbn_dynamic.Request.kind with
          | Hbn_dynamic.Request.Read ->
            Workload.set_read w1 ~obj:0 v (Workload.reads w1 ~obj:0 v + 1)
          | Hbn_dynamic.Request.Write ->
            Workload.set_write w1 ~obj:0 v (Workload.writes w1 ~obj:0 v + 1))
        seq;
      let static_total = Array.fold_left ( + ) 0 (Nibble.edge_loads w1) in
      Table.add_row t2
        [
          string_of_int len;
          string_of_int dyn_total;
          string_of_int static_total;
          Table.fmt_ratio (float_of_int dyn_total) (float_of_int static_total);
        ])
    [ 2; 5; 10; 25; 50; 100 ];
  Table.print t2;
  footnote
    "Longer phases favor online adaptation: the dynamic strategy \
     re-replicates per read phase and contracts per write phase, beating \
     every static placement once phases are long enough."

(* ------------------------------------------------------------------ *)
(* E13: capacity-constrained placement (cf. the paper's reference [13]). *)

let e13 ~quick () =
  header "E13" "Memory capacities: congestion as per-processor capacity shrinks";
  let t =
    Table.create
      [ "capacity"; "relocations"; "merges"; "congestion"; "vs unlimited"; "LB" ]
  in
  let prng = Prng.create 131313 in
  let tree = Builders.balanced ~arity:3 ~height:(if quick then 2 else 3)
      ~profile:(Builders.Uniform 2)
  in
  let objects = if quick then 12 else 30 in
  let w =
    Generators.zipf_popularity ~prng tree ~objects ~requests_per_leaf:30
      ~exponent:1.1 ~write_fraction:0.15
  in
  let res = Strategy.run w in
  let unlimited = Placement.congestion w res.Strategy.placement in
  let lb = Lower_bounds.combined w in
  List.iter
    (fun cap ->
      match Capacitated.apply w ~capacity:(fun _ -> cap) res.Strategy.placement with
      | out ->
        let c = Placement.congestion w out.Capacitated.placement in
        Table.add_row t
          [
            string_of_int cap;
            string_of_int out.Capacitated.relocations;
            string_of_int out.Capacitated.merges;
            Table.fmt_float c;
            Table.fmt_ratio c unlimited;
            Table.fmt_float lb;
          ]
      | exception Capacitated.Infeasible _ ->
        Table.add_row t [ string_of_int cap; "-"; "-"; "infeasible" ])
    [ 1000; 16; 8; 4; 2; 1 ];
  Table.print t;
  footnote
    "Post-processing the extended-nibble placement: overfull processors \
     evict least-used copies, merging into existing replicas when one is \
     near. Tight capacities trade replication away and the congestion \
     climbs towards (and past) single-copy territory; the factor-7 \
     guarantee does not carry over, as the companion paper [13] needs \
     different machinery."

(* ------------------------------------------------------------------ *)
(* E14: ablation — what each pipeline step buys.                        *)

let e14 ~quick () =
  header "E14" "Ablation: removing Step 2 or Step 3's load balancing";
  let t =
    Table.create
      [ "variant"; "instances"; "failures"; "mean C/LB"; "max C/LB";
        "Lemma 4.5 holds" ]
  in
  let n = if quick then 25 else 100 in
  let full_r = ref [] and naive_r = ref [] and skip_r = ref [] in
  let skip_failures = ref 0 and naive_l45 = ref 0 and full_l45 = ref 0 in
  for seed = 0 to n - 1 do
    let prng = Prng.create (140000 + seed) in
    let tree =
      Builders.random ~prng ~buses:(Prng.int_in prng 3 8)
        ~leaves:(Prng.int_in prng 6 14) ~profile:(Builders.Uniform 2)
    in
    let w =
      Generators.hotspot ~prng tree ~objects:6
        ~writers_per_object:(Prng.int_in prng 1 3)
        ~write_rate:(Prng.int_in prng 2 8) ~read_rate:8
    in
    let lb = Lower_bounds.combined w in
    if lb > 0. then begin
      let res = Strategy.run w in
      let lemma_bound placement tau =
        (* Does the Lemma 4.5 certificate hold for this placement? *)
        let nib = Placement.edge_loads w res.Strategy.nibble in
        let loads = Placement.edge_loads w placement in
        let ok = ref true in
        Array.iteri
          (fun e l -> if l > (4 * nib.(e)) + tau then ok := false)
          loads;
        !ok
      in
      full_r := (Placement.congestion w res.Strategy.placement /. lb) :: !full_r;
      if lemma_bound res.Strategy.placement res.Strategy.tau_max then
        incr full_l45;
      let naive = Hbn_core.Ablation.naive_nearest_leaf w in
      naive_r := (Placement.congestion w naive /. lb) :: !naive_r;
      if lemma_bound naive res.Strategy.tau_max then incr naive_l45;
      match Hbn_core.Ablation.skip_deletion w with
      | Hbn_core.Ablation.Mapped p ->
        skip_r := (Placement.congestion w p /. lb) :: !skip_r
      | Hbn_core.Ablation.Stuck _ -> incr skip_failures
    end
  done;
  let row name rs failures lemma =
    Table.add_row t
      [
        name;
        string_of_int n;
        failures;
        Table.fmt_float (Stats.mean rs);
        Table.fmt_float (List.fold_left Float.max 0. rs);
        lemma;
      ]
  in
  row "full strategy" !full_r "0" (Printf.sprintf "%d/%d" !full_l45 n);
  row "no load balancing (naive Step 3)" !naive_r "0"
    (Printf.sprintf "%d/%d" !naive_l45 n);
  row "no deletion (skip Step 2)" !skip_r
    (Printf.sprintf "%d/%d" !skip_failures n)
    "-";
  Table.print t;
  footnote
    "Skipping the deletion step invalidates Invariant 4.2's initialization \
     (copies may serve < kappa requests), and the mapping's free-edge \
     guarantee (Lemma 4.1) then really does fail on a fraction of \
     instances - Step 2 is what makes Step 3 sound. The naive mapping \
     always terminates but gives up the per-edge certificate and loses \
     congestion on hotspot workloads."

(* ------------------------------------------------------------------ *)
(* E15: congestion vs total communication load (the intro's argument).  *)

let e15 ~quick () =
  header "E15"
    "Why congestion, not total load: bottlenecks of total-load-optimal placements";
  let t =
    Table.create
      [ "family"; "n"; "mean C(tl-opt)/C(opt)"; "max"; "mean TL ratio" ]
  in
  let n_inst = if quick then 15 else 60 in
  let families = [ ("uniform", 0); ("hot-reader", 1); ("fan-in", 2) ] in
  List.iter
    (fun (fam, salt) ->
      let ratios = ref [] and tl_ratios = ref [] in
      for i = 0 to n_inst - 1 do
        let prng = Prng.create ((salt * 7907) + i + 150000) in
        let tree =
          Builders.star ~leaves:(Prng.int_in prng 3 5)
            ~profile:(Builders.Uniform 4)
        in
        let w = Workload.empty tree ~objects:2 in
        List.iter
          (fun leaf ->
            for obj = 0 to 1 do
              match salt with
              | 1 ->
                (* One hot processor reads everything; others write. *)
                if leaf = 1 then Workload.set_read w ~obj leaf (Prng.int_in prng 2 6)
                else Workload.set_write w ~obj leaf (Prng.int_in prng 0 3)
              | 2 ->
                (* Everyone writes to shared state. *)
                Workload.set_write w ~obj leaf (Prng.int_in prng 1 5)
              | _ ->
                Workload.set_read w ~obj leaf (Prng.int prng 4);
                Workload.set_write w ~obj leaf (Prng.int prng 4)
            done)
          (Tree.leaves tree);
        match
          ( Brute_force.min_total_load w ~candidates:`Leaves,
            Brute_force.optimum w ~candidates:`Leaves )
        with
        | tl, opt when opt.Brute_force.congestion > 0. ->
          ratios :=
            (tl.Brute_force.congestion /. opt.Brute_force.congestion)
            :: !ratios;
          let total v = Array.fold_left ( + ) 0 v in
          let tl_total = total tl.Brute_force.edge_loads in
          let cong_total = total opt.Brute_force.edge_loads in
          if tl_total > 0 then
            tl_ratios :=
              (float_of_int cong_total /. float_of_int tl_total) :: !tl_ratios
        | _ -> ()
        | exception Brute_force.Too_large _ -> ()
      done;
      Table.add_row t
        [
          fam;
          string_of_int (List.length !ratios);
          Table.fmt_float (Stats.mean !ratios);
          Table.fmt_float (List.fold_left Float.max 0. !ratios);
          Table.fmt_float (Stats.mean !tl_ratios);
        ])
    families;
  Table.print t;
  footnote
    "C(tl-opt)/C(opt): congestion suffered by the total-load-optimal \
     placement relative to the congestion optimum - the bottleneck effect \
     the paper's introduction warns about (\"simply reducing the total \
     communication load can result in bottlenecks\"). The last column \
     shows the price the congestion optimum pays in total load (modest)."

(* ------------------------------------------------------------------ *)
(* E16: scheduling-policy robustness of the simulator conclusions.      *)

let e16 ~quick () =
  header "E16" "Simulator scheduling ablation: makespan robustness";
  let t =
    Table.create
      [ "workload"; "strategy"; "congestion"; "fifo"; "round-robin";
        "reversed"; "spread" ]
  in
  let prng = Prng.create 161616 in
  let tree = Builders.balanced ~arity:3 ~height:2 ~profile:(Builders.Uniform 2) in
  let pairs = Hashtbl.create 8 in
  let workloads =
    ("bsp", Generators.bsp_neighbor_exchange tree ~supersteps:6 ~neighbors:2)
    :: workload_families prng tree ~objects:(if quick then 6 else 9)
  in
  List.iter
    (fun (wname, w) ->
      List.iter
        (fun (sname, p) ->
          let c = Placement.congestion w p in
          let mk policy = (Sim.run ~scale:2 ~policy w p).Sim.makespan in
          let f = mk Sim.Fifo and rr = mk Sim.Round_robin and rv = mk Sim.Reversed in
          let worst = max f (max rr rv) and best = min f (min rr rv) in
          List.iter
            (fun (pol, v) ->
              let prev = try Hashtbl.find pairs pol with Not_found -> [] in
              Hashtbl.replace pairs pol ((c, float_of_int v) :: prev))
            [ ("fifo", f); ("rr", rr); ("rev", rv) ];
          Table.add_row t
            [
              wname;
              sname;
              Table.fmt_float c;
              string_of_int f;
              string_of_int rr;
              string_of_int rv;
              Table.fmt_ratio (float_of_int worst) (float_of_int best);
            ])
        [
          ("ext-nibble", (Strategy.run w).Strategy.placement);
          ("owner", Baselines.owner w);
          ("full-repl", Baselines.full_replication w);
        ];
      Table.add_sep t)
    workloads;
  Table.print t;
  List.iter
    (fun pol ->
      footnote "Pearson(congestion, makespan) under %-11s = %s" pol
        (Table.fmt_float (Stats.pearson (Hashtbl.find pairs pol))))
    [ "fifo"; "rr"; "rev" ];
  footnote
    "All three work-conserving service orders give near-identical \
     makespans (spread close to 1), so E10's congestion-predicts-time \
     conclusion does not hinge on the scheduler. The 'bsp' row is the \
     deterministic stencil-exchange workload of a BSP parallel program."

(* ------------------------------------------------------------------ *)
(* E17: robustness of static placements under frequency drift.          *)

let e17 ~quick () =
  header "E17" "Frequency drift: when is recomputing the placement worth it?";
  let t =
    Table.create [ "perturbation"; "mean stale/fresh"; "max"; "mean stale/LB" ]
  in
  let n = if quick then 8 else 24 in
  let drifts =
    [ `Noise 0.1; `Noise 0.5; `Noise 2.0; `Rotate 1; `Rotate 2; `Rotate 4 ]
  in
  let results = List.map (fun d -> (d, ref [])) drifts in
  for seed = 0 to n - 1 do
    let prng = Prng.create (170000 + seed) in
    let tree =
      Builders.random ~prng ~buses:8 ~leaves:16 ~profile:(Builders.Uniform 2)
    in
    let w =
      (* Locality-heavy workload: each object has a home processor, the
         regime where placements are topology-sensitive. *)
      Generators.local_with_background ~prng tree ~objects:12 ~local_rate:40
        ~background_rate:2
    in
    let placement = (Strategy.run w).Strategy.placement in
    List.iter
      (fun (drift, acc) ->
        (* Two drift regimes: i.i.d. multiplicative noise on every rate,
           and a systematic shift that moves each processor's role to a
           leaf k positions over (hotspots wander through the machine). *)
        let leaves = Array.of_list (Tree.leaves tree) in
        let nl = Array.length leaves in
        let pos = Array.make (Tree.n tree) 0 in
        Array.iteri (fun i l -> pos.(l) <- i) leaves;
        let w' = Workload.empty tree ~objects:(Workload.num_objects w) in
        List.iter
          (fun leaf ->
            for obj = 0 to Workload.num_objects w - 1 do
              match drift with
              | `Noise amount ->
                let perturb rate =
                  if rate = 0 then 0
                  else begin
                    let f = 1. +. Prng.float prng amount in
                    let f = if Prng.bool prng then f else 1. /. f in
                    max 0 (int_of_float (Float.round (float_of_int rate *. f)))
                  end
                in
                Workload.set_read w' ~obj leaf (perturb (Workload.reads w ~obj leaf));
                Workload.set_write w' ~obj leaf (perturb (Workload.writes w ~obj leaf))
              | `Rotate k ->
                let target = leaves.((pos.(leaf) + k) mod nl) in
                Workload.set_read w' ~obj target (Workload.reads w ~obj leaf);
                Workload.set_write w' ~obj target (Workload.writes w ~obj leaf)
            done)
          (Tree.leaves tree);
        (* The stale placement may miss newly-requesting leaves entirely;
           serve them at the nearest existing copy (or skip the sample in
           the rare case an object appears from nothing). *)
        let ok = ref true in
        let copies =
          Array.init (Workload.num_objects w) (fun obj ->
              let cs = Placement.copies placement ~obj in
              if cs = [] && Workload.requesting_leaves w' ~obj <> [] then
                ok := false;
              cs)
        in
        if !ok then begin
          let stale = Placement.nearest w' ~copies in
          let stale_c = Placement.congestion w' stale in
          let fresh_c =
            Placement.congestion w' (Strategy.run w').Strategy.placement
          in
          let lb = Lower_bounds.combined w' in
          if fresh_c > 0. && lb > 0. then
            acc := (stale_c /. fresh_c, stale_c /. lb) :: !acc
        end)
      results
  done;
  List.iter
    (fun (drift, acc) ->
      let vs_fresh = List.map fst !acc and vs_lb = List.map snd !acc in
      let label =
        match drift with
        | `Noise a -> Printf.sprintf "noise %.0f%%" (a *. 100.)
        | `Rotate k -> Printf.sprintf "rotate %d" k
      in
      Table.add_row t
        [
          label;
          Table.fmt_float (Stats.mean vs_fresh);
          Table.fmt_float (List.fold_left Float.max 0. vs_fresh);
          Table.fmt_float (Stats.mean vs_lb);
        ])
    results;
  Table.print t;
  footnote
    "Stale = yesterday's placement re-evaluated on today's frequencies \
     (nearest-copy service). Under i.i.d. multiplicative noise the stale \
     placement matches a fresh recomputation - the strategy's decisions \
     depend on frequency ratios, so unbiased noise barely moves them and \
     precise estimates are unnecessary. A systematic shift that relocates \
     the hotspots (rotate k) is what actually hurts, and it is exactly \
     the regime where the dynamic companion strategy of E12 earns its \
     keep."

let all ~quick =
  [
    ("E1", e1 ~quick);
    ("E2", e2 ~quick);
    ("E3", e3 ~quick);
    ("E4", e4 ~quick);
    ("E5", e5 ~quick);
    ("E6", e6 ~quick);
    ("E7", e7 ~quick);
    ("E8", e8 ~quick);
    ("E9", e9 ~quick);
    ("E10", e10 ~quick);
    ("E11", e11 ~quick);
    ("E12", e12 ~quick);
    ("E13", e13 ~quick);
    ("E14", e14 ~quick);
    ("E15", e15 ~quick);
    ("E16", e16 ~quick);
    ("E17", e17 ~quick);
  ]
