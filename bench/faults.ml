(* Fault-injection benchmark: writes BENCH_faults.json.

   Run with:  dune exec bench/faults.exe [-- --smoke]
   Replays the Fault_cases matrix — the hardened distributed nibble
   under seeded drop/crash/cut plans — and records the deterministic
   recovery profile per case. bench/check.exe diffs those fields against
   the committed file.

   The "micro" object is a wall-clock note, ignored by the gate: it
   times the runtime's send-validation on a large star, the worst case
   for the old O(degree) neighbor scan that the precomputed per-node
   membership tables replaced (every leaf's sends used to scan the hub's
   full adjacency; now validation is a hash lookup).

   --smoke runs one drop-plan case and checks it recovers; no JSON. *)

module Builders = Hbn_tree.Builders
module Tree = Hbn_tree.Tree
module Runtime = Hbn_dist.Runtime
module FC = Fault_cases

(* One lossless convergecast on a star: every leaf sends one message per
   wave to the hub, so [waves × leaves] validated sends dominate. *)
let star_micro ~leaves ~waves =
  let t = Builders.star ~leaves ~profile:(Builders.Uniform 1) in
  let step ~round ~node (sent : int) ~inbox =
    ignore inbox;
    if node > 0 && sent < waves then ((sent + 1), [ (0, round) ])
    else (sent, [])
  in
  let t0 = Unix.gettimeofday () in
  let out = Runtime.run t ~init:(fun _ -> 0) ~step in
  let elapsed = Unix.gettimeofday () -. t0 in
  let sends = out.Runtime.stats.Runtime.messages in
  (sends, elapsed /. float_of_int (max 1 sends) *. 1e9)

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  if smoke then begin
    let prng = Hbn_prng.Prng.create FC.seed in
    let case =
      FC.run_case ~prng
        ~topology:(List.hd (FC.topologies ()))
        ~plan:"drop=0.2,until=60"
    in
    if case.FC.outcome <> "recovered" then begin
      Printf.eprintf "bench/faults --smoke: expected recovery, got %s\n"
        case.FC.outcome;
      exit 1
    end;
    Printf.printf
      "bench/faults --smoke: recovered on %s under %s (%d rounds, %d \
       retransmissions)\n"
      case.FC.topology case.FC.plan case.FC.rounds case.FC.retransmissions
  end
  else begin
    let cases = FC.all () in
    let sends, ns_per_send = star_micro ~leaves:4096 ~waves:8 in
    let oc = open_out "BENCH_faults.json" in
    output_string oc (Meta.header ~schema:FC.schema);
    Printf.fprintf oc
      " \"micro\":{\"star_leaves\":4096,\"sends\":%d,\"ns_per_send\":%.1f},\n"
      sends ns_per_send;
    output_string oc " \"cases\":[\n";
    List.iteri
      (fun i c ->
        if i > 0 then output_string oc ",\n";
        output_string oc (FC.json_of_case c))
      cases;
    output_string oc "\n]}\n";
    close_out oc;
    Printf.printf "bench/faults: wrote BENCH_faults.json (%d cases)\n"
      (List.length cases);
    List.iter
      (fun c ->
        Printf.printf
          "  %-16s %-40s %-22s %5d rounds %6d msgs %5d rexmit\n" c.FC.topology
          c.FC.plan c.FC.outcome c.FC.rounds c.FC.messages c.FC.retransmissions)
      cases
  end
