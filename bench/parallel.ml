(* Scaling of the domain-parallel per-object pipeline.

   Run with:  dune exec bench/parallel.exe [-- OUTPUT.json]
          or  dune exec bench/parallel.exe -- --smoke
   The full run executes the whole strategy (Steps 1-3 plus the final
   evaluation) on one large random instance at --jobs 1, 2 and 4 and
   records wall times and speedups in BENCH_parallel.json, together with
   the core count the runtime detects — scaling numbers are only
   meaningful when the host actually has that many cores. Every run must
   produce a bit-identical [Strategy.result] and evaluation; the bench
   fails (exit 1) on any divergence. [--smoke] checks equality on a small
   instance for `make check`: no timing claims, no JSON written. *)

module Builders = Hbn_tree.Builders
module Tree = Hbn_tree.Tree
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Exec = Hbn_exec.Exec
module Json = Hbn_obs.Json

let seed = 20260806
let job_counts = [ 1; 2; 4 ]

(* Fresh instance per run so every job count pays the same view-cache
   warm-up; the generators are deterministic in the seed. *)
let instance ~arity ~height ~objects () =
  let tree = Builders.balanced ~arity ~height ~profile:(Builders.Uniform 2) in
  let w =
    Generators.uniform ~prng:(Prng.create (seed + 1)) tree ~objects ~max_rate:8
  in
  (tree, w)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* End-to-end pipeline: strategy + congestion evaluation, both on the
   runner under test. *)
let run_once ~jobs mk =
  Exec.with_runner ~jobs (fun exec ->
      let _, w = mk () in
      let out, secs =
        time (fun () ->
            let res = Strategy.run ~exec w in
            let c = Placement.evaluate ~exec w res.Strategy.placement in
            (res, c))
      in
      (secs, out))

(* Best of [repeats] to shave scheduler noise; equality is checked on
   every repeat, not just the timed best. *)
let measure ~repeats ~jobs mk =
  let best = ref infinity and result = ref None in
  for _ = 1 to repeats do
    let secs, res = run_once ~jobs mk in
    (match !result with
    | None -> result := Some res
    | Some prev ->
      if prev <> res then begin
        Printf.eprintf
          "bench/parallel: jobs=%d produced different results across repeats\n"
          jobs;
        exit 1
      end);
    if secs < !best then best := secs
  done;
  (!best, Option.get !result)

(* [reference] and [res] are (Strategy.result, Placement.congestion)
   pairs — all plain data, so structural compare covers the placement,
   every stage, the stats and the evaluation at once. *)
let check_identical ~reference ~jobs res =
  if res <> reference then begin
    Printf.eprintf
      "bench/parallel: jobs=%d diverges from jobs=1 (placement, stats or \
       evaluation differ)\n"
      jobs;
    exit 1
  end

let smoke () =
  let mk = instance ~arity:3 ~height:2 ~objects:12 in
  let results =
    List.map (fun jobs -> snd (run_once ~jobs mk)) job_counts
  in
  (match results with
  | reference :: rest ->
    List.iteri
      (fun i res ->
        check_identical ~reference ~jobs:(List.nth job_counts (i + 1)) res)
      rest
  | [] -> ());
  print_endline
    "bench/parallel --smoke: jobs 1/2/4 bit-identical (strategy + evaluate)"

(* The previous baseline's sequential time, carried into the fresh file
   as "prev_seq_seconds" so a regeneration records the speed delta it
   overwrote (accepts the v1 schema too, which lacked the field). *)
let prev_seq_seconds path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> None
  | text -> (
    match Json.parse_result text with
    | Error _ -> None
    | Ok doc ->
      Option.bind (Json.member "runs" doc) Json.to_list
      |> Option.map
           (List.filter_map (fun run ->
                match
                  ( Option.bind (Json.member "jobs" run) Json.to_int,
                    Option.bind (Json.member "seconds" run) Json.to_float )
                with
                | Some 1, Some s -> Some s
                | _ -> None))
      |> function
      | Some (s :: _) -> Some s
      | _ -> None)

let full out_path =
  let repeats = 3 in
  let arity = 4 and height = 4 and objects = 384 in
  let mk = instance ~arity ~height ~objects in
  let tree, w = mk () in
  let prev_seq = prev_seq_seconds out_path in
  let cores = Domain.recommended_domain_count () in
  let measured =
    List.map
      (fun jobs ->
        let secs, res = measure ~repeats ~jobs mk in
        (jobs, secs, res))
      job_counts
  in
  let _, base_s, reference =
    match measured with m :: _ -> m | [] -> assert false
  in
  List.iter
    (fun (jobs, _, res) ->
      if jobs <> 1 then check_identical ~reference ~jobs res)
    measured;
  let oc = open_out out_path in
  output_string oc (Meta.header ~schema:"hbn.bench.parallel/v2");
  Printf.fprintf oc
    " \"topology\":\"balanced-a%dh%d\",\"leaves\":%d,\"objects\":%d,\n\
    \ \"seed\":%d,\"repeats\":%d,%s\n\
    \ \"runs\":[%s],\n\
    \ \"identical\":true}\n"
    arity height (Tree.num_leaves tree) (Workload.num_objects w) seed repeats
    (match prev_seq with
    | None -> ""
    | Some s -> Printf.sprintf "\"prev_seq_seconds\":%.6f," s)
    (String.concat ","
       (List.map
          (fun (jobs, secs, _) ->
            (* The scheduling shape of the per-object fan-out: auto chunk
               size, task count, and tasks per chunk. Deterministic in
               (jobs, objects) — bench/check.exe re-derives and gates
               them. *)
            let chunk = Exec.auto_chunk ~jobs objects in
            let chunks = (objects + chunk - 1) / chunk in
            Printf.sprintf
              "\n\
              \  {\"jobs\":%d,\"seconds\":%.6f,\"speedup\":%.2f,\"chunk\":%d,\"chunks\":%d,\"tasks_per_chunk\":%.2f}"
              jobs secs (base_s /. secs) chunk chunks
              (float_of_int objects /. float_of_int chunks))
          measured));
  close_out oc;
  Printf.printf "wrote %s (detected cores: %d)\n" out_path cores;
  List.iter
    (fun (jobs, secs, _) ->
      Printf.printf "  jobs %d  %8.3f s  speedup %.2fx\n" jobs secs
        (base_s /. secs))
    measured;
  if cores < List.fold_left max 1 job_counts then
    Printf.printf
      "  note: only %d core(s) available; speedups above 1x cannot appear \
       on this host\n"
      cores

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ :: path :: _ -> full path
  | _ -> full "BENCH_parallel.json"
