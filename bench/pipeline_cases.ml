(* The pipeline benchmark's case matrix, shared between the writer
   (bench/pipeline.exe) and the regression gate (bench/check.exe).

   The PRNG is threaded through the whole matrix in order, so the cases
   are only reproducible as one sequence from [seed] — both consumers
   must run [all ()] whole, never individual cases. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Sim = Hbn_sim.Sim
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink
module Metrics = Hbn_obs.Metrics

let schema = "hbn.bench.pipeline/v1"
let seed = 20260806
let objects = 32

type case = {
  topology : string;
  workload : string;
  phases : (string * int * int64) list;  (* name, calls, total ns *)
  counters : (string * int) list;
  nodes : int;
  leaves : int;
  objects : int;
  requests : int;
  congestion : float;
  makespan : int;
}

let topologies prng =
  [
    ("balanced-a3h3", Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2));
    ("caterpillar-12x3", Builders.caterpillar ~spine:12 ~leaves_per_bus:3 ~profile:(Builders.Uniform 2));
    ("random-b12l24", Builders.random ~prng ~buses:12 ~leaves:24 ~profile:(Builders.Uniform 2));
    ("star-24", Builders.star ~leaves:24 ~profile:(Builders.Uniform 4));
  ]

let workload_of name ~prng tree ~objects =
  match name with
  | "uniform" -> Generators.uniform ~prng tree ~objects ~max_rate:8
  | "zipf" ->
    Generators.zipf_popularity ~prng tree ~objects ~requests_per_leaf:24
      ~exponent:1.1 ~write_fraction:0.3
  | "hotspot" ->
    Generators.hotspot ~prng tree ~objects ~writers_per_object:2 ~write_rate:8
      ~read_rate:6
  | _ -> invalid_arg "workload_of"

let run_case ~prng ~topology:(tname, tree) ~workload:wname ~objects =
  let w = workload_of wname ~prng tree ~objects in
  Metrics.reset Metrics.global;
  let sink, read_timings = Sink.timings () in
  let congestion, makespan =
    Trace.with_sink sink (fun () ->
        let res = Strategy.run w in
        let out = Sim.run ~scale:4 w res.Strategy.placement in
        (Placement.congestion w res.Strategy.placement, out.Sim.makespan))
  in
  {
    topology = tname;
    workload = wname;
    phases = read_timings ();
    counters = Metrics.counters Metrics.global;
    nodes = Tree.n tree;
    leaves = Tree.num_leaves tree;
    objects;
    requests = Workload.total_requests w;
    congestion;
    makespan;
  }

let all () =
  let prng = Prng.create seed in
  List.concat_map
    (fun topology ->
      List.map
        (fun workload -> run_case ~prng ~topology ~workload ~objects)
        [ "uniform"; "zipf"; "hotspot" ])
    (topologies prng)

(* Minimal JSON printing: every name in a record is plain ASCII, so
   OCaml's %S escaping coincides with JSON string escaping. *)
let json_of_case c =
  let buf = Buffer.create 512 in
  let str s = Printf.sprintf "%S" s in
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"topology\":%s,\"workload\":%s,\"nodes\":%d,\"leaves\":%d,\
        \"objects\":%d,\"requests\":%d,\"congestion\":%.3f,\"makespan\":%d,\n"
       (str c.topology) (str c.workload) c.nodes c.leaves c.objects c.requests
       c.congestion c.makespan);
  Buffer.add_string buf "     \"phases\":{";
  List.iteri
    (fun i (name, calls, total_ns) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%s:{\"calls\":%d,\"total_ns\":%Ld}" (str name) calls
           total_ns))
    c.phases;
  Buffer.add_string buf "},\n     \"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%s:%d" (str name) v))
    c.counters;
  Buffer.add_string buf "}}";
  Buffer.contents buf
