(* Machine-readable perf baseline for the strategy pipeline.

   Run with:  dune exec bench/pipeline.exe [-- OUTPUT.json]
   Writes BENCH_pipeline.json (default, in the current directory): one
   record per topology x workload case with per-phase wall times gathered
   through the Hbn_obs timing sink, the pipeline counters, and the
   resulting congestion/makespan. Future PRs diff these numbers against
   their own run to catch hot-path regressions; the JSON is this repo's
   BENCH_* trajectory format. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Sim = Hbn_sim.Sim
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink
module Metrics = Hbn_obs.Metrics

type case = {
  topology : string;
  workload : string;
  phases : (string * int * int64) list;  (* name, calls, total ns *)
  counters : (string * int) list;
  nodes : int;
  leaves : int;
  objects : int;
  requests : int;
  congestion : float;
  makespan : int;
}

let topologies prng =
  [
    ("balanced-a3h3", Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2));
    ("caterpillar-12x3", Builders.caterpillar ~spine:12 ~leaves_per_bus:3 ~profile:(Builders.Uniform 2));
    ("random-b12l24", Builders.random ~prng ~buses:12 ~leaves:24 ~profile:(Builders.Uniform 2));
    ("star-24", Builders.star ~leaves:24 ~profile:(Builders.Uniform 4));
  ]

let workload_of name ~prng tree ~objects =
  match name with
  | "uniform" -> Generators.uniform ~prng tree ~objects ~max_rate:8
  | "zipf" ->
    Generators.zipf_popularity ~prng tree ~objects ~requests_per_leaf:24
      ~exponent:1.1 ~write_fraction:0.3
  | "hotspot" ->
    Generators.hotspot ~prng tree ~objects ~writers_per_object:2 ~write_rate:8
      ~read_rate:6
  | _ -> invalid_arg "workload_of"

let run_case ~prng ~topology:(tname, tree) ~workload:wname ~objects =
  let w = workload_of wname ~prng tree ~objects in
  Metrics.reset Metrics.global;
  let sink, read_timings = Sink.timings () in
  let congestion, makespan =
    Trace.with_sink sink (fun () ->
        let res = Strategy.run w in
        let out = Sim.run ~scale:4 w res.Strategy.placement in
        (Placement.congestion w res.Strategy.placement, out.Sim.makespan))
  in
  {
    topology = tname;
    workload = wname;
    phases = read_timings ();
    counters = Metrics.counters Metrics.global;
    nodes = Tree.n tree;
    leaves = Tree.num_leaves tree;
    objects;
    requests = Workload.total_requests w;
    congestion;
    makespan;
  }

(* Minimal JSON printing: every name in a record is plain ASCII, so
   OCaml's %S escaping coincides with JSON string escaping. *)
let json_of_case c =
  let buf = Buffer.create 512 in
  let str s = Printf.sprintf "%S" s in
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"topology\":%s,\"workload\":%s,\"nodes\":%d,\"leaves\":%d,\
        \"objects\":%d,\"requests\":%d,\"congestion\":%.3f,\"makespan\":%d,\n"
       (str c.topology) (str c.workload) c.nodes c.leaves c.objects c.requests
       c.congestion c.makespan);
  Buffer.add_string buf "     \"phases\":{";
  List.iteri
    (fun i (name, calls, total_ns) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%s:{\"calls\":%d,\"total_ns\":%Ld}" (str name) calls
           total_ns))
    c.phases;
  Buffer.add_string buf "},\n     \"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%s:%d" (str name) v))
    c.counters;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pipeline.json"
  in
  let prng = Prng.create 20260806 in
  let cases =
    List.concat_map
      (fun topology ->
        List.map
          (fun workload -> run_case ~prng ~topology ~workload ~objects:32)
          [ "uniform"; "zipf"; "hotspot" ])
      (topologies prng)
  in
  let oc = open_out out_path in
  output_string oc "{\"schema\":\"hbn.bench.pipeline/v1\",\n \"cases\":[\n";
  List.iteri
    (fun i c ->
      if i > 0 then output_string oc ",\n";
      output_string oc (json_of_case c))
    cases;
  output_string oc "\n]}\n";
  close_out oc;
  Printf.printf "wrote %d cases to %s\n" (List.length cases) out_path;
  List.iter
    (fun c ->
      let total =
        List.fold_left
          (fun acc (name, _, ns) ->
            if name = "strategy.run" then Int64.to_float ns /. 1e6 else acc)
          0. c.phases
      in
      Printf.printf "  %-18s %-8s strategy %.2f ms, congestion %.1f\n"
        c.topology c.workload total c.congestion)
    cases
