(* Machine-readable perf baseline for the strategy pipeline.

   Run with:  dune exec bench/pipeline.exe [-- OUTPUT.json]
   Writes BENCH_pipeline.json (default, in the current directory): one
   record per topology x workload case with per-phase wall times gathered
   through the Hbn_obs timing sink, the pipeline counters, and the
   resulting congestion/makespan. The case matrix lives in
   Pipeline_cases, shared with bench/check.exe which diffs the
   deterministic fields of a fresh run against the committed file to
   catch behavioural regressions; the JSON is this repo's BENCH_*
   trajectory format. *)

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pipeline.json"
  in
  let cases = Pipeline_cases.all () in
  let oc = open_out out_path in
  output_string oc (Meta.header ~schema:Pipeline_cases.schema);
  output_string oc " \"cases\":[\n";
  List.iteri
    (fun i c ->
      if i > 0 then output_string oc ",\n";
      output_string oc (Pipeline_cases.json_of_case c))
    cases;
  output_string oc "\n]}\n";
  close_out oc;
  Printf.printf "wrote %d cases to %s\n" (List.length cases) out_path;
  List.iter
    (fun c ->
      let total =
        List.fold_left
          (fun acc (name, _, ns) ->
            if name = "strategy.run" then Int64.to_float ns /. 1e6 else acc)
          0. c.Pipeline_cases.phases
      in
      Printf.printf "  %-18s %-8s strategy %.2f ms, congestion %.1f\n"
        c.Pipeline_cases.topology c.Pipeline_cases.workload total
        c.Pipeline_cases.congestion)
    cases
