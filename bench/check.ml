(* Regression gate over the committed pipeline baseline.

   Run with:  dune exec bench/check.exe [-- BASELINE.json]
   Re-runs the Pipeline_cases matrix and compares every deterministic
   field — instance shape, congestion, makespan, pipeline counters —
   against the committed BENCH_pipeline.json. Wall times ("phases"
   totals) and the environment header ("meta") are noise and are
   ignored, but phase names and call counts are behaviour, so they are
   checked too. Exits 1 listing every divergence: a diff here means a
   code change altered what the pipeline computes, not just how fast. *)

module Json = Hbn_obs.Json
module PC = Pipeline_cases

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "bench/check: %s\n" msg)
    fmt

let get name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> raise (Json.Parse (Printf.sprintf "missing or mistyped %S" name))

(* Committed congestion went through %.3f; render the fresh value the
   same way so the comparison is exact, not epsilon-based. *)
let fmt_congestion c = Printf.sprintf "%.3f" c

let check_case baseline fresh =
  let label = Printf.sprintf "%s/%s" fresh.PC.topology fresh.PC.workload in
  let want_str name v = get name Json.to_string baseline = v in
  if not (want_str "topology" fresh.PC.topology)
     || not (want_str "workload" fresh.PC.workload)
  then
    fail "case order diverged at %s (baseline has %s/%s)" label
      (get "topology" Json.to_string baseline)
      (get "workload" Json.to_string baseline)
  else begin
    let check_int name v =
      let b = get name Json.to_int baseline in
      if b <> v then fail "%s: %s %d (baseline) <> %d (fresh)" label name b v
    in
    check_int "nodes" fresh.PC.nodes;
    check_int "leaves" fresh.PC.leaves;
    check_int "objects" fresh.PC.objects;
    check_int "requests" fresh.PC.requests;
    check_int "makespan" fresh.PC.makespan;
    let b_congestion =
      fmt_congestion (get "congestion" Json.to_float baseline)
    in
    let f_congestion = fmt_congestion fresh.PC.congestion in
    if b_congestion <> f_congestion then
      fail "%s: congestion %s (baseline) <> %s (fresh)" label b_congestion
        f_congestion;
    (* Counters: exact same name set and totals. *)
    let b_counters =
      match Json.member "counters" baseline with
      | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match Json.to_int v with
            | Some n -> (k, n)
            | None -> raise (Json.Parse ("counter " ^ k ^ " not an int")))
          kvs
        |> List.sort compare
      | _ -> raise (Json.Parse "missing counters object")
    in
    if b_counters <> fresh.PC.counters then begin
      let show kvs =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)
      in
      fail "%s: counters {%s} (baseline) <> {%s} (fresh)" label
        (show b_counters)
        (show fresh.PC.counters)
    end;
    (* Phase names and call counts are deterministic; durations are not. *)
    let b_phases =
      match Json.member "phases" baseline with
      | Some (Json.Obj kvs) ->
        List.map (fun (k, v) -> (k, get "calls" Json.to_int v)) kvs
      | _ -> raise (Json.Parse "missing phases object")
    in
    let f_phases =
      List.map (fun (name, calls, _ns) -> (name, calls)) fresh.PC.phases
    in
    if List.sort compare b_phases <> List.sort compare f_phases then
      fail "%s: phase names/call counts diverged from baseline" label
  end

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pipeline.json"
  in
  let doc =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> (
      match Json.parse_result text with
      | Ok doc -> doc
      | Error m ->
        Printf.eprintf "bench/check: cannot parse %s: %s\n" path m;
        exit 1)
    | exception Sys_error m ->
      Printf.eprintf "bench/check: cannot read baseline: %s\n" m;
      exit 1
  in
  (match Json.member "schema" doc with
  | Some (Json.Str s) when s = PC.schema -> ()
  | _ ->
    Printf.eprintf "bench/check: %s is not a %s file\n" path PC.schema;
    exit 1);
  let baseline_cases =
    match Option.bind (Json.member "cases" doc) Json.to_list with
    | Some l -> l
    | None ->
      Printf.eprintf "bench/check: %s has no cases array\n" path;
      exit 1
  in
  let fresh = PC.all () in
  if List.length baseline_cases <> List.length fresh then
    fail "case count %d (baseline) <> %d (fresh)"
      (List.length baseline_cases) (List.length fresh)
  else begin
    try List.iter2 check_case baseline_cases fresh
    with Json.Parse m ->
      fail "malformed baseline case: %s" m
  end;
  if !failures > 0 then begin
    Printf.eprintf
      "bench/check: %d divergence(s) from %s — a code change altered \
       pipeline results (regenerate the baseline only if that was the \
       point)\n"
      !failures path;
    exit 1
  end;
  Printf.printf "bench/check: %d cases match %s (deterministic fields)\n"
    (List.length fresh) path
