(* Regression gate over the committed baselines.

   Run with:
     dune exec bench/check.exe \
       [-- PIPELINE.json [FAULTS.json [PARALLEL.json [ASYNC.json
            [MONITOR.json [SERVE.json]]]]]]
   Re-runs the Pipeline_cases matrix and compares every deterministic
   field — instance shape, congestion, makespan, pipeline counters —
   against the committed BENCH_pipeline.json. Wall times ("phases"
   totals) and the environment header ("meta") are noise and are
   ignored, but phase names and call counts are behaviour, so they are
   checked too. Then re-runs the Fault_cases matrix the same way against
   BENCH_faults.json (the "micro" wall-clock note is ignored), and
   statically validates BENCH_parallel.json's deterministic fields
   (schema, the identical flag, chunk-scheduling arithmetic), re-runs
   the Async_cases matrix — the same traffic simulated under each
   per-level link model — against BENCH_async.json, and re-runs the
   Monitor_cases matrix — synthetic drift workloads through the
   streaming detectors — against BENCH_monitor.json (the "micro"
   wall-clock note is ignored), and re-runs the Serve_cases matrix —
   the drift generators through the epoch-based adaptive serving
   tier — against BENCH_serve.json. Exits 1 listing every divergence:
   a diff here means a code change altered what the pipeline (or the
   fault recovery, the drift detection, or the serving adaptation)
   computes, not just how fast. *)

module Json = Hbn_obs.Json
module PC = Pipeline_cases
module FC = Fault_cases
module AC = Async_cases
module MC = Monitor_cases
module SC = Serve_cases

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "bench/check: %s\n" msg)
    fmt

let get name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> raise (Json.Parse (Printf.sprintf "missing or mistyped %S" name))

(* Committed congestion went through %.3f; render the fresh value the
   same way so the comparison is exact, not epsilon-based. *)
let fmt_congestion c = Printf.sprintf "%.3f" c

let check_case baseline fresh =
  let label = Printf.sprintf "%s/%s" fresh.PC.topology fresh.PC.workload in
  let want_str name v = get name Json.to_string baseline = v in
  if not (want_str "topology" fresh.PC.topology)
     || not (want_str "workload" fresh.PC.workload)
  then
    fail "case order diverged at %s (baseline has %s/%s)" label
      (get "topology" Json.to_string baseline)
      (get "workload" Json.to_string baseline)
  else begin
    let check_int name v =
      let b = get name Json.to_int baseline in
      if b <> v then fail "%s: %s %d (baseline) <> %d (fresh)" label name b v
    in
    check_int "nodes" fresh.PC.nodes;
    check_int "leaves" fresh.PC.leaves;
    check_int "objects" fresh.PC.objects;
    check_int "requests" fresh.PC.requests;
    check_int "makespan" fresh.PC.makespan;
    let b_congestion =
      fmt_congestion (get "congestion" Json.to_float baseline)
    in
    let f_congestion = fmt_congestion fresh.PC.congestion in
    if b_congestion <> f_congestion then
      fail "%s: congestion %s (baseline) <> %s (fresh)" label b_congestion
        f_congestion;
    (* Counters: exact same name set and totals. *)
    let b_counters =
      match Json.member "counters" baseline with
      | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match Json.to_int v with
            | Some n -> (k, n)
            | None -> raise (Json.Parse ("counter " ^ k ^ " not an int")))
          kvs
        |> List.sort compare
      | _ -> raise (Json.Parse "missing counters object")
    in
    if b_counters <> fresh.PC.counters then begin
      let show kvs =
        String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)
      in
      fail "%s: counters {%s} (baseline) <> {%s} (fresh)" label
        (show b_counters)
        (show fresh.PC.counters)
    end;
    (* Phase names and call counts are deterministic; durations are not. *)
    let b_phases =
      match Json.member "phases" baseline with
      | Some (Json.Obj kvs) ->
        List.map (fun (k, v) -> (k, get "calls" Json.to_int v)) kvs
      | _ -> raise (Json.Parse "missing phases object")
    in
    let f_phases =
      List.map (fun (name, calls, _ns) -> (name, calls)) fresh.PC.phases
    in
    if List.sort compare b_phases <> List.sort compare f_phases then
      fail "%s: phase names/call counts diverged from baseline" label
  end

(* Fault-recovery baseline: every field of a case is deterministic, so
   the comparison is exact (congestion through the same %.3f the writer
   used). *)
let check_fault_case baseline fresh =
  let label = Printf.sprintf "%s under %s" fresh.FC.topology fresh.FC.plan in
  if
    get "topology" Json.to_string baseline <> fresh.FC.topology
    || get "plan" Json.to_string baseline <> fresh.FC.plan
  then
    fail "fault case order diverged at %s (baseline has %s under %s)" label
      (get "topology" Json.to_string baseline)
      (get "plan" Json.to_string baseline)
  else begin
    let check_str name v =
      let b = get name Json.to_string baseline in
      if b <> v then fail "%s: %s %S (baseline) <> %S (fresh)" label name b v
    in
    let check_int name v =
      let b = get name Json.to_int baseline in
      if b <> v then fail "%s: %s %d (baseline) <> %d (fresh)" label name b v
    in
    check_str "outcome" fresh.FC.outcome;
    check_int "rounds" fresh.FC.rounds;
    check_int "messages" fresh.FC.messages;
    check_int "retransmissions" fresh.FC.retransmissions;
    check_int "duplicates" fresh.FC.duplicates;
    check_int "pure_acks" fresh.FC.pure_acks;
    check_int "fault_events" fresh.FC.fault_events;
    check_int "dropped" fresh.FC.dropped;
    check_int "undecided" fresh.FC.undecided;
    check_int "tel_points" fresh.FC.tel_points;
    check_int "tel_sent" fresh.FC.tel_sent;
    check_int "tel_bytes" fresh.FC.tel_bytes;
    check_int "tel_peak_sent" fresh.FC.tel_peak_sent;
    let b_congestion = fmt_congestion (get "congestion" Json.to_float baseline) in
    let f_congestion = fmt_congestion fresh.FC.congestion in
    if b_congestion <> f_congestion then
      fail "%s: congestion %s (baseline) <> %s (fresh)" label b_congestion
        f_congestion
  end

(* Async-simulation baseline: every field is deterministic (the event
   engine is bit-identical across reruns); floats went through the
   writer's %.3f, so render the fresh values the same way and compare
   exactly. *)
let check_async_case baseline fresh =
  let label = Printf.sprintf "%s over %s" fresh.AC.topology fresh.AC.link in
  if
    get "topology" Json.to_string baseline <> fresh.AC.topology
    || get "link" Json.to_string baseline <> fresh.AC.link
  then
    fail "async case order diverged at %s (baseline has %s over %s)" label
      (get "topology" Json.to_string baseline)
      (get "link" Json.to_string baseline)
  else begin
    let check_int name v =
      let b = get name Json.to_int baseline in
      if b <> v then fail "%s: %s %d (baseline) <> %d (fresh)" label name b v
    in
    let check_float name v =
      let b = fmt_congestion (get name Json.to_float baseline) in
      let f = fmt_congestion v in
      if b <> f then fail "%s: %s %s (baseline) <> %s (fresh)" label name b f
    in
    check_int "makespan" fresh.AC.makespan;
    check_int "packets" fresh.AC.packets;
    check_int "transmissions" fresh.AC.transmissions;
    check_int "max_dilation" fresh.AC.max_dilation;
    check_float "completion" fresh.AC.completion;
    check_float "congestion" fresh.AC.congestion
  end

(* Drift-detection baseline: the synthetic workloads, the jitter hash
   and the detectors are all deterministic, so every field compares
   exactly (the estimator floats through the writer's %.3f). *)
let check_monitor_case baseline fresh =
  let label = fresh.MC.workload in
  if get "workload" Json.to_string baseline <> fresh.MC.workload then
    fail "monitor case order diverged at %s (baseline has %s)" label
      (get "workload" Json.to_string baseline)
  else begin
    let check_int name v =
      let b = get name Json.to_int baseline in
      if b <> v then fail "%s: %s %d (baseline) <> %d (fresh)" label name b v
    in
    let check_float name v =
      let b = fmt_congestion (get name Json.to_float baseline) in
      let f = fmt_congestion v in
      if b <> f then fail "%s: %s %s (baseline) <> %s (fresh)" label name b f
    in
    check_int "rounds" fresh.MC.rounds;
    check_int "points" fresh.MC.points;
    check_int "alerts" fresh.MC.alerts;
    check_int "cusum_alerts" fresh.MC.cusum_alerts;
    check_int "ph_alerts" fresh.MC.ph_alerts;
    check_int "first_alert_round" fresh.MC.first_alert_round;
    let b_verdict = get "verdict" Json.to_string baseline in
    if b_verdict <> fresh.MC.verdict then
      fail "%s: verdict %S (baseline) <> %S (fresh)" label b_verdict
        fresh.MC.verdict;
    check_float "sent_p50" fresh.MC.sent_p50;
    check_float "sent_p95" fresh.MC.sent_p95;
    check_float "sent_mean" fresh.MC.sent_mean
  end

(* Serving-tier baseline: generators, epoch arithmetic, the climb PRNG
   and the hysteresis gate are all deterministic, so every field
   compares exactly (floats through the writer's %.3f). *)
let check_serve_case baseline fresh =
  let label = fresh.SC.workload in
  if get "workload" Json.to_string baseline <> fresh.SC.workload then
    fail "serve case order diverged at %s (baseline has %s)" label
      (get "workload" Json.to_string baseline)
  else begin
    let check_int name v =
      let b = get name Json.to_int baseline in
      if b <> v then fail "%s: %s %d (baseline) <> %d (fresh)" label name b v
    in
    let check_float name v =
      let b = fmt_congestion (get name Json.to_float baseline) in
      let f = fmt_congestion v in
      if b <> f then fail "%s: %s %s (baseline) <> %s (fresh)" label name b f
    in
    check_int "epochs" fresh.SC.epochs;
    check_int "requests" fresh.SC.requests;
    check_int "alerts" fresh.SC.alerts;
    check_int "reoptimized" fresh.SC.reoptimized;
    check_int "bytes_migrated" fresh.SC.bytes_migrated;
    check_int "max_epoch_bytes" fresh.SC.max_epoch_bytes;
    (match Json.member "budget_ok" baseline with
    | Some (Json.Bool b) ->
      if b <> fresh.SC.budget_ok then
        fail "%s: budget_ok %b (baseline) <> %b (fresh)" label b
          fresh.SC.budget_ok
    | _ -> fail "%s: missing budget_ok" label);
    check_int "replications" fresh.SC.replications;
    check_int "migrations" fresh.SC.migrations;
    check_int "contractions" fresh.SC.contractions;
    let b_verdict = get "verdict" Json.to_string baseline in
    if b_verdict <> fresh.SC.verdict then
      fail "%s: verdict %S (baseline) <> %S (fresh)" label b_verdict
        fresh.SC.verdict;
    check_float "mean_serve" fresh.SC.mean_serve;
    check_float "mean_stale" fresh.SC.mean_stale;
    check_float "mean_oracle" fresh.SC.mean_oracle;
    check_float "recovered" fresh.SC.recovered
  end

let load_doc ~path ~schema =
  let doc =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> (
      match Json.parse_result text with
      | Ok doc -> doc
      | Error m ->
        Printf.eprintf "bench/check: cannot parse %s: %s\n" path m;
        exit 1)
    | exception Sys_error m ->
      Printf.eprintf "bench/check: cannot read baseline: %s\n" m;
      exit 1
  in
  (match Json.member "schema" doc with
  | Some (Json.Str s) when s = schema -> ()
  | _ ->
    Printf.eprintf "bench/check: %s is not a %s file\n" path schema;
    exit 1);
  doc

let load_baseline ~path ~schema =
  match Option.bind (Json.member "cases" (load_doc ~path ~schema)) Json.to_list with
  | Some l -> l
  | None ->
    Printf.eprintf "bench/check: %s has no cases array\n" path;
    exit 1

(* The parallel baseline is checked statically, without re-running the
   scaling bench: its wall times are host noise, but the schema tag, the
   bit-identity flag and the chunk arithmetic are deterministic claims
   about the code — a committed file whose chunk fields no longer match
   [Exec.auto_chunk] means the scheduling math changed under it. *)
let check_parallel ~path =
  let doc = load_doc ~path ~schema:"hbn.bench.parallel/v2" in
  (match Json.member "identical" doc with
  | Some (Json.Bool true) -> ()
  | _ -> fail "%s: \"identical\" is not true" path);
  let objects = get "objects" Json.to_int doc in
  let runs =
    match Option.bind (Json.member "runs" doc) Json.to_list with
    | Some l -> l
    | None ->
      fail "%s has no runs array" path;
      []
  in
  (try
     List.iter
       (fun run ->
         let jobs = get "jobs" Json.to_int run in
         let chunk = get "chunk" Json.to_int run in
         let chunks = get "chunks" Json.to_int run in
         let want_chunk = Hbn_exec.Exec.auto_chunk ~jobs objects in
         let want_chunks = (objects + want_chunk - 1) / want_chunk in
         if chunk <> want_chunk then
           fail "%s: jobs=%d chunk %d (baseline) <> %d (auto_chunk)" path jobs
             chunk want_chunk;
         if chunks <> want_chunks then
           fail "%s: jobs=%d chunks %d (baseline) <> %d (derived)" path jobs
             chunks want_chunks;
         let tpc = get "tasks_per_chunk" Json.to_float run in
         let want_tpc = float_of_int objects /. float_of_int want_chunks in
         if Printf.sprintf "%.2f" tpc <> Printf.sprintf "%.2f" want_tpc then
           fail
             "%s: jobs=%d tasks_per_chunk %.2f (baseline) <> %.2f (derived)"
             path jobs tpc want_tpc)
       runs
   with Json.Parse m -> fail "malformed run in %s: %s" path m);
  List.length runs

let check_matrix ~what ~path baseline_cases fresh check_one =
  if List.length baseline_cases <> List.length fresh then
    fail "%s case count %d (baseline) <> %d (fresh)" what
      (List.length baseline_cases) (List.length fresh)
  else begin
    try List.iter2 check_one baseline_cases fresh
    with Json.Parse m -> fail "malformed baseline case in %s: %s" path m
  end

let () =
  let arg i default = if Array.length Sys.argv > i then Sys.argv.(i) else default in
  let pipeline_path = arg 1 "BENCH_pipeline.json" in
  let faults_path = arg 2 "BENCH_faults.json" in
  let parallel_path = arg 3 "BENCH_parallel.json" in
  let async_path = arg 4 "BENCH_async.json" in
  let monitor_path = arg 5 "BENCH_monitor.json" in
  let serve_path = arg 6 "BENCH_serve.json" in
  let pipeline_baseline = load_baseline ~path:pipeline_path ~schema:PC.schema in
  let faults_baseline = load_baseline ~path:faults_path ~schema:FC.schema in
  let async_baseline = load_baseline ~path:async_path ~schema:AC.schema in
  let monitor_baseline = load_baseline ~path:monitor_path ~schema:MC.schema in
  let serve_baseline = load_baseline ~path:serve_path ~schema:SC.schema in
  let pipeline_fresh = PC.all () in
  check_matrix ~what:"pipeline" ~path:pipeline_path pipeline_baseline
    pipeline_fresh check_case;
  let faults_fresh = FC.all () in
  check_matrix ~what:"faults" ~path:faults_path faults_baseline faults_fresh
    check_fault_case;
  let parallel_runs = check_parallel ~path:parallel_path in
  let async_fresh = AC.all () in
  check_matrix ~what:"async" ~path:async_path async_baseline async_fresh
    check_async_case;
  let monitor_fresh = MC.all () in
  check_matrix ~what:"monitor" ~path:monitor_path monitor_baseline
    monitor_fresh check_monitor_case;
  let serve_fresh = SC.all () in
  check_matrix ~what:"serve" ~path:serve_path serve_baseline serve_fresh
    check_serve_case;
  if !failures > 0 then begin
    Printf.eprintf
      "bench/check: %d divergence(s) from the committed baselines — a code \
       change altered pipeline, fault-recovery, async-simulation, \
       drift-detection or serving-adaptation results (regenerate the \
       baselines only if that was the point)\n"
      !failures;
    exit 1
  end;
  Printf.printf
    "bench/check: %d pipeline cases match %s, %d fault cases match %s, %d \
     parallel runs consistent in %s, %d async cases match %s, %d monitor \
     cases match %s, %d serve cases match %s (deterministic fields)\n"
    (List.length pipeline_fresh) pipeline_path (List.length faults_fresh)
    faults_path parallel_runs parallel_path (List.length async_fresh)
    async_path (List.length monitor_fresh) monitor_path
    (List.length serve_fresh) serve_path
