(* Bechamel microbenchmarks: B1-B4 cover per-phase cost of the strategy
   on a fixed mid-size instance; F1-F3 cover the Tree.Flat primitives the
   hot path is built from (path folds, batched LCA, scratch reuse);
   E1-E2 cover the discrete-event substrate the asynchronous simulators
   run on (pairing-heap churn, engine tick chains). Results print as
   ns/run estimated by OLS. *)

module Tree = Hbn_tree.Tree
module Flat = Hbn_tree.Flat
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Strategy = Hbn_core.Strategy
module Sim = Hbn_sim.Sim
module Table = Hbn_util.Table

open Bechamel
open Toolkit

let instance () =
  let prng = Prng.create 4242 in
  let tree = Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2) in
  let w = Generators.uniform ~prng tree ~objects:16 ~max_rate:8 in
  w

let tests =
  let w = instance () in
  let placement = (Strategy.run w).Strategy.placement in
  Test.make_grouped ~name:"hbn"
    [
      Test.make ~name:"B1 nibble placement"
        (Staged.stage (fun () -> ignore (Nibble.placement w)));
      Test.make ~name:"B2 full strategy"
        (Staged.stage (fun () -> ignore (Strategy.run w)));
      Test.make ~name:"B3 congestion evaluation"
        (Staged.stage (fun () -> ignore (Placement.evaluate w placement)));
      Test.make ~name:"B4 packet simulation (scale 8)"
        (Staged.stage (fun () -> ignore (Sim.run ~scale:8 w placement)));
    ]

(* The flat-kernel instance is bigger than B1-B4's: primitive costs only
   separate from loop overhead on a few hundred nodes. The leaf pairs and
   Steiner node sets are drawn once, outside the timed region. *)
let flat_instance () =
  let tree = Builders.balanced ~arity:4 ~height:4 ~profile:(Builders.Uniform 2) in
  let fl = Flat.of_tree tree in
  let prng = Prng.create 20260809 in
  let leaves = Tree.leaves_array tree in
  let nl = Array.length leaves in
  let pairs =
    Array.init 256 (fun _ ->
        (leaves.(Prng.int prng nl), leaves.(Prng.int prng nl)))
  in
  let steiner_sets =
    Array.init 64 (fun _ ->
        List.init (2 + Prng.int prng 6) (fun _ -> leaves.(Prng.int prng nl)))
  in
  (tree, fl, pairs, steiner_sets)

let flat_tests =
  let tree, fl, pairs, steiner_sets = flat_instance () in
  let ix = Tree.flat_index tree in
  let lix = Tree.lca_index (Tree.rooting tree) in
  let r = Tree.rooting tree in
  let scratch = Flat.Scratch.create fl in
  Test.make_grouped ~name:"flat"
    [
      Test.make ~name:"F1 path fold (flat, scratch reuse)"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             Array.iter
               (fun (u, v) ->
                 acc :=
                   Flat.fold_path fl scratch u v ~init:!acc ~f:(fun a e ->
                       a + e))
               pairs;
             ignore !acc));
      Test.make ~name:"F1' path fold (Tree.path_edges lists)"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             Array.iter
               (fun (u, v) ->
                 acc :=
                   List.fold_left ( + ) !acc (Tree.path_edges tree u v))
               pairs;
             ignore !acc));
      Test.make ~name:"F2 batched LCA (flat O(1))"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             Array.iter (fun (u, v) -> acc := !acc + Tree.lca_flat ix u v) pairs;
             ignore !acc));
      Test.make ~name:"F2' batched LCA (lca_fast, O(log n))"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             Array.iter (fun (u, v) -> acc := !acc + Tree.lca_fast lix u v) pairs;
             ignore !acc));
      Test.make ~name:"F2'' batched LCA (rooted walk)"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             Array.iter (fun (u, v) -> acc := !acc + Tree.lca r u v) pairs;
             ignore !acc));
      Test.make ~name:"F3 steiner scan (scratch reuse)"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             Array.iter
               (fun nodes ->
                 Flat.iter_steiner fl scratch
                   ~nodes:(fun mark -> List.iter mark nodes)
                   (fun e -> acc := !acc + e))
               steiner_sets;
             ignore !acc));
      Test.make ~name:"F3' steiner scan (fresh scratch per call)"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             Array.iter
               (fun nodes ->
                 let fresh = Flat.Scratch.create fl in
                 Flat.iter_steiner fl fresh
                   ~nodes:(fun mark -> List.iter mark nodes)
                   (fun e -> acc := !acc + e))
               steiner_sets;
             ignore !acc));
      Test.make ~name:"F3'' steiner scan (Tree.steiner_edges lists)"
        (Staged.stage (fun () ->
             let acc = ref 0 in
             Array.iter
               (fun nodes ->
                 acc :=
                   List.fold_left ( + ) !acc (Tree.steiner_edges tree nodes))
               steiner_sets;
             ignore !acc));
    ]

(* The event-engine instance: a fixed array of quantized timestamps with
   plenty of collisions (eighth-ticks over a small range), so the heap's
   equal-key FIFO path is actually on the profile, drawn once outside
   the timed region. *)
module Pq = Hbn_event.Pq
module Engine = Hbn_event.Engine

let event_instance () =
  let prng = Prng.create 20260808 in
  Array.init 4096 (fun _ -> float_of_int (Prng.int prng 1024) /. 8.)

let event_tests =
  let times = event_instance () in
  Test.make_grouped ~name:"event"
    [
      Test.make ~name:"E1 pairing-heap add/pop churn (4096 stamps)"
        (Staged.stage (fun () ->
             let q = Pq.create () in
             Array.iter (fun t -> Pq.add q ~time:t t) times;
             let acc = ref 0. in
             let rec drain () =
               match Pq.pop q with
               | None -> ()
               | Some (t, _) ->
                 acc := !acc +. t;
                 drain ()
             in
             drain ();
             ignore !acc));
      Test.make ~name:"E2 engine tick chain (1024 unit-delay ticks)"
        (Staged.stage (fun () ->
             let e = Engine.create () in
             let count = ref 0 in
             let rec tick () =
               incr count;
               if !count < 1024 then Engine.after e ~delay:1. tick
             in
             Engine.at e ~time:1. tick;
             Engine.drain e;
             ignore !count));
    ]

let run_group ~banner tests =
  print_endline banner;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let quota = Time.second 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Table.create [ "benchmark"; "ns/run"; "r^2" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Table.fmt_float e
        | Some es ->
          String.concat "," (List.map (Table.fmt_float ~digits:1) es)
        | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Table.fmt_float r
        | None -> "-"
      in
      Table.add_row table [ name; est; r2 ])
    (List.sort compare rows);
  Table.print table

let run () = run_group ~banner:"\n=== B1-B4: Bechamel microbenchmarks ===" tests

let run_flat () =
  run_group ~banner:"\n=== F1-F3: Tree.Flat primitive kernels ===" flat_tests

let run_event () =
  run_group ~banner:"\n=== E1-E2: discrete-event engine kernels ===" event_tests

(* Fast correctness pass over the same kernels, for `make bench-quick`:
   every flat primitive is cross-checked against its list-returning
   counterpart on the bench instance, with one shared scratch to exercise
   the reuse discipline. No timing claims. *)
let smoke_flat () =
  let tree, fl, pairs, steiner_sets = flat_instance () in
  let ix = Tree.flat_index tree in
  let lix = Tree.lca_index (Tree.rooting tree) in
  let r = Tree.rooting tree in
  let scratch = Flat.Scratch.create fl in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  Array.iter
    (fun (u, v) ->
      let a = Tree.lca r u v in
      if Tree.lca_flat ix u v <> a || Tree.lca_fast lix u v <> a then
        fail "bench/micro --smoke: LCA mismatch at (%d,%d)" u v;
      let path = ref [] in
      Flat.iter_path fl scratch u v (fun e -> path := e :: !path);
      if List.rev !path <> Tree.path_edges tree u v then
        fail "bench/micro --smoke: path order mismatch at (%d,%d)" u v)
    pairs;
  Array.iter
    (fun nodes ->
      let edges = ref [] in
      Flat.iter_steiner fl scratch
        ~nodes:(fun mark -> List.iter mark nodes)
        (fun e -> edges := e :: !edges);
      if List.rev !edges <> Tree.steiner_edges tree nodes then
        fail "bench/micro --smoke: steiner order mismatch")
    steiner_sets;
  Printf.printf
    "bench/micro --smoke: flat kernels agree with Tree on %d paths, %d \
     steiner sets (shared scratch)\n"
    (Array.length pairs)
    (Array.length steiner_sets)

(* Same fast-correctness idea for the event substrate: the pairing
   heap's pop order on the bench instance must equal a stable sort by
   time — equal timestamps pop FIFO, the property the engine's
   bit-identical replay rests on. No timing claims. *)
let smoke_event () =
  let times = event_instance () in
  let q = Pq.create () in
  Array.iteri (fun i t -> Pq.add q ~time:t i) times;
  let popped = ref [] in
  let rec drain () =
    match Pq.pop q with
    | None -> ()
    | Some (t, i) ->
      popped := (t, i) :: !popped;
      drain ()
  in
  drain ();
  let want =
    List.stable_sort
      (fun (a, _) (b, _) -> compare a b)
      (Array.to_list (Array.mapi (fun i t -> (t, i)) times))
  in
  if List.rev !popped <> want then begin
    prerr_endline
      "bench/micro --smoke: pairing-heap pop order diverged from stable sort";
    exit 1
  end;
  Printf.printf
    "bench/micro --smoke: pairing heap pops %d stamps in stable time order\n"
    (Array.length times)
