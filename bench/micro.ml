(* Bechamel microbenchmarks (B1-B4): per-phase cost of the strategy on a
   fixed mid-size instance. Results print as ns/run estimated by OLS. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Strategy = Hbn_core.Strategy
module Sim = Hbn_sim.Sim
module Table = Hbn_util.Table

open Bechamel
open Toolkit

let instance () =
  let prng = Prng.create 4242 in
  let tree = Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2) in
  let w = Generators.uniform ~prng tree ~objects:16 ~max_rate:8 in
  w

let tests =
  let w = instance () in
  let placement = (Strategy.run w).Strategy.placement in
  Test.make_grouped ~name:"hbn"
    [
      Test.make ~name:"B1 nibble placement"
        (Staged.stage (fun () -> ignore (Nibble.placement w)));
      Test.make ~name:"B2 full strategy"
        (Staged.stage (fun () -> ignore (Strategy.run w)));
      Test.make ~name:"B3 congestion evaluation"
        (Staged.stage (fun () -> ignore (Placement.evaluate w placement)));
      Test.make ~name:"B4 packet simulation (scale 8)"
        (Staged.stage (fun () -> ignore (Sim.run ~scale:8 w placement)));
    ]

let run () =
  print_endline "\n=== B1-B4: Bechamel microbenchmarks ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let quota = Time.second 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Table.create [ "benchmark"; "ns/run"; "r^2" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Table.fmt_float e
        | Some es ->
          String.concat "," (List.map (Table.fmt_float ~digits:1) es)
        | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Table.fmt_float r
        | None -> "-"
      in
      Table.add_row table [ name; est; r2 ])
    (List.sort compare rows);
  Table.print table
