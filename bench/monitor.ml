(* Drift-detection benchmark: writes BENCH_monitor.json.

   Run with:  dune exec bench/monitor.exe [-- --smoke]
   Replays the Monitor_cases matrix — synthetic steady/step/ramp/
   flash-crowd/fade workloads through a folding Telemetry collector into
   a default Monitor — and records the detector hit/miss profile per
   case. bench/check.exe diffs those fields against the committed file,
   so the detection frontier (which shapes fire, which stay silent, and
   when) is a pinned contract, not a vibe.

   The "micro" object is a wall-clock note, ignored by the gate: it
   times Monitor.observe on one long synthetic series — the per-
   observation cost of the P-square updates, the EWMA, the window scan
   and both detectors together, which is what the engines pay per
   telemetry point per derived series.

   --smoke replays the matrix and asserts its contract (steady silent,
   every drift shape fires, fade degrades); no JSON. *)

module Monitor = Hbn_obs.Monitor
module MC = Monitor_cases

(* One series, [n] observations of a noisy level: the estimator+detector
   hot path with no Telemetry in the way. *)
let observe_micro ~n =
  let mon = Monitor.create () in
  let t0 = Unix.gettimeofday () in
  for r = 0 to n - 1 do
    let v = 12.0 +. float_of_int (r land 3) in
    Monitor.observe mon ~series:"micro" ~round:r ~vtime:(float_of_int r)
      ~span:1 v
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  (n, elapsed /. float_of_int (max 1 n) *. 1e9)

let contract cases =
  let find w = List.find (fun c -> c.MC.workload = w) cases in
  let errs = ref [] in
  let expect cond msg = if not cond then errs := msg :: !errs in
  let steady = find "steady" in
  expect (steady.MC.alerts = 0)
    (Printf.sprintf "steady fired %d alert(s); must stay silent"
       steady.MC.alerts);
  List.iter
    (fun w ->
      let c = find w in
      expect (c.MC.alerts > 0) (w ^ " fired no alert; must detect the shift"))
    [ "step"; "ramp"; "flash_crowd"; "fade" ];
  let fade = find "fade" in
  expect (fade.MC.verdict = "degrading")
    (Printf.sprintf "fade verdict %S; must be degrading" fade.MC.verdict);
  List.rev !errs

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let cases = MC.all () in
  (match contract cases with
  | [] -> ()
  | errs ->
    List.iter (Printf.eprintf "bench/monitor: %s\n") errs;
    exit 1);
  if smoke then
    Printf.printf
      "bench/monitor --smoke: %d workloads, steady silent, drift shapes \
       fire, fade degrades\n"
      (List.length cases)
  else begin
    let n, ns_per_obs = observe_micro ~n:200_000 in
    let oc = open_out "BENCH_monitor.json" in
    output_string oc (Meta.header ~schema:MC.schema);
    Printf.fprintf oc
      " \"micro\":{\"observations\":%d,\"ns_per_observe\":%.1f},\n" n
      ns_per_obs;
    output_string oc " \"cases\":[\n";
    List.iteri
      (fun i c ->
        if i > 0 then output_string oc ",\n";
        output_string oc (MC.json_of_case c))
      cases;
    output_string oc "\n]}\n";
    close_out oc;
    Printf.printf "bench/monitor: wrote BENCH_monitor.json (%d cases)\n"
      (List.length cases);
    List.iter
      (fun c ->
        Printf.printf
          "  %-12s %3d pts %3d alerts (%d cusum, %d ph) first@%-4d %s\n"
          c.MC.workload c.MC.points c.MC.alerts c.MC.cusum_alerts
          c.MC.ph_alerts c.MC.first_alert_round c.MC.verdict)
      cases
  end
