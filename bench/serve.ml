(* Adaptive-serving benchmark: writes BENCH_serve.json.

   Run with:  dune exec bench/serve.exe [-- --smoke]
   Replays the Serve_cases matrix — the four Drift generators through
   the epoch-based serving tier — and records congestion-over-time,
   bytes-migrated, and epochs-reoptimized per case. bench/check.exe
   diffs those fields against the committed file, so the adaptation
   frontier (what re-optimizes, what it costs, what it recovers) is a
   pinned contract.

   --smoke replays the matrix and asserts its contract (steady never
   re-optimizes, hotspot migration recovers >= 30% of the stale-oracle
   congestion gap, no epoch exceeds the migration byte budget); no JSON
   is written. *)

module SC = Serve_cases

let contract cases =
  let find w = List.find (fun c -> c.SC.workload = w) cases in
  let errs = ref [] in
  let expect cond msg = if not cond then errs := msg :: !errs in
  let steady = find "steady" in
  expect
    (steady.SC.reoptimized = 0 && steady.SC.bytes_migrated = 0)
    (Printf.sprintf
       "steady re-optimized %d epoch(s), migrated %d bytes; must do neither"
       steady.SC.reoptimized steady.SC.bytes_migrated);
  expect (steady.SC.alerts = 0)
    (Printf.sprintf "steady fired %d alert(s); must stay silent"
       steady.SC.alerts);
  let hot = find "hotspot_migration" in
  expect
    (hot.SC.recovered >= 0.30)
    (Printf.sprintf
       "hotspot migration recovered %.3f of the stale-oracle gap; need >= 0.30"
       hot.SC.recovered);
  expect (hot.SC.reoptimized > 0)
    "hotspot migration never re-optimized; the drift must trigger the loop";
  List.iter
    (fun c ->
      expect c.SC.budget_ok
        (Printf.sprintf "%s migrated %d bytes in one epoch; budget is %d"
           c.SC.workload c.SC.max_epoch_bytes SC.config.SC.Serve.budget_bytes))
    cases;
  List.rev !errs

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let cases = SC.all () in
  (match contract cases with
  | [] -> ()
  | errs ->
    List.iter (Printf.eprintf "bench/serve: %s\n") errs;
    exit 1);
  if smoke then
    let hot =
      List.find (fun c -> c.SC.workload = "hotspot_migration") cases
    in
    Printf.printf
      "bench/serve --smoke: %d workloads, steady never re-optimizes, hotspot \
       recovers %.0f%% of the gap within budget\n"
      (List.length cases)
      (100.0 *. hot.SC.recovered)
  else begin
    let oc = open_out "BENCH_serve.json" in
    output_string oc (Meta.header ~schema:SC.schema);
    output_string oc " \"cases\":[\n";
    List.iteri
      (fun i c ->
        if i > 0 then output_string oc ",\n";
        output_string oc (SC.json_of_case c))
      cases;
    output_string oc "\n]}\n";
    close_out oc;
    Printf.printf "bench/serve: wrote BENCH_serve.json (%d cases)\n"
      (List.length cases);
    List.iter
      (fun c ->
        Printf.printf
          "  %-18s %2d reopts %6d bytes  serve %.3f stale %.3f oracle %.3f  \
           recovered %s  %s\n"
          c.SC.workload c.SC.reoptimized c.SC.bytes_migrated c.SC.mean_serve
          c.SC.mean_stale c.SC.mean_oracle
          (if c.SC.recovered < 0.0 then "n/a"
           else Printf.sprintf "%.0f%%" (100.0 *. c.SC.recovered))
          c.SC.verdict)
      cases
  end
