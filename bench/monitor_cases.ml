(* The drift-detection benchmark's case matrix, shared between the
   writer (bench/monitor.exe) and the regression gate (bench/check.exe).

   Each case drives one synthetic workload — a deterministic per-round
   traffic shape, jittered by the stateless Prng.hash so reruns are
   bit-identical — through a real bounded-memory Telemetry collector
   (small capacity, so folding happens mid-run) into a default Monitor,
   and records the detector outcome: how many alerts, which detector,
   when the first fired, and the end-of-run verdict. The matrix is the
   detectors' hit/miss contract: steady traffic must stay silent, every
   drift shape must fire, and the fade shape (nodes dying, drops rising)
   must classify as degrading. A diff against the committed
   BENCH_monitor.json means a change moved the detection frontier —
   estimator math, thresholds, folding, or the derived-series set. *)

module Prng = Hbn_prng.Prng
module Telemetry = Hbn_obs.Telemetry
module Monitor = Hbn_obs.Monitor

let schema = "hbn.bench.monitor/v1"
let seed = 20260809
let rounds = 240
let num_edges = 4

(* Small enough that 240 rounds fold twice (240 -> 120 -> 60 points):
   the matrix pins detection THROUGH folding, not just on exact series. *)
let capacity = 64

type case = {
  workload : string;
  rounds : int;
  points : int;  (* retained telemetry points after folding *)
  alerts : int;  (* total alerts across all derived series *)
  cusum_alerts : int;
  ph_alerts : int;
  first_alert_round : int;  (* -1 when silent *)
  verdict : string;  (* "steady" | "drifting" | "degrading" *)
  (* Estimator state of the "sent" series at end of run — pins the
     P-square and EWMA arithmetic, not just the detectors. *)
  sent_p50 : float;
  sent_p95 : float;
  sent_mean : float;
}

(* Per-round traffic level of each synthetic workload. Base load is 48
   frames/round, so the 0..2 jitter stays inside the detectors' noise
   floor (5% of the reference mean) — that is what makes "steady stays
   silent" a property of the thresholds rather than of zero noise. The
   drift shapes shift by far more than the floor. *)
let level workload r =
  match workload with
  | "steady" -> 48
  | "step" -> if r < 120 then 48 else 96
  | "ramp" -> 48 + (r / 4)
  | "flash_crowd" -> if r >= 100 && r < 130 then 192 else 48
  | "fade" -> 48
  | _ -> invalid_arg ("monitor_cases: unknown workload " ^ workload)

(* The fade shape degrades the network rather than the load: nodes die
   one by one and a growing fraction of sends is lost. *)
let fade_live r = max 8 (32 - (r / 12))
let fade_drops r = if r < 60 then 0 else min 24 ((r - 60) / 8)

let workloads = [ "steady"; "step"; "ramp"; "flash_crowd"; "fade" ]

let workload_index w =
  let rec go i = function
    | [] -> invalid_arg ("monitor_cases: unknown workload " ^ w)
    | x :: rest -> if x = w then i else go (i + 1) rest
  in
  go 0 workloads

let run_case workload =
  let wi = workload_index workload in
  let tel = Telemetry.create ~capacity ~num_edges () in
  for r = 0 to rounds - 1 do
    Telemetry.begin_round tel ~round:r;
    let jitter = Prng.hash ~seed [ wi; r ] in
    let sends = level workload r + Int64.to_int (Int64.rem jitter 3L) in
    let drops = if workload = "fade" then fade_drops r else 0 in
    for i = 0 to sends - 1 do
      Telemetry.send tel ~edge:(i mod num_edges) ~bytes:32;
      if i < drops then Telemetry.drop tel
    done;
    let live = if workload = "fade" then fade_live r else 32 in
    Telemetry.end_round tel ~live_nodes:live
  done;
  let mon = Monitor.create () in
  Monitor.ingest mon tel;
  let alerts = Monitor.alerts mon in
  let count pred = List.length (List.filter pred alerts) in
  let is_cusum a =
    match a.Monitor.a_kind with
    | Monitor.Cusum_up | Monitor.Cusum_down -> true
    | _ -> false
  in
  let sent =
    match Monitor.estimate mon ~series:"sent" with
    | Some e -> e
    | None -> invalid_arg "monitor_cases: no sent series"
  in
  {
    workload;
    rounds;
    points = List.length (Telemetry.points tel);
    alerts = List.length alerts;
    cusum_alerts = count is_cusum;
    ph_alerts = count (fun a -> not (is_cusum a));
    first_alert_round =
      (match alerts with [] -> -1 | a :: _ -> a.Monitor.a_round);
    verdict = Monitor.verdict_name (Monitor.health mon);
    sent_p50 = sent.Monitor.e_p50;
    sent_p95 = sent.Monitor.e_p95;
    sent_mean = sent.Monitor.e_mean;
  }

let all () = List.map run_case workloads

let json_of_case c =
  Printf.sprintf
    "    {\"workload\":%S,\"rounds\":%d,\"points\":%d,\"alerts\":%d,\
     \"cusum_alerts\":%d,\"ph_alerts\":%d,\"first_alert_round\":%d,\
     \"verdict\":%S,\"sent_p50\":%.3f,\"sent_p95\":%.3f,\"sent_mean\":%.3f}"
    c.workload c.rounds c.points c.alerts c.cusum_alerts c.ph_alerts
    c.first_alert_round c.verdict c.sent_p50 c.sent_p95 c.sent_mean
