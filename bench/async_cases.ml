(* The asynchronous-simulation benchmark's case matrix, shared between
   the writer (bench/async.exe) and the regression gate (bench/check.exe).

   One workload and placement per topology, then one simulator run per
   link model over the {e identical} traffic. The deterministic payload
   is therefore a controlled experiment: across the link rows of a
   topology, packets / transmissions / congestion / dilation are pinned
   equal (the traffic is a function of workload and placement alone),
   while completion — the virtual time of the last delivered hop — moves
   with the per-level delay/bandwidth profile. A diff against the
   committed BENCH_async.json means the event engine, the link model or
   the simulator's grant schedule changed, not just speed. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Sim = Hbn_sim.Sim
module Link = Hbn_event.Link

let schema = "hbn.bench.async/v1"
let seed = 20260808
let objects = 12
let scale = 2

type case = {
  topology : string;
  link : string;  (* "sync" for the synchronous engine, else the spec *)
  makespan : int;  (* allocator ticks *)
  completion : float;  (* virtual time of the last hop's arrival *)
  packets : int;
  transmissions : int;
  congestion : float;
  max_dilation : int;
}

let topologies () =
  [
    ("balanced-a3h3", Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2));
    ("caterpillar-8x2", Builders.caterpillar ~spine:8 ~leaves_per_bus:2 ~profile:(Builders.Uniform 2));
  ]

(* [None] is the synchronous engine (no link model at all); "1:inf" is
   {!Link.sync}, which must reproduce it bit for bit. The remaining rows
   bend one knob each: uniform finite bandwidth, a slow top level, a slow
   lower tier, and a long uniform propagation delay. *)
let links =
  [ None; Some "1:inf"; Some "1:8"; Some "1:1,1:8"; Some "1:8,1:1"; Some "4:8" ]

let link_name = function None -> "sync" | Some spec -> spec

let run_case ~w ~placement ~topology ~link =
  let cfg =
    Option.map
      (fun spec ->
        match Link.of_spec spec with
        | Ok c -> c
        | Error e ->
          invalid_arg (Printf.sprintf "async_cases: bad link %S: %s" spec e))
      link
  in
  let out = Sim.run ~scale ?link:cfg w placement in
  {
    topology;
    link = link_name link;
    makespan = out.Sim.makespan;
    completion = out.Sim.completion;
    packets = out.Sim.packets;
    transmissions = out.Sim.transmissions;
    congestion = Placement.congestion w placement;
    max_dilation = out.Sim.max_dilation;
  }

(* The invariants the matrix exists to demonstrate, checked at build
   time on every run (writer and gate alike), so a committed baseline
   can never encode a violation. *)
let validate_group ~topology cases =
  let bad fmt = Printf.ksprintf invalid_arg ("async_cases: " ^^ fmt) in
  let base = List.hd cases in
  List.iter
    (fun c ->
      if
        c.packets <> base.packets
        || c.transmissions <> base.transmissions
        || c.congestion <> base.congestion
        || c.max_dilation <> base.max_dilation
      then
        bad "%s: traffic varies with link %s — congestion is no longer \
             schedule-independent"
          topology c.link)
    cases;
  (match
     ( List.find_opt (fun c -> c.link = "sync") cases,
       List.find_opt (fun c -> c.link = "1:inf") cases )
   with
  | Some s, Some u ->
    if s.makespan <> u.makespan || s.completion <> u.completion then
      bad "%s: Link.sync (1:inf) diverged from the synchronous engine \
           (makespan %d/%d, completion %g/%g)"
        topology s.makespan u.makespan s.completion u.completion
  | _ -> bad "%s: matrix lost its sync/1:inf rows" topology);
  let asym =
    List.filter (fun c -> c.link = "1:8" || c.link = "1:1,1:8" || c.link = "1:8,1:1") cases
  in
  let completions = List.sort_uniq compare (List.map (fun c -> c.completion) asym) in
  if List.length completions < 2 then
    bad "%s: completion is flat across bandwidth-asymmetric links — the \
         link model has no effect"
      topology

let all () =
  let prng = Prng.create seed in
  List.concat_map
    (fun (topology, tree) ->
      let w = Generators.uniform ~prng tree ~objects ~max_rate:8 in
      let placement = (Strategy.run w).Strategy.placement in
      let cases =
        List.map (fun link -> run_case ~w ~placement ~topology ~link) links
      in
      validate_group ~topology cases;
      cases)
    (topologies ())

let json_of_case c =
  Printf.sprintf
    "    {\"topology\":%S,\"link\":%S,\"makespan\":%d,\"completion\":%.3f,\
     \"packets\":%d,\"transmissions\":%d,\"congestion\":%.3f,\
     \"max_dilation\":%d}"
    c.topology c.link c.makespan c.completion c.packets c.transmissions
    c.congestion c.max_dilation
