(* The serving-tier benchmark's case matrix, shared between the writer
   (bench/serve.exe) and the regression gate (bench/check.exe).

   Each case serves the same topology under one Drift generator through
   Serve.run — the full alert -> epoch-boundary re-optimization loop —
   and records the deterministic outcome: congestion over time (mean
   serve/stale/oracle), how many epochs re-optimized, the migration
   bytes paid, and the recovery fraction

     recovered = sum(stale - serve) / sum(stale - oracle)

   over the epochs with a meaningful stale-oracle gap. The matrix is the
   serving tier's contract: the steady control must trigger ZERO
   re-optimizations, hotspot migration must recover >= 30% of the gap,
   and no epoch may ever migrate more than the configured byte budget.
   A diff against the committed BENCH_serve.json means a change moved
   the adaptation frontier — generators, epoch arithmetic, the climb,
   the hysteresis gate, or the monitor thresholds feeding it. *)

module Builders = Hbn_tree.Builders
module Drift = Hbn_serve.Drift
module Serve = Hbn_serve.Serve
module Monitor = Hbn_obs.Monitor

let schema = "hbn.bench.serve/v1"
let seed = 20260809
let objects = 8
let rate = 8

let config =
  {
    Serve.default with
    Serve.slots_per_epoch = 16;
    epochs = 32;
    top_k = 4;
    budget_bytes = 4096;
    hysteresis = 0.5;
    seed;
  }

let tree () = Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2)

type case = {
  workload : string;
  epochs : int;
  requests : int;
  alerts : int;
  reoptimized : int;  (* epochs whose boundary climb committed *)
  bytes_migrated : int;  (* total across the run *)
  max_epoch_bytes : int;  (* worst single epoch; the budget bounds it *)
  budget_ok : bool;  (* every epoch within budget_bytes *)
  replications : int;
  migrations : int;
  contractions : int;
  verdict : string;
  mean_serve : float;  (* mean serving congestion over epochs *)
  mean_stale : float;  (* the frozen epoch-0 placement, same tables *)
  mean_oracle : float;  (* fresh static re-place per epoch *)
  recovered : float;  (* gap recovery fraction; -1 when no gap opened *)
}

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let run_case kind =
  let drift =
    Drift.create kind ~seed ~tree:(tree ()) ~objects ~rate
  in
  let out = Serve.run config (Serve.Generator drift) in
  let eps = out.Serve.epochs in
  let gap_num =
    List.fold_left
      (fun acc s ->
        let gap = s.Serve.s_stale -. s.Serve.s_oracle in
        if gap > 1e-9 then acc +. (s.Serve.s_stale -. s.Serve.s_congestion)
        else acc)
      0.0 eps
  in
  let gap_den =
    List.fold_left
      (fun acc s ->
        let gap = s.Serve.s_stale -. s.Serve.s_oracle in
        if gap > 1e-9 then acc +. gap else acc)
      0.0 eps
  in
  {
    workload = Drift.kind_name kind;
    epochs = List.length eps;
    requests = out.Serve.total_requests;
    alerts = List.length out.Serve.alerts;
    reoptimized = out.Serve.reoptimized_epochs;
    bytes_migrated = out.Serve.total_bytes_migrated;
    max_epoch_bytes =
      List.fold_left (fun acc s -> max acc s.Serve.s_bytes_migrated) 0 eps;
    budget_ok =
      List.for_all
        (fun s -> s.Serve.s_bytes_migrated <= config.Serve.budget_bytes)
        eps;
    replications =
      List.fold_left (fun acc s -> acc + s.Serve.s_replications) 0 eps;
    migrations = List.fold_left (fun acc s -> acc + s.Serve.s_migrations) 0 eps;
    contractions =
      List.fold_left (fun acc s -> acc + s.Serve.s_contractions) 0 eps;
    verdict = Monitor.verdict_name out.Serve.verdict;
    mean_serve = mean (List.map (fun s -> s.Serve.s_congestion) eps);
    mean_stale = mean (List.map (fun s -> s.Serve.s_stale) eps);
    mean_oracle = mean (List.map (fun s -> s.Serve.s_oracle) eps);
    recovered = (if gap_den > 1e-9 then gap_num /. gap_den else -1.0);
  }

let all () = List.map run_case Drift.all_kinds

let json_of_case c =
  Printf.sprintf
    "    {\"workload\":%S,\"epochs\":%d,\"requests\":%d,\"alerts\":%d,\
     \"reoptimized\":%d,\"bytes_migrated\":%d,\"max_epoch_bytes\":%d,\
     \"budget_ok\":%b,\"replications\":%d,\"migrations\":%d,\
     \"contractions\":%d,\"verdict\":%S,\"mean_serve\":%.3f,\
     \"mean_stale\":%.3f,\"mean_oracle\":%.3f,\"recovered\":%.3f}"
    c.workload c.epochs c.requests c.alerts c.reoptimized c.bytes_migrated
    c.max_epoch_bytes c.budget_ok c.replications c.migrations c.contractions
    c.verdict c.mean_serve c.mean_stale c.mean_oracle c.recovered
