(* The fault-injection benchmark's case matrix, shared between the
   writer (bench/faults.exe) and the regression gate (bench/check.exe).

   Every field below is deterministic: the fault schedule is a pure
   function of the plan seed, the hardened protocol is synchronous, and
   the recovered placement is checked against the sequential strategy.
   A diff against the committed BENCH_faults.json therefore means a code
   change altered recovery behaviour — retransmit policy, termination
   detection, fault accounting — not just speed. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Dist = Hbn_dist.Dist
module Dist_nibble = Hbn_dist.Dist_nibble
module Faults = Hbn_dist.Faults
module Runtime = Hbn_dist.Runtime
module Telemetry = Hbn_obs.Telemetry

let schema = "hbn.bench.faults/v1"
let seed = 20260806
let objects = 12

(* Bounded so the baked-in permanent-crash case degrades quickly. *)
let max_rounds = 2_000

type case = {
  topology : string;
  plan : string;  (* canonical spec, as parsed *)
  outcome : string;  (* "recovered" or "degraded:<reason>" *)
  rounds : int;
  messages : int;
  retransmissions : int;
  duplicates : int;
  pure_acks : int;
  fault_events : int;
  dropped : int;
  undecided : int;
  congestion : float;  (* recovered placement; -1 when degraded *)
  (* Telemetry series fields — as deterministic as the run itself, so a
     diff means the collector (folding, edge cut, hooks) changed. *)
  tel_points : int;  (* retained points after bounded-memory folding *)
  tel_sent : int;  (* Σ sent over the series = total frames attempted *)
  tel_bytes : int;  (* Σ bytes over the series *)
  tel_peak_sent : int;  (* busiest point's sent count *)
}

let topologies () =
  [
    ("balanced-a3h3", Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2));
    ("star-16", Builders.star ~leaves:16 ~profile:(Builders.Uniform 4));
    ("caterpillar-8x2", Builders.caterpillar ~spine:8 ~leaves_per_bus:2 ~profile:(Builders.Uniform 2));
  ]

let plans =
  [
    "drop=0";  (* empty plan: the hardened protocol with zero faults *)
    "drop=0.05,until=100";
    "drop=0.2,until=60";
    "drop=0.1,until=50,crash=2:10-30,cut=0:8-20";
    "crash=1:1-inf";  (* unrecoverable: must degrade, not hang or raise *)
  ]

let run_case ~prng ~topology:(tname, tree) ~plan:spec =
  let w = Generators.uniform ~prng tree ~objects ~max_rate:8 in
  let plan =
    match Faults.of_spec ~seed spec with
    | Ok p -> p
    | Error e -> invalid_arg (Printf.sprintf "fault_cases: bad plan %S: %s" spec e)
  in
  let telemetry = Telemetry.create ~num_edges:(Tree.num_edges tree) () in
  let report = Dist.run_with_faults ~max_rounds ~faults:plan ~telemetry w in
  let outcome, nibble, log, congestion =
    match report with
    | Dist.Recovered { placement; nibble; log; _ } ->
      ("recovered", nibble, log, Placement.congestion w placement)
    | Dist.Degraded { reason; nibble; log; _ } ->
      ( (match reason with
        | `Round_limit -> "degraded:round_limit"
        | `Undecided -> "degraded:undecided"
        | `Diverged -> "degraded:diverged"),
        nibble,
        log,
        -1.0 )
  in
  let dropped =
    List.length
      (List.filter
         (fun e -> match e.Faults.kind with Faults.Dropped _ -> true | _ -> false)
         log)
  in
  {
    topology = tname;
    plan = Faults.to_spec plan;
    outcome;
    rounds = nibble.Dist_nibble.runtime.Runtime.rounds;
    messages = nibble.Dist_nibble.runtime.Runtime.messages;
    retransmissions = nibble.Dist_nibble.retransmissions;
    duplicates = nibble.Dist_nibble.duplicates;
    pure_acks = nibble.Dist_nibble.pure_acks;
    fault_events = List.length log;
    dropped;
    undecided = nibble.Dist_nibble.undecided;
    congestion;
    tel_points = List.length (Telemetry.points telemetry);
    tel_sent =
      List.fold_left
        (fun acc p -> acc + p.Telemetry.sent)
        0 (Telemetry.points telemetry);
    tel_bytes =
      List.fold_left
        (fun acc p -> acc + p.Telemetry.bytes)
        0 (Telemetry.points telemetry);
    tel_peak_sent =
      List.fold_left
        (fun acc p -> max acc p.Telemetry.sent)
        0 (Telemetry.points telemetry);
  }

let all () =
  let prng = Prng.create seed in
  List.concat_map
    (fun topology -> List.map (fun plan -> run_case ~prng ~topology ~plan) plans)
    (topologies ())

let json_of_case c =
  Printf.sprintf
    "    {\"topology\":%S,\"plan\":%S,\"outcome\":%S,\"rounds\":%d,\
     \"messages\":%d,\"retransmissions\":%d,\"duplicates\":%d,\
     \"pure_acks\":%d,\"fault_events\":%d,\"dropped\":%d,\"undecided\":%d,\
     \"congestion\":%.3f,\"tel_points\":%d,\"tel_sent\":%d,\"tel_bytes\":%d,\
     \"tel_peak_sent\":%d}"
    c.topology c.plan c.outcome c.rounds c.messages c.retransmissions
    c.duplicates c.pure_acks c.fault_events c.dropped c.undecided c.congestion
    c.tel_points c.tel_sent c.tel_bytes c.tel_peak_sent
