(* Throughput of the incremental load engine vs the from-scratch path.

   Run with:  dune exec bench/loads.exe [-- OUTPUT.json]
          or  dune exec bench/loads.exe -- --smoke
   The full run drives [Baselines.hill_climb] (incremental deltas on one
   [Hbn_loads.Loads] engine) and [Baselines.hill_climb_scratch] (rebuilds
   Placement.nearest and re-evaluates everything per proposal) over the
   same seed and records iterations/sec of each in BENCH_loads.json.
   Both paths share one proposal generator, so the placements must come
   out structurally equal — the bench fails (exit 1) if they diverge.
   [--smoke] runs a small instance for `make check`: equality only, no
   JSON written. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Placement = Hbn_placement.Placement
module Baselines = Hbn_baselines.Baselines

let seed = 20260806

let start_copies w =
  Array.init (Workload.num_objects w) (fun obj ->
      match Workload.requesting_leaves w ~obj with
      | [] -> []
      | leaf :: _ -> [ leaf ])

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One matched pair of climbs from identical start states and seeds.
   Returns (engine placement, engine secs, scratch placement, scratch
   secs). The engine runs second so any cache warming favours the
   baseline, not the engine. *)
let run_pair ~iterations w =
  let copies = start_copies w in
  let scratch, scratch_s =
    time (fun () ->
        Baselines.hill_climb_scratch ~iterations ~prng:(Prng.create seed) w
          copies)
  in
  let engine, engine_s =
    time (fun () ->
        Baselines.hill_climb ~iterations ~prng:(Prng.create seed) w copies)
  in
  (engine, engine_s, scratch, scratch_s)

let instance ~arity ~height ~objects =
  let tree = Builders.balanced ~arity ~height ~profile:(Builders.Uniform 2) in
  let w =
    Generators.uniform ~prng:(Prng.create (seed + 1)) tree ~objects ~max_rate:8
  in
  (tree, w)

let smoke () =
  let _, w = instance ~arity:4 ~height:2 ~objects:8 in
  let engine, _, scratch, _ = run_pair ~iterations:40 w in
  if engine <> scratch then begin
    prerr_endline
      "bench/loads --smoke: engine and scratch hill climbs diverged";
    exit 1
  end;
  print_endline "bench/loads --smoke: engine matches scratch (40 iters)"

let full out_path =
  let iterations = 300 in
  let tree, w = instance ~arity:4 ~height:3 ~objects:32 in
  let engine, engine_s, scratch, scratch_s = run_pair ~iterations w in
  let identical = engine = scratch in
  let speedup = scratch_s /. engine_s in
  let ips s = float_of_int iterations /. s in
  let oc = open_out out_path in
  output_string oc (Meta.header ~schema:"hbn.bench.loads/v1");
  Printf.fprintf oc
    " \"topology\":\"balanced-a4h3\",\"leaves\":%d,\"objects\":%d,\n\
    \ \"iterations\":%d,\"seed\":%d,\n\
    \ \"scratch\":{\"seconds\":%.6f,\"iters_per_sec\":%.1f},\n\
    \ \"engine\":{\"seconds\":%.6f,\"iters_per_sec\":%.1f},\n\
    \ \"speedup\":%.2f,\"identical\":%b,\n\
    \ \"congestion\":%.3f}\n"
    (Tree.num_leaves tree) (Workload.num_objects w) iterations seed scratch_s
    (ips scratch_s) engine_s (ips engine_s) speedup identical
    (Placement.congestion w engine);
  close_out oc;
  Printf.printf
    "wrote %s\n\
    \  scratch  %8.1f iters/sec (%.3f s)\n\
    \  engine   %8.1f iters/sec (%.3f s)\n\
    \  speedup  %.1fx, identical placements: %b\n"
    out_path (ips scratch_s) scratch_s (ips engine_s) engine_s speedup
    identical;
  if not identical then begin
    prerr_endline "bench/loads: engine and scratch hill climbs diverged";
    exit 1
  end

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ :: path :: _ -> full path
  | _ -> full "BENCH_loads.json"
