(* Command-line interface to the library.

   hbn_cli topology  --kind balanced --arity 3 --height 3 --dot
   hbn_cli place     --kind random --buses 8 --leaves 16 --workload zipf
   hbn_cli compare   --kind caterpillar --spine 8 --workload hotspot
   hbn_cli gadget    3 1 1 2 3 2
   hbn_cli simulate  --kind star --leaves 12 --workload uniform *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Partition = Hbn_workload.Partition
module Placement = Hbn_placement.Placement
module Loads = Hbn_loads.Loads
module Strategy = Hbn_core.Strategy
module Certificates = Hbn_core.Certificates
module Baselines = Hbn_baselines.Baselines
module Lower_bounds = Hbn_exact.Lower_bounds
module Gadget_opt = Hbn_exact.Gadget_opt
module Sim = Hbn_sim.Sim
module Link = Hbn_event.Link
module Dist = Hbn_dist.Dist
module Dist_nibble = Hbn_dist.Dist_nibble
module Faults = Hbn_dist.Faults
module Runtime = Hbn_dist.Runtime
module Table = Hbn_util.Table
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink
module Metrics = Hbn_obs.Metrics
module Attribution = Hbn_obs.Attribution
module Telemetry = Hbn_obs.Telemetry
module Monitor = Hbn_obs.Monitor
module Report = Hbn_obs.Report
module Exec = Hbn_exec.Exec
module Serve = Hbn_serve.Serve
module Drift = Hbn_serve.Drift

open Cmdliner

(* Every failure path exits through here so the exit code is uniformly
   non-zero (the subcommands used to differ). *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "hbn_cli: %s\n" msg;
      exit 1)
    fmt

(* -- shared options ----------------------------------------------------- *)

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (deterministic).")

let kind =
  Arg.(
    value
    & opt (enum [ ("star", `Star); ("balanced", `Balanced);
                  ("caterpillar", `Caterpillar); ("random", `Random);
                  ("rings", `Rings) ])
        `Balanced
    & info [ "kind" ] ~doc:"Topology family: star|balanced|caterpillar|random|rings.")

let leaves = Arg.(value & opt int 12 & info [ "leaves" ] ~doc:"Processor count.")
let arity = Arg.(value & opt int 3 & info [ "arity" ] ~doc:"Balanced-tree arity.")
let height = Arg.(value & opt int 3 & info [ "height" ] ~doc:"Balanced-tree height.")
let spine = Arg.(value & opt int 6 & info [ "spine" ] ~doc:"Caterpillar spine length.")
let buses = Arg.(value & opt int 6 & info [ "buses" ] ~doc:"Random-topology bus count.")
let bandwidth = Arg.(value & opt int 2 & info [ "bandwidth" ] ~doc:"Uniform bus/switch bandwidth.")

let workload_kind =
  Arg.(
    value
    & opt (enum [ ("uniform", `Uniform); ("zipf", `Zipf); ("hotspot", `Hotspot);
                  ("prodcons", `Prodcons); ("local", `Local) ])
        `Uniform
    & info [ "workload" ] ~doc:"Workload family: uniform|zipf|hotspot|prodcons|local.")

let objects = Arg.(value & opt int 10 & info [ "objects" ] ~doc:"Shared object count.")

let jobs =
  Arg.(
    value
    & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Run the per-object pipeline on $(docv) domains (default 1, \
           sequential). Results are bit-identical at any value.")

(* Runs [f] with a runner for [--jobs n]; the worker domains are torn
   down before the command exits. *)
let with_jobs jobs f =
  if jobs < 1 then die "--jobs must be >= 1 (got %d)" jobs;
  Exec.with_runner ~jobs f

(* -- observability ------------------------------------------------------ *)

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL trace (spans, events, gauges, final counter \
           totals) to $(docv). See README section Observability for the \
           event schema.")

let timings =
  Arg.(
    value
    & flag
    & info [ "timings" ]
        ~doc:"Print a per-phase wall-time table after the command.")

(* Installs the requested sinks around [f]: a JSONL writer for [--trace],
   a span-duration aggregator for [--timings], or their tee. Every event
   is tagged with the executor slot of the domain that emitted it
   ([domain:0] outside a pool — pool tasks never trace, so the tag also
   keeps traces byte-identical across job counts). With neither flag the
   tracer stays disabled and [f] runs untouched. *)
let with_observability ~trace ~timings f =
  let timing_sink, timing_read =
    if timings then
      let s, read = Sink.timings () in
      (Some s, Some read)
    else (None, None)
  in
  let file_sink, close_file =
    match trace with
    | None -> (None, fun () -> ())
    | Some path -> (
      match open_out path with
      | oc -> (Some (Sink.jsonl oc), fun () -> close_out oc)
      | exception Sys_error m -> die "cannot open trace file: %s" m)
  in
  let sink =
    match (file_sink, timing_sink) with
    | None, None -> None
    | Some s, None | None, Some s -> Some s
    | Some a, Some b -> Some (Sink.tee a b)
  in
  let sink =
    Option.map
      (Sink.with_attrs (fun () ->
           [ ("domain", Sink.Int (Exec.current_worker ())) ]))
      sink
  in
  (match sink with
  | None -> ()
  | Some s ->
    Metrics.reset Metrics.global;
    Trace.set_sink (Some s));
  Fun.protect
    ~finally:(fun () ->
      (match sink with
      | None -> ()
      | Some s ->
        Metrics.emit Metrics.global s;
        Trace.set_sink None);
      close_file ();
      match timing_read with
      | None -> ()
      | Some read ->
        let table =
          Table.create [ "phase"; "calls"; "total ms"; "mean ms" ]
        in
        List.iter
          (fun (name, calls, total_ns) ->
            let total_ms = Int64.to_float total_ns /. 1e6 in
            Table.add_row table
              [
                name;
                string_of_int calls;
                Table.fmt_float total_ms;
                Table.fmt_float (total_ms /. float_of_int calls);
              ])
          (read ());
        Table.print table)
    f

(* The --jobs/--trace/--timings bundle every pipeline-running subcommand
   (place, compare, simulate, explain) shares — parsed by one term and
   installed by one helper, so the commands cannot drift apart. *)
type run_opts = { ro_jobs : int; ro_trace : string option; ro_timings : bool }

let run_opts_term =
  let make ro_jobs ro_trace ro_timings = { ro_jobs; ro_trace; ro_timings } in
  Term.(const make $ jobs $ trace_file $ timings)

let with_run_opts opts f =
  with_observability ~trace:opts.ro_trace ~timings:opts.ro_timings @@ fun () ->
  with_jobs opts.ro_jobs f

let build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth =
  let profile = Builders.Uniform bandwidth in
  match kind with
  | `Star -> Builders.star ~leaves ~profile
  | `Balanced -> Builders.balanced ~arity ~height ~profile
  | `Caterpillar ->
    Builders.caterpillar ~spine ~leaves_per_bus:(max 1 (leaves / max 1 spine))
      ~profile
  | `Random -> Builders.random ~prng ~buses ~leaves ~profile
  | `Rings ->
    Builders.of_ring
      (Builders.sample_ring_of_rings ~prng ~depth:height ~fanout:2
         ~procs_per_ring:3)

let build_workload kind ~prng tree ~objects =
  match kind with
  | `Uniform -> Generators.uniform ~prng tree ~objects ~max_rate:8
  | `Zipf ->
    Generators.zipf_popularity ~prng tree ~objects ~requests_per_leaf:24
      ~exponent:1.1 ~write_fraction:0.3
  | `Hotspot ->
    Generators.hotspot ~prng tree ~objects ~writers_per_object:2 ~write_rate:8
      ~read_rate:6
  | `Prodcons ->
    Generators.producer_consumer ~prng tree ~objects ~consumers:4 ~rate:6
  | `Local ->
    Generators.local_with_background ~prng tree ~objects ~local_rate:40
      ~background_rate:2

(* -- topology ----------------------------------------------------------- *)

let topology_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of a summary.") in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Write the network to FILE.")
  in
  let load =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE"
             ~doc:"Read the network from FILE instead of generating one.")
  in
  let run seed kind leaves arity height spine buses bandwidth dot save load =
    let prng = Prng.create seed in
    let t =
      match load with
      | None -> build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth
      | Some path -> (
        match Hbn_tree.Topology_io.load ~path with
        | Ok t -> t
        | Error m -> die "cannot load %s: %s" path m)
    in
    (match save with
    | None -> ()
    | Some path ->
      Hbn_tree.Topology_io.save t ~path;
      Printf.printf "saved to %s\n" path);
    if dot then print_string (Tree.to_dot t)
    else begin
      Format.printf "%a@." Tree.pp t;
      match Tree.validate_paper_assumptions t with
      | Ok () -> print_endline "paper assumptions: ok (unit processor switches)"
      | Error m -> Printf.printf "paper assumptions violated: %s\n" m
    end
  in
  Cmd.v (Cmd.info "topology" ~doc:"Generate, load, save and inspect a hierarchical bus network.")
    Term.(const run $ seed $ kind $ leaves $ arity $ height $ spine $ buses
          $ bandwidth $ dot $ save $ load)

(* -- place -------------------------------------------------------------- *)

let place_cmd =
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Print per-object copy sets.") in
  let capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ]
          ~doc:"Per-processor copy capacity (post-processes the placement).")
  in
  let run seed kind leaves arity height spine buses bandwidth wkind objects
      verbose capacity opts =
    with_run_opts opts @@ fun exec ->
    let prng = Prng.create seed in
    let t = build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth in
    let w = build_workload wkind ~prng t ~objects in
    let res = Strategy.run ~exec w in
    let res =
      match capacity with
      | None -> res
      | Some cap ->
        (match Hbn_core.Capacitated.apply w ~capacity:(fun _ -> cap)
                 res.Strategy.placement with
        | out ->
          Printf.printf
            "capacity %d: %d relocations, %d merges applied\n" cap
            out.Hbn_core.Capacitated.relocations
            out.Hbn_core.Capacitated.merges;
          { res with Strategy.placement = out.Hbn_core.Capacitated.placement }
        | exception Hbn_core.Capacitated.Infeasible msg ->
          Printf.printf "capacity %d infeasible: %s\n" cap msg;
          res)
    in
    let c = Placement.evaluate ~exec w res.Strategy.placement in
    Printf.printf "network: %d processors, %d buses, height %d\n"
      (Tree.num_leaves t) (List.length (Tree.buses t)) (Tree.height t);
    Printf.printf "workload: %d objects, %d requests\n" objects
      (Workload.total_requests w);
    Printf.printf "congestion: %.3f  (bottleneck %s)\n" c.Placement.value
      (match c.Placement.bottleneck with
      | `Edge e -> Printf.sprintf "edge %d" e
      | `Bus b -> Printf.sprintf "bus %d" b);
    Printf.printf "lower bound: %.3f  (certified ratio <= %.3f; proven <= 7)\n"
      (Lower_bounds.combined w)
      (if Lower_bounds.combined w > 0. then c.Placement.value /. Lower_bounds.combined w
       else Float.nan);
    Printf.printf "deletions: %d, clone splits: %d, tau_max: %d\n"
      res.Strategy.deletions res.Strategy.splits res.Strategy.tau_max;
    (if capacity = None then
       match Certificates.check_all w res with
       | Ok () -> print_endline "certificates: all hold (Obs 3.2, Lemmas 4.5/4.6)"
       | Error m -> Printf.printf "CERTIFICATE FAILURE: %s\n" m
     else
       print_endline
         "certificates: skipped (capacity post-processing voids the factor-7 \
          analysis)");
    if verbose then
      Array.iteri
        (fun obj _ ->
          Printf.printf "  object %2d -> [%s]\n" obj
            (String.concat "; "
               (List.map string_of_int
                  (Placement.copies res.Strategy.placement ~obj))))
        res.Strategy.placement
  in
  Cmd.v (Cmd.info "place" ~doc:"Run the extended-nibble strategy on a generated instance.")
    Term.(const run $ seed $ kind $ leaves $ arity $ height $ spine $ buses
          $ bandwidth $ workload_kind $ objects $ verbose $ capacity
          $ run_opts_term)

(* -- explain ------------------------------------------------------------ *)

let explain_cmd =
  let top =
    Arg.(
      value
      & opt int 3
      & info [ "top" ] ~docv:"K" ~doc:"Number of hottest sites to explain.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json); ("dot", `Dot) ]) `Table
      & info [ "format" ]
          ~doc:
            "Output format: $(b,table) prints per-site contributor tables, \
             $(b,json) a hbn.explain/v1 document, $(b,dot) a Graphviz \
             heatmap of the whole network.")
  in
  let site_name = function
    | `Edge e -> Printf.sprintf "edge %d" e
    | `Bus b -> Printf.sprintf "bus %d" b
  in
  let run seed kind leaves arity height spine buses bandwidth wkind objects
      top format opts =
    with_run_opts opts @@ fun exec ->
    let prng = Prng.create seed in
    let t = build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth in
    let w = build_workload wkind ~prng t ~objects in
    let res = Strategy.run ~exec w in
    let attr = Attribution.of_placement w res.Strategy.placement in
    (* Cross-check 1: per-edge contribution sums must reproduce the
       evaluator's loads, and the top hotspot its congestion/bottleneck. *)
    let c = Placement.evaluate ~exec w res.Strategy.placement in
    if Attribution.totals attr <> c.Placement.edge_loads then
      die "attribution totals diverge from Placement.evaluate";
    (match Attribution.hotspots attr ~k:1 with
    | [] -> ()
    | (site, rel) :: _ ->
      if rel <> c.Placement.value then
        die "top hotspot relative load %.6f <> congestion %.6f" rel
          c.Placement.value;
      if site <> (c.Placement.bottleneck :> Attribution.site) then
        die "top hotspot %s <> bottleneck %s" (site_name site)
          (site_name c.Placement.bottleneck));
    (* Cross-check 2: an attribution maintained incrementally through a
       live load engine must equal the one-shot table bit for bit. *)
    let copies =
      Array.map (fun op -> op.Placement.copies) res.Strategy.placement
    in
    let eng = Loads.create w in
    let incremental = Attribution.attach eng in
    Array.iteri
      (fun obj cs -> List.iter (fun node -> Loads.add_copy eng ~obj node) cs)
      copies;
    let oneshot = Attribution.of_placement w (Placement.nearest w ~copies) in
    if not (Attribution.equal incremental oneshot) then
      die "incremental attribution diverges from the one-shot table";
    match format with
    | `Json -> print_endline (Attribution.to_json ~k:top attr)
    | `Dot -> print_string (Attribution.to_dot attr)
    | `Table ->
      Printf.printf "congestion: %.3f  (bottleneck %s)\n" c.Placement.value
        (site_name c.Placement.bottleneck);
      List.iteri
        (fun i (site, rel) ->
          let total, contribs =
            match site with
            | `Edge e ->
              ( Attribution.edge_total attr ~edge:e,
                Attribution.edge_contributions attr ~edge:e )
            | `Bus b ->
              ( Attribution.bus_total2 attr ~bus:b,
                Attribution.bus_contributions attr ~bus:b )
          in
          let bw =
            match site with
            | `Edge e -> Tree.edge_bandwidth t e
            | `Bus b -> Tree.bus_bandwidth t b
          in
          Printf.printf "#%d %s: load %d%s, bandwidth %d, relative %.3f\n"
            (i + 1) (site_name site) total
            (match site with `Bus _ -> " (doubled)" | `Edge _ -> "")
            bw rel;
          let table = Table.create [ "object"; "component"; "amount"; "share" ] in
          List.iter
            (fun { Attribution.obj; component; amount } ->
              Table.add_row table
                [
                  string_of_int obj;
                  Placement.component_name component;
                  string_of_int amount;
                  Printf.sprintf "%.1f%%"
                    (100. *. float_of_int amount /. float_of_int total);
                ])
            contribs;
          Table.print table)
        (Attribution.hotspots attr ~k:top)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Attribute every edge's load to (object, component) contributors \
          and explain the hottest sites.")
    Term.(const run $ seed $ kind $ leaves $ arity $ height $ spine $ buses
          $ bandwidth $ workload_kind $ objects $ top $ format $ run_opts_term)

(* -- workload ----------------------------------------------------------- *)

let workload_cmd =
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Write the workload to FILE.")
  in
  let load =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"FILE"
             ~doc:"Read the workload from FILE instead of generating one \
                   (requires --topology-file for the matching network).")
  in
  let topo_file =
    Arg.(value & opt (some string) None
         & info [ "topology-file" ] ~docv:"FILE"
             ~doc:"Load the network from FILE instead of generating it.")
  in
  let run seed kind leaves arity height spine buses bandwidth wkind objects
      save load topo_file =
    let prng = Prng.create seed in
    let t =
      match topo_file with
      | None ->
        build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth
      | Some path -> (
        match Hbn_tree.Topology_io.load ~path with
        | Ok t -> t
        | Error m -> die "cannot load %s: %s" path m)
    in
    let w =
      match load with
      | None -> build_workload wkind ~prng t ~objects
      | Some path -> (
        match Hbn_workload.Workload_io.load t ~path with
        | Ok w -> w
        | Error m -> die "cannot load %s: %s" path m)
    in
    (match save with
    | None -> ()
    | Some path ->
      Hbn_workload.Workload_io.save w ~path;
      Printf.printf "saved to %s\n" path);
    Format.printf "%a@." Workload.pp w
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate, load, save and summarize a workload.")
    Term.(const run $ seed $ kind $ leaves $ arity $ height $ spine $ buses
          $ bandwidth $ workload_kind $ objects $ save $ load $ topo_file)

(* -- dynamic ------------------------------------------------------------ *)

let dynamic_cmd =
  let requests_kind =
    Arg.(
      value
      & opt (enum [ ("shuffled", `Shuffled); ("bursty", `Bursty) ]) `Shuffled
      & info [ "requests" ] ~doc:"Request order: shuffled|bursty.")
  in
  let run seed kind leaves arity height spine buses bandwidth wkind objects
      requests_kind =
    let prng = Prng.create seed in
    let t = build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth in
    let w = build_workload wkind ~prng t ~objects in
    let table =
      Table.create
        [ "object"; "requests"; "online"; "offline OPT"; "worst edge ratio";
          "repl"; "migr"; "peak copies" ]
    in
    for obj = 0 to objects - 1 do
      let reqs =
        match requests_kind with
        | `Shuffled -> Hbn_dynamic.Request.of_workload ~prng w ~obj
        | `Bursty -> Hbn_dynamic.Request.bursty ~prng w ~obj ~burst:8
      in
      match reqs with
      | [] -> ()
      | first :: _ ->
        let initial = first.Hbn_dynamic.Request.node in
        let dyn = Hbn_dynamic.Online.run t ~initial reqs in
        let opt = Hbn_dynamic.Offline.per_edge_optimum t ~initial reqs in
        let worst = ref 0. in
        Array.iteri
          (fun e l ->
            if opt.(e) > 0 then
              worst := Float.max !worst (float_of_int l /. float_of_int opt.(e)))
          dyn.Hbn_dynamic.Online.edge_loads;
        Table.add_row table
          [
            string_of_int obj;
            string_of_int dyn.Hbn_dynamic.Online.served;
            string_of_int
              (Array.fold_left ( + ) 0 dyn.Hbn_dynamic.Online.edge_loads);
            string_of_int (Array.fold_left ( + ) 0 opt);
            Table.fmt_float !worst;
            string_of_int dyn.Hbn_dynamic.Online.replications;
            string_of_int dyn.Hbn_dynamic.Online.migrations;
            string_of_int dyn.Hbn_dynamic.Online.max_copies;
          ]
    done;
    Table.print table;
    print_endline
      "worst edge ratio compares against the exact per-edge offline optimum \
       (competitive ratio 3 for trees, per the paper's reference [10])"
  in
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:"Run the online dynamic strategy and compare with the offline optimum.")
    Term.(const run $ seed $ kind $ leaves $ arity $ height $ spine $ buses
          $ bandwidth $ workload_kind $ objects $ requests_kind)

(* -- compare ------------------------------------------------------------ *)

let compare_cmd =
  let ls_iters =
    Arg.(
      value
      & opt int 100
      & info [ "ls-iters" ]
          ~doc:
            "Hill-climb proposals for the local-search baseline (each one \
             is an incremental delta on the load engine, so large values \
             stay cheap).")
  in
  let run seed kind leaves arity height spine buses bandwidth wkind objects
      ls_iters opts =
    with_run_opts opts @@ fun exec ->
    let prng = Prng.create seed in
    let t = build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth in
    let w = build_workload wkind ~prng t ~objects in
    let lb = Lower_bounds.combined w in
    let table = Table.create [ "strategy"; "congestion"; "C/LB"; "total load"; "makespan" ] in
    List.iter
      (fun (name, p) ->
        let c = Placement.congestion ~exec w p in
        Table.add_row table
          [
            name;
            Table.fmt_float c;
            Table.fmt_ratio c lb;
            string_of_int (Placement.total_load w p);
            string_of_int (Sim.run ~scale:4 w p).Sim.makespan;
          ])
      [
        ("extended-nibble", (Strategy.run ~exec w).Strategy.placement);
        ("owner", Baselines.owner w);
        ("gravity-leaf", Baselines.gravity_leaf w);
        ("random-leaf", Baselines.random_leaf ~prng w);
        ("full-replication", Baselines.full_replication w);
        ("local-search", Baselines.local_search ~iterations:ls_iters ~prng w);
      ];
    Table.print table;
    Printf.printf "lower bound (certified): %.3f\n" lb
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare placement strategies on one instance.")
    Term.(const run $ seed $ kind $ leaves $ arity $ height $ spine $ buses
          $ bandwidth $ workload_kind $ objects $ ls_iters $ run_opts_term)

(* -- gadget ------------------------------------------------------------- *)

let gadget_cmd =
  let items =
    Arg.(non_empty & pos_all int [] & info [] ~docv:"ITEM" ~doc:"PARTITION items (positive).")
  in
  let run items =
    let inst =
      match Partition.make items with
      | inst -> inst
      | exception Invalid_argument m -> die "%s" m
    in
    (match Partition.half inst with
    | None ->
      Printf.printf "item sum %d is odd: PARTITION trivially unsolvable\n"
        (Partition.sum inst)
    | Some k ->
      let g = Partition.gadget inst in
      let w = g.Partition.workload in
      Printf.printf "gadget: 4-ary tree of height 1, %d objects, k = %d\n"
        (Workload.num_objects w) k;
      Printf.printf "PARTITION solvable: %b\n" (Partition.solvable inst);
      let opt = Gadget_opt.family_optimum inst in
      Printf.printf "optimal congestion: %d (4k = %d)\n" opt (4 * k);
      (match Partition.find_subset inst with
      | Some s ->
        let p = Placement.single w (Partition.yes_placement g s) in
        Printf.printf "witness: x_i of {%s} on s, rest on s̄, y on a -> congestion %.0f\n"
          (String.concat ", " (List.map string_of_int s))
          (Placement.congestion w p)
      | None -> ());
      let res = Strategy.run w in
      Printf.printf "extended-nibble: %.0f (ratio %.2f)\n"
        (Placement.congestion w res.Strategy.placement)
        (Placement.congestion w res.Strategy.placement /. float_of_int opt))
  in
  Cmd.v (Cmd.info "gadget" ~doc:"Encode a PARTITION instance into the Theorem 2.1 gadget.")
    Term.(const run $ items)

(* -- simulate ----------------------------------------------------------- *)

let simulate_cmd =
  let scale = Arg.(value & opt int 4 & info [ "scale" ] ~doc:"Frequency downscaling for the simulation.") in
  let telemetry_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Record per-round runtime telemetry (sent/delivered/dropped \
             messages, bytes, retransmits, duplicate suppressions, live \
             nodes, hottest-edge utilization) and write it to $(docv) as \
             JSONL series events — the packet simulation under prefix \
             $(b,sim), the hardened distributed protocol (with --faults) \
             under prefix $(b,dist). A drift monitor watches each series \
             online: the command prints a health verdict per engine \
             (steady/drifting/degrading) and any change-point alerts are \
             appended to $(docv) as $(b,alert) events. Feed the file to \
             $(b,hbn_cli report) (or $(b,report --diff) against an older \
             run). The file is bit-identical across reruns and --jobs \
             values.")
  in
  let faults_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Run the distributed protocol under a deterministic fault \
             plan instead of the lossless emulation. $(docv) is \
             comma-separated clauses: drop=P (per-message drop \
             probability), until=R (drop horizon, default inf), \
             crash=N:A-B (node N down rounds A..B, B may be 'inf'), \
             cut=E:A-B (edge E severed rounds A..B); e.g. \
             drop=0.1,until=200,crash=3:10-40. The plan is seeded from \
             --seed, so reruns are bit-identical.")
  in
  let link_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "link" ] ~docv:"SPEC"
          ~doc:
            "Give every tree level its own link delay and bandwidth and \
             run the simulation (and, with --faults, the distributed \
             recovery) on the discrete-event engine over virtual time. \
             $(docv) is comma-separated DELAY:BANDWIDTH clauses, \
             root-down, one per level; a short spec extends its last \
             clause to deeper levels and BANDWIDTH may be 'inf' \
             (transmission is instantaneous, only the delay remains); \
             e.g. 1:8,2:2 or 1:inf. The spec '1:inf' is the synchronous \
             regime and reproduces the default schedule bit for bit.")
  in
  let run seed kind leaves arity height spine buses bandwidth wkind objects
      scale faults_spec link_spec telemetry_path opts =
    with_run_opts opts @@ fun exec ->
    let prng = Prng.create seed in
    let t = build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth in
    let w = build_workload wkind ~prng t ~objects in
    (* One collector per engine so the sim schedule and the distributed
       protocol each get their own round axis in the output file. *)
    let mk_tel () =
      Option.map
        (fun _ -> Telemetry.create ~num_edges:(Tree.num_edges t) ())
        telemetry_path
    in
    let sim_tel = mk_tel () in
    let dist_tel = mk_tel () in
    (* A drift monitor rides along with each collector; the engines
       ingest the folded series at end of run and hand back a verdict.
       The prefix matches the collector's emit prefix, so alert series
       names agree with the telemetry series at the source. *)
    let mk_mon prefix =
      Option.map (fun _ -> Monitor.create ~prefix ()) telemetry_path
    in
    let sim_mon = mk_mon "sim" in
    let dist_mon = mk_mon "dist" in
    let print_health what = function
      | None -> ()
      | Some v ->
        let alerts =
          match v with
          | Monitor.Steady -> []
          | Monitor.Drifting l | Monitor.Degrading l -> l
        in
        Printf.printf "health (%s): %s%s\n" what (Monitor.verdict_name v)
          (match alerts with
          | [] -> ""
          | l ->
            Printf.sprintf " (%d alert%s, first: %s %s@r%d)" (List.length l)
              (if List.length l = 1 then "" else "s")
              (List.hd l).Monitor.a_series
              (Monitor.kind_name (List.hd l).Monitor.a_kind)
              (List.hd l).Monitor.a_round)
    in
    let link =
      Option.map
        (fun spec ->
          match Link.of_spec spec with
          | Ok c -> c
          | Error e -> die "bad --link spec: %s" e)
        link_spec
    in
    Option.iter
      (fun c -> Printf.printf "link model: %s (per level, root-down)\n" (Link.to_spec c))
      link;
    let res = Strategy.run ~exec w in
    let out =
      Sim.run ~scale ?telemetry:sim_tel ?monitor:sim_mon ?link w
        res.Strategy.placement
    in
    Printf.printf "packets: %d, edge transmissions: %d\n" out.Sim.packets
      out.Sim.transmissions;
    Printf.printf "makespan: %d rounds (lower bound %.1f)\n" out.Sim.makespan
      (Sim.lower_bound w res.Strategy.placement out);
    Printf.printf "completion: %g virtual time\n" out.Sim.completion;
    print_health "sim" out.Sim.health;
    (* The distributed protocol must reproduce the centralized strategy:
       identical placements ideally, congestion-equal at minimum. A
       divergence is a bug in one of the two implementations, so it
       fails the command rather than being quietly dropped. *)
    let check_against_centralized ~what placement =
      if placement = res.Strategy.placement then
        Printf.printf "%s: identical to centralized strategy\n" what
      else
        let cd = (Placement.evaluate ~exec w placement).Placement.value in
        let cc = (Placement.evaluate ~exec w res.Strategy.placement).Placement.value in
        if cd = cc then
          Printf.printf
            "%s: differs structurally but is congestion-equal (%.3f)\n" what cd
        else
          die "%s diverges from centralized strategy: congestion %.3f vs %.3f"
            what cd cc
    in
    let () =
      match faults_spec with
      | None ->
        let placement, stats = Dist.strategy_rounds w in
      check_against_centralized ~what:"distributed placement" placement;
      Printf.printf
        "distributed computation of the placement: %d rounds, %d messages, max node work %d\n"
        stats.Dist.rounds stats.Dist.messages stats.Dist.max_node_work
    | Some spec ->
      let plan =
        match Faults.of_spec ~seed spec with
        | Ok p -> p
        | Error e -> die "bad --faults spec: %s" e
      in
      Printf.printf "fault plan: %s (seed %d)\n" (Faults.to_spec plan)
        (Faults.seed plan);
      let summarize_log log =
        let count p = List.length (List.filter p log) in
        Printf.printf
          "fault log: %d events (%d dropped, %d crash/restart, %d cut/restore)\n"
          (List.length log)
          (count (fun e ->
               match e.Faults.kind with Faults.Dropped _ -> true | _ -> false))
          (count (fun e ->
               match e.Faults.kind with
               | Faults.Crashed _ | Faults.Restarted _ -> true
               | _ -> false))
          (count (fun e ->
               match e.Faults.kind with
               | Faults.Cut _ | Faults.Restored _ -> true
               | _ -> false))
      in
      let print_nibble (ns : Dist_nibble.robust_stats) =
        Printf.printf
          "hardened nibble: %d rounds, %d messages, %d retransmissions, %d \
           duplicates, %d pure acks\n"
          ns.Dist_nibble.runtime.Runtime.rounds
          ns.Dist_nibble.runtime.Runtime.messages
          ns.Dist_nibble.retransmissions ns.Dist_nibble.duplicates
          ns.Dist_nibble.pure_acks
      in
      (match
         Dist.run_with_faults ~faults:plan ?telemetry:dist_tel
           ?monitor:dist_mon ?link w
       with
      | Dist.Recovered { placement; nibble; log; health; _ } ->
        summarize_log log;
        print_nibble nibble;
        print_health "dist" health;
        check_against_centralized ~what:"recovered distributed placement"
          placement
      | Dist.Degraded { reason; nibble; log; health; _ } ->
        summarize_log log;
        print_nibble nibble;
        print_health "dist" health;
        die "fault recovery degraded: %s (%d node/object decisions open)"
          (match reason with
          | `Round_limit -> "round limit reached"
          | `Undecided -> "quiescent with undecided nodes"
          | `Diverged -> "recovered placement diverges from sequential nibble")
          nibble.Dist_nibble.undecided)
    in
    match telemetry_path with
    | None -> ()
    | Some path -> (
      match open_out path with
      | exception Sys_error m -> die "cannot open telemetry file: %s" m
      | oc ->
        let sink = Sink.jsonl oc in
        let dump prefix tel =
          Option.iter (fun t -> Telemetry.emit t ~prefix sink.Sink.emit) tel
        in
        (* Alerts follow their series under the same prefix: the
           monitors are created with it, so their alert events already
           carry fully-qualified series names. *)
        let dump_alerts mon =
          Option.iter (fun m -> Monitor.emit m sink.Sink.emit) mon
        in
        dump "sim" sim_tel;
        dump_alerts sim_mon;
        dump "dist" dist_tel;
        dump_alerts dist_mon;
        sink.Sink.flush ();
        close_out oc;
        let rounds tel =
          match tel with Some t -> Telemetry.rounds_recorded t | None -> 0
        in
        Printf.printf "telemetry: %d sim rounds%s -> %s\n" (rounds sim_tel)
          (if rounds dist_tel > 0 then
             Printf.sprintf " + %d dist rounds" (rounds dist_tel)
           else "")
          path)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Packet-simulate a workload under the strategy's placement.")
    Term.(const run $ seed $ kind $ leaves $ arity $ height $ spine $ buses
          $ bandwidth $ workload_kind $ objects $ scale $ faults_spec
          $ link_spec $ telemetry_file $ run_opts_term)

(* -- serve -------------------------------------------------------------- *)

let serve_cmd =
  let drift_kind =
    Arg.(
      value
      & opt
          (enum
             [ ("steady", Drift.Steady); ("diurnal", Drift.Diurnal);
               ("flash_crowd", Drift.Flash_crowd);
               ("hotspot_migration", Drift.Hotspot_migration) ])
          Drift.Hotspot_migration
      & info [ "drift" ]
          ~doc:
            "Drift generator: steady|diurnal|flash_crowd|hotspot_migration. \
             Ignored with --replay.")
  in
  let epochs_flag =
    Arg.(value & opt int Serve.default.Serve.epochs
         & info [ "epochs" ] ~doc:"Epochs to serve (ignored with --replay).")
  in
  let slots_flag =
    Arg.(value & opt int Serve.default.Serve.slots_per_epoch
         & info [ "slots" ] ~doc:"Slots per epoch.")
  in
  let top_k_flag =
    Arg.(value & opt int Serve.default.Serve.top_k
         & info [ "top-k" ]
             ~doc:"Hot objects eligible per re-optimization.")
  in
  let budget_flag =
    Arg.(value & opt int Serve.default.Serve.budget_bytes
         & info [ "budget" ] ~docv:"BYTES"
             ~doc:"Hard cap on migration bytes per epoch.")
  in
  let hysteresis_flag =
    Arg.(value & opt float Serve.default.Serve.hysteresis
         & info [ "hysteresis" ]
             ~doc:
               "Commit a re-optimization only if its migration bytes stay \
                under this fraction of the message bytes the congestion \
                drop saves over the coming epoch.")
  in
  let rate_flag =
    Arg.(value & opt int 8
         & info [ "rate" ] ~doc:"Base per-(leaf,object) request rate.")
  in
  let serve_seed =
    Arg.(value & opt int Serve.default.Serve.seed
         & info [ "serve-seed" ]
             ~doc:
               "Seeds the drift generator, the per-epoch climb PRNG and \
                the slot jitter (separate from the topology --seed; pass \
                the same value when replaying a recording).")
  in
  let no_oracle =
    Arg.(value & flag
         & info [ "no-oracle" ]
             ~doc:
               "Skip the fresh per-epoch re-place the oracle column \
                reports (faster; the serving loop itself never uses it).")
  in
  let record_file =
    Arg.(value & opt (some string) None
         & info [ "record" ] ~docv:"FILE"
             ~doc:
               "Save the generated per-epoch request tables to $(docv) \
                for a later --replay.")
  in
  let replay_file =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:
               "Serve the request tables recorded in $(docv) instead of a \
                generator; the epoch count comes from the file, which \
                must have been recorded over the same topology shape.")
  in
  let telemetry_file =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE"
             ~doc:
               "Write the serving telemetry (per-slot traffic, \
                reconfiguration counters) and the monitor's alerts to \
                $(docv) as JSONL series/alert events under prefix \
                $(b,serve) — feed it to $(b,hbn_cli report). Bit-identical \
                across reruns and --jobs values.")
  in
  let run seed kind leaves arity height spine buses bandwidth objects drift
      epochs slots top_k budget hysteresis rate sseed no_oracle record replay
      telemetry_path opts =
    with_run_opts opts @@ fun exec ->
    if epochs < 1 then die "--epochs must be >= 1 (got %d)" epochs;
    if slots < 1 then die "--slots must be >= 1 (got %d)" slots;
    if top_k < 1 then die "--top-k must be >= 1 (got %d)" top_k;
    if budget < 0 then die "--budget must be >= 0 (got %d)" budget;
    if hysteresis < 0.0 then die "--hysteresis must be >= 0 (got %g)" hysteresis;
    if rate < 1 then die "--rate must be >= 1 (got %d)" rate;
    if objects < 1 then die "--objects must be >= 1 (got %d)" objects;
    let prng = Prng.create seed in
    let tree =
      build_topology kind ~prng ~leaves ~arity ~height ~spine ~buses ~bandwidth
    in
    let cfg =
      { Serve.default with Serve.slots_per_epoch = slots; epochs; top_k;
        budget_bytes = budget; hysteresis; seed = sseed;
        oracle = not no_oracle }
    in
    (* Mode banners go to stderr: stdout carries only the epoch table and
       totals, which a generator run and a replay of its recording must
       reproduce byte for byte (make serve-smoke diffs them). *)
    let source, cfg =
      match replay with
      | Some path -> (
        match Serve.load_tables ~tree path with
        | Error m -> die "cannot replay %s: %s" path m
        | Ok ts ->
          Printf.eprintf "hbn_cli: replaying %d epoch table(s) from %s\n"
            (Array.length ts) path;
          (Serve.Tables ts, { cfg with Serve.epochs = Array.length ts }))
      | None ->
        let d = Drift.create drift ~seed:sseed ~tree ~objects ~rate in
        (match record with
        | None -> ()
        | Some path -> (
          let ts = Serve.tables d ~epochs:cfg.Serve.epochs in
          match Serve.save_tables path ts with
          | Ok () ->
            Printf.eprintf "hbn_cli: recorded %d epoch table(s) to %s\n"
              cfg.Serve.epochs path
          | Error m -> die "cannot record tables to %s: %s" path m));
        (Serve.Generator d, cfg)
    in
    let out = Serve.run ~exec cfg source in
    let tbl =
      Table.create
        [ "epoch"; "requests"; "serve"; "stale"; "oracle"; "bytes";
          "repl/migr/drop"; "alerts" ]
    in
    List.iter
      (fun s ->
        Table.add_row tbl
          [
            string_of_int s.Serve.s_epoch;
            string_of_int s.Serve.s_requests;
            Table.fmt_float s.Serve.s_congestion;
            Table.fmt_float s.Serve.s_stale;
            (if Float.is_nan s.Serve.s_oracle then "-"
             else Table.fmt_float s.Serve.s_oracle);
            string_of_int s.Serve.s_bytes_migrated;
            (if s.Serve.s_reoptimized then
               Printf.sprintf "%d/%d/%d" s.Serve.s_replications
                 s.Serve.s_migrations s.Serve.s_contractions
             else "-");
            string_of_int s.Serve.s_alerts;
          ])
      out.Serve.epochs;
    Table.print tbl;
    Printf.printf "served %d requests over %d epochs (%d slots each)\n"
      out.Serve.total_requests cfg.Serve.epochs cfg.Serve.slots_per_epoch;
    Printf.printf
      "re-optimized %d epoch(s), migrated %d bytes (budget %d/epoch, \
       hysteresis %g)\n"
      out.Serve.reoptimized_epochs out.Serve.total_bytes_migrated
      cfg.Serve.budget_bytes cfg.Serve.hysteresis;
    Printf.printf "health (serve): %s (%d alert%s)\n"
      (Monitor.verdict_name out.Serve.verdict)
      (List.length out.Serve.alerts)
      (if List.length out.Serve.alerts = 1 then "" else "s");
    match telemetry_path with
    | None -> ()
    | Some path -> (
      match open_out path with
      | exception Sys_error m -> die "cannot open telemetry file: %s" m
      | oc ->
        let sink = Sink.jsonl oc in
        Telemetry.emit out.Serve.telemetry ~prefix:"serve" sink.Sink.emit;
        Monitor.emit out.Serve.monitor sink.Sink.emit;
        sink.Sink.flush ();
        close_out oc;
        Printf.eprintf "hbn_cli: telemetry: %d serve rounds -> %s\n"
          (Telemetry.rounds_recorded out.Serve.telemetry)
          path)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve drifting request traffic epoch by epoch, re-optimizing \
          only the hot objects when the drift monitor raises an alert — \
          gated by a per-epoch migration byte budget and hysteresis.")
    Term.(const run $ seed $ kind $ leaves $ arity $ height $ spine $ buses
          $ bandwidth $ objects $ drift_kind $ epochs_flag $ slots_flag
          $ top_k_flag $ budget_flag $ hysteresis_flag $ rate_flag
          $ serve_seed $ no_oracle $ record_file $ replay_file
          $ telemetry_file $ run_opts_term)

(* -- report ------------------------------------------------------------- *)

let report_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "JSONL trace to analyze — written by $(b,--trace) or \
             $(b,--telemetry) on any pipeline subcommand.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json); ("chrome", `Chrome) ])
          `Table
      & info [ "format" ]
          ~doc:
            "Output format: $(b,table) prints a human-readable report \
             (phases, critical path, counters, series, hottest edges), \
             $(b,json) a hbn.report/v1 document, $(b,chrome) Chrome \
             trace-event JSON — load it in Perfetto (ui.perfetto.dev) or \
             chrome://tracing to browse the trace as a flame chart.")
  in
  let top =
    Arg.(
      value
      & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:"Rows in the hottest-edge table (default 5).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff" ] ~docv:"BASELINE"
          ~doc:
            "Compare $(docv) (another JSONL trace) against TRACE instead \
             of reporting TRACE alone: per-series total/peak deltas and \
             P-square quantile shifts, plus drift alerts recomputed on \
             both sides and classified new/resolved — any committed \
             trace becomes a regression baseline. Honors $(b,--format) \
             table and json (chrome has no diff rendering). Diffing a \
             trace against itself reports zero deltas.")
  in
  let run file format top baseline =
    if top < 1 then die "--top must be >= 1 (got %d)" top;
    let load path =
      match Report.load ~path with Error m -> die "%s" m | Ok r -> r
    in
    match baseline with
    | Some base_path -> (
      let base = load base_path and cur = load file in
      let d = Report.diff ~base ~cur in
      match format with
      | `Table -> print_string (Report.diff_to_table d)
      | `Json -> print_endline (Report.diff_to_json d)
      | `Chrome -> die "--diff has no chrome rendering (use table or json)")
    | None -> (
      let r = load file in
      match format with
      | `Table -> print_string (Report.to_table ~top r)
      | `Json -> print_endline (Report.to_json ~top r)
      | `Chrome -> print_endline (Report.to_chrome r))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyze a recorded JSONL trace offline: per-phase self/total \
          time, the critical path, counter and telemetry-series rollups, \
          drift alerts, hottest edges over time; with $(b,--diff), \
          compare two traces series by series.")
    Term.(const run $ file $ format $ top $ baseline)

let () =
  let doc = "data management in hierarchical bus networks (SPAA 2000 reproduction)" in
  let info = Cmd.info "hbn_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            topology_cmd; workload_cmd; place_cmd; compare_cmd; explain_cmd;
            gadget_cmd; simulate_cmd; dynamic_cmd; serve_cmd; report_cmd;
          ]))
