(* Tree.Flat: the structure-of-arrays hot path must agree bit-for-bit —
   values *and* iteration orders — with the list-returning Tree functions
   it replaced, on arbitrary trees, with one shared scratch to exercise
   the stamp-based reuse discipline. *)

module Tree = Hbn_tree.Tree
module Flat = Hbn_tree.Flat
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload

let random_nodes prng tree k =
  Array.init k (fun _ -> Prng.int prng (Tree.n tree))

(* LCA and distance against both the rooted walk and the O(log n) index. *)
let prop_lca_distance_agree seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let fl = Flat.of_tree tree in
  let r = Tree.rooting tree in
  let lix = Tree.lca_index r in
  Array.for_all
    (fun u ->
      let v = Prng.int prng (Tree.n tree) in
      let a = Tree.lca r u v in
      Flat.lca fl u v = a
      && Tree.lca_fast lix u v = a
      && Flat.distance fl u v = Tree.distance lix u v
      && Flat.distance fl u v = List.length (Tree.path_edges tree u v))
    (random_nodes prng tree 40)

(* iter_path must replay Tree.path_edges's exact order (u up to the LCA,
   then down to v); iter_path_unordered the same edge set. *)
let prop_path_iteration_agrees seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let fl = Flat.of_tree tree in
  let scratch = Flat.Scratch.create fl in
  Array.for_all
    (fun u ->
      let v = Prng.int prng (Tree.n tree) in
      let want = Tree.path_edges tree u v in
      let got = ref [] in
      Flat.iter_path fl scratch u v (fun e -> got := e :: !got);
      let unordered = ref [] in
      Flat.iter_path_unordered fl u v (fun e -> unordered := e :: !unordered);
      let sum =
        Flat.fold_path fl scratch u v ~init:0 ~f:(fun a e -> a + e)
      in
      List.rev !got = want
      && List.sort compare !unordered = List.sort compare want
      && sum = List.fold_left ( + ) 0 want)
    (random_nodes prng tree 30)

let prop_path_to_root_agrees seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let fl = Flat.of_tree tree in
  let root = (Tree.rooting tree).Tree.root in
  Array.for_all
    (fun v ->
      let want = Tree.path_edges tree v root in
      let got = ref [] in
      Flat.iter_path_to_root fl v (fun e -> got := e :: !got);
      List.rev !got = want
      && Flat.fold_path_to_root fl v ~init:[] ~f:(fun acc e -> e :: acc)
         = List.rev want)
    (random_nodes prng tree 20)

(* Steiner scans in Tree.steiner_edges's emission order, on random node
   multisets (duplicates and singletons included on purpose). *)
let prop_steiner_agrees seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let fl = Flat.of_tree tree in
  let scratch = Flat.Scratch.create fl in
  List.for_all
    (fun _ ->
      let k = Prng.int_in prng 1 6 in
      let nodes =
        List.init k (fun _ -> Prng.int prng (Tree.n tree))
      in
      let nodes = if Prng.int prng 3 = 0 then nodes @ nodes else nodes in
      let want = Tree.steiner_edges tree nodes in
      let got = ref [] in
      Flat.iter_steiner fl scratch
        ~nodes:(fun mark -> List.iter mark nodes)
        (fun e -> got := e :: !got);
      List.rev !got = want)
    (List.init 25 Fun.id)

let prop_subtree_sums_agree seed =
  let prng = Prng.create (seed + 13) in
  let tree = Helpers.random_tree prng in
  let fl = Flat.of_tree tree in
  let scratch = Flat.Scratch.create fl in
  let n = Tree.n tree in
  let pad = Prng.int prng 5 in
  let src = Array.init (pad + n) (fun _ -> Prng.int prng 20) in
  let want =
    Tree.subtree_sums (Tree.rooting tree) (Array.sub src pad n)
  in
  Flat.subtree_sums_into fl scratch ~src ~src_off:pad;
  Array.sub scratch.Flat.Scratch.acc 0 n = want

(* Scratch reuse: interleaving every kernel through one scratch must give
   the same answers as fresh buffers — the stamp discipline cannot leak
   state between operations. *)
let prop_scratch_reuse_deterministic seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let fl = Flat.of_tree tree in
  let shared = Flat.Scratch.create fl in
  let pairs = Array.init 12 (fun _ -> (Prng.int prng (Tree.n tree), Prng.int prng (Tree.n tree))) in
  let run scratch_of =
    Array.to_list pairs
    |> List.concat_map (fun (u, v) ->
           let path = ref [] in
           Flat.iter_path fl (scratch_of ()) u v (fun e -> path := e :: !path);
           let st = ref [] in
           Flat.iter_steiner fl (scratch_of ())
             ~nodes:(fun mark ->
               mark u;
               mark v)
             (fun e -> st := e :: !st);
           [ !path; !st ])
  in
  run (fun () -> shared) = run (fun () -> Flat.Scratch.create fl)

(* The workload's flat rows against the boxed per-object views. *)
let prop_workload_flat_agrees_with_views seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let w = Helpers.random_workload prng tree in
  let f = Workload.flat w in
  let n = Tree.n tree in
  List.for_all
    (fun obj ->
      let v = Workload.view w ~obj in
      let row =
        Array.init n (fun node -> Workload.Flat.weight f ~obj node)
      in
      let req = ref [] in
      Workload.Flat.iter_requesting f ~obj (fun leaf -> req := leaf :: !req);
      row = v.Workload.View.weights
      && Workload.Flat.kappa f ~obj = v.Workload.View.kappa
      && Workload.Flat.total_weight f ~obj = Workload.View.total_weight v
      && Workload.Flat.num_requesting f ~obj
         = List.length v.Workload.View.requesting
      && List.rev !req = v.Workload.View.requesting)
    (List.init (Workload.num_objects w) Fun.id)

(* Mutation invalidates the flat cache like it invalidates views. *)
let test_flat_invalidated_on_write () =
  let tree = Hbn_tree.Builders.star ~leaves:4 ~profile:(Hbn_tree.Builders.Uniform 1) in
  let w = Workload.empty tree ~objects:1 in
  let leaf = List.hd (Tree.leaves tree) in
  Workload.set_read w ~obj:0 leaf 3;
  let f = Workload.flat w in
  Alcotest.(check int) "weight after set_read" 3
    (Workload.Flat.weight f ~obj:0 leaf);
  Workload.set_write w ~obj:0 leaf 2;
  let f = Workload.flat w in
  Alcotest.(check int) "weight rebuilt after set_write" 5
    (Workload.Flat.weight f ~obj:0 leaf);
  Alcotest.(check int) "kappa rebuilt" 2 (Workload.Flat.kappa f ~obj:0)

let suite =
  [
    Helpers.qt ~count:60 "flat LCA/distance agree with rooted walk + index"
      Helpers.seed_arb prop_lca_distance_agree;
    Helpers.qt ~count:60 "iter_path replays Tree.path_edges order"
      Helpers.seed_arb prop_path_iteration_agrees;
    Helpers.qt ~count:40 "path-to-root iteration matches path_edges"
      Helpers.seed_arb prop_path_to_root_agrees;
    Helpers.qt ~count:60 "iter_steiner replays Tree.steiner_edges order"
      Helpers.seed_arb prop_steiner_agrees;
    Helpers.qt ~count:40 "subtree_sums_into matches Tree.subtree_sums"
      Helpers.seed_arb prop_subtree_sums_agree;
    Helpers.qt ~count:40 "shared scratch gives fresh-buffer answers"
      Helpers.seed_arb prop_scratch_reuse_deterministic;
    Helpers.qt ~count:60 "Workload.Flat rows agree with cached views"
      Helpers.seed_arb prop_workload_flat_agrees_with_views;
    Helpers.tc "flat cache invalidated by set_read/set_write"
      test_flat_invalidated_on_write;
  ]
