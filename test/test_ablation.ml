module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Ablation = Hbn_core.Ablation
module Prng = Hbn_prng.Prng

let prop_naive_valid_and_leaf_only seed =
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  let p = Ablation.naive_nearest_leaf w in
  Placement.validate w p = Ok () && Placement.leaf_only t p

let prop_naive_never_beats_nibble seed =
  (* The nibble loads lower-bound every placement's congestion. *)
  let _, w = Helpers.instance seed in
  let p = Ablation.naive_nearest_leaf w in
  Placement.congestion w p
  >= Placement.congestion w (Hbn_nibble.Nibble.placement w) -. 1e-9

let prop_skip_deletion_sound_when_mapped seed =
  (* When the ablated pipeline happens to terminate, its output is still
     a valid leaf-only placement (just without the guarantee). *)
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  match Ablation.skip_deletion w with
  | Ablation.Stuck _ -> true
  | Ablation.Mapped p ->
    Placement.validate w p = Ok () && Placement.leaf_only t p

let test_skip_deletion_can_fail () =
  (* Search a modest seed range for a genuine free-edge failure: the
     documented reason Step 2 exists. *)
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 300 do
    let prng = Prng.create (140000 + !seed) in
    let tree =
      Builders.random ~prng ~buses:(Prng.int_in prng 3 8)
        ~leaves:(Prng.int_in prng 6 14) ~profile:(Builders.Uniform 2)
    in
    let w =
      Hbn_workload.Generators.hotspot ~prng tree ~objects:6
        ~writers_per_object:(Prng.int_in prng 1 3)
        ~write_rate:(Prng.int_in prng 2 8) ~read_rate:8
    in
    (match Ablation.skip_deletion w with
    | Ablation.Stuck _ -> found := true
    | Ablation.Mapped _ -> ());
    incr seed
  done;
  Alcotest.(check bool) "a stuck instance exists" true !found

let test_naive_loses_to_full_somewhere () =
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 100 do
    let _, w = Helpers.instance !seed in
    let full = Placement.congestion w (Strategy.run w).Strategy.placement in
    let naive = Placement.congestion w (Ablation.naive_nearest_leaf w) in
    if naive > full +. 1e-9 then found := true;
    incr seed
  done;
  Alcotest.(check bool) "naive strictly worse on some instance" true !found

let suite =
  [
    Helpers.tc "skip-deletion can get stuck (Lemma 4.1 needs Step 2)"
      test_skip_deletion_can_fail;
    Helpers.tc "naive mapping loses somewhere" test_naive_loses_to_full_somewhere;
    Helpers.qt "naive variant valid and leaf-only" Helpers.seed_arb
      prop_naive_valid_and_leaf_only;
    Helpers.qt "naive never beats the nibble bound" Helpers.seed_arb
      prop_naive_never_beats_nibble;
    Helpers.qt "skip-deletion output valid when it terminates"
      Helpers.seed_arb prop_skip_deletion_sound_when_mapped;
  ]
