module Stats = Hbn_util.Stats

let feq ?(eps = 1e-9) what a b =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: %f <> %f" what a b

let test_mean () =
  feq "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.mean []))

let test_stddev () =
  feq "constant" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  feq "two-point" 1. (Stats.stddev [ 1.; 3. ])

let test_median () =
  feq "odd" 3. (Stats.median [ 5.; 1.; 3. ]);
  feq "even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ]);
  Alcotest.(check bool) "empty" true (Float.is_nan (Stats.median []))

let test_percentile () =
  let xs = List.init 101 float_of_int in
  feq "p0" 0. (Stats.percentile 0. xs);
  feq "p50" 50. (Stats.percentile 50. xs);
  feq "p100" 100. (Stats.percentile 100. xs);
  feq "p25 interpolated" 0.75 (Stats.percentile 75. [ 0.; 1. ])

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.; -1.; 7. ] in
  feq "min" (-1.) lo;
  feq "max" 7. hi

let test_pearson () =
  feq "perfect" 1. (Stats.pearson [ (1., 2.); (2., 4.); (3., 6.) ]);
  feq "anti" (-1.) (Stats.pearson [ (1., 3.); (2., 2.); (3., 1.) ]);
  Alcotest.(check bool) "constant marginal" true
    (Float.is_nan (Stats.pearson [ (1., 1.); (2., 1.) ]))

let test_spearman () =
  (* Monotone but nonlinear: rank correlation is exactly 1. *)
  feq "monotone" 1. (Stats.spearman [ (1., 1.); (2., 8.); (3., 27.) ]);
  feq "ties handled" 1.
    (Stats.spearman [ (1., 1.); (1., 1.); (2., 2.) ])
    ~eps:1e-6

let test_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0., 1.); (1., 3.); (2., 5.) ] in
  feq "slope" 2. slope;
  feq "intercept" 1. intercept

let test_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.; 0.1; 0.9; 1.0 ] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "counts total" 4 (c0 + c1);
  Alcotest.(check int) "low bin" 2 c0

let prop_percentile_bounds seed =
  let prng = Hbn_prng.Prng.create seed in
  let xs =
    List.init
      (1 + Hbn_prng.Prng.int prng 50)
      (fun _ -> Hbn_prng.Prng.float prng 100.)
  in
  let lo, hi = Stats.min_max xs in
  let p = Stats.percentile (Hbn_prng.Prng.float prng 100.) xs in
  p >= lo -. 1e-9 && p <= hi +. 1e-9

let prop_stddev_nonneg seed =
  let prng = Hbn_prng.Prng.create seed in
  let xs =
    List.init
      (1 + Hbn_prng.Prng.int prng 50)
      (fun _ -> Hbn_prng.Prng.float prng 10. -. 5.)
  in
  Stats.stddev xs >= 0.

let suite =
  [
    Helpers.tc "mean" test_mean;
    Helpers.tc "stddev" test_stddev;
    Helpers.tc "median" test_median;
    Helpers.tc "percentile" test_percentile;
    Helpers.tc "min_max" test_min_max;
    Helpers.tc "pearson" test_pearson;
    Helpers.tc "spearman" test_spearman;
    Helpers.tc "linear_fit" test_linear_fit;
    Helpers.tc "histogram" test_histogram;
    Helpers.qt "percentile within bounds" Helpers.seed_arb prop_percentile_bounds;
    Helpers.qt "stddev nonnegative" Helpers.seed_arb prop_stddev_nonneg;
  ]
