(* Fault injection and recovery: the Faults plan algebra, the runtime's
   fault application, and the hardened distributed nibble. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Nibble = Hbn_nibble.Nibble
module Strategy = Hbn_core.Strategy
module Runtime = Hbn_dist.Runtime
module Dist_nibble = Hbn_dist.Dist_nibble
module Dist = Hbn_dist.Dist
module Faults = Hbn_dist.Faults

(* -- plan algebra ------------------------------------------------------- *)

let test_spec_round_trip () =
  let spec = "drop=0.2,until=40,crash=3:5-15,cut=2:10-14,crash=1:20-inf" in
  match Faults.of_spec ~seed:9 spec with
  | Error e -> Alcotest.failf "of_spec: %s" e
  | Ok p ->
    Alcotest.(check int) "seed" 9 (Faults.seed p);
    Alcotest.(check bool) "not empty" false (Faults.is_empty p);
    (match Faults.of_spec ~seed:9 (Faults.to_spec p) with
    | Error e -> Alcotest.failf "re-parse: %s" e
    | Ok p' ->
      Alcotest.(check string) "canonical spec is a fixed point"
        (Faults.to_spec p) (Faults.to_spec p'))

let test_spec_errors () =
  let expect_error spec =
    match Faults.of_spec spec with
    | Ok _ -> Alcotest.failf "spec %S should not parse" spec
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error for %S is non-empty" spec)
        true
        (String.length e > 0)
  in
  List.iter expect_error
    [
      "drop=2.0";
      "drop=-0.1";
      "drop=0.5,drop=0.2";
      "until=10,until=20";
      "crash=1:9-5";
      "crash=x:1-2";
      "cut=0:1";
      "nonsense=1";
      "";
    ]

let test_spec_errors_carry_position () =
  (* Errors name the offending clause by index and character offset, so
     a long CLI spec pinpoints its own typo. *)
  let check spec sub =
    match Faults.of_spec spec with
    | Ok _ -> Alcotest.failf "spec %S should not parse" spec
    | Error e ->
      if not (Helpers.contains e sub) then
        Alcotest.failf "error %S for %S does not mention %S" e spec sub
  in
  check "drop=2.0" "clause 1 at char 0";
  check "drop=0.1,crash=x:1-2" "clause 2 at char 9";
  check "drop=0.1,until=30,cut=0:9-5" "clause 3 at char 18";
  check "drop=0.5,drop=0.2" "clause 2 at char 9";
  check "drop=0.1,until=zero" "clause 2 at char 9";
  check "crash=1:2-4,cut=-1:3-9" "clause 2 at char 12";
  check "drop=nan" "clause 1 at char 0"

(* of_spec ∘ to_spec = id over arbitrary valid plans. Drop
   probabilities come from a 1/16 grid (exact in binary, so the %g
   rendering is lossless); windows mix finite and "-inf" right ends.
   Plans built by [make] are compared after a round trip through the
   spec grammar — canonical-spec fixed point plus full semantic
   agreement on the query grid, which is what the runtime actually
   consumes. *)
let plan_arb =
  let window max_id =
    QCheck.Gen.(
      map
        (fun ((id, a), len) ->
          (id, a, if len > 15 then max_int else a + len))
        (pair (pair (int_bound max_id) (int_range 1 30)) (int_bound 20)))
  in
  QCheck.make
    ~print:(fun (drop16, until, crashes, cuts) ->
      Printf.sprintf "drop=%d/16 until=%d crashes=[%s] cuts=[%s]" drop16 until
        (String.concat ";"
           (List.map (fun (n, a, b) -> Printf.sprintf "%d:%d-%d" n a b) crashes))
        (String.concat ";"
           (List.map (fun (e, a, b) -> Printf.sprintf "%d:%d-%d" e a b) cuts)))
    QCheck.Gen.(
      quad (int_bound 16) (int_range 1 100)
        (list_size (int_bound 3) (window 9))
        (list_size (int_bound 3) (window 6)))

let prop_plan_spec_round_trip (drop16, until, crashes, cuts) =
  let p =
    Faults.make ~seed:9 ~drop:(float_of_int drop16 /. 16.) ~drop_until:until
      ~crashes ~cuts ()
  in
  let s = Faults.to_spec p in
  match Faults.of_spec ~seed:9 s with
  | Error e -> QCheck.Test.fail_reportf "of_spec %S: %s" s e
  | Ok p' ->
    Faults.to_spec p' = s
    && Faults.seed p' = Faults.seed p
    && Faults.is_empty p' = Faults.is_empty p
    && Faults.quiet_after p' = Faults.quiet_after p
    && List.for_all
         (fun round ->
           List.for_all
             (fun id ->
               Faults.drops p' ~round ~edge:id ~src:(id + 1)
               = Faults.drops p ~round ~edge:id ~src:(id + 1)
               && Faults.node_down p' ~round ~node:id
                  = Faults.node_down p ~round ~node:id
               && Faults.edge_cut p' ~round ~edge:id
                  = Faults.edge_cut p ~round ~edge:id)
             (List.init 10 Fun.id))
         (List.init 60 (fun r -> r + 1))

(* -- virtual-time shims -------------------------------------------------- *)

let test_round_of_time () =
  Alcotest.(check int) "interior of a tick" 4 (Faults.round_of_time 3.2);
  Alcotest.(check int) "exact tick belongs to its round" 3
    (Faults.round_of_time 3.);
  Alcotest.(check int) "time zero" 0 (Faults.round_of_time 0.);
  Alcotest.(check int) "huge times saturate" max_int
    (Faults.round_of_time 1e300);
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "%f rejected" t)
        true
        (try
           ignore (Faults.round_of_time t);
           false
         with Invalid_argument _ -> true))
    [ -1.; Float.nan ]

let test_time_queries_match_round_queries () =
  (* A round window [A..B] covers the virtual interval (A-1, B]: an
     arrival strictly after tick A-1 and at or before tick B is consumed
     by a covered round. *)
  let p =
    match Faults.of_spec ~seed:3 "drop=0.3,until=20,crash=2:5-8,cut=1:3-9" with
    | Ok p -> p
    | Error e -> Alcotest.failf "of_spec: %s" e
  in
  Alcotest.(check (list bool))
    "crash window 5..8 on the time axis"
    [ false; true; true; true; false ]
    (List.map
       (fun t -> Faults.node_down_at p ~time:t ~node:2)
       [ 4.0; 4.01; 5.0; 8.0; 8.5 ]);
  for r = 1 to 25 do
    let t = float_of_int r in
    Alcotest.(check bool) "node_down_at = node_down at integer times"
      (Faults.node_down p ~round:r ~node:2)
      (Faults.node_down_at p ~time:t ~node:2);
    Alcotest.(check bool) "edge_cut_at = edge_cut at integer times"
      (Faults.edge_cut p ~round:r ~edge:1)
      (Faults.edge_cut_at p ~time:t ~edge:1);
    Alcotest.(check bool) "drops_at = drops at integer times"
      (Faults.drops p ~round:r ~edge:0 ~src:1)
      (Faults.drops_at p ~time:t ~edge:0 ~src:1)
  done

let test_windows_inclusive () =
  let p =
    match Faults.of_spec "crash=2:5-8,cut=1:3-inf" with
    | Ok p -> p
    | Error e -> Alcotest.failf "of_spec: %s" e
  in
  let down r = Faults.node_down p ~round:r ~node:2 in
  Alcotest.(check (list bool)) "crash window 5..8 inclusive"
    [ false; true; true; true; true; false ]
    (List.map down [ 4; 5; 6; 7; 8; 9 ]);
  Alcotest.(check bool) "other node untouched" false
    (Faults.node_down p ~round:6 ~node:1);
  Alcotest.(check bool) "cut open at 3" true
    (Faults.edge_cut p ~round:3 ~edge:1);
  Alcotest.(check bool) "open cut never closes" true
    (Faults.edge_cut p ~round:1_000_000 ~edge:1);
  Alcotest.(check int) "open window pushes quiet_after to infinity" max_int
    (Faults.quiet_after p)

let test_quiet_after () =
  let p =
    match Faults.of_spec "crash=0:5-20,cut=3:10-30" with
    | Ok p -> p
    | Error e -> Alcotest.failf "of_spec: %s" e
  in
  Alcotest.(check int) "first structurally calm round" 31 (Faults.quiet_after p);
  Alcotest.(check int) "drops alone need no horizon" 0
    (Faults.quiet_after
       (match Faults.of_spec "drop=0.9" with Ok p -> p | Error _ -> assert false))

let test_drop_schedule_pure () =
  let p =
    match Faults.of_spec ~seed:5 "drop=0.5,until=1000000" with
    | Ok p -> p
    | Error _ -> assert false
  in
  let q1 = Faults.drops p ~round:3 ~edge:1 ~src:0 in
  let q2 = Faults.drops p ~round:3 ~edge:1 ~src:0 in
  Alcotest.(check bool) "same query, same answer" q1 q2;
  (* Over many (round, edge) cells the schedule must actually vary and
     track the probability roughly. *)
  let hits = ref 0 and total = 500 in
  for r = 1 to total do
    if Faults.drops p ~round:r ~edge:0 ~src:1 then incr hits
  done;
  Alcotest.(check bool) "roughly half dropped at p=0.5" true
    (!hits > total / 4 && !hits < 3 * total / 4)

(* -- runtime under a plan ----------------------------------------------- *)

(* A deliberately chatty protocol whose full outcome is comparable:
   every leaf sends its id up each round until round [k]. *)
let chatty_step r k ~round ~node (acc : int) ~inbox =
  let acc = List.fold_left (fun a (_, m) -> a + m) acc inbox in
  if round <= k && node <> r.Tree.root then
    (acc, [ (r.Tree.parent.(node), node) ])
  else (acc, [])

let test_empty_plan_bit_identical () =
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  let r = Tree.rooting t in
  let plain =
    Runtime.run t ~init:(fun _ -> 0) ~step:(chatty_step r 5)
  in
  let empty =
    match Faults.of_spec "drop=0" with
    | Ok p -> Runtime.run ~faults:p t ~init:(fun _ -> 0) ~step:(chatty_step r 5)
    | Error e -> Alcotest.failf "of_spec: %s" e
  in
  let none = Runtime.run ~faults:Faults.none t ~init:(fun _ -> 0) ~step:(chatty_step r 5) in
  Alcotest.(check bool) "drop=0 plan: identical outcome" true (plain = empty);
  Alcotest.(check bool) "Faults.none: identical outcome" true (plain = none)

let test_runtime_drops_are_logged () =
  let t = Builders.star ~leaves:4 ~profile:(Builders.Uniform 1) in
  let r = Tree.rooting t in
  let p =
    match Faults.of_spec ~seed:1 "drop=0.4,until=6" with
    | Ok p -> p
    | Error _ -> assert false
  in
  let out = Runtime.run ~faults:p t ~init:(fun _ -> 0) ~step:(chatty_step r 6) in
  let dropped =
    List.filter
      (fun e -> match e.Faults.kind with Faults.Dropped _ -> true | _ -> false)
      out.Runtime.faults
  in
  Alcotest.(check bool) "some messages dropped" true (List.length dropped > 0);
  (* Sends are counted whether or not the plan then eats them. *)
  Alcotest.(check int) "sends counted despite drops" (4 * 6)
    out.Runtime.stats.Runtime.messages;
  (* The hub's tally misses exactly the dropped contributions. *)
  let lost =
    List.fold_left
      (fun a e ->
        match e.Faults.kind with Faults.Dropped { src; _ } -> a + src | _ -> a)
      0 out.Runtime.faults
  in
  let full = 6 * (1 + 2 + 3 + 4) in
  Alcotest.(check int) "hub tally = full - dropped"
    (full - lost)
    out.Runtime.states.(r.Tree.root)

let test_crashed_node_frozen () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let r = Tree.rooting t in
  let p =
    match Faults.of_spec "crash=1:2-4" with
    | Ok p -> p
    | Error _ -> assert false
  in
  (* Each node counts the rounds it actually stepped. *)
  let out =
    Runtime.run ~faults:p ~max_rounds:6 t
      ~init:(fun _ -> 0)
      ~step:(fun ~round ~node steps ~inbox ->
        ignore inbox;
        let sends =
          if round <= 6 && node <> r.Tree.root then
            [ (r.Tree.parent.(node), ()) ]
          else []
        in
        (steps + 1, sends))
  in
  Alcotest.(check int) "crashed node missed rounds 2-4" 3
    (out.Runtime.states.(2) - out.Runtime.states.(1));
  let kinds =
    List.filter_map
      (fun e ->
        match e.Faults.kind with
        | Faults.Crashed { node } -> Some (`C (e.Faults.round, node))
        | Faults.Restarted { node } -> Some (`R (e.Faults.round, node))
        | _ -> None)
      out.Runtime.faults
  in
  Alcotest.(check bool) "crash and restart logged" true
    (List.mem (`C (2, 1)) kinds && List.mem (`R (5, 1)) kinds)

(* -- hardened nibble ---------------------------------------------------- *)

let drop_plan ~seed = Faults.make ~seed ~drop:0.15 ~drop_until:100 ()

let test_robust_recovers_hand_example () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:2 in
  Workload.set_read w ~obj:0 1 10;
  Workload.set_write w ~obj:0 2 2;
  match Dist_nibble.run_robust ~faults:(drop_plan ~seed:4) w with
  | Dist_nibble.Degraded _ -> Alcotest.fail "expected recovery"
  | Dist_nibble.Complete { placement; stats; log } ->
    let seq = Nibble.place_all w in
    Alcotest.(check (list int)) "object 0 matches sequential"
      seq.(0).Nibble.nodes placement.(0);
    Alcotest.(check (list int)) "unused object stays empty" [] placement.(1);
    Alcotest.(check bool) "drops actually happened" true
      (List.length log > 0);
    Alcotest.(check bool) "losses were retransmitted" true
      (stats.Dist_nibble.retransmissions > 0)

let test_robust_permanent_crash_degrades () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  Workload.set_read w ~obj:0 1 5;
  let p = Faults.make ~crashes:[ (2, 1, max_int) ] () in
  match Dist_nibble.run_robust ~max_rounds:300 ~faults:p w with
  | Dist_nibble.Complete _ -> Alcotest.fail "expected degradation"
  | Dist_nibble.Degraded { reason; stats; _ } ->
    Alcotest.(check bool) "round limit" true (reason = `Round_limit);
    Alcotest.(check bool) "undecided decisions reported" true
      (stats.Dist_nibble.undecided > 0)

let test_robust_crash_restart_recovers () =
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  let leaves = Array.of_list (Tree.leaves t) in
  let w = Workload.empty t ~objects:2 in
  Workload.set_read w ~obj:0 leaves.(0) 6;
  Workload.set_write w ~obj:1 leaves.(1) 3;
  (* Crash an inner node mid-protocol, restart it, and cut an edge for a
     window; the retransmit layer must replay everything lost. *)
  let p = Faults.make ~crashes:[ (1, 3, 12) ] ~cuts:[ (0, 5, 9) ] () in
  match Dist_nibble.run_robust ~faults:p w with
  | Dist_nibble.Degraded _ -> Alcotest.fail "expected recovery"
  | Dist_nibble.Complete { placement; _ } ->
    let seq = Nibble.place_all w in
    Array.iteri
      (fun obj nodes ->
        Alcotest.(check (list int))
          (Printf.sprintf "object %d matches sequential" obj)
          seq.(obj).Nibble.nodes nodes)
      placement

let test_run_with_faults_recovered_placement () =
  let _, w = Helpers.instance 1234 in
  match Dist.run_with_faults ~faults:(drop_plan ~seed:8) w with
  | Dist.Degraded _ -> Alcotest.fail "expected recovery"
  | Dist.Recovered { placement; _ } ->
    let res = Strategy.run w in
    Alcotest.(check bool) "placement is the centralized strategy's" true
      (placement = res.Strategy.placement)

let test_replay_determinism () =
  let _, w = Helpers.instance 77 in
  let run () = Dist.run_with_faults ~faults:(drop_plan ~seed:3) w in
  match (run (), run ()) with
  | ( Dist.Recovered { log = l1; nibble = n1; _ },
      Dist.Recovered { log = l2; nibble = n2; _ } ) ->
    Alcotest.(check bool) "identical fault logs" true (l1 = l2);
    Alcotest.(check bool) "identical recovery stats" true (n1 = n2)
  | Dist.Degraded { log = l1; _ }, Dist.Degraded { log = l2; _ } ->
    Alcotest.(check bool) "identical fault logs" true (l1 = l2)
  | _ -> Alcotest.fail "outcomes diverged between identical runs"

(* -- properties --------------------------------------------------------- *)

(* (a) A fault-free robust run reproduces the plain protocol's placement
   with zero recovery traffic. *)
let prop_no_faults_no_recovery seed =
  let _, w = Helpers.instance seed in
  let plain, _ = Dist_nibble.run w in
  match Dist_nibble.run_robust w with
  | Dist_nibble.Degraded _ -> false
  | Dist_nibble.Complete { placement; stats; log } ->
    placement = plain
    && stats.Dist_nibble.retransmissions = 0
    && stats.Dist_nibble.duplicates = 0
    && log = []

(* (b) The fault schedule is a pure function of (seed, plan): replaying
   the same run yields the same fault log, event for event. *)
let prop_replay_same_log seed =
  let _, w = Helpers.instance seed in
  let faults = drop_plan ~seed in
  let log_of = function
    | Dist_nibble.Complete { log; _ } | Dist_nibble.Degraded { log; _ } -> log
  in
  log_of (Dist_nibble.run_robust ~faults w)
  = log_of (Dist_nibble.run_robust ~faults w)

(* (c) Bounded drops delay but never change the result: the recovered
   placement is congestion-equal (indeed equal) to the centralized
   strategy's. *)
let prop_bounded_drops_recover seed =
  let _, w = Helpers.instance seed in
  match Dist.run_with_faults ~faults:(drop_plan ~seed) w with
  | Dist.Recovered { placement; _ } -> placement = (Strategy.run w).Strategy.placement
  | Dist.Degraded _ -> false

let suite =
  [
    Helpers.tc "spec round trip" test_spec_round_trip;
    Helpers.qt ~count:200 "of_spec after to_spec is the identity" plan_arb
      prop_plan_spec_round_trip;
    Helpers.tc "spec errors" test_spec_errors;
    Helpers.tc "spec errors carry positions" test_spec_errors_carry_position;
    Helpers.tc "round_of_time quantization" test_round_of_time;
    Helpers.tc "virtual-time queries match round queries"
      test_time_queries_match_round_queries;
    Helpers.tc "windows are inclusive" test_windows_inclusive;
    Helpers.tc "quiet_after horizon" test_quiet_after;
    Helpers.tc "drop schedule is pure" test_drop_schedule_pure;
    Helpers.tc "empty plan is bit-identical" test_empty_plan_bit_identical;
    Helpers.tc "runtime logs drops" test_runtime_drops_are_logged;
    Helpers.tc "crashed node frozen" test_crashed_node_frozen;
    Helpers.tc "robust recovers hand example" test_robust_recovers_hand_example;
    Helpers.tc "permanent crash degrades" test_robust_permanent_crash_degrades;
    Helpers.tc "crash+restart recovers" test_robust_crash_restart_recovers;
    Helpers.tc "recovered placement = centralized"
      test_run_with_faults_recovered_placement;
    Helpers.tc "replay determinism" test_replay_determinism;
    Helpers.qt ~count:75 "no faults, no recovery traffic" Helpers.seed_arb
      prop_no_faults_no_recovery;
    Helpers.qt ~count:30 "same plan, same fault log" Helpers.seed_arb
      prop_replay_same_log;
    Helpers.qt ~count:30 "bounded drops recover exactly" Helpers.seed_arb
      prop_bounded_drops_recover;
  ]
