module Prng = Hbn_prng.Prng

let stream g n f = List.init n (fun _ -> f g)

let test_determinism () =
  let a = stream (Prng.create 42) 20 (fun g -> Prng.int g 1000) in
  let b = stream (Prng.create 42) 20 (fun g -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" a b

let test_seed_sensitivity () =
  let a = stream (Prng.create 1) 20 (fun g -> Prng.int g 1000000) in
  let b = stream (Prng.create 2) 20 (fun g -> Prng.int g 1000000) in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_copy () =
  let g = Prng.create 5 in
  let _ = Prng.int g 100 in
  let h = Prng.copy g in
  Alcotest.(check (list int)) "copy replays"
    (stream g 10 (fun g -> Prng.int g 99))
    (stream h 10 (fun g -> Prng.int g 99))

let test_split_independence () =
  let g = Prng.create 7 in
  let child = Prng.split g in
  let a = stream child 20 (fun g -> Prng.int g 1000000) in
  let b = stream g 20 (fun g -> Prng.int g 1000000) in
  Alcotest.(check bool) "child differs from parent" true (a <> b)

let test_int_bounds () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_in () =
  let g = Prng.create 4 in
  for _ = 1 to 500 do
    let v = Prng.int_in g (-3) 3 in
    if v < -3 || v > 3 then Alcotest.failf "int_in out of range: %d" v
  done;
  Alcotest.(check int) "degenerate range" 5 (Prng.int_in g 5 5)

let test_float_bounds () =
  let g = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let test_bool_mixes () =
  let g = Prng.create 11 in
  let trues = List.length (List.filter Fun.id (stream g 1000 Prng.bool)) in
  Alcotest.(check bool) "roughly balanced" true (trues > 400 && trues < 600)

let test_geometric () =
  let g = Prng.create 13 in
  Alcotest.(check int) "p=1 is 0" 0 (Prng.geometric g ~p:1.0);
  for _ = 1 to 200 do
    if Prng.geometric g ~p:0.5 < 0 then Alcotest.fail "negative geometric"
  done;
  let mean =
    float_of_int
      (List.fold_left ( + ) 0 (stream g 2000 (fun g -> Prng.geometric g ~p:0.5)))
    /. 2000.
  in
  (* E[failures before success] = (1-p)/p = 1. *)
  Alcotest.(check bool) "mean near 1" true (mean > 0.8 && mean < 1.2)

let test_zipf_range_and_skew () =
  let g = Prng.create 17 in
  let n = 10 in
  let counts = Array.make n 0 in
  let sample = Prng.zipf_sampler ~n ~s:1.2 in
  for _ = 1 to 5000 do
    let v = sample g in
    if v < 0 || v >= n then Alcotest.failf "zipf out of range: %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true
    (counts.(0) > counts.(n - 1));
  Alcotest.(check bool) "rank 0 dominates" true (counts.(0) > 5000 / n)

let test_zipf_single_call () =
  let g = Prng.create 19 in
  for _ = 1 to 100 do
    let v = Prng.zipf g ~n:5 ~s:0.8 in
    if v < 0 || v >= 5 then Alcotest.failf "zipf out of range: %d" v
  done

let test_shuffle_permutation () =
  let g = Prng.create 23 in
  let arr = Array.init 30 (fun i -> i) in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 30 (fun i -> i)) sorted

let test_pick () =
  let g = Prng.create 29 in
  for _ = 1 to 100 do
    let v = Prng.pick g [ 1; 2; 3 ] in
    if not (List.mem v [ 1; 2; 3 ]) then Alcotest.fail "pick outside list"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick g []))

let test_hash_stateless () =
  (* The stateless hash backs the fault-injection drop schedule: equal
     inputs must agree across calls, and every component of the input —
     seed, values, order — must matter. *)
  Alcotest.(check int64) "deterministic"
    (Prng.hash ~seed:1 [ 1; 2; 3 ])
    (Prng.hash ~seed:1 [ 1; 2; 3 ]);
  Alcotest.(check bool) "seed sensitive" true
    (Prng.hash ~seed:1 [ 1; 2; 3 ] <> Prng.hash ~seed:2 [ 1; 2; 3 ]);
  Alcotest.(check bool) "value sensitive" true
    (Prng.hash ~seed:1 [ 1; 2; 3 ] <> Prng.hash ~seed:1 [ 1; 2; 4 ]);
  Alcotest.(check bool) "order sensitive" true
    (Prng.hash ~seed:1 [ 1; 2; 3 ] <> Prng.hash ~seed:1 [ 3; 2; 1 ])

let test_hash_float_range_and_balance () =
  let inside = ref true and below = ref 0 in
  let total = 2000 in
  for i = 1 to total do
    let f = Prng.hash_float ~seed:7 [ i; 0; 1 ] in
    if not (f >= 0. && f < 1.) then inside := false;
    if f < 0.5 then incr below
  done;
  Alcotest.(check bool) "all in [0, 1)" true !inside;
  Alcotest.(check bool) "roughly balanced around 0.5" true
    (!below > total * 2 / 5 && !below < total * 3 / 5)

let prop_int_nonneg seed =
  let g = Prng.create seed in
  let bound = 1 + (seed mod 1000) in
  let v = Prng.int g bound in
  v >= 0 && v < bound

let prop_split_deterministic seed =
  let mk () =
    let g = Prng.create seed in
    let c = Prng.split g in
    (Prng.bits64 c, Prng.bits64 g)
  in
  mk () = mk ()

let suite =
  [
    Helpers.tc "determinism" test_determinism;
    Helpers.tc "seed sensitivity" test_seed_sensitivity;
    Helpers.tc "copy replays state" test_copy;
    Helpers.tc "split independence" test_split_independence;
    Helpers.tc "int bounds" test_int_bounds;
    Helpers.tc "int_in bounds" test_int_in;
    Helpers.tc "float bounds" test_float_bounds;
    Helpers.tc "bool mixes" test_bool_mixes;
    Helpers.tc "geometric distribution" test_geometric;
    Helpers.tc "zipf range and skew" test_zipf_range_and_skew;
    Helpers.tc "zipf single call" test_zipf_single_call;
    Helpers.tc "shuffle is a permutation" test_shuffle_permutation;
    Helpers.tc "pick stays in list" test_pick;
    Helpers.tc "stateless hash" test_hash_stateless;
    Helpers.tc "hash_float range and balance" test_hash_float_range_and_balance;
    Helpers.qt "int in range" Helpers.seed_arb prop_int_nonneg;
    Helpers.qt "split deterministic" Helpers.seed_arb prop_split_deterministic;
  ]
