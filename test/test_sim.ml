module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Sim = Hbn_sim.Sim
module Prng = Hbn_prng.Prng

let test_single_packet_path () =
  (* One read over a height-2 path: dilation 2, makespan 2. *)
  let t = Builders.balanced ~arity:2 ~height:1 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  let leaves = Tree.leaves t in
  let l0 = List.nth leaves 0 and l1 = List.nth leaves 1 in
  Workload.set_read w ~obj:0 l0 1;
  let p = Placement.single w [ (0, l1) ] in
  let out = Sim.run w p in
  Alcotest.(check int) "packets" 1 out.Sim.packets;
  Alcotest.(check int) "transmissions" 2 out.Sim.transmissions;
  Alcotest.(check int) "dilation" 2 out.Sim.max_dilation;
  Alcotest.(check int) "makespan = dilation" 2 out.Sim.makespan

let test_contention_serializes () =
  (* Ten reads over the same unit edge need at least ten rounds. *)
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 100) in
  let w = Workload.empty t ~objects:1 in
  Workload.set_read w ~obj:0 1 10;
  let p = Placement.single w [ (0, 2) ] in
  let out = Sim.run w p in
  Alcotest.(check int) "traffic per edge" 10 out.Sim.edge_traffic.(0);
  Alcotest.(check bool) "makespan at least congestion" true
    (out.Sim.makespan >= 10)

let test_write_broadcast_waits () =
  (* A write's broadcast starts only after the request reaches the copy:
     request path length + broadcast depth chain in the dilation. *)
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 10) in
  let w = Workload.empty t ~objects:1 in
  Workload.set_write w ~obj:0 1 1;
  let p =
    [|
      {
        Placement.copies = [ 2; 3 ];
        assigns = [ { Placement.leaf = 1; server = 2; reads = 0; writes = 1 } ];
      };
    |]
  in
  let out = Sim.run w p in
  (* Request: e0 up, e1 down (2 hops); broadcast from 2 over Steiner{2,3}:
     2 more hops, chained after the request. *)
  Alcotest.(check int) "transmissions" 4 out.Sim.transmissions;
  Alcotest.(check int) "dilation includes the wait" 4 out.Sim.max_dilation

let test_bus_capacity_limits () =
  (* Two packets on different edges through the same bandwidth-1 bus
     cannot both cross in one round: bus capacity 2*b = 2 endpoints
     per... each crossing uses 2 endpoint slots, so one crossing/round. *)
  let t =
    Tree.make
      ~kinds:[| Tree.Bus; Tree.Processor; Tree.Processor; Tree.Processor; Tree.Processor |]
      ~edges:[ (0, 1, 5); (0, 2, 5); (0, 3, 5); (0, 4, 5) ]
      ~bus_bandwidth:(fun _ -> 1)
      ()
  in
  let w = Workload.empty t ~objects:2 in
  Workload.set_read w ~obj:0 1 2;
  Workload.set_read w ~obj:1 3 1;
  let p = Placement.single w [ (0, 2); (1, 4) ] in
  let out = Sim.run w p in
  (* Six edge hops, each consuming one of the bus's 2 slots per round:
     at least three rounds, even though every edge has spare bandwidth. *)
  Alcotest.(check int) "hops" 6 out.Sim.transmissions;
  Alcotest.(check bool) "bus limits crossings" true (out.Sim.makespan >= 3)

let test_scale_reduces_packets () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  Workload.set_read w ~obj:0 1 100;
  let p = Placement.single w [ (0, 2) ] in
  let full = Sim.run w p in
  let scaled = Sim.run ~scale:10 w p in
  Alcotest.(check int) "full packets" 100 full.Sim.packets;
  Alcotest.(check int) "scaled packets" 10 scaled.Sim.packets

let test_deterministic () =
  let _, w = Helpers.instance 1234 in
  let res = Strategy.run w in
  let a = Sim.run w res.Strategy.placement in
  let b = Sim.run w res.Strategy.placement in
  Alcotest.(check int) "same makespan" a.Sim.makespan b.Sim.makespan;
  Alcotest.(check (array int)) "same traffic" a.Sim.edge_traffic b.Sim.edge_traffic

let prop_traffic_equals_analytic_loads seed =
  (* The simulator's per-edge traffic at scale 1 equals the evaluator's
     loads — the two load accountings agree exactly. *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let out = Sim.run w res.Strategy.placement in
  out.Sim.edge_traffic = Placement.edge_loads w res.Strategy.placement

let prop_traffic_matches_for_baselines seed =
  let _, w = Helpers.instance seed in
  let p = Hbn_baselines.Baselines.full_replication w in
  let out = Sim.run w p in
  out.Sim.edge_traffic = Placement.edge_loads w p

let prop_makespan_at_least_lower_bound seed =
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let out = Sim.run ~scale:4 w res.Strategy.placement in
  float_of_int out.Sim.makespan
  >= Sim.lower_bound w res.Strategy.placement out -. 1e-9

let prop_makespan_at_most_transmissions seed =
  (* Work conservation: at least one hop per round. *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let out = Sim.run ~scale:4 w res.Strategy.placement in
  out.Sim.transmissions = 0 || out.Sim.makespan <= out.Sim.transmissions

let suite =
  [
    Helpers.tc "single packet path" test_single_packet_path;
    Helpers.tc "contention serializes" test_contention_serializes;
    Helpers.tc "write broadcast waits for the request" test_write_broadcast_waits;
    Helpers.tc "bus capacity limits crossings" test_bus_capacity_limits;
    Helpers.tc "scale reduces packets" test_scale_reduces_packets;
    Helpers.tc "deterministic" test_deterministic;
    Helpers.qt ~count:100 "sim traffic equals analytic loads" Helpers.seed_arb
      prop_traffic_equals_analytic_loads;
    Helpers.qt ~count:30 "sim traffic matches full replication" Helpers.seed_arb
      prop_traffic_matches_for_baselines;
    Helpers.qt ~count:25 "makespan above lower bound" Helpers.seed_arb
      prop_makespan_at_least_lower_bound;
    Helpers.qt ~count:25 "makespan below total transmissions" Helpers.seed_arb
      prop_makespan_at_most_transmissions;
  ]

(* --- scheduling policies ------------------------------------------------ *)

let prop_policies_conserve_traffic seed =
  (* Any service order injects the same packets and delivers exactly the
     same hops — scheduling only reorders work, it never creates or
     drops any. *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let p = res.Strategy.placement in
  let fifo = Sim.run ~scale:4 w p in
  let rr = Sim.run ~scale:4 ~policy:Sim.Round_robin w p in
  let rev = Sim.run ~scale:4 ~policy:Sim.Reversed w p in
  fifo.Sim.edge_traffic = rr.Sim.edge_traffic
  && fifo.Sim.edge_traffic = rev.Sim.edge_traffic
  && fifo.Sim.packets = rr.Sim.packets
  && fifo.Sim.packets = rev.Sim.packets
  && fifo.Sim.transmissions = rr.Sim.transmissions
  && fifo.Sim.transmissions = rev.Sim.transmissions

let prop_policies_respect_lower_bound seed =
  (* On randomized topologies every policy's makespan sits between the
     congestion/dilation lower bound and the serial upper bound (work
     conservation: at least one hop per round). *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let p = res.Strategy.placement in
  List.for_all
    (fun policy ->
      let out = Sim.run ~scale:4 ~policy w p in
      float_of_int out.Sim.makespan >= Sim.lower_bound w p out -. 1e-9
      && (out.Sim.transmissions = 0
         || out.Sim.makespan <= out.Sim.transmissions))
    [ Sim.Fifo; Sim.Round_robin; Sim.Reversed ]

let policy_suite =
  [
    Helpers.qt ~count:25 "policies deliver identical traffic" Helpers.seed_arb
      prop_policies_conserve_traffic;
    Helpers.qt ~count:25 "policies respect the lower bound" Helpers.seed_arb
      prop_policies_respect_lower_bound;
  ]

(* --- asynchrony --------------------------------------------------------- *)

module Link = Hbn_event.Link
module Telemetry = Hbn_obs.Telemetry

(* Pins the paper-derived constant in the bus cap (see sim.mli): the bus
   load L(B) divides by 2·b(B) because a crossing occupies two incident
   edges, so a bandwidth-1 bus must sustain one full crossing — two
   packet-hops — per round. Ten packets through one bus are 20 hops and
   finish in exactly 20 / (2·1) = 10 rounds, packet k entering while
   packet k-1 leaves. A 1·b(B) cap would serialize the hops and double
   the time. *)
let test_bus_cap_pipelining () =
  let t =
    Tree.make
      ~kinds:[| Tree.Bus; Tree.Processor; Tree.Processor |]
      ~edges:[ (0, 1, 5); (0, 2, 5) ]
      ~bus_bandwidth:(fun _ -> 1)
      ()
  in
  let w = Workload.empty t ~objects:1 in
  Workload.set_read w ~obj:0 1 10;
  let p = Placement.single w [ (0, 2) ] in
  let out = Sim.run w p in
  Alcotest.(check int) "hops" 20 out.Sim.transmissions;
  Alcotest.(check int) "full pipelining: hops / (2·b) rounds" 10
    out.Sim.makespan

(* The sync-equivalence half of the acceptance criterion at the Sim
   layer: Link.sync (delay 1, infinite bandwidth) must reproduce the
   synchronous engine bit for bit — outcome and telemetry series. *)
let prop_sync_link_bit_identical seed =
  let _, w = Helpers.instance seed in
  let tree = Workload.tree w in
  let p = (Strategy.run w).Strategy.placement in
  let t1 = Telemetry.create ~num_edges:(Tree.num_edges tree) () in
  let t2 = Telemetry.create ~num_edges:(Tree.num_edges tree) () in
  let a = Sim.run ~scale:4 ~telemetry:t1 w p in
  let b = Sim.run ~scale:4 ~telemetry:t2 ~link:Link.sync w p in
  a = b && Telemetry.points t1 = Telemetry.points t2

(* The congestion-invariance half: a slower link reorders and delays the
   schedule but the traffic is a function of workload and placement
   alone; completion strictly rises because every hop's transit is 3
   instead of 1 and bandwidth 1 never exceeds any synchronous cap. *)
let prop_slow_link_preserves_traffic seed =
  let _, w = Helpers.instance seed in
  let p = (Strategy.run w).Strategy.placement in
  let a = Sim.run ~scale:4 w p in
  let b = Sim.run ~scale:4 ~link:(Link.v [| (2., 1.) |]) w p in
  a.Sim.packets = b.Sim.packets
  && a.Sim.transmissions = b.Sim.transmissions
  && a.Sim.edge_traffic = b.Sim.edge_traffic
  && a.Sim.max_dilation = b.Sim.max_dilation
  && (a.Sim.transmissions = 0 || b.Sim.completion > a.Sim.completion)

(* Same traffic, opposite bandwidth profiles, different completions: the
   controlled experiment BENCH_async.json records, in miniature. *)
let test_asymmetry_moves_completion () =
  let prng = Prng.create 20260808 in
  let t = Builders.balanced ~arity:3 ~height:3 ~profile:(Builders.Uniform 2) in
  let w = Hbn_workload.Generators.uniform ~prng t ~objects:8 ~max_rate:6 in
  let p = (Strategy.run w).Strategy.placement in
  let run spec =
    match Link.of_spec spec with
    | Ok c -> Sim.run ~scale:2 ~link:c w p
    | Error e -> Alcotest.failf "of_spec %S: %s" spec e
  in
  let top_slow = run "1:1,1:8" and bottom_slow = run "1:8,1:1" in
  Alcotest.(check (array int))
    "traffic pinned" top_slow.Sim.edge_traffic bottom_slow.Sim.edge_traffic;
  Alcotest.(check bool) "completion differs" true
    (top_slow.Sim.completion <> bottom_slow.Sim.completion)

let async_suite =
  [
    Helpers.tc "bus capacity: the 2·b(B) cap permits full pipelining"
      test_bus_cap_pipelining;
    Helpers.qt ~count:60 "Link.sync is bit-identical to the synchronous engine"
      Helpers.seed_arb prop_sync_link_bit_identical;
    Helpers.qt ~count:40 "slow links preserve traffic, raise completion"
      Helpers.seed_arb prop_slow_link_preserves_traffic;
    Helpers.tc "bandwidth asymmetry moves completion only"
      test_asymmetry_moves_completion;
  ]

let suite = suite @ policy_suite @ async_suite
