(* The load-accounting engine's contract: any sequence of deltas leaves
   the incremental state identical to a from-scratch evaluation of its
   snapshot, and checkpoints roll back exactly. *)

module Tree = Hbn_tree.Tree
module Marks = Hbn_tree.Marks
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Loads = Hbn_loads.Loads
module Prng = Hbn_prng.Prng

(* Initial copy sets: one random requesting leaf per requested object,
   plus a few extra random leaves. *)
let initial_copies ~prng w =
  let leaves = Tree.leaves_array (Workload.tree w) in
  Array.init (Workload.num_objects w) (fun obj ->
      match Workload.requesting_leaves w ~obj with
      | [] -> []
      | req ->
        let extra =
          List.init (Prng.int prng 3) (fun _ ->
              leaves.(Prng.int prng (Array.length leaves)))
        in
        List.sort_uniq compare (Prng.pick prng req :: extra))

(* Check engine state against the from-scratch evaluators. *)
let agrees w eng =
  let snap = Loads.snapshot eng in
  let scratch = Placement.edge_loads w snap in
  Loads.edge_loads eng = scratch
  && Loads.congestion eng = (Placement.evaluate w snap).Placement.value
  && Placement.validate w snap = Ok ()

(* One random delta; [None] when nothing applies. Only nearest-rule ops,
   so the snapshot must equal [Placement.nearest] of the copy sets. *)
let random_nearest_delta ~prng w eng =
  let leaves = Tree.leaves_array (Workload.tree w) in
  let obj = Prng.int prng (Workload.num_objects w) in
  if Array.length leaves = 0 then false
  else begin
    let leaf = leaves.(Prng.int prng (Array.length leaves)) in
    if Loads.has_copy eng ~obj leaf then begin
      if Loads.num_copies eng ~obj > 1 then begin
        Loads.remove_copy eng ~obj leaf;
        true
      end
      else false
    end
    else if Loads.num_copies eng ~obj = 0 then begin
      (* Unrequested object (requested ones got a seed copy): grow it. *)
      Loads.add_copy eng ~obj leaf;
      true
    end
    else if Prng.bool prng then begin
      Loads.add_copy eng ~obj leaf;
      true
    end
    else begin
      let victim = Prng.pick prng (Loads.copies eng ~obj) in
      Loads.move_copy eng ~obj ~src:victim ~dst:leaf;
      true
    end
  end

let prop_deltas_match_scratch seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 101) in
  let copies = initial_copies ~prng w in
  let eng = Loads.of_copies w copies in
  let ok = ref (agrees w eng) in
  for _ = 1 to 30 do
    if random_nearest_delta ~prng w eng then ok := !ok && agrees w eng
  done;
  (* Nearest-only deltas: snapshot coincides with Placement.nearest. *)
  let cs =
    Array.init (Workload.num_objects w) (fun obj -> Loads.copies eng ~obj)
  in
  !ok && Loads.snapshot eng = Placement.nearest w ~copies:cs

let prop_reassign_matches_scratch seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 211) in
  let eng = Loads.of_copies w (initial_copies ~prng w) in
  let ok = ref true in
  for _ = 1 to 20 do
    ignore (random_nearest_delta ~prng w eng);
    (* Sprinkle manual overrides: point a random requesting leaf at a
       random copy of its object. *)
    let obj = Prng.int prng (Workload.num_objects w) in
    (match Workload.requesting_leaves w ~obj with
    | [] -> ()
    | req ->
      let leaf = Prng.pick prng req in
      let server = Prng.pick prng (Loads.copies eng ~obj) in
      Loads.reassign eng ~obj ~leaf ~server);
    ok := !ok && agrees w eng
  done;
  !ok

let prop_rollback_roundtrip seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 307) in
  let eng = Loads.of_copies w (initial_copies ~prng w) in
  for _ = 1 to 5 do
    ignore (random_nearest_delta ~prng w eng)
  done;
  let before_loads = Loads.edge_loads eng in
  let before_snap = Loads.snapshot eng in
  let cp = Loads.checkpoint eng in
  for _ = 1 to 12 do
    ignore (random_nearest_delta ~prng w eng)
  done;
  (* Nested checkpoint inside the outer span. *)
  let inner = Loads.checkpoint eng in
  ignore (random_nearest_delta ~prng w eng);
  Loads.rollback eng inner;
  for _ = 1 to 3 do
    ignore (random_nearest_delta ~prng w eng)
  done;
  Loads.rollback eng cp;
  Loads.edge_loads eng = before_loads
  && Loads.snapshot eng = before_snap
  && Loads.congestion eng = (Placement.evaluate w before_snap).Placement.value

let test_remove_last_copy_rejected () =
  let t =
    Hbn_tree.Builders.star ~leaves:3 ~profile:(Hbn_tree.Builders.Uniform 1)
  in
  let w = Workload.empty t ~objects:1 in
  let leaf = List.hd (Tree.leaves t) in
  Workload.set_read w ~obj:0 leaf 2;
  let eng = Loads.of_copies w [| [ leaf ] |] in
  Alcotest.check_raises "last copy"
    (Invalid_argument "Loads.remove_copy: would leave a requested object copyless")
    (fun () -> Loads.remove_copy eng ~obj:0 leaf)

let test_small_example () =
  (* Star with 3 processors; object 0 read by all, written by leaf 1. *)
  let t =
    Hbn_tree.Builders.star ~leaves:3 ~profile:(Hbn_tree.Builders.Uniform 1)
  in
  let w = Workload.empty t ~objects:1 in
  let leaves = Array.of_list (Tree.leaves t) in
  Array.iter (fun l -> Workload.set_read w ~obj:0 l 1) leaves;
  Workload.set_write w ~obj:0 leaves.(1) 1;
  let eng = Loads.of_copies w [| [ leaves.(0) ] |] in
  Alcotest.(check bool) "matches scratch" true (agrees w eng);
  let c_single = Loads.congestion eng in
  Loads.add_copy eng ~obj:0 leaves.(1);
  Alcotest.(check bool) "matches after add" true (agrees w eng);
  Alcotest.(check int) "two copies" 2 (Loads.num_copies eng ~obj:0);
  Loads.move_copy eng ~obj:0 ~src:leaves.(0) ~dst:leaves.(2);
  Alcotest.(check bool) "matches after move" true (agrees w eng);
  let cp = Loads.checkpoint eng in
  Loads.remove_copy eng ~obj:0 leaves.(2);
  Loads.rollback eng cp;
  Alcotest.(check (list int)) "rollback restores copies"
    [ leaves.(1); leaves.(2) ]
    (Loads.copies eng ~obj:0);
  ignore c_single

(* --- Marks / LCA support structures ------------------------------------ *)

let prop_lca_index_matches_walk seed =
  let tree, _ = Helpers.instance seed in
  let r = Tree.rooting tree in
  let ix = Tree.lca_index r in
  let prng = Prng.create (seed + 5) in
  let n = Tree.n tree in
  List.for_all
    (fun _ ->
      let u = Prng.int prng n and v = Prng.int prng n in
      Tree.lca_fast ix u v = Tree.lca r u v
      && Tree.distance ix u v = Tree.path_length tree u v)
    (List.init 40 Fun.id)

let prop_nearest_marked_matches_scan seed =
  let tree, _ = Helpers.instance seed in
  let r = Tree.rooting tree in
  let marks = Marks.create r in
  let prng = Prng.create (seed + 9) in
  let n = Tree.n tree in
  let marked = Array.make n false in
  let brute v =
    (* Lowest-id node among those at minimal distance. *)
    let best = ref None in
    for u = n - 1 downto 0 do
      if marked.(u) then begin
        let d = Tree.path_length tree v u in
        match !best with
        | Some (_, bd) when bd < d -> ()
        | Some (_, bd) when bd = d -> best := Some (u, d)
        | _ -> best := Some (u, d)
      end
    done;
    !best
  in
  let ok = ref true in
  for _ = 1 to 60 do
    let v = Prng.int prng n in
    (match Prng.int prng 3 with
    | 0 ->
      marked.(v) <- true;
      Marks.mark marks v
    | 1 ->
      marked.(v) <- false;
      Marks.unmark marks v
    | _ -> ());
    let q = Prng.int prng n in
    ok := !ok && Marks.nearest marks q = brute q
  done;
  !ok && Marks.count marks = Array.fold_left (fun a b -> if b then a + 1 else a) 0 marked

let suite =
  [
    Helpers.tc "small example with checkpoint" test_small_example;
    Helpers.tc "removing the last copy is rejected" test_remove_last_copy_rejected;
    Helpers.qt ~count:60 "delta sequences match from-scratch evaluation"
      Helpers.seed_arb prop_deltas_match_scratch;
    Helpers.qt ~count:40 "manual reassigns keep loads exact" Helpers.seed_arb
      prop_reassign_matches_scratch;
    Helpers.qt ~count:60 "checkpoint/rollback restores the state exactly"
      Helpers.seed_arb prop_rollback_roundtrip;
    Helpers.qt ~count:60 "lca index agrees with the pointer walk"
      Helpers.seed_arb prop_lca_index_matches_walk;
    Helpers.qt ~count:60 "nearest-marked agrees with exhaustive scan"
      Helpers.seed_arb prop_nearest_marked_matches_scan;
  ]
