(* The discrete-event substrate: stable priority queue, engine ordering
   and the per-level link model. The FIFO property pinned here is the
   foundation of every bit-identical-replay claim the asynchronous
   simulators make (DESIGN.md §14). *)

module Pq = Hbn_event.Pq
module Engine = Hbn_event.Engine
module Link = Hbn_event.Link
module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders

(* --- priority queue ----------------------------------------------------- *)

let drain_pq q =
  let out = ref [] in
  let rec go () =
    match Pq.pop q with
    | None -> ()
    | Some (t, v) ->
      out := (t, v) :: !out;
      go ()
  in
  go ();
  List.rev !out

let test_pq_fifo_at_equal_time () =
  let q = Pq.create () in
  List.iter (fun v -> Pq.add q ~time:1. v) [ "a"; "b"; "c" ];
  Pq.add q ~time:0.5 "first";
  Alcotest.(check (list string))
    "equal times pop in insertion order"
    [ "first"; "a"; "b"; "c" ]
    (List.map snd (drain_pq q))

let test_pq_rank_phases () =
  let q = Pq.create () in
  Pq.add q ~time:2. ~rank:1 "tick";
  Pq.add q ~time:2. "late-delivery";
  Pq.add q ~time:1. ~rank:1 "early-tick";
  Alcotest.(check (list string))
    "rank 0 precedes rank 1 at the same instant"
    [ "early-tick"; "late-delivery"; "tick" ]
    (List.map snd (drain_pq q))

let test_pq_rejects_nan () =
  let q = Pq.create () in
  Alcotest.check_raises "NaN time" (Invalid_argument "Pq.add: time is NaN")
    (fun () -> Pq.add q ~time:Float.nan ())

let test_pq_empty () =
  let q = Pq.create () in
  Alcotest.(check bool) "is_empty" true (Pq.is_empty q);
  Alcotest.(check bool) "pop" true (Pq.pop q = None);
  Alcotest.(check bool) "min_elt" true (Pq.min_elt q = None);
  Pq.add q ~time:3. 42;
  Alcotest.(check int) "length" 1 (Pq.length q);
  Alcotest.(check bool) "min_time" true (Pq.min_time q = Some 3.)

(* The satellite's property: pops equal a stable sort by (time, rank) —
   FIFO within equal keys — on arbitrary interleavings. Times come from
   a coarse grid so equal keys are common, which is the interesting
   case. *)
let key_list_arb =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (t, r) -> Printf.sprintf "(%g,%d)" t r) l))
    QCheck.Gen.(
      list_size (int_bound 200)
        (pair (map (fun n -> float_of_int n /. 4.) (int_bound 16)) (int_bound 2)))

let prop_pq_matches_stable_sort keys =
  let q = Pq.create () in
  List.iteri (fun i (t, r) -> Pq.add q ~time:t ~rank:r i) keys;
  let got = List.map snd (drain_pq q) in
  let want =
    List.mapi (fun i (t, r) -> (t, r, i)) keys
    |> List.stable_sort (fun (t1, r1, _) (t2, r2, _) ->
           compare (t1, r1) (t2, r2))
    |> List.map (fun (_, _, i) -> i)
  in
  got = want

(* --- engine ------------------------------------------------------------- *)

let test_engine_orders_and_advances () =
  let e = Engine.create () in
  let log = ref [] in
  let emit tag () = log := (Engine.now e, tag) :: !log in
  Engine.at e ~time:2. ~rank:1 (emit "tick@2");
  Engine.at e ~time:2. (emit "arrival@2");
  Engine.at e ~time:1. (fun () ->
      emit "first@1" ();
      (* Callbacks schedule further work at or after now. *)
      Engine.after e ~delay:0.5 (emit "followup@1.5"));
  Engine.drain e;
  Alcotest.(check (list string))
    "execution order"
    [ "first@1"; "followup@1.5"; "arrival@2"; "tick@2" ]
    (List.rev_map snd !log);
  Alcotest.(check int) "executed" 4 (Engine.executed e);
  Alcotest.(check int) "pending" 0 (Engine.pending e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.at e ~time:5. (fun () ->
      try
        Engine.at e ~time:4. (fun () -> ());
        Alcotest.fail "scheduling in the past must raise"
      with Invalid_argument _ -> ());
  Engine.drain e;
  Alcotest.(check bool) "nan raises" true
    (try
       Engine.at e ~time:Float.nan (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_engine_next_time () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty" true (Engine.next_time e = None);
  Engine.at e ~time:7. (fun () -> ());
  Alcotest.(check bool) "pending head" true (Engine.next_time e = Some 7.);
  ignore (Engine.step e);
  Alcotest.(check (float 0.)) "now follows" 7. (Engine.now e)

(* --- link model --------------------------------------------------------- *)

let test_link_spec_round_trip () =
  List.iter
    (fun spec ->
      match Link.of_spec spec with
      | Error e -> Alcotest.failf "of_spec %S: %s" spec e
      | Ok c -> Alcotest.(check string) spec spec (Link.to_spec c))
    [ "1:inf"; "1:8"; "1:1,1:8"; "0.5:2,2:16,1:inf"; "4:8" ]

let test_link_spec_errors_carry_position () =
  let check spec sub =
    match Link.of_spec spec with
    | Ok _ -> Alcotest.failf "of_spec %S unexpectedly parsed" spec
    | Error e ->
      if not (Helpers.contains e sub) then
        Alcotest.failf "error %S does not mention %S" e sub
  in
  check "bogus" "clause 1 at char 0";
  check "1:8,nope" "clause 2 at char 4";
  check "1:8,,2:4" "clause 2 at char 4";
  check "1:8,2:zero" "clause 2 at char 4";
  check "1:8,-1:4" "clause 2 at char 4";
  check "1:8,2:-4" "clause 2 at char 4";
  check "0:inf" "clause 1 at char 0";
  check "1:inf,1:8,nan:2" "clause 3 at char 10";
  check "" "empty"

(* of_spec ∘ to_spec = id over arbitrary valid configs. Delays come from
   a quarter-unit grid and bandwidths from small powers of two (plus
   inf), all exact in binary, so the %g rendering is lossless and the
   identity can be checked exactly — per-level numbers, not just the
   spec string. *)
let link_config_arb =
  let clause =
    QCheck.Gen.(
      pair (map (fun k -> float_of_int k /. 4.) (int_range 0 16))
        (oneof
           [
             map (fun k -> float_of_int (1 lsl k)) (int_bound 6);
             return Float.infinity;
           ]))
  in
  (* Zero delay with infinite bandwidth is the one rejected combination. *)
  let repair (d, b) = if d = 0. && b = Float.infinity then (1., b) else (d, b) in
  QCheck.make
    ~print:(fun l ->
      String.concat ","
        (List.map (fun (d, b) -> Printf.sprintf "%g:%g" d b) l))
    QCheck.Gen.(map (List.map repair) (list_size (int_range 1 5) clause))

let prop_link_spec_round_trip clauses =
  let c = Link.v (Array.of_list clauses) in
  let s = Link.to_spec c in
  match Link.of_spec s with
  | Error e -> QCheck.Test.fail_reportf "of_spec %S: %s" s e
  | Ok c' ->
    Link.to_spec c' = s
    && Link.num_levels c' = Link.num_levels c
    && List.for_all
         (fun level ->
           Link.delay c' ~level = Link.delay c ~level
           && Link.bandwidth c' ~level = Link.bandwidth c ~level)
         (List.init (List.length clauses) (fun i -> i + 1))

let test_link_validation () =
  let raises a =
    try
      ignore (Link.v a);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true (raises [||]);
  Alcotest.(check bool) "negative delay" true (raises [| (-1., 2.) |]);
  Alcotest.(check bool) "zero bandwidth" true (raises [| (1., 0.) |]);
  Alcotest.(check bool) "zero transit" true (raises [| (0., infinity) |]);
  Alcotest.(check bool) "sync is sync" true (Link.is_sync Link.sync);
  Alcotest.(check bool)
    "finite bandwidth is not sync" true
    (not (Link.is_sync (Link.v [| (1., 8.) |])))

let test_link_levels_and_latency () =
  let tree = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  let c = Link.v [| (1., 8.); (2., 4.) |] in
  let l = Link.attach c tree in
  let r = Tree.rooting tree in
  for e = 0 to Tree.num_edges tree - 1 do
    let u, v = Tree.edge_endpoints tree e in
    let depth = max r.Tree.depth.(u) r.Tree.depth.(v) in
    Alcotest.(check int)
      (Printf.sprintf "edge %d level" e)
      depth (Link.edge_level l e);
    let want_d = if depth = 1 then 1. else 2. in
    let want_b = if depth = 1 then 8. else 4. in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "edge %d latency" e)
      ((4. /. want_b) +. want_d)
      (Link.latency l ~edge:e ~bytes:4)
  done;
  (* Deeper levels than the config lists reuse the last clause. *)
  Alcotest.(check (float 0.)) "extension" 4. (Link.delay c ~level:9 *. 2.)

let test_link_transmit_serializes () =
  let tree = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let l = Link.attach (Link.v [| (1., 4.) |]) tree in
  let u, _ = Tree.edge_endpoints tree 0 in
  (* Two 4-byte messages back to back on one directed link: the second
     waits for the first to clear the transmitter (1 time unit at B=4),
     then adds its own transmission and the shared propagation delay. *)
  let a1 = Link.transmit l ~now:0. ~edge:0 ~src:u ~bytes:4 in
  let a2 = Link.transmit l ~now:0. ~edge:0 ~src:u ~bytes:4 in
  Alcotest.(check (float 1e-9)) "first arrival" 2. a1;
  Alcotest.(check (float 1e-9)) "second queues" 3. a2;
  (* The reverse direction has its own clock. *)
  let other = if u = 0 then 1 else 0 in
  Alcotest.(check (float 1e-9)) "reverse direction free" 2.
    (Link.transmit l ~now:0. ~edge:0 ~src:other ~bytes:4);
  Alcotest.(check bool) "foreign src raises" true
    (try
       ignore (Link.transmit l ~now:0. ~edge:0 ~src:2 ~bytes:1);
       false
     with Invalid_argument _ -> true)

let test_link_sync_never_blocks () =
  let tree = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let l = Link.attach Link.sync tree in
  for _ = 1 to 5 do
    Alcotest.(check (float 0.)) "now + 1" 3.
      (Link.transmit l ~now:2. ~edge:0 ~src:0 ~bytes:1_000_000)
  done

let suite =
  [
    Helpers.tc "pq: FIFO at equal time" test_pq_fifo_at_equal_time;
    Helpers.tc "pq: rank phases same-instant work" test_pq_rank_phases;
    Helpers.tc "pq: rejects NaN" test_pq_rejects_nan;
    Helpers.tc "pq: empty queue" test_pq_empty;
    Helpers.qt ~count:200 "pq: pops equal a stable sort" key_list_arb
      prop_pq_matches_stable_sort;
    Helpers.tc "engine: orders and advances" test_engine_orders_and_advances;
    Helpers.tc "engine: rejects the past" test_engine_rejects_past;
    Helpers.tc "engine: next_time" test_engine_next_time;
    Helpers.tc "link: spec round-trip" test_link_spec_round_trip;
    Helpers.qt ~count:200 "link: of_spec after to_spec is the identity"
      link_config_arb prop_link_spec_round_trip;
    Helpers.tc "link: spec errors carry positions"
      test_link_spec_errors_carry_position;
    Helpers.tc "link: config validation" test_link_validation;
    Helpers.tc "link: levels and latency" test_link_levels_and_latency;
    Helpers.tc "link: transmit serializes per direction"
      test_link_transmit_serializes;
    Helpers.tc "link: sync never blocks" test_link_sync_never_blocks;
  ]
