(* Integration tests driving the built CLI binary end-to-end. *)

module Sink = Hbn_obs.Sink

let cli_path () =
  (* test_main.exe lives in _build/default/test/; the CLI next door. *)
  let dir = Filename.dirname Sys.executable_name in
  let candidate = Filename.concat dir "../bin/hbn_cli.exe" in
  if Sys.file_exists candidate then Some candidate else None

let run_cli_cmd cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let run_cli args =
  match cli_path () with
  | None -> None
  | Some bin -> Some (run_cli_cmd (Filename.quote_command bin args))

(* Like [run_cli] but folds stderr into the captured output — failure
   tests check the diagnostic text. *)
let run_cli_merged args =
  match cli_path () with
  | None -> None
  | Some bin -> Some (run_cli_cmd (Filename.quote_command bin args ^ " 2>&1"))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_run name args expectations =
  match run_cli args with
  | None -> () (* binary not built in this configuration; skip *)
  | Some (status, out) ->
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ -> Alcotest.failf "%s: non-zero exit\n%s" name out);
    List.iter
      (fun sub ->
        if not (contains out sub) then
          Alcotest.failf "%s: missing %S in output:\n%s" name sub out)
      expectations

let check_fails name args expectations =
  match run_cli_merged args with
  | None -> ()
  | Some (status, out) ->
    (match status with
    | Unix.WEXITED 0 ->
      Alcotest.failf "%s: expected a failing exit, got 0\n%s" name out
    | Unix.WEXITED _ -> ()
    | _ -> Alcotest.failf "%s: killed by a signal" name);
    List.iter
      (fun sub ->
        if not (contains out sub) then
          Alcotest.failf "%s: missing %S in output:\n%s" name sub out)
      expectations

let test_topology () =
  check_run "topology"
    [ "topology"; "--kind"; "star"; "--leaves"; "4" ]
    [ "5 nodes (4 processors, 1 buses)"; "paper assumptions: ok" ]

let test_topology_dot () =
  check_run "topology --dot"
    [ "topology"; "--kind"; "star"; "--leaves"; "3"; "--dot" ]
    [ "graph hbn {"; "shape=box" ]

let test_place () =
  check_run "place"
    [ "place"; "--kind"; "balanced"; "--arity"; "2"; "--height"; "2";
      "--objects"; "4"; "--workload"; "hotspot"; "--seed"; "7" ]
    [ "congestion:"; "certificates: all hold" ]

let test_place_deterministic () =
  let args =
    [ "place"; "--kind"; "random"; "--buses"; "4"; "--leaves"; "8";
      "--objects"; "5"; "--seed"; "99" ]
  in
  match (run_cli args, run_cli args) with
  | Some (_, a), Some (_, b) ->
    Alcotest.(check string) "identical output" a b
  | _ -> ()

let test_compare () =
  check_run "compare"
    [ "compare"; "--kind"; "star"; "--leaves"; "6"; "--workload"; "zipf" ]
    [ "extended-nibble"; "owner"; "full-replication"; "lower bound" ]

let test_gadget () =
  check_run "gadget"
    [ "gadget"; "3"; "1"; "1"; "2"; "3"; "2" ]
    [ "PARTITION solvable: true"; "optimal congestion: 24 (4k = 24)" ]

let test_gadget_unsolvable () =
  check_run "gadget unsolvable"
    [ "gadget"; "1"; "1"; "4" ]
    [ "PARTITION solvable: false"; "(4k = 12)" ]

let test_gadget_odd () =
  check_run "gadget odd"
    [ "gadget"; "1"; "2" ]
    [ "odd: PARTITION trivially unsolvable" ]

let test_dynamic () =
  check_run "dynamic"
    [ "dynamic"; "--kind"; "star"; "--leaves"; "5"; "--objects"; "3";
      "--workload"; "prodcons" ]
    [ "worst edge ratio"; "competitive ratio 3" ]

let test_simulate () =
  check_run "simulate"
    [ "simulate"; "--kind"; "balanced"; "--arity"; "3"; "--height"; "2";
      "--objects"; "4" ]
    [ "makespan:"; "distributed computation" ]

let faults_args extra =
  [ "simulate"; "--kind"; "star"; "--leaves"; "8"; "--workload"; "uniform";
    "--objects"; "6"; "--seed"; "3"; "--faults";
    "drop=0.1,until=40,crash=2:5-20,cut=1:8-16" ]
  @ extra

let test_simulate_faults () =
  check_run "simulate --faults" (faults_args [])
    [
      "fault plan: drop=0.1,until=40,crash=2:5-20,cut=1:8-16 (seed 3)";
      "fault log:";
      "hardened nibble:";
      "recovered distributed placement: identical to centralized strategy";
    ]

(* The fault schedule is a pure function of (seed, plan): the whole
   report — log counts included — must not depend on --jobs. *)
let test_simulate_faults_jobs_identical () =
  match (run_cli (faults_args [ "--jobs"; "1" ]),
         run_cli (faults_args [ "--jobs"; "4" ])) with
  | Some (Unix.WEXITED 0, o1), Some (Unix.WEXITED 0, o4) ->
    Alcotest.(check string) "identical output at --jobs 1 and 4" o1 o4
  | Some _, Some _ -> Alcotest.fail "simulate --faults exited non-zero"
  | _ -> ()

let test_simulate_faults_degraded () =
  (* A node that never restarts: the run must end in a structured
     degraded report with a non-zero exit, not an exception or a hang. *)
  check_fails "simulate --faults permanent crash"
    [ "simulate"; "--kind"; "star"; "--leaves"; "4"; "--objects"; "2";
      "--seed"; "3"; "--faults"; "crash=1:1-inf" ]
    [ "hbn_cli:"; "fault recovery degraded" ]

let test_simulate_faults_bad_spec () =
  check_fails "simulate --faults bad spec"
    [ "simulate"; "--kind"; "star"; "--leaves"; "4"; "--faults"; "drop=woof" ]
    [ "hbn_cli:"; "bad --faults spec"; "clause 1 at char 0" ];
  check_fails "simulate --faults bad second clause"
    [ "simulate"; "--kind"; "star"; "--leaves"; "4"; "--faults";
      "drop=0.1,crash=x:1-2" ]
    [ "hbn_cli:"; "bad --faults spec"; "clause 2 at char 9" ];
  check_fails "simulate --faults empty spec"
    [ "simulate"; "--kind"; "star"; "--leaves"; "4"; "--faults"; "" ]
    [ "hbn_cli:"; "bad --faults spec" ]

let link_args extra =
  [ "simulate"; "--kind"; "balanced"; "--arity"; "3"; "--height"; "2";
    "--workload"; "uniform"; "--objects"; "5"; "--seed"; "7" ]
  @ extra

let test_simulate_link () =
  check_run "simulate --link"
    (link_args [ "--link"; "1:8,1:2" ])
    [ "link model: 1:8,1:2 (per level, root-down)"; "completion:";
      "virtual time"; "makespan:" ]

let test_simulate_link_bad_spec () =
  (* Malformed specs die with the clause index and character offset so
     the user can point at the offending token. *)
  check_fails "simulate --link bad spec"
    (link_args [ "--link"; "bogus" ])
    [ "hbn_cli:"; "bad --link spec"; "clause 1 at char 0" ];
  check_fails "simulate --link bad clause"
    (link_args [ "--link"; "1:8,nope" ])
    [ "hbn_cli:"; "bad --link spec"; "clause 2 at char 4" ];
  check_fails "simulate --link empty"
    (link_args [ "--link"; "" ])
    [ "hbn_cli:"; "bad --link spec" ]

(* The event-driven simulation is deterministic: the whole report must
   not depend on --jobs. *)
let test_simulate_link_jobs_identical () =
  match (run_cli (link_args [ "--link"; "1:1,1:8"; "--jobs"; "1" ]),
         run_cli (link_args [ "--link"; "1:1,1:8"; "--jobs"; "4" ])) with
  | Some (Unix.WEXITED 0, o1), Some (Unix.WEXITED 0, o4) ->
    Alcotest.(check string) "identical output at --jobs 1 and 4" o1 o4
  | Some _, Some _ -> Alcotest.fail "simulate --link exited non-zero"
  | _ -> ()

(* explain runs its internal cross-checks (one-shot vs incremental vs
   evaluator) before printing anything, so a zero exit here is already a
   consistency statement; the output checks pin the three formats. *)
let test_explain_table () =
  check_run "explain"
    [ "explain"; "--kind"; "balanced"; "--arity"; "2"; "--height"; "2";
      "--objects"; "4"; "--workload"; "hotspot"; "--seed"; "7"; "--top"; "2" ]
    [ "congestion:"; "bottleneck"; "#1"; "#2"; "component"; "share" ]

let test_explain_json () =
  check_run "explain --format json"
    [ "explain"; "--kind"; "star"; "--leaves"; "6"; "--workload"; "zipf";
      "--format"; "json" ]
    [ "\"schema\":\"hbn.explain/v1\""; "\"congestion\":"; "\"contributions\"" ]

let test_explain_dot () =
  check_run "explain --format dot"
    [ "explain"; "--kind"; "balanced"; "--arity"; "3"; "--height"; "2";
      "--format"; "dot" ]
    [ "graph hbn_attribution {"; "fillcolor"; "penwidth" ]

let test_explain_deterministic () =
  let args =
    [ "explain"; "--kind"; "random"; "--buses"; "4"; "--leaves"; "8";
      "--objects"; "5"; "--seed"; "99"; "--format"; "json" ]
  in
  match (run_cli args, run_cli args) with
  | Some (_, a), Some (_, b) -> Alcotest.(check string) "identical output" a b
  | _ -> ()

let test_save_load_roundtrip () =
  let tmp = Filename.temp_file "hbn_cli" ".hbn" in
  (match
     run_cli
       [ "topology"; "--kind"; "caterpillar"; "--spine"; "3"; "--leaves"; "6";
         "--save"; tmp ]
   with
  | None -> ()
  | Some _ ->
    check_run "load round trip"
      [ "topology"; "--load"; tmp ]
      [ "hierarchical bus network" ];
    Sys.remove tmp)

(* Every failure path must exit non-zero and say why on stderr. *)

let test_failures_exit_nonzero () =
  check_fails "topology bad load"
    [ "topology"; "--load"; "/nonexistent/nope.hbn" ]
    [ "hbn_cli:"; "cannot load" ];
  check_fails "workload bad topology file"
    [ "workload"; "--topology-file"; "/nonexistent/nope.hbn" ]
    [ "hbn_cli:"; "cannot load" ];
  check_fails "place bad trace path"
    [ "place"; "--kind"; "star"; "--leaves"; "4"; "--trace";
      "/nonexistent-dir/t.jsonl" ]
    [ "hbn_cli:"; "cannot open trace file" ];
  check_fails "gadget zero item"
    [ "gadget"; "0" ]
    [ "hbn_cli:" ];
  (* The shared flag parser must reject unknown flags with a diagnostic
     naming the flag, on every command that uses it. *)
  check_fails "explain unknown flag"
    [ "explain"; "--bogus" ]
    [ "unknown option"; "--bogus" ];
  check_fails "place unknown flag"
    [ "place"; "--bogus" ]
    [ "unknown option"; "--bogus" ]

(* The acceptance-criterion invocation: --trace must produce valid JSONL
   with spans for all three pipeline steps plus per-round mapping events,
   and --timings must print the phase table. *)
let test_place_trace_timings () =
  let tmp = Filename.temp_file "hbn_cli" ".jsonl" in
  (match
     run_cli
       [ "place"; "--kind"; "balanced"; "--trace"; tmp; "--timings" ]
   with
  | None -> ()
  | Some (status, out) ->
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ -> Alcotest.failf "place --trace --timings: non-zero exit\n%s" out);
    List.iter
      (fun sub ->
        if not (contains out sub) then
          Alcotest.failf "timing table misses %S:\n%s" sub out)
      [ "phase"; "total ms"; "strategy.run"; "strategy.nibble";
        "strategy.deletion"; "strategy.mapping" ];
    let ic = open_in tmp in
    let events = ref [] in
    (try
       while true do
         let line = input_line ic in
         match Sink.of_json line with
         | Ok ev -> events := ev :: !events
         | Error msg -> Alcotest.failf "invalid JSONL line %S: %s" line msg
       done
     with End_of_file -> ());
    close_in ic;
    let events = List.rev !events in
    let has_end name =
      List.exists
        (fun (ev : Sink.event) ->
          ev.Sink.name = name
          && match ev.Sink.payload with Sink.Span_end _ -> true | _ -> false)
        events
    in
    List.iter
      (fun name ->
        if not (has_end name) then Alcotest.failf "trace misses span %s" name)
      [ "strategy.run"; "strategy.nibble"; "strategy.deletion";
        "strategy.mapping" ];
    if not (List.exists (fun (ev : Sink.event) -> ev.Sink.name = "mapping.round") events)
    then Alcotest.fail "trace misses mapping.round events");
  Sys.remove tmp

let test_place_trace_leaves_stdout_alone () =
  (* --trace only writes the file: the command's stdout stays
     byte-identical to an untraced run. *)
  let base =
    [ "place"; "--kind"; "balanced"; "--arity"; "2"; "--height"; "2";
      "--objects"; "4"; "--workload"; "hotspot"; "--seed"; "7" ]
  in
  let tmp = Filename.temp_file "hbn_cli" ".jsonl" in
  (match (run_cli base, run_cli (base @ [ "--trace"; tmp ])) with
  | Some (_, plain), Some (_, traced) ->
    Alcotest.(check string) "stdout unchanged by --trace" plain traced
  | _ -> ());
  Sys.remove tmp

(* The report command end to end: the golden file pins the exact table
   rendering of the committed fixture trace. *)
let test_report_golden () =
  match run_cli [ "report"; "fixtures/report_fixture.jsonl" ] with
  | None -> ()
  | Some (status, out) ->
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ -> Alcotest.failf "report: non-zero exit\n%s" out);
    let ic = open_in "fixtures/report_fixture.table" in
    let n = in_channel_length ic in
    let expected = really_input_string ic n in
    close_in ic;
    Alcotest.(check string) "table matches golden" expected out

let test_report_malformed_fails_with_line () =
  let tmp = Filename.temp_file "hbn_cli_report" ".jsonl" in
  let oc = open_out tmp in
  output_string oc
    "{\"ev\":\"point\",\"name\":\"ok\",\"id\":0,\"parent\":0,\"attrs\":{}}\n\
     not json at all\n";
  close_out oc;
  check_fails "report malformed trace" [ "report"; tmp ]
    [ "hbn_cli:"; tmp ^ ":2:" ];
  Sys.remove tmp

let test_report_missing_file_fails () =
  check_fails "report missing file"
    [ "report"; "/nonexistent/nope.jsonl" ]
    [ "hbn_cli:" ]

(* The full telemetry acceptance path: simulate --faults --telemetry,
   then report in all three formats; the series file must be
   byte-identical across --jobs values and reruns. *)
let test_simulate_telemetry_report () =
  let read path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let tel_at jobs =
    let tmp = Filename.temp_file "hbn_cli_tel" ".jsonl" in
    match
      run_cli
        (faults_args
           [ "--telemetry"; tmp; "--jobs"; string_of_int jobs ])
    with
    | None ->
      Sys.remove tmp;
      None
    | Some (Unix.WEXITED 0, out) ->
      let data = read tmp in
      Sys.remove tmp;
      Some (out, data)
    | Some (_, out) -> Alcotest.failf "simulate --telemetry failed:\n%s" out
  in
  match (tel_at 1, tel_at 4, tel_at 1) with
  | Some (out1, tel1), Some (_, tel4), Some (_, tel1') ->
    if not (contains out1 "telemetry:") then
      Alcotest.failf "missing telemetry summary line:\n%s" out1;
    Alcotest.(check bool) "series non-empty" true (String.length tel1 > 0);
    Alcotest.(check string) "bit-identical at --jobs 1 and 4" tel1 tel4;
    Alcotest.(check string) "bit-identical across reruns" tel1 tel1';
    (* Both engines contributed: sim rounds and dist (protocol) rounds. *)
    List.iter
      (fun sub ->
        if not (contains tel1 sub) then
          Alcotest.failf "telemetry misses %S" sub)
      [ "\"sim.sent\""; "\"dist.sent\""; "\"dist.retransmits\"" ];
    (* The recorded file feeds report in every format. *)
    let tmp = Filename.temp_file "hbn_cli_tel" ".jsonl" in
    let oc = open_out tmp in
    output_string oc tel1;
    close_out oc;
    check_run "report on telemetry" [ "report"; tmp ]
      [ "series (per-round telemetry)"; "dist.retransmits"; "hottest edges" ];
    check_run "report --format json on telemetry"
      [ "report"; tmp; "--format"; "json" ]
      [ "\"schema\":\"hbn.report/v1\"" ];
    check_run "report --format chrome on telemetry"
      [ "report"; tmp; "--format"; "chrome" ]
      [ "\"traceEvents\"" ];
    Sys.remove tmp
  | _ -> ()

(* Diffing the committed fixture against itself must report exactly
   zero deltas in both renderers; chrome has no diff form. *)
let test_report_diff_self () =
  check_run "report --diff self"
    [
      "report"; "fixtures/report_fixture.jsonl"; "--diff";
      "fixtures/report_fixture.jsonl";
    ]
    [ "verdict: identical — every series and alert matches" ];
  check_run "report --format json --diff self"
    [
      "report"; "fixtures/report_fixture.jsonl"; "--format"; "json"; "--diff";
      "fixtures/report_fixture.jsonl";
    ]
    [ "\"schema\":\"hbn.diff/v1\""; "\"clean\":true" ];
  check_fails "report --format chrome --diff"
    [
      "report"; "fixtures/report_fixture.jsonl"; "--format"; "chrome"; "--diff";
      "fixtures/report_fixture.jsonl";
    ]
    [ "hbn_cli:" ]

(* --telemetry turns the drift monitors on: both engines end the run
   with a health verdict line. *)
let test_simulate_health_verdicts () =
  let tmp = Filename.temp_file "hbn_cli_health" ".jsonl" in
  check_run "simulate --telemetry health"
    (faults_args [ "--telemetry"; tmp ])
    [ "health (sim):"; "health (dist):" ];
  if Sys.file_exists tmp then Sys.remove tmp

(* The acceptance criterion verbatim: report --format chrome on a
   simulate --faults --trace file is valid Chrome trace-event JSON. *)
let test_trace_to_chrome () =
  let tmp = Filename.temp_file "hbn_cli_trace" ".jsonl" in
  (match run_cli (faults_args [ "--trace"; tmp ]) with
  | None -> ()
  | Some (Unix.WEXITED 0, _) ->
    (match run_cli [ "report"; tmp; "--format"; "chrome" ] with
    | None -> ()
    | Some (Unix.WEXITED 0, out) ->
      (match Hbn_obs.Json.parse_result out with
      | Error m -> Alcotest.failf "chrome output is not JSON: %s" m
      | Ok doc ->
        (match
           Option.bind
             (Hbn_obs.Json.member "traceEvents" doc)
             Hbn_obs.Json.to_list
         with
        | Some (_ :: _) -> ()
        | _ -> Alcotest.fail "chrome output has no trace events"))
    | Some (_, out) -> Alcotest.failf "report --format chrome failed:\n%s" out)
  | Some (_, out) -> Alcotest.failf "simulate --trace failed:\n%s" out);
  Sys.remove tmp

let suite =
  [
    Helpers.tc "cli topology" test_topology;
    Helpers.tc "cli topology dot" test_topology_dot;
    Helpers.tc "cli place" test_place;
    Helpers.tc "cli place deterministic" test_place_deterministic;
    Helpers.tc "cli compare" test_compare;
    Helpers.tc "cli gadget solvable" test_gadget;
    Helpers.tc "cli gadget unsolvable" test_gadget_unsolvable;
    Helpers.tc "cli gadget odd sum" test_gadget_odd;
    Helpers.tc "cli dynamic" test_dynamic;
    Helpers.tc "cli simulate" test_simulate;
    Helpers.tc "cli simulate --faults" test_simulate_faults;
    Helpers.tc "cli simulate --faults jobs-invariant"
      test_simulate_faults_jobs_identical;
    Helpers.tc "cli simulate --faults degraded" test_simulate_faults_degraded;
    Helpers.tc "cli simulate --faults bad spec" test_simulate_faults_bad_spec;
    Helpers.tc "cli simulate --link" test_simulate_link;
    Helpers.tc "cli simulate --link bad spec" test_simulate_link_bad_spec;
    Helpers.tc "cli simulate --link jobs-invariant"
      test_simulate_link_jobs_identical;
    Helpers.tc "cli explain table" test_explain_table;
    Helpers.tc "cli explain json" test_explain_json;
    Helpers.tc "cli explain dot" test_explain_dot;
    Helpers.tc "cli explain deterministic" test_explain_deterministic;
    Helpers.tc "cli save/load round trip" test_save_load_roundtrip;
    Helpers.tc "cli failures exit non-zero" test_failures_exit_nonzero;
    Helpers.tc "cli place --trace --timings" test_place_trace_timings;
    Helpers.tc "cli --trace leaves stdout alone" test_place_trace_leaves_stdout_alone;
    Helpers.tc "cli report golden table" test_report_golden;
    Helpers.tc "cli report malformed line number"
      test_report_malformed_fails_with_line;
    Helpers.tc "cli report missing file" test_report_missing_file_fails;
    Helpers.tc "cli simulate --telemetry feeds report"
      test_simulate_telemetry_report;
    Helpers.tc "cli report --diff against itself" test_report_diff_self;
    Helpers.tc "cli simulate --telemetry health verdicts"
      test_simulate_health_verdicts;
    Helpers.tc "cli --trace to chrome trace-event JSON" test_trace_to_chrome;
  ]
