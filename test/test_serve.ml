(* The serving tier: epoch/slot arithmetic, drift generators, the
   record/replay round-trip, the adaptation loop's budget/hysteresis
   discipline, and the observability plumbing it rides on (batched
   telemetry, reconfiguration counters, monitor prefixes, the online
   automaton's structured violations). *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Prng = Hbn_prng.Prng
module Exec = Hbn_exec.Exec
module Telemetry = Hbn_obs.Telemetry
module Monitor = Hbn_obs.Monitor
module Request = Hbn_dynamic.Request
module Online = Hbn_dynamic.Online
module Epoch = Hbn_serve.Epoch
module Drift = Hbn_serve.Drift
module Serve = Hbn_serve.Serve

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* -- epoch/slot arithmetic ---------------------------------------------- *)

let layout_slot_arb =
  QCheck.(pair (int_range 1 64) (int_range 0 20_000))

(* Decomposition is exact: every absolute slot splits into (epoch,
   offset) and reassembles, the offset stays in range, and boundary
   detection agrees with offset zero — including slot 0 of epoch 0. *)
let prop_decompose (spe, slot) =
  let l = Epoch.layout ~slots_per_epoch:spe in
  let e = Epoch.epoch_of_slot l slot in
  let o = Epoch.slot_in_epoch l slot in
  o >= 0 && o < spe
  && (e * spe) + o = slot
  && Epoch.first_slot l ~epoch:e <= slot
  && slot <= Epoch.last_slot l ~epoch:e
  && Epoch.absolute l ~epoch:e ~slot:o = slot
  && Epoch.is_boundary l slot = (o = 0)

let prop_epoch_bounds (spe, epoch) =
  let epoch = epoch mod 512 in
  let l = Epoch.layout ~slots_per_epoch:spe in
  let first = Epoch.first_slot l ~epoch and last = Epoch.last_slot l ~epoch in
  first = epoch * spe
  && last = first + spe - 1
  && last = Epoch.first_slot l ~epoch:(epoch + 1) - 1
  && Epoch.epoch_of_slot l first = epoch
  && Epoch.epoch_of_slot l last = epoch
  && Epoch.is_boundary l first
  && (spe = 1 || not (Epoch.is_boundary l last))

let test_epoch_edges () =
  let l = Epoch.layout ~slots_per_epoch:16 in
  Alcotest.(check int) "epoch 0 starts at slot 0" 0 (Epoch.first_slot l ~epoch:0);
  Alcotest.(check int) "slot 0 is epoch 0" 0 (Epoch.epoch_of_slot l 0);
  Alcotest.(check bool) "slot 0 is a boundary" true (Epoch.is_boundary l 0);
  Alcotest.(check int) "last slot of epoch 0" 15 (Epoch.last_slot l ~epoch:0);
  Alcotest.(check int) "slot 15 still epoch 0" 0 (Epoch.epoch_of_slot l 15);
  Alcotest.(check int) "slot 16 opens epoch 1" 1 (Epoch.epoch_of_slot l 16);
  Alcotest.(check bool) "zero-width layout rejected" true
    (raises_invalid (fun () -> Epoch.layout ~slots_per_epoch:0));
  Alcotest.(check bool) "negative slot rejected" true
    (raises_invalid (fun () -> Epoch.epoch_of_slot l (-1)));
  Alcotest.(check bool) "offset past the epoch rejected" true
    (raises_invalid (fun () -> Epoch.absolute l ~epoch:0 ~slot:16));
  Alcotest.(check bool) "negative offset rejected" true
    (raises_invalid (fun () -> Epoch.absolute l ~epoch:0 ~slot:(-1)))

(* -- drift generators --------------------------------------------------- *)

let serve_tree () = Builders.balanced ~arity:3 ~height:2 ~profile:(Builders.Uniform 2)

let same_tables a b =
  let n_of w = Tree.n (Workload.tree w) in
  Array.length a = Array.length b
  && Array.for_all
       (fun i ->
         let wa = a.(i) and wb = b.(i) in
         Workload.num_objects wa = Workload.num_objects wb
         && n_of wa = n_of wb
         &&
         let ok = ref true in
         for obj = 0 to Workload.num_objects wa - 1 do
           for node = 0 to n_of wa - 1 do
             if
               Workload.reads wa ~obj node <> Workload.reads wb ~obj node
               || Workload.writes wa ~obj node <> Workload.writes wb ~obj node
             then ok := false
           done
         done;
         !ok)
       (Array.init (Array.length a) (fun i -> i))

let test_drift_deterministic () =
  let tree = serve_tree () in
  let mk () = Drift.create Drift.Hotspot_migration ~seed:9 ~tree ~objects:4 ~rate:4 in
  let a = Serve.tables (mk ()) ~epochs:6 in
  let b = Serve.tables (mk ()) ~epochs:6 in
  Alcotest.(check bool) "same seed, same tables" true (same_tables a b);
  let c =
    Serve.tables
      (Drift.create Drift.Hotspot_migration ~seed:10 ~tree ~objects:4 ~rate:4)
      ~epochs:6
  in
  Alcotest.(check bool) "different seed, different tables" false
    (same_tables a c)

let test_drift_names () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Drift.kind_name k ^ " round-trips")
        true
        (Drift.kind_of_name (Drift.kind_name k) = Some k))
    Drift.all_kinds;
  Alcotest.(check bool) "unknown name rejected" true
    (Drift.kind_of_name "weekly" = None)

(* -- the serving loop --------------------------------------------------- *)

let small_cfg =
  { Serve.default with
    Serve.slots_per_epoch = 8; epochs = 12; budget_bytes = 2048;
    climb_iters = 80; seed = 7 }

let run_kind ?exec ?(cfg = small_cfg) kind =
  let tree = serve_tree () in
  let d = Drift.create kind ~seed:cfg.Serve.seed ~tree ~objects:4 ~rate:4 in
  Serve.run ?exec cfg (Serve.Generator d)

(* The comparable payload of an outcome: everything except the live
   telemetry/monitor handles. *)
let fingerprint (o : Serve.outcome) =
  ( o.Serve.epochs, o.Serve.total_requests, o.Serve.total_bytes_migrated,
    o.Serve.reoptimized_epochs, o.Serve.alerts, o.Serve.final_copies )

let test_steady_stays_put () =
  let out = run_kind Drift.Steady in
  Alcotest.(check int) "no re-optimizations" 0 out.Serve.reoptimized_epochs;
  Alcotest.(check int) "no migration bytes" 0 out.Serve.total_bytes_migrated;
  Alcotest.(check int) "no alerts" 0 (List.length out.Serve.alerts);
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9))
        "serving equals stale when nothing moves" s.Serve.s_stale
        s.Serve.s_congestion)
    out.Serve.epochs

let test_budget_and_hysteresis_bound () =
  (* A deliberately tight budget: every committed epoch must still fit
     under it, and epochs that did not commit must pay nothing. *)
  let cfg = { small_cfg with Serve.budget_bytes = 512; epochs = 16 } in
  List.iter
    (fun kind ->
      let out = run_kind ~cfg kind in
      List.iter
        (fun s ->
          if s.Serve.s_bytes_migrated > cfg.Serve.budget_bytes then
            Alcotest.failf "%s epoch %d migrated %d bytes over budget %d"
              (Drift.kind_name kind) s.Serve.s_epoch s.Serve.s_bytes_migrated
              cfg.Serve.budget_bytes;
          if (not s.Serve.s_reoptimized) && s.Serve.s_bytes_migrated <> 0 then
            Alcotest.failf "%s epoch %d paid bytes without committing"
              (Drift.kind_name kind) s.Serve.s_epoch)
        out.Serve.epochs)
    [ Drift.Flash_crowd; Drift.Hotspot_migration ]

let test_hotspot_adapts () =
  let out = run_kind Drift.Hotspot_migration in
  Alcotest.(check bool) "drift triggers re-optimization" true
    (out.Serve.reoptimized_epochs > 0);
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 out.Serve.epochs in
  let serve = sum (fun s -> s.Serve.s_congestion) in
  let stale = sum (fun s -> s.Serve.s_stale) in
  Alcotest.(check bool) "adaptation beats serving stale" true (serve < stale)

let test_replay_round_trip () =
  let tree = serve_tree () in
  let cfg = small_cfg in
  let d () =
    Drift.create Drift.Hotspot_migration ~seed:cfg.Serve.seed ~tree ~objects:4
      ~rate:4
  in
  let out_gen = Serve.run cfg (Serve.Generator (d ())) in
  let ts = Serve.tables (d ()) ~epochs:cfg.Serve.epochs in
  let path = Filename.temp_file "hbn_serve_tables" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Helpers.check_ok "save_tables" (Serve.save_tables path ts);
      match Serve.load_tables ~tree path with
      | Error m -> Alcotest.failf "load_tables: %s" m
      | Ok ts' ->
        Alcotest.(check bool) "tables survive the file format" true
          (same_tables ts ts');
        let out_replay = Serve.run cfg (Serve.Tables ts') in
        Alcotest.(check bool) "replay reproduces the serve run" true
          (fingerprint out_gen = fingerprint out_replay))

let test_jobs_deterministic () =
  let runs =
    List.map
      (fun jobs ->
        Exec.with_runner ~jobs (fun exec ->
            fingerprint (run_kind ~exec Drift.Hotspot_migration)))
      [ 1; 2; 4 ]
  in
  match runs with
  | [ a; b; c ] ->
    Alcotest.(check bool) "jobs 1 = jobs 2" true (a = b);
    Alcotest.(check bool) "jobs 1 = jobs 4" true (a = c)
  | _ -> assert false

let test_rerun_deterministic () =
  let a = fingerprint (run_kind Drift.Flash_crowd) in
  let b = fingerprint (run_kind Drift.Flash_crowd) in
  Alcotest.(check bool) "reruns are byte-identical" true (a = b)

let test_load_tables_rejects_garbage () =
  let tree = serve_tree () in
  let reject name content =
    let path = Filename.temp_file "hbn_serve_bad" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        match Serve.load_tables ~tree path with
        | Ok _ -> Alcotest.failf "%s: accepted a malformed file" name
        | Error _ -> ())
  in
  reject "wrong magic" "not-a-table 1\n";
  reject "wrong node count"
    "hbn-serve-tables 1\nepochs 1\nnodes 3\nobjects 1\n";
  let n = Tree.n tree in
  reject "non-leaf cell"
    (Printf.sprintf "hbn-serve-tables 1\nepochs 1\nnodes %d\nobjects 1\ne 0 0 0 1 0\n" n)

(* -- telemetry batching and reconfiguration counters -------------------- *)

let test_send_many_and_reconfig () =
  let tel = Telemetry.create ~num_edges:3 () in
  Telemetry.begin_round tel ~round:0;
  Telemetry.send_many tel ~edge:1 ~count:5 ~bytes:50;
  Telemetry.send_many tel ~edge:(-1) ~count:2 ~bytes:4;
  Telemetry.send_many tel ~edge:2 ~count:0 ~bytes:0;
  Telemetry.reconfig tel ~replications:2 ~migrations:1 ~contractions:0;
  Telemetry.end_round tel ~live_nodes:9;
  match Telemetry.points tel with
  | [ p ] ->
    Alcotest.(check int) "sent batches" 7 p.Telemetry.sent;
    Alcotest.(check int) "bytes batches" 54 p.Telemetry.bytes;
    Alcotest.(check int) "replications" 2 p.Telemetry.replications;
    Alcotest.(check int) "migrations" 1 p.Telemetry.migrations;
    Alcotest.(check int) "contractions" 0 p.Telemetry.contractions;
    Alcotest.(check bool) "edge table sees the batch" true
      (List.mem_assoc 1 p.Telemetry.edges);
    Alcotest.(check bool) "off-edge traffic stays off the table" false
      (List.mem_assoc 2 p.Telemetry.edges)
  | ps -> Alcotest.failf "expected one point, got %d" (List.length ps)

let test_counter_validation () =
  let tel = Telemetry.create ~num_edges:2 () in
  Telemetry.begin_round tel ~round:0;
  Alcotest.(check bool) "negative count rejected" true
    (raises_invalid (fun () -> Telemetry.send_many tel ~edge:0 ~count:(-1) ~bytes:0));
  Alcotest.(check bool) "negative reconfig rejected" true
    (raises_invalid (fun () ->
         Telemetry.reconfig tel ~replications:(-1) ~migrations:0 ~contractions:0))

(* -- monitor prefixes --------------------------------------------------- *)

let test_monitor_prefix_qualifies_alerts () =
  let m = Monitor.create ~prefix:"serve" () in
  for r = 0 to 19 do
    let v = if r < 12 then 10.0 else 400.0 in
    Monitor.observe m ~series:"sent" ~round:r ~vtime:(float_of_int r) ~span:1 v
  done;
  (match Monitor.alerts m with
  | [] -> Alcotest.fail "the jump must raise an alert"
  | a :: _ ->
    Alcotest.(check string) "alert carries the qualified name" "serve.sent"
      a.Monitor.a_series);
  Alcotest.(check bool) "estimate resolves the bare name" true
    (Monitor.estimate m ~series:"sent" <> None);
  Alcotest.(check bool) "estimate resolves the qualified name" true
    (Monitor.estimate m ~series:"serve.sent" <> None);
  Alcotest.(check bool) "empty prefix rejected" true
    (raises_invalid (fun () -> Monitor.create ~prefix:"" ()))

(* -- online automaton violations ---------------------------------------- *)

let test_online_violation_shape () =
  let star = Builders.star ~leaves:4 ~profile:(Builders.Uniform 1) in
  let reqs =
    List.concat_map
      (fun node ->
        [ { Request.node; kind = Request.Read };
          { Request.node; kind = Request.Write } ])
      [ 1; 2; 3; 1; 2 ]
  in
  let out = Online.run ~validate:true star ~initial:1 reqs in
  Alcotest.(check bool) "a valid run carries no violation" true
    (out.Online.violation = None);
  Alcotest.(check int) "every request served" (List.length reqs)
    out.Online.served;
  let tree, w = Helpers.instance 424242 in
  ignore tree;
  let prng = Prng.create 5 in
  let wout = Online.run_workload ~validate:true ~prng w in
  Alcotest.(check bool) "workload run carries no violation" true
    (wout.Online.violation = None)

let suite =
  [
    Helpers.qt ~count:200 "epoch decomposition" layout_slot_arb prop_decompose;
    Helpers.qt ~count:200 "epoch bounds" layout_slot_arb prop_epoch_bounds;
    Helpers.tc "epoch edge cases" test_epoch_edges;
    Helpers.tc "drift tables deterministic" test_drift_deterministic;
    Helpers.tc "drift kind names round-trip" test_drift_names;
    Helpers.tc "steady workload never re-optimizes" test_steady_stays_put;
    Helpers.tc "migration bytes bounded by budget" test_budget_and_hysteresis_bound;
    Helpers.tc "hotspot migration adapts" test_hotspot_adapts;
    Helpers.tc "record/replay round-trip" test_replay_round_trip;
    Helpers.slow "identical across --jobs 1/2/4" test_jobs_deterministic;
    Helpers.tc "identical across reruns" test_rerun_deterministic;
    Helpers.tc "malformed table files rejected" test_load_tables_rejects_garbage;
    Helpers.tc "send_many and reconfig counters" test_send_many_and_reconfig;
    Helpers.tc "counter validation" test_counter_validation;
    Helpers.tc "monitor prefix qualifies alerts" test_monitor_prefix_qualifies_alerts;
    Helpers.tc "online violations are structured" test_online_violation_shape;
  ]
