module Tree = Hbn_tree.Tree
module Topology_io = Hbn_tree.Topology_io
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Workload_io = Hbn_workload.Workload_io
module Prng = Hbn_prng.Prng

let trees_equal a b =
  Tree.n a = Tree.n b
  && Tree.num_edges a = Tree.num_edges b
  && List.init (Tree.n a) (fun v -> Tree.kind a v)
     = List.init (Tree.n b) (fun v -> Tree.kind b v)
  && List.init (Tree.num_edges a) (fun e ->
         (Tree.edge_endpoints a e, Tree.edge_bandwidth a e))
     = List.init (Tree.num_edges b) (fun e ->
           (Tree.edge_endpoints b e, Tree.edge_bandwidth b e))
  && List.for_all
       (fun v -> Tree.bus_bandwidth a v = Tree.bus_bandwidth b v)
       (Tree.buses a)
  && (Tree.rooting a).Tree.root = (Tree.rooting b).Tree.root

let test_topology_round_trip_example () =
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Scaled_by_subtree 2) in
  match Topology_io.of_string (Topology_io.to_string t) with
  | Ok t' -> Alcotest.(check bool) "round trip" true (trees_equal t t')
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_topology_parse_handwritten () =
  let s =
    "# tiny network\n\
     nodes 3\n\
     bus 0 7\n\
     proc 1\n\
     proc 2\n\
     edge 0 1 1\n\
     edge 0 2 1\n"
  in
  match Topology_io.of_string s with
  | Ok t ->
    Alcotest.(check int) "n" 3 (Tree.n t);
    Alcotest.(check int) "bus bw" 7 (Tree.bus_bandwidth t 0);
    Alcotest.(check (list int)) "leaves" [ 1; 2 ] (Tree.leaves t)
  | Error m -> Alcotest.failf "parse failed: %s" m

let expect_error what s =
  match Topology_io.of_string s with
  | Ok _ -> Alcotest.failf "%s: expected parse error" what
  | Error _ -> ()

let test_topology_parse_errors () =
  expect_error "missing nodes" "bus 0 1\n";
  expect_error "garbage" "nodes 2\nfrobnicate 1\n";
  expect_error "bad int" "nodes x\n";
  expect_error "undeclared node" "nodes 3\nbus 0 1\nproc 1\nedge 0 1 1\nedge 0 2 1\n";
  expect_error "duplicate node" "nodes 2\nproc 0\nproc 0\nproc 1\nedge 0 1 1\n";
  expect_error "out of range id" "nodes 2\nproc 0\nproc 5\nedge 0 1 1\n";
  (* structural errors surface from Tree.make *)
  expect_error "bus as leaf" "nodes 2\nbus 0 1\nproc 1\nedge 0 1 1\n";
  expect_error "not a tree" "nodes 3\nbus 0 1\nproc 1\nproc 2\nedge 0 1 1\n"

let test_workload_round_trip_example () =
  let t = Builders.star ~leaves:4 ~profile:(Builders.Uniform 2) in
  let w = Workload.empty t ~objects:3 in
  Workload.set_read w ~obj:0 1 5;
  Workload.set_write w ~obj:2 3 7;
  match Workload_io.of_string t (Workload_io.to_string w) with
  | Ok w' ->
    Alcotest.(check int) "objects" 3 (Workload.num_objects w');
    Alcotest.(check int) "read" 5 (Workload.reads w' ~obj:0 1);
    Alcotest.(check int) "write" 7 (Workload.writes w' ~obj:2 3);
    Alcotest.(check int) "totals" (Workload.total_requests w)
      (Workload.total_requests w')
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_workload_parse_errors () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let err s =
    match Workload_io.of_string t s with
    | Ok _ -> Alcotest.failf "expected error for %S" s
    | Error _ -> ()
  in
  err "rate 0 1 1 1\n";
  err "objects 1\nrate 5 1 1 1\n";
  err "objects 1\nrate 0 99 1 1\n";
  err "objects 1\nrate 0 0 1 1\n";
  (* node 0 is the bus *)
  err "objects 1\nrate 0 1 -2 0\n"

(* Duplicate (object, node) rate lines used to accumulate silently —
   concatenating two workload files doubled every shared rate. They are
   now rejected, and the error names both lines. *)
let test_workload_duplicate_rate_lines () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  (match Workload_io.of_string t "objects 1\nrate 0 1 2 0\nrate 0 1 3 1\n" with
  | Ok _ -> Alcotest.fail "duplicate rate lines must be rejected"
  | Error m ->
    List.iter
      (fun needle ->
        if not (Helpers.contains m needle) then
          Alcotest.failf "error %S does not mention %S" m needle)
      [ "line 3"; "line 2"; "duplicate rate" ]);
  (* Distinct objects or nodes on separate lines stay legal. *)
  match
    Workload_io.of_string t "objects 2\nrate 0 1 2 0\nrate 1 1 3 0\nrate 0 2 1 1\n"
  with
  | Ok w ->
    Alcotest.(check int) "obj 0 node 1" 2 (Workload.reads w ~obj:0 1);
    Alcotest.(check int) "obj 1 node 1" 3 (Workload.reads w ~obj:1 1);
    Alcotest.(check int) "obj 0 node 2 write" 1 (Workload.writes w ~obj:0 2)
  | Error m -> Alcotest.failf "distinct rate lines rejected: %s" m

let test_file_round_trip () =
  let dir = Filename.temp_file "hbn" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let t = Builders.caterpillar ~spine:3 ~leaves_per_bus:2 ~profile:(Builders.Uniform 3) in
  let tp = Filename.concat dir "net.hbn" in
  Topology_io.save t ~path:tp;
  (match Topology_io.load ~path:tp with
  | Ok t' -> Alcotest.(check bool) "tree file round trip" true (trees_equal t t')
  | Error m -> Alcotest.failf "load failed: %s" m);
  let prng = Prng.create 4 in
  let w = Hbn_workload.Generators.uniform ~prng t ~objects:4 ~max_rate:7 in
  let wp = Filename.concat dir "load.hbn" in
  Workload_io.save w ~path:wp;
  (match Workload_io.load t ~path:wp with
  | Ok w' ->
    Alcotest.(check int) "workload file round trip"
      (Workload.total_requests w) (Workload.total_requests w')
  | Error m -> Alcotest.failf "load failed: %s" m);
  Sys.remove tp;
  Sys.remove wp;
  Unix.rmdir dir

let test_load_missing_file () =
  match Topology_io.load ~path:"/nonexistent/net.hbn" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let prop_topology_round_trip seed =
  let prng = Prng.create seed in
  let t = Helpers.random_tree prng in
  match Topology_io.of_string (Topology_io.to_string t) with
  | Ok t' -> trees_equal t t'
  | Error _ -> false

let prop_workload_round_trip seed =
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  match Workload_io.of_string t (Workload_io.to_string w) with
  | Ok w' ->
    List.for_all
      (fun v ->
        List.for_all
          (fun obj ->
            Workload.reads w ~obj v = Workload.reads w' ~obj v
            && Workload.writes w ~obj v = Workload.writes w' ~obj v)
          (List.init (Workload.num_objects w) Fun.id))
      (Tree.leaves t)
  | Error _ -> false

let suite =
  [
    Helpers.tc "topology round trip" test_topology_round_trip_example;
    Helpers.tc "topology handwritten parse" test_topology_parse_handwritten;
    Helpers.tc "topology parse errors" test_topology_parse_errors;
    Helpers.tc "workload round trip" test_workload_round_trip_example;
    Helpers.tc "workload parse errors" test_workload_parse_errors;
    Helpers.tc "workload duplicate rate lines" test_workload_duplicate_rate_lines;
    Helpers.tc "file round trips" test_file_round_trip;
    Helpers.tc "missing file" test_load_missing_file;
    Helpers.qt "random topologies round trip" Helpers.seed_arb
      prop_topology_round_trip;
    Helpers.qt "random workloads round trip" Helpers.seed_arb
      prop_workload_round_trip;
  ]
