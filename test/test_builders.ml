module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng

let test_star () =
  let t = Builders.star ~leaves:5 ~profile:(Builders.Uniform 3) in
  Alcotest.(check int) "n" 6 (Tree.n t);
  Alcotest.(check int) "leaves" 5 (Tree.num_leaves t);
  Alcotest.(check int) "height" 1 (Tree.height t);
  Alcotest.(check int) "bus bandwidth" 3 (Tree.bus_bandwidth t 0);
  List.iter
    (fun e -> Alcotest.(check int) "leaf switch bw" 1 (Tree.edge_bandwidth t e))
    (List.init (Tree.num_edges t) (fun i -> i));
  Helpers.check_ok "assumptions" (Tree.validate_paper_assumptions t)

let test_star_too_small () =
  Alcotest.check_raises "one leaf"
    (Invalid_argument "Builders.star: need at least 2 leaves") (fun () ->
      ignore (Builders.star ~leaves:1 ~profile:(Builders.Uniform 1)))

let test_balanced () =
  let t = Builders.balanced ~arity:2 ~height:3 ~profile:(Builders.Uniform 2) in
  Alcotest.(check int) "nodes" 15 (Tree.n t);
  Alcotest.(check int) "leaves" 8 (Tree.num_leaves t);
  Alcotest.(check int) "height" 3 (Tree.height t);
  Alcotest.(check int) "max degree" 3 (Tree.max_degree t)

let test_balanced_arity3 () =
  let t = Builders.balanced ~arity:3 ~height:2 ~profile:(Builders.Uniform 1) in
  Alcotest.(check int) "nodes" 13 (Tree.n t);
  Alcotest.(check int) "leaves" 9 (Tree.num_leaves t)

let test_scaled_profile_monotone () =
  let t =
    Builders.balanced ~arity:2 ~height:3 ~profile:(Builders.Scaled_by_subtree 1)
  in
  (* Root bus covers 8 processors, depth-1 buses 4, depth-2 buses 2. *)
  let r = Tree.rooting t in
  Alcotest.(check int) "root bw" 8 (Tree.bus_bandwidth t r.Tree.root);
  let child = r.Tree.children.(r.Tree.root).(0) in
  Alcotest.(check int) "child bw" 4 (Tree.bus_bandwidth t child)

let test_custom_profile () =
  let profile = Builders.Custom (fun ~depth ~subtree_leaves:_ -> 10 - depth) in
  let t = Builders.balanced ~arity:2 ~height:2 ~profile in
  let r = Tree.rooting t in
  Alcotest.(check int) "root bw" 10 (Tree.bus_bandwidth t r.Tree.root)

let test_caterpillar () =
  let t =
    Builders.caterpillar ~spine:4 ~leaves_per_bus:2 ~profile:(Builders.Uniform 2)
  in
  Alcotest.(check int) "nodes" 12 (Tree.n t);
  Alcotest.(check int) "leaves" 8 (Tree.num_leaves t);
  Alcotest.(check int) "height" 4 (Tree.height t)

let test_caterpillar_single_leaf_ends () =
  (* leaves_per_bus = 1 forces an extra processor at each end bus. *)
  let t =
    Builders.caterpillar ~spine:3 ~leaves_per_bus:1 ~profile:(Builders.Uniform 1)
  in
  Alcotest.(check int) "leaves" 5 (Tree.num_leaves t);
  List.iter
    (fun b ->
      if Tree.degree t b < 2 then Alcotest.failf "bus %d has degree < 2" b)
    (Tree.buses t)

let test_caterpillar_invalid () =
  Alcotest.check_raises "1x1"
    (Invalid_argument "Builders.caterpillar: a single bus needs >= 2 leaves")
    (fun () ->
      ignore
        (Builders.caterpillar ~spine:1 ~leaves_per_bus:1
           ~profile:(Builders.Uniform 1)))

let test_ring_conversion_figure1 () =
  (* The paper's Figure 1: a top ring with two sub-rings linked by
     switches; Figure 2 is the corresponding bus network. *)
  let sub n = { Builders.ring_bandwidth = 2; members = List.init n (fun _ -> Builders.Ring_processor) } in
  let top =
    {
      Builders.ring_bandwidth = 4;
      members =
        [
          Builders.Ring_processor;
          Builders.Sub_ring (3, sub 3);
          Builders.Sub_ring (2, sub 2);
        ];
    }
  in
  let t = Builders.of_ring top in
  Alcotest.(check int) "buses" 3 (List.length (Tree.buses t));
  Alcotest.(check int) "processors" 6 (Tree.num_leaves t);
  Alcotest.(check int) "top bus bandwidth" 4 (Tree.bus_bandwidth t 0);
  Alcotest.(check int) "height" 2 (Tree.height t);
  (* Switch bandwidths survive the conversion. *)
  let bws =
    List.init (Tree.num_edges t) (fun e -> Tree.edge_bandwidth t e)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "edge bandwidths" [ 1; 1; 1; 1; 1; 1; 2; 3 ] bws

let test_ring_empty_rejected () =
  Alcotest.check_raises "empty ring"
    (Invalid_argument "Builders.of_ring: rings must have at least one member")
    (fun () ->
      ignore (Builders.of_ring { Builders.ring_bandwidth = 1; members = [] }))

let prop_random_builder_valid seed =
  let prng = Prng.create seed in
  let t =
    Builders.random ~prng
      ~buses:(Prng.int_in prng 1 8)
      ~leaves:(Prng.int_in prng 2 15)
      ~profile:(Helpers.profile_of prng)
  in
  (* Tree.make validates structure; spot-check the paper assumption too. *)
  Tree.validate_paper_assumptions t = Ok ()

let prop_ring_sampler_valid seed =
  let prng = Prng.create seed in
  let ring =
    Builders.sample_ring_of_rings ~prng ~depth:3 ~fanout:2 ~procs_per_ring:3
  in
  let t = Builders.of_ring ring in
  Tree.n t >= 3 && Tree.validate_paper_assumptions t = Ok ()

let prop_balanced_counts seed =
  let arity = 2 + (seed mod 2) in
  let height = 1 + (seed mod 3) in
  let t = Builders.balanced ~arity ~height ~profile:(Builders.Uniform 1) in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  Tree.num_leaves t = pow arity height

let suite =
  [
    Helpers.tc "star" test_star;
    Helpers.tc "star too small" test_star_too_small;
    Helpers.tc "balanced binary" test_balanced;
    Helpers.tc "balanced ternary" test_balanced_arity3;
    Helpers.tc "scaled profile monotone" test_scaled_profile_monotone;
    Helpers.tc "custom profile" test_custom_profile;
    Helpers.tc "caterpillar" test_caterpillar;
    Helpers.tc "caterpillar end buses stay inner" test_caterpillar_single_leaf_ends;
    Helpers.tc "caterpillar invalid" test_caterpillar_invalid;
    Helpers.tc "figure 1 to 2 ring conversion" test_ring_conversion_figure1;
    Helpers.tc "empty ring rejected" test_ring_empty_rejected;
    Helpers.qt "random builder yields valid networks" Helpers.seed_arb
      prop_random_builder_valid;
    Helpers.qt "ring sampler yields valid networks" Helpers.seed_arb
      prop_ring_sampler_valid;
    Helpers.qt "balanced leaf counts" Helpers.seed_arb prop_balanced_counts;
  ]
