module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Certificates = Hbn_core.Certificates
module Copy = Hbn_core.Copy
module Brute_force = Hbn_exact.Brute_force
module Lower_bounds = Hbn_exact.Lower_bounds
module Prng = Hbn_prng.Prng

let test_empty_workload () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:2 in
  let res = Strategy.run w in
  Helpers.check_ok "certificates" (Certificates.check_all w res);
  Alcotest.(check (float 0.)) "zero congestion" 0.
    (Placement.congestion w res.Strategy.placement);
  Alcotest.(check (list int)) "no copies anywhere" []
    (Placement.copies res.Strategy.placement ~obj:0)

let test_read_only_objects_free () =
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  List.iter (fun l -> Workload.set_read w ~obj:0 l 9) (Tree.leaves t);
  let res = Strategy.run w in
  Helpers.check_ok "certificates" (Certificates.check_all w res);
  Alcotest.(check (float 0.)) "reads served locally" 0.
    (Placement.congestion w res.Strategy.placement);
  Alcotest.(check (list int)) "copy on every reader" (Tree.leaves t)
    (Placement.copies res.Strategy.placement ~obj:0)

let test_single_writer () =
  let t = Builders.star ~leaves:4 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  Workload.set_write w ~obj:0 1 10;
  let res = Strategy.run w in
  Helpers.check_ok "certificates" (Certificates.check_all w res);
  (* The lone writer keeps its object local: zero congestion. *)
  Alcotest.(check (float 0.)) "local writes" 0.
    (Placement.congestion w res.Strategy.placement);
  Alcotest.(check (list int)) "single copy at the writer" [ 1 ]
    (Placement.copies res.Strategy.placement ~obj:0)

let test_deterministic () =
  let mk () =
    let _, w = Helpers.instance 9001 in
    let res = Strategy.run w in
    (Placement.edge_loads w res.Strategy.placement, res.Strategy.tau_max)
  in
  Alcotest.(check bool) "two runs agree" true (mk () = mk ())

let test_gadget_within_7 () =
  (* End-to-end on the NP-hardness gadget: the strategy stays within 7x of
     the closed-form optimum on both yes and no instances. *)
  List.iter
    (fun items ->
      let inst = Hbn_workload.Partition.make items in
      let g = Hbn_workload.Partition.gadget inst in
      let w = g.Hbn_workload.Partition.workload in
      let res = Strategy.run ~verify:true w in
      Helpers.check_ok "certificates" (Certificates.check_all w res);
      let opt = float_of_int (Hbn_exact.Gadget_opt.family_optimum inst) in
      Helpers.check_ok "theorem 4.3"
        (Certificates.check_theorem_4_3 w res ~optimum:opt))
    [ [ 1; 1 ]; [ 3; 1; 1; 2; 3; 2 ]; [ 1; 1; 4 ]; [ 5; 5; 3; 3; 2; 2 ] ]

let prop_certificates_hold seed =
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  match Certificates.check_all w res with
  | Ok () -> true
  | Error msg -> QCheck.Test.fail_report msg

let prop_certificates_hold_literal_variant seed =
  (* The move_leaf_copies=true variant (paper's Figure 5 verbatim) also
     satisfies every certificate. *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run ~move_leaf_copies:true ~verify:true w in
  match Certificates.check_all w res with
  | Ok () -> true
  | Error msg -> QCheck.Test.fail_report msg

let prop_seven_approximation seed =
  (* Theorem 4.3 against the true brute-force optimum. *)
  let _, w = Helpers.small_instance seed in
  let res = Strategy.run w in
  let c = Placement.congestion w res.Strategy.placement in
  match Brute_force.optimum w ~candidates:`Leaves ~upper_bound:c with
  | opt -> c <= (7. *. opt.Brute_force.congestion) +. 1e-9
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()

let prop_seven_approximation_literal seed =
  let _, w = Helpers.small_instance seed in
  let res = Strategy.run ~move_leaf_copies:true w in
  let c = Placement.congestion w res.Strategy.placement in
  match Brute_force.optimum w ~candidates:`Leaves ~upper_bound:c with
  | opt -> c <= (7. *. opt.Brute_force.congestion) +. 1e-9
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()

let prop_tau_max_bounded seed =
  (* tau_max <= 3 * max kappa over mapped objects (Observation 3.2 gives
     s <= 2 kappa, so s + kappa <= 3 kappa). *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let max_kappa =
    List.fold_left
      (fun acc obj -> max acc (Workload.write_contention w ~obj))
      0 res.Strategy.mapped_objects
  in
  res.Strategy.tau_max <= 3 * max_kappa

let prop_lower_bound_sanity seed =
  (* Our reported LB never exceeds the congestion of any placement the
     strategy produces (LB <= OPT <= C). *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let c = Placement.congestion w res.Strategy.placement in
  Lower_bounds.combined w <= c +. 1e-9

let prop_lower_bound_vs_optimum seed =
  (* And on solvable sizes the LB really is below the optimum. *)
  let _, w = Helpers.small_instance seed in
  match Brute_force.optimum w ~candidates:`Leaves with
  | opt -> Lower_bounds.combined w <= opt.Brute_force.congestion +. 1e-9
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()

let prop_final_strict_after_collapse seed =
  (* to_strict of the final placement still covers the workload. *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let strict = Placement.to_strict res.Strategy.placement in
  Placement.is_strict strict && Placement.validate w strict = Ok ()

let prop_copies_consistent_with_placement seed =
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  (* Every copy node appears in its object's final copy list. *)
  List.for_all
    (fun c ->
      List.mem c.Copy.node
        (Placement.copies res.Strategy.placement ~obj:c.Copy.obj))
    res.Strategy.copies

let prop_stable_under_all_topologies seed =
  (* Specifically exercise the ring-of-rings topologies of Figure 1/2. *)
  let prng = Prng.create (seed + 31337) in
  let t =
    Builders.of_ring
      (Builders.sample_ring_of_rings ~prng ~depth:3 ~fanout:2 ~procs_per_ring:2)
  in
  let w = Helpers.random_workload prng t in
  let res = Strategy.run ~verify:true w in
  Certificates.check_all w res = Ok ()

let suite =
  [
    Helpers.tc "empty workload" test_empty_workload;
    Helpers.tc "read-only objects are free" test_read_only_objects_free;
    Helpers.tc "single writer stays local" test_single_writer;
    Helpers.tc "deterministic" test_deterministic;
    Helpers.tc "NP gadget within 7x of optimum" test_gadget_within_7;
    Helpers.qt ~count:200 "all certificates hold" Helpers.seed_arb prop_certificates_hold;
    Helpers.qt ~count:100 "certificates hold for literal variant" Helpers.seed_arb
      prop_certificates_hold_literal_variant;
    Helpers.qt ~count:120 "7-approximation vs brute force (Thm 4.3)"
      Helpers.seed_arb prop_seven_approximation;
    Helpers.qt ~count:25 "7-approximation, literal variant" Helpers.seed_arb
      prop_seven_approximation_literal;
    Helpers.qt "tau_max <= 3 max kappa" Helpers.seed_arb prop_tau_max_bounded;
    Helpers.qt "lower bound below strategy congestion" Helpers.seed_arb
      prop_lower_bound_sanity;
    Helpers.qt ~count:30 "lower bound below optimum" Helpers.seed_arb
      prop_lower_bound_vs_optimum;
    Helpers.qt "final placement collapses to strict" Helpers.seed_arb
      prop_final_strict_after_collapse;
    Helpers.qt "result copies consistent with placement" Helpers.seed_arb
      prop_copies_consistent_with_placement;
    Helpers.qt ~count:30 "ring-of-rings topologies" Helpers.seed_arb
      prop_stable_under_all_topologies;
  ]

(* --- additional structural properties ---------------------------------- *)

let scale_workload w k =
  let t = Workload.tree w in
  let w' = Workload.empty t ~objects:(Workload.num_objects w) in
  List.iter
    (fun v ->
      for obj = 0 to Workload.num_objects w - 1 do
        Workload.set_read w' ~obj v (k * Workload.reads w ~obj v);
        Workload.set_write w' ~obj v (k * Workload.writes w ~obj v)
      done)
    (Tree.leaves t);
  w'

let prop_nibble_scale_invariance seed =
  (* Multiplying every frequency by k scales the nibble loads by exactly
     k: Step 1's decisions (gravity center, subtree-weight rule) depend
     only on frequency ratios. The full strategy is only approximately
     scale-invariant — Step 2's near-equal clone bucketing rounds
     differently at different scales — so the exact statement holds for
     the nibble placement and the certificates re-assert the bounds on
     the scaled instance. *)
  let _, w = Helpers.instance seed in
  let k = 2 + (seed mod 3) in
  let w' = scale_workload w k in
  let loads = Hbn_nibble.Nibble.edge_loads w in
  let loads' = Hbn_nibble.Nibble.edge_loads w' in
  Array.for_all2 (fun a b -> k * a = b) loads loads'

let prop_scaled_instance_still_certified seed =
  let _, w = Helpers.instance seed in
  let w' = scale_workload w (2 + (seed mod 3)) in
  match Certificates.check_all w' (Strategy.run ~verify:true w') with
  | Ok () -> true
  | Error msg -> QCheck.Test.fail_report msg

let prop_single_processor_network seed =
  (* Degenerate network: one processor, no buses. Everything is local. *)
  let t =
    Tree.make ~kinds:[| Tree.Processor |] ~edges:[] ~bus_bandwidth:(fun _ -> 1)
      ()
  in
  let w = Workload.empty t ~objects:2 in
  Workload.set_read w ~obj:0 0 (1 + (seed mod 9));
  Workload.set_write w ~obj:1 0 (1 + (seed mod 5));
  let res = Strategy.run ~verify:true w in
  Certificates.check_all w res = Ok ()
  && Placement.congestion w res.Strategy.placement = 0.

let prop_two_processors seed =
  (* Smallest nontrivial bus network: one bus, two processors. *)
  let prng = Prng.create seed in
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform (Prng.int_in prng 1 3)) in
  let w = Workload.empty t ~objects:2 in
  List.iter
    (fun leaf ->
      Workload.set_read w ~obj:0 leaf (Prng.int prng 6);
      Workload.set_write w ~obj:0 leaf (Prng.int prng 6);
      Workload.set_write w ~obj:1 leaf (Prng.int prng 6))
    (Tree.leaves t);
  let res = Strategy.run ~verify:true w in
  (match Certificates.check_all w res with
  | Ok () -> true
  | Error msg -> QCheck.Test.fail_report msg)
  &&
  match Brute_force.optimum w ~candidates:`Leaves with
  | opt ->
    Placement.congestion w res.Strategy.placement
    <= (7. *. opt.Brute_force.congestion) +. 1e-9
  | exception Brute_force.Too_large _ -> true

let extra_suite =
  [
    Helpers.qt ~count:30 "frequency scaling scales nibble loads exactly"
      Helpers.seed_arb prop_nibble_scale_invariance;
    Helpers.qt ~count:30 "scaled instances stay certified" Helpers.seed_arb
      prop_scaled_instance_still_certified;
    Helpers.qt ~count:20 "single-processor network" Helpers.seed_arb
      prop_single_processor_network;
    Helpers.qt ~count:40 "two-processor bus network" Helpers.seed_arb
      prop_two_processors;
  ]

let suite = suite @ extra_suite
