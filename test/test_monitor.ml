(* The streaming drift monitor: estimator accuracy, change-point
   detection, folding compatibility, the degrading/drifting verdict
   split, and the determinism claims (bit-identical alerts across job
   counts and reruns) the tentpole makes. *)

module Telemetry = Hbn_obs.Telemetry
module Monitor = Hbn_obs.Monitor
module Sink = Hbn_obs.Sink
module Prng = Hbn_prng.Prng
module Strategy = Hbn_core.Strategy
module Exec = Hbn_exec.Exec
module Sim = Hbn_sim.Sim
module Runtime = Hbn_dist.Runtime
module Builders = Hbn_tree.Builders

(* Feed a plain float list as one per-round series. *)
let feed ?(series = "s") mon values =
  List.iteri
    (fun i v ->
      Monitor.observe mon ~series ~round:i ~vtime:(float_of_int i) ~span:1 v)
    values

let est mon series =
  match Monitor.estimate mon ~series with
  | Some e -> e
  | None -> Alcotest.failf "no estimate for %s" series

(* Deterministic noise from the stateless hash, scaled into [0, 1). *)
let noise seed i = Prng.hash_float ~seed [ i ]

(* -- estimators ---------------------------------------------------------- *)

let test_p2_exact_first_five () =
  (* Below five observations the P-square estimators are exact
     nearest-rank quantiles. *)
  let mon = Monitor.create () in
  feed mon [ 9.; 1.; 5. ];
  let e = est mon "s" in
  Alcotest.(check (float 1e-9)) "p50 of 3 obs" 5. e.Monitor.e_p50;
  Alcotest.(check (float 1e-9)) "p95 of 3 obs" 9. e.Monitor.e_p95

let test_p2_tracks_exact_quantiles () =
  (* 500 deterministic uniform-ish samples in [0, 100): the five-marker
     estimate must land within a few units of the exact quantile. *)
  let n = 500 in
  let values = List.init n (fun i -> 100. *. noise 7 i) in
  let mon = Monitor.create () in
  feed mon values;
  let sorted = List.sort compare values in
  let exact q = List.nth sorted (int_of_float (q *. float_of_int (n - 1))) in
  let e = est mon "s" in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.2f near exact %.2f" e.Monitor.e_p50 (exact 0.5))
    true
    (Float.abs (e.Monitor.e_p50 -. exact 0.5) < 5.);
  Alcotest.(check bool)
    (Printf.sprintf "p95 %.2f near exact %.2f" e.Monitor.e_p95 (exact 0.95))
    true
    (Float.abs (e.Monitor.e_p95 -. exact 0.95) < 5.)

let test_ewma_half_life () =
  (* After exactly one half-life of rounds at a new level, the EWMA has
     closed half the gap to it: start pinned at 0, then 16 rounds
     (= the default half-life) at 1. *)
  let mon = Monitor.create ~warmup:2 () in
  feed mon (List.init 64 (fun _ -> 0.) @ List.init 16 (fun _ -> 1.));
  let e = est mon "s" in
  Alcotest.(check (float 1e-6)) "half the gap closed" 0.5 e.Monitor.e_mean

let test_ewma_span_invariant () =
  (* A folded observation spanning s rounds decays the average exactly
     as s unfolded rounds at the same rate would. *)
  let a = Monitor.create () in
  feed a (List.init 32 (fun _ -> 0.) @ List.init 8 (fun _ -> 4.));
  let b = Monitor.create () in
  List.iteri
    (fun i v ->
      Monitor.observe b ~series:"s"
        ~round:((4 * i) + 3)
        ~vtime:(float_of_int ((4 * i) + 3))
        ~span:4 v)
    [ 0.; 0.; 0.; 0.; 0.; 0.; 0.; 0.; 4.; 4. ];
  Alcotest.(check (float 1e-9))
    "same EWMA folded or not" (est a "s").Monitor.e_mean
    (est b "s").Monitor.e_mean

let test_window_min_max () =
  (* The min/max window holds the last [window] observations only: an
     early spike ages out. *)
  let mon = Monitor.create ~window:8 () in
  feed mon ([ 100. ] @ List.init 20 (fun i -> float_of_int (10 + (i mod 3))));
  let e = est mon "s" in
  Alcotest.(check (float 1e-9)) "spike aged out" 12. e.Monitor.e_max;
  Alcotest.(check (float 1e-9)) "window min" 10. e.Monitor.e_min;
  Alcotest.(check int) "points counted" 21 e.Monitor.e_points

let test_observe_validation () =
  let mon = Monitor.create () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "span 0 rejected" true
    (raises (fun () ->
         Monitor.observe mon ~series:"s" ~round:0 ~vtime:0. ~span:0 1.));
  Alcotest.(check bool) "nan rejected" true
    (raises (fun () ->
         Monitor.observe mon ~series:"s" ~round:0 ~vtime:0. ~span:1 Float.nan));
  Alcotest.(check bool) "bad warmup rejected" true
    (raises (fun () -> ignore (Monitor.create ~warmup:1 ())));
  Alcotest.(check bool) "bad half_life rejected" true
    (raises (fun () -> ignore (Monitor.create ~half_life:0. ())))

(* -- detectors ----------------------------------------------------------- *)

(* Noisy level around [base] with deterministic jitter in [0, 2). *)
let noisy seed base i = base +. (2. *. noise seed i)

let test_detectors_silent_on_stationary () =
  let mon = Monitor.create () in
  feed mon (List.init 400 (noisy 11 40.));
  Alcotest.(check int) "no alerts" 0 (List.length (Monitor.alerts mon));
  Alcotest.(check bool) "verdict steady" true (Monitor.health mon = Monitor.Steady)

let test_detectors_fire_on_step () =
  let mon = Monitor.create () in
  feed mon
    (List.init 100 (noisy 11 40.) @ List.init 40 (fun i -> noisy 11 80. (100 + i)));
  let alerts = Monitor.alerts mon in
  Alcotest.(check bool) "step detected" true (alerts <> []);
  let first = List.hd alerts in
  Alcotest.(check bool) "upward kind" true
    (match first.Monitor.a_kind with
    | Monitor.Cusum_up | Monitor.Page_hinkley_up -> true
    | _ -> false);
  Alcotest.(check bool) "detected shortly after the shift" true
    (first.Monitor.a_round >= 100 && first.Monitor.a_round <= 110);
  Alcotest.(check string) "series named" "s" first.Monitor.a_series

let test_detectors_fire_on_downward_step () =
  let mon = Monitor.create () in
  feed mon
    (List.init 100 (noisy 3 80.) @ List.init 40 (fun i -> noisy 3 40. (100 + i)));
  let alerts = Monitor.alerts mon in
  Alcotest.(check bool) "drop detected" true (alerts <> []);
  Alcotest.(check bool) "downward kind" true
    (match (List.hd alerts).Monitor.a_kind with
    | Monitor.Cusum_down | Monitor.Page_hinkley_down -> true
    | _ -> false)

let test_detectors_fire_on_ramp () =
  (* A slow ramp: 40 -> 80 over 200 rounds, jitter on top. CUSUM's
     accumulation (or Page-Hinkley's mean gap) must catch it even though
     no single round looks anomalous. *)
  let mon = Monitor.create () in
  feed mon
    (List.init 300 (fun i ->
         noisy 5 (40. +. Float.min 40. (float_of_int i /. 5.)) i));
  Alcotest.(check bool) "ramp detected" true (Monitor.alerts mon <> [])

let test_alert_once_per_shift () =
  (* Re-anchoring after an alert stops the detector from latching: a
     single step on a then-stationary series yields a handful of alerts
     (one per detector family at most, for one series), not one per
     round. *)
  let mon = Monitor.create () in
  feed mon
    (List.init 100 (noisy 11 40.)
    @ List.init 200 (fun i -> noisy 11 80. (100 + i)));
  let n = List.length (Monitor.alerts mon) in
  Alcotest.(check bool)
    (Printf.sprintf "%d alerts for one shift (no latching)" n)
    true
    (n >= 1 && n <= 6)

(* -- folding compatibility ----------------------------------------------- *)

let drive_telemetry ~capacity ~level rounds =
  let tel = Telemetry.create ~capacity ~num_edges:2 () in
  for r = 0 to rounds - 1 do
    Telemetry.begin_round tel ~round:r;
    let sends = level r + Int64.to_int (Int64.rem (Prng.hash ~seed:2 [ r ]) 3L) in
    for i = 0 to sends - 1 do
      Telemetry.send tel ~edge:(i mod 2) ~bytes:16
    done;
    Telemetry.end_round tel ~live_nodes:8
  done;
  tel

let test_folding_compatible_detection () =
  (* The same stepped traffic through an unfolding collector (capacity
     >= rounds) and a folding one (240 rounds into 64 points, spans up
     to 16): both monitors must flag the sustained shift on the sent
     series, and both must stay silent on the steady workload. (Fold
     hard enough — capacity 32 folds the whole step into the warmup
     prefix — and the reference mean freezes on blended data; span
     weighting keeps sustained shifts detectable, not shifts older than
     the retained resolution.) *)
  let level r = if r < 120 then 48 else 96 in
  let detect capacity =
    let mon = Monitor.create () in
    Monitor.ingest mon (drive_telemetry ~capacity ~level 240);
    List.exists
      (fun a ->
        a.Monitor.a_series = "sent"
        &&
        match a.Monitor.a_kind with
        | Monitor.Cusum_up | Monitor.Page_hinkley_up -> true
        | _ -> false)
      (Monitor.alerts mon)
  in
  Alcotest.(check bool) "unfolded series fires" true (detect 512);
  Alcotest.(check bool) "folded series fires" true (detect 64);
  let steady capacity =
    let mon = Monitor.create () in
    Monitor.ingest mon (drive_telemetry ~capacity ~level:(fun _ -> 48) 240);
    Monitor.alerts mon = []
  in
  Alcotest.(check bool) "unfolded steady silent" true (steady 512);
  Alcotest.(check bool) "folded steady silent" true (steady 64)

let test_observe_point_series_set () =
  let mon = Monitor.create () in
  Monitor.ingest mon (drive_telemetry ~capacity:64 ~level:(fun _ -> 48) 100);
  let names = List.map (fun e -> e.Monitor.e_series) (Monitor.estimates mon) in
  Alcotest.(check (list string))
    "derived series, sorted"
    [
      "bytes"; "contractions"; "delivered"; "dropped"; "dup_suppressed";
      "edge_peak"; "edge_rest"; "hotspot_share"; "live_nodes"; "migrations";
      "replications"; "retransmits"; "sent";
    ]
    names;
  (* Traffic-free points skip the hotspot share (no 0/0). *)
  let quiet = Monitor.create () in
  let tel = Telemetry.create ~num_edges:2 () in
  Telemetry.begin_round tel ~round:0;
  Telemetry.end_round tel ~live_nodes:8;
  Monitor.ingest quiet tel;
  Alcotest.(check bool) "hotspot_share skipped without traffic" true
    (Monitor.estimate quiet ~series:"hotspot_share" = None);
  Alcotest.(check bool) "sent still observed" true
    (Monitor.estimate quiet ~series:"sent" <> None)

(* -- verdicts ------------------------------------------------------------ *)

let test_verdict_drifting_vs_degrading () =
  (* A shift on a throughput series is Drifting; the same shift on a
     degrading signal (dropped, retransmits, dup_suppressed up, or
     live_nodes down) is Degrading, and the verdict carries exactly the
     degrading alerts. *)
  let shift = List.init 100 (noisy 11 40.) @ List.init 40 (noisy 11 80.) in
  let drifting = Monitor.create () in
  feed ~series:"sim.sent" drifting shift;
  (match Monitor.health drifting with
  | Monitor.Drifting alerts ->
    Alcotest.(check bool) "alerts carried" true (alerts <> [])
  | v -> Alcotest.failf "expected Drifting, got %s" (Monitor.verdict_name v));
  let degrading = Monitor.create () in
  feed ~series:"dist.retransmits" degrading shift;
  (match Monitor.health degrading with
  | Monitor.Degrading alerts ->
    Alcotest.(check bool) "degrading alerts carried" true
      (List.for_all
         (fun a -> a.Monitor.a_series = "dist.retransmits")
         alerts)
  | v -> Alcotest.failf "expected Degrading, got %s" (Monitor.verdict_name v));
  (* live_nodes triggers on the way down, not up. *)
  let fade = Monitor.create () in
  feed ~series:"live_nodes" fade
    (List.init 100 (fun _ -> 32.)
    @ List.init 60 (fun i -> 32. -. (float_of_int i /. 4.)));
  match Monitor.health fade with
  | Monitor.Degrading _ -> ()
  | v -> Alcotest.failf "expected Degrading, got %s" (Monitor.verdict_name v)

let test_verdict_names_and_kinds () =
  Alcotest.(check string) "steady" "steady" (Monitor.verdict_name Monitor.Steady);
  List.iter
    (fun k ->
      match Monitor.kind_of_name (Monitor.kind_name k) with
      | Some k' -> Alcotest.(check bool) "kind round-trips" true (k = k')
      | None -> Alcotest.failf "kind %s does not parse" (Monitor.kind_name k))
    [
      Monitor.Cusum_up; Monitor.Cusum_down; Monitor.Page_hinkley_up;
      Monitor.Page_hinkley_down;
    ];
  Alcotest.(check bool) "unknown kind rejected" true
    (Monitor.kind_of_name "ewma_up" = None)

(* -- engine surfacing ---------------------------------------------------- *)

let test_runtime_surfaces_health () =
  (* ?monitor with no ?telemetry: the engine records into a private
     collector and fills outcome.health. A quiet lossless convergecast
     is Steady. *)
  let t = Builders.star ~leaves:6 ~profile:(Builders.Uniform 1) in
  let step ~round ~node (sent : int) ~inbox =
    ignore inbox;
    if node > 0 && sent < 3 then (sent + 1, [ (0, round) ]) else (sent, [])
  in
  let mon = Monitor.create () in
  let out = Runtime.run t ~monitor:mon ~init:(fun _ -> 0) ~step in
  (match out.Runtime.health with
  | Some Monitor.Steady -> ()
  | Some v -> Alcotest.failf "expected steady, got %s" (Monitor.verdict_name v)
  | None -> Alcotest.fail "health not filled");
  let bare = Runtime.run t ~init:(fun _ -> 0) ~step in
  Alcotest.(check bool) "no monitor, no health" true (bare.Runtime.health = None)

let test_sim_surfaces_health () =
  let _, w = Helpers.instance 42 in
  let res = Strategy.run w in
  let mon = Monitor.create () in
  let out = Sim.run ~monitor:mon w res.Strategy.placement in
  Alcotest.(check bool) "health filled" true (out.Sim.health <> None)

(* -- determinism --------------------------------------------------------- *)

let monitor_fingerprint mon =
  (* Alerts and estimates rendered to bytes: the emitted JSONL plus the
     estimate table, which together cover all observable monitor state. *)
  let buf = Buffer.create 256 in
  Monitor.emit mon (fun ev -> Buffer.add_string buf (Sink.to_json ev));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s|%d|%d|%h|%h|%h|%h|%h|%h\n" e.Monitor.e_series
           e.Monitor.e_points e.Monitor.e_rounds e.Monitor.e_last
           e.Monitor.e_mean e.Monitor.e_p50 e.Monitor.e_p95 e.Monitor.e_min
           e.Monitor.e_max))
    (Monitor.estimates mon);
  Buffer.contents buf

let prop_monitor_identical_across_jobs seed =
  (* The full pipeline at --jobs 1/2/4 feeding the simulator's telemetry
     into a fresh monitor each time: placements are bit-identical across
     job counts, so the telemetry, the alerts and every estimator bit
     must be too — and a rerun at jobs=1 must reproduce the first. *)
  let _, w = Helpers.instance seed in
  let fingerprint jobs =
    Exec.with_runner ~jobs (fun exec ->
        let res = Strategy.run ~exec w in
        let mon = Monitor.create () in
        let _ = Sim.run ~monitor:mon w res.Strategy.placement in
        monitor_fingerprint mon)
  in
  let base = fingerprint 1 in
  base = fingerprint 2 && base = fingerprint 4 && base = fingerprint 1

let suite =
  [
    Helpers.tc "p2: exact below five observations" test_p2_exact_first_five;
    Helpers.tc "p2: tracks exact quantiles" test_p2_tracks_exact_quantiles;
    Helpers.tc "ewma: half-life in rounds" test_ewma_half_life;
    Helpers.tc "ewma: folding-invariant decay" test_ewma_span_invariant;
    Helpers.tc "window: min/max age out" test_window_min_max;
    Helpers.tc "observe: validation" test_observe_validation;
    Helpers.tc "detectors: silent on stationary series"
      test_detectors_silent_on_stationary;
    Helpers.tc "detectors: fire on an upward step" test_detectors_fire_on_step;
    Helpers.tc "detectors: fire on a downward step"
      test_detectors_fire_on_downward_step;
    Helpers.tc "detectors: fire on a slow ramp" test_detectors_fire_on_ramp;
    Helpers.tc "detectors: re-anchor instead of latching"
      test_alert_once_per_shift;
    Helpers.tc "folding: detection survives the folded series"
      test_folding_compatible_detection;
    Helpers.tc "observe_point: derived series set"
      test_observe_point_series_set;
    Helpers.tc "verdict: drifting vs degrading split"
      test_verdict_drifting_vs_degrading;
    Helpers.tc "verdict and kind names round-trip"
      test_verdict_names_and_kinds;
    Helpers.tc "runtime: health surfaced with a private collector"
      test_runtime_surfaces_health;
    Helpers.tc "sim: health surfaced" test_sim_surfaces_health;
    Helpers.qt ~count:25 "monitor bits identical across jobs and reruns"
      Helpers.seed_arb prop_monitor_identical_across_jobs;
  ]
