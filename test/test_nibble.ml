module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Nibble = Hbn_nibble.Nibble
module Placement = Hbn_placement.Placement
module Brute_force = Hbn_exact.Brute_force
module Prng = Hbn_prng.Prng

(* Path of three buses with one processor each (caterpillar 3x1 grows end
   leaves): convenient for hand-checking the center of gravity. *)
let test_gravity_center_simple () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  (* All the weight on processor 1: removing node 1 leaves weight 0. *)
  let g = Nibble.gravity_center t ~weights:[| 0; 10; 0; 0 |] in
  Alcotest.(check int) "heavy leaf is the center" 1 g;
  (* Balanced weights: the bus is the center. *)
  let g2 = Nibble.gravity_center t ~weights:[| 0; 3; 3; 3 |] in
  Alcotest.(check int) "bus is the center" 0 g2;
  (* Zero weight: every node qualifies, the smallest index wins. *)
  Alcotest.(check int) "zero weight" 0
    (Nibble.gravity_center t ~weights:[| 0; 0; 0; 0 |])

let test_gravity_center_split () =
  (* Two heavy leaves on opposite sides of a two-bus spine. *)
  let t =
    Builders.caterpillar ~spine:2 ~leaves_per_bus:1 ~profile:(Builders.Uniform 1)
  in
  (* Nodes: bus0 {leaves 1,2}, bus3 {leaves 4,5}. *)
  let w = Array.make (Tree.n t) 0 in
  w.(1) <- 5;
  w.(4) <- 5;
  let g = Nibble.gravity_center t ~weights:w in
  Alcotest.(check bool) "a bus in the middle" true (g = 0 || g = 3)

let make_workload t specs =
  let w = Workload.empty t ~objects:(Array.length specs) in
  Array.iteri
    (fun obj leafs ->
      List.iter (fun (leaf, r, wr) ->
          Workload.set_read w ~obj leaf r;
          Workload.set_write w ~obj leaf wr)
        leafs)
    specs;
  w

let test_place_rule () =
  (* Star, one object: processor 1 reads a lot, processor 2 writes a bit.
     kappa = 2; total = 12. Gravity = leaf 1 (component weights after
     removing it: 2 <= 6). Copy rule: node v with subtree weight > kappa. *)
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = make_workload t [| [ (1, 10, 0); (2, 0, 2) ] |] in
  let cs = Nibble.place w ~obj:0 in
  Alcotest.(check int) "gravity" 1 cs.Nibble.gravity;
  (* Rooted at 1: subtree of bus 0 holds weight 2 (not > 2), leaf 2 holds
     2 (not > 2) — only the gravity node gets a copy. *)
  Alcotest.(check (list int)) "copies" [ 1 ] cs.Nibble.nodes

let test_place_spreads_for_reads () =
  (* Heavy readers everywhere, no writes: every requesting node and the
     connecting buses hold copies. *)
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = make_workload t [| [ (1, 4, 0); (2, 4, 0); (3, 4, 0) ] |] in
  let cs = Nibble.place w ~obj:0 in
  Alcotest.(check (list int)) "everything holds a copy" [ 0; 1; 2; 3 ]
    cs.Nibble.nodes

let test_unused_object () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  let cs = Nibble.place w ~obj:0 in
  Alcotest.(check (list int)) "no copies" [] cs.Nibble.nodes

let test_served_groups_partition () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = make_workload t [| [ (1, 10, 0); (2, 0, 2); (3, 1, 1) ] |] in
  let cs = Nibble.place w ~obj:0 in
  let groups = Nibble.served_groups w cs in
  let total =
    Array.fold_left
      (fun acc gs ->
        acc + List.fold_left (fun a g -> a + Nibble.group_weight g) 0 gs)
      0 groups
  in
  Alcotest.(check int) "all requests assigned" 14 total;
  (* Each requesting leaf appears exactly once. *)
  let leaves =
    Array.to_list groups |> List.concat
    |> List.map (fun g -> g.Nibble.leaf)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "leaves once" [ 1; 2; 3 ] leaves

let test_is_connected () =
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  Alcotest.(check bool) "empty" true (Nibble.is_connected t []);
  Alcotest.(check bool) "single" true (Nibble.is_connected t [ 3 ]);
  let r = Tree.rooting t in
  let child = r.Tree.children.(r.Tree.root).(0) in
  Alcotest.(check bool) "root and child" true
    (Nibble.is_connected t [ r.Tree.root; child ]);
  let l1 = List.nth (Tree.leaves t) 0 and l2 = List.nth (Tree.leaves t) 3 in
  Alcotest.(check bool) "two far leaves" false (Nibble.is_connected t [ l1; l2 ])

(* Theorem 3.1 properties on random instances. *)

let prop_copy_set_connected_with_gravity seed =
  let _, w = Helpers.instance seed in
  let tree = Workload.tree w in
  let sets = Nibble.place_all w in
  Array.for_all
    (fun cs ->
      cs.Nibble.nodes = []
      || (List.mem cs.Nibble.gravity cs.Nibble.nodes
         && Nibble.is_connected tree cs.Nibble.nodes))
    sets

let prop_component_edge_load_is_kappa seed =
  (* Inside T(x) every edge carries exactly kappa_x; outside at most
     kappa_x (third and fourth bullets of Theorem 3.1). *)
  let _, w = Helpers.instance seed in
  let tree = Workload.tree w in
  let sets = Nibble.place_all w in
  let p = Nibble.placement w in
  Array.for_all
    (fun cs ->
      let obj = cs.Nibble.obj in
      let kappa = Workload.write_contention w ~obj in
      let loads = Placement.object_edge_loads w p ~obj in
      let in_component = Array.make (max 1 (Tree.num_edges tree)) false in
      List.iter
        (fun e -> in_component.(e) <- true)
        (Tree.steiner_edges tree cs.Nibble.nodes);
      let ok = ref true in
      Array.iteri
        (fun e l ->
          if in_component.(e) then begin
            (* Fourth bullet: component edges carry exactly kappa. *)
            if l <> kappa then ok := false
          end
          else if l > kappa then
            (* Third bullet: every edge load is at most kappa (a heavier
               subtree would have earned its own copy). *)
            ok := false)
        loads;
      !ok)
    sets

let prop_nibble_minimizes_every_edge seed =
  (* The headline of Theorem 3.1: on every edge simultaneously, the nibble
     load equals the minimum over all placements (inner nodes allowed). *)
  let _, w = Helpers.small_instance seed in
  match Brute_force.min_edge_loads w ~candidates:`All_nodes with
  | mins -> Nibble.edge_loads w = mins
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()

let prop_nibble_congestion_lower_bound seed =
  (* Consequently the nibble congestion lower-bounds the leaf-only optimum. *)
  let _, w = Helpers.small_instance seed in
  match Brute_force.optimum w ~candidates:`Leaves with
  | opt ->
    Placement.congestion w (Nibble.placement w)
    <= opt.Brute_force.congestion +. 1e-9
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()

let suite =
  [
    Helpers.tc "gravity center simple" test_gravity_center_simple;
    Helpers.tc "gravity center split" test_gravity_center_split;
    Helpers.tc "placement rule" test_place_rule;
    Helpers.tc "read-heavy spreads copies" test_place_spreads_for_reads;
    Helpers.tc "unused object" test_unused_object;
    Helpers.tc "served groups partition requests" test_served_groups_partition;
    Helpers.tc "is_connected" test_is_connected;
    Helpers.qt "copy sets connected and contain gravity" Helpers.seed_arb
      prop_copy_set_connected_with_gravity;
    Helpers.qt "component edges carry kappa" Helpers.seed_arb
      prop_component_edge_load_is_kappa;
    Helpers.qt ~count:100 "nibble minimizes every edge (Thm 3.1)"
      Helpers.seed_arb prop_nibble_minimizes_every_edge;
    Helpers.qt ~count:30 "nibble congestion lower-bounds bus optimum"
      Helpers.seed_arb prop_nibble_congestion_lower_bound;
  ]
