(* Tests for the telemetry collector and the offline trace analytics:
   bounded-memory folding invariants, report analyses on a hand-checked
   committed fixture (golden output of `hbn_cli report --format table`),
   renderer validity, and the line-numbered failure contract on
   malformed input. *)

module Sink = Hbn_obs.Sink
module Json = Hbn_obs.Json
module Telemetry = Hbn_obs.Telemetry
module Report = Hbn_obs.Report
module Sim = Hbn_sim.Sim
module Strategy = Hbn_core.Strategy

let fixture = "fixtures/report_fixture.jsonl"
let golden = "fixtures/report_fixture.table"

let read_file path = In_channel.with_open_text path In_channel.input_all

let load_fixture () =
  match Report.load ~path:fixture with
  | Ok r -> r
  | Error m -> Alcotest.failf "fixture does not load: %s" m

(* -- telemetry collector ------------------------------------------------ *)

(* Drives [rounds] synthetic rounds with a skewed edge pattern; returns
   the collector. Deterministic in all arguments. *)
let drive ?top_k ?capacity ~rounds ~num_edges () =
  let tel = Telemetry.create ?top_k ?capacity ~num_edges () in
  for r = 1 to rounds do
    Telemetry.begin_round tel ~round:r;
    for e = 0 to num_edges - 1 do
      (* Edge e gets e+1 traversals: a fixed busyness order. *)
      for _ = 1 to e + 1 do
        Telemetry.send tel ~edge:e ~bytes:2
      done
    done;
    Telemetry.send tel ~edge:0 ~bytes:1;
    Telemetry.drop tel;
    if r mod 3 = 0 then Telemetry.retransmit tel;
    if r mod 5 = 0 then Telemetry.duplicate tel;
    Telemetry.end_round tel ~live_nodes:(10 - (r mod 2))
  done;
  tel

let test_telemetry_exact_when_under_capacity () =
  let tel = drive ~rounds:8 ~num_edges:3 () in
  let pts = Telemetry.points tel in
  Alcotest.(check int) "one point per round" 8 (List.length pts);
  Alcotest.(check int) "rounds recorded" 8 (Telemetry.rounds_recorded tel);
  List.iteri
    (fun i (p : Telemetry.point) ->
      Alcotest.(check int) "round" (i + 1) p.Telemetry.round;
      Alcotest.(check int) "span 1" 1 p.Telemetry.rounds;
      (* 1+2+3 per-edge sends plus the dropped extra. *)
      Alcotest.(check int) "sent" 7 p.Telemetry.sent;
      Alcotest.(check int) "dropped" 1 p.Telemetry.dropped;
      Alcotest.(check int) "delivered" 6 p.Telemetry.delivered;
      Alcotest.(check int) "bytes" 13 p.Telemetry.bytes;
      (* Dropped sends still traverse their edge: edge 0 has 1+1=2,
         tying with edge 1; the tie breaks by edge id. *)
      Alcotest.(check (list (pair int int)))
        "edge table: count desc, ties by id"
        [ (2, 3); (0, 2); (1, 2) ]
        p.Telemetry.edges;
      Alcotest.(check int) "no folded remainder" 0 p.Telemetry.other_edges)
    pts

let test_telemetry_folds_at_capacity () =
  let tel = drive ~rounds:100 ~num_edges:4 ~capacity:8 () in
  let pts = Telemetry.points tel in
  Alcotest.(check bool) "bounded" true (List.length pts <= 8);
  Alcotest.(check int) "rounds recorded survives folding" 100
    (Telemetry.rounds_recorded tel);
  (* Folding must conserve every summed counter exactly... *)
  let total f = List.fold_left (fun acc p -> acc + f p) 0 pts in
  Alcotest.(check int) "sent conserved" (100 * 11)
    (total (fun p -> p.Telemetry.sent));
  Alcotest.(check int) "dropped conserved" 100
    (total (fun p -> p.Telemetry.dropped));
  Alcotest.(check int) "bytes conserved" (100 * 21)
    (total (fun p -> p.Telemetry.bytes));
  Alcotest.(check int) "retransmits conserved" 33
    (total (fun p -> p.Telemetry.retransmits));
  Alcotest.(check int) "duplicates conserved" 20
    (total (fun p -> p.Telemetry.dup_suppressed));
  Alcotest.(check int) "edge traversals conserved" (100 * 11)
    (total (fun p ->
         p.Telemetry.other_edges
         + List.fold_left (fun a (_, c) -> a + c) 0 p.Telemetry.edges));
  (* ...cover all rounds with no gaps... *)
  Alcotest.(check int) "round coverage" 100
    (total (fun p -> p.Telemetry.rounds));
  (* ...and take the minimum of live_nodes. *)
  List.iter
    (fun (p : Telemetry.point) ->
      if p.Telemetry.rounds > 1 then
        Alcotest.(check int) "live_nodes folds via min" 9 p.Telemetry.live_nodes)
    pts

let test_telemetry_misuse_raises () =
  let tel = Telemetry.create ~num_edges:2 () in
  Alcotest.check_raises "send outside a round"
    (Invalid_argument "Telemetry.send: no open round") (fun () ->
      Telemetry.send tel ~edge:0 ~bytes:1);
  Telemetry.begin_round tel ~round:5;
  Telemetry.end_round tel ~live_nodes:3;
  Alcotest.check_raises "rounds must increase"
    (Invalid_argument "Telemetry.begin_round: rounds must increase") (fun () ->
      Telemetry.begin_round tel ~round:5)

(* emit -> Sink round trip -> Report.series must agree with the points. *)
let test_telemetry_emit_report_roundtrip () =
  let tel = drive ~rounds:12 ~num_edges:3 () in
  let evs = ref [] in
  Telemetry.emit tel ~prefix:"net" (fun ev -> evs := ev :: !evs);
  let evs = List.rev !evs in
  (* Every emitted event must survive the JSONL codec bit for bit. *)
  List.iter
    (fun ev ->
      match Sink.of_json (Sink.to_json ev) with
      | Ok ev' when ev = ev' -> ()
      | Ok _ -> Alcotest.failf "series codec mismatch: %s" (Sink.to_json ev)
      | Error m -> Alcotest.failf "series unparseable: %s" m)
    evs;
  let r = Report.of_events evs in
  let find name =
    match List.find_opt (fun s -> s.Report.s_name = name) (Report.series r) with
    | Some s -> s
    | None -> Alcotest.failf "missing series %s" name
  in
  let sent = find "net.sent" in
  Alcotest.(check int) "sent total" (12 * 7) sent.Report.total;
  Alcotest.(check int) "sent points" 12 sent.Report.points;
  Alcotest.(check int) "rounds 1..12" 1 sent.Report.first_round;
  Alcotest.(check int) "rounds 1..12" 12 sent.Report.last_round;
  let dropped = find "net.dropped" in
  Alcotest.(check int) "dropped total" 12 dropped.Report.total;
  (* Per-edge totals flow into hottest_edges; order is count desc,
     ties by edge id (edges 0 and 1 both total 24; 0 wins the tie). *)
  match Array.to_list (Report.hottest_edges ~top:2 r) with
  | [ (e1, t1, _); (e2, t2, _) ] ->
    Alcotest.(check int) "hottest edge is 2" 2 e1;
    Alcotest.(check int) "edge 2 total" (12 * 3) t1;
    Alcotest.(check int) "second is edge 0 by tie-break" 0 e2;
    Alcotest.(check int) "edge 0 total" (12 * 2) t2
  | l -> Alcotest.failf "expected 2 hottest edges, got %d" (List.length l)

(* Bit-identical series from identical runs — the acceptance criterion,
   at the library level (the CLI test covers --jobs). *)
let test_telemetry_deterministic_across_runs () =
  let emit_run () =
    let _, w = Helpers.instance 4242 in
    let res = Strategy.run w in
    let tel =
      Telemetry.create
        ~num_edges:(Hbn_tree.Tree.num_edges (Hbn_workload.Workload.tree w))
        ()
    in
    ignore (Sim.run ~telemetry:tel w res.Strategy.placement);
    let buf = Buffer.create 256 in
    Telemetry.emit tel ~prefix:"sim" (fun ev ->
        Buffer.add_string buf (Sink.to_json ev);
        Buffer.add_char buf '\n');
    Buffer.contents buf
  in
  Alcotest.(check string) "identical series" (emit_run ()) (emit_run ())

(* The virtual-time axis: points carry the engine clock, folding keeps
   the later point's position on both axes and conserves totals, and a
   non-increasing clock is rejected. *)
let test_telemetry_vtime_axis () =
  let drive_vtime ?capacity ~rounds () =
    let tel = Telemetry.create ?capacity ~num_edges:2 () in
    for r = 1 to rounds do
      (* An async engine's ticks: 1.5 virtual time per round. *)
      Telemetry.begin_round ~vtime:(1.5 *. float_of_int r) tel ~round:r;
      Telemetry.send tel ~edge:0 ~bytes:3;
      Telemetry.end_round tel ~live_nodes:4
    done;
    tel
  in
  let exact = Telemetry.points (drive_vtime ~rounds:6 ()) in
  List.iteri
    (fun i (p : Telemetry.point) ->
      Alcotest.(check (float 0.))
        "vtime follows the clock"
        (1.5 *. float_of_int (i + 1))
        p.Telemetry.vtime)
    exact;
  let folded = Telemetry.points (drive_vtime ~capacity:4 ~rounds:32 ()) in
  Alcotest.(check bool) "bounded" true (List.length folded <= 4);
  Alcotest.(check int) "sends conserved across vtime folding" 32
    (List.fold_left (fun a p -> a + p.Telemetry.sent) 0 folded);
  Alcotest.(check int) "round coverage" 32
    (List.fold_left (fun a p -> a + p.Telemetry.rounds) 0 folded);
  List.iter
    (fun (p : Telemetry.point) ->
      Alcotest.(check (float 0.))
        "a bucket sits at its last round's clock"
        (1.5 *. float_of_int p.Telemetry.round)
        p.Telemetry.vtime)
    folded;
  let tel = Telemetry.create ~num_edges:1 () in
  Telemetry.begin_round ~vtime:3. tel ~round:1;
  Telemetry.end_round tel ~live_nodes:1;
  Alcotest.check_raises "virtual time must increase"
    (Invalid_argument "Telemetry.begin_round: virtual time must increase")
    (fun () -> Telemetry.begin_round ~vtime:3. tel ~round:2)

(* -- report analyses on the fixture ------------------------------------- *)

let test_report_fixture_phases () =
  let r = load_fixture () in
  (match Report.phases r with
  | p :: _ ->
    Alcotest.(check string) "heaviest phase" "strategy.run" p.Report.name;
    Alcotest.(check int64) "total" 5_000_000L p.Report.total_ns;
    (* 5ms minus the 2+0.5+1.5ms children. *)
    Alcotest.(check int64) "self" 1_000_000L p.Report.self_ns
  | [] -> Alcotest.fail "no phases");
  match Report.critical_path r with
  | [ ("strategy.run", 5_000_000L); ("strategy.nibble", 2_000_000L) ] -> ()
  | path ->
    Alcotest.failf "unexpected critical path: %s"
      (String.concat " -> " (List.map fst path))

let test_report_golden_table () =
  (* The committed golden file pins the exact rendering; regenerate with
     `hbn_cli report test/fixtures/report_fixture.jsonl > .../report_fixture.table`
     after an intentional format change. *)
  let r = load_fixture () in
  Alcotest.(check string) "table matches golden" (read_file golden)
    (Report.to_table r)

let test_report_json_is_valid () =
  let r = load_fixture () in
  match Json.parse_result (Report.to_json r) with
  | Error m -> Alcotest.failf "report JSON unparseable: %s" m
  | Ok doc ->
    Alcotest.(check (option string))
      "schema tag" (Some "hbn.report/v1")
      (Option.bind (Json.member "schema" doc) Json.to_string);
    let arr name =
      match Option.bind (Json.member name doc) Json.to_list with
      | Some l -> l
      | None -> Alcotest.failf "missing %s array" name
    in
    Alcotest.(check int) "5 phases" 5 (List.length (arr "phases"));
    Alcotest.(check int) "2 series" 2 (List.length (arr "series"));
    Alcotest.(check int) "3 edges" 3 (List.length (arr "hottest_edges"))

let test_report_chrome_is_valid () =
  let r = load_fixture () in
  match Json.parse_result (Report.to_chrome r) with
  | Error m -> Alcotest.failf "chrome JSON unparseable: %s" m
  | Ok doc -> (
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | None -> Alcotest.fail "no traceEvents array"
    | Some evs ->
      let phase ev =
        match Option.bind (Json.member "ph" ev) Json.to_string with
        | Some p -> p
        | None -> Alcotest.fail "event without ph"
      in
      let count p = List.length (List.filter (fun e -> phase e = p) evs) in
      Alcotest.(check int) "one X event per closed span" 5 (count "X");
      Alcotest.(check int) "one C event per series point" 9 (count "C");
      Alcotest.(check int) "one i event per fault" 3 (count "i");
      (* The reconstructed timeline keeps children inside their parent:
         every X event fits within some root's [ts, ts+dur]. *)
      let xs =
        List.filter_map
          (fun e ->
            if phase e <> "X" then None
            else
              match
                ( Option.bind (Json.member "ts" e) Json.to_float,
                  Option.bind (Json.member "dur" e) Json.to_float )
              with
              | Some ts, Some dur -> Some (ts, dur)
              | _ -> Alcotest.fail "X event without ts/dur")
          evs
      in
      let max_end =
        List.fold_left (fun acc (ts, dur) -> Float.max acc (ts +. dur)) 0. xs
      in
      (* Roots are 5ms + 3ms laid end to end. *)
      Alcotest.(check (float 1e-6)) "timeline spans both roots" 8000. max_end)

let test_report_empty_trace () =
  let r = Report.of_events [] in
  Alcotest.(check int) "no phases" 0 (List.length (Report.phases r));
  Alcotest.(check int) "no series" 0 (List.length (Report.series r));
  Alcotest.(check int) "no edges" 0 (Array.length (Report.hottest_edges r));
  Alcotest.(check bool) "critical path empty" true (Report.critical_path r = []);
  (* Renderers must not blow up on nothing. *)
  ignore (Report.to_table r);
  (match Json.parse_result (Report.to_json r) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "empty-report JSON invalid: %s" m);
  match Json.parse_result (Report.to_chrome r) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "empty-report chrome JSON invalid: %s" m

(* A span whose end never arrived (truncated trace) still anchors its
   children but contributes no durations anywhere. *)
let test_report_tolerates_unclosed_spans () =
  let ev name id parent payload =
    { Sink.name; id; parent; payload; attrs = [] }
  in
  let r =
    Report.of_events
      [
        ev "outer" 1 0 Sink.Span_start;
        ev "inner" 2 1 Sink.Span_start;
        ev "inner" 2 1 (Sink.Span_end { duration_ns = 1000L });
      ]
  in
  (match Report.phases r with
  | [ p ] ->
    Alcotest.(check string) "only the closed span" "inner" p.Report.name
  | l -> Alcotest.failf "expected 1 phase, got %d" (List.length l));
  match Report.critical_path r with
  | [] -> ()
  | _ -> Alcotest.fail "open root must not start a critical path"

let test_report_malformed_line_number () =
  let path = Filename.temp_file "hbn_report" ".jsonl" in
  let oc = open_out path in
  output_string oc
    "{\"ev\":\"point\",\"name\":\"ok\",\"id\":0,\"parent\":0,\"attrs\":{}}\n\
     {\"ev\":\"point\",\"name\":\"ok\",\"id\":0,\"parent\":0,\"attrs\":{}}\n\
     {\"ev\":\"broken\n";
  close_out oc;
  (match Report.load ~path with
  | Ok _ -> Alcotest.fail "malformed trace loaded"
  | Error m ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names line 3" m)
      true
      (Helpers.contains m (path ^ ":3:")));
  Sys.remove path

let test_report_missing_file () =
  match Report.load ~path:"/nonexistent/nope.jsonl" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ()

(* -- vtime in series summaries, unknown kinds, alert rollups ------------ *)

let emit_events tel ~prefix =
  let evs = ref [] in
  Telemetry.emit tel ~prefix (fun ev -> evs := ev :: !evs);
  List.rev !evs

let find_series r name =
  match List.find_opt (fun s -> s.Report.s_name = name) (Report.series r) with
  | Some s -> s
  | None -> Alcotest.failf "missing series %s" name

let test_report_series_carry_vtime () =
  (* Sync axis: virtual time defaults to the round number... *)
  let r =
    Report.of_events (emit_events (drive ~rounds:6 ~num_edges:2 ()) ~prefix:"s")
  in
  let sent = find_series r "s.sent" in
  Alcotest.(check (float 0.)) "sync first_time" 1. sent.Report.first_time;
  Alcotest.(check (float 0.)) "sync last_time" 6. sent.Report.last_time;
  (* ...while an async engine's clock flows through emit into the
     summary, so the table's vtime column shows real virtual time. *)
  let tel = Telemetry.create ~num_edges:1 () in
  for rd = 1 to 6 do
    Telemetry.begin_round ~vtime:(1.5 *. float_of_int rd) tel ~round:rd;
    Telemetry.send tel ~edge:0 ~bytes:2;
    Telemetry.end_round tel ~live_nodes:3
  done;
  let r = Report.of_events (emit_events tel ~prefix:"a") in
  let sent = find_series r "a.sent" in
  Alcotest.(check (float 1e-9)) "vtime first" 1.5 sent.Report.first_time;
  Alcotest.(check (float 1e-9)) "vtime last" 9. sent.Report.last_time;
  Alcotest.(check bool) "table shows the vtime range" true
    (Helpers.contains (Report.to_table r) "1.5-9")

(* Forward compatibility: a valid JSON line whose ["ev"] tag is unknown
   is skipped and counted, not fatal; a malformed *known* event still
   fails the load with its line number. *)
let test_report_unknown_kind_skipped () =
  let write lines =
    let path = Filename.temp_file "hbn_report" ".jsonl" in
    Out_channel.with_open_text path (fun oc ->
        List.iter (fun l -> output_string oc (l ^ "\n")) lines);
    path
  in
  let path =
    write
      [
        "{\"ev\":\"point\",\"name\":\"ok\",\"id\":0,\"parent\":0,\"attrs\":{}}";
        "{\"ev\":\"hologram\",\"name\":\"from the future\",\"payload\":[1,2]}";
        "{\"ev\":\"point\",\"name\":\"ok\",\"id\":0,\"parent\":0,\"attrs\":{}}";
      ]
  in
  (match Report.load ~path with
  | Error m -> Alcotest.failf "forward-compatible load failed: %s" m
  | Ok r ->
    Alcotest.(check int) "both known events kept" 2
      (List.length (Report.events r));
    Alcotest.(check int) "one unknown line counted" 1 (Report.unknown_events r);
    Alcotest.(check bool) "table reports the skip count" true
      (Helpers.contains (Report.to_table r) "(1 of unknown kind skipped)"));
  Sys.remove path;
  let path =
    write
      [ "{\"ev\":\"hologram\",\"name\":\"fine\"}"; "{\"ev\":\"point\",\"name\":3}" ]
  in
  (match Report.load ~path with
  | Ok _ -> Alcotest.fail "malformed known event loaded"
  | Error m ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names line 2" m)
      true
      (Helpers.contains m (path ^ ":2:")));
  Sys.remove path

let alert_ev ~round ~series ~kind ~magnitude =
  {
    Sink.name = "monitor.alert";
    id = 0;
    parent = 0;
    attrs = [];
    payload =
      Sink.Alert { round; time = float_of_int round; series; kind; magnitude };
  }

let test_report_alert_summaries () =
  let r =
    Report.of_events
      [
        alert_ev ~round:9 ~series:"sent" ~kind:"cusum_up" ~magnitude:2.5;
        alert_ev ~round:14 ~series:"sent" ~kind:"cusum_up" ~magnitude:4.25;
        alert_ev ~round:11 ~series:"sent" ~kind:"ph_up" ~magnitude:1.5;
        alert_ev ~round:30 ~series:"dropped" ~kind:"cusum_up" ~magnitude:9.;
      ]
  in
  (match Report.alert_summaries r with
  | [ a; b; c ] ->
    Alcotest.(check string) "series order" "dropped" a.Report.al_series;
    Alcotest.(check string) "kind within series" "cusum_up" b.Report.al_kind;
    Alcotest.(check int) "grouped count" 2 b.Report.al_count;
    Alcotest.(check int) "first round" 9 b.Report.al_first_round;
    Alcotest.(check int) "last round" 14 b.Report.al_last_round;
    Alcotest.(check (float 0.)) "max magnitude" 4.25 b.Report.al_max_magnitude;
    Alcotest.(check string) "ph after cusum" "ph_up" c.Report.al_kind
  | l -> Alcotest.failf "expected 3 alert summaries, got %d" (List.length l));
  Alcotest.(check bool) "table has the alerts section" true
    (Helpers.contains (Report.to_table r) "alerts (change-point detections)")

(* -- trace diffing ------------------------------------------------------ *)

(* Constant level [base] until round 60, then [late]: zero jitter keeps
   the steady case under the detectors' sigma floor, so the diff's
   alert sets are a pure function of the level shift. *)
let drive_step ~rounds ~base ~late () =
  let tel = Telemetry.create ~num_edges:1 () in
  for rd = 1 to rounds do
    Telemetry.begin_round tel ~round:rd;
    for _ = 1 to if rd <= 60 then base else late do
      Telemetry.send tel ~edge:0 ~bytes:1
    done;
    Telemetry.end_round tel ~live_nodes:4
  done;
  Report.of_events (emit_events tel ~prefix:"t")

let test_report_self_diff_is_clean () =
  let r = drive_step ~rounds:120 ~base:40 ~late:40 () in
  let d = Report.diff ~base:r ~cur:r in
  Alcotest.(check bool) "clean" true (Report.diff_clean d);
  Alcotest.(check int) "no changed series" 0 d.Report.d_changed;
  Alcotest.(check int) "no new alerts" 0 (List.length d.Report.d_new_alerts);
  Alcotest.(check int) "no resolved alerts" 0
    (List.length d.Report.d_gone_alerts);
  Alcotest.(check bool) "table says identical" true
    (Helpers.contains (Report.diff_to_table d)
       "verdict: identical — every series and alert matches");
  match Json.parse_result (Report.diff_to_json d) with
  | Error m -> Alcotest.failf "diff JSON unparseable: %s" m
  | Ok doc ->
    Alcotest.(check (option string))
      "schema tag" (Some "hbn.diff/v1")
      (Option.bind (Json.member "schema" doc) Json.to_string);
    Alcotest.(check bool) "clean flag" true
      (Json.member "clean" doc = Some (Json.Bool true))

let test_report_diff_flags_a_regression () =
  let base = drive_step ~rounds:120 ~base:40 ~late:40 () in
  let cur = drive_step ~rounds:120 ~base:40 ~late:80 () in
  let d = Report.diff ~base ~cur in
  Alcotest.(check bool) "not clean" false (Report.diff_clean d);
  Alcotest.(check bool) "changed series counted" true (d.Report.d_changed > 0);
  (* The step fires detectors only on the current side. *)
  Alcotest.(check int) "baseline is silent" 0
    (List.length d.Report.d_base_alerts);
  Alcotest.(check bool) "new alerts surfaced" true
    (d.Report.d_new_alerts <> []);
  let tbl = Report.diff_to_table d in
  Alcotest.(check bool) "changed rows are starred" true
    (Helpers.contains tbl "*");
  Alcotest.(check bool) "verdict is not identical" false
    (Helpers.contains tbl "verdict: identical");
  (* Swapping sides turns new alerts into resolved ones. *)
  let d' = Report.diff ~base:cur ~cur:base in
  Alcotest.(check int) "alerts resolve on the flipped diff"
    (List.length d.Report.d_new_alerts)
    (List.length d'.Report.d_gone_alerts)

let suite =
  [
    Helpers.tc "telemetry exact under capacity"
      test_telemetry_exact_when_under_capacity;
    Helpers.tc "telemetry folds at capacity, conserving totals"
      test_telemetry_folds_at_capacity;
    Helpers.tc "telemetry misuse raises" test_telemetry_misuse_raises;
    Helpers.tc "telemetry -> emit -> report round trip"
      test_telemetry_emit_report_roundtrip;
    Helpers.tc "telemetry series deterministic across runs"
      test_telemetry_deterministic_across_runs;
    Helpers.tc "telemetry virtual-time axis" test_telemetry_vtime_axis;
    Helpers.tc "report fixture phases and critical path"
      test_report_fixture_phases;
    Helpers.tc "report table matches committed golden" test_report_golden_table;
    Helpers.tc "report JSON is valid and tagged" test_report_json_is_valid;
    Helpers.tc "report chrome JSON is valid" test_report_chrome_is_valid;
    Helpers.tc "report on an empty trace" test_report_empty_trace;
    Helpers.tc "report tolerates unclosed spans"
      test_report_tolerates_unclosed_spans;
    Helpers.tc "report fails with a line number on malformed input"
      test_report_malformed_line_number;
    Helpers.tc "report fails on a missing file" test_report_missing_file;
    Helpers.tc "report series summaries carry virtual time"
      test_report_series_carry_vtime;
    Helpers.tc "report skips unknown event kinds with a count"
      test_report_unknown_kind_skipped;
    Helpers.tc "report aggregates alerts by series and kind"
      test_report_alert_summaries;
    Helpers.tc "report self-diff is exactly clean" test_report_self_diff_is_clean;
    Helpers.tc "report diff flags a regression" test_report_diff_flags_a_regression;
  ]
