module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Request = Hbn_dynamic.Request
module Online = Hbn_dynamic.Online
module Offline = Hbn_dynamic.Offline
module Prng = Hbn_prng.Prng

let star n = Builders.star ~leaves:n ~profile:(Builders.Uniform 1)

let reads node k = List.init k (fun _ -> { Request.node; kind = Request.Read })
let writes node k = List.init k (fun _ -> { Request.node; kind = Request.Write })

let test_reads_trigger_replication () =
  (* Copy on processor 1; processor 2 reads repeatedly. With threshold 1
     the first read pays crossing + replication, later reads are free. *)
  let t = star 3 in
  let out = Online.run t ~initial:1 (reads 2 10) in
  (* First read: 2 crossing loads (e for node 2 and e for node 1) and 2
     replication transfers (set crawls bus then leaf 2). *)
  Alcotest.(check int) "replications" 2 out.Online.replications;
  let total = Array.fold_left ( + ) 0 out.Online.edge_loads in
  Alcotest.(check int) "total load" 4 total;
  Alcotest.(check bool) "reader joined the set" true
    (List.mem 2 out.Online.final_set)

let test_writes_contract () =
  let t = star 3 in
  (* Expand to everyone, then writes from 1 shrink the set back. *)
  let seq = reads 2 3 @ reads 3 3 @ writes 1 5 in
  let out = Online.run ~validate:true t ~initial:1 seq in
  Alcotest.(check (list int)) "contracted to the writer" [ 1 ]
    out.Online.final_set;
  Alcotest.(check bool) "had replicas" true (out.Online.max_copies >= 3)

let test_write_migration () =
  (* Copy far from a heavy writer must migrate: total load stays O(1). *)
  let t = star 3 in
  let out = Online.run ~validate:true t ~initial:1 (writes 2 50) in
  let total = Array.fold_left ( + ) 0 out.Online.edge_loads in
  Alcotest.(check bool) "migrated instead of paying 50" true (total <= 8);
  Alcotest.(check (list int)) "lives at the writer" [ 2 ] out.Online.final_set

let test_offline_dp_simple () =
  let t = star 3 in
  (* Edge to processor 2 is edge 1 (edges: bus-1, bus-2, bus-3). *)
  let opt = Offline.per_edge_optimum t ~initial:1 (reads 2 10) in
  (* Best: replicate across once. *)
  Alcotest.(check int) "one crossing suffices" 1 opt.(1);
  let opt2 = Offline.per_edge_optimum t ~initial:1 (writes 2 50) in
  Alcotest.(check int) "migrate once" 1 opt2.(1);
  (* Alternation R2 W1 R2 W1 ...: any state pays ~1 per round on edge 1. *)
  let alt =
    List.concat (List.init 10 (fun _ -> reads 2 1 @ writes 1 1))
  in
  let opt3 = Offline.per_edge_optimum t ~initial:1 alt in
  Alcotest.(check int) "alternation costs 10" 10 opt3.(1)

let test_phases_dynamic_beats_static () =
  (* Long read phases then long write phases: a dynamic strategy
     re-replicates and contracts per phase; every static placement pays
     every phase. *)
  let t = star 4 in
  let prng = Prng.create 77 in
  let seq =
    Request.phases ~prng t ~readers:[ 2; 3; 4 ] ~writer:1 ~phase_length:50
      ~phases:8
  in
  let dyn = Online.run t ~initial:1 seq in
  let dyn_total = Array.fold_left ( + ) 0 dyn.Online.edge_loads in
  (* The best static competitor in hindsight: frequencies of the sequence
     evaluated at every copy-set choice... use the nibble placement of
     the aggregated frequencies (per-edge optimal among placements). *)
  let w = Workload.empty t ~objects:1 in
  List.iter
    (fun (r : Request.t) ->
      match r.Request.kind with
      | Request.Read ->
        Workload.set_read w ~obj:0 r.Request.node
          (Workload.reads w ~obj:0 r.Request.node + 1)
      | Request.Write ->
        Workload.set_write w ~obj:0 r.Request.node
          (Workload.writes w ~obj:0 r.Request.node + 1))
    seq;
  let static_total =
    Array.fold_left ( + ) 0 (Nibble.edge_loads w)
  in
  Alcotest.(check bool)
    (Printf.sprintf "dynamic %d < static-in-hindsight %d" dyn_total
       static_total)
    true
    (dyn_total < static_total)

let competitive_ratio ?(threshold = 1) tree ~initial seq =
  let dyn = Online.run ~threshold tree ~initial seq in
  let opt = Offline.per_edge_optimum tree ~initial seq in
  let worst = ref 0. in
  Array.iteri
    (fun e l ->
      if opt.(e) > 0 then
        worst :=
          Float.max !worst (float_of_int l /. float_of_int opt.(e))
      else if l > 2 * threshold + 1 then worst := infinity)
    dyn.Online.edge_loads;
  !worst

let test_adversarial_alternation_ratio_3 () =
  (* The classic bad sequence: alternate a crossing read and a spanning
     write. Online pays 3 per round, offline 1 — exactly ratio 3. *)
  let t = star 2 in
  let rounds = 50 in
  let seq =
    List.concat (List.init rounds (fun _ -> reads 2 1 @ writes 1 1))
  in
  let ratio = competitive_ratio t ~initial:1 seq in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in (2.5, 3.1]" ratio)
    true
    (ratio > 2.5 && ratio <= 3.1)

let prop_copy_set_always_valid seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let w = Helpers.random_workload prng tree in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    match Request.of_workload ~prng w ~obj with
    | [] -> ()
    | first :: _ as reqs ->
      (match
         Online.run ~validate:true tree ~initial:first.Request.node reqs
       with
      | _ -> ()
      | exception Failure _ -> ok := false)
  done;
  !ok

let prop_competitive_ratio_bounded seed =
  (* Per-edge: dynamic load <= 3 * offline optimum + a small additive
     constant (unfinished counter cycles; across 3000 stress seeds the
     worst observed additive excess is 4, and the multiplicative ratio on
     edges with optimum >= 15 stays below 3.05). *)
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let w = Helpers.random_workload prng tree in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    match Request.of_workload ~prng w ~obj with
    | [] -> ()
    | first :: _ as reqs ->
      let dyn = Online.run tree ~initial:first.Request.node reqs in
      let opt =
        Offline.per_edge_optimum tree ~initial:first.Request.node reqs
      in
      Array.iteri
        (fun e l -> if l > (3 * opt.(e)) + 6 then ok := false)
        dyn.Online.edge_loads
  done;
  !ok

let prop_offline_leq_online seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let w = Helpers.random_workload prng tree in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    match Request.of_workload ~prng w ~obj with
    | [] -> ()
    | first :: _ as reqs ->
      let dyn = Online.run tree ~initial:first.Request.node reqs in
      let opt =
        Offline.per_edge_optimum tree ~initial:first.Request.node reqs
      in
      Array.iteri
        (fun e l -> if opt.(e) > l then ok := false)
        dyn.Online.edge_loads
  done;
  !ok

let prop_offline_leq_static_nibble seed =
  (* The per-edge dynamic optimum can only beat the best static placement
     (nibble loads) computed from the same aggregated frequencies. *)
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let w = Helpers.random_workload prng tree in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    match Request.of_workload ~prng w ~obj with
    | [] -> ()
    | first :: _ as reqs ->
      let opt =
        Offline.per_edge_optimum tree ~initial:first.Request.node reqs
      in
      let w1 = Workload.empty tree ~objects:1 in
      List.iter
        (fun (r : Request.t) ->
          match r.Request.kind with
          | Request.Read ->
            Workload.set_read w1 ~obj:0 r.Request.node
              (Workload.reads w1 ~obj:0 r.Request.node + 1)
          | Request.Write ->
            Workload.set_write w1 ~obj:0 r.Request.node
              (Workload.writes w1 ~obj:0 r.Request.node + 1))
        reqs;
      let static = Nibble.edge_loads w1 in
      Array.iteri
        (fun e o -> if o > static.(e) + 1 (* initial copy transfer *) then ok := false)
        opt
  done;
  !ok

let prop_request_generators_cover seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let w = Helpers.random_workload prng tree in
  let count kind reqs =
    List.length (List.filter (fun r -> r.Request.kind = kind) reqs)
  in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    let expected_r =
      List.fold_left
        (fun a v -> a + Workload.reads w ~obj v)
        0 (Tree.leaves tree)
    in
    let expected_w =
      List.fold_left
        (fun a v -> a + Workload.writes w ~obj v)
        0 (Tree.leaves tree)
    in
    let shuffled = Request.of_workload ~prng w ~obj in
    let burst = Request.bursty ~prng w ~obj ~burst:4 in
    if count Request.Read shuffled <> expected_r then ok := false;
    if count Request.Write shuffled <> expected_w then ok := false;
    if count Request.Read burst <> expected_r then ok := false;
    if count Request.Write burst <> expected_w then ok := false
  done;
  !ok

let test_workload_runner () =
  let prng = Prng.create 5 in
  let tree = star 5 in
  let w =
    Hbn_workload.Generators.uniform ~prng tree ~objects:4 ~max_rate:6
  in
  let out = Online.run_workload ~prng w in
  Alcotest.(check int) "served everything" (Workload.total_requests w)
    out.Online.served;
  Alcotest.(check bool) "congestion finite" true
    (Online.congestion tree out >= 0.)

let suite =
  [
    Helpers.tc "reads trigger replication" test_reads_trigger_replication;
    Helpers.tc "writes contract the set" test_writes_contract;
    Helpers.tc "write-only traffic migrates" test_write_migration;
    Helpers.tc "offline DP on simple sequences" test_offline_dp_simple;
    Helpers.tc "phases: dynamic beats static in hindsight"
      test_phases_dynamic_beats_static;
    Helpers.tc "adversarial alternation hits ratio 3"
      test_adversarial_alternation_ratio_3;
    Helpers.tc "workload runner serves everything" test_workload_runner;
    Helpers.qt ~count:40 "copy set stays connected and nonempty"
      Helpers.seed_arb prop_copy_set_always_valid;
    Helpers.qt ~count:120 "per-edge load <= 3*OPT + slack" Helpers.seed_arb
      prop_competitive_ratio_bounded;
    Helpers.qt ~count:40 "offline optimum below online load" Helpers.seed_arb
      prop_offline_leq_online;
    Helpers.qt ~count:40 "offline optimum below static nibble"
      Helpers.seed_arb prop_offline_leq_static_nibble;
    Helpers.qt "request generators conserve frequencies" Helpers.seed_arb
      prop_request_generators_cover;
  ]

(* --- non-uniform object sizes (the [12] cost model) ------------------- *)

let prop_sized_competitive seed =
  (* With data size D, transfers cost D and thresholds scale with D; the
     load still stays within 3*OPT plus an O(D) additive term. *)
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let w = Helpers.random_workload prng tree in
  let size = 1 + (seed mod 5) in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    match Request.of_workload ~prng w ~obj with
    | [] -> ()
    | first :: _ as reqs ->
      let dyn =
        Online.run ~size tree ~initial:first.Request.node reqs
      in
      let opt =
        Offline.per_edge_optimum ~size tree ~initial:first.Request.node reqs
      in
      Array.iteri
        (fun e l -> if l > (3 * opt.(e)) + (6 * size) then ok := false)
        dyn.Online.edge_loads
  done;
  !ok

let prop_sized_consistent seed =
  let prng = Prng.create seed in
  let tree = Helpers.random_tree prng in
  let w = Helpers.random_workload prng tree in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    match Request.of_workload ~prng w ~obj with
    | [] -> ()
    | first :: _ as reqs ->
      (match
         Online.run ~size:3 ~validate:true tree
           ~initial:first.Request.node reqs
       with
      | _ -> ()
      | exception Failure _ -> ok := false)
  done;
  !ok

let test_size_discourages_replication () =
  (* A few reads are not worth moving a huge object. *)
  let t = star 3 in
  let small = Online.run ~size:1 t ~initial:1 (reads 2 3) in
  let large = Online.run ~size:10 t ~initial:1 (reads 2 3) in
  Alcotest.(check bool) "small object replicates" true
    (small.Online.replications > 0);
  Alcotest.(check int) "large object stays put" 0 large.Online.replications;
  (* Offline agrees: for 3 reads, crossing each is cheaper than a size-10
     transfer. *)
  let opt = Offline.per_edge_optimum ~size:10 t ~initial:1 (reads 2 3) in
  Alcotest.(check int) "offline pays the reads" 3 opt.(1)

let sized_suite =
  [
    Helpers.tc "large objects are not worth replicating"
      test_size_discourages_replication;
    Helpers.qt ~count:30 "sized competitive bound" Helpers.seed_arb
      prop_sized_competitive;
    Helpers.qt ~count:20 "sized runs stay consistent" Helpers.seed_arb
      prop_sized_consistent;
  ]

let suite = suite @ sized_suite
