module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Certificates = Hbn_core.Certificates
module Copy = Hbn_core.Copy
module Mapping = Hbn_core.Mapping

(* The checkers must be falsifiable: corrupt a known-good result in each
   dimension and watch the corresponding certificate fail. *)

let instance () =
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 2) in
  let w = Workload.empty t ~objects:2 in
  List.iteri
    (fun i leaf ->
      Workload.set_read w ~obj:0 leaf (3 + i);
      Workload.set_write w ~obj:0 leaf 2;
      Workload.set_write w ~obj:1 leaf 1)
    (Tree.leaves t);
  (t, w)

let expect_error what = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: corruption not detected" what

let test_all_pass_on_sound_result () =
  let _, w = instance () in
  let res = Strategy.run w in
  Helpers.check_ok "check_all" (Certificates.check_all w res);
  Helpers.check_ok "valid" (Certificates.check_valid w res);
  Helpers.check_ok "obs 3.2" (Certificates.check_observation_3_2 w res);
  Helpers.check_ok "lemma 4.5" (Certificates.check_lemma_4_5 w res);
  Helpers.check_ok "lemma 4.6" (Certificates.check_lemma_4_6 w res)

let test_check_valid_detects_bus_copy () =
  let _, w = instance () in
  let res = Strategy.run w in
  let corrupted =
    {
      res with
      Strategy.placement =
        Array.map
          (fun op ->
            {
              op with
              Placement.copies = 0 :: op.Placement.copies;
              (* node 0 is the root bus *)
            })
          res.Strategy.placement;
    }
  in
  expect_error "bus copy" (Certificates.check_valid w corrupted)

let test_check_valid_detects_coverage_gap () =
  let _, w = instance () in
  let res = Strategy.run w in
  let corrupted =
    {
      res with
      Strategy.placement =
        Array.map
          (fun op -> { op with Placement.assigns = [] })
          res.Strategy.placement;
    }
  in
  expect_error "coverage" (Certificates.check_valid w corrupted)

let test_obs32_detects_starved_copy () =
  let _, w = instance () in
  let res = Strategy.run w in
  let starving =
    Copy.make ~id:4242 ~obj:0 ~kappa:10 ~node:1 []
    (* serves 0 < kappa *)
  in
  let corrupted = { res with Strategy.copies = starving :: res.Strategy.copies } in
  expect_error "starved copy" (Certificates.check_observation_3_2 w corrupted)

let test_obs32_detects_overloaded_copy () =
  let _, w = instance () in
  let res = Strategy.run w in
  let fat =
    Copy.make ~id:4243 ~obj:0 ~kappa:1 ~node:1
      [ { Hbn_nibble.Nibble.leaf = 1; reads = 100; writes = 0 } ]
  in
  let corrupted = { res with Strategy.copies = fat :: res.Strategy.copies } in
  expect_error "overloaded copy" (Certificates.check_observation_3_2 w corrupted)

let test_lemma45_detects_overload () =
  let _, w = instance () in
  let res = Strategy.run w in
  (* Pretend tau_max is tiny: the measured loads then exceed the bound
     somewhere unless the placement is exactly nibble-shaped. *)
  let corrupted = { res with Strategy.tau_max = -1000 } in
  (* With a hugely negative tau the bound 4*Lnib + tau is below the real
     loads on at least the edges the mapping loaded. *)
  match Certificates.check_lemma_4_5 w corrupted with
  | Error _ -> ()
  | Ok () ->
    (* Degenerate case: the final loads may coincide with nibble loads;
       accept only if they really do. *)
    let final = Placement.edge_loads w res.Strategy.placement in
    let nib = Placement.edge_loads w res.Strategy.nibble in
    Alcotest.(check bool) "loads within 4x nibble everywhere" true
      (Array.for_all2 (fun l n -> l <= (4 * n) - 1000) final nib)

let test_theorem43_threshold () =
  let _, w = instance () in
  let res = Strategy.run w in
  let c = Placement.congestion w res.Strategy.placement in
  Helpers.check_ok "generous optimum"
    (Certificates.check_theorem_4_3 w res ~optimum:c);
  expect_error "impossible optimum"
    (Certificates.check_theorem_4_3 w res ~optimum:(c /. 8.))

let test_max_edge_slack_bounded () =
  let _, w = instance () in
  let res = Strategy.run w in
  let s = Certificates.max_edge_slack w res in
  Alcotest.(check bool) "slack in (0, 1]" true (s > 0. && s <= 1.)

(* Mapping effort bound: every copy moves at most height times up and
   height times down (Theorem 4.3's counting argument). *)
let prop_moves_bounded seed =
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  let res = Strategy.run w in
  match res.Strategy.mapping with
  | None -> true
  | Some stats ->
    let movable = List.length res.Strategy.copies in
    let h = max 1 (Tree.height t) in
    stats.Mapping.moves_up <= movable * h
    && stats.Mapping.moves_down <= movable * h

let prop_copies_bounded seed =
  (* Every Step 2 copy serves at least kappa requests, so an object has at
     most h_x / kappa_x copies (the counting argument in the proof of
     Theorem 4.3's runtime bound). *)
  let _, w = Helpers.instance seed in
  let per_object = Hashtbl.create 8 in
  let res = Strategy.run w in
  List.iter
    (fun c ->
      let k = try Hashtbl.find per_object c.Copy.obj with Not_found -> 0 in
      Hashtbl.replace per_object c.Copy.obj (k + 1))
    res.Strategy.copies;
  Hashtbl.fold
    (fun obj k acc ->
      let kappa = Workload.write_contention w ~obj in
      let h = Workload.total_weight w ~obj in
      acc && (kappa = 0 || k <= h / kappa))
    per_object true

let suite =
  [
    Helpers.tc "all certificates pass on sound results" test_all_pass_on_sound_result;
    Helpers.tc "check_valid detects bus copies" test_check_valid_detects_bus_copy;
    Helpers.tc "check_valid detects coverage gaps" test_check_valid_detects_coverage_gap;
    Helpers.tc "obs 3.2 detects starved copies" test_obs32_detects_starved_copy;
    Helpers.tc "obs 3.2 detects overloaded copies" test_obs32_detects_overloaded_copy;
    Helpers.tc "lemma 4.5 bound is sharp enough to fail" test_lemma45_detects_overload;
    Helpers.tc "theorem 4.3 threshold" test_theorem43_threshold;
    Helpers.tc "max_edge_slack bounded" test_max_edge_slack_bounded;
    Helpers.qt "copy movements bounded by height" Helpers.seed_arb prop_moves_bounded;
    Helpers.qt "copies per object bounded by h/kappa" Helpers.seed_arb
      prop_copies_bounded;
  ]
