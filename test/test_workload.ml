module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators
module Prng = Hbn_prng.Prng

let star n = Builders.star ~leaves:n ~profile:(Builders.Uniform 2)

let test_empty_and_set () =
  let t = star 3 in
  let w = Workload.empty t ~objects:2 in
  Alcotest.(check int) "objects" 2 (Workload.num_objects w);
  Alcotest.(check int) "zero" 0 (Workload.reads w ~obj:0 1);
  Workload.set_read w ~obj:0 1 5;
  Workload.set_write w ~obj:0 2 3;
  Alcotest.(check int) "read set" 5 (Workload.reads w ~obj:0 1);
  Alcotest.(check int) "write set" 3 (Workload.writes w ~obj:0 2);
  Alcotest.(check int) "weight" 0 (Workload.weight w ~obj:1 1);
  Alcotest.(check int) "kappa" 3 (Workload.write_contention w ~obj:0);
  Alcotest.(check int) "total weight" 8 (Workload.total_weight w ~obj:0);
  Alcotest.(check int) "total requests" 8 (Workload.total_requests w);
  Alcotest.(check (list int)) "requesting leaves" [ 1; 2 ]
    (Workload.requesting_leaves w ~obj:0)

let test_set_validation () =
  let t = star 3 in
  let w = Workload.empty t ~objects:1 in
  Alcotest.check_raises "non-leaf"
    (Invalid_argument "Workload.set: only processors issue requests")
    (fun () -> Workload.set_read w ~obj:0 0 1);
  Alcotest.check_raises "negative"
    (Invalid_argument "Workload.set: negative rate") (fun () ->
      Workload.set_write w ~obj:0 1 (-1))

let test_make_validation () =
  let t = star 2 in
  let zeros () = Array.make_matrix 1 3 0 in
  let bad_inner = zeros () in
  bad_inner.(0).(0) <- 1;
  (try
     ignore (Workload.make t ~reads:bad_inner ~writes:(zeros ()));
     Alcotest.fail "accepted rate on bus"
   with Invalid_argument _ -> ());
  (try
     ignore (Workload.make t ~reads:(Array.make_matrix 1 2 0) ~writes:(zeros ()));
     Alcotest.fail "accepted wrong shape"
   with Invalid_argument _ -> ());
  (try
     ignore (Workload.make t ~reads:(zeros ()) ~writes:(Array.make_matrix 2 3 0));
     Alcotest.fail "accepted object count mismatch"
   with Invalid_argument _ -> ())

let test_vectors_are_copies () =
  let t = star 2 in
  let w = Workload.empty t ~objects:1 in
  Workload.set_read w ~obj:0 1 4;
  let v = Workload.read_vector w ~obj:0 in
  v.(1) <- 99;
  Alcotest.(check int) "copy" 4 (Workload.reads w ~obj:0 1);
  let wv = Workload.weight_vector w ~obj:0 in
  Alcotest.(check int) "weight vector" 4 wv.(1)

let test_uniform_generator () =
  let prng = Prng.create 1 in
  let t = star 5 in
  let w = Generators.uniform ~prng t ~objects:3 ~max_rate:4 in
  Alcotest.(check int) "objects" 3 (Workload.num_objects w);
  List.iter
    (fun leaf ->
      for obj = 0 to 2 do
        let r = Workload.reads w ~obj leaf and wr = Workload.writes w ~obj leaf in
        if r < 0 || r > 4 || wr < 0 || wr > 4 then Alcotest.fail "rate range"
      done)
    (Tree.leaves t)

let test_zipf_generator () =
  let prng = Prng.create 2 in
  let t = star 4 in
  let w =
    Generators.zipf_popularity ~prng t ~objects:6 ~requests_per_leaf:20
      ~exponent:1.0 ~write_fraction:0.5
  in
  (* Every processor issued exactly requests_per_leaf requests in total. *)
  List.iter
    (fun leaf ->
      let total = ref 0 in
      for obj = 0 to 5 do
        total := !total + Workload.weight w ~obj leaf
      done;
      Alcotest.(check int) "requests per leaf" 20 !total)
    (Tree.leaves t);
  (* Zipf skew: object 0 is the most requested overall. *)
  let totals = List.init 6 (fun obj -> Workload.total_weight w ~obj) in
  Alcotest.(check bool) "skew" true
    (List.hd totals >= List.nth totals 5)

let test_hotspot_generator () =
  let prng = Prng.create 3 in
  let t = star 6 in
  let w =
    Generators.hotspot ~prng t ~objects:2 ~writers_per_object:2 ~write_rate:7
      ~read_rate:3
  in
  for obj = 0 to 1 do
    let writers =
      List.filter (fun l -> Workload.writes w ~obj l > 0) (Tree.leaves t)
    in
    Alcotest.(check int) "two writers" 2 (List.length writers);
    List.iter
      (fun l -> Alcotest.(check int) "write rate" 7 (Workload.writes w ~obj l))
      writers
  done

let test_producer_consumer () =
  let prng = Prng.create 4 in
  let t = star 5 in
  let w = Generators.producer_consumer ~prng t ~objects:3 ~consumers:2 ~rate:4 in
  for obj = 0 to 2 do
    let writers =
      List.filter (fun l -> Workload.writes w ~obj l > 0) (Tree.leaves t)
    in
    let readers =
      List.filter (fun l -> Workload.reads w ~obj l > 0) (Tree.leaves t)
    in
    Alcotest.(check int) "one producer" 1 (List.length writers);
    Alcotest.(check int) "two consumers" 2 (List.length readers);
    Alcotest.(check int) "kappa" 4 (Workload.write_contention w ~obj)
  done

let test_read_only () =
  let prng = Prng.create 5 in
  let t = star 4 in
  let w = Generators.read_only ~prng t ~objects:2 ~max_rate:5 in
  for obj = 0 to 1 do
    Alcotest.(check int) "no writes" 0 (Workload.write_contention w ~obj)
  done

let test_local_with_background () =
  let prng = Prng.create 6 in
  let t = star 5 in
  let w =
    Generators.local_with_background ~prng t ~objects:2 ~local_rate:50
      ~background_rate:2
  in
  for obj = 0 to 1 do
    let best =
      List.fold_left
        (fun acc l -> max acc (Workload.weight w ~obj l))
        0 (Tree.leaves t)
    in
    Alcotest.(check bool) "home dominates" true (best >= 100)
  done

let prop_generators_valid seed =
  (* Whatever the generator produces, re-making it through the validating
     constructor succeeds. *)
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  let reads =
    Array.init (Workload.num_objects w) (fun obj ->
        Array.init (Tree.n t) (fun v ->
            if Tree.is_leaf t v then Workload.reads w ~obj v else 0))
  in
  let writes =
    Array.init (Workload.num_objects w) (fun obj ->
        Array.init (Tree.n t) (fun v ->
            if Tree.is_leaf t v then Workload.writes w ~obj v else 0))
  in
  ignore (Workload.make t ~reads ~writes);
  true

let suite =
  [
    Helpers.tc "empty and set" test_empty_and_set;
    Helpers.tc "set validation" test_set_validation;
    Helpers.tc "make validation" test_make_validation;
    Helpers.tc "vectors are copies" test_vectors_are_copies;
    Helpers.tc "uniform generator" test_uniform_generator;
    Helpers.tc "zipf generator" test_zipf_generator;
    Helpers.tc "hotspot generator" test_hotspot_generator;
    Helpers.tc "producer consumer" test_producer_consumer;
    Helpers.tc "read only" test_read_only;
    Helpers.tc "local with background" test_local_with_background;
    Helpers.qt "generated workloads validate" Helpers.seed_arb
      prop_generators_valid;
  ]

(* --- BSP stencil workload ---------------------------------------------- *)

let test_bsp_structure () =
  let t = Builders.star ~leaves:5 ~profile:(Builders.Uniform 2) in
  let w = Generators.bsp_neighbor_exchange t ~supersteps:3 ~neighbors:1 in
  Alcotest.(check int) "one object per processor" 5 (Workload.num_objects w);
  let leaves = Array.of_list (Tree.leaves t) in
  (* Owner writes supersteps times; the two ring neighbors read. *)
  Alcotest.(check int) "owner writes" 3 (Workload.writes w ~obj:0 leaves.(0));
  Alcotest.(check int) "right neighbor reads" 3
    (Workload.reads w ~obj:0 leaves.(1));
  Alcotest.(check int) "left neighbor reads" 3
    (Workload.reads w ~obj:0 leaves.(4));
  Alcotest.(check int) "non-neighbor silent" 0
    (Workload.reads w ~obj:0 leaves.(2));
  Alcotest.(check int) "kappa = supersteps" 3 (Workload.write_contention w ~obj:0)

let test_bsp_wide_neighbors () =
  (* neighbors >= n-1 must not double-count nor overflow the ring. *)
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = Generators.bsp_neighbor_exchange t ~supersteps:2 ~neighbors:5 in
  let leaves = Array.of_list (Tree.leaves t) in
  (* With 3 processors and d in 1..2, each non-owner is hit once as +d and
     once as -d: 2 reads per superstep. *)
  Alcotest.(check int) "reads accumulate" 4 (Workload.reads w ~obj:0 leaves.(1))

let prop_bsp_valid seed =
  let prng = Prng.create seed in
  let t = Helpers.random_tree prng in
  let w =
    Generators.bsp_neighbor_exchange t
      ~supersteps:(1 + (seed mod 5))
      ~neighbors:(seed mod 4)
  in
  Workload.num_objects w = Tree.num_leaves t
  && Workload.total_requests w > 0

let bsp_suite =
  [
    Helpers.tc "bsp stencil structure" test_bsp_structure;
    Helpers.tc "bsp wide neighbor wrap" test_bsp_wide_neighbors;
    Helpers.qt "bsp workloads valid" Helpers.seed_arb prop_bsp_valid;
  ]

let suite = suite @ bsp_suite
