module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Prng = Hbn_prng.Prng

(* Star: bus 0 (bw 2), processors 1, 2, 3; edge i connects processor i+1. *)
let star_instance () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 2) in
  let w = Workload.empty t ~objects:1 in
  Workload.set_read w ~obj:0 1 2;
  Workload.set_write w ~obj:0 1 3;
  Workload.set_read w ~obj:0 2 1;
  Workload.set_write w ~obj:0 3 4;
  (t, w)

let test_hand_computed_loads () =
  (* Copies on processors 1 and 3. Reads travel to the reference copy,
     writes additionally load the Steiner tree {e0, e2} with kappa = 7. *)
  let _, w = star_instance () in
  let p = Placement.nearest w ~copies:[| [ 1; 3 ] |] in
  let loads = Placement.edge_loads w p in
  Alcotest.(check (array int)) "edge loads" [| 8; 1; 7 |] loads;
  let c = Placement.evaluate w p in
  Alcotest.(check (float 1e-9)) "congestion" 8. c.Placement.value;
  (match c.Placement.bottleneck with
  | `Edge 0 -> ()
  | _ -> Alcotest.fail "bottleneck should be edge 0");
  Alcotest.(check int) "bus load doubled" 16 c.Placement.bus_loads2.(0);
  Alcotest.(check int) "total load" 16 (Placement.total_load w p)

let test_nearest_tie_breaking () =
  let _, w = star_instance () in
  let p = Placement.nearest w ~copies:[| [ 3; 1 ] |] in
  (* Processor 2 is equidistant from 1 and 3: ties go to the lowest id. *)
  let server_of_2 =
    List.find (fun a -> a.Placement.leaf = 2) p.(0).Placement.assigns
  in
  Alcotest.(check int) "tie to lowest id" 1 server_of_2.Placement.server;
  Alcotest.(check (list int)) "copies sorted deduped" [ 1; 3 ]
    (Placement.copies p ~obj:0)

let test_nearest_requires_copies () =
  let _, w = star_instance () in
  Alcotest.check_raises "no copies"
    (Invalid_argument "Placement.nearest: requests but no copies") (fun () ->
      ignore (Placement.nearest w ~copies:[| [] |]))

let test_bus_congestion_bottleneck () =
  (* Make the bus the bottleneck by giving the edges big bandwidths. *)
  let t =
    Tree.make
      ~kinds:[| Tree.Bus; Tree.Processor; Tree.Processor |]
      ~edges:[ (0, 1, 10); (0, 2, 10) ]
      ~bus_bandwidth:(fun _ -> 1)
      ()
  in
  let w = Workload.empty t ~objects:1 in
  Workload.set_read w ~obj:0 1 8;
  let p = Placement.nearest w ~copies:[| [ 2 ] |] in
  let c = Placement.evaluate w p in
  (* Edge loads 8/10 each; bus load 8 over bandwidth 1. *)
  Alcotest.(check (float 1e-9)) "bus dominates" 8. c.Placement.value;
  match c.Placement.bottleneck with
  | `Bus 0 -> ()
  | _ -> Alcotest.fail "bottleneck should be the bus"

let test_full_replication () =
  let _, w = star_instance () in
  let p = Placement.full_replication w in
  Alcotest.(check (list int)) "copies everywhere" [ 1; 2; 3 ]
    (Placement.copies p ~obj:0);
  let loads = Placement.edge_loads w p in
  (* Reads are local; every write broadcasts over all three edges. *)
  Alcotest.(check (array int)) "broadcast loads" [| 7; 7; 7 |] loads

let test_single () =
  let _, w = star_instance () in
  let p = Placement.single w [ (0, 2) ] in
  Alcotest.(check (list int)) "one copy" [ 2 ] (Placement.copies p ~obj:0);
  let loads = Placement.edge_loads w p in
  (* Everything travels to processor 2; no Steiner edges for one copy:
     e0 carries processor 1's five requests, e2 processor 3's four, and
     e1 both streams on their way in. *)
  Alcotest.(check (array int)) "loads" [| 5; 9; 4 |] loads

let test_single_validation () =
  let _, w = star_instance () in
  Alcotest.check_raises "missing object"
    (Invalid_argument "Placement.single: object missing a copy") (fun () ->
      ignore (Placement.single w []));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Placement.single: duplicate object") (fun () ->
      ignore (Placement.single w [ (0, 1); (0, 2) ]))

let test_validate_catches_errors () =
  let _, w = star_instance () in
  let good = Placement.nearest w ~copies:[| [ 1 ] |] in
  Helpers.check_ok "good placement" (Placement.validate w good);
  (* Wrong coverage: drop one assignment. *)
  let bad =
    [| { good.(0) with Placement.assigns = List.tl good.(0).Placement.assigns } |]
  in
  (match Placement.validate w bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing assignment accepted");
  (* Server outside the copy set. *)
  let bad2 =
    [|
      {
        good.(0) with
        Placement.assigns =
          List.map
            (fun a -> { a with Placement.server = 2 })
            good.(0).Placement.assigns;
      };
    |]
  in
  (match Placement.validate w bad2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "foreign server accepted");
  (* Duplicate copies. *)
  let bad3 = [| { good.(0) with Placement.copies = [ 1; 1 ] } |] in
  match Placement.validate w bad3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate copies accepted"

let test_strictness () =
  let _, w = star_instance () in
  let split =
    [|
      {
        Placement.copies = [ 1; 3 ];
        assigns =
          [
            { Placement.leaf = 1; server = 1; reads = 2; writes = 3 };
            { Placement.leaf = 2; server = 1; reads = 1; writes = 0 };
            { Placement.leaf = 3; server = 3; reads = 0; writes = 1 };
            { Placement.leaf = 3; server = 1; reads = 0; writes = 3 };
          ];
      };
    |]
  in
  Helpers.check_ok "split covers workload" (Placement.validate w split);
  Alcotest.(check bool) "split is not strict" false (Placement.is_strict split);
  let strict = Placement.to_strict split in
  Alcotest.(check bool) "to_strict strict" true (Placement.is_strict strict);
  Helpers.check_ok "strict still covers" (Placement.validate w strict);
  (* Processor 3's majority server is copy 1 (3 vs 1 requests). *)
  let a3 =
    List.find (fun a -> a.Placement.leaf = 3) strict.(0).Placement.assigns
  in
  Alcotest.(check int) "majority server" 1 a3.Placement.server

let test_leaf_only () =
  let t, w = star_instance () in
  let leafy = Placement.nearest w ~copies:[| [ 1 ] |] in
  Alcotest.(check bool) "leaves only" true (Placement.leaf_only t leafy);
  let bus =
    [|
      {
        Placement.copies = [ 0 ];
        assigns =
          List.map
            (fun a -> { a with Placement.server = 0 })
            leafy.(0).Placement.assigns;
      };
    |]
  in
  Alcotest.(check bool) "bus copy detected" false (Placement.leaf_only t bus)

let test_path_steiner_overlap_counted_twice () =
  (* A write whose reference path overlaps the Steiner tree loads those
     edges twice (request + broadcast), matching the model's definition. *)
  let t =
    Builders.caterpillar ~spine:2 ~leaves_per_bus:1 ~profile:(Builders.Uniform 1)
  in
  (* Structure: bus0 - bus2(=spine); processors 1,3 at ends + extras. *)
  let leaves = Tree.leaves t in
  let l0 = List.nth leaves 0 and l1 = List.nth leaves 1 in
  let w = Workload.empty t ~objects:1 in
  Workload.set_write w ~obj:0 l0 1;
  Workload.set_write w ~obj:0 l1 1;
  let p =
    [|
      {
        Placement.copies = [ l0; l1 ];
        assigns =
          [
            (* l0 uses the far copy: its path lies inside the Steiner tree. *)
            { Placement.leaf = l0; server = l1; reads = 0; writes = 1 };
            { Placement.leaf = l1; server = l1; reads = 0; writes = 1 };
          ];
      };
    |]
  in
  let loads = Placement.edge_loads w p in
  let path = Tree.path_edges t l0 l1 in
  List.iter
    (fun e ->
      Alcotest.(check int) "path+steiner" 3 loads.(e))
    path

let prop_nearest_valid seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 1) in
  let t = Workload.tree w in
  let leaves = Array.of_list (Tree.leaves t) in
  let copies =
    Array.init (Workload.num_objects w) (fun _ ->
        let k = Prng.int_in prng 1 (Array.length leaves) in
        let order = Array.copy leaves in
        Prng.shuffle prng order;
        Array.to_list (Array.sub order 0 k))
  in
  let p = Placement.nearest w ~copies in
  Placement.validate w p = Ok () && Placement.is_strict p

let prop_full_replication_reads_free seed =
  let _, w = Helpers.instance seed in
  let p = Placement.full_replication w in
  (* With copies everywhere, only write broadcasts load edges: every edge
     load is at most the total write contention. *)
  let kappa_total =
    List.fold_left ( + ) 0
      (List.init (Workload.num_objects w) (fun obj ->
           Workload.write_contention w ~obj))
  in
  Array.for_all (fun l -> l <= kappa_total) (Placement.edge_loads w p)

let suite =
  [
    Helpers.tc "hand-computed loads" test_hand_computed_loads;
    Helpers.tc "nearest tie-breaking" test_nearest_tie_breaking;
    Helpers.tc "nearest requires copies" test_nearest_requires_copies;
    Helpers.tc "bus can be the bottleneck" test_bus_congestion_bottleneck;
    Helpers.tc "full replication" test_full_replication;
    Helpers.tc "single placement" test_single;
    Helpers.tc "single validation" test_single_validation;
    Helpers.tc "validate catches errors" test_validate_catches_errors;
    Helpers.tc "strict vs split assignments" test_strictness;
    Helpers.tc "leaf_only" test_leaf_only;
    Helpers.tc "path/steiner overlap double-counted"
      test_path_steiner_overlap_counted_twice;
    Helpers.qt "nearest placements validate" Helpers.seed_arb prop_nearest_valid;
    Helpers.qt "full replication loads bounded by contention" Helpers.seed_arb
      prop_full_replication_reads_free;
  ]

(* --- dot export --------------------------------------------------------- *)

let test_placement_to_dot () =
  let _, w = star_instance () in
  let t = Workload.tree w in
  let p = Placement.nearest w ~copies:[| [ 1; 3 ] |] in
  let dot = Placement.to_dot t p in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "copy holder labeled" true (contains dot "P1\\nx0");
  Alcotest.(check bool) "empty processor plain" true (contains dot "\"P2\"");
  Alcotest.(check bool) "bus box" true (contains dot "bus 0")

let suite = suite @ [ Helpers.tc "placement dot export" test_placement_to_dot ]
