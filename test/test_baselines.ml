module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Baselines = Hbn_baselines.Baselines
module Prng = Hbn_prng.Prng

let instance () =
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:2 in
  let leaves = Tree.leaves t in
  List.iteri
    (fun i leaf ->
      Workload.set_read w ~obj:0 leaf (i + 1);
      Workload.set_write w ~obj:1 leaf 1)
    leaves;
  Workload.set_write w ~obj:0 (List.hd leaves) 5;
  (t, w)

let test_owner_places_at_heaviest () =
  let _, w = instance () in
  let p = Baselines.owner w in
  (* Object 0: leaf 0 has weight 1+5 = 6, the maximum. *)
  let leaves = Tree.leaves (Workload.tree w) in
  Alcotest.(check (list int)) "owner of object 0" [ List.hd leaves ]
    (Placement.copies p ~obj:0);
  Helpers.check_ok "valid" (Placement.validate w p)

let test_owner_skips_unused () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  let p = Baselines.owner w in
  Alcotest.(check (list int)) "no copies" [] (Placement.copies p ~obj:0)

let test_gravity_leaf_valid () =
  let _, w = instance () in
  let p = Baselines.gravity_leaf w in
  Helpers.check_ok "valid" (Placement.validate w p);
  Alcotest.(check int) "one copy" 1
    (List.length (Placement.copies p ~obj:0))

let test_random_leaf_valid () =
  let _, w = instance () in
  let p = Baselines.random_leaf ~prng:(Prng.create 3) w in
  Helpers.check_ok "valid" (Placement.validate w p);
  (* The copy is on a requesting leaf. *)
  let requesting = Workload.requesting_leaves w ~obj:0 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "requesting" true (List.mem c requesting))
    (Placement.copies p ~obj:0)

let test_local_search_improves () =
  let _, w = instance () in
  let owner_c = Placement.congestion w (Baselines.owner w) in
  let ls = Baselines.local_search ~iterations:150 ~prng:(Prng.create 7) w in
  Helpers.check_ok "valid" (Placement.validate w ls);
  Alcotest.(check bool) "no worse than owner" true
    (Placement.congestion w ls <= owner_c +. 1e-9)

let prop_all_baselines_valid seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 13) in
  let t = Workload.tree w in
  List.for_all
    (fun p ->
      Placement.validate w p = Ok () && Placement.leaf_only t p)
    [
      Baselines.owner w;
      Baselines.gravity_leaf w;
      Baselines.random_leaf ~prng w;
      Baselines.full_replication w;
      Baselines.local_search ~iterations:30 ~prng w;
    ]

let prop_local_search_never_worse seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 17) in
  Placement.congestion w (Baselines.local_search ~iterations:60 ~prng w)
  <= Placement.congestion w (Baselines.owner w) +. 1e-9

(* --- hill_climb on the incremental load engine --------------------------- *)

let start_copies w =
  Array.init (Workload.num_objects w) (fun obj ->
      match Workload.requesting_leaves w ~obj with
      | [] -> []
      | leaf :: _ -> [ leaf ])

let prop_hill_climb_matches_scratch seed =
  (* The engine-backed climb and the from-scratch climb share one proposal
     generator and evaluate congestion with bit-identical arithmetic, so
     for the same seed they must walk the same trajectory and land on
     structurally equal placements. *)
  let _, w = Helpers.instance seed in
  let copies = start_copies w in
  let engine =
    Baselines.hill_climb ~iterations:80 ~prng:(Prng.create (seed + 5)) w copies
  in
  let scratch =
    Baselines.hill_climb_scratch ~iterations:80 ~prng:(Prng.create (seed + 5))
      w copies
  in
  engine = scratch && Placement.validate w engine = Ok ()

let test_local_search_pinned () =
  (* Seed-pinned regression guarding the deterministic proposal stream of
     the engine-backed hill climb: any change to the PRNG draw order, the
     tie-breaking, or the congestion arithmetic shows up here. *)
  let _, w = instance () in
  let p = Baselines.local_search ~iterations:200 ~prng:(Prng.create 42) w in
  Alcotest.(check (float 0.0)) "congestion" 10.0 (Placement.congestion w p);
  Alcotest.(check (list int)) "object 0 copies" [ 2; 6 ]
    (Placement.copies p ~obj:0);
  Alcotest.(check (list int)) "object 1 copies" [ 2 ]
    (Placement.copies p ~obj:1)

let suite =
  [
    Helpers.tc "owner places at heaviest processor" test_owner_places_at_heaviest;
    Helpers.tc "owner skips unused objects" test_owner_skips_unused;
    Helpers.tc "gravity leaf valid" test_gravity_leaf_valid;
    Helpers.tc "random leaf valid" test_random_leaf_valid;
    Helpers.tc "local search improves on owner" test_local_search_improves;
    Helpers.qt "all baselines produce valid leaf placements" Helpers.seed_arb
      prop_all_baselines_valid;
    Helpers.qt "local search never worse than owner" Helpers.seed_arb
      prop_local_search_never_worse;
    Helpers.qt ~count:60 "hill climb matches from-scratch climb"
      Helpers.seed_arb prop_hill_climb_matches_scratch;
    Helpers.tc "local search pinned for seed 42" test_local_search_pinned;
  ]

(* --- polish -------------------------------------------------------------- *)

let prop_polish_never_worse seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 23) in
  let ext = (Hbn_core.Strategy.run w).Hbn_core.Strategy.placement in
  let polished = Baselines.polish ~iterations:50 ~prng w ext in
  Placement.validate w polished = Ok ()
  && Placement.congestion w polished <= Placement.congestion w ext +. 1e-9

let test_polish_rejects_bus_placements () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  Workload.set_write w ~obj:0 1 3;
  let bad =
    [|
      {
        Placement.copies = [ 0 ];
        assigns = [ { Placement.leaf = 1; server = 0; reads = 0; writes = 3 } ];
      };
    |]
  in
  Alcotest.check_raises "bus placement"
    (Invalid_argument "Baselines.polish: placement must be leaf-only")
    (fun () -> ignore (Baselines.polish ~prng:(Prng.create 1) w bad))

let polish_suite =
  [
    Helpers.tc "polish rejects bus placements" test_polish_rejects_bus_placements;
    Helpers.qt ~count:40 "polish never worse than its input" Helpers.seed_arb
      prop_polish_never_worse;
  ]

let suite = suite @ polish_suite
