module Table = Hbn_util.Table

let test_render_shape () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 6 (List.length lines);
  (* All lines are equally wide. *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_padding_alignment () =
  let t = Table.create [ "k"; "v" ] in
  Table.add_row t [ "a"; "7" ];
  Table.add_row t [ "long"; "123" ];
  let out = Table.render t in
  Alcotest.(check bool) "left-aligned first column" true
    (String.length out > 0);
  (* The short key is padded on the right, the short value on the left. *)
  let has s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "right pad key" true (has out "| a    |");
  Alcotest.(check bool) "left pad value" true (has out "|   7 |")

let test_short_row_padding () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  let out = Table.render t in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_too_many_cells () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_separator () =
  let t = Table.create [ "a" ] in
  Table.add_row t [ "1" ];
  Table.add_sep t;
  Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  Alcotest.(check int) "line count with separator" 7 (List.length lines)

let test_fmt_float () =
  Alcotest.(check string) "digits" "1.500" (Table.fmt_float 1.5);
  Alcotest.(check string) "custom digits" "1.50" (Table.fmt_float ~digits:2 1.5);
  Alcotest.(check string) "nan" "-" (Table.fmt_float Float.nan)

let test_fmt_ratio () =
  Alcotest.(check string) "ratio" "2.000" (Table.fmt_ratio 4. 2.);
  Alcotest.(check string) "zero by zero" "-" (Table.fmt_ratio 0. 0.);
  Alcotest.(check string) "x by zero" "inf" (Table.fmt_ratio 3. 0.)

let suite =
  [
    Helpers.tc "render shape" test_render_shape;
    Helpers.tc "padding and alignment" test_padding_alignment;
    Helpers.tc "short rows padded" test_short_row_padding;
    Helpers.tc "too many cells rejected" test_too_many_cells;
    Helpers.tc "separator rows" test_separator;
    Helpers.tc "fmt_float" test_fmt_float;
    Helpers.tc "fmt_ratio" test_fmt_ratio;
  ]
