(* The domain-parallel execution layer: the runner itself, the
   bit-identical-at-any-job-count contract of the per-object pipeline,
   and thread safety of the observability registries it emits into. *)

module Exec = Hbn_exec.Exec
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Metrics = Hbn_obs.Metrics
module Sink = Hbn_obs.Sink

exception Boom

(* --- the runner ---------------------------------------------------------- *)

let test_sequential_map () =
  let out = Exec.map Exec.sequential 5 (fun i -> 10 * i) in
  Alcotest.(check (array int)) "results in order" [| 0; 10; 20; 30; 40 |] out;
  Alcotest.(check int) "jobs" 1 (Exec.jobs Exec.sequential)

let test_pool_map_order () =
  Exec.with_runner ~jobs:4 @@ fun exec ->
  Alcotest.(check int) "jobs" 4 (Exec.jobs exec);
  let out = Exec.map exec 257 (fun i -> i * i) in
  Alcotest.(check (array int))
    "results land in index order"
    (Array.init 257 (fun i -> i * i))
    out

let test_empty_map () =
  Exec.with_runner ~jobs:2 @@ fun exec ->
  Alcotest.(check (array int)) "n = 0" [||] (Exec.map exec 0 (fun i -> i))

let test_pool_reuse () =
  (* One runner, many maps: generations must not leak into each other. *)
  Exec.with_runner ~jobs:3 @@ fun exec ->
  for round = 1 to 20 do
    let out = Exec.map exec 64 (fun i -> (round * 1000) + i) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init 64 (fun i -> (round * 1000) + i))
      out
  done

let test_exception_propagates () =
  Exec.with_runner ~jobs:4 @@ fun exec ->
  Alcotest.check_raises "task exception re-raised" Boom (fun () ->
      ignore (Exec.map exec 100 (fun i -> if i = 57 then raise Boom else i)));
  (* The pool must survive a failed generation. *)
  let out = Exec.map exec 8 (fun i -> i + 1) in
  Alcotest.(check (array int))
    "usable after failure"
    (Array.init 8 (fun i -> i + 1))
    out

let test_iter_covers_every_index () =
  Exec.with_runner ~jobs:4 @@ fun exec ->
  let hits = Array.init 100 (fun _ -> Atomic.make 0) in
  Exec.iter exec 100 (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i a ->
      Alcotest.(check int) (Printf.sprintf "index %d hit once" i) 1
        (Atomic.get a))
    hits

let test_shutdown_idempotent () =
  let exec = Exec.create ~jobs:3 in
  Exec.shutdown exec;
  Exec.shutdown exec;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Exec.map: runner already shut down") (fun () ->
      ignore (Exec.map exec 4 (fun i -> i)))

(* --- lazy spawning -------------------------------------------------------- *)

let test_lazy_spawn_counts () =
  let exec = Exec.create ~jobs:4 in
  Alcotest.(check int) "no workers before first map" 0
    (Exec.spawned_workers exec);
  ignore (Exec.map exec 2 (fun i -> i));
  Alcotest.(check int) "2 tasks need at most 1 worker" 1
    (Exec.spawned_workers exec);
  ignore (Exec.map exec 1 (fun i -> i));
  Alcotest.(check int) "spawning never shrinks" 1 (Exec.spawned_workers exec);
  ignore (Exec.map exec 100 (fun i -> i));
  Alcotest.(check int) "wide map reaches the target" 3
    (Exec.spawned_workers exec);
  Exec.shutdown exec

let test_sequential_never_spawns () =
  Alcotest.(check int) "sequential" 0 (Exec.spawned_workers Exec.sequential);
  let exec = Exec.create ~jobs:1 in
  ignore (Exec.map exec 50 (fun i -> i));
  Alcotest.(check int) "jobs:1 is inline" 0 (Exec.spawned_workers exec)

(* --- chunked scheduling --------------------------------------------------- *)

let test_auto_chunk_formula () =
  List.iter
    (fun (jobs, n) ->
      Alcotest.(check int)
        (Printf.sprintf "auto_chunk ~jobs:%d %d" jobs n)
        (max 1 (n / (8 * jobs)))
        (Exec.auto_chunk ~jobs n))
    [ (1, 0); (1, 7); (1, 384); (2, 384); (4, 384); (4, 31); (3, 1000) ]

(* The chunked contract: any chunk size, any job count, same array. *)
let test_map_chunked_matches_map () =
  let n = 257 in
  let f i = (i * i) - (3 * i) in
  let expect = Array.init n f in
  List.iter
    (fun jobs ->
      Exec.with_runner ~jobs @@ fun exec ->
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
            expect
            (Exec.map_chunked ~chunk exec n f))
        [ 1; 2; 3; 5; 64; 1000 ];
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d auto chunk" jobs)
        expect
        (Exec.map_chunked exec n f))
    [ 1; 2; 4 ]

let test_map_chunked_rejects_bad_chunk () =
  Alcotest.check_raises "chunk = 0"
    (Invalid_argument "Exec: chunk must be at least 1") (fun () ->
      ignore (Exec.map_chunked ~chunk:0 Exec.sequential 4 (fun i -> i)))

let test_iter_chunked_covers_every_index () =
  Exec.with_runner ~jobs:4 @@ fun exec ->
  let hits = Array.init 100 (fun _ -> Atomic.make 0) in
  Exec.iter_chunked ~chunk:7 exec 100 (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i a ->
      Alcotest.(check int) (Printf.sprintf "index %d hit once" i) 1
        (Atomic.get a))
    hits

(* --- determinism of the pipeline ----------------------------------------- *)

let run_at ~jobs w =
  Exec.with_runner ~jobs @@ fun exec ->
  let res = Strategy.run ~exec w in
  let c = Placement.evaluate ~exec w res.Strategy.placement in
  (res, c)

(* The tentpole contract: every field of [Strategy.result] (placements of
   all three steps, copies with their renumbered ids, deletion/split/
   mapping stats) and the full evaluation (value, per-edge loads, per-bus
   loads, bottleneck) are bit-identical at any job count. Structural
   equality over the records covers all of it. *)
let prop_bit_identical_across_jobs seed =
  let _, w = Helpers.instance seed in
  let reference = run_at ~jobs:1 w in
  List.for_all (fun jobs -> run_at ~jobs w = reference) [ 2; 4 ]

let prop_congestion_matches_across_jobs seed =
  let _, w = Helpers.instance seed in
  let reference = Strategy.congestion w in
  List.for_all
    (fun jobs ->
      Exec.with_runner ~jobs (fun exec -> Strategy.congestion ~exec w)
      = reference)
    [ 2; 4 ]

(* --- concurrent emission into the obs layer ------------------------------ *)

let spawn_all n f = List.init n (fun d -> Domain.spawn (fun () -> f d))

let test_metrics_concurrent_incr () =
  let m = Metrics.create () in
  let domains = 4 and per_domain = 5_000 in
  spawn_all domains (fun _ ->
      for _ = 1 to per_domain do
        Metrics.incr m "shared";
        Metrics.observe m "lat" 1.0
      done)
  |> List.iter Domain.join;
  Alcotest.(check int) "no lost increments" (domains * per_domain)
    (Metrics.counter_value m "shared");
  match Metrics.histograms m with
  | [ ("lat", s) ] ->
    Alcotest.(check int) "no lost samples" (domains * per_domain)
      s.Metrics.count
  | _ -> Alcotest.fail "expected exactly the lat histogram"

let test_memory_sink_concurrent_emit () =
  let sink, read = Sink.memory () in
  let domains = 4 and per_domain = 2_000 in
  spawn_all domains (fun d ->
      for i = 1 to per_domain do
        sink.Sink.emit
          {
            Sink.name = Printf.sprintf "d%d" d;
            id = i;
            parent = 0;
            payload = Sink.Point;
            attrs = [];
          }
      done)
  |> List.iter Domain.join;
  Alcotest.(check int) "no lost events" (domains * per_domain)
    (List.length (read ()))

let test_timings_sink_concurrent_emit () =
  let sink, read = Sink.timings () in
  let domains = 3 and per_domain = 2_000 in
  spawn_all domains (fun _ ->
      for _ = 1 to per_domain do
        sink.Sink.emit
          {
            Sink.name = "phase";
            id = 1;
            parent = 0;
            payload = Sink.Span_end { duration_ns = 2L };
            attrs = [];
          }
      done)
  |> List.iter Domain.join;
  match read () with
  | [ ("phase", calls, total_ns) ] ->
    Alcotest.(check int) "no lost spans" (domains * per_domain) calls;
    Alcotest.(check int64)
      "durations sum" (Int64.of_int (2 * domains * per_domain)) total_ns
  | _ -> Alcotest.fail "expected exactly the phase row"

let suite =
  [
    Helpers.tc "sequential map" test_sequential_map;
    Helpers.tc "pool map keeps index order" test_pool_map_order;
    Helpers.tc "map of zero tasks" test_empty_map;
    Helpers.tc "pool survives reuse across generations" test_pool_reuse;
    Helpers.tc "task exceptions propagate" test_exception_propagates;
    Helpers.tc "iter covers every index once" test_iter_covers_every_index;
    Helpers.tc "shutdown is idempotent and final" test_shutdown_idempotent;
    Helpers.tc "workers spawn lazily with demand" test_lazy_spawn_counts;
    Helpers.tc "sequential runners never spawn" test_sequential_never_spawns;
    Helpers.tc "auto_chunk matches its formula" test_auto_chunk_formula;
    Helpers.tc "map_chunked identical to map at any jobs/chunk"
      test_map_chunked_matches_map;
    Helpers.tc "map_chunked rejects chunk < 1" test_map_chunked_rejects_bad_chunk;
    Helpers.tc "iter_chunked covers every index once"
      test_iter_chunked_covers_every_index;
    Helpers.qt ~count:40 "strategy + evaluate bit-identical at jobs 1/2/4"
      Helpers.seed_arb prop_bit_identical_across_jobs;
    Helpers.qt ~count:40 "Strategy.congestion identical at jobs 1/2/4"
      Helpers.seed_arb prop_congestion_matches_across_jobs;
    Helpers.tc "metrics survive concurrent incr/observe"
      test_metrics_concurrent_incr;
    Helpers.tc "memory sink survives concurrent emit"
      test_memory_sink_concurrent_emit;
    Helpers.tc "timings sink survives concurrent emit"
      test_timings_sink_concurrent_emit;
  ]
