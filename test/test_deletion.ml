module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Nibble = Hbn_nibble.Nibble
module Copy = Hbn_core.Copy
module Deletion = Hbn_core.Deletion
module Prng = Hbn_prng.Prng

let test_split_sizes_basic () =
  Alcotest.(check (list int)) "fits in one" [ 5 ]
    (Deletion.split_sizes ~served:5 ~kappa:3);
  Alcotest.(check (list int)) "exact double" [ 3; 3 ]
    (Deletion.split_sizes ~served:6 ~kappa:3);
  Alcotest.(check (list int)) "uneven" [ 4; 3 ]
    (Deletion.split_sizes ~served:7 ~kappa:3);
  Alcotest.(check (list int)) "many" [ 3; 3; 3; 3 ]
    (Deletion.split_sizes ~served:12 ~kappa:3)

let test_split_sizes_validation () =
  Alcotest.check_raises "kappa 0"
    (Invalid_argument "Deletion.split_sizes: kappa must be positive")
    (fun () -> ignore (Deletion.split_sizes ~served:5 ~kappa:0));
  Alcotest.check_raises "served < kappa"
    (Invalid_argument "Deletion.split_sizes: served < kappa") (fun () ->
      ignore (Deletion.split_sizes ~served:2 ~kappa:3))

let prop_split_sizes_invariants seed =
  let prng = Prng.create seed in
  let kappa = Prng.int_in prng 1 50 in
  let served = kappa + Prng.int prng 500 in
  let sizes = Deletion.split_sizes ~served ~kappa in
  List.fold_left ( + ) 0 sizes = served
  && List.for_all (fun s -> s >= kappa && s <= 2 * kappa) sizes

let make_workload t specs =
  let w = Workload.empty t ~objects:1 in
  List.iter
    (fun (leaf, r, wr) ->
      Workload.set_read w ~obj:0 leaf r;
      Workload.set_write w ~obj:0 leaf wr)
    specs;
  w

let run_deletion w =
  let cs = Nibble.place w ~obj:0 in
  Deletion.run w cs

let test_deletion_merges_into_parent () =
  (* Star, reads spread so nibble puts copies on every node, but each leaf
     copy serves fewer than kappa requests: the leaf copies are deleted and
     everything ends up merged upward. *)
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = make_workload t [ (1, 4, 1); (2, 4, 1); (3, 4, 1) ] in
  (* kappa = 3; each leaf weight 5 > 3 so nibble places copies on all
     leaves and the bus. Each leaf copy serves 5 in [3,6]: kept! *)
  let out = run_deletion w in
  Alcotest.(check int) "bus copy deleted (serves 0 < 3)" 1 out.Deletion.deletions;
  Alcotest.(check int) "three copies survive" 3 (List.length out.Deletion.copies);
  List.iter
    (fun c ->
      Alcotest.(check bool) "on a leaf" true (Tree.is_leaf t c.Copy.node))
    out.Deletion.copies

let test_deletion_starved_leaves () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  (* kappa = 8: every node's copy serves fewer than 8 except after
     accumulation at the gravity node. *)
  let w = make_workload t [ (1, 0, 4); (2, 0, 4); (3, 2, 0) ] in
  let out = run_deletion w in
  (* Nibble: total 10, kappa 8; only gravity holds a copy (subtree weights
     below 8)... then nothing to delete and it serves everything. *)
  Alcotest.(check int) "single copy" 1 (List.length out.Deletion.copies);
  let c = List.hd out.Deletion.copies in
  Alcotest.(check int) "serves all" 10 c.Copy.served

let test_root_deletion_reassigns_to_nearest () =
  (* A two-bus spine where the gravity bus's copy serves too little and
     must hand its requests to the nearest surviving copy. *)
  let t =
    Builders.caterpillar ~spine:2 ~leaves_per_bus:2 ~profile:(Builders.Uniform 1)
  in
  (* Nodes: bus0 {1,2}, bus3 {4,5}. Heavy writers on 1 and 2; light
     writer on 4. kappa = 9. *)
  let w = make_workload t [ (1, 3, 4); (2, 3, 4); (4, 0, 1) ] in
  let out = run_deletion w in
  (* Whatever the component shape, post-deletion accounting must hold. *)
  let total_served =
    List.fold_left (fun a c -> a + c.Copy.served) 0 out.Deletion.copies
  in
  Alcotest.(check int) "all requests served" 15 total_served;
  List.iter
    (fun c ->
      Alcotest.(check bool) "Obs 3.2 lower" true (c.Copy.served >= 9);
      Alcotest.(check bool) "Obs 3.2 upper" true (c.Copy.served <= 18))
    out.Deletion.copies

let test_splitting_creates_clones () =
  (* One leaf hammers an object with writes, others write a little:
     kappa large, the single surviving copy serves > 2*kappa? Build the
     opposite: tiny kappa, huge read volume concentrated on the gravity
     copy -> splitting. *)
  let t = Builders.star ~leaves:4 ~profile:(Builders.Uniform 1) in
  (* kappa = 1; leaf 1 reads 10 (gets its own copy: 10 > 1), others read
     1 each (no copies: 1 <= 1, wait 1 is not > 1). Bus subtree... *)
  let w = make_workload t [ (1, 10, 1); (2, 1, 0); (3, 1, 0); (4, 1, 0) ] in
  let out = run_deletion w in
  List.iter
    (fun c ->
      Alcotest.(check bool) "within [kappa, 2 kappa]" true
        (c.Copy.served >= 1 && c.Copy.served <= 2))
    out.Deletion.copies;
  Alcotest.(check bool) "clones were created" true (out.Deletion.splits > 0);
  (* Total served is preserved by splitting. *)
  let total =
    List.fold_left (fun a c -> a + c.Copy.served) 0 out.Deletion.copies
  in
  Alcotest.(check int) "total preserved" 14 total

let test_groups_never_split_reads_writes_incoherently () =
  let t = Builders.star ~leaves:4 ~profile:(Builders.Uniform 1) in
  let w = make_workload t [ (1, 10, 1); (2, 1, 0); (3, 1, 0); (4, 1, 0) ] in
  let out = run_deletion w in
  (* Every group fragment keeps nonnegative reads/writes and group totals
     over all copies match the workload. *)
  let reads = Array.make (Tree.n t) 0 and writes = Array.make (Tree.n t) 0 in
  List.iter
    (fun c ->
      List.iter
        (fun g ->
          Alcotest.(check bool) "nonneg" true
            (g.Nibble.reads >= 0 && g.Nibble.writes >= 0);
          reads.(g.Nibble.leaf) <- reads.(g.Nibble.leaf) + g.Nibble.reads;
          writes.(g.Nibble.leaf) <- writes.(g.Nibble.leaf) + g.Nibble.writes)
        c.Copy.groups)
    out.Deletion.copies;
  List.iter
    (fun leaf ->
      Alcotest.(check int) "reads covered" (Workload.reads w ~obj:0 leaf)
        reads.(leaf);
      Alcotest.(check int) "writes covered" (Workload.writes w ~obj:0 leaf)
        writes.(leaf))
    (Tree.leaves t)

let test_degenerate_inputs_rejected () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let w = make_workload t [ (1, 3, 0) ] in
  let cs = Nibble.place w ~obj:0 in
  Alcotest.check_raises "kappa 0"
    (Invalid_argument "Deletion.run: kappa must be positive") (fun () ->
      ignore (Deletion.run w cs))

(* Observation 3.2 on random instances, object by object. *)
let prop_observation_3_2 seed =
  let _, w = Helpers.instance seed in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    let kappa = Workload.write_contention w ~obj in
    if kappa > 0 && Workload.total_weight w ~obj > 0 then begin
      let cs = Nibble.place w ~obj in
      let out = Deletion.run w cs in
      List.iter
        (fun c ->
          if c.Copy.served < kappa || c.Copy.served > 2 * kappa then ok := false)
        out.Deletion.copies;
      (* Served totals are conserved. *)
      let total =
        List.fold_left (fun a c -> a + c.Copy.served) 0 out.Deletion.copies
      in
      if total <> Workload.total_weight w ~obj then ok := false
    end
  done;
  !ok

let prop_copies_subset_of_component seed =
  let _, w = Helpers.instance seed in
  let ok = ref true in
  for obj = 0 to Workload.num_objects w - 1 do
    if
      Workload.write_contention w ~obj > 0 && Workload.total_weight w ~obj > 0
    then begin
      let cs = Nibble.place w ~obj in
      let out = Deletion.run w cs in
      List.iter
        (fun c ->
          if not (List.mem c.Copy.node cs.Nibble.nodes) then ok := false)
        out.Deletion.copies
    end
  done;
  !ok

let suite =
  [
    Helpers.tc "split sizes basic" test_split_sizes_basic;
    Helpers.tc "split sizes validation" test_split_sizes_validation;
    Helpers.tc "deletion removes the starved bus copy" test_deletion_merges_into_parent;
    Helpers.tc "single gravity copy absorbs everything" test_deletion_starved_leaves;
    Helpers.tc "post-deletion accounting (Obs 3.2)" test_root_deletion_reassigns_to_nearest;
    Helpers.tc "splitting creates clones" test_splitting_creates_clones;
    Helpers.tc "group fragments stay coherent" test_groups_never_split_reads_writes_incoherently;
    Helpers.tc "kappa=0 rejected" test_degenerate_inputs_rejected;
    Helpers.qt "split sizes invariants" Helpers.seed_arb prop_split_sizes_invariants;
    Helpers.qt "Observation 3.2 on random instances" Helpers.seed_arb prop_observation_3_2;
    Helpers.qt "surviving copies stay in the component" Helpers.seed_arb prop_copies_subset_of_component;
  ]
