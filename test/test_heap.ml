module Heap = Hbn_util.Heap

let pop_all h =
  let rec go acc =
    match Heap.pop_min h with
    | None -> List.rev acc
    | Some (k, _) -> go (k :: acc)
  in
  go []

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "min of empty" true (Heap.min_elt h = None);
  Alcotest.(check bool) "pop of empty" true (Heap.pop_min h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h ~key:k (string_of_int k)) [ 5; 1; 9; 3; 7; 1 ];
  Alcotest.(check int) "length" 6 (Heap.length h);
  Alcotest.(check (list int)) "sorted pops" [ 1; 1; 3; 5; 7; 9 ] (pop_all h)

let test_min_elt_preserves () =
  let h = Heap.of_list [ (4, "d"); (2, "b"); (3, "c") ] in
  (match Heap.min_elt h with
  | Some (2, "b") -> ()
  | _ -> Alcotest.fail "min_elt wrong");
  Alcotest.(check int) "length unchanged" 3 (Heap.length h)

let test_fold_to_list () =
  let h = Heap.of_list [ (1, "x"); (2, "y") ] in
  let sum = Heap.fold (fun k _ acc -> acc + k) h 0 in
  Alcotest.(check int) "fold sum" 3 sum;
  Alcotest.(check int) "to_list length" 2 (List.length (Heap.to_list h))

let test_interleaved () =
  let h = Heap.create () in
  Heap.add h ~key:3 3;
  Heap.add h ~key:1 1;
  (match Heap.pop_min h with Some (1, 1) -> () | _ -> Alcotest.fail "pop 1");
  Heap.add h ~key:0 0;
  Heap.add h ~key:2 2;
  Alcotest.(check (list int)) "rest" [ 0; 2; 3 ] (pop_all h)

let test_mem () =
  let h = Heap.of_list [ (3, "a"); (1, "b") ] in
  Alcotest.(check bool) "present" true (Heap.mem h (fun v -> v = "a"));
  Alcotest.(check bool) "absent" false (Heap.mem h (fun v -> v = "zz"))

(* --- handles ------------------------------------------------------------- *)

let test_handle_rekey () =
  let h = Heap.create () in
  let ha = Heap.add_tracked h ~key:10 "a" in
  let hb = Heap.add_tracked h ~key:20 "b" in
  let hc = Heap.add_tracked h ~key:30 "c" in
  Alcotest.(check int) "key" 30 (Heap.handle_key hc);
  Alcotest.(check string) "value" "c" (Heap.handle_value hc);
  Alcotest.(check bool) "rekey up" true (Heap.rekey h hc 5);
  Alcotest.(check int) "new key" 5 (Heap.handle_key hc);
  Alcotest.(check bool) "rekey down" true (Heap.rekey h ha 99);
  Alcotest.(check bool) "rekey mid" true (Heap.rekey h hb 50);
  (match Heap.pop_min h with
  | Some (5, "c") -> ()
  | _ -> Alcotest.fail "re-keyed element should pop first");
  Alcotest.(check (list int)) "rest" [ 50; 99 ] (pop_all h)

let test_rekey_after_pop () =
  let h = Heap.create () in
  let ha = Heap.add_tracked h ~key:1 "a" in
  Heap.add h ~key:2 "b";
  Alcotest.(check bool) "in heap" true (Heap.in_heap ha);
  (match Heap.pop_min h with Some (1, "a") -> () | _ -> Alcotest.fail "pop");
  Alcotest.(check bool) "popped" false (Heap.in_heap ha);
  Alcotest.(check bool) "rekey of popped" false (Heap.rekey h ha 0);
  Alcotest.(check (list int)) "heap untouched" [ 2 ] (pop_all h)

let test_rekey_foreign_handle () =
  let h1 = Heap.create () and h2 = Heap.create () in
  let ha = Heap.add_tracked h1 ~key:1 "a" in
  Heap.add h2 ~key:1 "b";
  Alcotest.check_raises "foreign handle"
    (Invalid_argument "Heap.rekey: handle belongs to a different heap")
    (fun () -> ignore (Heap.rekey h2 ha 5))

let prop_handle_rekey_random seed =
  (* Random re-keys through handles against a model array, interleaved
     with pops. Popped
     elements must report [in_heap = false], reject further re-keys, and
     come out with the key the model last assigned them. *)
  let prng = Hbn_prng.Prng.create (seed + 29) in
  let n = Hbn_prng.Prng.int_in prng 1 60 in
  let keys = Array.init n (fun _ -> Hbn_prng.Prng.int_in prng (-40) 40) in
  let live = Array.make n true in
  let h = Heap.create () in
  let handles = Array.mapi (fun i k -> Heap.add_tracked h ~key:k i) keys in
  let ok = ref true in
  for _ = 1 to 2 * n do
    let v = Hbn_prng.Prng.int prng n in
    let k = Hbn_prng.Prng.int_in prng (-40) 40 in
    ok :=
      !ok
      && Heap.in_heap handles.(v) = live.(v)
      && Heap.rekey h handles.(v) k = live.(v);
    if live.(v) then keys.(v) <- k;
    if Hbn_prng.Prng.bool prng then
      match Heap.pop_min h with
      | None -> ()
      | Some (pk, i) ->
        ok := !ok && live.(i) && pk = keys.(i);
        live.(i) <- false
  done;
  let remaining =
    Array.to_list keys
    |> List.filteri (fun i _ -> live.(i))
    |> List.sort compare
  in
  !ok && pop_all h = remaining

let prop_sorted_pops seed =
  let prng = Hbn_prng.Prng.create seed in
  let n = Hbn_prng.Prng.int_in prng 1 200 in
  let keys = List.init n (fun _ -> Hbn_prng.Prng.int_in prng (-50) 50) in
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h ~key:k k) keys;
  let popped = pop_all h in
  popped = List.sort compare keys

let prop_growth seed =
  (* Exercise resizing across the initial capacity boundary. *)
  let n = 4 + (seed mod 60) in
  let h = Heap.create () in
  for i = n downto 1 do
    Heap.add h ~key:i i
  done;
  Heap.length h = n && pop_all h = List.init n (fun i -> i + 1)

let suite =
  [
    Helpers.tc "empty heap" test_empty;
    Helpers.tc "pops come out sorted" test_ordering;
    Helpers.tc "min_elt does not remove" test_min_elt_preserves;
    Helpers.tc "mem probes without re-keying" test_mem;
    Helpers.tc "handle rekey re-sorts" test_handle_rekey;
    Helpers.tc "rekey after pop returns false" test_rekey_after_pop;
    Helpers.tc "rekey rejects foreign handles" test_rekey_foreign_handle;
    Helpers.qt ~count:100 "random handle re-keying matches model"
      Helpers.seed_arb prop_handle_rekey_random;
    Helpers.tc "fold and to_list" test_fold_to_list;
    Helpers.tc "interleaved add/pop" test_interleaved;
    Helpers.qt "random keys pop sorted" Helpers.seed_arb prop_sorted_pops;
    Helpers.qt "capacity growth" Helpers.seed_arb prop_growth;
  ]
