(* Shared utilities for the test suite: deterministic random instance
   generation (seed-driven so qcheck shrinking stays meaningful) and
   alcotest/qcheck glue. *)

module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Prng = Hbn_prng.Prng
module Workload = Hbn_workload.Workload
module Generators = Hbn_workload.Generators

let tc name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

let qt ?(count = 50) name gen prop =
  (* A fixed random state keeps the suite deterministic run to run. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xBADC0DE |])
    (QCheck.Test.make ~count ~name gen prop)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let profile_of prng =
  match Prng.int prng 3 with
  | 0 -> Builders.Uniform (Prng.int_in prng 1 4)
  | 1 -> Builders.Scaled_by_subtree (Prng.int_in prng 1 2)
  | _ -> Builders.Uniform 1

(* A random hierarchical bus network with 3..~40 nodes. *)
let random_tree prng =
  let profile = profile_of prng in
  match Prng.int prng 5 with
  | 0 -> Builders.star ~leaves:(Prng.int_in prng 2 8) ~profile
  | 1 ->
    Builders.balanced ~arity:(Prng.int_in prng 2 3)
      ~height:(Prng.int_in prng 1 3) ~profile
  | 2 ->
    let spine = Prng.int_in prng 1 5 in
    let min_leaves = if spine = 1 then 2 else 1 in
    Builders.caterpillar ~spine ~leaves_per_bus:(Prng.int_in prng min_leaves 3)
      ~profile
  | 3 ->
    Builders.random ~prng ~buses:(Prng.int_in prng 1 6)
      ~leaves:(Prng.int_in prng 2 10) ~profile
  | _ ->
    Builders.of_ring
      (Builders.sample_ring_of_rings ~prng ~depth:2 ~fanout:2 ~procs_per_ring:3)

(* A small tree suitable for brute-force comparison (<= 5 processors). *)
let small_tree prng =
  let profile = Builders.Uniform (Prng.int_in prng 1 3) in
  match Prng.int prng 3 with
  | 0 -> Builders.star ~leaves:(Prng.int_in prng 2 4) ~profile
  | 1 -> Builders.caterpillar ~spine:2 ~leaves_per_bus:2 ~profile
  | _ -> Builders.random ~prng ~buses:2 ~leaves:(Prng.int_in prng 2 4) ~profile

let random_workload prng tree =
  let objects = Prng.int_in prng 1 4 in
  match Prng.int prng 5 with
  | 0 -> Generators.uniform ~prng tree ~objects ~max_rate:(Prng.int_in prng 1 9)
  | 1 ->
    Generators.zipf_popularity ~prng tree ~objects
      ~requests_per_leaf:(Prng.int_in prng 1 12) ~exponent:1.1
      ~write_fraction:0.3
  | 2 ->
    Generators.hotspot ~prng tree ~objects ~writers_per_object:2
      ~write_rate:(Prng.int_in prng 1 6) ~read_rate:5
  | 3 ->
    Generators.producer_consumer ~prng tree ~objects ~consumers:3
      ~rate:(Prng.int_in prng 1 5)
  | _ ->
    Generators.local_with_background ~prng tree ~objects ~local_rate:20
      ~background_rate:2

(* A sparse workload for brute-force comparison: few requesting leaves. *)
let small_workload prng tree =
  let objects = Prng.int_in prng 1 2 in
  let w = Workload.empty tree ~objects in
  let leaves = Array.of_list (Tree.leaves tree) in
  for obj = 0 to objects - 1 do
    let k = Prng.int_in prng 1 (min 4 (Array.length leaves)) in
    let order = Array.copy leaves in
    Prng.shuffle prng order;
    for i = 0 to k - 1 do
      Workload.set_read w ~obj order.(i) (Prng.int_in prng 0 4);
      Workload.set_write w ~obj order.(i) (Prng.int_in prng 0 4)
    done
  done;
  w

let instance seed =
  let prng = Prng.create seed in
  let tree = random_tree prng in
  let w = random_workload prng tree in
  (tree, w)

let small_instance seed =
  let prng = Prng.create (seed + 77) in
  let tree = small_tree prng in
  let w = small_workload prng tree in
  (tree, w)
