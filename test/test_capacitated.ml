module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Strategy = Hbn_core.Strategy
module Capacitated = Hbn_core.Capacitated
module Prng = Hbn_prng.Prng

let star_many_objects () =
  let t = Builders.star ~leaves:4 ~profile:(Builders.Uniform 2) in
  let w = Workload.empty t ~objects:6 in
  (* All objects live on processor 1 (it does all the writing). *)
  for obj = 0 to 5 do
    Workload.set_write w ~obj 1 10;
    Workload.set_read w ~obj 2 1
  done;
  (t, w)

let test_unconstrained_noop () =
  let t, w = star_many_objects () in
  let res = Strategy.run w in
  let out = Capacitated.apply w ~capacity:(fun _ -> 100) res.Strategy.placement in
  Alcotest.(check int) "no moves" 0
    (out.Capacitated.relocations + out.Capacitated.merges);
  Alcotest.(check bool) "same loads" true
    (Placement.edge_loads w out.Capacitated.placement
    = Placement.edge_loads w res.Strategy.placement);
  Alcotest.(check bool) "respects" true
    (Capacitated.respects t ~capacity:(fun _ -> 100) out.Capacitated.placement)

let test_eviction_respects_capacity () =
  let t, w = star_many_objects () in
  let res = Strategy.run w in
  (* Everything piles onto processor 1; capacity 2 forces 4 objects out. *)
  let cap _ = 2 in
  let out = Capacitated.apply w ~capacity:cap res.Strategy.placement in
  Alcotest.(check bool) "respects capacity" true
    (Capacitated.respects t ~capacity:cap out.Capacitated.placement);
  Helpers.check_ok "still covers workload"
    (Placement.validate w out.Capacitated.placement);
  Alcotest.(check bool) "moved something" true
    (out.Capacitated.relocations + out.Capacitated.merges > 0);
  Alcotest.(check bool) "leaf only" true
    (Placement.leaf_only t out.Capacitated.placement)

let test_eviction_prefers_light_copies () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 2) in
  let w = Workload.empty t ~objects:2 in
  (* Object 0 heavy on processor 1, object 1 light on processor 1. *)
  Workload.set_write w ~obj:0 1 50;
  Workload.set_write w ~obj:1 1 2;
  Workload.set_read w ~obj:1 2 1;
  let res = Strategy.run w in
  ignore t;
  let cap v = if v = 1 then 1 else 5 in
  let out = Capacitated.apply w ~capacity:cap res.Strategy.placement in
  (* The heavy object stays home; the light one moves. *)
  Alcotest.(check bool) "heavy object kept" true
    (List.mem 1 (Placement.copies out.Capacitated.placement ~obj:0));
  Alcotest.(check bool) "light object evicted" true
    (not (List.mem 1 (Placement.copies out.Capacitated.placement ~obj:1)))

let test_merge_preferred_over_move () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 2) in
  ignore t;
  let w = Workload.empty t ~objects:2 in
  (* Object 0 replicated on processors 1 and 2 (reads both sides, writes
     enough to matter); object 1 pins processor 1's slot. *)
  Workload.set_read w ~obj:0 1 9;
  Workload.set_read w ~obj:0 2 9;
  Workload.set_write w ~obj:0 1 2;
  Workload.set_write w ~obj:1 1 30;
  let res = Strategy.run w in
  if
    List.mem 1 (Placement.copies res.Strategy.placement ~obj:0)
    && List.mem 2 (Placement.copies res.Strategy.placement ~obj:0)
  then begin
    let cap v = if v = 1 then 1 else 5 in
    let out = Capacitated.apply w ~capacity:cap res.Strategy.placement in
    (* Object 0's copy on 1 merges into its existing copy on 2. *)
    Alcotest.(check int) "merged" 1 out.Capacitated.merges;
    Alcotest.(check (list int)) "single copy left" [ 2 ]
      (Placement.copies out.Capacitated.placement ~obj:0)
  end

let test_infeasible () =
  let t, w = star_many_objects () in
  ignore t;
  let res = Strategy.run w in
  (* 6 objects, total capacity 4. *)
  (try
     ignore (Capacitated.apply w ~capacity:(fun _ -> 1) res.Strategy.placement);
     Alcotest.fail "expected Infeasible"
   with Capacitated.Infeasible _ -> ())

let test_bus_placement_rejected () =
  let t, w = star_many_objects () in
  let bad =
    [|
      {
        Placement.copies = [ 0 ];
        assigns =
          [
            { Placement.leaf = 1; server = 0; reads = 0; writes = 10 };
            { Placement.leaf = 2; server = 0; reads = 1; writes = 0 };
          ];
      };
    |]
  in
  ignore t;
  (try
     ignore (Capacitated.apply w ~capacity:(fun _ -> 1) bad);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let prop_capacity_respected_and_valid seed =
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  let prng = Prng.create (seed + 3) in
  let cap_base = Prng.int_in prng 1 3 in
  let cap _ = cap_base in
  (* Feasibility: enough slots overall and per object a free leaf. *)
  let active =
    List.length
      (List.filter
         (fun obj -> Workload.requesting_leaves w ~obj <> [])
         (List.init (Workload.num_objects w) Fun.id))
  in
  if active > cap_base * Tree.num_leaves t then true
  else
    match Capacitated.run w ~capacity:cap with
    | out ->
      Capacitated.respects t ~capacity:cap out.Capacitated.placement
      && Placement.validate w out.Capacitated.placement = Ok ()
      && Placement.leaf_only t out.Capacitated.placement
    | exception Capacitated.Infeasible _ ->
      (* Greedy packing may fail even when feasible in principle; accept
         only when tight. *)
      active > (cap_base * Tree.num_leaves t) / 2

let prop_unconstrained_is_identity seed =
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  let out =
    Capacitated.apply w ~capacity:(fun _ -> max_int) res.Strategy.placement
  in
  out.Capacitated.relocations = 0 && out.Capacitated.merges = 0

let suite =
  [
    Helpers.tc "unconstrained capacities are a no-op" test_unconstrained_noop;
    Helpers.tc "eviction respects capacity" test_eviction_respects_capacity;
    Helpers.tc "light copies evicted first" test_eviction_prefers_light_copies;
    Helpers.tc "merge preferred when a copy exists nearby" test_merge_preferred_over_move;
    Helpers.tc "infeasible capacities detected" test_infeasible;
    Helpers.tc "bus placements rejected" test_bus_placement_rejected;
    Helpers.qt ~count:60 "capacity respected and placement valid"
      Helpers.seed_arb prop_capacity_respected_and_valid;
    Helpers.qt "unconstrained pass is identity" Helpers.seed_arb
      prop_unconstrained_is_identity;
  ]
