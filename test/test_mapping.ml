module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Copy = Hbn_core.Copy
module Mapping = Hbn_core.Mapping
module Strategy = Hbn_core.Strategy
module Prng = Hbn_prng.Prng

let test_basic_loads_directions () =
  (* Balanced binary tree of height 2; a copy on the root serving a leaf
     loads only downward directions; a copy on a leaf serving a leaf in
     the other subtree loads up on its side and down on the other. *)
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  let r = Tree.rooting t in
  let leaves = Tree.leaves t in
  let l0 = List.nth leaves 0 and l3 = List.nth leaves 3 in
  let c_root =
    Copy.make ~id:0 ~obj:0 ~kappa:1 ~node:r.Tree.root
      [ { Nibble.leaf = l0; reads = 2; writes = 1 } ]
  in
  let up, down = Mapping.basic_loads t [ c_root ] in
  Alcotest.(check int) "no upward load" 0 (Array.fold_left ( + ) 0 up);
  Alcotest.(check int) "downward load on the two path edges" 6
    (Array.fold_left ( + ) 0 down);
  let c_leaf =
    Copy.make ~id:1 ~obj:0 ~kappa:1 ~node:l0
      [ { Nibble.leaf = l3; reads = 1; writes = 0 } ]
  in
  let up2, down2 = Mapping.basic_loads t [ c_leaf ] in
  Alcotest.(check int) "two upward hops" 2 (Array.fold_left ( + ) 0 up2);
  Alcotest.(check int) "two downward hops" 2 (Array.fold_left ( + ) 0 down2)

let test_self_serving_copy_no_load () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let leaf = List.hd (Tree.leaves t) in
  let c =
    Copy.make ~id:0 ~obj:0 ~kappa:1 ~node:leaf
      [ { Nibble.leaf; reads = 5; writes = 5 } ]
  in
  let up, down = Mapping.basic_loads t [ c ] in
  Alcotest.(check int) "no load" 0
    (Array.fold_left ( + ) 0 up + Array.fold_left ( + ) 0 down)

(* Run the full strategy with verification on: Invariant 4.2 is checked
   after every round internally. *)
let prop_invariant_throughout seed =
  let _, w = Helpers.instance seed in
  match Strategy.run ~verify:true w with
  | _ -> true
  | exception Failure msg -> QCheck.Test.fail_report msg

let prop_movable_end_on_leaves seed =
  let _, w = Helpers.instance seed in
  let tree = Workload.tree w in
  let res = Strategy.run w in
  List.for_all (fun c -> Tree.is_leaf tree c.Copy.node) res.Strategy.copies

let prop_observation_3_3 seed =
  (* After the run: on every downward edge either L_map <= L_acc + tau, or
     L_map = 0 and L_acc < -tau (Observation 3.3). *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  match res.Strategy.mapping with
  | None -> true
  | Some stats ->
    let st = stats.Mapping.final in
    let tau = stats.Mapping.tau_max in
    let ok = ref true in
    Array.iteri
      (fun e lmap ->
        let lacc = st.Mapping.lacc_down.(e) in
        if not (lmap <= lacc + tau || (lmap = 0 && lacc < -tau)) then
          ok := false)
      st.Mapping.lmap_down;
    !ok

let prop_upward_lmap_matches_lacc seed =
  (* After the upwards phase the mapping load on every upward edge equals
     its acceptable load (the adjustment enforces it); this persists since
     the downwards phase never touches upward edges. *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  match res.Strategy.mapping with
  | None -> true
  | Some stats ->
    let st = stats.Mapping.final in
    let ok = ref true in
    let r = st.Mapping.rooted in
    Array.iteri
      (fun v p ->
        if p >= 0 then begin
          let e = r.Tree.parent_edge.(v) in
          if st.Mapping.lmap_up.(e) <> st.Mapping.lacc_up.(e) then ok := false
        end)
      r.Tree.parent;
    !ok

let prop_lemma_4_4 seed =
  (* L_acc(up) + L_acc(down) <= 2 L_nib(e) for every edge, at the end (the
     acceptable loads only ever decrease from 2 L_b). *)
  let _, w = Helpers.instance seed in
  let res = Strategy.run w in
  match res.Strategy.mapping with
  | None -> true
  | Some stats ->
    let st = stats.Mapping.final in
    let nib = Placement.edge_loads w res.Strategy.nibble in
    let ok = ref true in
    Array.iteri
      (fun e l ->
        if st.Mapping.lacc_up.(e) + st.Mapping.lacc_down.(e) > 2 * l then
          ok := false)
      nib;
    !ok

let test_check_invariant_detects_corruption () =
  let _, w = Helpers.instance 4242 in
  let res = Strategy.run w in
  match res.Strategy.mapping with
  | None -> ()  (* nothing mapped; nothing to corrupt *)
  | Some stats ->
    let st = stats.Mapping.final in
    Helpers.check_ok "final state passes" (Mapping.check_invariant st);
    (* Corrupt: pretend a node still holds a heavy copy. *)
    let tree = st.Mapping.tree in
    let bus = List.hd (Tree.buses tree) in
    let heavy =
      Copy.make ~id:999 ~obj:0 ~kappa:1000000 ~node:bus
        [ { Nibble.leaf = List.hd (Tree.leaves tree); reads = 1000000; writes = 0 } ]
    in
    st.Mapping.node_copies.(bus) <- [ heavy ];
    (match Mapping.check_invariant st with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "corruption not detected");
    st.Mapping.node_copies.(bus) <- []

let test_failure_injection () =
  (* Shrinking every acceptable load must eventually break the free-edge
     guarantee or the invariant: shows the checks are not vacuous. *)
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  List.iter
    (fun leaf ->
      Workload.set_read w ~obj:0 leaf 3;
      Workload.set_write w ~obj:0 leaf 2)
    (Tree.leaves t);
  (* The mapping mutates copy positions, so each run rebuilds Step 2's
     output from scratch. *)
  let fresh () =
    let cs = Nibble.place w ~obj:0 in
    let out = Hbn_core.Deletion.run w cs in
    let movable =
      List.filter
        (fun c -> not (Tree.is_leaf t c.Copy.node))
        out.Hbn_core.Deletion.copies
    in
    if movable = [] then Alcotest.fail "test needs bus copies to move";
    let basic_up, basic_down =
      Mapping.basic_loads t out.Hbn_core.Deletion.copies
    in
    (basic_up, basic_down, movable)
  in
  (* Uncorrupted run succeeds. *)
  let basic_up, basic_down, movable = fresh () in
  ignore (Mapping.run ~verify:true t ~basic_up ~basic_down ~movable);
  (* Heavy corruption: all acceptable loads very negative. *)
  let basic_up, basic_down, movable = fresh () in
  let failed =
    try
      ignore
        (Mapping.run ~inject_lacc_error:1_000_000 t ~basic_up ~basic_down
           ~movable);
      false
    with Mapping.No_free_edge _ | Failure _ -> true
  in
  Alcotest.(check bool) "corrupted bookkeeping fails" true failed

let test_papers_printed_invariant_is_too_strong () =
  (* DESIGN.md erratum: find an instance where the paper's literal
     "+ 2 Σ s(c)" form is violated at some point of the mapping while the
     corrected "+ Σ (s + κ)" form (checked by verify) always holds. *)
  let printed_form_violated = ref false in
  let check_printed (st : Mapping.state) =
    let r = st.Mapping.rooted in
    List.iter
      (fun v ->
        let out = ref 0 and inc = ref 0 in
        if v <> r.Tree.root then begin
          let e = r.Tree.parent_edge.(v) in
          out := !out + st.Mapping.lacc_up.(e) - st.Mapping.lmap_up.(e);
          inc := !inc + st.Mapping.lacc_down.(e) - st.Mapping.lmap_down.(e)
        end;
        Array.iter
          (fun c ->
            let e = r.Tree.parent_edge.(c) in
            out := !out + st.Mapping.lacc_down.(e) - st.Mapping.lmap_down.(e);
            inc := !inc + st.Mapping.lacc_up.(e) - st.Mapping.lmap_up.(e))
          r.Tree.children.(v);
        let served =
          List.fold_left (fun a c -> a + c.Copy.served) 0
            st.Mapping.node_copies.(v)
        in
        if !out < !inc + (2 * served) then printed_form_violated := true)
      (Tree.buses st.Mapping.tree)
  in
  let seed = ref 0 in
  while (not !printed_form_violated) && !seed < 200 do
    let _, w = Helpers.instance !seed in
    ignore (Strategy.run ~verify:true ~on_mapping_round:check_printed w);
    incr seed
  done;
  Alcotest.(check bool)
    "printed invariant violated on some instance while corrected form held"
    true !printed_form_violated

let test_empty_movable_is_noop () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let stats =
    Mapping.run t ~basic_up:[| 0; 0 |] ~basic_down:[| 0; 0 |] ~movable:[]
  in
  Alcotest.(check int) "no moves" 0
    (stats.Mapping.moves_up + stats.Mapping.moves_down);
  Alcotest.(check int) "tau 0" 0 stats.Mapping.tau_max

let suite =
  [
    Helpers.tc "basic load directions" test_basic_loads_directions;
    Helpers.tc "self-serving copies add no load" test_self_serving_copy_no_load;
    Helpers.tc "check_invariant detects corruption" test_check_invariant_detects_corruption;
    Helpers.tc "failure injection breaks the run" test_failure_injection;
    Helpers.slow "paper's printed Invariant 4.2 is too strong (erratum)"
      test_papers_printed_invariant_is_too_strong;
    Helpers.tc "empty movable set is a no-op" test_empty_movable_is_noop;
    Helpers.qt "Invariant 4.2 holds throughout" Helpers.seed_arb prop_invariant_throughout;
    Helpers.qt "all movable copies end on processors" Helpers.seed_arb prop_movable_end_on_leaves;
    Helpers.qt "Observation 3.3" Helpers.seed_arb prop_observation_3_3;
    Helpers.qt "upward L_map = L_acc after adjustment" Helpers.seed_arb prop_upward_lmap_matches_lacc;
    Helpers.qt "Lemma 4.4 acceptable-load bound" Helpers.seed_arb prop_lemma_4_4;
  ]
