module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Strategy = Hbn_core.Strategy
module Dist = Hbn_dist.Dist
module Prng = Hbn_prng.Prng

let test_nibble_messages_formula () =
  let _, w = Helpers.instance 55 in
  let t = Workload.tree w in
  let _, stats = Dist.nibble_rounds w in
  Alcotest.(check int) "4 sweeps of |X| (n-1) messages"
    (4 * Workload.num_objects w * (Tree.n t - 1))
    stats.Dist.messages

let test_rounds_grow_with_pipeline () =
  (* Doubling the object count adds ~|X| rounds (pipelining), not a
     multiplicative blowup. *)
  let t = Builders.balanced ~arity:2 ~height:3 ~profile:(Builders.Uniform 1) in
  let prng = Prng.create 5 in
  let w1 = Hbn_workload.Generators.uniform ~prng t ~objects:4 ~max_rate:5 in
  let w2 = Hbn_workload.Generators.uniform ~prng t ~objects:8 ~max_rate:5 in
  let _, s1 = Dist.nibble_rounds w1 in
  let _, s2 = Dist.nibble_rounds w2 in
  Alcotest.(check bool) "pipelined" true
    (s2.Dist.rounds - s1.Dist.rounds <= 4 * 4 + 4)

let prop_nibble_sets_match_sequential seed =
  let _, w = Helpers.instance seed in
  let per_object, _ = Dist.nibble_rounds w in
  let sets = Nibble.place_all w in
  Array.for_all2 (fun nodes cs -> nodes = cs.Nibble.nodes) per_object sets

let prop_strategy_placement_matches_sequential seed =
  let _, w = Helpers.instance seed in
  let placement, _ = Dist.strategy_rounds w in
  let res = Strategy.run w in
  Placement.edge_loads w placement = Placement.edge_loads w res.Strategy.placement

let prop_rounds_bounded seed =
  (* Rounds are O(|X| + height): generous constant-checked bound. *)
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  let _, stats = Dist.strategy_rounds w in
  let x = Workload.num_objects w and h = Tree.height t in
  stats.Dist.rounds <= (5 * (x + h)) + 10

let prop_work_bounded seed =
  (* max node work is O(|X| * degree + copies * log degree), well within
     the paper's O(|X| |V| log degree) budget. *)
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  let _, stats = Dist.strategy_rounds w in
  let x = Workload.num_objects w in
  let d = Tree.max_degree t in
  let log_d =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
    go 0 d
  in
  stats.Dist.max_node_work <= (4 * x * d) + (x * Tree.n t * max 1 log_d)

let suite =
  [
    Helpers.tc "nibble message count formula" test_nibble_messages_formula;
    Helpers.tc "rounds pipeline over objects" test_rounds_grow_with_pipeline;
    Helpers.qt "distributed nibble = sequential" Helpers.seed_arb
      prop_nibble_sets_match_sequential;
    Helpers.qt "distributed strategy = sequential" Helpers.seed_arb
      prop_strategy_placement_matches_sequential;
    Helpers.qt "round count O(|X| + height)" Helpers.seed_arb prop_rounds_bounded;
    Helpers.qt "node work within the paper bound" Helpers.seed_arb prop_work_bounded;
  ]
