(* Tests for the observability layer: span nesting, metric aggregation,
   JSONL round-tripping, and — crucially — that tracing is purely an
   observer: the strategy computes byte-identical results with tracing
   on, off, or absent, and no sink code runs while disabled. *)

module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink
module Metrics = Hbn_obs.Metrics
module Strategy = Hbn_core.Strategy

let events_of f =
  let sink, read = Sink.memory () in
  Trace.with_sink sink f;
  read ()

let name_of (ev : Sink.event) = ev.Sink.name

let test_span_nesting () =
  let events =
    events_of (fun () ->
        let a = Trace.span "a" in
        let b = Trace.span "b" ~attrs:[ ("k", Sink.Int 1) ] in
        Trace.event "inside-b";
        Trace.finish b;
        let c = Trace.span "c" in
        Trace.finish c;
        Trace.finish a ~attrs:[ ("done", Sink.Bool true) ])
  in
  Alcotest.(check (list string))
    "emission order"
    [ "a"; "b"; "inside-b"; "b"; "c"; "c"; "a" ]
    (List.map name_of events);
  let find name payload_pred =
    List.find
      (fun (ev : Sink.event) ->
        ev.Sink.name = name && payload_pred ev.Sink.payload)
      events
  in
  let is_start = function Sink.Span_start -> true | _ -> false in
  let is_end = function Sink.Span_end _ -> true | _ -> false in
  let a_start = find "a" is_start
  and b_start = find "b" is_start
  and c_start = find "c" is_start
  and point = find "inside-b" (fun p -> p = Sink.Point) in
  Alcotest.(check int) "a is a root span" 0 a_start.Sink.parent;
  Alcotest.(check int) "b nests in a" a_start.Sink.id b_start.Sink.parent;
  Alcotest.(check int) "c nests in a" a_start.Sink.id c_start.Sink.parent;
  Alcotest.(check int) "point nests in b" b_start.Sink.id point.Sink.parent;
  List.iter
    (fun name ->
      match (find name is_end).Sink.payload with
      | Sink.Span_end { duration_ns } ->
        Alcotest.(check bool) (name ^ " duration >= 0") true (duration_ns >= 0L)
      | _ -> assert false)
    [ "a"; "b"; "c" ]

let test_counter_aggregation () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Metrics.incr ~by:41 m "x";
  Metrics.incr ~by:7 m "y";
  Alcotest.(check int) "x total" 42 (Metrics.counter_value m "x");
  Alcotest.(check int) "y total" 7 (Metrics.counter_value m "y");
  Alcotest.(check int) "absent is 0" 0 (Metrics.counter_value m "z");
  Alcotest.(check (list (pair string int)))
    "sorted snapshot" [ ("x", 42); ("y", 7) ] (Metrics.counters m);
  Metrics.set_gauge m "g" 1.5;
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauge keeps last" [ ("g", 2.5) ] (Metrics.gauges m);
  List.iter (fun v -> Metrics.observe m "h" v) [ 1.; 2.; 3.; 4. ];
  (match Metrics.histograms m with
  | [ ("h", s) ] ->
    Alcotest.(check int) "h count" 4 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "h mean" 2.5 s.Metrics.mean;
    Alcotest.(check (float 1e-9)) "h min" 1. s.Metrics.min;
    Alcotest.(check (float 1e-9)) "h max" 4. s.Metrics.max
  | _ -> Alcotest.fail "expected exactly one histogram");
  Metrics.reset m;
  Alcotest.(check (list (pair string int))) "reset" [] (Metrics.counters m)

(* Histogram memory is a 512-slot reservoir: quantiles are exact up to
   the capacity, and count/mean/min/max stay exact (and the summary well
   inside the observed range) far beyond it. *)
let test_histogram_reservoir () =
  let m = Metrics.create () in
  for i = 1 to 512 do
    Metrics.observe m "h" (float_of_int i)
  done;
  (match Metrics.histograms m with
  | [ ("h", s) ] ->
    Alcotest.(check int) "count exact at capacity" 512 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "median exact at capacity" 256.5 s.Metrics.p50
  | _ -> Alcotest.fail "expected one histogram");
  for i = 513 to 20_000 do
    Metrics.observe m "h" (float_of_int i)
  done;
  match Metrics.histograms m with
  | [ ("h", s) ] ->
    Alcotest.(check int) "count exact beyond capacity" 20_000 s.Metrics.count;
    Alcotest.(check (float 1e-6)) "mean exact beyond capacity" 10_000.5
      s.Metrics.mean;
    Alcotest.(check (float 1e-9)) "min exact" 1. s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max exact" 20_000. s.Metrics.max;
    Alcotest.(check bool) "p50 sampled within range" true
      (s.Metrics.p50 >= 1. && s.Metrics.p50 <= 20_000.);
    Alcotest.(check bool) "p95 above p50" true (s.Metrics.p95 >= s.Metrics.p50)
  | _ -> Alcotest.fail "expected one histogram"

(* with_attrs decorates every event on the emitting side; explicit
   attributes win on duplicate keys because they come first. *)
let test_with_attrs_tags_events () =
  let mem, read = Sink.memory () in
  let tagged = Sink.with_attrs (fun () -> [ ("domain", Sink.Int 3) ]) mem in
  Trace.with_sink tagged (fun () ->
      Trace.event "plain";
      Trace.event "clash" ~attrs:[ ("domain", Sink.Int 9) ]);
  match read () with
  | [ plain; clash ] ->
    Alcotest.(check bool) "tag appended" true
      (List.mem ("domain", Sink.Int 3) plain.Sink.attrs);
    Alcotest.(check bool) "explicit attr first" true
      (List.assoc "domain" clash.Sink.attrs = Sink.Int 9)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_trace_count_feeds_global () =
  Metrics.reset Metrics.global;
  let sink, _ = Sink.memory () in
  Trace.with_sink sink (fun () ->
      Trace.count "c";
      Trace.count ~by:4 "c";
      Trace.gauge "g" 3.25);
  Alcotest.(check int) "aggregated" 5 (Metrics.counter_value Metrics.global "c");
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauge recorded" [ ("g", 3.25) ] (Metrics.gauges Metrics.global);
  Metrics.reset Metrics.global

let test_disabled_is_inert () =
  Alcotest.(check bool) "tracing off" false (Trace.enabled ());
  Metrics.reset Metrics.global;
  (* None of these may touch the global registry or blow up. *)
  let sp = Trace.span "ghost" ~attrs:[ ("k", Sink.Int 1) ] in
  Trace.event "ghost-event";
  Trace.count ~by:100 "ghost-counter";
  Trace.gauge "ghost-gauge" 1.0;
  Trace.finish sp;
  Trace.finish Trace.none;
  Trace.flush ();
  Alcotest.(check int) "no counter recorded" 0
    (Metrics.counter_value Metrics.global "ghost-counter");
  Alcotest.(check (list (pair string (float 1e-9))))
    "no gauge recorded" [] (Metrics.gauges Metrics.global)

(* Exercise every payload kind and every attribute type through the JSONL
   writer and back through the parser. *)
let test_jsonl_roundtrip () =
  let sink_mem, read = Sink.memory () in
  let path = Filename.temp_file "hbn_obs" ".jsonl" in
  let oc = open_out path in
  let tee = Sink.tee (Sink.jsonl oc) sink_mem in
  Trace.with_sink tee (fun () ->
      let sp =
        Trace.span "phase"
          ~attrs:
            [
              ("int", Sink.Int (-3));
              ("float", Sink.Float 0.1);
              ("whole", Sink.Float 2.0);
              ("str", Sink.Str "quote \" backslash \\ newline \n tab \t");
              ("bool", Sink.Bool false);
            ]
      in
      Trace.event "tick" ~attrs:[ ("huge", Sink.Int max_int) ];
      Trace.gauge "depth" 17.25;
      Trace.finish sp ~attrs:[ ("ratio", Sink.Float 1.6180339887498949) ];
      let m = Metrics.create () in
      Metrics.incr ~by:9 m "events";
      List.iter (fun v -> Metrics.observe m "lat" v) [ 0.5; 1.5 ];
      (* Counter + histogram snapshot events also flow through the codec. *)
      Metrics.emit m tee;
      Alcotest.(check bool) "tracing on" true (Trace.enabled ());
      Trace.flush ());
  close_out oc;
  let expected = read () in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let parsed =
    List.rev_map
      (fun line ->
        match Sink.of_json line with
        | Ok ev -> ev
        | Error msg -> Alcotest.failf "unparseable line %S: %s" line msg)
      !lines
  in
  Alcotest.(check int) "event count" (List.length expected) (List.length parsed);
  List.iter2
    (fun (a : Sink.event) (b : Sink.event) ->
      if a <> b then
        Alcotest.failf "round trip mismatch:\n%s\n%s" (Sink.to_json a)
          (Sink.to_json b))
    expected parsed

let test_json_rejects_garbage () =
  List.iter
    (fun line ->
      match Sink.of_json line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "";
      "not json";
      "{\"ev\":\"span_start\"}";
      "{\"ev\":\"teleport\",\"name\":\"x\",\"id\":1,\"parent\":0,\"attrs\":{}}";
      "{\"ev\":\"point\",\"name\":\"x\",\"id\":0,\"parent\":0,\"attrs\":{}} trailing";
    ]

let test_fault_event_roundtrips () =
  (* One of each fault shape, including the -1 "not applicable" markers
     the runtime uses for node-only and edge-only faults. *)
  List.iter
    (fun payload ->
      let ev =
        {
          Sink.name = "runtime.fault";
          id = 0;
          parent = 0;
          payload;
          attrs = [ ("plan_seed", Sink.Int 9) ];
        }
      in
      match Sink.of_json (Sink.to_json ev) with
      | Ok ev' ->
        if ev <> ev' then
          Alcotest.failf "fault round trip mismatch: %s" (Sink.to_json ev)
      | Error m -> Alcotest.failf "fault event unparseable: %s" m)
    [
      Sink.Fault { round = 7; fault = "dropped"; node = 2; edge = 3 };
      Sink.Fault { round = 1; fault = "crashed"; node = 4; edge = -1 };
      Sink.Fault { round = 12; fault = "restored"; node = -1; edge = 0 };
    ]

(* Random Series events through the codec: the telemetry emitter is the
   only producer, but the parser must accept the full field space. *)
let series_event_arb =
  let open QCheck in
  let gen =
    Gen.map
      (fun (name, round, time, span, value, edge) ->
        {
          Sink.name;
          id = 0;
          parent = 0;
          payload = Sink.Series { round; time; span; value; edge };
          attrs = [];
        })
      Gen.(
        tup6
          (oneofl [ "sim.sent"; "dist.edge"; "x.bytes"; "weird \"name\"\n" ])
          (int_bound 100_000)
          (map (fun t -> float_of_int t /. 16.) (int_bound 1_600_000))
          (int_range 1 4096) int (int_range (-1) 500))
  in
  make ~print:Sink.to_json gen

let prop_series_roundtrip ev =
  match Sink.of_json (Sink.to_json ev) with
  | Ok ev' -> ev = ev'
  | Error _ -> false

(* Random Alert events through the codec — the monitor's sink_event is
   the only producer, but the parser must accept arbitrary series names
   (including ones needing escapes), detector kinds and magnitudes, and
   reproduce every field byte for byte. *)
let alert_event_arb =
  let open QCheck in
  let gen =
    Gen.map
      (fun (round, time, series, kind, magnitude) ->
        {
          Sink.name = "monitor.alert";
          id = 0;
          parent = 0;
          payload = Sink.Alert { round; time; series; kind; magnitude };
          attrs = [];
        })
      Gen.(
        tup5 (int_bound 100_000)
          (map (fun t -> float_of_int t /. 16.) (int_bound 1_600_000))
          (oneofl
             [ "sent"; "dist.retransmits"; "edge_peak"; "odd \"series\"\t" ])
          (oneofl
             [ "cusum_up"; "cusum_down"; "page_hinkley_up"; "page_hinkley_down" ])
          (map (fun m -> float_of_int m /. 64.) (int_bound 1_000_000)))
  in
  make ~print:Sink.to_json gen

let prop_alert_roundtrip ev =
  (* Byte identity, not just structural: re-rendering the re-parsed
     event must give the same JSONL line. *)
  match Sink.of_json (Sink.to_json ev) with
  | Ok ev' -> ev = ev' && Sink.to_json ev' = Sink.to_json ev
  | Error _ -> false

let test_nan_gauge_roundtrips () =
  let ev =
    {
      Sink.name = "g";
      id = 0;
      parent = 0;
      payload = Sink.Gauge { value = Float.nan };
      attrs = [];
    }
  in
  match Sink.of_json (Sink.to_json ev) with
  | Ok { Sink.payload = Sink.Gauge { value }; _ } ->
    Alcotest.(check bool) "nan round-trips" true (Float.is_nan value)
  | Ok _ -> Alcotest.fail "wrong payload"
  | Error msg -> Alcotest.fail msg

let strategy_fingerprint (res : Strategy.result) =
  ( res.Strategy.placement,
    res.Strategy.nibble,
    res.Strategy.modified,
    res.Strategy.tau_max,
    res.Strategy.deletions,
    res.Strategy.splits,
    res.Strategy.mapped_objects )

let prop_tracing_does_not_change_results seed =
  let _, w = Helpers.instance seed in
  let off = Strategy.run w in
  let sink, _ = Sink.memory () in
  let on = Trace.with_sink sink (fun () -> Strategy.run w) in
  let off2 = Strategy.run w in
  strategy_fingerprint off = strategy_fingerprint on
  && strategy_fingerprint off = strategy_fingerprint off2

(* The full pipeline trace of an instance that actually needs Step 3:
   spans for all three steps plus per-round mapping events must appear. *)
let test_strategy_trace_shape () =
  let rec find seed =
    let _, w = Helpers.instance seed in
    let res = Strategy.run w in
    if res.Strategy.tau_max > 0 then w else find (seed + 1)
  in
  let w = find 1 in
  let events = events_of (fun () -> ignore (Strategy.run w)) in
  let ends name =
    List.exists
      (fun (ev : Sink.event) ->
        ev.Sink.name = name
        && match ev.Sink.payload with Sink.Span_end _ -> true | _ -> false)
      events
  in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " span closed") true (ends name))
    [ "strategy.run"; "strategy.nibble"; "strategy.deletion"; "strategy.mapping" ];
  let rounds =
    List.filter (fun ev -> name_of ev = "mapping.round") events
  in
  Alcotest.(check bool) "mapping rounds recorded" true (List.length rounds >= 2);
  Alcotest.(check bool) "deletion.object events" true
    (List.exists (fun ev -> name_of ev = "deletion.object") events);
  (* One attribution snapshot per phase, tagged with the phase name. *)
  let phases_seen =
    List.filter_map
      (fun (ev : Sink.event) ->
        match (ev.Sink.name, ev.Sink.payload) with
        | "strategy.attribution", Sink.Attribution _ -> (
          match List.assoc_opt "phase" ev.Sink.attrs with
          | Some (Sink.Str p) -> Some p
          | _ -> None)
        | _ -> None)
      events
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string))
    "attribution snapshots for every phase"
    [ "deletion"; "mapping"; "nibble" ]
    phases_seen

let suite =
  [
    Helpers.tc "span nesting and durations" test_span_nesting;
    Helpers.tc "counter aggregation" test_counter_aggregation;
    Helpers.tc "histogram reservoir is bounded and exact in range"
      test_histogram_reservoir;
    Helpers.tc "with_attrs tags every event" test_with_attrs_tags_events;
    Helpers.tc "Trace.count feeds the global registry" test_trace_count_feeds_global;
    Helpers.tc "disabled tracer is inert" test_disabled_is_inert;
    Helpers.tc "JSONL round trip" test_jsonl_roundtrip;
    Helpers.tc "parser rejects garbage" test_json_rejects_garbage;
    Helpers.tc "nan gauge round-trips" test_nan_gauge_roundtrips;
    Helpers.tc "fault events round-trip" test_fault_event_roundtrips;
    Helpers.qt ~count:200 "series events round-trip" series_event_arb
      prop_series_roundtrip;
    Helpers.qt ~count:200 "alert events round-trip byte for byte"
      alert_event_arb prop_alert_roundtrip;
    Helpers.tc "strategy trace has all three steps" test_strategy_trace_shape;
    Helpers.qt ~count:60 "tracing never changes strategy results"
      Helpers.seed_arb prop_tracing_does_not_change_results;
  ]
