(* Aggregates all suites. Run with `dune runtest`; individual suites can be
   selected with e.g. `dune exec test/test_main.exe -- test strategy`. *)

let () =
  Alcotest.run "hbn"
    [
      ("heap", Test_heap.suite);
      ("exec", Test_exec.suite);
      ("stats", Test_stats.suite);
      ("table", Test_table.suite);
      ("obs", Test_obs.suite);
      ("monitor", Test_monitor.suite);
      ("prng", Test_prng.suite);
      ("tree", Test_tree.suite);
      ("flat", Test_flat.suite);
      ("builders", Test_builders.suite);
      ("workload", Test_workload.suite);
      ("partition", Test_partition.suite);
      ("placement", Test_placement.suite);
      ("loads", Test_loads.suite);
      ("attribution", Test_attribution.suite);
      ("nibble", Test_nibble.suite);
      ("deletion", Test_deletion.suite);
      ("mapping", Test_mapping.suite);
      ("strategy", Test_strategy.suite);
      ("exact", Test_exact.suite);
      ("baselines", Test_baselines.suite);
      ("event", Test_event.suite);
      ("sim", Test_sim.suite);
      ("dist", Test_dist.suite);
      ("dynamic", Test_dynamic.suite);
      ("serve", Test_serve.suite);
      ("capacitated", Test_capacitated.suite);
      ("ablation", Test_ablation.suite);
      ("io", Test_io.suite);
      ("runtime", Test_runtime.suite);
      ("faults", Test_faults.suite);
      ("certificates", Test_certificates.suite);
      ("report", Test_report.suite);
      ("cli", Test_cli.suite);
      ("examples", Test_examples.suite);
    ]
