module Partition = Hbn_workload.Partition
module Workload = Hbn_workload.Workload
module Tree = Hbn_tree.Tree
module Placement = Hbn_placement.Placement
module Prng = Hbn_prng.Prng

let test_solvable_known () =
  Alcotest.(check bool) "yes" true (Partition.solvable (Partition.make [ 1; 1 ]));
  Alcotest.(check bool) "yes 2" true
    (Partition.solvable (Partition.make [ 3; 1; 1; 2; 3; 2 ]));
  Alcotest.(check bool) "no (odd sum)" false
    (Partition.solvable (Partition.make [ 1; 2 ]));
  Alcotest.(check bool) "no (even sum)" false
    (Partition.solvable (Partition.make [ 1; 1; 4 ]))

let test_find_subset () =
  let i = Partition.make [ 3; 1; 1; 2; 3; 2 ] in
  (match Partition.find_subset i with
  | None -> Alcotest.fail "should find a subset"
  | Some idxs ->
    let sum = List.fold_left (fun a idx -> a + i.Partition.items.(idx)) 0 idxs in
    Alcotest.(check int) "sums to half" 6 sum;
    Alcotest.(check int) "indices distinct" (List.length idxs)
      (List.length (List.sort_uniq compare idxs)));
  Alcotest.(check bool) "none for unsolvable" true
    (Partition.find_subset (Partition.make [ 1; 1; 4 ]) = None)

let test_achievable_sums () =
  let a = Partition.achievable_sums (Partition.make [ 2; 3 ]) in
  Alcotest.(check (list bool)) "sums 0..5"
    [ true; false; true; true; false; true ]
    (Array.to_list a)

let test_half () =
  Alcotest.(check (option int)) "even" (Some 3) (Partition.half (Partition.make [ 2; 4 ]));
  Alcotest.(check (option int)) "odd" None (Partition.half (Partition.make [ 2; 3 ]))

let test_make_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Partition.make: empty instance")
    (fun () -> ignore (Partition.make []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Partition.make: items must be positive") (fun () ->
      ignore (Partition.make [ 1; 0 ]))

let test_gadget_frequencies () =
  (* The reduction of Theorem 2.1, checked against the paper verbatim. *)
  let i = Partition.make [ 2; 3; 1 ] in
  let g = Partition.gadget i in
  let w = g.Partition.workload in
  Alcotest.(check int) "k" 3 g.Partition.k;
  Alcotest.(check int) "objects = n+1" 4 (Workload.num_objects w);
  Alcotest.(check int) "hw(a,y) = 4k+1" 13
    (Workload.writes w ~obj:g.Partition.object_y g.Partition.node_a);
  Alcotest.(check int) "hw(b,y) = 2k" 6
    (Workload.writes w ~obj:g.Partition.object_y g.Partition.node_b);
  Alcotest.(check int) "hw(s,y) = 0" 0
    (Workload.writes w ~obj:g.Partition.object_y g.Partition.node_s);
  List.iteri
    (fun idx ki ->
      List.iter
        (fun v ->
          Alcotest.(check int) "hw(v,xi) = ki" ki (Workload.writes w ~obj:idx v);
          Alcotest.(check int) "hr = 0" 0 (Workload.reads w ~obj:idx v))
        [ g.Partition.node_a; g.Partition.node_b; g.Partition.node_s;
          g.Partition.node_sbar ])
    [ 2; 3; 1 ];
  (* The gadget is the paper's 4-ary height-1 tree. *)
  Alcotest.(check int) "5 nodes" 5 (Tree.n g.Partition.tree);
  Alcotest.(check int) "height 1" 1 (Tree.height g.Partition.tree);
  Alcotest.(check int) "4 processors" 4 (Tree.num_leaves g.Partition.tree)

let test_gadget_odd_sum () =
  Alcotest.check_raises "odd sum"
    (Invalid_argument "Partition.gadget: item sum must be even") (fun () ->
      ignore (Partition.gadget (Partition.make [ 1; 2 ])))

let test_yes_placement_congestion () =
  let i = Partition.make [ 3; 1; 1; 2; 3; 2 ] in
  let g = Partition.gadget i in
  match Partition.find_subset i with
  | None -> Alcotest.fail "solvable instance"
  | Some subset ->
    let placement =
      Placement.single g.Partition.workload (Partition.yes_placement g subset)
    in
    let c = Placement.congestion g.Partition.workload placement in
    Alcotest.(check (float 1e-9)) "congestion exactly 4k"
      (float_of_int (4 * g.Partition.k))
      c

let prop_random_yes_solvable seed =
  let prng = Prng.create seed in
  let items = Prng.int_in prng 2 14 in
  let i = Partition.random_yes ~prng ~items ~max_item:9 in
  Array.length i.Partition.items = items && Partition.solvable i

let prop_random_even_sum seed =
  let prng = Prng.create seed in
  let i = Partition.random ~prng ~items:(Prng.int_in prng 1 12) ~max_item:9 in
  Partition.sum i mod 2 = 0

let prop_find_subset_sound seed =
  let prng = Prng.create seed in
  let i = Partition.random ~prng ~items:(Prng.int_in prng 1 12) ~max_item:9 in
  match Partition.find_subset i with
  | None -> not (Partition.solvable i)
  | Some idxs ->
    Partition.solvable i
    && List.fold_left (fun a idx -> a + i.Partition.items.(idx)) 0 idxs
       = Partition.sum i / 2

let suite =
  [
    Helpers.tc "solvable on known instances" test_solvable_known;
    Helpers.tc "find_subset" test_find_subset;
    Helpers.tc "achievable sums" test_achievable_sums;
    Helpers.tc "half" test_half;
    Helpers.tc "make validation" test_make_validation;
    Helpers.tc "gadget frequencies per paper" test_gadget_frequencies;
    Helpers.tc "gadget rejects odd sums" test_gadget_odd_sum;
    Helpers.tc "witness placement has congestion 4k" test_yes_placement_congestion;
    Helpers.qt "random_yes always solvable" Helpers.seed_arb prop_random_yes_solvable;
    Helpers.qt "random instances have even sums" Helpers.seed_arb prop_random_even_sum;
    Helpers.qt "find_subset sound and complete" Helpers.seed_arb prop_find_subset_sound;
  ]
