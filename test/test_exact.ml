module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Partition = Hbn_workload.Partition
module Placement = Hbn_placement.Placement
module Brute_force = Hbn_exact.Brute_force
module Gadget_opt = Hbn_exact.Gadget_opt
module Lower_bounds = Hbn_exact.Lower_bounds
module Prng = Hbn_prng.Prng

let star_instance () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 2) in
  let w = Workload.empty t ~objects:1 in
  Workload.set_read w ~obj:0 1 2;
  Workload.set_write w ~obj:0 1 3;
  Workload.set_read w ~obj:0 2 1;
  Workload.set_write w ~obj:0 3 4;
  (t, w)

let test_optimum_simple () =
  (* Single object on a star: enumerate by hand. Placing the copy on the
     heaviest processor... the optimum here is placing on processor 1 or
     3; brute force must match the best congestion over all our candidate
     placements. *)
  let _, w = star_instance () in
  let opt = Brute_force.optimum w ~candidates:`Leaves in
  let best_single =
    List.fold_left
      (fun acc leaf ->
        min acc (Placement.congestion w (Placement.single w [ (0, leaf) ])))
      infinity [ 1; 2; 3 ]
  in
  Alcotest.(check bool) "optimum <= best single" true
    (opt.Brute_force.congestion <= best_single +. 1e-9);
  Alcotest.(check bool) "optimum > 0" true (opt.Brute_force.congestion > 0.)

let test_object_vectors_pareto () =
  let _, w = star_instance () in
  let vs = Brute_force.object_vectors w ~obj:0 ~candidates:`Leaves in
  Alcotest.(check bool) "nonempty" true (vs <> []);
  (* No vector dominates another. *)
  let dominates a b =
    Array.for_all2 (fun x y -> x <= y) a b && a <> b
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j && dominates a b then
            Alcotest.fail "dominated vector kept")
        vs)
    vs

let test_object_vectors_no_requests () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:1 in
  let vs = Brute_force.object_vectors w ~obj:0 ~candidates:`Leaves in
  Alcotest.(check int) "single zero vector" 1 (List.length vs);
  Alcotest.(check (array int)) "zeros" [| 0; 0 |] (List.hd vs)

let test_budget_exceeded () =
  let t = Builders.star ~leaves:6 ~profile:(Builders.Uniform 1) in
  let prng = Prng.create 1 in
  let w =
    Hbn_workload.Generators.uniform ~prng t ~objects:1 ~max_rate:3
  in
  (try
     ignore (Brute_force.object_vectors ~budget:10 w ~obj:0 ~candidates:`Leaves);
     Alcotest.fail "budget not enforced"
   with Brute_force.Too_large _ -> ())

let test_upper_bound_does_not_change_result () =
  let _, w = star_instance () in
  let a = Brute_force.optimum w ~candidates:`Leaves in
  let b =
    Brute_force.optimum w ~candidates:`Leaves
      ~upper_bound:a.Brute_force.congestion
  in
  Alcotest.(check (float 1e-9)) "same congestion" a.Brute_force.congestion
    b.Brute_force.congestion

let test_all_nodes_beats_leaves () =
  (* Allowing copies on buses can only improve the optimum. *)
  let _, w = star_instance () in
  let leaves = Brute_force.optimum w ~candidates:`Leaves in
  let all = Brute_force.optimum w ~candidates:`All_nodes in
  Alcotest.(check bool) "tree model at least as good" true
    (all.Brute_force.congestion <= leaves.Brute_force.congestion +. 1e-9)

let test_gadget_yes_instance () =
  let inst = Partition.make [ 3; 1; 1; 2; 3; 2 ] in
  let g = Partition.gadget inst in
  Alcotest.(check int) "family optimum is 4k" (4 * g.Partition.k)
    (Gadget_opt.family_optimum inst);
  let bf = Brute_force.optimum g.Partition.workload ~candidates:`Leaves in
  Alcotest.(check (float 1e-9)) "brute force agrees"
    (float_of_int (4 * g.Partition.k))
    bf.Brute_force.congestion

let test_gadget_no_instance () =
  let inst = Partition.make [ 1; 1; 4 ] in
  let g = Partition.gadget inst in
  let fam = Gadget_opt.family_optimum inst in
  Alcotest.(check bool) "strictly above 4k" true (fam > 4 * g.Partition.k);
  let bf = Brute_force.optimum g.Partition.workload ~candidates:`Leaves in
  Alcotest.(check (float 1e-9)) "brute force agrees" (float_of_int fam)
    bf.Brute_force.congestion

let prop_gadget_family_matches_brute_force seed =
  (* The closed form equals the true optimum on random small instances,
     yes or no alike — the empirical content of Theorem 2.1. *)
  let prng = Prng.create seed in
  let inst = Partition.random ~prng ~items:(Prng.int_in prng 2 5) ~max_item:4 in
  let g = Partition.gadget inst in
  let fam = Gadget_opt.family_optimum inst in
  match Brute_force.optimum g.Partition.workload ~candidates:`Leaves with
  | bf -> Float.abs (bf.Brute_force.congestion -. float_of_int fam) < 1e-9
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()

let prop_gadget_threshold seed =
  (* 4k achievable iff PARTITION solvable. *)
  let prng = Prng.create seed in
  let inst =
    if seed mod 2 = 0 then Partition.random_yes ~prng ~items:6 ~max_item:6
    else Partition.random ~prng ~items:5 ~max_item:6
  in
  let g = Partition.gadget inst in
  let fam = Gadget_opt.family_optimum inst in
  Partition.solvable inst = (fam = 4 * g.Partition.k)

let prop_min_edge_loads_pointwise seed =
  (* min_edge_loads lower-bounds the loads of any single-copy placement. *)
  let _, w = Helpers.small_instance seed in
  let prng = Prng.create (seed + 5) in
  match Brute_force.min_edge_loads w ~candidates:`Leaves with
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()
  | mins ->
    let t = Workload.tree w in
    let leaves = Array.of_list (Tree.leaves t) in
    let placement =
      Placement.nearest w
        ~copies:
          (Array.init (Workload.num_objects w) (fun _ ->
               [ leaves.(Prng.int prng (Array.length leaves)) ]))
    in
    let loads = Placement.edge_loads w placement in
    Array.for_all2 ( <= ) mins loads

let prop_optimum_below_any_heuristic seed =
  let _, w = Helpers.small_instance seed in
  match Brute_force.optimum w ~candidates:`Leaves with
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()
  | opt ->
    let owner = Hbn_baselines.Baselines.owner w in
    let full = Placement.full_replication w in
    opt.Brute_force.congestion <= Placement.congestion w owner +. 1e-9
    && opt.Brute_force.congestion <= Placement.congestion w full +. 1e-9

let suite =
  [
    Helpers.tc "optimum on a star" test_optimum_simple;
    Helpers.tc "object vectors are Pareto-minimal" test_object_vectors_pareto;
    Helpers.tc "no requests gives zero vector" test_object_vectors_no_requests;
    Helpers.tc "budget enforced" test_budget_exceeded;
    Helpers.tc "upper bound keeps the result" test_upper_bound_does_not_change_result;
    Helpers.tc "tree model beats bus model" test_all_nodes_beats_leaves;
    Helpers.tc "gadget yes instance optimum 4k" test_gadget_yes_instance;
    Helpers.tc "gadget no instance above 4k" test_gadget_no_instance;
    Helpers.qt ~count:25 "gadget closed form = brute force" Helpers.seed_arb
      prop_gadget_family_matches_brute_force;
    Helpers.qt ~count:100 "gadget 4k threshold iff solvable" Helpers.seed_arb
      prop_gadget_threshold;
    Helpers.qt ~count:30 "min edge loads pointwise bound" Helpers.seed_arb
      prop_min_edge_loads_pointwise;
    Helpers.qt ~count:30 "optimum below heuristics" Helpers.seed_arb
      prop_optimum_below_any_heuristic;
  ]

(* --- non-redundancy of write-only optima (Section 2's remark) ---------- *)

let prop_write_only_optimum_non_redundant seed =
  (* "every optimal placement is non-redundant if all requests are write
     requests": the unrestricted optimum equals the best placement with a
     single copy per object. *)
  let prng = Prng.create (seed + 909) in
  let tree = Builders.star ~leaves:(Prng.int_in prng 2 4) ~profile:(Builders.Uniform 2) in
  let objects = Prng.int_in prng 1 2 in
  let w = Workload.empty tree ~objects in
  List.iter
    (fun leaf ->
      for obj = 0 to objects - 1 do
        Workload.set_write w ~obj leaf (Prng.int prng 5)
      done)
    (Tree.leaves tree);
  match Brute_force.optimum w ~candidates:`Leaves with
  | exception Brute_force.Too_large _ -> QCheck.assume_fail ()
  | opt ->
    (* Best single-copy-per-object placement by direct enumeration. *)
    let leaves = Array.of_list (Tree.leaves tree) in
    let nl = Array.length leaves in
    let best = ref infinity in
    let choice = Array.make objects 0 in
    let rec enumerate obj =
      if obj = objects then begin
        let assignment =
          List.filter_map
            (fun o ->
              if Workload.requesting_leaves w ~obj:o = [] then None
              else Some (o, leaves.(choice.(o))))
            (List.init objects Fun.id)
        in
        let p = Placement.single w assignment in
        best := Float.min !best (Placement.congestion w p)
      end
      else
        for i = 0 to nl - 1 do
          choice.(obj) <- i;
          enumerate (obj + 1)
        done
    in
    enumerate 0;
    Float.abs (!best -. opt.Brute_force.congestion) < 1e-9

let non_redundant_suite =
  [
    Helpers.qt ~count:40 "write-only optima are non-redundant"
      Helpers.seed_arb prop_write_only_optimum_non_redundant;
  ]

let suite = suite @ non_redundant_suite
