module Tree = Hbn_tree.Tree
module Prng = Hbn_prng.Prng

(* A hand-built reference network:

          0 (bus, bw 4)
         /           \
        1 (bus, 2)    2 (bus, 3)
       / \             \
      3   4             5      (processors)

   Edge ids follow the [edges] list below. *)
let example () =
  let kinds =
    [| Tree.Bus; Tree.Bus; Tree.Bus; Tree.Processor; Tree.Processor; Tree.Processor |]
  in
  let edges = [ (0, 1, 2); (0, 2, 3); (1, 3, 1); (1, 4, 1); (2, 5, 1) ] in
  Tree.make ~kinds ~edges
    ~bus_bandwidth:(fun v -> [| 4; 2; 3 |].(v))
    ()

let test_basic_accessors () =
  let t = example () in
  Alcotest.(check int) "n" 6 (Tree.n t);
  Alcotest.(check int) "edges" 5 (Tree.num_edges t);
  Alcotest.(check (list int)) "leaves" [ 3; 4; 5 ] (Tree.leaves t);
  Alcotest.(check (list int)) "buses" [ 0; 1; 2 ] (Tree.buses t);
  Alcotest.(check int) "num_leaves" 3 (Tree.num_leaves t);
  Alcotest.(check bool) "leaf kind" true (Tree.is_leaf t 3);
  Alcotest.(check bool) "bus kind" false (Tree.is_leaf t 0);
  Alcotest.(check int) "edge bw" 3 (Tree.edge_bandwidth t 1);
  Alcotest.(check int) "bus bw" 2 (Tree.bus_bandwidth t 1);
  Alcotest.(check int) "degree of 1" 3 (Tree.degree t 1);
  Alcotest.(check int) "max degree" 3 (Tree.max_degree t);
  Alcotest.(check int) "height" 2 (Tree.height t)

let test_bus_bandwidth_on_leaf () =
  let t = example () in
  Alcotest.check_raises "processor has no bus bandwidth"
    (Invalid_argument "Tree.bus_bandwidth: node is a processor") (fun () ->
      ignore (Tree.bus_bandwidth t 3))

let test_paths () =
  let t = example () in
  Alcotest.(check (list int)) "3 to 5" [ 2; 0; 1; 4 ] (Tree.path_edges t 3 5);
  Alcotest.(check (list int)) "5 to 3" [ 4; 1; 0; 2 ]
    (Tree.path_edges t 5 3);
  Alcotest.(check (list int)) "self" [] (Tree.path_edges t 4 4);
  Alcotest.(check (list int)) "3 to 4" [ 2; 3 ] (Tree.path_edges t 3 4);
  Alcotest.(check int) "length 3-5" 4 (Tree.path_length t 3 5);
  Alcotest.(check int) "length 0-5" 2 (Tree.path_length t 0 5)

let test_lca () =
  let t = example () in
  let r = Tree.rooting t in
  Alcotest.(check int) "lca leaves" 0 (Tree.lca r 3 5);
  Alcotest.(check int) "lca siblings" 1 (Tree.lca r 3 4);
  Alcotest.(check int) "lca ancestor" 1 (Tree.lca r 1 4)

let test_steiner () =
  let t = example () in
  let sort = List.sort compare in
  Alcotest.(check (list int)) "pair = path" (sort [ 2; 0; 1; 4 ])
    (sort (Tree.steiner_edges t [ 3; 5 ]));
  Alcotest.(check (list int)) "triple" (sort [ 2; 3; 0; 1; 4 ])
    (sort (Tree.steiner_edges t [ 3; 4; 5 ]));
  Alcotest.(check (list int)) "singleton" [] (Tree.steiner_edges t [ 3 ]);
  Alcotest.(check (list int)) "duplicates collapse" []
    (Tree.steiner_edges t [ 4; 4 ]);
  Alcotest.(check (list int)) "empty" [] (Tree.steiner_edges t [])

let test_reroot () =
  let t = example () in
  let r = Tree.reroot t 5 in
  Alcotest.(check int) "new root" 5 r.Tree.root;
  Alcotest.(check int) "parent of old root" 2 r.Tree.parent.(0);
  Alcotest.(check int) "depth of 3" 4 r.Tree.depth.(3);
  Alcotest.(check int) "root parent" (-1) r.Tree.parent.(5)

let test_subtree_sums () =
  let t = example () in
  let r = Tree.rooting t in
  let w = [| 0; 0; 0; 1; 2; 4 |] in
  let sums = Tree.subtree_sums r w in
  Alcotest.(check int) "root sum" 7 sums.(0);
  Alcotest.(check int) "bus 1 subtree" 3 sums.(1);
  Alcotest.(check int) "bus 2 subtree" 4 sums.(2);
  Alcotest.(check int) "leaf" 2 sums.(4)

let test_levels () =
  let t = example () in
  let levels = Tree.nodes_by_level_bottom_up (Tree.rooting t) in
  Alcotest.(check int) "level count" 3 (Array.length levels);
  Alcotest.(check (list int)) "deepest" [ 3; 4; 5 ] (List.sort compare levels.(0));
  Alcotest.(check (list int)) "top" [ 0 ] levels.(2)

let test_first_on_path () =
  let t = example () in
  let r = Tree.rooting t in
  Alcotest.(check (option int)) "finds bus 1" (Some 1)
    (Tree.first_on_path r ~member:(fun v -> v = 1) 3);
  Alcotest.(check (option int)) "self match" (Some 3)
    (Tree.first_on_path r ~member:(fun v -> v = 3) 3);
  Alcotest.(check (option int)) "no match" None
    (Tree.first_on_path r ~member:(fun _ -> false) 4)

let test_validation_errors () =
  let p = Tree.Processor and b = Tree.Bus in
  let mk kinds edges =
    ignore (Tree.make ~kinds ~edges ~bus_bandwidth:(fun _ -> 1) ())
  in
  Alcotest.check_raises "wrong edge count"
    (Invalid_argument "Tree.make: a tree needs exactly n-1 edges") (fun () ->
      mk [| b; p; p |] [ (0, 1, 1) ]);
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Tree.make: edges do not connect all nodes") (fun () ->
      (* A doubled bus-to-bus edge keeps all degrees legal but strands
         processor 4. *)
      mk [| b; b; p; p; p |] [ (0, 1, 1); (0, 1, 1); (0, 2, 1); (1, 3, 1) ]);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Tree.make: bad edge endpoints") (fun () ->
      mk [| b; p; p |] [ (0, 1, 1); (2, 2, 1) ]);
  Alcotest.check_raises "processor inside"
    (Invalid_argument "Tree.make: processors must be leaves") (fun () ->
      mk [| p; p; p |] [ (0, 1, 1); (0, 2, 1) ]);
  Alcotest.check_raises "bus as leaf"
    (Invalid_argument "Tree.make: buses must be inner nodes") (fun () ->
      mk [| b; b; p |] [ (0, 1, 1); (0, 2, 1) ]);
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Tree.make: bandwidths must be at least 1") (fun () ->
      mk [| b; p; p |] [ (0, 1, 0); (0, 2, 1) ]);
  Alcotest.check_raises "empty"
    (Invalid_argument "Tree.make: empty node set") (fun () -> mk [||] []);
  Alcotest.check_raises "single bus"
    (Invalid_argument "Tree.make: a single-node network is one processor")
    (fun () -> mk [| b |] [])

let test_single_processor () =
  let t =
    Tree.make ~kinds:[| Tree.Processor |] ~edges:[] ~bus_bandwidth:(fun _ -> 1)
      ()
  in
  Alcotest.(check int) "n" 1 (Tree.n t);
  Alcotest.(check (list int)) "leaves" [ 0 ] (Tree.leaves t);
  Alcotest.(check int) "height" 0 (Tree.height t)

let test_paper_assumptions () =
  let t = example () in
  Helpers.check_ok "unit leaf switches" (Tree.validate_paper_assumptions t);
  let bad =
    Tree.make
      ~kinds:[| Tree.Bus; Tree.Processor; Tree.Processor |]
      ~edges:[ (0, 1, 2); (0, 2, 1) ]
      ~bus_bandwidth:(fun _ -> 1)
      ()
  in
  match Tree.validate_paper_assumptions bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "should flag non-unit processor switch"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_to_dot () =
  let dot = Tree.to_dot (example ()) in
  Alcotest.(check bool) "mentions bus" true (contains dot "bus 0");
  Alcotest.(check bool) "mentions processor" true (contains dot "P3");
  Alcotest.(check bool) "mentions bandwidth label" true
    (contains dot "[label=\"2\"]")

let prop_path_length_consistent seed =
  let prng = Prng.create seed in
  let t = Helpers.random_tree prng in
  let u = Prng.int prng (Tree.n t) and v = Prng.int prng (Tree.n t) in
  List.length (Tree.path_edges t u v) = Tree.path_length t u v

let prop_path_symmetric seed =
  let prng = Prng.create seed in
  let t = Helpers.random_tree prng in
  let u = Prng.int prng (Tree.n t) and v = Prng.int prng (Tree.n t) in
  List.sort compare (Tree.path_edges t u v)
  = List.sort compare (Tree.path_edges t v u)

let prop_steiner_pair_is_path seed =
  let prng = Prng.create seed in
  let t = Helpers.random_tree prng in
  let u = Prng.int prng (Tree.n t) and v = Prng.int prng (Tree.n t) in
  List.sort compare (Tree.steiner_edges t [ u; v ])
  = List.sort compare (Tree.path_edges t u v)

let prop_reroot_preserves_structure seed =
  let prng = Prng.create seed in
  let t = Helpers.random_tree prng in
  let root = Prng.int prng (Tree.n t) in
  let r = Tree.reroot t root in
  (* Each non-root node's parent edge really connects it to its parent. *)
  let ok = ref (r.Tree.root = root && r.Tree.parent.(root) = -1) in
  for v = 0 to Tree.n t - 1 do
    if v <> root then begin
      let e = r.Tree.parent_edge.(v) in
      let a, b = Tree.edge_endpoints t e in
      let p = r.Tree.parent.(v) in
      if not ((a = v && b = p) || (a = p && b = v)) then ok := false;
      if r.Tree.depth.(v) <> r.Tree.depth.(p) + 1 then ok := false
    end
  done;
  !ok

let prop_subtree_sums_total seed =
  let prng = Prng.create seed in
  let t = Helpers.random_tree prng in
  let w = Array.init (Tree.n t) (fun _ -> Prng.int prng 10) in
  let r = Tree.reroot t (Prng.int prng (Tree.n t)) in
  let sums = Tree.subtree_sums r w in
  sums.(r.Tree.root) = Array.fold_left ( + ) 0 w

let suite =
  [
    Helpers.tc "basic accessors" test_basic_accessors;
    Helpers.tc "bus_bandwidth rejects processors" test_bus_bandwidth_on_leaf;
    Helpers.tc "paths" test_paths;
    Helpers.tc "lca" test_lca;
    Helpers.tc "steiner trees" test_steiner;
    Helpers.tc "reroot" test_reroot;
    Helpers.tc "subtree sums" test_subtree_sums;
    Helpers.tc "levels bottom-up" test_levels;
    Helpers.tc "first_on_path" test_first_on_path;
    Helpers.tc "validation errors" test_validation_errors;
    Helpers.tc "single processor network" test_single_processor;
    Helpers.tc "paper bandwidth assumption" test_paper_assumptions;
    Helpers.tc "dot export" test_to_dot;
    Helpers.qt "path length consistent" Helpers.seed_arb prop_path_length_consistent;
    Helpers.qt "path symmetric" Helpers.seed_arb prop_path_symmetric;
    Helpers.qt "steiner of pair is path" Helpers.seed_arb prop_steiner_pair_is_path;
    Helpers.qt "reroot structure" Helpers.seed_arb prop_reroot_preserves_structure;
    Helpers.qt "subtree sums total" Helpers.seed_arb prop_subtree_sums_total;
  ]
