(* Smoke tests running every example binary end-to-end. *)

let example_path name =
  let dir = Filename.dirname Sys.executable_name in
  let candidate = Filename.concat dir (Printf.sprintf "../examples/%s.exe" name) in
  if Sys.file_exists candidate then Some candidate else None

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_example name expectations () =
  match example_path name with
  | None -> () (* not built in this configuration *)
  | Some bin ->
    let ic = Unix.open_process_in (Filename.quote_command bin []) in
    let buf = Buffer.create 1024 in
    (try
       while true do
         Buffer.add_channel buf ic 1
       done
     with End_of_file -> ());
    let status = Unix.close_process_in ic in
    let out = Buffer.contents buf in
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ -> Alcotest.failf "%s exited non-zero:\n%s" name out);
    List.iter
      (fun sub ->
        if not (contains out sub) then
          Alcotest.failf "%s: missing %S in output:\n%s" name sub out)
      expectations

let suite =
  [
    Helpers.tc "quickstart"
      (check_example "quickstart" [ "congestion:"; "tree-model lower bound" ]);
    Helpers.tc "sci_cluster"
      (check_example "sci_cluster"
         [ "SCI cluster"; "extended-nibble"; "graph hbn {" ]);
    Helpers.tc "web_replication"
      (check_example "web_replication" [ "provider tree"; "write%" ]);
    Helpers.tc "partition_gadget"
      (check_example "partition_gadget"
         [ "Theorem 2.1"; "PARTITION solvable"; "ratio" ]);
    Helpers.tc "dynamic_adaptation"
      (check_example "dynamic_adaptation"
         [ "producer"; "online/OPT"; "factor 3" ]);
    Helpers.tc "capacity_planning"
      (check_example "capacity_planning" [ "shared pages"; "capacity" ]);
  ]
