module Tree = Hbn_tree.Tree
module Builders = Hbn_tree.Builders
module Workload = Hbn_workload.Workload
module Nibble = Hbn_nibble.Nibble
module Runtime = Hbn_dist.Runtime
module Dist_nibble = Hbn_dist.Dist_nibble
module Prng = Hbn_prng.Prng

(* A trivial protocol: leaves send 1 up, inner nodes forward sums; the
   root ends up with the leaf count. *)
let test_engine_convergecast () =
  let t = Builders.balanced ~arity:2 ~height:3 ~profile:(Builders.Uniform 1) in
  let r = Tree.rooting t in
  let init v = (Array.length r.Tree.children.(v), 0, false) in
  let step ~round ~node (missing, acc, sent) ~inbox =
    let missing = missing - List.length inbox in
    let acc = List.fold_left (fun a (_, m) -> a + m) acc inbox in
    if missing = 0 && not sent then
      if node = r.Tree.root then ((missing, acc, true), [])
      else ((missing, acc, true), [ (r.Tree.parent.(node), acc + if Tree.is_leaf t node then 1 else 0) ])
    else begin
      ignore round;
      ((missing, acc, sent), [])
    end
  in
  let out = Runtime.run t ~init ~step in
  let _, root_acc, _ = out.Runtime.states.(r.Tree.root) in
  Alcotest.(check int) "root counted the leaves" (Tree.num_leaves t) root_acc;
  Alcotest.(check int) "one message per non-root node" (Tree.n t - 1)
    out.Runtime.stats.Runtime.messages;
  Alcotest.(check bool) "rounds ~ height" true
    (out.Runtime.stats.Runtime.rounds >= Tree.height t);
  Alcotest.(check bool) "quiescent" true
    (out.Runtime.termination = Runtime.Quiescent);
  Alcotest.(check int) "no faults without a plan" 0
    (List.length out.Runtime.faults)

let test_engine_rejects_non_neighbor () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  (try
     ignore
       (Runtime.run t ~init:(fun _ -> ()) ~step:(fun ~round ~node () ~inbox ->
            ignore inbox;
            if round = 1 && node = 1 then ((), [ (2, "hi") ]) else ((), [])));
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ())

let test_engine_rejects_double_send () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  (try
     ignore
       (Runtime.run t ~init:(fun _ -> ()) ~step:(fun ~round ~node () ~inbox ->
            ignore inbox;
            if round = 1 && node = 1 then ((), [ (0, "a"); (0, "b") ])
            else ((), [])));
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ())

let test_engine_round_limit () =
  let t = Builders.star ~leaves:2 ~profile:(Builders.Uniform 1) in
  (* Node 1 talks forever: the engine must stop at the budget and report
     it as a structured outcome, not raise. *)
  let out =
    Runtime.run ~max_rounds:50 t ~init:(fun _ -> ())
      ~step:(fun ~round:_ ~node () ~inbox ->
        ignore inbox;
        if node = 1 then ((), [ (0, ()) ]) else ((), []))
  in
  Alcotest.(check bool) "round limit reported" true
    (out.Runtime.termination = Runtime.Round_limit);
  Alcotest.(check int) "stats survive" 50 out.Runtime.stats.Runtime.rounds

let test_dist_nibble_hand_example () =
  let t = Builders.star ~leaves:3 ~profile:(Builders.Uniform 1) in
  let w = Workload.empty t ~objects:2 in
  Workload.set_read w ~obj:0 1 10;
  Workload.set_write w ~obj:0 2 2;
  (* object 1 unused *)
  let sets, stats = Dist_nibble.run w in
  let seq = Nibble.place_all w in
  Alcotest.(check (list int)) "object 0 matches sequential"
    seq.(0).Nibble.nodes sets.(0);
  Alcotest.(check (list int)) "unused object empty" [] sets.(1);
  Alcotest.(check bool) "some messages flowed" true (stats.Runtime.messages > 0)

let test_single_node_network () =
  let t =
    Tree.make ~kinds:[| Tree.Processor |] ~edges:[] ~bus_bandwidth:(fun _ -> 1) ()
  in
  let w = Workload.empty t ~objects:2 in
  Workload.set_write w ~obj:0 0 5;
  let sets, stats = Dist_nibble.run w in
  Alcotest.(check (list int)) "self copy" [ 0 ] sets.(0);
  Alcotest.(check (list int)) "unused empty" [] sets.(1);
  Alcotest.(check int) "no messages" 0 stats.Runtime.messages

let prop_matches_sequential seed =
  let _, w = Helpers.instance seed in
  let sets, _ = Dist_nibble.run w in
  let seq = Nibble.place_all w in
  Array.for_all2 (fun got cs -> got = cs.Nibble.nodes) sets seq

let prop_rounds_pipelined seed =
  (* O(|X| + height) with explicit constants: 4 sweeps, each starting at
     most one object per round after its pipeline fills. *)
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  let x = Workload.num_objects w and h = Tree.height t in
  let _, stats = Dist_nibble.run w in
  stats.Runtime.rounds <= (4 * (x + h)) + 8

let prop_message_bound seed =
  (* At most 4 sweeps of |X| messages per edge. *)
  let _, w = Helpers.instance seed in
  let t = Workload.tree w in
  let _, stats = Dist_nibble.run w in
  stats.Runtime.messages
  <= 4 * Workload.num_objects w * max 1 (Tree.num_edges t)

(* --- asynchronous engine ------------------------------------------------ *)

module Link = Hbn_event.Link
module Faults = Hbn_dist.Faults
module Telemetry = Hbn_obs.Telemetry

(* The same convergecast on slow serialized links: the result is
   unchanged (the protocol is self-clocking — nodes wait for their
   children), only the round count stretches. *)
let test_run_async_convergecast () =
  let t = Builders.balanced ~arity:2 ~height:3 ~profile:(Builders.Uniform 1) in
  let r = Tree.rooting t in
  let init v = (Array.length r.Tree.children.(v), 0, false) in
  let step ~round:_ ~node (missing, acc, sent) ~inbox =
    let missing = missing - List.length inbox in
    let acc = List.fold_left (fun a (_, m) -> a + m) acc inbox in
    if missing = 0 && not sent then
      if node = r.Tree.root then ((missing, acc, true), [])
      else
        ( (missing, acc, true),
          [ (r.Tree.parent.(node), acc + if Tree.is_leaf t node then 1 else 0) ] )
    else ((missing, acc, sent), [])
  in
  let sync = Runtime.run t ~init ~step in
  let slow = Runtime.run_async ~link:(Link.v [| (2., 1.) |]) t ~init ~step in
  let _, root_acc, _ = slow.Runtime.states.(r.Tree.root) in
  Alcotest.(check int) "root still counts the leaves" (Tree.num_leaves t)
    root_acc;
  Alcotest.(check int) "same messages"
    sync.Runtime.stats.Runtime.messages slow.Runtime.stats.Runtime.messages;
  Alcotest.(check bool) "quiescent" true
    (slow.Runtime.termination = Runtime.Quiescent);
  Alcotest.(check bool) "slow links stretch the rounds" true
    (slow.Runtime.stats.Runtime.rounds > sync.Runtime.stats.Runtime.rounds)

(* The acceptance criterion: with unit delay and infinite bandwidth the
   event-driven runtime is bit-identical to the synchronous one —
   placement, stats, fault log and telemetry series — over random
   topologies, workloads and fault plans. *)
let prop_async_sync_bit_identical seed =
  let _, w = Helpers.instance seed in
  let tree = Hbn_workload.Workload.tree w in
  let faults =
    if seed mod 2 = 0 then Faults.make ~seed ~drop:0.15 ~drop_until:60 ()
    else Faults.none
  in
  let t1 = Telemetry.create ~num_edges:(Tree.num_edges tree) () in
  let t2 = Telemetry.create ~num_edges:(Tree.num_edges tree) () in
  let a = Dist_nibble.run_robust ~faults ~telemetry:t1 w in
  let b = Dist_nibble.run_robust ~faults ~telemetry:t2 ~link:Link.sync w in
  a = b && Telemetry.points t1 = Telemetry.points t2

(* Stop-and-wait on genuinely slow links: frames take multiple ticks to
   arrive (propagation delay 2 below the root) while the retransmit
   timers keep counting integer rounds, so the timeout must cover the
   round trip — with it, recovery still converges to the sequential
   placement under drops. *)
let test_robust_on_slow_links_completes () =
  let t = Builders.balanced ~arity:2 ~height:2 ~profile:(Builders.Uniform 1) in
  let leaves = Array.of_list (Tree.leaves t) in
  let w = Workload.empty t ~objects:2 in
  Workload.set_read w ~obj:0 leaves.(0) 6;
  Workload.set_write w ~obj:1 leaves.(1) 3;
  let faults = Faults.make ~seed:11 ~drop:0.1 ~drop_until:40 () in
  match
    Dist_nibble.run_robust ~timeout:8 ~faults
      ~link:(Link.v [| (1., 64.); (2., 32.) |])
      w
  with
  | Dist_nibble.Degraded _ -> Alcotest.fail "expected completion"
  | Dist_nibble.Complete { placement; _ } ->
    let seq = Nibble.place_all w in
    Array.iteri
      (fun obj nodes ->
        Alcotest.(check (list int))
          (Printf.sprintf "object %d matches sequential" obj)
          seq.(obj).Nibble.nodes nodes)
      placement

let suite =
  [
    Helpers.tc "engine convergecast" test_engine_convergecast;
    Helpers.tc "engine rejects non-neighbors" test_engine_rejects_non_neighbor;
    Helpers.tc "engine rejects double sends" test_engine_rejects_double_send;
    Helpers.tc "engine round limit" test_engine_round_limit;
    Helpers.tc "distributed nibble hand example" test_dist_nibble_hand_example;
    Helpers.tc "single node network" test_single_node_network;
    Helpers.qt ~count:150 "distributed nibble = sequential everywhere"
      Helpers.seed_arb prop_matches_sequential;
    Helpers.qt "rounds are pipelined" Helpers.seed_arb prop_rounds_pipelined;
    Helpers.qt "message bound" Helpers.seed_arb prop_message_bound;
    Helpers.tc "run_async convergecast on slow links"
      test_run_async_convergecast;
    Helpers.qt ~count:60 "Link.sync runtime is bit-identical to synchronous"
      Helpers.seed_arb prop_async_sync_bit_identical;
    Helpers.tc "robust nibble completes on slow links"
      test_robust_on_slow_links_completes;
  ]
