(* The attribution table's contract: contribution sums reproduce the
   evaluator's loads exactly, the incremental (hook-fed) table equals the
   one-shot table bit for bit through any mutate/rollback sequence, and
   attribution is invariant under the domain-parallel pipeline. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Loads = Hbn_loads.Loads
module Attribution = Hbn_obs.Attribution
module Sink = Hbn_obs.Sink
module Strategy = Hbn_core.Strategy
module Baselines = Hbn_baselines.Baselines
module Exec = Hbn_exec.Exec
module Prng = Hbn_prng.Prng

(* Totals, congestion and bottleneck of a table must reproduce the
   from-scratch evaluator on the same placement. *)
let agrees_with_evaluator w p =
  let attr = Attribution.of_placement w p in
  let c = Placement.evaluate w p in
  let tree = Workload.tree w in
  Attribution.totals attr = c.Placement.edge_loads
  && Attribution.congestion_value attr = c.Placement.value
  && (match Attribution.hotspots attr ~k:1 with
     | [] -> Tree.num_edges tree = 0
     | (site, rel) :: _ ->
       rel = c.Placement.value
       && site = (c.Placement.bottleneck :> Attribution.site))
  && List.for_all
       (fun e ->
         let contribs = Attribution.edge_contributions attr ~edge:e in
         List.fold_left (fun s c -> s + c.Attribution.amount) 0 contribs
         = Attribution.edge_total attr ~edge:e
         && List.for_all (fun c -> c.Attribution.amount <> 0) contribs)
       (List.init (Tree.num_edges tree) Fun.id)
  && List.for_all
       (fun b ->
         Attribution.bus_total2 attr ~bus:b = c.Placement.bus_loads2.(b)
         && List.fold_left
              (fun s c -> s + c.Attribution.amount)
              0
              (Attribution.bus_contributions attr ~bus:b)
            = c.Placement.bus_loads2.(b))
       (Tree.buses tree)

let prop_sums_reproduce_evaluator seed =
  let _, w = Helpers.instance seed in
  let strategy = (Strategy.run w).Strategy.placement in
  let prng = Prng.create (seed + 13) in
  let leaves = Tree.leaves_array (Workload.tree w) in
  let copies =
    Array.init (Workload.num_objects w) (fun _ ->
        List.sort_uniq compare
          (List.init
             (Prng.int_in prng 1 3)
             (fun _ -> leaves.(Prng.int prng (Array.length leaves)))))
  in
  agrees_with_evaluator w strategy
  && agrees_with_evaluator w (Placement.nearest w ~copies)
  && agrees_with_evaluator w (Baselines.full_replication w)

(* One random nearest-rule delta on the engine (same shape as the loads
   suite's); returns false when nothing applied. *)
let random_delta ~prng w eng =
  let leaves = Tree.leaves_array (Workload.tree w) in
  let obj = Prng.int prng (Workload.num_objects w) in
  let leaf = leaves.(Prng.int prng (Array.length leaves)) in
  if Loads.has_copy eng ~obj leaf then
    if Loads.num_copies eng ~obj > 1 then begin
      Loads.remove_copy eng ~obj leaf;
      true
    end
    else false
  else if Loads.num_copies eng ~obj = 0 || Prng.bool prng then begin
    Loads.add_copy eng ~obj leaf;
    true
  end
  else begin
    let victim = Prng.pick prng (Loads.copies eng ~obj) in
    Loads.move_copy eng ~obj ~src:victim ~dst:leaf;
    true
  end

let seed_engine ~prng w =
  let leaves = Tree.leaves_array (Workload.tree w) in
  let copies =
    Array.init (Workload.num_objects w) (fun obj ->
        match Workload.requesting_leaves w ~obj with
        | [] -> []
        | req ->
          List.sort_uniq compare
            (Prng.pick prng req
            :: List.init (Prng.int prng 3) (fun _ ->
                   leaves.(Prng.int prng (Array.length leaves)))))
  in
  Loads.of_copies w copies

(* The live (attach) table must match a fresh one-shot table after every
   delta, including a few manual reassignments. *)
let prop_incremental_equals_oneshot seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 409) in
  let eng = seed_engine ~prng w in
  let live = Attribution.attach eng in
  let ok = ref (Attribution.equal live (Attribution.of_loads eng)) in
  for _ = 1 to 25 do
    ignore (random_delta ~prng w eng);
    (match Prng.int prng 4 with
    | 0 -> (
      let obj = Prng.int prng (Workload.num_objects w) in
      match Workload.requesting_leaves w ~obj with
      | [] -> ()
      | req when Loads.num_copies eng ~obj > 0 ->
        Loads.reassign eng ~obj ~leaf:(Prng.pick prng req)
          ~server:(Prng.pick prng (Loads.copies eng ~obj))
      | _ -> ())
    | _ -> ());
    ok := !ok && Attribution.equal live (Attribution.of_loads eng)
  done;
  (* Nearest-only engines also agree with Placement-driven attribution. *)
  Loads.set_hook eng None;
  !ok

(* Rollback replays inverse deltas through the hook: the live table must
   come back bit-identical to its checkpoint-time state. *)
let prop_rollback_restores_attribution seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 811) in
  let eng = seed_engine ~prng w in
  let live = Attribution.attach eng in
  for _ = 1 to 5 do
    ignore (random_delta ~prng w eng)
  done;
  let at_checkpoint = Attribution.of_loads eng in
  let cp = Loads.checkpoint eng in
  for _ = 1 to 15 do
    ignore (random_delta ~prng w eng)
  done;
  let inner = Loads.checkpoint eng in
  ignore (random_delta ~prng w eng);
  Loads.rollback eng inner;
  for _ = 1 to 3 do
    ignore (random_delta ~prng w eng)
  done;
  Loads.rollback eng cp;
  let restored = Attribution.equal live at_checkpoint in
  Loads.set_hook eng None;
  restored

(* The engine path and the placement path attribute identically when the
   engine state is reachable by the nearest rule. *)
let prop_engine_matches_placement_attribution seed =
  let _, w = Helpers.instance seed in
  let prng = Prng.create (seed + 1201) in
  let eng = seed_engine ~prng w in
  for _ = 1 to 15 do
    ignore (random_delta ~prng w eng)
  done;
  let copies =
    Array.init (Workload.num_objects w) (fun obj -> Loads.copies eng ~obj)
  in
  Attribution.equal
    (Attribution.of_loads eng)
    (Attribution.of_placement w (Placement.nearest w ~copies))

let prop_attribution_invariant_across_jobs seed =
  let _, w = Helpers.instance seed in
  let at_jobs jobs =
    Exec.with_runner ~jobs (fun exec ->
        Attribution.of_placement w (Strategy.run ~exec w).Strategy.placement)
  in
  let reference = at_jobs 1 in
  List.for_all (fun jobs -> Attribution.equal reference (at_jobs jobs)) [ 2; 4 ]

(* Events come out in deterministic (edge, object, component) order, sum
   back to the totals, and round-trip through the JSONL codec. *)
let test_events_deterministic_and_roundtrip () =
  let _, w = Helpers.instance 7 in
  let attr =
    Attribution.of_placement w (Strategy.run w).Strategy.placement
  in
  let events =
    Attribution.events ~attrs:[ ("phase", Sink.Str "final") ] attr
  in
  let cells =
    List.map
      (fun (ev : Sink.event) ->
        match ev.Sink.payload with
        | Sink.Attribution { edge; obj; component; amount } ->
          Alcotest.(check string) "event name" "attribution" ev.Sink.name;
          Alcotest.(check bool) "phase attr kept" true
            (List.mem ("phase", Sink.Str "final") ev.Sink.attrs);
          (match Placement.component_of_name component with
          | Some _ -> ()
          | None -> Alcotest.failf "unknown component %s" component);
          (edge, obj, component, amount)
        | _ -> Alcotest.fail "non-attribution event")
      events
  in
  Alcotest.(check bool) "sorted by (edge, obj, component)" true
    (List.sort compare (List.map (fun (e, o, c, _) -> (e, o, c)) cells)
    = List.map (fun (e, o, c, _) -> (e, o, c)) cells);
  let totals = Attribution.totals attr in
  let summed = Array.make (Array.length totals) 0 in
  List.iter (fun (e, _, _, amount) -> summed.(e) <- summed.(e) + amount) cells;
  Alcotest.(check bool) "events sum to totals" true (summed = totals);
  List.iter
    (fun ev ->
      match Sink.of_json (Sink.to_json ev) with
      | Ok ev' when ev' = ev -> ()
      | Ok _ -> Alcotest.failf "lossy round trip: %s" (Sink.to_json ev)
      | Error m -> Alcotest.failf "unparseable: %s" m)
    events

let test_renderings () =
  let _, w = Helpers.instance 11 in
  let attr =
    Attribution.of_placement w (Strategy.run w).Strategy.placement
  in
  let json = Attribution.to_json ~k:3 attr in
  (match Hbn_obs.Json.parse_result json with
  | Error m -> Alcotest.failf "to_json unparseable: %s" m
  | Ok doc ->
    (match Hbn_obs.Json.member "schema" doc with
    | Some (Hbn_obs.Json.Str "hbn.explain/v1") -> ()
    | _ -> Alcotest.fail "schema field missing");
    (match
       Option.bind (Hbn_obs.Json.member "congestion" doc) Hbn_obs.Json.to_float
     with
    | Some c ->
      Alcotest.(check (float 0.)) "congestion field"
        (Attribution.congestion_value attr)
        c
    | None -> Alcotest.fail "congestion field missing"));
  let dot = Attribution.to_dot attr in
  Alcotest.(check bool) "dot header" true
    (String.length dot > 0
    && String.sub dot 0 (String.length "graph hbn_attribution")
       = "graph hbn_attribution")

let suite =
  [
    Helpers.qt ~count:60 "sums reproduce the evaluator exactly"
      Helpers.seed_arb prop_sums_reproduce_evaluator;
    Helpers.qt ~count:60 "incremental table equals one-shot"
      Helpers.seed_arb prop_incremental_equals_oneshot;
    Helpers.qt ~count:60 "rollback restores the live table"
      Helpers.seed_arb prop_rollback_restores_attribution;
    Helpers.qt ~count:60 "engine and placement attribution agree"
      Helpers.seed_arb prop_engine_matches_placement_attribution;
    Helpers.qt ~count:25 "attribution bit-identical at jobs 1/2/4"
      Helpers.seed_arb prop_attribution_invariant_across_jobs;
    Helpers.tc "events are deterministic and round-trip"
      test_events_deterministic_and_roundtrip;
    Helpers.tc "json and dot renderings" test_renderings;
  ]
