module Tree = Hbn_tree.Tree
module Flat = Hbn_tree.Flat
module Marks = Hbn_tree.Marks
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

module Raw = struct
  type t = {
    tree : Tree.t;
    loads : int array;
    bus_loads2 : int array;
  }

  let create tree =
    {
      tree;
      loads = Array.make (max 1 (Tree.num_edges tree)) 0;
      bus_loads2 = Array.make (Tree.n tree) 0;
    }

  let add t e amount =
    if amount <> 0 then begin
      t.loads.(e) <- t.loads.(e) + amount;
      let u, v = Tree.edge_endpoints t.tree e in
      if not (Tree.is_leaf t.tree u) then
        t.bus_loads2.(u) <- t.bus_loads2.(u) + amount;
      if not (Tree.is_leaf t.tree v) then
        t.bus_loads2.(v) <- t.bus_loads2.(v) + amount
    end

  let load t e = t.loads.(e)

  let loads t = Array.copy t.loads

  let total t = Array.fold_left ( + ) 0 t.loads

  (* Same scan order and arithmetic as [Placement.congestion_of_edge_loads]
     so the float results are bit-identical — the hill climb's accept
     decisions must not depend on which evaluator ran. *)
  let congestion_value t =
    let tree = t.tree in
    let best = ref 0. in
    for e = 0 to Tree.num_edges tree - 1 do
      let rel =
        float_of_int t.loads.(e) /. float_of_int (Tree.edge_bandwidth tree e)
      in
      if rel > !best then best := rel
    done;
    Array.iter
      (fun b ->
        let rel =
          float_of_int t.bus_loads2.(b)
          /. (2. *. float_of_int (Tree.bus_bandwidth tree b))
        in
        if rel > !best then best := rel)
      (Tree.buses_array tree);
    !best

  let evaluate t = Placement.congestion_of_edge_loads t.tree (Array.copy t.loads)
end

(* Undo-journal entries. [moved] records, per reassigned leaf, the server
   and server distance it had before the operation; the copy-set and
   Steiner bookkeeping is inverted structurally (the low-level add/remove
   are exact inverses of each other on [below]/[ncopies]/marks). *)
type undo =
  | U_add of { obj : int; node : int; moved : (int * int * int) list }
  | U_remove of { obj : int; node : int; moved : (int * int * int) list }
  | U_reassign of { obj : int; leaf : int; server : int; dist : int }

type obj_state = {
  marks : Marks.t;  (* marked = nodes holding a copy *)
  below : int array;  (* per edge: copies strictly on the child side *)
  server : int array;  (* per node: serving copy; -1 = unassigned *)
  sdist : int array;  (* distance to [server]; -1 when unassigned *)
  reads : int array;
  writes : int array;
  amount : int array;  (* reads + writes, cached *)
  req : int array;  (* requesting leaves, ascending *)
  total_writes : int;  (* κ_x: one Steiner-tree broadcast per write *)
  mutable ncopies : int;
  mutable anchor : int;  (* any current copy; -1 when the set is empty *)
}

type hook =
  obj:int -> component:Placement.component -> edge:int -> amount:int -> unit

type t = {
  w : Workload.t;
  tree : Tree.t;
  rooted : Tree.rooted;
  fl : Flat.t;  (* O(1) LCA/distance over the canonical rooting *)
  raw : Raw.t;
  objs : obj_state array;
  eseen : int array;  (* per-edge visit stamps for root-path unions *)
  estack : int array;  (* the current affected-edge set, in visit order *)
  mutable esp : int;
  mutable stamp : int;
  mutable journal : undo list;
  mutable jlen : int;
  mutable hook : hook option;
}

type checkpoint = int

let create w =
  let tree = Workload.tree w in
  let rooted = Tree.rooting tree in
  let m = max 1 (Tree.num_edges tree) in
  let n = Tree.n tree in
  let objs =
    Array.init (Workload.num_objects w) (fun obj ->
        let reads = Workload.read_vector w ~obj in
        let writes = Workload.write_vector w ~obj in
        {
          marks = Marks.create rooted;
          below = Array.make m 0;
          server = Array.make n (-1);
          sdist = Array.make n (-1);
          reads;
          writes;
          amount = Array.init n (fun v -> reads.(v) + writes.(v));
          req = Array.of_list (Workload.requesting_leaves w ~obj);
          total_writes = Workload.write_contention w ~obj;
          ncopies = 0;
          anchor = -1;
        })
  in
  {
    w;
    tree;
    rooted;
    fl = Flat.of_tree tree;
    raw = Raw.create tree;
    objs;
    eseen = Array.make m (-1);
    estack = Array.make m 0;
    esp = 0;
    stamp = 0;
    journal = [];
    jlen = 0;
    hook = None;
  }

let workload t = t.w

let set_hook t hook = t.hook <- hook

let obj_state t obj =
  if obj < 0 || obj >= Array.length t.objs then
    invalid_arg "Loads: object out of range";
  t.objs.(obj)

let check_node t v =
  if v < 0 || v >= Tree.n t.tree then invalid_arg "Loads: node out of range"

(* {2 Path walks} *)

let iter_root_path t v f =
  let r = t.rooted in
  let x = ref v in
  while !x <> r.Tree.root do
    f r.Tree.parent_edge.(!x);
    x := r.Tree.parent.(!x)
  done

let iter_path_edges t u v f = Flat.iter_path_unordered t.fl u v f

(* {2 Steiner-tree accounting}

   An edge belongs to the Steiner tree of the copy set iff
   [0 < below < ncopies]. A single add/remove of copy [c] changes [below]
   only on the root path of [c], and changes the [< ncopies] test only on
   edges below which the whole (old or new) set lies — those edges form
   the root path of any surviving copy (the anchor). Re-evaluating the
   membership contribution on the union of the two root paths therefore
   covers every edge whose write-broadcast load can change: O(height). *)

let member os e n = os.below.(e) > 0 && os.below.(e) < n

(* A write-broadcast (Steiner-membership) load delta, mirrored to the
   attribution hook. *)
let steiner_load t o e amount =
  Raw.add t.raw e amount;
  match t.hook with
  | None -> ()
  | Some h -> h ~obj:o ~component:Placement.Write_steiner ~edge:e ~amount

(* Fills [estack] with the (deduplicated) union of the two root paths —
   no list allocation; the set stays valid until the next call. *)
let affected_edges t ~node ~other =
  t.stamp <- t.stamp + 1;
  t.esp <- 0;
  let visit e =
    if t.eseen.(e) <> t.stamp then begin
      t.eseen.(e) <- t.stamp;
      t.estack.(t.esp) <- e;
      t.esp <- t.esp + 1
    end
  in
  iter_root_path t node visit;
  if other >= 0 then iter_root_path t other visit

let iter_affected t f =
  (* Reversed fill order: the order the list-building implementation
     historically visited, kept so hook deltas replay identically. *)
  for i = t.esp - 1 downto 0 do
    f t.estack.(i)
  done

(* Low-level add of copy [c]: marks, [below], anchor and Steiner loads.
   Assignments are the caller's business. *)
let steiner_add t o c =
  let os = t.objs.(o) in
  let n_new = os.ncopies + 1 in
  if os.total_writes > 0 then begin
    affected_edges t ~node:c ~other:os.anchor;
    let wts = os.total_writes in
    iter_affected t (fun e ->
        if member os e os.ncopies then steiner_load t o e (-wts));
    iter_root_path t c (fun e -> os.below.(e) <- os.below.(e) + 1);
    os.ncopies <- n_new;
    iter_affected t (fun e -> if member os e n_new then steiner_load t o e wts)
  end
  else begin
    iter_root_path t c (fun e -> os.below.(e) <- os.below.(e) + 1);
    os.ncopies <- n_new
  end;
  Marks.mark os.marks c;
  os.anchor <- c

let steiner_remove t o c =
  let os = t.objs.(o) in
  Marks.unmark os.marks c;
  let new_anchor =
    if os.ncopies = 1 then -1
    else
      match Marks.nearest os.marks c with
      | Some (u, _) -> u
      | None -> assert false
  in
  let n_new = os.ncopies - 1 in
  if os.total_writes > 0 then begin
    affected_edges t ~node:c ~other:new_anchor;
    let wts = os.total_writes in
    iter_affected t (fun e ->
        if member os e os.ncopies then steiner_load t o e (-wts));
    iter_root_path t c (fun e -> os.below.(e) <- os.below.(e) - 1);
    os.ncopies <- n_new;
    iter_affected t (fun e -> if member os e n_new then steiner_load t o e wts)
  end
  else begin
    iter_root_path t c (fun e -> os.below.(e) <- os.below.(e) - 1);
    os.ncopies <- n_new
  end;
  os.anchor <- new_anchor

(* Point a leaf's requests at [server] (or [-1] to clear), moving its
   path load. The hook sees the same per-edge deltas split into read and
   write components (the engine's [amount] is their sum). *)
let set_server t o leaf ~server ~dist =
  let os = t.objs.(o) in
  let amt = os.amount.(leaf) in
  let rd = os.reads.(leaf) and wr = os.writes.(leaf) in
  let apply target sign =
    if target >= 0 && amt <> 0 then
      iter_path_edges t leaf target (fun e ->
          Raw.add t.raw e (sign * amt);
          match t.hook with
          | None -> ()
          | Some h ->
            if rd <> 0 then
              h ~obj:o ~component:Placement.Read_path ~edge:e
                ~amount:(sign * rd);
            if wr <> 0 then
              h ~obj:o ~component:Placement.Write_path ~edge:e
                ~amount:(sign * wr))
  in
  apply os.server.(leaf) (-1);
  os.server.(leaf) <- server;
  os.sdist.(leaf) <- dist;
  apply server 1

let push t u =
  t.journal <- u :: t.journal;
  t.jlen <- t.jlen + 1

(* {2 Delta operations} *)

let add_copy t ~obj c =
  check_node t c;
  let os = obj_state t obj in
  if Marks.is_marked os.marks c then
    invalid_arg "Loads.add_copy: node already holds a copy";
  steiner_add t obj c;
  (* The nearest-copy rule: a leaf defects to [c] when strictly closer,
     or equally close with a lower id — exactly [Placement.nearest]'s
     tie-breaking, so the maintained assignment stays canonical. *)
  let moved = ref [] in
  Array.iter
    (fun leaf ->
      let d = Flat.distance t.fl leaf c in
      let cur = os.server.(leaf) in
      if cur < 0 || d < os.sdist.(leaf) || (d = os.sdist.(leaf) && c < cur)
      then begin
        moved := (leaf, cur, os.sdist.(leaf)) :: !moved;
        set_server t obj leaf ~server:c ~dist:d
      end)
    os.req;
  push t (U_add { obj; node = c; moved = !moved })

let remove_copy t ~obj c =
  check_node t c;
  let os = obj_state t obj in
  if not (Marks.is_marked os.marks c) then
    invalid_arg "Loads.remove_copy: node holds no copy";
  if os.ncopies = 1 && Array.length os.req > 0 then
    invalid_arg "Loads.remove_copy: would leave a requested object copyless";
  steiner_remove t obj c;
  let moved = ref [] in
  Array.iter
    (fun leaf ->
      if os.server.(leaf) = c then begin
        match Marks.nearest os.marks leaf with
        | Some (s, d) ->
          moved := (leaf, c, os.sdist.(leaf)) :: !moved;
          set_server t obj leaf ~server:s ~dist:d
        | None -> assert false
      end)
    os.req;
  push t (U_remove { obj; node = c; moved = !moved })

let move_copy t ~obj ~src ~dst =
  if src = dst then invalid_arg "Loads.move_copy: src = dst";
  add_copy t ~obj dst;
  remove_copy t ~obj src

let reassign t ~obj ~leaf ~server =
  check_node t leaf;
  check_node t server;
  let os = obj_state t obj in
  if not (Marks.is_marked os.marks server) then
    invalid_arg "Loads.reassign: server holds no copy";
  if os.server.(leaf) < 0 then
    invalid_arg "Loads.reassign: leaf has no requests for this object";
  push t
    (U_reassign { obj; leaf; server = os.server.(leaf); dist = os.sdist.(leaf) });
  set_server t obj leaf ~server ~dist:(Flat.distance t.fl leaf server)

(* {2 Checkpoint / rollback} *)

let undo t = function
  | U_add { obj; node; moved } ->
    steiner_remove t obj node;
    List.iter (fun (leaf, s, d) -> set_server t obj leaf ~server:s ~dist:d) moved
  | U_remove { obj; node; moved } ->
    steiner_add t obj node;
    List.iter (fun (leaf, s, d) -> set_server t obj leaf ~server:s ~dist:d) moved
  | U_reassign { obj; leaf; server; dist } ->
    set_server t obj leaf ~server ~dist

let checkpoint t = t.jlen

let rollback t cp =
  if cp > t.jlen then
    invalid_arg "Loads.rollback: checkpoint is ahead of the journal";
  while t.jlen > cp do
    match t.journal with
    | [] -> assert false
    | u :: rest ->
      t.journal <- rest;
      t.jlen <- t.jlen - 1;
      undo t u
  done

(* {2 Construction from copy sets} *)

let of_copies w copies =
  let t = create w in
  if Array.length copies <> Array.length t.objs then
    invalid_arg "Loads.of_copies: object count mismatch";
  Array.iteri
    (fun obj cs ->
      List.iter (fun c -> add_copy t ~obj c) (List.sort_uniq compare cs))
    copies;
  (* Construction deltas are not part of the caller's undo history. *)
  t.journal <- [];
  t.jlen <- 0;
  t

(* {2 Inspection} *)

let copies t ~obj = Marks.marked (obj_state t obj).marks

let has_copy t ~obj v =
  check_node t v;
  Marks.is_marked (obj_state t obj).marks v

let num_copies t ~obj = (obj_state t obj).ncopies

let server t ~obj leaf =
  check_node t leaf;
  let os = obj_state t obj in
  if os.server.(leaf) < 0 then None else Some os.server.(leaf)

let edge_loads t = Raw.loads t.raw

let total_load t = Raw.total t.raw

let congestion t = Raw.congestion_value t.raw

let evaluate t = Raw.evaluate t.raw

let snapshot t =
  Array.map
    (fun os ->
      if os.ncopies = 0 && Array.length os.req > 0 then
        invalid_arg "Loads.snapshot: requests but no copies";
      let assigns =
        Array.fold_right
          (fun leaf acc ->
            {
              Placement.leaf;
              server = os.server.(leaf);
              reads = os.reads.(leaf);
              writes = os.writes.(leaf);
            }
            :: acc)
          os.req []
      in
      { Placement.copies = Marks.marked os.marks; assigns })
    t.objs
