(** Incremental load accounting shared by placement, baselines and the
    online layer.

    [Loads.t] is a mutable mirror of one workload's Section 1.1 load
    state: per-edge absolute loads, per-object copy sets and reference
    assignments. The delta operations ({!add_copy}, {!remove_copy},
    {!move_copy}, {!reassign}) update only the affected leaf→server paths
    and Steiner edges — O(height) per touched leaf — instead of
    re-deriving every object's loads from scratch, which turns one
    hill-climb proposal from O(objects · leaves · height) into
    O(height + affected leaves · log n).

    Invariants maintained between operations (see DESIGN.md §8):

    - [loads.(e)] equals [Placement.edge_loads] of {!snapshot};
    - every requesting leaf's server is its nearest copy, ties to the
      lowest node id (exactly [Placement.nearest]'s rule), unless the
      caller overrode it with {!reassign};
    - an edge carries the object's write-broadcast load iff it lies on
      the Steiner tree of the copy set ([0 < below < ncopies] in the
      canonical rooting).

    A {!checkpoint}/{!rollback} pair makes proposals try-then-undo: every
    delta pushes its inverse onto a journal, and rolling back replays the
    journal tail in reverse. The workload must not be mutated while an
    engine built on it is alive. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

(** Plain edge-load accumulation with incrementally maintained bus loads
    — the bottom layer of the engine, also used standalone by the online
    dynamic strategy for its running request loads. *)
module Raw : sig
  type t

  val create : Tree.t -> t
  (** All-zero loads. *)

  val add : t -> int -> int -> unit
  (** [add t e amount] adds [amount] (possibly negative) to edge [e] and
      to the bus loads of its non-processor endpoints. O(1). *)

  val load : t -> int -> int

  val loads : t -> int array
  (** A fresh copy of the per-edge loads. *)

  val total : t -> int

  val congestion_value : t -> float
  (** Maximum relative load over edges and buses — bit-identical to
      [Placement.congestion_of_edge_loads] on {!loads}, without
      allocating. O(n). *)

  val evaluate : t -> Placement.congestion
end

type t

type checkpoint

(** {1 Construction} *)

val create : Workload.t -> t
(** An engine with empty copy sets (every load zero). Objects with
    requests must receive a first copy via {!add_copy} before
    {!snapshot} is meaningful. *)

val of_copies : Workload.t -> int list array -> t
(** [of_copies w copies] builds the engine state for the given per-object
    copy sets with nearest-copy assignments — the incremental counterpart
    of [Placement.nearest w ~copies]. Duplicate nodes in a list are
    collapsed. The construction deltas are not recorded in the undo
    journal. *)

(** {1 Delta operations}

    All raise [Invalid_argument] on out-of-range indices, on adding a
    copy a node already holds, on removing a node's missing copy, and on
    removing the last copy of an object that has requests. *)

val add_copy : t -> obj:int -> int -> unit
(** Place a copy on a node. Requesting leaves strictly closer to the new
    copy (or equally close with the new node's id lower) defect to it. *)

val remove_copy : t -> obj:int -> int -> unit
(** Drop a node's copy. Leaves it served are reassigned to their nearest
    remaining copy (ties to the lowest id) via an O(height) query. *)

val move_copy : t -> obj:int -> src:int -> dst:int -> unit
(** [add_copy dst] then [remove_copy src] — the hill climb's "move"
    proposal, safe for single-copy objects because the new copy lands
    before the old one leaves. *)

val reassign : t -> obj:int -> leaf:int -> server:int -> unit
(** Explicitly point a requesting leaf at a (copy-holding) server,
    overriding the nearest-copy rule until a later delta moves it. *)

(** {1 Attribution hook} *)

type hook =
  obj:int -> component:Placement.component -> edge:int -> amount:int -> unit

val set_hook : t -> hook option -> unit
(** [set_hook t (Some h)] makes every subsequent elementary load delta
    call [h ~obj ~component ~edge ~amount] right after it lands in the
    edge-load accumulator: request traffic moved by a (re)assignment as
    separate [Read_path]/[Write_path] deltas per path edge, Steiner
    membership flips as [Write_steiner] deltas. {!rollback} replays its
    journal through the same low-level operations, so the hook also sees
    every undo as the exact inverse deltas — a table folded over the hook
    stays consistent across checkpoint/rollback with no special casing.
    Amounts are never zero. [None] detaches. The hook runs under the
    engine's caller; it must not mutate the engine. *)

(** {1 Checkpoint / rollback} *)

val checkpoint : t -> checkpoint
(** Marks the current journal position. Checkpoints nest. *)

val rollback : t -> checkpoint -> unit
(** Undo every delta applied since the checkpoint, restoring loads,
    copy sets and assignments exactly. Raises [Invalid_argument] if the
    checkpoint is ahead of the journal (e.g. already rolled back). *)

(** {1 Inspection} *)

val workload : t -> Workload.t

val copies : t -> obj:int -> int list
(** Current copy set, ascending (O(n); use {!has_copy}/{!num_copies} on
    hot paths). *)

val has_copy : t -> obj:int -> int -> bool
(** O(1). *)

val num_copies : t -> obj:int -> int
(** O(1). *)

val server : t -> obj:int -> int -> int option
(** The copy currently serving a leaf's requests, if it has any. *)

val edge_loads : t -> int array
(** A fresh copy of the per-edge absolute loads. *)

val total_load : t -> int

val congestion : t -> float
(** Congestion of the current state — bit-identical to
    [Placement.congestion] of {!snapshot}, in O(n) instead of a full
    re-evaluation. *)

val evaluate : t -> Placement.congestion

val snapshot : t -> Placement.t
(** Materialize the current state as a placement. When only
    {!add_copy}/{!remove_copy}/{!move_copy} were used (no manual
    {!reassign}), this is structurally equal to
    [Placement.nearest w ~copies:(current copy sets)]. Raises
    [Invalid_argument] while an object with requests has no copies. *)
