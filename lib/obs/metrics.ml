module Stats = Hbn_util.Stats

type t = {
  (* One lock serializes every registry operation: updates arrive from
     all domains when the pipeline runs with [--jobs > 1], and Hashtbl is
     not domain-safe. Updates are rare relative to per-object work, so a
     plain mutex (no sharding) is enough. *)
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, float list ref) Hashtbl.t;  (* samples, newest first *)
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let global = create ()

let locked m f =
  Mutex.lock m.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.mutex) f

let incr ?(by = 1) m name =
  locked m @@ fun () ->
  match Hashtbl.find_opt m.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add m.counters name (ref by)

let set_gauge m name v =
  locked m @@ fun () ->
  match Hashtbl.find_opt m.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add m.gauges name (ref v)

let observe m name v =
  locked m @@ fun () ->
  match Hashtbl.find_opt m.histograms name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add m.histograms name (ref [ v ])

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let sorted_bindings tbl read =
  Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters m = locked m @@ fun () -> sorted_bindings m.counters (fun r -> !r)

let gauges m = locked m @@ fun () -> sorted_bindings m.gauges (fun r -> !r)

let summarize samples =
  let lo, hi = Stats.min_max samples in
  {
    count = List.length samples;
    mean = Stats.mean samples;
    min = lo;
    max = hi;
    p50 = Stats.median samples;
    p95 = Stats.percentile 95. samples;
  }

let histograms m =
  locked m @@ fun () -> sorted_bindings m.histograms (fun r -> summarize !r)

let counter_value m name =
  locked m @@ fun () ->
  match Hashtbl.find_opt m.counters name with Some r -> !r | None -> 0

let reset m =
  locked m @@ fun () ->
  Hashtbl.reset m.counters;
  Hashtbl.reset m.gauges;
  Hashtbl.reset m.histograms

let emit m (sink : Sink.t) =
  List.iter
    (fun (name, value) ->
      sink.Sink.emit
        {
          Sink.name;
          id = 0;
          parent = 0;
          payload = Sink.Counter { value };
          attrs = [];
        })
    (counters m);
  List.iter
    (fun (name, value) ->
      sink.Sink.emit
        {
          Sink.name;
          id = 0;
          parent = 0;
          payload = Sink.Gauge { value };
          attrs = [];
        })
    (gauges m);
  List.iter
    (fun (name, s) ->
      sink.Sink.emit
        {
          Sink.name;
          id = 0;
          parent = 0;
          payload =
            Sink.Histogram
              {
                count = s.count;
                mean = s.mean;
                min = s.min;
                max = s.max;
                p50 = s.p50;
                p95 = s.p95;
              };
          attrs = [];
        })
    (histograms m)
