module Stats = Hbn_util.Stats

(* Histograms keep exact count/sum/min/max plus a bounded reservoir of
   samples (Vitter's Algorithm R) for the quantile estimates, so a
   long-running pipeline cannot grow a per-sample list without bound.
   The replacement index comes from a per-histogram splitmix64 stream
   seeded with a constant, so a deterministic program produces
   deterministic summaries. *)
let reservoir_capacity = 512

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  samples : float array;  (* first [min count capacity] slots are live *)
  mutable rng : int64;
}

type t = {
  (* One lock serializes every registry operation: updates arrive from
     all domains when the pipeline runs with [--jobs > 1], and Hashtbl is
     not domain-safe. Updates are rare relative to per-object work, so a
     plain mutex (no sharding) is enough. *)
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let global = create ()

let locked m f =
  Mutex.lock m.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.mutex) f

let incr ?(by = 1) m name =
  locked m @@ fun () ->
  match Hashtbl.find_opt m.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add m.counters name (ref by)

let set_gauge m name v =
  locked m @@ fun () ->
  match Hashtbl.find_opt m.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add m.gauges name (ref v)

(* splitmix64 step, reduced to [0, bound). *)
let rand_below h bound =
  h.rng <- Int64.add h.rng 0x9E3779B97F4A7C15L;
  let z = h.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int bound))

let observe m name v =
  locked m @@ fun () ->
  let h =
    match Hashtbl.find_opt m.histograms name with
    | Some h -> h
    | None ->
      let h =
        {
          count = 0;
          sum = 0.;
          lo = v;
          hi = v;
          samples = Array.make reservoir_capacity 0.;
          rng = 0x5851F42D4C957F2DL;
        }
      in
      Hashtbl.add m.histograms name h;
      h
  in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.lo then h.lo <- v;
  if v > h.hi then h.hi <- v;
  if h.count <= reservoir_capacity then h.samples.(h.count - 1) <- v
  else begin
    let j = rand_below h h.count in
    if j < reservoir_capacity then h.samples.(j) <- v
  end

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let sorted_bindings tbl read =
  Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters m = locked m @@ fun () -> sorted_bindings m.counters (fun r -> !r)

let gauges m = locked m @@ fun () -> sorted_bindings m.gauges (fun r -> !r)

let summarize h =
  let live =
    Array.to_list (Array.sub h.samples 0 (Stdlib.min h.count reservoir_capacity))
  in
  {
    count = h.count;
    mean = h.sum /. float_of_int h.count;
    min = h.lo;
    max = h.hi;
    p50 = Stats.median live;
    p95 = Stats.percentile 95. live;
  }

let histograms m =
  locked m @@ fun () -> sorted_bindings m.histograms summarize

let counter_value m name =
  locked m @@ fun () ->
  match Hashtbl.find_opt m.counters name with Some r -> !r | None -> 0

let reset m =
  locked m @@ fun () ->
  Hashtbl.reset m.counters;
  Hashtbl.reset m.gauges;
  Hashtbl.reset m.histograms

let emit m (sink : Sink.t) =
  List.iter
    (fun (name, value) ->
      sink.Sink.emit
        {
          Sink.name;
          id = 0;
          parent = 0;
          payload = Sink.Counter { value };
          attrs = [];
        })
    (counters m);
  List.iter
    (fun (name, value) ->
      sink.Sink.emit
        {
          Sink.name;
          id = 0;
          parent = 0;
          payload = Sink.Gauge { value };
          attrs = [];
        })
    (gauges m);
  List.iter
    (fun (name, s) ->
      sink.Sink.emit
        {
          Sink.name;
          id = 0;
          parent = 0;
          payload =
            Sink.Histogram
              {
                count = s.count;
                mean = s.mean;
                min = s.min;
                max = s.max;
                p50 = s.p50;
                p95 = s.p95;
              };
          attrs = [];
        })
    (histograms m)
