type span = { id : int; name : string; start : int64 }

let none = { id = 0; name = ""; start = 0L }

(* The [enabled] fast path reads [sink] without the lock: installing a
   sink happens-before any instrumented work is fanned out (the CLI sets
   it up before the pipeline runs), so domains observe a stable value,
   and a stale [None] only skips an event — never corrupts state. All
   mutation of ids and the span stack goes through [mutex]: ids are
   allocated under the lock in call order, so single-emitter traces (the
   only kind the pipeline produces — pool tasks emit no spans) keep the
   byte-identical-run-to-run property, and concurrent emitters from
   [Hbn_exec] domains are merely serialized instead of racing. *)
type state = {
  mutable sink : Sink.t option;
  mutable next_id : int;
  mutable stack : int list;  (* open span ids, innermost first *)
}

let st = { sink = None; next_id = 1; stack = [] }

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let enabled () = match st.sink with None -> false | Some _ -> true

let set_sink sink =
  locked @@ fun () ->
  (match st.sink with Some s -> s.Sink.flush () | None -> ());
  st.sink <- sink;
  st.next_id <- 1;
  st.stack <- []

let with_sink sink f =
  let saved_sink, saved_id, saved_stack =
    locked @@ fun () ->
    let saved = (st.sink, st.next_id, st.stack) in
    st.sink <- Some sink;
    st.next_id <- 1;
    st.stack <- [];
    saved
  in
  Fun.protect
    ~finally:(fun () ->
      locked @@ fun () ->
      sink.Sink.flush ();
      st.sink <- saved_sink;
      st.next_id <- saved_id;
      st.stack <- saved_stack)
    f

let parent () = match st.stack with [] -> 0 | p :: _ -> p

let span ?(attrs = []) name =
  match st.sink with
  | None -> none
  | Some _ -> (
    let opened =
      locked @@ fun () ->
      match st.sink with
      | None -> None
      | Some sink ->
        let id = st.next_id in
        st.next_id <- id + 1;
        sink.Sink.emit
          { Sink.name; id; parent = parent (); payload = Sink.Span_start; attrs };
        st.stack <- id :: st.stack;
        Some id
    in
    match opened with
    | None -> none
    | Some id -> { id; name; start = Monotonic_clock.now () })

let finish ?(attrs = []) sp =
  if sp.id <> 0 then
    let duration_ns = Int64.sub (Monotonic_clock.now ()) sp.start in
    locked @@ fun () ->
    match st.sink with
    | None -> ()
    | Some sink ->
      (st.stack <-
        (match st.stack with
        | top :: rest when top = sp.id -> rest
        | stack -> List.filter (fun id -> id <> sp.id) stack));
      sink.Sink.emit
        {
          Sink.name = sp.name;
          id = sp.id;
          parent = parent ();
          payload = Sink.Span_end { duration_ns };
          attrs;
        }

let emit ev =
  match st.sink with
  | None -> ()
  | Some _ -> (
    locked @@ fun () ->
    match st.sink with
    | None -> ()
    | Some sink ->
      let ev =
        if ev.Sink.parent = 0 then { ev with Sink.parent = parent () } else ev
      in
      sink.Sink.emit ev)

let event ?(attrs = []) name =
  match st.sink with
  | None -> ()
  | Some _ -> (
    locked @@ fun () ->
    match st.sink with
    | None -> ()
    | Some sink ->
      sink.Sink.emit
        { Sink.name; id = 0; parent = parent (); payload = Sink.Point; attrs })

let count ?(by = 1) name =
  match st.sink with
  | None -> ()
  | Some _ -> Metrics.incr ~by Metrics.global name

let gauge name value =
  match st.sink with
  | None -> ()
  | Some _ -> (
    locked @@ fun () ->
    match st.sink with
    | None -> ()
    | Some sink ->
      Metrics.set_gauge Metrics.global name value;
      sink.Sink.emit
        {
          Sink.name;
          id = 0;
          parent = parent ();
          payload = Sink.Gauge { value };
          attrs = [];
        })

let flush () =
  locked @@ fun () ->
  match st.sink with Some s -> s.Sink.flush () | None -> ()
