type span = { id : int; name : string; start : int64 }

let none = { id = 0; name = ""; start = 0L }

type state = {
  mutable sink : Sink.t option;
  mutable next_id : int;
  mutable stack : int list;  (* open span ids, innermost first *)
}

let st = { sink = None; next_id = 1; stack = [] }

let enabled () = match st.sink with None -> false | Some _ -> true

let set_sink sink =
  (match st.sink with Some s -> s.Sink.flush () | None -> ());
  st.sink <- sink;
  st.next_id <- 1;
  st.stack <- []

let with_sink sink f =
  let saved_sink = st.sink
  and saved_id = st.next_id
  and saved_stack = st.stack in
  st.sink <- Some sink;
  st.next_id <- 1;
  st.stack <- [];
  Fun.protect
    ~finally:(fun () ->
      sink.Sink.flush ();
      st.sink <- saved_sink;
      st.next_id <- saved_id;
      st.stack <- saved_stack)
    f

let parent () = match st.stack with [] -> 0 | p :: _ -> p

let span ?(attrs = []) name =
  match st.sink with
  | None -> none
  | Some sink ->
    let id = st.next_id in
    st.next_id <- id + 1;
    sink.Sink.emit
      { Sink.name; id; parent = parent (); payload = Sink.Span_start; attrs };
    st.stack <- id :: st.stack;
    { id; name; start = Monotonic_clock.now () }

let finish ?(attrs = []) sp =
  if sp.id <> 0 then
    match st.sink with
    | None -> ()
    | Some sink ->
      let duration_ns = Int64.sub (Monotonic_clock.now ()) sp.start in
      (st.stack <-
        (match st.stack with
        | top :: rest when top = sp.id -> rest
        | stack -> List.filter (fun id -> id <> sp.id) stack));
      sink.Sink.emit
        {
          Sink.name = sp.name;
          id = sp.id;
          parent = parent ();
          payload = Sink.Span_end { duration_ns };
          attrs;
        }

let emit ev =
  match st.sink with
  | None -> ()
  | Some sink ->
    let ev =
      if ev.Sink.parent = 0 then { ev with Sink.parent = parent () } else ev
    in
    sink.Sink.emit ev

let event ?(attrs = []) name =
  match st.sink with
  | None -> ()
  | Some sink ->
    sink.Sink.emit
      { Sink.name; id = 0; parent = parent (); payload = Sink.Point; attrs }

let count ?(by = 1) name =
  match st.sink with
  | None -> ()
  | Some _ -> Metrics.incr ~by Metrics.global name

let gauge name value =
  match st.sink with
  | None -> ()
  | Some sink ->
    Metrics.set_gauge Metrics.global name value;
    sink.Sink.emit
      {
        Sink.name;
        id = 0;
        parent = parent ();
        payload = Sink.Gauge { value };
        attrs = [];
      }

let flush () = match st.sink with Some s -> s.Sink.flush () | None -> ()
