module Table = Hbn_util.Table

(* One reconstructed span. [dur_ns < 0] marks a span whose end never
   made it into the trace (crash mid-run, truncated file): it still
   anchors its children but contributes no durations. *)
type node = {
  id : int;
  name : string;
  parent : int;
  mutable dur_ns : int64;
  mutable children : int list;  (* ids, emission order *)
  domain : int;
  seq : int;  (* start order, for stable layout *)
}

type t = {
  evs : Sink.event list;
  nodes : (int, node) Hashtbl.t;
  roots : int list;  (* ids with parent 0, emission order *)
}

let domain_of attrs =
  match List.assoc_opt "domain" attrs with Some (Sink.Int d) -> d | _ -> 0

let of_events evs =
  let nodes = Hashtbl.create 64 in
  let roots = ref [] in
  let seq = ref 0 in
  let ensure ~id ~name ~parent ~attrs =
    match Hashtbl.find_opt nodes id with
    | Some n -> n
    | None ->
      let n =
        {
          id;
          name;
          parent;
          dur_ns = -1L;
          children = [];
          domain = domain_of attrs;
          seq = !seq;
        }
      in
      incr seq;
      Hashtbl.add nodes id n;
      if parent = 0 then roots := id :: !roots
      else (
        match Hashtbl.find_opt nodes parent with
        | Some p -> p.children <- id :: p.children
        | None -> roots := id :: !roots);
      n
  in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Span_start ->
        ignore
          (ensure ~id:ev.Sink.id ~name:ev.Sink.name ~parent:ev.Sink.parent
             ~attrs:ev.Sink.attrs)
      | Sink.Span_end { duration_ns } ->
        (* The end event's [parent] is the enclosing span after the pop,
           i.e. the same parent the start recorded. *)
        let n =
          ensure ~id:ev.Sink.id ~name:ev.Sink.name ~parent:ev.Sink.parent
            ~attrs:ev.Sink.attrs
        in
        n.dur_ns <- duration_ns
      | _ -> ())
    evs;
  Hashtbl.iter (fun _ n -> n.children <- List.rev n.children) nodes;
  { evs; nodes; roots = List.rev !roots }

let events t = t.evs

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text ->
    let lines = String.split_on_char '\n' text in
    let rec parse acc lineno = function
      | [] -> Ok (List.rev acc)
      | [ "" ] -> Ok (List.rev acc)  (* trailing newline *)
      | line :: rest -> (
        if String.trim line = "" then parse acc (lineno + 1) rest
        else
          match Sink.of_json line with
          | Ok ev -> parse (ev :: acc) (lineno + 1) rest
          | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m))
    in
    Result.map of_events (parse [] 1 lines)

(* -- phases ------------------------------------------------------------- *)

type phase = { name : string; calls : int; total_ns : int64; self_ns : int64 }

let span_self t n =
  if n.dur_ns < 0L then 0L
  else
    let child_time =
      List.fold_left
        (fun acc c ->
          let ch = Hashtbl.find t.nodes c in
          if ch.dur_ns > 0L then Int64.add acc ch.dur_ns else acc)
        0L n.children
    in
    Int64.max 0L (Int64.sub n.dur_ns child_time)

let phases t =
  let tbl : (string, int ref * int64 ref * int64 ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Hashtbl.iter
    (fun _ n ->
      if n.dur_ns >= 0L then begin
        let calls, total, self =
          match Hashtbl.find_opt tbl n.name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0L, ref 0L) in
            Hashtbl.add tbl n.name cell;
            cell
        in
        incr calls;
        total := Int64.add !total n.dur_ns;
        self := Int64.add !self (span_self t n)
      end)
    t.nodes;
  Hashtbl.fold
    (fun name (calls, total, self) acc ->
      { name; calls = !calls; total_ns = !total; self_ns = !self } :: acc)
    tbl []
  |> List.sort (fun a b ->
         if a.total_ns <> b.total_ns then compare b.total_ns a.total_ns
         else compare a.name b.name)

let critical_path t =
  let closed_dur n = if n.dur_ns >= 0L then n.dur_ns else -1L in
  let best ids =
    List.fold_left
      (fun acc id ->
        let n = Hashtbl.find t.nodes id in
        match acc with
        | Some m when closed_dur m >= closed_dur n -> acc
        | _ -> if closed_dur n >= 0L then Some n else acc)
      None ids
  in
  let rec descend acc (n : node) =
    let acc = (n.name, n.dur_ns) :: acc in
    match best n.children with
    | Some c -> descend acc c
    | None -> List.rev acc
  in
  match best t.roots with None -> [] | Some root -> descend [] root

(* -- metric rollups ----------------------------------------------------- *)

let counters t =
  (* Counter events are whole-run snapshots ([Metrics.emit]); the last
     one per name wins. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Counter { value } -> Hashtbl.replace tbl ev.Sink.name value
      | _ -> ())
    t.evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let gauges t =
  (* Gauges stream per sample: summarize count/min/max/last. *)
  let tbl : (string, int ref * float ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Gauge { value } -> (
        match Hashtbl.find_opt tbl ev.Sink.name with
        | Some (n, lo, hi, last) ->
          incr n;
          if value < !lo then lo := value;
          if value > !hi then hi := value;
          last := value
        | None ->
          Hashtbl.add tbl ev.Sink.name (ref 1, ref value, ref value, ref value))
      | _ -> ())
    t.evs;
  Hashtbl.fold
    (fun k (n, lo, hi, last) acc -> (k, (!n, !lo, !hi, !last)) :: acc)
    tbl []
  |> List.sort compare

let fault_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Fault { fault; _ } ->
        Hashtbl.replace tbl fault
          (1 + try Hashtbl.find tbl fault with Not_found -> 0)
      | _ -> ())
    t.evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* -- series ------------------------------------------------------------- *)

type series = {
  s_name : string;
  points : int;
  first_round : int;
  last_round : int;
  total : int;
  peak : int;
  peak_round : int;
}

let series_events t =
  List.filter_map
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Series { round; time; span; value; edge } ->
        Some (ev.Sink.name, round, time, span, value, edge)
      | _ -> None)
    t.evs

let series t =
  let tbl : (string, series ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, round, _time, _span, value, _edge) ->
      match Hashtbl.find_opt tbl name with
      | Some s ->
        let v = !s in
        s :=
          {
            v with
            points = v.points + 1;
            first_round = min v.first_round round;
            last_round = max v.last_round round;
            total = v.total + value;
            peak = max v.peak value;
            peak_round = (if value > v.peak then round else v.peak_round);
          }
      | None ->
        Hashtbl.add tbl name
          (ref
             {
               s_name = name;
               points = 1;
               first_round = round;
               last_round = round;
               total = value;
               peak = value;
               peak_round = round;
             }))
    (series_events t);
  Hashtbl.fold (fun _ s acc -> !s :: acc) tbl []
  |> List.sort (fun a b -> compare a.s_name b.s_name)

let edge_series t =
  List.filter
    (fun (_, _, _, _, _, edge) -> edge >= 0)
    (series_events t)

let round_range t =
  match edge_series t with
  | [] -> None
  | (_, r, _, _, _, _) :: _ as es ->
    Some
      (List.fold_left
         (fun (lo, hi) (_, r, _, _, _, _) -> (min lo r, max hi r))
         (r, r) es)

let bucket_bounds ?(buckets = 8) t =
  match round_range t with
  | None -> [||]
  | Some (lo, hi) ->
    let buckets = max 1 buckets in
    let width = max 1 ((hi - lo + buckets) / buckets) in
    Array.init
      ((hi - lo) / width + 1)
      (fun i -> (lo + (i * width), min hi (lo + ((i + 1) * width) - 1)))

let hottest_edges ?(top = 5) ?(buckets = 8) t =
  match round_range t with
  | None -> [||]
  | Some (lo, hi) ->
    let buckets = max 1 buckets in
    let width = max 1 ((hi - lo + buckets) / buckets) in
    let nbuckets = ((hi - lo) / width) + 1 in
    let totals = Hashtbl.create 16 in
    List.iter
      (fun (_, round, _, _, value, edge) ->
        let cells =
          match Hashtbl.find_opt totals edge with
          | Some c -> c
          | None ->
            let c = (ref 0, Array.make nbuckets 0) in
            Hashtbl.add totals edge c;
            c
        in
        let total, per_bucket = cells in
        total := !total + value;
        let b = (round - lo) / width in
        per_bucket.(b) <- per_bucket.(b) + value)
      (edge_series t);
    let all =
      Hashtbl.fold
        (fun edge (total, per_bucket) acc -> (edge, !total, per_bucket) :: acc)
        totals []
      |> List.sort (fun (e1, t1, _) (e2, t2, _) ->
             if t1 <> t2 then compare t2 t1 else compare e1 e2)
    in
    let rec take i = function
      | x :: rest when i < top -> x :: take (i + 1) rest
      | _ -> []
    in
    Array.of_list (take 0 all)

(* -- table renderer ----------------------------------------------------- *)

let ms ns = Int64.to_float ns /. 1e6

let to_table ?(top = 5) t =
  let buf = Buffer.create 1024 in
  let section title body =
    if body <> "" then begin
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      Buffer.add_string buf body;
      Buffer.add_char buf '\n'
    end
  in
  let table_str headers rows =
    if rows = [] then ""
    else begin
      let table = Table.create headers in
      List.iter (Table.add_row table) rows;
      Table.render table
    end
  in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d events\n\n" (List.length t.evs));
  section "phases (wall time per span name)"
    (table_str
       [ "phase"; "calls"; "total ms"; "self ms"; "mean ms" ]
       (List.map
          (fun p ->
            [
              p.name;
              string_of_int p.calls;
              Table.fmt_float (ms p.total_ns);
              Table.fmt_float (ms p.self_ns);
              Table.fmt_float (ms p.total_ns /. float_of_int p.calls);
            ])
          (phases t)));
  (match critical_path t with
  | [] -> ()
  | ((_, root_ns) :: _) as path ->
    Buffer.add_string buf "critical path (heaviest nested chain)\n";
    List.iteri
      (fun depth (name, dur) ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s  %s ms  (%.1f%% of root)\n"
             (String.make (2 * depth) ' ')
             name
             (Table.fmt_float (ms dur))
             (if root_ns > 0L then 100. *. ms dur /. ms root_ns else 100.)))
      path;
    Buffer.add_char buf '\n');
  section "counters"
    (table_str [ "counter"; "total" ]
       (List.map (fun (k, v) -> [ k; string_of_int v ]) (counters t)));
  section "gauges"
    (table_str
       [ "gauge"; "samples"; "min"; "max"; "last" ]
       (List.map
          (fun (k, (n, lo, hi, last)) ->
            [
              k;
              string_of_int n;
              Table.fmt_float lo;
              Table.fmt_float hi;
              Table.fmt_float last;
            ])
          (gauges t)));
  section "series (per-round telemetry)"
    (table_str
       [ "series"; "points"; "rounds"; "total"; "peak"; "peak@round" ]
       (List.map
          (fun s ->
            [
              s.s_name;
              string_of_int s.points;
              Printf.sprintf "%d-%d" s.first_round s.last_round;
              string_of_int s.total;
              string_of_int s.peak;
              string_of_int s.peak_round;
            ])
          (series t)));
  (let edges = hottest_edges ~top t in
   if Array.length edges > 0 then begin
     let bounds = bucket_bounds t in
     let headers =
       [ "edge"; "total" ]
       @ (Array.to_list bounds
         |> List.map (fun (lo, hi) ->
                if lo = hi then Printf.sprintf "r%d" lo
                else Printf.sprintf "r%d-%d" lo hi))
     in
     section "hottest edges over time (traversals per round bucket)"
       (table_str headers
          (Array.to_list edges
          |> List.map (fun (edge, total, per_bucket) ->
                 [ string_of_int edge; string_of_int total ]
                 @ List.map string_of_int (Array.to_list per_bucket))))
   end);
  section "faults"
    (table_str [ "fault"; "events" ]
       (List.map (fun (k, v) -> [ k; string_of_int v ]) (fault_counts t)));
  Buffer.contents buf

(* -- JSON renderer ------------------------------------------------------ *)

let to_json ?(top = 5) t =
  let buf = Buffer.create 1024 in
  let str s = Json.escape_string buf s in
  let fmt fmtstr = Printf.ksprintf (Buffer.add_string buf) fmtstr in
  fmt "{\"schema\":\"hbn.report/v1\",\"events\":%d" (List.length t.evs);
  fmt ",\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str p.name;
      fmt ",\"calls\":%d,\"total_ns\":%Ld,\"self_ns\":%Ld}" p.calls p.total_ns
        p.self_ns)
    (phases t);
  fmt "],\"critical_path\":[";
  List.iteri
    (fun i (name, dur) ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str name;
      fmt ",\"dur_ns\":%Ld}" dur)
    (critical_path t);
  fmt "],\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      str k;
      fmt ":%d" v)
    (counters t);
  fmt "},\"gauges\":[";
  List.iteri
    (fun i (k, (n, lo, hi, last)) ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str k;
      fmt ",\"samples\":%d,\"min\":" n;
      Json.float_to_string buf lo;
      fmt ",\"max\":";
      Json.float_to_string buf hi;
      fmt ",\"last\":";
      Json.float_to_string buf last;
      fmt "}")
    (gauges t);
  fmt "],\"series\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str s.s_name;
      fmt
        ",\"points\":%d,\"first_round\":%d,\"last_round\":%d,\"total\":%d,\
         \"peak\":%d,\"peak_round\":%d}"
        s.points s.first_round s.last_round s.total s.peak s.peak_round)
    (series t);
  fmt "],\"hottest_edges\":[";
  Array.iteri
    (fun i (edge, total, per_bucket) ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"edge\":%d,\"total\":%d,\"buckets\":[%s]}" edge total
        (String.concat ","
           (List.map string_of_int (Array.to_list per_bucket))))
    (hottest_edges ~top t);
  fmt "],\"faults\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      str k;
      fmt ":%d" v)
    (fault_counts t);
  fmt "}}";
  Buffer.contents buf

(* -- Chrome trace-event renderer ---------------------------------------- *)

(* Only durations survive into a trace, so the flame chart's time axis
   is reconstructed: roots are laid end to end, children sequentially
   from their parent's start. Widths are real; offsets are synthetic. *)
let to_chrome t =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let emit_obj f =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '{';
    f ();
    Buffer.add_char buf '}'
  in
  let fmt fmtstr = Printf.ksprintf (Buffer.add_string buf) fmtstr in
  let str s = Json.escape_string buf s in
  Buffer.add_string buf "{\"traceEvents\":[";
  emit_obj (fun () ->
      fmt
        "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"spans (reconstructed timeline)\"}");
  emit_obj (fun () ->
      fmt
        "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
         \"args\":{\"name\":\"telemetry (round axis)\"}");
  let us ns = Int64.to_float ns /. 1e3 in
  (* Depth-first layout; [at] is the span's synthetic start in µs. *)
  let rec lay at id =
    let n = Hashtbl.find t.nodes id in
    let dur = if n.dur_ns >= 0L then us n.dur_ns else 0. in
    if n.dur_ns >= 0L then
      emit_obj (fun () ->
          fmt "\"name\":";
          str n.name;
          fmt ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d" at
            dur n.domain);
    let _ =
      List.fold_left
        (fun cursor c ->
          let cn = Hashtbl.find t.nodes c in
          let cdur = if cn.dur_ns >= 0L then us cn.dur_ns else 0. in
          lay cursor c;
          cursor +. cdur)
        at n.children
    in
    ()
  in
  let _ =
    List.fold_left
      (fun cursor id ->
        let n = Hashtbl.find t.nodes id in
        lay cursor id;
        cursor +. (if n.dur_ns >= 0L then us n.dur_ns else 0.))
      0. t.roots
  in
  (* Series on the virtual-time axis: one counter track per series name
     (and per edge for per-edge series). [time] equals the round number
     for files from the synchronous engines, so their traces are
     unchanged; event-driven runs land at their engine clock. *)
  List.iter
    (fun (name, _round, time, _span, value, edge) ->
      emit_obj (fun () ->
          fmt "\"name\":";
          str (if edge >= 0 then Printf.sprintf "%s[%d]" name edge else name);
          fmt
            ",\"ph\":\"C\",\"ts\":%d,\"pid\":2,\"tid\":0,\
             \"args\":{\"value\":%d}"
            (int_of_float time) value))
    (series_events t);
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Fault { round; fault; _ } ->
        emit_obj (fun () ->
            fmt "\"name\":";
            str ("fault." ^ fault);
            fmt ",\"ph\":\"i\",\"s\":\"g\",\"ts\":%d,\"pid\":2,\"tid\":0" round)
      | _ -> ())
    t.evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf
