module Table = Hbn_util.Table

(* One reconstructed span. [dur_ns < 0] marks a span whose end never
   made it into the trace (crash mid-run, truncated file): it still
   anchors its children but contributes no durations. *)
type node = {
  id : int;
  name : string;
  parent : int;
  mutable dur_ns : int64;
  mutable children : int list;  (* ids, emission order *)
  domain : int;
  seq : int;  (* start order, for stable layout *)
}

type t = {
  evs : Sink.event list;
  nodes : (int, node) Hashtbl.t;
  roots : int list;  (* ids with parent 0, emission order *)
  unknown : int;  (* lines of unknown event kind skipped by [load] *)
}

let domain_of attrs =
  match List.assoc_opt "domain" attrs with Some (Sink.Int d) -> d | _ -> 0

let of_events evs =
  let nodes = Hashtbl.create 64 in
  let roots = ref [] in
  let seq = ref 0 in
  let ensure ~id ~name ~parent ~attrs =
    match Hashtbl.find_opt nodes id with
    | Some n -> n
    | None ->
      let n =
        {
          id;
          name;
          parent;
          dur_ns = -1L;
          children = [];
          domain = domain_of attrs;
          seq = !seq;
        }
      in
      incr seq;
      Hashtbl.add nodes id n;
      if parent = 0 then roots := id :: !roots
      else (
        match Hashtbl.find_opt nodes parent with
        | Some p -> p.children <- id :: p.children
        | None -> roots := id :: !roots);
      n
  in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Span_start ->
        ignore
          (ensure ~id:ev.Sink.id ~name:ev.Sink.name ~parent:ev.Sink.parent
             ~attrs:ev.Sink.attrs)
      | Sink.Span_end { duration_ns } ->
        (* The end event's [parent] is the enclosing span after the pop,
           i.e. the same parent the start recorded. *)
        let n =
          ensure ~id:ev.Sink.id ~name:ev.Sink.name ~parent:ev.Sink.parent
            ~attrs:ev.Sink.attrs
        in
        n.dur_ns <- duration_ns
      | _ -> ())
    evs;
  Hashtbl.iter (fun _ n -> n.children <- List.rev n.children) nodes;
  { evs; nodes; roots = List.rev !roots; unknown = 0 }

let events t = t.evs
let unknown_events t = t.unknown

(* A line [Sink.of_json] rejected is skippable only when it is valid
   JSON whose "ev" tag is a kind this binary does not know — a newer
   trace read by an older reader. A malformed known event still fails
   the load: that trace does not round-trip and hiding it would corrupt
   every rollup silently. *)
let unknown_kind line =
  match Json.parse line with
  | exception Json.Parse _ -> false
  | exception Failure _ -> false
  | j -> (
    match Json.member "ev" j with
    | Some (Json.Str ev) -> not (List.mem ev Sink.kinds)
    | _ -> false)

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text ->
    let lines = String.split_on_char '\n' text in
    let rec parse acc skipped lineno = function
      | [] -> Ok (List.rev acc, skipped)
      | [ "" ] -> Ok (List.rev acc, skipped)  (* trailing newline *)
      | line :: rest -> (
        if String.trim line = "" then parse acc skipped (lineno + 1) rest
        else
          match Sink.of_json line with
          | Ok ev -> parse (ev :: acc) skipped (lineno + 1) rest
          | Error _ when unknown_kind line ->
            parse acc (skipped + 1) (lineno + 1) rest
          | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m))
    in
    Result.map
      (fun (evs, skipped) -> { (of_events evs) with unknown = skipped })
      (parse [] 0 1 lines)

(* -- phases ------------------------------------------------------------- *)

type phase = { name : string; calls : int; total_ns : int64; self_ns : int64 }

let span_self t n =
  if n.dur_ns < 0L then 0L
  else
    let child_time =
      List.fold_left
        (fun acc c ->
          let ch = Hashtbl.find t.nodes c in
          if ch.dur_ns > 0L then Int64.add acc ch.dur_ns else acc)
        0L n.children
    in
    Int64.max 0L (Int64.sub n.dur_ns child_time)

let phases t =
  let tbl : (string, int ref * int64 ref * int64 ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Hashtbl.iter
    (fun _ n ->
      if n.dur_ns >= 0L then begin
        let calls, total, self =
          match Hashtbl.find_opt tbl n.name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0L, ref 0L) in
            Hashtbl.add tbl n.name cell;
            cell
        in
        incr calls;
        total := Int64.add !total n.dur_ns;
        self := Int64.add !self (span_self t n)
      end)
    t.nodes;
  Hashtbl.fold
    (fun name (calls, total, self) acc ->
      { name; calls = !calls; total_ns = !total; self_ns = !self } :: acc)
    tbl []
  |> List.sort (fun a b ->
         if a.total_ns <> b.total_ns then compare b.total_ns a.total_ns
         else compare a.name b.name)

let critical_path t =
  let closed_dur n = if n.dur_ns >= 0L then n.dur_ns else -1L in
  let best ids =
    List.fold_left
      (fun acc id ->
        let n = Hashtbl.find t.nodes id in
        match acc with
        | Some m when closed_dur m >= closed_dur n -> acc
        | _ -> if closed_dur n >= 0L then Some n else acc)
      None ids
  in
  let rec descend acc (n : node) =
    let acc = (n.name, n.dur_ns) :: acc in
    match best n.children with
    | Some c -> descend acc c
    | None -> List.rev acc
  in
  match best t.roots with None -> [] | Some root -> descend [] root

(* -- metric rollups ----------------------------------------------------- *)

let counters t =
  (* Counter events are whole-run snapshots ([Metrics.emit]); the last
     one per name wins. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Counter { value } -> Hashtbl.replace tbl ev.Sink.name value
      | _ -> ())
    t.evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let gauges t =
  (* Gauges stream per sample: summarize count/min/max/last. *)
  let tbl : (string, int ref * float ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Gauge { value } -> (
        match Hashtbl.find_opt tbl ev.Sink.name with
        | Some (n, lo, hi, last) ->
          incr n;
          if value < !lo then lo := value;
          if value > !hi then hi := value;
          last := value
        | None ->
          Hashtbl.add tbl ev.Sink.name (ref 1, ref value, ref value, ref value))
      | _ -> ())
    t.evs;
  Hashtbl.fold
    (fun k (n, lo, hi, last) acc -> (k, (!n, !lo, !hi, !last)) :: acc)
    tbl []
  |> List.sort compare

let fault_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Fault { fault; _ } ->
        Hashtbl.replace tbl fault
          (1 + try Hashtbl.find tbl fault with Not_found -> 0)
      | _ -> ())
    t.evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* -- alerts ------------------------------------------------------------- *)

type alert_summary = {
  al_series : string;
  al_kind : string;
  al_count : int;
  al_first_round : int;
  al_last_round : int;
  al_max_magnitude : float;
}

let alert_events t =
  List.filter_map
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Alert { round; time; series; kind; magnitude } ->
        Some (round, time, series, kind, magnitude)
      | _ -> None)
    t.evs

let alert_summaries t =
  let tbl : (string * string, alert_summary ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (round, _time, series, kind, magnitude) ->
      match Hashtbl.find_opt tbl (series, kind) with
      | Some s ->
        let v = !s in
        s :=
          {
            v with
            al_count = v.al_count + 1;
            al_first_round = min v.al_first_round round;
            al_last_round = max v.al_last_round round;
            al_max_magnitude = Float.max v.al_max_magnitude magnitude;
          }
      | None ->
        Hashtbl.add tbl (series, kind)
          (ref
             {
               al_series = series;
               al_kind = kind;
               al_count = 1;
               al_first_round = round;
               al_last_round = round;
               al_max_magnitude = magnitude;
             }))
    (alert_events t);
  Hashtbl.fold (fun _ s acc -> !s :: acc) tbl []
  |> List.sort (fun a b -> compare (a.al_series, a.al_kind) (b.al_series, b.al_kind))

(* -- series ------------------------------------------------------------- *)

type series = {
  s_name : string;
  points : int;
  first_round : int;
  last_round : int;
  first_time : float;
  last_time : float;
  total : int;
  peak : int;
  peak_round : int;
}

let series_events t =
  List.filter_map
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Series { round; time; span; value; edge } ->
        Some (ev.Sink.name, round, time, span, value, edge)
      | _ -> None)
    t.evs

let series t =
  let tbl : (string, series ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, round, time, _span, value, _edge) ->
      match Hashtbl.find_opt tbl name with
      | Some s ->
        let v = !s in
        s :=
          {
            v with
            points = v.points + 1;
            first_round = min v.first_round round;
            last_round = max v.last_round round;
            first_time = Float.min v.first_time time;
            last_time = Float.max v.last_time time;
            total = v.total + value;
            peak = max v.peak value;
            peak_round = (if value > v.peak then round else v.peak_round);
          }
      | None ->
        Hashtbl.add tbl name
          (ref
             {
               s_name = name;
               points = 1;
               first_round = round;
               last_round = round;
               first_time = time;
               last_time = time;
               total = value;
               peak = value;
               peak_round = round;
             }))
    (series_events t);
  Hashtbl.fold (fun _ s acc -> !s :: acc) tbl []
  |> List.sort (fun a b -> compare a.s_name b.s_name)

let edge_series t =
  List.filter
    (fun (_, _, _, _, _, edge) -> edge >= 0)
    (series_events t)

let round_range t =
  match edge_series t with
  | [] -> None
  | (_, r, _, _, _, _) :: _ as es ->
    Some
      (List.fold_left
         (fun (lo, hi) (_, r, _, _, _, _) -> (min lo r, max hi r))
         (r, r) es)

let bucket_bounds ?(buckets = 8) t =
  match round_range t with
  | None -> [||]
  | Some (lo, hi) ->
    let buckets = max 1 buckets in
    let width = max 1 ((hi - lo + buckets) / buckets) in
    Array.init
      ((hi - lo) / width + 1)
      (fun i -> (lo + (i * width), min hi (lo + ((i + 1) * width) - 1)))

let hottest_edges ?(top = 5) ?(buckets = 8) t =
  match round_range t with
  | None -> [||]
  | Some (lo, hi) ->
    let buckets = max 1 buckets in
    let width = max 1 ((hi - lo + buckets) / buckets) in
    let nbuckets = ((hi - lo) / width) + 1 in
    let totals = Hashtbl.create 16 in
    List.iter
      (fun (_, round, _, _, value, edge) ->
        let cells =
          match Hashtbl.find_opt totals edge with
          | Some c -> c
          | None ->
            let c = (ref 0, Array.make nbuckets 0) in
            Hashtbl.add totals edge c;
            c
        in
        let total, per_bucket = cells in
        total := !total + value;
        let b = (round - lo) / width in
        per_bucket.(b) <- per_bucket.(b) + value)
      (edge_series t);
    let all =
      Hashtbl.fold
        (fun edge (total, per_bucket) acc -> (edge, !total, per_bucket) :: acc)
        totals []
      |> List.sort (fun (e1, t1, _) (e2, t2, _) ->
             if t1 <> t2 then compare t2 t1 else compare e1 e2)
    in
    let rec take i = function
      | x :: rest when i < top -> x :: take (i + 1) rest
      | _ -> []
    in
    Array.of_list (take 0 all)

(* -- table renderer ----------------------------------------------------- *)

let ms ns = Int64.to_float ns /. 1e6

let to_table ?(top = 5) t =
  let buf = Buffer.create 1024 in
  let section title body =
    if body <> "" then begin
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      Buffer.add_string buf body;
      Buffer.add_char buf '\n'
    end
  in
  let table_str headers rows =
    if rows = [] then ""
    else begin
      let table = Table.create headers in
      List.iter (Table.add_row table) rows;
      Table.render table
    end
  in
  Buffer.add_string buf
    (if t.unknown = 0 then
       Printf.sprintf "trace: %d events\n\n" (List.length t.evs)
     else
       Printf.sprintf "trace: %d events (%d of unknown kind skipped)\n\n"
         (List.length t.evs) t.unknown);
  section "phases (wall time per span name)"
    (table_str
       [ "phase"; "calls"; "total ms"; "self ms"; "mean ms" ]
       (List.map
          (fun p ->
            [
              p.name;
              string_of_int p.calls;
              Table.fmt_float (ms p.total_ns);
              Table.fmt_float (ms p.self_ns);
              Table.fmt_float (ms p.total_ns /. float_of_int p.calls);
            ])
          (phases t)));
  (match critical_path t with
  | [] -> ()
  | ((_, root_ns) :: _) as path ->
    Buffer.add_string buf "critical path (heaviest nested chain)\n";
    List.iteri
      (fun depth (name, dur) ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s  %s ms  (%.1f%% of root)\n"
             (String.make (2 * depth) ' ')
             name
             (Table.fmt_float (ms dur))
             (if root_ns > 0L then 100. *. ms dur /. ms root_ns else 100.)))
      path;
    Buffer.add_char buf '\n');
  section "counters"
    (table_str [ "counter"; "total" ]
       (List.map (fun (k, v) -> [ k; string_of_int v ]) (counters t)));
  section "gauges"
    (table_str
       [ "gauge"; "samples"; "min"; "max"; "last" ]
       (List.map
          (fun (k, (n, lo, hi, last)) ->
            [
              k;
              string_of_int n;
              Table.fmt_float lo;
              Table.fmt_float hi;
              Table.fmt_float last;
            ])
          (gauges t)));
  section "series (per-round telemetry)"
    (table_str
       [ "series"; "points"; "rounds"; "vtime"; "total"; "peak"; "peak@round" ]
       (List.map
          (fun s ->
            [
              s.s_name;
              string_of_int s.points;
              Printf.sprintf "%d-%d" s.first_round s.last_round;
              (if s.first_time = s.last_time then
                 Printf.sprintf "%g" s.first_time
               else Printf.sprintf "%g-%g" s.first_time s.last_time);
              string_of_int s.total;
              string_of_int s.peak;
              string_of_int s.peak_round;
            ])
          (series t)));
  section "alerts (change-point detections)"
    (table_str
       [ "series"; "kind"; "alerts"; "rounds"; "max magnitude" ]
       (List.map
          (fun a ->
            [
              a.al_series;
              a.al_kind;
              string_of_int a.al_count;
              (if a.al_first_round = a.al_last_round then
                 string_of_int a.al_first_round
               else Printf.sprintf "%d-%d" a.al_first_round a.al_last_round);
              Table.fmt_float a.al_max_magnitude;
            ])
          (alert_summaries t)));
  (let edges = hottest_edges ~top t in
   if Array.length edges > 0 then begin
     let bounds = bucket_bounds t in
     let headers =
       [ "edge"; "total" ]
       @ (Array.to_list bounds
         |> List.map (fun (lo, hi) ->
                if lo = hi then Printf.sprintf "r%d" lo
                else Printf.sprintf "r%d-%d" lo hi))
     in
     section "hottest edges over time (traversals per round bucket)"
       (table_str headers
          (Array.to_list edges
          |> List.map (fun (edge, total, per_bucket) ->
                 [ string_of_int edge; string_of_int total ]
                 @ List.map string_of_int (Array.to_list per_bucket))))
   end);
  section "faults"
    (table_str [ "fault"; "events" ]
       (List.map (fun (k, v) -> [ k; string_of_int v ]) (fault_counts t)));
  Buffer.contents buf

(* -- JSON renderer ------------------------------------------------------ *)

let to_json ?(top = 5) t =
  let buf = Buffer.create 1024 in
  let str s = Json.escape_string buf s in
  let fmt fmtstr = Printf.ksprintf (Buffer.add_string buf) fmtstr in
  fmt "{\"schema\":\"hbn.report/v1\",\"events\":%d,\"unknown_events\":%d"
    (List.length t.evs) t.unknown;
  fmt ",\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str p.name;
      fmt ",\"calls\":%d,\"total_ns\":%Ld,\"self_ns\":%Ld}" p.calls p.total_ns
        p.self_ns)
    (phases t);
  fmt "],\"critical_path\":[";
  List.iteri
    (fun i (name, dur) ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str name;
      fmt ",\"dur_ns\":%Ld}" dur)
    (critical_path t);
  fmt "],\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      str k;
      fmt ":%d" v)
    (counters t);
  fmt "},\"gauges\":[";
  List.iteri
    (fun i (k, (n, lo, hi, last)) ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str k;
      fmt ",\"samples\":%d,\"min\":" n;
      Json.float_to_string buf lo;
      fmt ",\"max\":";
      Json.float_to_string buf hi;
      fmt ",\"last\":";
      Json.float_to_string buf last;
      fmt "}")
    (gauges t);
  fmt "],\"series\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str s.s_name;
      fmt ",\"points\":%d,\"first_round\":%d,\"last_round\":%d" s.points
        s.first_round s.last_round;
      fmt ",\"first_time\":";
      Json.float_to_string buf s.first_time;
      fmt ",\"last_time\":";
      Json.float_to_string buf s.last_time;
      fmt ",\"total\":%d,\"peak\":%d,\"peak_round\":%d}" s.total s.peak
        s.peak_round)
    (series t);
  fmt "],\"alerts\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"series\":";
      str a.al_series;
      fmt ",\"kind\":";
      str a.al_kind;
      fmt ",\"count\":%d,\"first_round\":%d,\"last_round\":%d" a.al_count
        a.al_first_round a.al_last_round;
      fmt ",\"max_magnitude\":";
      Json.float_to_string buf a.al_max_magnitude;
      fmt "}")
    (alert_summaries t);
  fmt "],\"hottest_edges\":[";
  Array.iteri
    (fun i (edge, total, per_bucket) ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"edge\":%d,\"total\":%d,\"buckets\":[%s]}" edge total
        (String.concat ","
           (List.map string_of_int (Array.to_list per_bucket))))
    (hottest_edges ~top t);
  fmt "],\"faults\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      str k;
      fmt ":%d" v)
    (fault_counts t);
  fmt "}}";
  Buffer.contents buf

(* -- Chrome trace-event renderer ---------------------------------------- *)

(* Only durations survive into a trace, so the flame chart's time axis
   is reconstructed: roots are laid end to end, children sequentially
   from their parent's start. Widths are real; offsets are synthetic. *)
let to_chrome t =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let emit_obj f =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '{';
    f ();
    Buffer.add_char buf '}'
  in
  let fmt fmtstr = Printf.ksprintf (Buffer.add_string buf) fmtstr in
  let str s = Json.escape_string buf s in
  Buffer.add_string buf "{\"traceEvents\":[";
  emit_obj (fun () ->
      fmt
        "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"spans (reconstructed timeline)\"}");
  emit_obj (fun () ->
      fmt
        "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
         \"args\":{\"name\":\"telemetry (round axis)\"}");
  let us ns = Int64.to_float ns /. 1e3 in
  (* Depth-first layout; [at] is the span's synthetic start in µs. *)
  let rec lay at id =
    let n = Hashtbl.find t.nodes id in
    let dur = if n.dur_ns >= 0L then us n.dur_ns else 0. in
    if n.dur_ns >= 0L then
      emit_obj (fun () ->
          fmt "\"name\":";
          str n.name;
          fmt ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d" at
            dur n.domain);
    let _ =
      List.fold_left
        (fun cursor c ->
          let cn = Hashtbl.find t.nodes c in
          let cdur = if cn.dur_ns >= 0L then us cn.dur_ns else 0. in
          lay cursor c;
          cursor +. cdur)
        at n.children
    in
    ()
  in
  let _ =
    List.fold_left
      (fun cursor id ->
        let n = Hashtbl.find t.nodes id in
        lay cursor id;
        cursor +. (if n.dur_ns >= 0L then us n.dur_ns else 0.))
      0. t.roots
  in
  (* Series on the virtual-time axis: one counter track per series name
     (and per edge for per-edge series). [time] equals the round number
     for files from the synchronous engines, so their traces are
     unchanged; event-driven runs land at their engine clock. *)
  List.iter
    (fun (name, _round, time, _span, value, edge) ->
      emit_obj (fun () ->
          fmt "\"name\":";
          str (if edge >= 0 then Printf.sprintf "%s[%d]" name edge else name);
          fmt
            ",\"ph\":\"C\",\"ts\":%.3f,\"pid\":2,\"tid\":0,\
             \"args\":{\"value\":%d}"
            time value))
    (series_events t);
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.payload with
      | Sink.Fault { round; fault; _ } ->
        emit_obj (fun () ->
            fmt "\"name\":";
            str ("fault." ^ fault);
            fmt ",\"ph\":\"i\",\"s\":\"g\",\"ts\":%d,\"pid\":2,\"tid\":0" round)
      | Sink.Alert { time; series; kind; _ } ->
        emit_obj (fun () ->
            fmt "\"name\":";
            str (Printf.sprintf "alert.%s[%s]" kind series);
            fmt ",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":2,\"tid\":0"
              time)
      | _ -> ())
    t.evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* -- trace diffing ------------------------------------------------------ *)

(* Per-edge series get their own key so a hotspot migrating between
   edges shows as two changed rows, not a wash. *)
let series_key name edge =
  if edge >= 0 then Printf.sprintf "%s[%d]" name edge else name

let drift_monitor t =
  let mon = Monitor.create () in
  List.iter
    (fun (name, round, time, span, value, edge) ->
      let span = max 1 span in
      Monitor.observe mon ~series:(series_key name edge) ~round ~vtime:time
        ~span
        (float_of_int value /. float_of_int span))
    (series_events t);
  mon

type series_cmp = {
  c_name : string;
  base_points : int;
  cur_points : int;
  base_total : int;
  cur_total : int;
  base_peak : int;
  cur_peak : int;
  base_p50 : float;  (* per-round rate, P-square estimate *)
  cur_p50 : float;
  base_p95 : float;
  cur_p95 : float;
}

type diff = {
  d_base_events : int;
  d_cur_events : int;
  d_series : series_cmp list;  (* union of both traces, key order *)
  d_changed : int;
  d_base_alerts : Monitor.alert list;
  d_cur_alerts : Monitor.alert list;
  d_new_alerts : Monitor.alert list;
  d_gone_alerts : Monitor.alert list;
}

let cmp_changed c =
  c.base_points <> c.cur_points
  || c.base_total <> c.cur_total
  || c.base_peak <> c.cur_peak
  || c.base_p50 <> c.cur_p50
  || c.base_p95 <> c.cur_p95

(* (points, total, peak) per series key, straight from the events. *)
let key_stats t =
  let tbl : (string, (int * int * int) ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, _round, _time, _span, value, edge) ->
      let key = series_key name edge in
      match Hashtbl.find_opt tbl key with
      | Some cell ->
        let pts, total, peak = !cell in
        cell := (pts + 1, total + value, max peak value)
      | None -> Hashtbl.add tbl key (ref (1, value, value)))
    (series_events t);
  tbl

let diff ~base ~cur =
  let base_mon = drift_monitor base and cur_mon = drift_monitor cur in
  let base_stats = key_stats base and cur_stats = key_stats cur in
  let keys =
    let seen = Hashtbl.create 16 in
    let add k acc = if Hashtbl.mem seen k then acc else (Hashtbl.add seen k (); k :: acc) in
    Hashtbl.fold (fun k _ acc -> add k acc) base_stats []
    |> fun acc -> Hashtbl.fold (fun k _ acc -> add k acc) cur_stats acc
    |> List.sort String.compare
  in
  let quantiles mon key =
    match Monitor.estimate mon ~series:key with
    | Some e -> (e.Monitor.e_p50, e.Monitor.e_p95)
    | None -> (0.0, 0.0)
  in
  let cmps =
    List.map
      (fun key ->
        let stats tbl =
          match Hashtbl.find_opt tbl key with
          | Some cell -> !cell
          | None -> (0, 0, 0)
        in
        let b_pts, b_total, b_peak = stats base_stats
        and c_pts, c_total, c_peak = stats cur_stats in
        let b_p50, b_p95 = quantiles base_mon key
        and c_p50, c_p95 = quantiles cur_mon key in
        {
          c_name = key;
          base_points = b_pts;
          cur_points = c_pts;
          base_total = b_total;
          cur_total = c_total;
          base_peak = b_peak;
          cur_peak = c_peak;
          base_p50 = b_p50;
          cur_p50 = c_p50;
          base_p95 = b_p95;
          cur_p95 = c_p95;
        })
      keys
  in
  let base_alerts = Monitor.alerts base_mon
  and cur_alerts = Monitor.alerts cur_mon in
  let signature a = (a.Monitor.a_series, a.Monitor.a_kind) in
  let only xs ys =
    List.filter (fun a -> not (List.exists (fun b -> signature b = signature a) ys)) xs
  in
  {
    d_base_events = List.length base.evs;
    d_cur_events = List.length cur.evs;
    d_series = cmps;
    d_changed = List.length (List.filter cmp_changed cmps);
    d_base_alerts = base_alerts;
    d_cur_alerts = cur_alerts;
    d_new_alerts = only cur_alerts base_alerts;
    d_gone_alerts = only base_alerts cur_alerts;
  }

let diff_clean d =
  d.d_changed = 0 && d.d_new_alerts = [] && d.d_gone_alerts = []

let diff_to_table d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "baseline: %d events   current: %d events\n\n"
       d.d_base_events d.d_cur_events);
  if d.d_series <> [] then begin
    Buffer.add_string buf
      "series comparison (totals absolute; p50/p95 per-round rates)\n";
    let table =
      Table.create
        [
          "series";
          "total";
          "-> total";
          "peak";
          "-> peak";
          "p50";
          "-> p50";
          "p95";
          "-> p95";
        ]
    in
    List.iter
      (fun c ->
        Table.add_row table
          [
            (c.c_name ^ if cmp_changed c then " *" else "");
            string_of_int c.base_total;
            string_of_int c.cur_total;
            string_of_int c.base_peak;
            string_of_int c.cur_peak;
            Table.fmt_float c.base_p50;
            Table.fmt_float c.cur_p50;
            Table.fmt_float c.base_p95;
            Table.fmt_float c.cur_p95;
          ])
      d.d_series;
    Buffer.add_string buf (Table.render table);
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf
    (Printf.sprintf "alerts: %d baseline, %d current\n"
       (List.length d.d_base_alerts)
       (List.length d.d_cur_alerts));
  let alert_block title alerts =
    if alerts <> [] then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      let table = Table.create [ "series"; "kind"; "round"; "magnitude" ] in
      List.iter
        (fun a ->
          Table.add_row table
            [
              a.Monitor.a_series;
              Monitor.kind_name a.Monitor.a_kind;
              string_of_int a.Monitor.a_round;
              Table.fmt_float a.Monitor.a_magnitude;
            ])
        alerts;
      Buffer.add_string buf (Table.render table)
    end
  in
  alert_block "new alerts (current only)" d.d_new_alerts;
  alert_block "resolved alerts (baseline only)" d.d_gone_alerts;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (if diff_clean d then "verdict: identical — every series and alert matches\n"
     else
       Printf.sprintf "verdict: %d series changed, %d new alerts, %d resolved\n"
         d.d_changed
         (List.length d.d_new_alerts)
         (List.length d.d_gone_alerts));
  Buffer.contents buf

let diff_to_json d =
  let buf = Buffer.create 1024 in
  let str s = Json.escape_string buf s in
  let fmt fmtstr = Printf.ksprintf (Buffer.add_string buf) fmtstr in
  let flt f = Json.float_to_string buf f in
  fmt "{\"schema\":\"hbn.diff/v1\",\"baseline_events\":%d,\"current_events\":%d"
    d.d_base_events d.d_cur_events;
  fmt ",\"changed_series\":%d,\"clean\":%b" d.d_changed (diff_clean d);
  fmt ",\"series\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      fmt "{\"name\":";
      str c.c_name;
      fmt ",\"changed\":%b" (cmp_changed c);
      fmt ",\"base\":{\"points\":%d,\"total\":%d,\"peak\":%d,\"p50\":"
        c.base_points c.base_total c.base_peak;
      flt c.base_p50;
      fmt ",\"p95\":";
      flt c.base_p95;
      fmt "},\"current\":{\"points\":%d,\"total\":%d,\"peak\":%d,\"p50\":"
        c.cur_points c.cur_total c.cur_peak;
      flt c.cur_p50;
      fmt ",\"p95\":";
      flt c.cur_p95;
      fmt "}}")
    d.d_series;
  let alert_array alerts =
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_char buf ',';
        fmt "{\"series\":";
        str a.Monitor.a_series;
        fmt ",\"kind\":";
        str (Monitor.kind_name a.Monitor.a_kind);
        fmt ",\"round\":%d,\"magnitude\":" a.Monitor.a_round;
        flt a.Monitor.a_magnitude;
        fmt "}")
      alerts
  in
  fmt "],\"alerts\":{\"baseline\":%d,\"current\":%d,\"new\":["
    (List.length d.d_base_alerts)
    (List.length d.d_cur_alerts);
  alert_array d.d_new_alerts;
  fmt "],\"resolved\":[";
  alert_array d.d_gone_alerts;
  fmt "]}}";
  Buffer.contents buf
