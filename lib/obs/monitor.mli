(** Online drift detection over the per-round telemetry feed.

    {!Telemetry} records how a run evolved; this module watches the same
    series {e while they stream} and says whether anything shifted. A
    monitor holds bounded per-series state — streaming estimators and
    two change-point detectors — and turns level shifts into structured
    {!alert} events plus an end-of-run {!verdict}. That is the drift
    trigger the ROADMAP's adaptive serving tier needs: the paper's
    congestion bound ([C <= 7 * C_opt]) is a statement about a load
    pattern, and the monitor is what notices the pattern changed.

    {2 Estimators (per series, O(1) memory each)}

    - [p50]/[p95]: P-square quantile estimators (Jain & Chlamtac 1985) —
      five markers per quantile, piecewise-parabolic adjustment, exact
      over the first five observations.
    - [mean]: an exponentially weighted moving average whose half-life
      is measured in {e rounds}, not observations — a folded point
      spanning [s] rounds decays the average by [2^(-s/half_life)], so
      the estimate is invariant to when folding happened.
    - [min]/[max]: exact over a sliding window of the last [window]
      observations.

    {2 Detectors (deterministic, no RNG)}

    Both detectors run on standardized residuals [z = (v - mu) / sigma]
    where [mu]/[sigma] are frozen from the first [warmup] observations
    (and re-anchored to the EWMA after each alert, so a detector signals
    each shift once instead of latching):

    - CUSUM: two-sided, [S+ <- max 0 (S+ + s*(z - k))] and
      [S- <- max 0 (S- + s*(-z - k))] with slack [k] and span weight
      [s]; alert when either sum exceeds the threshold [h]. Magnitude is
      the sum at crossing.
    - Page-Hinkley: [m <- m + s*(z - zbar - delta)] against the running
      minimum (maximum for the downward test); alert when the gap
      exceeds [lambda]. Magnitude is the gap at crossing.

    Span weighting makes both tests consume a folded series the same way
    they would the exact one: a point covering [s] rounds moves the
    statistic [s] rounds' worth. Together with normalizing counter
    fields to per-round rates ([value / span]), a monitor fed the folded
    {!Telemetry.points} and one fed the unfolded sequence agree on the
    sustained shifts that matter (the folding-compatibility argument is
    DESIGN.md section 15).

    Everything is a pure fold over the observation sequence — no clocks,
    no RNG, no allocation proportional to run length — so monitor state
    and every emitted alert are bit-identical across [--jobs] counts and
    across reruns. *)

type t

type kind =
  | Cusum_up
  | Cusum_down
  | Page_hinkley_up
  | Page_hinkley_down

type alert = {
  a_round : int;  (** round of the observation that crossed *)
  a_vtime : float;  (** virtual time of that observation *)
  a_series : string;  (** series name, e.g. ["dist.retransmits"] *)
  a_kind : kind;
  a_magnitude : float;  (** detector statistic at crossing *)
}

type verdict =
  | Steady  (** no detector fired *)
  | Drifting of alert list  (** shifts, none on a degrading signal *)
  | Degrading of alert list
      (** at least one alert on a degrading signal — dropped,
          retransmits or dup_suppressed rising, live_nodes falling; the
          list carries exactly those alerts *)

type estimate = {
  e_series : string;
  e_points : int;  (** observations folded in *)
  e_rounds : int;  (** rounds covered (sum of spans) *)
  e_last : float;  (** most recent value *)
  e_mean : float;  (** EWMA, half-life in rounds *)
  e_p50 : float;
  e_p95 : float;
  e_min : float;  (** windowed minimum *)
  e_max : float;  (** windowed maximum *)
}

val create :
  ?prefix:string ->
  ?warmup:int ->
  ?half_life:float ->
  ?window:int ->
  ?cusum_threshold:float ->
  ?cusum_slack:float ->
  ?ph_threshold:float ->
  ?ph_delta:float ->
  unit ->
  t
(** A fresh monitor. [prefix] (default none, must be non-empty when
    given) is prepended as ["<prefix>."] to every series name at
    {!observe} time, so alerts carry the same fully-qualified name the
    matching telemetry series is emitted under ([Telemetry.emit
    ~prefix]) — no downstream re-keying. [warmup] (default 8, minimum 2)
    observations per series freeze the reference mean/deviation before
    the detectors arm; [half_life] (default 16.0 rounds, positive) sets
    the EWMA decay; [window] (default 32, minimum 1) bounds the min/max
    window; [cusum_threshold]/[cusum_slack] (defaults 8.0 / 0.5) are [h]
    and [k] in sigma units; [ph_threshold]/[ph_delta] (defaults
    8.0 / 0.05) are [lambda] and [delta]. Invalid parameters raise
    [Invalid_argument]. *)

val observe :
  t -> series:string -> round:int -> vtime:float -> span:int -> float -> unit
(** Feeds one observation: the named series had this value over the
    [span] runtime rounds ending at [round] (virtual time [vtime]).
    Creates the series on first sight. Raises [Invalid_argument] on
    [span < 1] or a non-finite value. *)

val observe_point : t -> Telemetry.point -> unit
(** Feeds every derived series of one telemetry point: counter fields as
    per-round rates ([sent], [delivered], [dropped], [bytes],
    [retransmits], [dup_suppressed], [replications], [migrations],
    [contractions] — the last three unconditionally, zeros included, so
    a quiet baseline is armed before any migration storm),
    [live_nodes] as a level, the
    busiest edge's rate as [edge_peak], the remainder as [edge_rest],
    and the busiest edge's share of all traversals as [hotspot_share]
    (skipped on traffic-free points) — the congestion and attribution
    signals of the tentpole. *)

val ingest : t -> Telemetry.t -> unit
(** [observe_point] over [Telemetry.points] — what the engines call at
    end of run. A monitor fed incrementally and one fed the final folded
    series see the same points. *)

val alerts : t -> alert list
(** Every alert so far, in emission order (chronological; within one
    point, field order). *)

val estimates : t -> estimate list
(** Current estimator state per series, sorted by series name. *)

val estimate : t -> series:string -> estimate option
(** Lookup by series name; accepts the fully-qualified name or, on a
    prefixed monitor, the unprefixed one. *)

val health : t -> verdict
(** [Steady] when no alerts; otherwise [Degrading] carrying the alerts
    on degrading signals if any exist, else [Drifting] carrying all. *)

val verdict_name : verdict -> string
(** ["steady"], ["drifting"] or ["degrading"]. *)

val kind_name : kind -> string
(** ["cusum_up"], ["cusum_down"], ["page_hinkley_up"],
    ["page_hinkley_down"] — the wire names in {!Sink.Alert} events. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}. *)

val sink_event : alert -> Sink.event
(** The alert as a [Sink.Alert] event named ["monitor.alert"]. *)

val emit : t -> (Sink.event -> unit) -> unit
(** Streams {!alerts} as {!sink_event}s, in order. *)
