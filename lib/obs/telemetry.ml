type point = {
  round : int;
  vtime : float;
  rounds : int;
  sent : int;
  delivered : int;
  dropped : int;
  bytes : int;
  retransmits : int;
  dup_suppressed : int;
  replications : int;
  migrations : int;
  contractions : int;
  live_nodes : int;
  edges : (int * int) list;
  other_edges : int;
}

type t = {
  top_k : int;
  capacity : int;
  (* closed points, newest first; folded when the count tops capacity *)
  mutable history : point list;
  mutable count : int;
  mutable total_rounds : int;
  (* the open round, accumulated in place *)
  mutable cur_round : int;  (* -1 when no round is open *)
  mutable cur_vtime : float;
  mutable cur_sent : int;
  mutable cur_dropped : int;
  mutable cur_bytes : int;
  mutable cur_retransmits : int;
  mutable cur_dups : int;
  mutable cur_replications : int;
  mutable cur_migrations : int;
  mutable cur_contractions : int;
  edge_count : int array;  (* per-edge traversals of the open round *)
  mutable touched : int list;  (* edges with a non-zero count, unordered *)
}

let create ?(top_k = 4) ?(capacity = 256) ~num_edges () =
  if top_k < 1 then invalid_arg "Telemetry.create: top_k must be >= 1";
  if capacity < 2 then invalid_arg "Telemetry.create: capacity must be >= 2";
  {
    top_k;
    capacity;
    history = [];
    count = 0;
    total_rounds = 0;
    cur_round = -1;
    cur_vtime = 0.;
    cur_sent = 0;
    cur_dropped = 0;
    cur_bytes = 0;
    cur_retransmits = 0;
    cur_dups = 0;
    cur_replications = 0;
    cur_migrations = 0;
    cur_contractions = 0;
    edge_count = Array.make (max 1 num_edges) 0;
    touched = [];
  }

let begin_round ?vtime t ~round =
  if t.cur_round >= 0 then invalid_arg "Telemetry.begin_round: round still open";
  if round <= (match t.history with [] -> -1 | p :: _ -> p.round) then
    invalid_arg "Telemetry.begin_round: rounds must increase";
  let vtime = match vtime with Some v -> v | None -> float_of_int round in
  if Float.is_nan vtime
     || vtime <= (match t.history with [] -> Float.neg_infinity | p :: _ -> p.vtime)
  then invalid_arg "Telemetry.begin_round: virtual time must increase";
  t.cur_round <- round;
  t.cur_vtime <- vtime

let open_check t name =
  if t.cur_round < 0 then invalid_arg ("Telemetry." ^ name ^ ": no open round")

let send t ~edge ~bytes =
  open_check t "send";
  t.cur_sent <- t.cur_sent + 1;
  t.cur_bytes <- t.cur_bytes + bytes;
  if edge >= 0 && edge < Array.length t.edge_count then begin
    if t.edge_count.(edge) = 0 then t.touched <- edge :: t.touched;
    t.edge_count.(edge) <- t.edge_count.(edge) + 1
  end

let send_many t ~edge ~count ~bytes =
  open_check t "send_many";
  if count < 0 then invalid_arg "Telemetry.send_many: count must be >= 0";
  t.cur_sent <- t.cur_sent + count;
  t.cur_bytes <- t.cur_bytes + bytes;
  if count > 0 && edge >= 0 && edge < Array.length t.edge_count then begin
    if t.edge_count.(edge) = 0 then t.touched <- edge :: t.touched;
    t.edge_count.(edge) <- t.edge_count.(edge) + count
  end

let drop t =
  open_check t "drop";
  t.cur_dropped <- t.cur_dropped + 1

let retransmit t =
  open_check t "retransmit";
  t.cur_retransmits <- t.cur_retransmits + 1

let duplicate t =
  open_check t "duplicate";
  t.cur_dups <- t.cur_dups + 1

let reconfig t ~replications ~migrations ~contractions =
  open_check t "reconfig";
  if replications < 0 || migrations < 0 || contractions < 0 then
    invalid_arg "Telemetry.reconfig: counters must be >= 0";
  t.cur_replications <- t.cur_replications + replications;
  t.cur_migrations <- t.cur_migrations + migrations;
  t.cur_contractions <- t.cur_contractions + contractions

(* Cut an unordered (edge, count) list down to the top-[k]: count
   descending, ties by edge id ascending, remainder summed. *)
let top_cut k pairs =
  let sorted =
    List.sort
      (fun (e1, c1) (e2, c2) ->
        if c1 <> c2 then compare c2 c1 else compare e1 e2)
      pairs
  in
  let rec split i acc = function
    | rest when i = k -> (List.rev acc, rest)
    | x :: rest -> split (i + 1) (x :: acc) rest
    | [] -> (List.rev acc, [])
  in
  let top, rest = split 0 [] sorted in
  (top, List.fold_left (fun acc (_, c) -> acc + c) 0 rest)

let fold_pair t a b =
  (* [a] precedes [b] in time. *)
  let merged = Hashtbl.create 8 in
  let add (e, c) =
    Hashtbl.replace merged e (c + try Hashtbl.find merged e with Not_found -> 0)
  in
  List.iter add a.edges;
  List.iter add b.edges;
  let pairs = Hashtbl.fold (fun e c acc -> (e, c) :: acc) merged [] in
  let edges, spill = top_cut t.top_k pairs in
  {
    round = b.round;
    vtime = b.vtime;
    rounds = a.rounds + b.rounds;
    sent = a.sent + b.sent;
    delivered = a.delivered + b.delivered;
    dropped = a.dropped + b.dropped;
    bytes = a.bytes + b.bytes;
    retransmits = a.retransmits + b.retransmits;
    dup_suppressed = a.dup_suppressed + b.dup_suppressed;
    replications = a.replications + b.replications;
    migrations = a.migrations + b.migrations;
    contractions = a.contractions + b.contractions;
    live_nodes = min a.live_nodes b.live_nodes;
    edges;
    other_edges = a.other_edges + b.other_edges + spill;
  }

(* Halve the resolution: fold points pairwise, oldest pair first. With
   an odd count the newest point stays exact. *)
let compact t =
  let chron = List.rev t.history in
  let rec go = function
    | a :: b :: rest -> fold_pair t a b :: go rest
    | tail -> tail
  in
  let folded = go chron in
  t.history <- List.rev folded;
  t.count <- List.length folded

let end_round t ~live_nodes =
  open_check t "end_round";
  let pairs = List.map (fun e -> (e, t.edge_count.(e))) t.touched in
  let edges, other_edges = top_cut t.top_k pairs in
  let p =
    {
      round = t.cur_round;
      vtime = t.cur_vtime;
      rounds = 1;
      sent = t.cur_sent;
      delivered = t.cur_sent - t.cur_dropped;
      dropped = t.cur_dropped;
      bytes = t.cur_bytes;
      retransmits = t.cur_retransmits;
      dup_suppressed = t.cur_dups;
      replications = t.cur_replications;
      migrations = t.cur_migrations;
      contractions = t.cur_contractions;
      live_nodes;
      edges;
      other_edges;
    }
  in
  List.iter (fun e -> t.edge_count.(e) <- 0) t.touched;
  t.touched <- [];
  t.cur_round <- -1;
  t.cur_sent <- 0;
  t.cur_dropped <- 0;
  t.cur_bytes <- 0;
  t.cur_retransmits <- 0;
  t.cur_dups <- 0;
  t.cur_replications <- 0;
  t.cur_migrations <- 0;
  t.cur_contractions <- 0;
  t.history <- p :: t.history;
  t.count <- t.count + 1;
  t.total_rounds <- t.total_rounds + 1;
  if t.count > t.capacity then compact t

let points t = List.rev t.history

let rounds_recorded t = t.total_rounds

let emit t ~prefix emit_ev =
  let series name ~round ~time ~span ~value ~edge =
    emit_ev
      {
        Sink.name = prefix ^ "." ^ name;
        id = 0;
        parent = 0;
        payload = Sink.Series { round; time; span; value; edge };
        attrs = [];
      }
  in
  List.iter
    (fun p ->
      let field name value =
        series name ~round:p.round ~time:p.vtime ~span:p.rounds ~value
          ~edge:(-1)
      in
      field "sent" p.sent;
      field "delivered" p.delivered;
      field "dropped" p.dropped;
      field "bytes" p.bytes;
      field "retransmits" p.retransmits;
      field "dup_suppressed" p.dup_suppressed;
      (* Reconfiguration counters are zero outside the serving tier;
         emitting them only when set keeps pre-existing traces
         byte-identical. *)
      if p.replications > 0 then field "replications" p.replications;
      if p.migrations > 0 then field "migrations" p.migrations;
      if p.contractions > 0 then field "contractions" p.contractions;
      field "live_nodes" p.live_nodes;
      List.iter
        (fun (edge, c) ->
          series "edge" ~round:p.round ~time:p.vtime ~span:p.rounds ~value:c
            ~edge)
        p.edges;
      if p.other_edges > 0 then field "edge_rest" p.other_edges)
    (points t)
