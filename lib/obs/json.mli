(** A minimal JSON value type, parser and number printer.

    The toolchain this repo pins ships no JSON library, so the
    observability layer carries its own: {!Sink} uses it to round-trip
    JSONL trace events, and [bench/check.exe] uses it to diff committed
    [BENCH_*.json] baselines against fresh runs. It parses the subset
    those producers emit (no unicode escapes beyond the control range)
    and is not a general-purpose JSON implementation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse of string
(** Raised by {!parse} with a message locating the first problem. *)

val parse : string -> t
(** Parses one complete JSON value (leading/trailing whitespace allowed).
    Raises {!Parse} on malformed input. *)

val parse_result : string -> (t, string) result
(** {!parse} with the error reified. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to [k]; [None] when the key is
    absent or the value is not an object. *)

val to_int : t -> int option
(** [Int] only — floats are not silently truncated. *)

val to_float : t -> float option
(** [Float] or [Int] (widened); the string ["nan"] parses as NaN to match
    {!float_to_string}. *)

val to_string : t -> string option

val to_list : t -> t list option

(** {1 Printing} *)

val escape_string : Buffer.t -> string -> unit
(** Appends the quoted, escaped JSON form of a string. *)

val float_to_string : Buffer.t -> float -> unit
(** Appends a float rendering that is valid JSON and round-trips:
    shortest decimal form recovering the value, a forced fraction marker
    so readers can tell floats from ints, and NaN as the string
    ["nan"]. *)
