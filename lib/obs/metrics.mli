(** Named counters, gauges and histograms.

    A registry is a mutable bag of metrics keyed by name: counters
    accumulate integer increments (per-object deletions, messages sent),
    gauges record the last value observed (queue depths), and histograms
    collect float samples summarized through {!Hbn_util.Stats}
    (mean/min/max/median/95th percentile).

    Histogram memory is bounded: each histogram keeps exact running
    count, mean, min and max, plus a fixed 512-slot sample reservoir
    (Vitter's Algorithm R with a deterministic per-histogram splitmix64
    stream) from which [p50]/[p95] are computed. Quantiles are therefore
    {e exact} while a histogram has seen at most 512 samples and
    uniformly sampled estimates beyond that; a registry never holds more
    than 512 floats per histogram no matter how long the run.

    {!global} is the default registry the {!Trace} convenience functions
    feed; tests create private registries with {!create}. Metrics are
    aggregates — they reach a {!Sink.t} only when {!emit} dumps a
    snapshot, unlike spans and point events which stream. *)

type t

val create : unit -> t
(** A fresh, empty registry. *)

val global : t
(** The process-wide registry used by {!Trace.count} / {!Trace.gauge}. *)

val incr : ?by:int -> t -> string -> unit
(** [incr ?by m name] adds [by] (default 1) to counter [name], creating
    it at 0 first if needed. *)

val set_gauge : t -> string -> float -> unit
(** Records the latest value of gauge [name]. *)

val observe : t -> string -> float -> unit
(** Adds one sample to histogram [name]. Count, mean, min and max are
    updated exactly; the sample enters the quantile reservoir subject to
    the sampling described above. O(1), bounded memory. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list
(** All gauges (latest values), sorted by name. *)

val histograms : t -> (string * summary) list
(** All histograms summarized, sorted by name — [count]/[mean]/[min]/
    [max] exact, [p50]/[p95] over the 512-sample reservoir (exact when
    [count <= 512]). *)

val counter_value : t -> string -> int
(** Current value of a counter; 0 when it was never incremented. *)

val reset : t -> unit
(** Drops every metric. *)

val emit : t -> Sink.t -> unit
(** Dumps a snapshot into the sink: one [Counter] event per counter (the
    accumulated total), one [Gauge] per gauge, one [Histogram] summary
    per histogram, each sorted by name. *)
