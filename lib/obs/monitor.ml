(* Online drift detection over telemetry series. Everything here is a
   pure fold over the observation sequence — no RNG, no clocks — so
   monitor state and emitted alerts are bit-identical across job counts
   and reruns. See monitor.mli for the estimator/detector math and
   DESIGN.md section 15 for the folding-compatibility argument. *)

type kind = Cusum_up | Cusum_down | Page_hinkley_up | Page_hinkley_down

type alert = {
  a_round : int;
  a_vtime : float;
  a_series : string;
  a_kind : kind;
  a_magnitude : float;
}

type verdict = Steady | Drifting of alert list | Degrading of alert list

type estimate = {
  e_series : string;
  e_points : int;
  e_rounds : int;
  e_last : float;
  e_mean : float;
  e_p50 : float;
  e_p95 : float;
  e_min : float;
  e_max : float;
}

(* P-square estimator for one quantile (Jain & Chlamtac 1985): five
   markers whose heights approximate the [0; p/2; p; (1+p)/2; 1]
   quantiles, positions nudged toward their desired values by parabolic
   (falling back to linear) interpolation. Exact while n <= 5. *)
type p2 = {
  p : float;
  heights : float array; (* 5 marker heights, ascending *)
  positions : int array; (* 5 marker positions, 1-based *)
  mutable count : int;
}

let p2_create p = { p; heights = Array.make 5 0.0; positions = [| 1; 2; 3; 4; 5 |]; count = 0 }

let p2_desired t i =
  (* desired (float) position of marker i after t.count observations *)
  let d = [| 0.0; t.p /. 2.0; t.p; (1.0 +. t.p) /. 2.0; 1.0 |] in
  1.0 +. ((float_of_int t.count -. 1.0) *. d.(i))

let p2_observe t v =
  if t.count < 5 then begin
    (* insertion into the sorted prefix *)
    let i = ref t.count in
    while !i > 0 && t.heights.(!i - 1) > v do
      t.heights.(!i) <- t.heights.(!i - 1);
      decr i
    done;
    t.heights.(!i) <- v;
    t.count <- t.count + 1
  end
  else begin
    let q = t.heights and n = t.positions in
    let k =
      if v < q.(0) then begin
        q.(0) <- v;
        0
      end
      else if v >= q.(4) then begin
        q.(4) <- v;
        3
      end
      else begin
        let k = ref 0 in
        for i = 0 to 2 do
          if q.(i + 1) <= v then k := i + 1
        done;
        !k
      end
    in
    for i = k + 1 to 4 do
      n.(i) <- n.(i) + 1
    done;
    t.count <- t.count + 1;
    for i = 1 to 3 do
      let d = p2_desired t i -. float_of_int n.(i) in
      if
        (d >= 1.0 && n.(i + 1) - n.(i) > 1)
        || (d <= -1.0 && n.(i - 1) - n.(i) < -1)
      then begin
        let s = if d >= 0.0 then 1 else -1 in
        let fs = float_of_int s in
        let np = float_of_int n.(i + 1)
        and nc = float_of_int n.(i)
        and nm = float_of_int n.(i - 1) in
        (* piecewise-parabolic candidate *)
        let cand =
          q.(i)
          +. fs /. (np -. nm)
             *. ((nc -. nm +. fs) *. (q.(i + 1) -. q.(i)) /. (np -. nc)
                +. (np -. nc -. fs) *. (q.(i) -. q.(i - 1)) /. (nc -. nm))
        in
        if q.(i - 1) < cand && cand < q.(i + 1) then q.(i) <- cand
        else
          (* linear fallback keeps the heights ordered *)
          q.(i) <-
            q.(i)
            +. fs *. (q.(i + s) -. q.(i))
               /. float_of_int (n.(i + s) - n.(i));
        n.(i) <- n.(i) + s
      end
    done
  end

let p2_value t =
  if t.count = 0 then 0.0
  else if t.count >= 5 then t.heights.(2)
  else begin
    (* exact nearest-rank quantile over the sorted prefix *)
    let rank = int_of_float (ceil (t.p *. float_of_int t.count)) in
    t.heights.(max 0 (min (t.count - 1) (rank - 1)))
  end

type series = {
  name : string;
  mutable points : int;
  mutable rounds : int;
  mutable last : float;
  (* EWMA mean / variance, half-life in rounds *)
  mutable ewma : float;
  mutable ewvar : float;
  p50 : p2;
  p95 : p2;
  (* sliding window for min/max *)
  window : float array;
  mutable win_len : int;
  mutable win_next : int;
  (* reference distribution, frozen after warmup (re-anchored on alert) *)
  warm : float array;
  mutable armed : bool;
  mutable mu : float;
  mutable sigma : float;
  (* CUSUM sums *)
  mutable s_up : float;
  mutable s_down : float;
  (* Page-Hinkley: running mean of z, cumulative sums vs extrema *)
  mutable z_sum : float;
  mutable z_weight : float;
  mutable ph_up : float;
  mutable ph_up_min : float;
  mutable ph_down : float;
  mutable ph_down_max : float;
}

type config = {
  warmup : int;
  half_life : float;
  win_size : int;
  cusum_h : float;
  cusum_k : float;
  ph_lambda : float;
  ph_delta : float;
}

type t = {
  cfg : config;
  prefix : string; (* "" or "<prefix>." — prepended to every series name *)
  table : (string, series) Hashtbl.t;
  mutable order : string list; (* creation order, reversed *)
  mutable alerts_rev : alert list;
}

let create ?prefix ?(warmup = 8) ?(half_life = 16.0) ?(window = 32)
    ?(cusum_threshold = 8.0) ?(cusum_slack = 0.5) ?(ph_threshold = 8.0)
    ?(ph_delta = 0.05) () =
  if warmup < 2 then invalid_arg "Monitor.create: warmup < 2";
  if not (half_life > 0.0 && Float.is_finite half_life) then
    invalid_arg "Monitor.create: half_life must be positive";
  if window < 1 then invalid_arg "Monitor.create: window < 1";
  if not (cusum_threshold > 0.0) then
    invalid_arg "Monitor.create: cusum_threshold must be positive";
  if cusum_slack < 0.0 then invalid_arg "Monitor.create: cusum_slack < 0";
  if not (ph_threshold > 0.0) then
    invalid_arg "Monitor.create: ph_threshold must be positive";
  if ph_delta < 0.0 then invalid_arg "Monitor.create: ph_delta < 0";
  let prefix =
    match prefix with
    | None -> ""
    | Some "" -> invalid_arg "Monitor.create: prefix must be non-empty"
    | Some p -> p ^ "."
  in
  {
    prefix;
    cfg =
      {
        warmup;
        half_life;
        win_size = window;
        cusum_h = cusum_threshold;
        cusum_k = cusum_slack;
        ph_lambda = ph_threshold;
        ph_delta;
      };
    table = Hashtbl.create 16;
    order = [];
    alerts_rev = [];
  }

let series_create t name =
  {
    name;
    points = 0;
    rounds = 0;
    last = 0.0;
    ewma = 0.0;
    ewvar = 0.0;
    p50 = p2_create 0.5;
    p95 = p2_create 0.95;
    window = Array.make t.cfg.win_size 0.0;
    win_len = 0;
    win_next = 0;
    warm = Array.make t.cfg.warmup 0.0;
    armed = false;
    mu = 0.0;
    sigma = 1.0;
    s_up = 0.0;
    s_down = 0.0;
    z_sum = 0.0;
    z_weight = 0.0;
    ph_up = 0.0;
    ph_up_min = 0.0;
    ph_down = 0.0;
    ph_down_max = 0.0;
  }

(* Series are keyed under their full (prefixed) name, so alerts carry
   the same name the telemetry series was emitted under — the CLI no
   longer re-keys alert events after the fact. *)
let series_of t name =
  let name = t.prefix ^ name in
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None ->
      let s = series_create t name in
      Hashtbl.add t.table name s;
      t.order <- name :: t.order;
      s

(* The deviation floor keeps z finite on constant warmups and stops
   sub-5% wobble around the mean from ever standardizing large. *)
let scale_floor mu sd = Float.max sd (Float.max (0.05 *. Float.max 1.0 (Float.abs mu)) 1e-9)

let detector_reset s =
  s.s_up <- 0.0;
  s.s_down <- 0.0;
  s.z_sum <- 0.0;
  s.z_weight <- 0.0;
  s.ph_up <- 0.0;
  s.ph_up_min <- 0.0;
  s.ph_down <- 0.0;
  s.ph_down_max <- 0.0

(* Re-anchor the reference to the current EWMA so each sustained shift
   alerts once instead of latching every subsequent point. *)
let re_anchor s =
  s.mu <- s.ewma;
  s.sigma <- scale_floor s.ewma (sqrt (Float.max 0.0 s.ewvar));
  detector_reset s

let raise_alert t s ~round ~vtime kind magnitude =
  t.alerts_rev <-
    {
      a_round = round;
      a_vtime = vtime;
      a_series = s.name;
      a_kind = kind;
      a_magnitude = magnitude;
    }
    :: t.alerts_rev;
  re_anchor s

let detect t s ~round ~vtime ~weight v =
  let cfg = t.cfg in
  let z = (v -. s.mu) /. s.sigma in
  s.s_up <- Float.max 0.0 (s.s_up +. (weight *. (z -. cfg.cusum_k)));
  s.s_down <- Float.max 0.0 (s.s_down +. (weight *. (-.z -. cfg.cusum_k)));
  if s.s_up > cfg.cusum_h then raise_alert t s ~round ~vtime Cusum_up s.s_up
  else if s.s_down > cfg.cusum_h then
    raise_alert t s ~round ~vtime Cusum_down s.s_down
  else begin
    s.z_sum <- s.z_sum +. (weight *. z);
    s.z_weight <- s.z_weight +. weight;
    let z_bar = s.z_sum /. s.z_weight in
    s.ph_up <- s.ph_up +. (weight *. (z -. z_bar -. cfg.ph_delta));
    s.ph_up_min <- Float.min s.ph_up_min s.ph_up;
    s.ph_down <- s.ph_down +. (weight *. (z -. z_bar +. cfg.ph_delta));
    s.ph_down_max <- Float.max s.ph_down_max s.ph_down;
    if s.ph_up -. s.ph_up_min > cfg.ph_lambda then
      raise_alert t s ~round ~vtime Page_hinkley_up (s.ph_up -. s.ph_up_min)
    else if s.ph_down_max -. s.ph_down > cfg.ph_lambda then
      raise_alert t s ~round ~vtime Page_hinkley_down
        (s.ph_down_max -. s.ph_down)
  end

let observe t ~series:name ~round ~vtime ~span v =
  if span < 1 then invalid_arg "Monitor.observe: span < 1";
  if not (Float.is_finite v) then
    invalid_arg "Monitor.observe: non-finite value";
  let s = series_of t name in
  let cfg = t.cfg in
  (* estimators *)
  if s.points = 0 then begin
    s.ewma <- v;
    s.ewvar <- 0.0
  end
  else begin
    let a = Float.pow 2.0 (-.float_of_int span /. cfg.half_life) in
    let d = v -. s.ewma in
    s.ewvar <- (a *. s.ewvar) +. ((1.0 -. a) *. d *. d);
    s.ewma <- (a *. s.ewma) +. ((1.0 -. a) *. v)
  end;
  p2_observe s.p50 v;
  p2_observe s.p95 v;
  s.window.(s.win_next) <- v;
  s.win_next <- (s.win_next + 1) mod cfg.win_size;
  s.win_len <- min (s.win_len + 1) cfg.win_size;
  s.last <- v;
  (* warm up, then detect *)
  if s.armed then detect t s ~round ~vtime ~weight:(float_of_int span) v
  else begin
    s.warm.(s.points) <- v;
    if s.points + 1 = cfg.warmup then begin
      let sum = Array.fold_left ( +. ) 0.0 s.warm in
      let mu = sum /. float_of_int cfg.warmup in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 s.warm
        /. float_of_int cfg.warmup
      in
      s.mu <- mu;
      s.sigma <- scale_floor mu (sqrt var);
      s.armed <- true
    end
  end;
  s.points <- s.points + 1;
  s.rounds <- s.rounds + span

let observe_point t (p : Telemetry.point) =
  let ob name v =
    observe t ~series:name ~round:p.Telemetry.round ~vtime:p.Telemetry.vtime
      ~span:p.Telemetry.rounds v
  in
  let rate v = float_of_int v /. float_of_int p.Telemetry.rounds in
  ob "sent" (rate p.Telemetry.sent);
  ob "delivered" (rate p.Telemetry.delivered);
  ob "dropped" (rate p.Telemetry.dropped);
  ob "bytes" (rate p.Telemetry.bytes);
  ob "retransmits" (rate p.Telemetry.retransmits);
  ob "dup_suppressed" (rate p.Telemetry.dup_suppressed);
  (* Reconfiguration rates are fed unconditionally (zeros included) so
     the detectors warm on the quiet baseline and a migration storm
     registers as a shift, not as a first observation. *)
  ob "replications" (rate p.Telemetry.replications);
  ob "migrations" (rate p.Telemetry.migrations);
  ob "contractions" (rate p.Telemetry.contractions);
  ob "live_nodes" (float_of_int p.Telemetry.live_nodes);
  let top = match p.Telemetry.edges with [] -> 0 | (_, c) :: _ -> c in
  ob "edge_peak" (rate top);
  ob "edge_rest" (rate p.Telemetry.other_edges);
  let total =
    List.fold_left (fun acc (_, c) -> acc + c) p.Telemetry.other_edges
      p.Telemetry.edges
  in
  if total > 0 then ob "hotspot_share" (float_of_int top /. float_of_int total)

let ingest t tel = List.iter (observe_point t) (Telemetry.points tel)
let alerts t = List.rev t.alerts_rev

let estimate_of s =
  let e_min = ref infinity and e_max = ref neg_infinity in
  for i = 0 to s.win_len - 1 do
    e_min := Float.min !e_min s.window.(i);
    e_max := Float.max !e_max s.window.(i)
  done;
  {
    e_series = s.name;
    e_points = s.points;
    e_rounds = s.rounds;
    e_last = s.last;
    e_mean = s.ewma;
    e_p50 = p2_value s.p50;
    e_p95 = p2_value s.p95;
    e_min = (if s.win_len = 0 then 0.0 else !e_min);
    e_max = (if s.win_len = 0 then 0.0 else !e_max);
  }

let estimates t =
  List.rev t.order
  |> List.map (fun name -> estimate_of (Hashtbl.find t.table name))
  |> List.sort (fun a b -> String.compare a.e_series b.e_series)

let estimate t ~series =
  match Hashtbl.find_opt t.table series with
  | Some s -> Some (estimate_of s)
  | None ->
      (* accept the unprefixed name too, for callers that fed the
         monitor through [observe ~series] without the prefix *)
      Option.map estimate_of (Hashtbl.find_opt t.table (t.prefix ^ series))

(* A degrading signal: loss-like series rising or liveness-like series
   falling. Series names may arrive prefixed ("dist.dropped"), so
   classify on the suffix after the last dot. *)
let base_name name =
  let name =
    match String.index_opt name '[' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let degrading a =
  match (base_name a.a_series, a.a_kind) with
  | ("dropped" | "retransmits" | "dup_suppressed"), (Cusum_up | Page_hinkley_up)
    ->
      true
  | "live_nodes", (Cusum_down | Page_hinkley_down) -> true
  | _ -> false

let health t =
  match alerts t with
  | [] -> Steady
  | all -> (
      match List.filter degrading all with
      | [] -> Drifting all
      | bad -> Degrading bad)

let verdict_name = function
  | Steady -> "steady"
  | Drifting _ -> "drifting"
  | Degrading _ -> "degrading"

let kind_name = function
  | Cusum_up -> "cusum_up"
  | Cusum_down -> "cusum_down"
  | Page_hinkley_up -> "page_hinkley_up"
  | Page_hinkley_down -> "page_hinkley_down"

let kind_of_name = function
  | "cusum_up" -> Some Cusum_up
  | "cusum_down" -> Some Cusum_down
  | "page_hinkley_up" -> Some Page_hinkley_up
  | "page_hinkley_down" -> Some Page_hinkley_down
  | _ -> None

let sink_event a =
  {
    Sink.name = "monitor.alert";
    id = 0;
    parent = 0;
    payload =
      Sink.Alert
        {
          round = a.a_round;
          time = a.a_vtime;
          series = a.a_series;
          kind = kind_name a.a_kind;
          magnitude = a.a_magnitude;
        };
    attrs = [];
  }

let emit t f = List.iter (fun a -> f (sink_event a)) (alerts t)
