(** Bounded-memory per-round telemetry time series.

    The end-state instrumentation ({!Attribution} tables, span
    durations) says {e where} load ended up; this collector records how
    it {e evolved}: one sample per runtime round holding messages
    sent/delivered/dropped, payload bytes, retransmissions, duplicate
    suppressions, the live-node count, and per-edge utilization — the
    [k] busiest edges of the round exactly, everything else folded into
    one aggregate. That is the congestion-over-rounds signal the paper's
    claim (congestion, not hop count, predicts execution time) needs
    under drift and faults.

    Memory is bounded no matter how long the run: a collector holds at
    most [capacity] points. When round [capacity + 1] arrives, adjacent
    points are folded pairwise — counters summed, [live_nodes] taking
    the minimum, edge tables merged and re-cut to the top [k] — so the
    series keeps full time coverage at halved resolution. Every point
    records how many rounds it spans, and folding is a pure function of
    the sample sequence, so the resulting series is deterministic: the
    same run produces the same points, bit for bit, at any job count.

    Recording is driven by the synchronous engines
    ({!Hbn_dist.Runtime.run}, [Hbn_sim.Sim.run]): {!begin_round} opens a
    round, the per-message hooks accumulate into it, {!end_round} closes
    it. Protocol-level hooks ({!retransmit}, {!duplicate}) may fire from
    node step functions between the two — they attribute to the open
    round. A collector is single-writer by construction (the engines are
    sequential); it is not a concurrent data structure. *)

type t

type point = {
  round : int;  (** last round folded into this point *)
  vtime : float;
      (** virtual time of the last round folded into this point — the
          bucket's position on the virtual-time axis. Synchronous engines
          leave the default [float_of_int round]; the event-driven ones
          pass the engine clock, whose ticks may skip round numbers. *)
  rounds : int;  (** rounds covered; 1 = exact per-round sample *)
  sent : int;  (** sends attempted, including later-dropped ones *)
  delivered : int;  (** sends that reached an inbox: [sent - dropped] *)
  dropped : int;  (** sends lost to faults *)
  bytes : int;  (** payload bytes attempted (see the engine's sizer) *)
  retransmits : int;  (** link-layer retransmissions *)
  dup_suppressed : int;  (** duplicate deliveries suppressed *)
  replications : int;  (** copies added by reconfiguration *)
  migrations : int;  (** copies moved by reconfiguration *)
  contractions : int;  (** copies dropped by reconfiguration *)
  live_nodes : int;  (** nodes not crashed (minimum over folded rounds) *)
  edges : (int * int) list;
      (** the busiest edges as [(edge, traversals)], traversal count
          descending, ties by edge id; at most [top_k] entries *)
  other_edges : int;  (** traversals over edges outside [edges] *)
}

val create : ?top_k:int -> ?capacity:int -> num_edges:int -> unit -> t
(** A fresh collector. [top_k] (default 4) bounds the exact per-edge
    table of each point; [capacity] (default 256, minimum 2) bounds the
    number of retained points. [num_edges] sizes the per-round scratch
    counters. *)

val begin_round : ?vtime:float -> t -> round:int -> unit
(** Opens the sample for [round]. Rounds must be opened in increasing
    order; re-opening the current round is an error. [vtime] (default
    [float_of_int round]) positions the sample on the virtual-time axis
    and must also increase strictly — the event-driven engines pass
    their clock here, the synchronous ones leave the default, keeping
    both axes identical in the synchronous regime. *)

val send : t -> edge:int -> bytes:int -> unit
(** Records one attempted send of [bytes] payload bytes over [edge]
    into the open round. *)

val send_many : t -> edge:int -> count:int -> bytes:int -> unit
(** Records [count] attempted sends totalling [bytes] payload bytes
    over [edge] in one call — the batch form the serving tier uses to
    account a whole slot's traffic per edge without a per-message loop.
    A negative [edge] counts into [sent]/[bytes] only (off-edge
    traffic, e.g. jitter), leaving the per-edge table untouched. *)

val drop : t -> unit
(** Marks the most recent send as lost (it still counts into [sent]
    and [bytes], never into [delivered]). *)

val retransmit : t -> unit
(** Records one link-layer retransmission in the open round. *)

val duplicate : t -> unit
(** Records one suppressed duplicate delivery in the open round. *)

val reconfig :
  t -> replications:int -> migrations:int -> contractions:int -> unit
(** Records copy-set reconfiguration work — copies added, moved and
    dropped — into the open round, so migration storms appear in the
    series (and hence in {!Monitor} and [report]) rather than only in
    their congestion side-effects. All three must be [>= 0]. *)

val end_round : t -> live_nodes:int -> unit
(** Closes the open round with the number of live (non-crashed) nodes,
    cuts the per-edge counters down to the top-[k] table, and folds the
    history if it now exceeds [capacity]. Folding a pair keeps the later
    point's [round] and [vtime] (the bucket's position is its end) and
    sums the counters, so series totals are conserved on both axes. *)

val points : t -> point list
(** The retained series in round order. Calling this mid-round returns
    only closed rounds. *)

val rounds_recorded : t -> int
(** Total rounds ever closed into this collector (unaffected by
    folding). *)

val emit : t -> prefix:string -> (Sink.event -> unit) -> unit
(** Streams the series as {!Sink.Series} events, one per (point,
    field): [<prefix>.sent], [.delivered], [.dropped], [.bytes],
    [.retransmits], [.dup_suppressed], [.replications]/[.migrations]/
    [.contractions] (reconfiguration counters, emitted only when
    non-zero so pre-serving traces are unchanged), [.live_nodes] (all
    with [edge = -1]), one [<prefix>.edge] per top-[k] entry carrying
    its edge id, and [<prefix>.edge_rest] for the aggregate remainder.
    Every
    event carries the point's [round], [vtime] (as the [time] field) and
    span
    (emitted only when non-zero, like the edge entries). Events appear
    in round order, fields in the order above — a pure function of
    {!points}, so emission is as deterministic as the series itself. *)
