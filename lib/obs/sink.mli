(** Pluggable event sinks for the observability layer.

    An {!event} is the unit of emission: hierarchical spans (start/end
    pairs sharing an id), point events, and metric samples. Sinks are
    plain records of closures so tests can plug in-memory collectors and
    the CLI can tee a JSONL writer together with a timing aggregator.

    The JSONL encoding writes exactly one JSON object per line; {!of_json}
    parses it back (via the hand-rolled {!Json} module — the toolchain
    ships no JSON library), so traces round-trip without external
    tooling. Event schema (fields in emission order):

    {v
    {"ev":"span_start","name":N,"id":I,"parent":P,"attrs":{...}}
    {"ev":"span_end","name":N,"id":I,"parent":P,"dur_ns":D,"attrs":{...}}
    {"ev":"point","name":N,"id":0,"parent":P,"attrs":{...}}
    {"ev":"counter","name":N,"id":0,"parent":0,"value":V,"attrs":{}}
    {"ev":"gauge","name":N,"id":0,"parent":P,"value":V,"attrs":{}}
    {"ev":"histogram","name":N,"id":0,"parent":0,"count":C,"mean":M,
     "min":L,"max":H,"p50":A,"p95":B,"attrs":{}}
    {"ev":"attribution","name":N,"id":0,"parent":P,"edge":E,"obj":O,
     "component":"read_path|write_path|write_steiner","amount":A,
     "attrs":{...}}
    {"ev":"fault","name":N,"id":0,"parent":P,"round":R,
     "fault":"dropped|crashed|restarted|cut|restored","node":V,"edge":E,
     "attrs":{...}}
    {"ev":"series","name":N,"id":0,"parent":P,"round":R,"span":S,
     "value":V,"edge":E,"attrs":{}}
    {"ev":"alert","name":N,"id":0,"parent":0,"round":R,"time":T,
     "series":S,"kind":K,"magnitude":M,"attrs":{}}
    v}

    [parent] is the id of the enclosing span (0 at top level). An
    [attribution] event reports one cell of a per-edge load-attribution
    table ({!Attribution}): object [O] contributes [A] absolute load
    units to edge [E] through the named component of Section 1.1's load
    definition. A [fault] event reports one injected fault of a
    [Runtime.run] under a fault plan — a dropped message, a node
    crash/restart, or an edge outage opening/closing — with [node] or
    [edge] set to [-1] when not applicable. A [series] event is one
    point of a {!Telemetry} time series: metric [N] had value [V] over
    the [S] runtime rounds ending at round [R] ([S = 1] for an exact
    per-round sample, [S > 1] after the bounded-memory collector folded
    adjacent rounds together); [edge] names the measured edge for
    per-edge utilization series and is [-1] for network-wide series. An
    [alert] event is one change-point detection of a {!Monitor}: the
    detector named [K] (["cusum_up"], ["page_hinkley_down"], ...)
    crossed its threshold on series [S] at round [R] / virtual time [T]
    with detector statistic [M]. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type payload =
  | Span_start
  | Span_end of { duration_ns : int64 }
  | Point
  | Counter of { value : int }
  | Gauge of { value : float }
  | Histogram of {
      count : int;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p95 : float;
    }
  | Attribution of { edge : int; obj : int; component : string; amount : int }
  | Fault of { round : int; fault : string; node : int; edge : int }
  | Series of { round : int; time : float; span : int; value : int; edge : int }
  | Alert of {
      round : int;
      time : float;
      series : string;
      kind : string;
      magnitude : float;
    }

val kinds : string list
(** Every ["ev"] tag {!of_json} understands, in the schema order above.
    Lets a reader distinguish an unknown (newer) event kind from a
    malformed known one. *)

type event = {
  name : string;
  id : int;  (** span id; 0 for non-span events *)
  parent : int;  (** enclosing span id; 0 at top level *)
  payload : payload;
  attrs : (string * value) list;
}

type t = { emit : event -> unit; flush : unit -> unit }

val null : t
(** Discards everything. *)

val jsonl : out_channel -> t
(** One JSON object per event, one per line; [flush] flushes the channel
    (closing it is the caller's business). *)

val memory : unit -> t * (unit -> event list)
(** An in-memory collector; the second component returns the events in
    emission order. *)

val timings : unit -> t * (unit -> (string * int * int64) list)
(** Aggregates [Span_end] durations per span name; the reader returns
    [(name, calls, total_ns)] in first-seen order. Everything else is
    discarded. *)

val tee : t -> t -> t
(** Forwards every event (and flush) to both sinks, left first. *)

val with_attrs : (unit -> (string * value) list) -> t -> t
(** [with_attrs extra inner] appends [extra ()] to every event's
    attributes before forwarding it — the provider runs on the emitting
    domain, so a closure over {!Hbn_exec.Exec.current_worker} tags each
    event with the domain that produced it. Explicit attributes win on
    duplicate keys (they come first). *)

val to_json : event -> string
(** The single-line JSON encoding above (no trailing newline). *)

val of_json : string -> (event, string) result
(** Parses one line produced by {!to_json}. [Error] explains the first
    syntax or schema problem found. *)
