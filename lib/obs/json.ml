type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Only the control-character range is ever emitted. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else fail "unsupported \\u escape"
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    let is_float = ref false in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' -> true
         | '.' | 'e' | 'E' | '+' | '-' -> is_float := true; true
         | _ -> false)
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if lit = "" || lit = "-" then fail "bad number";
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ()
          | '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); List [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements ()
          | ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
      pos := !pos + 4; Bool true
    | 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
      pos := !pos + 5; Bool false
    | 'n' when !pos + 4 <= n && String.sub s !pos 4 = "null" ->
      pos := !pos + 4; Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let parse_result s =
  match parse s with
  | v -> Ok v
  | exception Parse msg -> Error msg
  | exception Failure msg -> Error msg

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Str "nan" -> Some Float.nan
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form recovering the value, with a forced fraction
   marker so the parser can tell floats from ints. *)
let float_to_string buf x =
  if Float.is_nan x then Buffer.add_string buf "\"nan\""
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else begin
    let s = Printf.sprintf "%.17g" x in
    let s = if float_of_string (Printf.sprintf "%.15g" x) = x then
        Printf.sprintf "%.15g" x
      else if float_of_string (Printf.sprintf "%.16g" x) = x then
        Printf.sprintf "%.16g" x
      else s
    in
    Buffer.add_string buf s;
    if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
      Buffer.add_string buf ".0"
  end
