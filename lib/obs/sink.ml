type value = Int of int | Float of float | Str of string | Bool of bool

type payload =
  | Span_start
  | Span_end of { duration_ns : int64 }
  | Point
  | Counter of { value : int }
  | Gauge of { value : float }
  | Histogram of {
      count : int;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p95 : float;
    }

type event = {
  name : string;
  id : int;
  parent : int;
  payload : payload;
  attrs : (string * value) list;
}

type t = { emit : event -> unit; flush : unit -> unit }

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

(* -- JSON writing ------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* A float rendering that is valid JSON and round-trips: shortest decimal
   form recovering the value, with a forced fraction marker so the parser
   can tell floats from ints. *)
let float_to buf x =
  if Float.is_nan x then Buffer.add_string buf "\"nan\""
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else begin
    let s = Printf.sprintf "%.17g" x in
    let s = if float_of_string (Printf.sprintf "%.15g" x) = x then
        Printf.sprintf "%.15g" x
      else if float_of_string (Printf.sprintf "%.16g" x) = x then
        Printf.sprintf "%.16g" x
      else s
    in
    Buffer.add_string buf s;
    if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
      Buffer.add_string buf ".0"
  end

let value_to buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let attrs_to buf attrs =
  Buffer.add_string buf "\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape_to buf k;
      Buffer.add_char buf ':';
      value_to buf v)
    attrs;
  Buffer.add_char buf '}'

let to_json ev =
  let buf = Buffer.create 128 in
  let field k f =
    Buffer.add_char buf ',';
    Buffer.add_string buf "\"";
    Buffer.add_string buf k;
    Buffer.add_string buf "\":";
    f buf
  in
  Buffer.add_string buf "{\"ev\":";
  escape_to buf
    (match ev.payload with
    | Span_start -> "span_start"
    | Span_end _ -> "span_end"
    | Point -> "point"
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Histogram _ -> "histogram");
  field "name" (fun b -> escape_to b ev.name);
  field "id" (fun b -> Buffer.add_string b (string_of_int ev.id));
  field "parent" (fun b -> Buffer.add_string b (string_of_int ev.parent));
  (match ev.payload with
  | Span_start | Point -> ()
  | Span_end { duration_ns } ->
    field "dur_ns" (fun b -> Buffer.add_string b (Int64.to_string duration_ns))
  | Counter { value } ->
    field "value" (fun b -> Buffer.add_string b (string_of_int value))
  | Gauge { value } -> field "value" (fun b -> float_to b value)
  | Histogram { count; mean; min; max; p50; p95 } ->
    field "count" (fun b -> Buffer.add_string b (string_of_int count));
    field "mean" (fun b -> float_to b mean);
    field "min" (fun b -> float_to b min);
    field "max" (fun b -> float_to b max);
    field "p50" (fun b -> float_to b p50);
    field "p95" (fun b -> float_to b p95));
  Buffer.add_char buf ',';
  attrs_to buf ev.attrs;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* -- JSON reading ------------------------------------------------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Parse of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Only the control-character range is ever emitted. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else fail "unsupported \\u escape"
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    let is_float = ref false in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' -> true
         | '.' | 'e' | 'E' | '+' | '-' -> is_float := true; true
         | _ -> false)
    do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if lit = "" || lit = "-" then fail "bad number";
    if !is_float then J_float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> J_int i
      | None -> J_float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> J_str (parse_string ())
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); J_obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ()
          | '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        J_obj (List.rev !fields)
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); J_list [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements ()
          | ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        J_list (List.rev !items)
      end
    | 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
      pos := !pos + 4; J_bool true
    | 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
      pos := !pos + 5; J_bool false
    | 'n' when !pos + 4 <= n && String.sub s !pos 4 = "null" ->
      pos := !pos + 4; J_null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let of_json line =
  match parse_json line with
  | exception Parse msg -> Error msg
  | exception Failure msg -> Error msg
  | J_obj fields ->
    let get k = List.assoc_opt k fields in
    let str k =
      match get k with
      | Some (J_str s) -> s
      | _ -> raise (Parse (Printf.sprintf "missing string field %S" k))
    in
    let int k =
      match get k with
      | Some (J_int i) -> i
      | _ -> raise (Parse (Printf.sprintf "missing int field %S" k))
    in
    let num k =
      match get k with
      | Some (J_float f) -> f
      | Some (J_int i) -> float_of_int i
      | Some (J_str "nan") -> Float.nan
      | _ -> raise (Parse (Printf.sprintf "missing number field %S" k))
    in
    let value_of = function
      | J_int i -> Int i
      | J_float f -> Float f
      | J_str "nan" -> Float Float.nan
      | J_str s -> Str s
      | J_bool b -> Bool b
      | J_null | J_list _ | J_obj _ -> raise (Parse "bad attribute value")
    in
    (try
       let payload =
         match str "ev" with
         | "span_start" -> Span_start
         | "span_end" -> Span_end { duration_ns = Int64.of_int (int "dur_ns") }
         | "point" -> Point
         | "counter" -> Counter { value = int "value" }
         | "gauge" -> Gauge { value = num "value" }
         | "histogram" ->
           Histogram
             {
               count = int "count";
               mean = num "mean";
               min = num "min";
               max = num "max";
               p50 = num "p50";
               p95 = num "p95";
             }
         | ev -> raise (Parse (Printf.sprintf "unknown event kind %S" ev))
       in
       let attrs =
         match get "attrs" with
         | Some (J_obj kvs) -> List.map (fun (k, v) -> (k, value_of v)) kvs
         | None -> []
         | Some _ -> raise (Parse "attrs must be an object")
       in
       Ok { name = str "name"; id = int "id"; parent = int "parent"; payload; attrs }
     with Parse msg -> Error msg)
  | _ -> Error "top level is not an object"

(* -- sinks -------------------------------------------------------------- *)

(* Each stateful sink owns a mutex: events arrive from every domain when
   the pipeline runs with [--jobs > 1], and neither channels, lists nor
   Hashtbl tolerate concurrent mutation. One whole-line write per lock
   hold also keeps JSONL records from interleaving. *)
let locked mutex f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let jsonl oc =
  let mutex = Mutex.create () in
  {
    emit =
      (fun ev ->
        let line = to_json ev in
        locked mutex @@ fun () ->
        output_string oc line;
        output_char oc '\n');
    flush = (fun () -> locked mutex @@ fun () -> flush oc);
  }

let memory () =
  let mutex = Mutex.create () in
  let events = ref [] in
  ( {
      emit = (fun ev -> locked mutex @@ fun () -> events := ev :: !events);
      flush = (fun () -> ());
    },
    fun () -> locked mutex @@ fun () -> List.rev !events )

let timings () =
  let mutex = Mutex.create () in
  let tbl : (string, int ref * int64 ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let emit ev =
    match ev.payload with
    | Span_end { duration_ns } ->
      (locked mutex @@ fun () ->
       match Hashtbl.find_opt tbl ev.name with
       | Some (calls, total) ->
         incr calls;
         total := Int64.add !total duration_ns
       | None ->
         Hashtbl.add tbl ev.name (ref 1, ref duration_ns);
         order := ev.name :: !order)
    | Span_start | Point | Counter _ | Gauge _ | Histogram _ -> ()
  in
  ( { emit; flush = (fun () -> ()) },
    fun () ->
      locked mutex @@ fun () ->
      List.rev_map
        (fun name ->
          let calls, total = Hashtbl.find tbl name in
          (name, !calls, !total))
        !order )

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }
