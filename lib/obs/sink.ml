type value = Int of int | Float of float | Str of string | Bool of bool

type payload =
  | Span_start
  | Span_end of { duration_ns : int64 }
  | Point
  | Counter of { value : int }
  | Gauge of { value : float }
  | Histogram of {
      count : int;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p95 : float;
    }
  | Attribution of { edge : int; obj : int; component : string; amount : int }
  | Fault of { round : int; fault : string; node : int; edge : int }
  | Series of {
      round : int;
      time : float;  (* virtual-time position; = round on the sync axis *)
      span : int;
      value : int;
      edge : int;
    }
  | Alert of {
      round : int;
      time : float;
      series : string;
      kind : string;
      magnitude : float;
    }

(* Every "ev" tag the codec understands, emission-name order. Report
   uses this to tell "newer trace, unknown kind" (skippable) from a
   malformed known event (hard error). *)
let kinds =
  [
    "span_start";
    "span_end";
    "point";
    "counter";
    "gauge";
    "histogram";
    "attribution";
    "fault";
    "series";
    "alert";
  ]

type event = {
  name : string;
  id : int;
  parent : int;
  payload : payload;
  attrs : (string * value) list;
}

type t = { emit : event -> unit; flush : unit -> unit }

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

(* -- JSON writing ------------------------------------------------------- *)

let escape_to = Json.escape_string

let float_to = Json.float_to_string

let value_to buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let attrs_to buf attrs =
  Buffer.add_string buf "\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape_to buf k;
      Buffer.add_char buf ':';
      value_to buf v)
    attrs;
  Buffer.add_char buf '}'

let to_json ev =
  let buf = Buffer.create 128 in
  let field k f =
    Buffer.add_char buf ',';
    Buffer.add_string buf "\"";
    Buffer.add_string buf k;
    Buffer.add_string buf "\":";
    f buf
  in
  Buffer.add_string buf "{\"ev\":";
  escape_to buf
    (match ev.payload with
    | Span_start -> "span_start"
    | Span_end _ -> "span_end"
    | Point -> "point"
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Histogram _ -> "histogram"
    | Attribution _ -> "attribution"
    | Fault _ -> "fault"
    | Series _ -> "series"
    | Alert _ -> "alert");
  field "name" (fun b -> escape_to b ev.name);
  field "id" (fun b -> Buffer.add_string b (string_of_int ev.id));
  field "parent" (fun b -> Buffer.add_string b (string_of_int ev.parent));
  (match ev.payload with
  | Span_start | Point -> ()
  | Span_end { duration_ns } ->
    field "dur_ns" (fun b -> Buffer.add_string b (Int64.to_string duration_ns))
  | Counter { value } ->
    field "value" (fun b -> Buffer.add_string b (string_of_int value))
  | Gauge { value } -> field "value" (fun b -> float_to b value)
  | Histogram { count; mean; min; max; p50; p95 } ->
    field "count" (fun b -> Buffer.add_string b (string_of_int count));
    field "mean" (fun b -> float_to b mean);
    field "min" (fun b -> float_to b min);
    field "max" (fun b -> float_to b max);
    field "p50" (fun b -> float_to b p50);
    field "p95" (fun b -> float_to b p95)
  | Attribution { edge; obj; component; amount } ->
    field "edge" (fun b -> Buffer.add_string b (string_of_int edge));
    field "obj" (fun b -> Buffer.add_string b (string_of_int obj));
    field "component" (fun b -> escape_to b component);
    field "amount" (fun b -> Buffer.add_string b (string_of_int amount))
  | Fault { round; fault; node; edge } ->
    field "round" (fun b -> Buffer.add_string b (string_of_int round));
    field "fault" (fun b -> escape_to b fault);
    field "node" (fun b -> Buffer.add_string b (string_of_int node));
    field "edge" (fun b -> Buffer.add_string b (string_of_int edge))
  | Series { round; time; span; value; edge } ->
    field "round" (fun b -> Buffer.add_string b (string_of_int round));
    field "time" (fun b -> float_to b time);
    field "span" (fun b -> Buffer.add_string b (string_of_int span));
    field "value" (fun b -> Buffer.add_string b (string_of_int value));
    field "edge" (fun b -> Buffer.add_string b (string_of_int edge))
  | Alert { round; time; series; kind; magnitude } ->
    field "round" (fun b -> Buffer.add_string b (string_of_int round));
    field "time" (fun b -> float_to b time);
    field "series" (fun b -> escape_to b series);
    field "kind" (fun b -> escape_to b kind);
    field "magnitude" (fun b -> float_to b magnitude));
  Buffer.add_char buf ',';
  attrs_to buf ev.attrs;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* -- JSON reading ------------------------------------------------------- *)

let of_json line =
  match Json.parse line with
  | exception Json.Parse msg -> Error msg
  | exception Failure msg -> Error msg
  | Json.Obj _ as j ->
    let get k = Json.member k j in
    let str k =
      match get k with
      | Some (Json.Str s) -> s
      | _ -> raise (Json.Parse (Printf.sprintf "missing string field %S" k))
    in
    let int k =
      match get k with
      | Some (Json.Int i) -> i
      | _ -> raise (Json.Parse (Printf.sprintf "missing int field %S" k))
    in
    let num k =
      match get k with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | Some (Json.Str "nan") -> Float.nan
      | _ -> raise (Json.Parse (Printf.sprintf "missing number field %S" k))
    in
    let value_of = function
      | Json.Int i -> Int i
      | Json.Float f -> Float f
      | Json.Str "nan" -> Float Float.nan
      | Json.Str s -> Str s
      | Json.Bool b -> Bool b
      | Json.Null | Json.List _ | Json.Obj _ ->
        raise (Json.Parse "bad attribute value")
    in
    (try
       let payload =
         match str "ev" with
         | "span_start" -> Span_start
         | "span_end" -> Span_end { duration_ns = Int64.of_int (int "dur_ns") }
         | "point" -> Point
         | "counter" -> Counter { value = int "value" }
         | "gauge" -> Gauge { value = num "value" }
         | "histogram" ->
           Histogram
             {
               count = int "count";
               mean = num "mean";
               min = num "min";
               max = num "max";
               p50 = num "p50";
               p95 = num "p95";
             }
         | "attribution" ->
           Attribution
             {
               edge = int "edge";
               obj = int "obj";
               component = str "component";
               amount = int "amount";
             }
         | "fault" ->
           Fault
             {
               round = int "round";
               fault = str "fault";
               node = int "node";
               edge = int "edge";
             }
         | "series" ->
           let round = int "round" in
           Series
             {
               round;
               (* Files written before the virtual-time axis carry no
                  "time" field: their axis was the round number. *)
               time =
                 (match get "time" with
                 | None -> float_of_int round
                 | Some _ -> num "time");
               span = int "span";
               value = int "value";
               edge = int "edge";
             }
         | "alert" ->
           Alert
             {
               round = int "round";
               time = num "time";
               series = str "series";
               kind = str "kind";
               magnitude = num "magnitude";
             }
         | ev -> raise (Json.Parse (Printf.sprintf "unknown event kind %S" ev))
       in
       let attrs =
         match get "attrs" with
         | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, value_of v)) kvs
         | None -> []
         | Some _ -> raise (Json.Parse "attrs must be an object")
       in
       Ok { name = str "name"; id = int "id"; parent = int "parent"; payload; attrs }
     with Json.Parse msg -> Error msg)
  | _ -> Error "top level is not an object"

(* -- sinks -------------------------------------------------------------- *)

(* Each stateful sink owns a mutex: events arrive from every domain when
   the pipeline runs with [--jobs > 1], and neither channels, lists nor
   Hashtbl tolerate concurrent mutation. One whole-line write per lock
   hold also keeps JSONL records from interleaving. *)
let locked mutex f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let jsonl oc =
  let mutex = Mutex.create () in
  {
    emit =
      (fun ev ->
        let line = to_json ev in
        locked mutex @@ fun () ->
        output_string oc line;
        output_char oc '\n');
    flush = (fun () -> locked mutex @@ fun () -> flush oc);
  }

let memory () =
  let mutex = Mutex.create () in
  let events = ref [] in
  ( {
      emit = (fun ev -> locked mutex @@ fun () -> events := ev :: !events);
      flush = (fun () -> ());
    },
    fun () -> locked mutex @@ fun () -> List.rev !events )

let timings () =
  let mutex = Mutex.create () in
  let tbl : (string, int ref * int64 ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let emit ev =
    match ev.payload with
    | Span_end { duration_ns } ->
      (locked mutex @@ fun () ->
       match Hashtbl.find_opt tbl ev.name with
       | Some (calls, total) ->
         incr calls;
         total := Int64.add !total duration_ns
       | None ->
         Hashtbl.add tbl ev.name (ref 1, ref duration_ns);
         order := ev.name :: !order)
    | Span_start | Point | Counter _ | Gauge _ | Histogram _ | Attribution _
    | Fault _ | Series _ | Alert _ ->
      ()
  in
  ( { emit; flush = (fun () -> ()) },
    fun () ->
      locked mutex @@ fun () ->
      List.rev_map
        (fun name ->
          let calls, total = Hashtbl.find tbl name in
          (name, !calls, !total))
        !order )

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

let with_attrs extra inner =
  {
    emit =
      (fun ev ->
        inner.emit { ev with attrs = ev.attrs @ extra () });
    flush = inner.flush;
  }
