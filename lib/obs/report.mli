(** Offline trace analytics: everything a JSONL trace can tell you,
    recomputed after the fact.

    A trace written by [--trace] (or a telemetry file written by
    [--telemetry]) is a stream of {!Sink} events. This module parses it
    back through {!Sink.of_json}, reconstructs the span tree from the
    [id]/[parent] links, and derives the analyses the live pipeline
    never computes: per-phase self vs. total time, the critical path,
    counter and gauge rollups, {!Sink.Series} time-series summaries, the
    hottest-edges-over-time profile, and fault tallies. Three renderers
    share the analysis: a human table, a [hbn.report/v1] JSON document,
    and Chrome trace-event JSON loadable in Perfetto ([chrome://tracing]),
    which turns a [place --trace] run into a browsable flame chart.

    Everything here is a pure function of the event list, so reports are
    deterministic and the golden tests can pin renderer output byte for
    byte. *)

type t
(** An analyzed trace. *)

val of_events : Sink.event list -> t
(** Analyzes an in-memory event stream (e.g. from {!Sink.memory}).
    Tolerant of partial traces: spans without a matching [Span_end]
    are dropped from duration accounting but keep their children. *)

val load : path:string -> (t, string) result
(** Reads a JSONL trace file. The first malformed line fails the whole
    load with [Error "path:N: explanation"] — a trace that does not
    round-trip is a bug worth failing loudly on, not skipping. The one
    exception is forward compatibility: a valid JSON line whose ["ev"]
    tag is a kind this binary does not know (a newer trace read by an
    older reader) is skipped and counted into {!unknown_events}. *)

val events : t -> Sink.event list
(** The parsed events, in file order. *)

val unknown_events : t -> int
(** Lines of unknown event kind {!load} skipped (0 for {!of_events});
    reported in the table and JSON rollups. *)

(** {1 Analyses} *)

type phase = {
  name : string;
  calls : int;
  total_ns : int64;  (** wall time inside spans of this name *)
  self_ns : int64;  (** [total_ns] minus time inside child spans *)
}

val phases : t -> phase list
(** Closed spans aggregated by name, total time descending (ties by
    name). *)

val critical_path : t -> (string * int64) list
(** The heaviest chain of nested spans: starting from the
    longest-duration root span, descend at every level into the child
    span with the largest duration. Each element is [(name,
    duration_ns)], outermost first; empty when the trace has no closed
    root span. *)

type series = {
  s_name : string;
  points : int;  (** Series events (per-edge entries counted each) *)
  first_round : int;
  last_round : int;
  first_time : float;  (** virtual time covered; = rounds on the sync axis *)
  last_time : float;
  total : int;  (** sum of point values *)
  peak : int;  (** largest point value *)
  peak_round : int;  (** round of the first peak *)
}

val series : t -> series list
(** {!Sink.Series} events aggregated by name, in name order. *)

type alert_summary = {
  al_series : string;
  al_kind : string;  (** detector wire name, e.g. ["cusum_up"] *)
  al_count : int;
  al_first_round : int;
  al_last_round : int;
  al_max_magnitude : float;
}

val alert_summaries : t -> alert_summary list
(** {!Sink.Alert} events aggregated by (series, kind), in that order. *)

val hottest_edges : ?top:int -> ?buckets:int -> t -> (int * int * int array) array
(** Per-edge utilization over time, from [Series] events carrying
    [edge >= 0]: the [top] (default 5) edges by total traversals, as
    [(edge, total, per_bucket)] with the covered round range split into
    [buckets] (default 8) equal intervals, busiest first. *)

val bucket_bounds : ?buckets:int -> t -> (int * int) array
(** The [(first_round, last_round)] intervals the {!hottest_edges}
    buckets cover; empty when the trace has no per-edge series. *)

(** {1 Renderers} *)

val to_table : ?top:int -> t -> string
(** Human-readable report: phase table (total/self/mean), critical
    path, counters, gauges, series rollups, hottest edges over time,
    fault tallies. [top] (default 5) bounds the per-edge table. Empty
    sections are omitted. *)

val to_json : ?top:int -> t -> string
(** The same analyses as one [{"schema":"hbn.report/v1", ...}]
    document. *)

val to_chrome : t -> string
(** Chrome trace-event JSON ([{"traceEvents":[...]}]). Spans become
    complete ("X") events on pid 1 with a {e reconstructed} timeline:
    only durations are recorded in the trace, so each root span starts
    where the previous ended and children are laid out sequentially
    inside their parent — widths are real measured nanoseconds, offsets
    are synthetic. The [tid] is the emitting domain when the event
    carries the CLI's [domain] attribute. Series events become counter
    ("C") samples and faults instant ("i") events on pid 2, whose time
    axis is the runtime round. Load the file in Perfetto or
    [chrome://tracing]. *)

(** {1 Trace diffing}

    [diff ~base ~cur] compares two traces series by series, turning any
    committed trace into a regression baseline. Both sides are reduced
    the same way: totals/peaks straight from the {!Sink.Series} events
    (per-edge series keyed ["name[edge]"]), quantiles and alerts
    recomputed by feeding each trace's series — normalized to per-round
    rates — through a fresh default {!Monitor}. Diffing a trace against
    itself is therefore exactly clean: same events, same fold, same
    estimator state. *)

val drift_monitor : t -> Monitor.t
(** A fresh default monitor fed every series event of the trace in file
    order (per-round rates, per-edge series keyed ["name[edge]"]) —
    the offline replay of what the engines compute online. *)

type series_cmp = {
  c_name : string;
  base_points : int;  (** 0 when the series is absent on that side *)
  cur_points : int;
  base_total : int;
  cur_total : int;
  base_peak : int;
  cur_peak : int;
  base_p50 : float;  (** per-round rate, P-square estimate *)
  cur_p50 : float;
  base_p95 : float;
  cur_p95 : float;
}

type diff = {
  d_base_events : int;
  d_cur_events : int;
  d_series : series_cmp list;  (** union of both traces, key order *)
  d_changed : int;  (** series with any count/total/peak/quantile delta *)
  d_base_alerts : Monitor.alert list;
  d_cur_alerts : Monitor.alert list;
  d_new_alerts : Monitor.alert list;
      (** current alerts whose (series, kind) never fires in the
          baseline *)
  d_gone_alerts : Monitor.alert list;  (** the reverse *)
}

val diff : base:t -> cur:t -> diff

val diff_clean : diff -> bool
(** No changed series, no new alerts, no resolved alerts. *)

val diff_to_table : diff -> string
(** Human-readable comparison; changed series are starred, and the last
    line is a one-sentence verdict. *)

val diff_to_json : diff -> string
(** The same comparison as one [{"schema":"hbn.diff/v1", ...}]
    document. *)
