(** Offline trace analytics: everything a JSONL trace can tell you,
    recomputed after the fact.

    A trace written by [--trace] (or a telemetry file written by
    [--telemetry]) is a stream of {!Sink} events. This module parses it
    back through {!Sink.of_json}, reconstructs the span tree from the
    [id]/[parent] links, and derives the analyses the live pipeline
    never computes: per-phase self vs. total time, the critical path,
    counter and gauge rollups, {!Sink.Series} time-series summaries, the
    hottest-edges-over-time profile, and fault tallies. Three renderers
    share the analysis: a human table, a [hbn.report/v1] JSON document,
    and Chrome trace-event JSON loadable in Perfetto ([chrome://tracing]),
    which turns a [place --trace] run into a browsable flame chart.

    Everything here is a pure function of the event list, so reports are
    deterministic and the golden tests can pin renderer output byte for
    byte. *)

type t
(** An analyzed trace. *)

val of_events : Sink.event list -> t
(** Analyzes an in-memory event stream (e.g. from {!Sink.memory}).
    Tolerant of partial traces: spans without a matching [Span_end]
    are dropped from duration accounting but keep their children. *)

val load : path:string -> (t, string) result
(** Reads a JSONL trace file. The first malformed line fails the whole
    load with [Error "path:N: explanation"] — a trace that does not
    round-trip is a bug worth failing loudly on, not skipping. *)

val events : t -> Sink.event list
(** The parsed events, in file order. *)

(** {1 Analyses} *)

type phase = {
  name : string;
  calls : int;
  total_ns : int64;  (** wall time inside spans of this name *)
  self_ns : int64;  (** [total_ns] minus time inside child spans *)
}

val phases : t -> phase list
(** Closed spans aggregated by name, total time descending (ties by
    name). *)

val critical_path : t -> (string * int64) list
(** The heaviest chain of nested spans: starting from the
    longest-duration root span, descend at every level into the child
    span with the largest duration. Each element is [(name,
    duration_ns)], outermost first; empty when the trace has no closed
    root span. *)

type series = {
  s_name : string;
  points : int;  (** Series events (per-edge entries counted each) *)
  first_round : int;
  last_round : int;
  total : int;  (** sum of point values *)
  peak : int;  (** largest point value *)
  peak_round : int;  (** round of the first peak *)
}

val series : t -> series list
(** {!Sink.Series} events aggregated by name, in name order. *)

val hottest_edges : ?top:int -> ?buckets:int -> t -> (int * int * int array) array
(** Per-edge utilization over time, from [Series] events carrying
    [edge >= 0]: the [top] (default 5) edges by total traversals, as
    [(edge, total, per_bucket)] with the covered round range split into
    [buckets] (default 8) equal intervals, busiest first. *)

val bucket_bounds : ?buckets:int -> t -> (int * int) array
(** The [(first_round, last_round)] intervals the {!hottest_edges}
    buckets cover; empty when the trace has no per-edge series. *)

(** {1 Renderers} *)

val to_table : ?top:int -> t -> string
(** Human-readable report: phase table (total/self/mean), critical
    path, counters, gauges, series rollups, hottest edges over time,
    fault tallies. [top] (default 5) bounds the per-edge table. Empty
    sections are omitted. *)

val to_json : ?top:int -> t -> string
(** The same analyses as one [{"schema":"hbn.report/v1", ...}]
    document. *)

val to_chrome : t -> string
(** Chrome trace-event JSON ([{"traceEvents":[...]}]). Spans become
    complete ("X") events on pid 1 with a {e reconstructed} timeline:
    only durations are recorded in the trace, so each root span starts
    where the previous ended and children are laid out sequentially
    inside their parent — widths are real measured nanoseconds, offsets
    are synthetic. The [tid] is the emitting domain when the event
    carries the CLI's [domain] attribute. Series events become counter
    ("C") samples and faults instant ("i") events on pid 2, whose time
    axis is the runtime round. Load the file in Perfetto or
    [chrome://tracing]. *)
