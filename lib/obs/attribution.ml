(* Per-edge load attribution. Cells live in one hash table per edge keyed
   by (object, component); a cell that sums back to zero is removed, so
   the incremental table converges to exactly the one-shot table's
   contents after any mutate/rollback sequence — the bit-for-bit
   agreement [equal] checks. *)

module Tree = Hbn_tree.Tree
module Flat = Hbn_tree.Flat
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Loads = Hbn_loads.Loads

type t = {
  tree : Tree.t;
  cells : (int, int ref) Hashtbl.t array;
      (* index = edge; key = object * 3 + component rank; value = running
         sum. Packing the pair into an immediate int keeps [record] — the
         hottest call under tracing — free of tuple allocation and
         structural hashing. *)
  totals : int array;  (* index = edge; sum of the edge's cells *)
}

type contribution = {
  obj : int;
  component : Placement.component;
  amount : int;
}

let component_rank = function
  | Placement.Read_path -> 0
  | Placement.Write_path -> 1
  | Placement.Write_steiner -> 2

let component_of_rank = function
  | 0 -> Placement.Read_path
  | 1 -> Placement.Write_path
  | _ -> Placement.Write_steiner

let cell_key ~obj ~component = (obj * 3) + component_rank component

let create tree =
  {
    tree;
    cells = Array.init (Tree.num_edges tree) (fun _ -> Hashtbl.create 8);
    totals = Array.make (Tree.num_edges tree) 0;
  }

let record t ~obj ~component ~edge ~amount =
  if amount <> 0 then begin
    if edge < 0 || edge >= Array.length t.totals then
      invalid_arg "Attribution.record: edge out of range";
    t.totals.(edge) <- t.totals.(edge) + amount;
    let tbl = t.cells.(edge) in
    let key = cell_key ~obj ~component in
    match Hashtbl.find_opt tbl key with
    | Some r ->
      let v = !r + amount in
      if v = 0 then Hashtbl.remove tbl key else r := v
    | None -> Hashtbl.add tbl key (ref amount)
  end

let of_placement w p =
  let t = create (Workload.tree w) in
  let fl = Flat.of_tree t.tree in
  let scratch = Flat.Scratch.create fl in
  Array.iteri
    (fun obj op ->
      Placement.iter_object_load_components_scratch fl scratch op
        (fun edge component amount -> record t ~obj ~component ~edge ~amount))
    p;
  t

let of_loads eng =
  let w = Loads.workload eng in
  let t = create (Workload.tree w) in
  let fl = Flat.of_tree t.tree in
  let scratch = Flat.Scratch.create fl in
  let wf = Workload.flat w in
  for obj = 0 to Workload.num_objects w - 1 do
    if Loads.num_copies eng ~obj > 0 then begin
      Workload.Flat.iter_requesting wf ~obj (fun leaf ->
          match Loads.server eng ~obj leaf with
          | None -> ()
          | Some server ->
            if leaf <> server then begin
              let rd = Workload.reads w ~obj leaf in
              let wr = Workload.writes w ~obj leaf in
              Flat.iter_path fl scratch leaf server (fun edge ->
                  record t ~obj ~component:Placement.Read_path ~edge ~amount:rd;
                  record t ~obj ~component:Placement.Write_path ~edge ~amount:wr)
            end);
      let kappa = Workload.Flat.kappa wf ~obj in
      if kappa > 0 then
        Flat.iter_steiner fl scratch
          ~nodes:(fun mark -> List.iter mark (Loads.copies eng ~obj))
          (fun edge ->
            record t ~obj ~component:Placement.Write_steiner ~edge ~amount:kappa)
    end
  done;
  t

let attach eng =
  let t = of_loads eng in
  Loads.set_hook eng
    (Some
       (fun ~obj ~component ~edge ~amount -> record t ~obj ~component ~edge ~amount));
  t

let tree t = t.tree

let edge_total t ~edge = t.totals.(edge)

let totals t = Array.copy t.totals

let compare_contribution a b =
  if a.amount <> b.amount then compare b.amount a.amount
  else if a.obj <> b.obj then compare a.obj b.obj
  else compare (component_rank a.component) (component_rank b.component)

let contributions_of_table tbl =
  Hashtbl.fold
    (fun key r acc ->
      { obj = key / 3; component = component_of_rank (key mod 3); amount = !r }
      :: acc)
    tbl []
  |> List.sort compare_contribution

let edge_contributions t ~edge = contributions_of_table t.cells.(edge)

let incident_edges t bus =
  Array.to_list (Array.map snd (Tree.neighbors t.tree bus))

let bus_total2 t ~bus =
  if Tree.is_leaf t.tree bus then
    invalid_arg "Attribution.bus_total2: not a bus";
  List.fold_left (fun s e -> s + t.totals.(e)) 0 (incident_edges t bus)

let bus_contributions t ~bus =
  if Tree.is_leaf t.tree bus then
    invalid_arg "Attribution.bus_contributions: not a bus";
  let merged = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.iter
        (fun key r ->
          match Hashtbl.find_opt merged key with
          | Some m -> m := !m + !r
          | None -> Hashtbl.add merged key (ref !r))
        t.cells.(e))
    (incident_edges t bus);
  contributions_of_table merged

type site = [ `Edge of int | `Bus of int ]

(* The same float expressions as Placement.congestion_of_edge_loads, so
   the maximum over sites is bit-identical to the evaluator's value. *)
let site_relative t = function
  | `Edge e ->
    float_of_int t.totals.(e) /. float_of_int (Tree.edge_bandwidth t.tree e)
  | `Bus b ->
    float_of_int (bus_total2 t ~bus:b)
    /. (2. *. float_of_int (Tree.bus_bandwidth t.tree b))

let all_sites t =
  List.init (Array.length t.totals) (fun e -> `Edge e)
  @ List.map (fun b -> `Bus b) (Tree.buses t.tree)

let hotspots t ~k =
  (* The site list is already in the evaluator's scan order (edges by id,
     then buses by id); a stable sort on relative load alone therefore
     breaks ties exactly like its strict-maximum argmax. *)
  let rated = List.map (fun s -> (s, site_relative t s)) (all_sites t) in
  let sorted = List.stable_sort (fun (_, a) (_, b) -> compare b a) rated in
  List.filteri (fun i _ -> i < k) sorted

let congestion_value t =
  match hotspots t ~k:1 with [] -> 0. | (_, rel) :: _ -> rel

let canonical_cells tbl =
  Hashtbl.fold (fun key r acc -> ((key / 3, key mod 3), !r) :: acc) tbl []
  |> List.sort compare

let equal a b =
  Array.length a.totals = Array.length b.totals
  && a.totals = b.totals
  &&
  let ok = ref true in
  Array.iteri
    (fun e tbl ->
      if !ok && canonical_cells tbl <> canonical_cells b.cells.(e) then
        ok := false)
    a.cells;
  !ok

let events ?(name = "attribution") ?(attrs = []) t =
  (* Cells sorted by packed key = (object, component rank) ascending —
     the same event order the contribution-record sort used to produce,
     minus one decode/re-sort round trip. *)
  List.concat
    (List.init (Array.length t.totals) (fun edge ->
         let cells =
           Hashtbl.fold (fun key r acc -> (key, !r) :: acc) t.cells.(edge) []
           |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
         in
         List.map
           (fun (key, amount) ->
             {
               Sink.name;
               id = 0;
               parent = 0;
               attrs;
               payload =
                 Sink.Attribution
                   {
                     edge;
                     obj = key / 3;
                     component =
                       Placement.component_name (component_of_rank (key mod 3));
                     amount;
                   };
             })
           cells))

let emit ?name ?attrs t sink =
  List.iter sink.Sink.emit (events ?name ?attrs t)

let json_contributions buf contribs =
  Buffer.add_char buf '[';
  List.iteri
    (fun i { obj; component; amount } ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"obj":%d,"component":"%s","amount":%d}|} obj
           (Placement.component_name component)
           amount))
    contribs;
  Buffer.add_char buf ']'

let to_json ?k t =
  let k =
    match k with
    | Some k -> k
    | None -> Array.length t.totals + List.length (Tree.buses t.tree)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf {|{"schema":"hbn.explain/v1","congestion":|};
  Json.float_to_string buf (congestion_value t);
  Buffer.add_string buf {|,"sites":[|};
  List.iteri
    (fun i (site, rel) ->
      if i > 0 then Buffer.add_char buf ',';
      (match site with
      | `Edge e ->
        Buffer.add_string buf
          (Printf.sprintf {|{"site":"edge","id":%d,"load":%d,"bandwidth":%d|} e
             t.totals.(e)
             (Tree.edge_bandwidth t.tree e))
      | `Bus b ->
        Buffer.add_string buf
          (Printf.sprintf {|{"site":"bus","id":%d,"load2":%d,"bandwidth":%d|} b
             (bus_total2 t ~bus:b)
             (Tree.bus_bandwidth t.tree b)));
      Buffer.add_string buf {|,"relative":|};
      Json.float_to_string buf rel;
      Buffer.add_string buf {|,"contributions":|};
      json_contributions buf
        (match site with
        | `Edge e -> edge_contributions t ~edge:e
        | `Bus b -> bus_contributions t ~bus:b);
      Buffer.add_char buf '}')
    (hotspots t ~k);
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Gray (#cccccc, cold) to red (#ff0000, at the congestion maximum). *)
let heat_color ratio =
  let ratio = if ratio < 0. then 0. else if ratio > 1. then 1. else ratio in
  let r = 204 + int_of_float (ratio *. 51.) in
  let gb = 204 - int_of_float (ratio *. 204.) in
  Printf.sprintf "#%02x%02x%02x" r gb gb

let to_dot t =
  let top = congestion_value t in
  let ratio_of rel = if top > 0. then rel /. top else 0. in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph hbn_attribution {\n";
  for v = 0 to Tree.n t.tree - 1 do
    if Tree.is_leaf t.tree v then
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=circle,label=\"P%d\"];\n" v v)
    else
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d [shape=box,style=filled,fillcolor=\"%s\",label=\"bus %d\"];\n"
           v
           (heat_color (ratio_of (site_relative t (`Bus v))))
           v)
  done;
  for e = 0 to Array.length t.totals - 1 do
    let u, v = Tree.edge_endpoints t.tree e in
    let ratio = ratio_of (site_relative t (`Edge e)) in
    Buffer.add_string buf
      (Printf.sprintf
         "  n%d -- n%d [label=\"%d\",color=\"%s\",penwidth=%.2f];\n" u v
         t.totals.(e) (heat_color ratio)
         (1. +. (3. *. ratio)))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
