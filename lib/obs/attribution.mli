(** Per-edge load attribution: explain every edge's (and bus's) load.

    Congestion — the maximum relative load over edges and buses — is the
    objective everything in this repo optimizes, but a scalar says
    nothing about {e why} an edge is hot. An attribution table
    decomposes each edge's absolute load into [(object, component)]
    cells, where the component is one of Section 1.1's three load
    sources ({!Placement.component}): read traffic on a leaf→server
    path, write traffic on the same path, or the write broadcast over
    the copy set's Steiner tree.

    The table is maintained two ways that agree bit-for-bit (integer
    cells, property-tested in [test/test_attribution.ml]):

    - {!of_placement} — a one-shot pass over
      {!Placement.iter_object_load_components};
    - {!attach} — incremental O(height) deltas fed by the
      {!Loads.set_hook} stream of a live engine, surviving
      checkpoint/rollback because the engine's undo journal replays
      inverse deltas through the same hook.

    Invariants: {!totals} equals [Placement.edge_loads] of the
    attributed placement, {!congestion_value} equals
    [Placement.congestion], and summing {!edge_contributions} per edge
    reproduces {!edge_total} exactly. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Loads = Hbn_loads.Loads

type t

type contribution = {
  obj : int;
  component : Placement.component;
  amount : int;  (** absolute load units; never 0 in returned lists *)
}

(** {1 Construction} *)

val create : Tree.t -> t
(** An all-zero table. *)

val record :
  t -> obj:int -> component:Placement.component -> edge:int -> amount:int -> unit
(** Adds one (possibly negative) elementary contribution — the primitive
    both construction modes reduce to. Cells that return to zero drop
    out of every accessor. O(1). *)

val of_placement : Workload.t -> Placement.t -> t
(** One-shot attribution of a placement, driven by
    {!Placement.iter_object_load_components}. *)

val of_loads : Loads.t -> t
(** One-shot attribution of a load engine's current state (copy sets and
    possibly overridden assignments), without requiring every requested
    object to hold copies yet — objects without copies contribute
    nothing, matching the engine's zero loads for them. *)

val attach : Loads.t -> t
(** [attach eng] is {!of_loads} [eng] kept live: the table subscribes to
    the engine's delta stream via {!Loads.set_hook} (replacing any
    previous hook) and mirrors every mutation — including rollbacks —
    from then on. Detach with [Loads.set_hook eng None]. *)

(** {1 Per-edge and per-bus lookup} *)

val tree : t -> Tree.t

val edge_total : t -> edge:int -> int
(** The edge's absolute load — the sum of its contributions. *)

val totals : t -> int array
(** All edge totals (a fresh copy), index = edge. *)

val edge_contributions : t -> edge:int -> contribution list
(** Nonzero cells of one edge, largest amount first (ties: lower object,
    then read < write < steiner). *)

val bus_total2 : t -> bus:int -> int
(** Twice the bus's absolute load: the sum of its incident edges' totals
    (the paper defines bus load as half that sum; doubling keeps it
    integral, mirroring [Placement.congestion.bus_loads2]). *)

val bus_contributions : t -> bus:int -> contribution list
(** Contributions summed over the bus's incident edges, in the same
    doubled units as {!bus_total2}, ordered as
    {!edge_contributions}. *)

(** {1 Hotspots} *)

type site = [ `Edge of int | `Bus of int ]

val site_relative : t -> site -> float
(** Relative load: edge total over edge bandwidth, or {!bus_total2} over
    twice the bus bandwidth — the same arithmetic as
    [Placement.congestion_of_edge_loads], so maxima are bit-identical. *)

val hotspots : t -> k:int -> (site * float) list
(** The [k] hottest sites, relative load descending; ties order edges
    before buses and lower ids first, matching the evaluator's argmax
    (so the head is its [bottleneck]). *)

val congestion_value : t -> float
(** The congestion of the attributed state — bit-identical to
    [Placement.congestion] of the placement the table attributes. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Same tree shape and exactly the same nonzero cells — the bit-for-bit
    agreement the incremental and one-shot modes must maintain. *)

(** {1 Export} *)

val events :
  ?name:string -> ?attrs:(string * Sink.value) list -> t -> Sink.event list
(** One [Sink.Attribution] event per nonzero cell (edge ascending, then
    object, then component), named [name] (default ["attribution"]) with
    [attrs] on every event. This is the JSONL export format and what
    [Strategy.run] emits per phase when tracing is on. *)

val emit : ?name:string -> ?attrs:(string * Sink.value) list -> t -> Sink.t -> unit
(** {!events} pushed into a sink. *)

val to_json : ?k:int -> t -> string
(** A standalone JSON document ([hbn.explain/v1]): congestion, then the
    [k] (default: all) hottest sites with their contributor lists. *)

val to_dot : t -> string
(** Graphviz rendering of the network with edges heat-colored by
    relative load (gray→red against the hottest site) and labeled with
    their absolute loads; buses are filled on the same scale. *)
