(** The global tracer: hierarchical spans, point events, and metric
    shortcuts, all gated on one flag.

    Tracing is {e off} by default: no sink is installed, {!enabled}
    returns [false], and every entry point below reduces to a single
    branch on that flag — no allocation, no clock read, no sink code.
    Instrumented call sites guard attribute construction themselves:

    {[
      let sp = Trace.span "strategy.deletion" in
      (* ... work ... *)
      if Trace.enabled () then
        Trace.finish sp ~attrs:[ ("deletions", Sink.Int d) ]
    ]}

    (with tracing off, [span] returns the shared {!none} handle and the
    [finish] call is skipped entirely, so the attribute list is never
    built). Durations come from the monotonic clock
    ([clock_gettime(CLOCK_MONOTONIC)] via bechamel's stub), so they are
    immune to wall-clock adjustments.

    Span ids start at 1 and reset whenever a sink is (un)installed, so
    traces of a deterministic program are byte-identical run to run.

    The tracer is domain-safe: ids, the span stack and sink emission are
    guarded by one mutex, and ids are allocated under the lock in call
    order. [Hbn_exec] pipelines keep their determinism contract by
    emitting spans only from the sequential merge phases — the fixed
    allocation order then makes traces byte-identical at any job count —
    but a span opened from a pool worker is merely serialized (and
    parented to the innermost open span at that moment), never a data
    race. The [enabled] fast path is a lock-free read; installing a sink
    must happen before instrumented work is fanned out. *)

type span
(** A handle for an open span. *)

val none : span
(** The disabled-tracer handle; finishing it is a no-op. *)

val enabled : unit -> bool
(** [true] iff a sink is installed. Instrumentation guards any work
    beyond fixed function calls behind this flag. *)

val set_sink : Sink.t option -> unit
(** Installs (or with [None] removes) the sink, flushing the previous
    one and resetting span ids and the span stack. *)

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** [with_sink s f] runs [f] with [s] installed, then flushes [s] and
    restores the previous tracer state (even on exceptions). *)

val span : ?attrs:(string * Sink.value) list -> string -> span
(** Opens a span: emits [Span_start] (parented to the innermost open
    span) and records the start time. Returns {!none} when disabled. *)

val finish : ?attrs:(string * Sink.value) list -> span -> unit
(** Closes the span: emits [Span_end] with the monotonic duration.
    Spans are expected to close innermost-first; finishing out of order
    is tolerated (the span is removed from wherever it sits on the
    stack). No-op on {!none}. *)

val event : ?attrs:(string * Sink.value) list -> string -> unit
(** Emits a point event inside the innermost open span. *)

val emit : Sink.event -> unit
(** Emits a pre-built event into the installed sink — the escape hatch
    for structured payloads the helpers above don't build, such as
    {!Attribution} snapshots. An event whose [parent] is [0] is
    re-parented to the innermost open span. No-op when disabled; callers
    guard the event construction behind {!enabled} themselves. *)

val count : ?by:int -> string -> unit
(** Bumps the named counter in {!Metrics.global}. Counters are
    aggregates: they appear in a trace only when the driver dumps a
    snapshot ({!Metrics.emit}), not per bump. No-op when disabled. *)

val gauge : string -> float -> unit
(** Records the gauge in {!Metrics.global} {e and} streams a [Gauge]
    event (gauges are time-varying; the per-sample history is the
    point). No-op when disabled. *)

val flush : unit -> unit
(** Flushes the installed sink, if any. *)
