module Tree = Hbn_tree.Tree
module Flat = Hbn_tree.Flat
module Workload = Hbn_workload.Workload
module Exec = Hbn_exec.Exec

type assignment = { leaf : int; server : int; reads : int; writes : int }

type obj_placement = { copies : int list; assigns : assignment list }

type t = obj_placement array

let dedup_sorted xs = List.sort_uniq compare xs

let nearest_object w ~obj ~copies =
  let fl = Flat.of_tree (Workload.tree w) in
  let wf = Workload.flat w in
  let cs = dedup_sorted copies in
  let lo = wf.Workload.Flat.req_off.(obj)
  and hi = wf.Workload.Flat.req_off.(obj + 1) in
  if hi > lo && cs = [] then
    invalid_arg "Placement.nearest: requests but no copies";
  (* [cs] is sorted and only a strictly smaller distance displaces the
     incumbent, so ties go to the lowest node id — the canonical
     tie-break every evaluator and the incremental engine reproduce. *)
  let closest leaf =
    let best = ref (-1) and best_d = ref max_int in
    List.iter
      (fun c ->
        let d = Flat.distance fl leaf c in
        if d < !best_d then begin
          best := c;
          best_d := d
        end)
      cs;
    !best
  in
  let assigns = ref [] in
  for i = hi - 1 downto lo do
    let leaf = wf.Workload.Flat.req_leaf.(i) in
    assigns :=
      {
        leaf;
        server = closest leaf;
        reads = Workload.reads w ~obj leaf;
        writes = Workload.writes w ~obj leaf;
      }
      :: !assigns
  done;
  { copies = cs; assigns = !assigns }

let nearest ?(exec = Exec.sequential) w ~copies =
  ignore (Workload.flat w);
  ignore (Tree.flat_index (Workload.tree w));
  Exec.map_chunked exec (Workload.num_objects w) (fun obj ->
      nearest_object w ~obj ~copies:copies.(obj))

let single w obj_to_node =
  let n = Workload.num_objects w in
  let copies = Array.make n [] in
  List.iter
    (fun (obj, node) ->
      if obj < 0 || obj >= n then invalid_arg "Placement.single: bad object";
      if copies.(obj) <> [] then
        invalid_arg "Placement.single: duplicate object";
      copies.(obj) <- [ node ])
    obj_to_node;
  Array.iteri
    (fun obj c ->
      if c = [] && Workload.requesting_leaves w ~obj <> [] then
        invalid_arg "Placement.single: object missing a copy")
    copies;
  nearest w ~copies

let full_replication w =
  let tree = Workload.tree w in
  let all = Tree.leaves tree in
  let copies =
    Array.init (Workload.num_objects w) (fun _ -> all)
  in
  nearest w ~copies

let copies t ~obj = t.(obj).copies

let is_strict t =
  Array.for_all
    (fun op ->
      let seen = Hashtbl.create 16 in
      List.for_all
        (fun a ->
          if Hashtbl.mem seen a.leaf then false
          else begin
            Hashtbl.add seen a.leaf ();
            true
          end)
        op.assigns)
    t

let to_strict t =
  Array.map
    (fun op ->
      let by_leaf = Hashtbl.create 16 in
      List.iter
        (fun a ->
          let prev = try Hashtbl.find by_leaf a.leaf with Not_found -> [] in
          Hashtbl.replace by_leaf a.leaf (a :: prev))
        op.assigns;
      let assigns =
        Hashtbl.fold
          (fun leaf parts acc ->
            let reads = List.fold_left (fun s a -> s + a.reads) 0 parts in
            let writes = List.fold_left (fun s a -> s + a.writes) 0 parts in
            let server =
              (* majority server; ties to the lowest node id *)
              let best = ref (-1) and best_w = ref (-1) in
              List.iter
                (fun a ->
                  let wgt = a.reads + a.writes in
                  if
                    wgt > !best_w
                    || (wgt = !best_w && a.server < !best)
                  then begin
                    best := a.server;
                    best_w := wgt
                  end)
                parts;
              !best
            in
            { leaf; server; reads; writes } :: acc)
          by_leaf []
      in
      { op with assigns = List.sort compare assigns })
    t

let leaf_only tree t =
  Array.for_all
    (fun op -> List.for_all (fun c -> Tree.is_leaf tree c) op.copies)
    t

let validate w t =
  let tree = Workload.tree w in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  if Array.length t <> Workload.num_objects w then
    fail "placement has %d objects, workload %d" (Array.length t)
      (Workload.num_objects w);
  Array.iteri
    (fun obj op ->
      if List.length (dedup_sorted op.copies) <> List.length op.copies then
        fail "object %d: duplicate copies" obj;
      List.iter
        (fun c ->
          if c < 0 || c >= Tree.n tree then fail "object %d: bad copy node" obj)
        op.copies;
      let reads = Array.make (Tree.n tree) 0 in
      let writes = Array.make (Tree.n tree) 0 in
      List.iter
        (fun a ->
          if a.reads < 0 || a.writes < 0 then
            fail "object %d: negative assignment" obj;
          if not (List.mem a.server op.copies) then
            fail "object %d: server %d holds no copy" obj a.server;
          if not (Tree.is_leaf tree a.leaf) then
            fail "object %d: requests from non-processor %d" obj a.leaf;
          reads.(a.leaf) <- reads.(a.leaf) + a.reads;
          writes.(a.leaf) <- writes.(a.leaf) + a.writes)
        op.assigns;
      for v = 0 to Tree.n tree - 1 do
        let hr = if Tree.is_leaf tree v then Workload.reads w ~obj v else 0 in
        let hw = if Tree.is_leaf tree v then Workload.writes w ~obj v else 0 in
        if reads.(v) <> hr then
          fail "object %d: node %d reads %d assigned, %d required" obj v
            reads.(v) hr;
        if writes.(v) <> hw then
          fail "object %d: node %d writes %d assigned, %d required" obj v
            writes.(v) hw
      done)
    t;
  match !problem with None -> Ok () | Some msg -> Error msg

type component = Read_path | Write_path | Write_steiner

let component_name = function
  | Read_path -> "read_path"
  | Write_path -> "write_path"
  | Write_steiner -> "write_steiner"

let component_of_name = function
  | "read_path" -> Some Read_path
  | "write_path" -> Some Write_path
  | "write_steiner" -> Some Write_steiner
  | _ -> None

(* The single source of truth for Section 1.1's load accounting: every
   elementary contribution of one object — read and write request traffic
   along leaf→server paths, then the write broadcast over the copies'
   Steiner tree — is reported through [f edge component amount]. The
   from-scratch entry points below, the incremental engine
   ([Hbn_loads.Loads]) and the attribution tables ([Hbn_obs.Attribution])
   all build on this, so they cannot drift apart. *)
let iter_object_load_components_scratch fl scratch op f =
  List.iter
    (fun a ->
      if a.reads + a.writes > 0 && a.leaf <> a.server then
        Flat.iter_path fl scratch a.leaf a.server (fun e ->
            if a.reads > 0 then f e Read_path a.reads;
            if a.writes > 0 then f e Write_path a.writes))
    op.assigns;
  let total_writes = List.fold_left (fun s a -> s + a.writes) 0 op.assigns in
  if total_writes > 0 then
    Flat.iter_steiner fl scratch
      ~nodes:(fun mark -> List.iter mark op.copies)
      (fun e -> f e Write_steiner total_writes)

let iter_object_load_components tree op f =
  let fl = Flat.of_tree tree in
  iter_object_load_components_scratch fl (Flat.Scratch.create fl) op f

let iter_object_loads tree op f =
  iter_object_load_components tree op (fun e _component amount -> f e amount)

let object_edge_loads w t ~obj =
  let tree = Workload.tree w in
  let loads = Array.make (max 1 (Tree.num_edges tree)) 0 in
  iter_object_loads tree t.(obj) (fun e amount ->
      loads.(e) <- loads.(e) + amount);
  loads

let edge_loads ?(exec = Exec.sequential) w t =
  let tree = Workload.tree w in
  let fl = Flat.of_tree tree in
  let m = max 1 (Tree.num_edges tree) in
  let jobs = Exec.jobs exec in
  if jobs = 1 then begin
    let scratch = Flat.Scratch.create fl in
    let loads = Array.make m 0 in
    Array.iter
      (fun op ->
        iter_object_load_components_scratch fl scratch op
          (fun e _component amount -> loads.(e) <- loads.(e) + amount))
      t;
    loads
  end
  else begin
    (* One accumulator and one scratch per executor slot, summed in slot
       order afterwards — integer addition commutes, so the merged loads
       are identical at any job count or chunk size. *)
    let partial = Array.init jobs (fun _ -> Array.make m 0) in
    let scratches = Array.init jobs (fun _ -> Flat.Scratch.create fl) in
    Exec.iter_chunked exec (Array.length t) (fun obj ->
        let slot = Exec.current_worker () in
        let loads = partial.(slot) in
        iter_object_load_components_scratch fl scratches.(slot) t.(obj)
          (fun e _component amount -> loads.(e) <- loads.(e) + amount));
    let loads = partial.(0) in
    for slot = 1 to jobs - 1 do
      let p = partial.(slot) in
      for e = 0 to m - 1 do
        loads.(e) <- loads.(e) + p.(e)
      done
    done;
    loads
  end

type congestion = {
  value : float;
  edge_loads : int array;
  bus_loads2 : int array;
  bottleneck : [ `Edge of int | `Bus of int ];
}

let congestion_of_edge_loads tree loads =
  let bus_loads2 = Array.make (Tree.n tree) 0 in
  for e = 0 to Tree.num_edges tree - 1 do
    let u, v = Tree.edge_endpoints tree e in
    if not (Tree.is_leaf tree u) then
      bus_loads2.(u) <- bus_loads2.(u) + loads.(e);
    if not (Tree.is_leaf tree v) then
      bus_loads2.(v) <- bus_loads2.(v) + loads.(e)
  done;
  let best = ref 0. and arg = ref (`Edge 0) in
  for e = 0 to Tree.num_edges tree - 1 do
    let rel = float_of_int loads.(e) /. float_of_int (Tree.edge_bandwidth tree e) in
    if rel > !best then begin
      best := rel;
      arg := `Edge e
    end
  done;
  List.iter
    (fun b ->
      let rel =
        float_of_int bus_loads2.(b)
        /. (2. *. float_of_int (Tree.bus_bandwidth tree b))
      in
      if rel > !best then begin
        best := rel;
        arg := `Bus b
      end)
    (Tree.buses tree);
  { value = !best; edge_loads = loads; bus_loads2; bottleneck = !arg }

let evaluate ?exec w t =
  congestion_of_edge_loads (Workload.tree w) (edge_loads ?exec w t)

let congestion ?exec w t = (evaluate ?exec w t).value

let total_load w t = Array.fold_left ( + ) 0 (edge_loads w t)

let to_dot tree t =
  let held = Array.make (Tree.n tree) [] in
  Array.iteri
    (fun obj op ->
      List.iter (fun v -> held.(v) <- obj :: held.(v)) op.copies)
    t;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph hbn_placement {\n";
  for v = 0 to Tree.n tree - 1 do
    if Tree.is_leaf tree v then begin
      let label =
        match List.rev held.(v) with
        | [] -> Printf.sprintf "P%d" v
        | objs ->
          Printf.sprintf "P%d\\nx%s" v
            (String.concat ",x" (List.map string_of_int objs))
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=circle,label=\"%s\"];\n" v label)
    end
    else
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=box,label=\"bus %d\"];\n" v v)
  done;
  for e = 0 to Tree.num_edges tree - 1 do
    let u, v = Tree.edge_endpoints tree e in
    Buffer.add_string buf
      (Printf.sprintf "  n%d -- n%d [label=\"%d\"];\n" u v
         (Tree.edge_bandwidth tree e))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>placement of %d objects@," (Array.length t);
  Array.iteri
    (fun obj op ->
      Format.fprintf ppf "  object %d: copies [%s], %d assignment groups@," obj
        (String.concat "; " (List.map string_of_int op.copies))
        (List.length op.assigns))
    t;
  Format.fprintf ppf "@]"
