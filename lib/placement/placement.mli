(** Placements of shared data objects and their induced loads.

    A placement fixes, per object [x], the set [P_x] of nodes holding
    copies and a (possibly split) reference-copy assignment: each
    processor's requests to [x] are served by nodes of [P_x]. The paper's
    model assigns one reference copy [c(P, x)] per processor; the
    extended-nibble strategy may split one processor's requests between
    co-located clones that the mapping step then moves apart, so the
    representation allows one processor's requests to be divided among
    servers ({!is_strict} tells the two cases apart, {!to_strict} collapses
    a split assignment).

    Loads follow Section 1.1 verbatim:
    - a read by [P] loads every edge on the path [P → c(P,x)] by 1;
    - a write by [P] loads the path [P → c(P,x)] and every edge of the
      Steiner tree connecting [P_x] by 1;
    - the load of a bus is half the sum of the loads of its incident
      edges; relative load divides by bandwidth; congestion is the maximum
      relative load over all edges and buses. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload

type assignment = {
  leaf : int;  (** the requesting processor *)
  server : int;  (** node of [P_x] serving these requests *)
  reads : int;
  writes : int;
}

type obj_placement = {
  copies : int list;  (** distinct nodes holding copies of the object *)
  assigns : assignment list;
}

type t = obj_placement array
(** Indexed by object. *)

(** {1 Constructors} *)

val nearest : ?exec:Hbn_exec.Exec.t -> Workload.t -> copies:int list array -> t
(** [nearest w ~copies] assigns every requesting processor to its closest
    copy (ties to the lowest node id) — the reference-copy rule used by
    the nibble strategy. Raises [Invalid_argument] if an object with
    requests has no copies. [exec] fans the per-object assignment out
    over domains; results are identical at any job count. *)

val nearest_object : Workload.t -> obj:int -> copies:int list -> obj_placement
(** One object's nearest-copy assignment — the pure per-object unit
    {!nearest} maps over. Safe to call concurrently once
    [Workload.views] has been forced. *)

val single : Workload.t -> (int * int) list -> t
(** [single w obj_to_node] places exactly one copy per object as listed
    (every object of [w] must appear exactly once) and assigns all
    requests to it. *)

val full_replication : Workload.t -> t
(** One copy on every processor; every processor serves itself (writes
    still pay the full Steiner tree). *)

(** {1 Inspection} *)

val copies : t -> obj:int -> int list

val is_strict : t -> bool
(** No processor's requests for one object are split between servers. *)

val to_strict : t -> t
(** Reassigns each (processor, object) wholly to the server that handled
    the majority of its requests. *)

val leaf_only : Tree.t -> t -> bool
(** All copies are on processors — required of hierarchical bus networks. *)

val validate : Workload.t -> t -> (unit, string) result
(** Checks that assignments exactly cover the workload's frequencies, that
    servers hold copies, and that copy lists are duplicate-free. *)

(** {1 Loads and congestion} *)

type congestion = {
  value : float;  (** the congestion [C] *)
  edge_loads : int array;  (** absolute load per edge *)
  bus_loads2 : int array;  (** per node, twice the bus load (integral) *)
  bottleneck : [ `Edge of int | `Bus of int ];
}

val edge_loads : ?exec:Hbn_exec.Exec.t -> Workload.t -> t -> int array
(** Absolute load per edge, summed over objects. With a parallel [exec]
    the per-object contributions are computed concurrently and merged by
    summation — bit-identical to the sequential result. *)

val object_edge_loads : Workload.t -> t -> obj:int -> int array
(** Load per edge induced by a single object. *)

(** The three ways Section 1.1 lets an object load an edge: read traffic
    along the path [P → c(P,x)], write traffic along the same path, and
    the write broadcast over the Steiner tree of the copy set [P_x].
    Attribution tables ({!Hbn_obs.Attribution}) decompose every edge's
    absolute load into [(object, component)] cells over exactly these. *)
type component = Read_path | Write_path | Write_steiner

val component_name : component -> string
(** ["read_path"], ["write_path"], ["write_steiner"] — the spelling used
    by JSONL [attribution] events and [hbn_cli explain --format json]. *)

val component_of_name : string -> component option

val iter_object_load_components :
  Tree.t -> obj_placement -> (int -> component -> int -> unit) -> unit
(** [iter_object_load_components tree op f] reports every elementary load
    contribution of one object as [f edge component amount]: for each
    assignment, the read and write request traffic along the leaf→server
    path (as separate [Read_path]/[Write_path] calls), then the write
    broadcast over the copy set's Steiner tree ([Write_steiner], with the
    object's total writes on every Steiner edge). Zero-amount components
    are skipped. This is the single source of truth for the accounting
    definitions: {!iter_object_loads}, {!edge_loads},
    {!object_edge_loads}, the incremental engine ([Hbn_loads.Loads]) and
    attribution tables all agree with it by construction. *)

val iter_object_load_components_scratch :
  Hbn_tree.Flat.t ->
  Hbn_tree.Flat.Scratch.t ->
  obj_placement ->
  (int -> component -> int -> unit) ->
  unit
(** {!iter_object_load_components} over the flat tree kernels with a
    caller-owned scratch — the zero-allocation form hot loops use
    (same calls, same order; the scratch must belong to the calling
    domain). *)

val iter_object_loads : Tree.t -> obj_placement -> (int -> int -> unit) -> unit
(** [iter_object_loads tree op f] is {!iter_object_load_components} with
    the component dropped: callers that only accumulate per-edge sums
    (which is all of them) see identical totals. *)

val evaluate : ?exec:Hbn_exec.Exec.t -> Workload.t -> t -> congestion
(** Full congestion accounting. *)

val congestion : ?exec:Hbn_exec.Exec.t -> Workload.t -> t -> float
(** [= (evaluate w p).value]. *)

val total_load : Workload.t -> t -> int
(** Sum of all edge loads (the "total communication load" objective the
    paper contrasts congestion with). *)

val congestion_of_edge_loads : Tree.t -> int array -> congestion
(** Recomputes bus loads and congestion from raw edge loads (used by the
    exact solver which manipulates edge-load vectors directly). *)

val to_dot : Tree.t -> t -> string
(** Graphviz rendering of the network with each processor labeled by the
    objects it holds copies of (buses as boxes, as in {!Tree.to_dot}). *)

val pp : Format.formatter -> t -> unit
