(** Topology generators for hierarchical bus networks.

    All builders respect the paper's modeling assumptions: processors are
    leaves, buses are inner nodes, processor switches have bandwidth 1, and
    every other bandwidth is at least 1. Bandwidths of buses and of
    bus-to-bus switches are controlled by a {!bandwidth_profile}. *)

type bandwidth_profile =
  | Uniform of int
      (** every bus and bus-to-bus switch has this bandwidth *)
  | Scaled_by_subtree of int
      (** bandwidth = max 1 (multiplier × number of processors below), a
          fat-tree-like profile where capacity grows towards the root *)
  | Custom of (depth:int -> subtree_leaves:int -> int)
      (** arbitrary function of the position in the tree *)

val star : leaves:int -> profile:bandwidth_profile -> Tree.t
(** One bus with [leaves] processors attached; the Theorem 2.1 gadget shape
    when [leaves = 4]. Requires [leaves >= 2]. *)

val balanced : arity:int -> height:int -> profile:bandwidth_profile -> Tree.t
(** Complete [arity]-ary tree of buses of the given [height]; nodes at depth
    [height] are processors. Requires [arity >= 2] and [height >= 1]. *)

val caterpillar :
  spine:int -> leaves_per_bus:int -> profile:bandwidth_profile -> Tree.t
(** A path of [spine] buses, each with [leaves_per_bus] processors — the
    maximum-height topology family. Requires [spine >= 1] and
    [leaves_per_bus >= 1] (end buses get one extra leaf when needed to keep
    every bus an inner node). *)

val random :
  prng:Hbn_prng.Prng.t ->
  buses:int ->
  leaves:int ->
  profile:bandwidth_profile ->
  Tree.t
(** Random recursive tree over [buses] bus nodes; the [leaves] processors
    are attached to uniformly random buses, and every bus that would
    otherwise be a leaf of the skeleton receives one processor (so the
    result may have slightly more than [leaves] processors). Requires
    [buses >= 1] and [leaves >= 2]. *)

(** {1 SCI ring-of-rings topologies (Figures 1 and 2 of the paper)} *)

type ring = { ring_bandwidth : int; members : member list }
(** An SCI ringlet: processors and sub-rings connected by switches. *)

and member =
  | Ring_processor
  | Sub_ring of int * ring
      (** [Sub_ring (switch_bandwidth, r)]: a switch of the given bandwidth
          leading to the sub-ringlet [r] *)

val of_ring : ring -> Tree.t
(** [of_ring r] performs the paper's Figure 1 → Figure 2 conversion: each
    ringlet becomes a bus whose bandwidth is the ring's bandwidth (each
    request-response transaction on a unidirectional ringlet is a single
    packet traveling the whole ring, so the ring is load-wise a bus), each
    switch becomes a tree edge, and each processor a leaf with a
    bandwidth-1 switch. *)

val sample_ring_of_rings :
  prng:Hbn_prng.Prng.t -> depth:int -> fanout:int -> procs_per_ring:int -> ring
(** A randomized ring-of-rings specification: rings nest up to [depth]
    levels, each ring containing up to [fanout] sub-rings and
    [procs_per_ring] processors (at least one member each). *)
