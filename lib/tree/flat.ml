(* The flat kernels reproduce the iteration orders of [Tree.path_edges]
   and [Tree.steiner_edges] exactly: the pipeline's outputs are gated to
   be bit-identical across representations and job counts, so order is
   part of the contract here, not an accident. *)

type t = {
  tree : Tree.t;
  r : Tree.rooted;
  ix : Tree.flat_index;
  n : int;
  m : int;
}

let of_tree tree =
  {
    tree;
    r = Tree.rooting tree;
    ix = Tree.flat_index tree;
    n = Tree.n tree;
    m = Tree.num_edges tree;
  }

module Scratch = struct
  type t = {
    mutable stamp : int;
    nstamp : int array;
    estamp : int array;
    acc : int array;
    stack : int array;
    mutable sp : int;
    queue : int array;
  }

  let create fl =
    {
      stamp = 0;
      nstamp = Array.make fl.n 0;
      estamp = Array.make (max 1 fl.m) 0;
      acc = Array.make fl.n 0;
      stack = Array.make (max 1 fl.m) 0;
      sp = 0;
      queue = Array.make fl.n 0;
    }
end

let lca fl u v = Tree.lca_flat fl.ix u v

let depth fl v = fl.r.Tree.depth.(v)

let distance fl u v =
  let d = fl.r.Tree.depth in
  d.(u) + d.(v) - (2 * d.(lca fl u v))

let iter_path_to_root fl v f =
  let r = fl.r in
  let x = ref v in
  while !x <> r.Tree.root do
    f r.Tree.parent_edge.(!x);
    x := r.Tree.parent.(!x)
  done

let fold_path_to_root fl v ~init ~f =
  let r = fl.r in
  let acc = ref init and x = ref v in
  while !x <> r.Tree.root do
    acc := f !acc r.Tree.parent_edge.(!x);
    x := r.Tree.parent.(!x)
  done;
  !acc

let iter_path fl (scratch : Scratch.t) u v f =
  if u <> v then begin
    let a = lca fl u v in
    let r = fl.r in
    (* u → lca, in walking order. *)
    let x = ref u in
    while !x <> a do
      f r.Tree.parent_edge.(!x);
      x := r.Tree.parent.(!x)
    done;
    (* lca → v: stack the climb from v, replay it reversed. *)
    let stack = scratch.Scratch.stack in
    let sp = ref 0 in
    let x = ref v in
    while !x <> a do
      stack.(!sp) <- r.Tree.parent_edge.(!x);
      incr sp;
      x := r.Tree.parent.(!x)
    done;
    for i = !sp - 1 downto 0 do
      f stack.(i)
    done
  end

let fold_path fl scratch u v ~init ~f =
  let acc = ref init in
  iter_path fl scratch u v (fun e -> acc := f !acc e);
  !acc

let iter_path_unordered fl u v f =
  if u <> v then begin
    let a = lca fl u v in
    let r = fl.r in
    let climb s =
      let x = ref s in
      while !x <> a do
        f r.Tree.parent_edge.(!x);
        x := r.Tree.parent.(!x)
      done
    in
    climb u;
    climb v
  end

let iter_steiner fl (scratch : Scratch.t) ~nodes f =
  scratch.Scratch.stamp <- scratch.Scratch.stamp + 1;
  let stamp = scratch.Scratch.stamp in
  let nstamp = scratch.Scratch.nstamp in
  let total = ref 0 in
  nodes (fun v ->
      if nstamp.(v) <> stamp then begin
        nstamp.(v) <- stamp;
        incr total
      end);
  if !total >= 2 then begin
    let r = fl.r in
    let acc = scratch.Scratch.acc in
    for v = 0 to fl.n - 1 do
      acc.(v) <- (if nstamp.(v) = stamp then 1 else 0)
    done;
    let pre = r.Tree.preorder and parent = r.Tree.parent in
    for i = fl.n - 1 downto 1 do
      let v = pre.(i) in
      acc.(parent.(v)) <- acc.(parent.(v)) + acc.(v)
    done;
    let total = !total in
    (* Ascending preorder scan: the emission order of
       [Tree.steiner_edges]. *)
    let parent_edge = r.Tree.parent_edge in
    for i = 1 to fl.n - 1 do
      let v = pre.(i) in
      if acc.(v) > 0 && acc.(v) < total then f parent_edge.(v)
    done
  end

let subtree_sums_into fl (scratch : Scratch.t) ~src ~src_off =
  Tree.subtree_sums_into fl.r ~src ~src_off ~dst:scratch.Scratch.acc
