type bandwidth_profile =
  | Uniform of int
  | Scaled_by_subtree of int
  | Custom of (depth:int -> subtree_leaves:int -> int)

type ring = { ring_bandwidth : int; members : member list }

and member = Ring_processor | Sub_ring of int * ring

(* Builders produce a skeleton first (all bandwidths 1) and then re-make the
   tree with profile-derived bandwidths, which need depths and per-subtree
   leaf counts of the finished structure. *)

let profile_value profile ~depth ~subtree_leaves =
  match profile with
  | Uniform k -> k
  | Scaled_by_subtree m -> max 1 (m * subtree_leaves)
  | Custom f -> max 1 (f ~depth ~subtree_leaves)

let apply_profile profile ~kinds ~edges ~root =
  let skeleton =
    Tree.make ~kinds ~edges:(List.map (fun (u, v) -> (u, v, 1)) edges)
      ~bus_bandwidth:(fun _ -> 1) ~root ()
  in
  let r = Tree.rooting skeleton in
  let leaf_indicator =
    Array.init (Tree.n skeleton) (fun v ->
        if Tree.is_leaf skeleton v then 1 else 0)
  in
  let leaves_below = Tree.subtree_sums r leaf_indicator in
  let edge_bw (u, v) =
    let child = if r.Tree.parent.(u) = v then u else v in
    if Tree.is_leaf skeleton u || Tree.is_leaf skeleton v then 1
    else
      profile_value profile ~depth:r.Tree.depth.(child)
        ~subtree_leaves:leaves_below.(child)
  in
  let bus_bandwidth v =
    profile_value profile ~depth:r.Tree.depth.(v)
      ~subtree_leaves:leaves_below.(v)
  in
  Tree.make ~kinds
    ~edges:(List.map (fun (u, v) -> (u, v, edge_bw (u, v))) edges)
    ~bus_bandwidth ~root ()

let star ~leaves ~profile =
  if leaves < 2 then invalid_arg "Builders.star: need at least 2 leaves";
  let kinds =
    Array.init (leaves + 1) (fun v -> if v = 0 then Tree.Bus else Tree.Processor)
  in
  let edges = List.init leaves (fun i -> (0, i + 1)) in
  apply_profile profile ~kinds ~edges ~root:0

let balanced ~arity ~height ~profile =
  if arity < 2 then invalid_arg "Builders.balanced: arity must be >= 2";
  if height < 1 then invalid_arg "Builders.balanced: height must be >= 1";
  (* Allocate nodes level by level; level [height] holds the processors. *)
  let kinds = ref [] and edges = ref [] and counter = ref 0 in
  let fresh k =
    let id = !counter in
    incr counter;
    kinds := k :: !kinds;
    id
  in
  let rec build depth =
    if depth = height then fresh Tree.Processor
    else begin
      let v = fresh Tree.Bus in
      for _ = 1 to arity do
        let c = build (depth + 1) in
        edges := (v, c) :: !edges
      done;
      v
    end
  in
  let root = build 0 in
  let kinds = Array.of_list (List.rev !kinds) in
  apply_profile profile ~kinds ~edges:!edges ~root

let caterpillar ~spine ~leaves_per_bus ~profile =
  if spine < 1 then invalid_arg "Builders.caterpillar: spine must be >= 1";
  if leaves_per_bus < 1 then
    invalid_arg "Builders.caterpillar: leaves_per_bus must be >= 1";
  let kinds = ref [] and edges = ref [] and counter = ref 0 in
  let fresh k =
    let id = !counter in
    incr counter;
    kinds := k :: !kinds;
    id
  in
  let prev = ref (-1) in
  for i = 0 to spine - 1 do
    let b = fresh Tree.Bus in
    if !prev >= 0 then edges := (!prev, b) :: !edges;
    prev := b;
    let extra =
      (* End buses of a single-leaf caterpillar would have degree 1 plus a
         spine neighbor; guarantee degree >= 2 for every bus. *)
      if leaves_per_bus = 1 && (i = 0 || i = spine - 1) && spine > 1 then 1
      else 0
    in
    for _ = 1 to leaves_per_bus + extra do
      let p = fresh Tree.Processor in
      edges := (b, p) :: !edges
    done
  done;
  let kinds = Array.of_list (List.rev !kinds) in
  (* A 1-bus caterpillar with one leaf is invalid (bus of degree 1). *)
  if spine = 1 && leaves_per_bus = 1 then
    invalid_arg "Builders.caterpillar: a single bus needs >= 2 leaves";
  apply_profile profile ~kinds ~edges:!edges ~root:0

let random ~prng ~buses ~leaves ~profile =
  if buses < 1 then invalid_arg "Builders.random: need at least one bus";
  if leaves < 2 then invalid_arg "Builders.random: need at least two leaves";
  let edges = ref [] in
  (* Random recursive tree over the bus skeleton. *)
  for b = 1 to buses - 1 do
    let p = Hbn_prng.Prng.int prng b in
    edges := (p, b) :: !edges
  done;
  let attach = Array.make buses 0 in
  for _ = 1 to leaves do
    let b = Hbn_prng.Prng.int prng buses in
    attach.(b) <- attach.(b) + 1
  done;
  (* Skeleton leaves must not stay childless buses. *)
  let skeleton_degree = Array.make buses 0 in
  List.iter
    (fun (u, v) ->
      skeleton_degree.(u) <- skeleton_degree.(u) + 1;
      skeleton_degree.(v) <- skeleton_degree.(v) + 1)
    !edges;
  for b = 0 to buses - 1 do
    let needed = if buses = 1 then 2 else 2 - skeleton_degree.(b) in
    if attach.(b) < needed then attach.(b) <- needed
  done;
  let kinds = ref (List.init buses (fun _ -> Tree.Bus)) in
  let counter = ref buses in
  for b = 0 to buses - 1 do
    for _ = 1 to attach.(b) do
      let p = !counter in
      incr counter;
      kinds := !kinds @ [ Tree.Processor ];
      edges := (b, p) :: !edges
    done
  done;
  let kinds = Array.of_list !kinds in
  apply_profile profile ~kinds ~edges:!edges ~root:0

let of_ring ring =
  let kinds = ref [] and edges = ref [] and counter = ref 0 in
  let bandwidths = ref [] in
  let fresh k bw =
    let id = !counter in
    incr counter;
    kinds := k :: !kinds;
    bandwidths := (id, bw) :: !bandwidths;
    id
  in
  let rec build r =
    if r.members = [] then
      invalid_arg "Builders.of_ring: rings must have at least one member";
    let bus = fresh Tree.Bus r.ring_bandwidth in
    List.iter
      (fun m ->
        match m with
        | Ring_processor ->
          let p = fresh Tree.Processor 1 in
          edges := (bus, p, 1) :: !edges
        | Sub_ring (switch_bw, sub) ->
          if switch_bw < 1 then
            invalid_arg "Builders.of_ring: switch bandwidth must be >= 1";
          let child = build sub in
          edges := (bus, child, switch_bw) :: !edges)
      r.members;
    bus
  in
  let root = build ring in
  let kinds = Array.of_list (List.rev !kinds) in
  let bw_table = Array.make (Array.length kinds) 1 in
  List.iter (fun (id, bw) -> bw_table.(id) <- bw) !bandwidths;
  (* A ring with a single sub-ring and no processors would be a degree-1
     bus after conversion; give such rings a monitoring processor. *)
  Tree.make ~kinds ~edges:!edges ~bus_bandwidth:(fun v -> bw_table.(v)) ~root ()

let rec sample_ring_of_rings ~prng ~depth ~fanout ~procs_per_ring =
  let open Hbn_prng in
  let procs = max 1 (Prng.int_in prng 1 (max 1 procs_per_ring)) in
  let sub_count =
    if depth <= 0 then 0 else Prng.int_in prng 0 (max 0 fanout)
  in
  (* Every ring needs >= 2 tree neighbors after conversion so that its bus
     is a genuine inner node even at the root of the hierarchy. *)
  let procs = if procs + sub_count < 2 then 2 - sub_count else procs in
  let members =
    List.init procs (fun _ -> Ring_processor)
    @ List.init sub_count (fun _ ->
          let switch_bw = Prng.int_in prng 1 4 in
          Sub_ring
            ( switch_bw,
              sample_ring_of_rings ~prng ~depth:(depth - 1) ~fanout
                ~procs_per_ring ))
  in
  { ring_bandwidth = Prng.int_in prng 1 8; members }
