type kind = Processor | Bus

type rooted = {
  root : int;
  parent : int array;
  parent_edge : int array;
  children : int array array;
  depth : int array;
  preorder : int array;
}

(* Structure-of-arrays index over the canonical rooting, built once on
   first use: preorder positions, the Euler tour of the rooted tree and a
   sparse table of depth-minima over it (O(1) LCA). This is the backing
   store of [Hbn_tree.Flat]; the record is exposed so the flat kernels
   can read the arrays directly, but nothing outside [lib/tree] should
   construct or mutate one. *)
type flat_index = {
  pos : int array;  (* preorder position of each node *)
  first : int array;  (* first occurrence of each node in the Euler tour *)
  enode : int array;  (* Euler tour: node visited at each step, 2n-1 long *)
  edep : int array;  (* depth of [enode] at each step *)
  elog2 : int array;  (* floor(log2 i) for 1 <= i <= elen *)
  sparse : int array;  (* levels x elen argmin-by-depth table, flattened *)
  elen : int;
}

type t = {
  size : int;
  kinds : kind array;
  adj : (int * int) array array;
  edge_ends : (int * int) array;
  edge_bw : int array;
  bus_bw : int array; (* -1 on processors *)
  canonical : rooted;
  (* Cached node partitions: [leaves]/[buses] sit in hot loops (baselines,
     generators, congestion), so the lists are built once at [make] time. *)
  leaf_list : int list;
  bus_list : int list;
  leaf_arr : int array;
  bus_arr : int array;
  (* Built on first use. Writes of a fully-constructed record are atomic
     in OCaml, so a benign race between domains at most duplicates the
     construction work (same pattern as the workload's view cache);
     sequential phases force it before fanning out. *)
  mutable flat : flat_index option;
}

let compute_rooting ~size ~adj root =
  let parent = Array.make size (-1) in
  let parent_edge = Array.make size (-1) in
  let depth = Array.make size 0 in
  let preorder = Array.make size root in
  let visited = Array.make size false in
  (* Iterative DFS producing a preorder where parents precede children. *)
  let stack = ref [ root ] in
  let pos = ref 0 in
  visited.(root) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      preorder.(!pos) <- v;
      incr pos;
      Array.iter
        (fun (u, e) ->
          if not visited.(u) then begin
            visited.(u) <- true;
            parent.(u) <- v;
            parent_edge.(u) <- e;
            depth.(u) <- depth.(v) + 1;
            stack := u :: !stack
          end)
        adj.(v)
  done;
  if !pos <> size then invalid_arg "Tree.make: edges do not connect all nodes";
  let child_count = Array.make size 0 in
  Array.iter
    (fun p -> if p >= 0 then child_count.(p) <- child_count.(p) + 1)
    parent;
  let children = Array.map (fun c -> Array.make c (-1)) child_count in
  let fill = Array.make size 0 in
  (* Follow preorder so children arrays are in a deterministic order. *)
  Array.iter
    (fun v ->
      let p = parent.(v) in
      if p >= 0 then begin
        children.(p).(fill.(p)) <- v;
        fill.(p) <- fill.(p) + 1
      end)
    preorder;
  { root; parent; parent_edge; children; depth; preorder }

let make ~kinds ~edges ~bus_bandwidth ?root () =
  let size = Array.length kinds in
  if size = 0 then invalid_arg "Tree.make: empty node set";
  let m = List.length edges in
  if m <> size - 1 then invalid_arg "Tree.make: a tree needs exactly n-1 edges";
  let edge_ends = Array.make (max m 1) (0, 0) in
  let edge_bw = Array.make (max m 1) 1 in
  let deg = Array.make size 0 in
  List.iteri
    (fun i (u, v, bw) ->
      if u < 0 || u >= size || v < 0 || v >= size || u = v then
        invalid_arg "Tree.make: bad edge endpoints";
      if bw < 1 then invalid_arg "Tree.make: bandwidths must be at least 1";
      edge_ends.(i) <- (u, v);
      edge_bw.(i) <- bw;
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.map (fun d -> Array.make d (-1, -1)) deg in
  let fill = Array.make size 0 in
  List.iteri
    (fun i (u, v, _) ->
      adj.(u).(fill.(u)) <- (v, i);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, i);
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iteri
    (fun v k ->
      match (k, deg.(v)) with
      | Processor, d when d > 1 ->
        invalid_arg "Tree.make: processors must be leaves"
      | Bus, d when d <= 1 && size > 1 ->
        invalid_arg "Tree.make: buses must be inner nodes"
      | (Processor | Bus), _ -> ())
    kinds;
  if size = 1 && kinds.(0) <> Processor then
    invalid_arg "Tree.make: a single-node network is one processor";
  let bus_bw =
    Array.mapi
      (fun v k ->
        match k with
        | Bus ->
          let bw = bus_bandwidth v in
          if bw < 1 then invalid_arg "Tree.make: bandwidths must be at least 1";
          bw
        | Processor -> -1)
      kinds
  in
  let root =
    match root with
    | Some r ->
      if r < 0 || r >= size then invalid_arg "Tree.make: root out of range";
      r
    | None ->
      let rec first_bus v = if v >= size then 0 else
          match kinds.(v) with Bus -> v | Processor -> first_bus (v + 1)
      in
      first_bus 0
  in
  let canonical = compute_rooting ~size ~adj root in
  let all = List.init size (fun i -> i) in
  let leaf_list = List.filter (fun v -> kinds.(v) = Processor) all in
  let bus_list = List.filter (fun v -> kinds.(v) = Bus) all in
  {
    size;
    kinds;
    adj;
    edge_ends;
    edge_bw;
    bus_bw;
    canonical;
    leaf_list;
    bus_list;
    leaf_arr = Array.of_list leaf_list;
    bus_arr = Array.of_list bus_list;
    flat = None;
  }

let n t = t.size

let num_edges t = t.size - 1

let kind t v = t.kinds.(v)

let is_leaf t v = t.kinds.(v) = Processor

let leaves t = t.leaf_list

let buses t = t.bus_list

let leaves_array t = t.leaf_arr

let buses_array t = t.bus_arr

let num_leaves t = Array.length t.leaf_arr

let edge_endpoints t e = t.edge_ends.(e)

let edge_bandwidth t e = t.edge_bw.(e)

let bus_bandwidth t v =
  match t.kinds.(v) with
  | Bus -> t.bus_bw.(v)
  | Processor -> invalid_arg "Tree.bus_bandwidth: node is a processor"

let neighbors t v = t.adj.(v)

let degree t v = Array.length t.adj.(v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.size - 1 do
    best := max !best (degree t v)
  done;
  !best

let rooting t = t.canonical

let reroot t r = compute_rooting ~size:t.size ~adj:t.adj r

let height t =
  Array.fold_left max 0 t.canonical.depth

let edge_towards_root r v =
  if v = r.root then invalid_arg "Tree.edge_towards_root: at the root"
  else r.parent_edge.(v)

let lca r u v =
  let u = ref u and v = ref v in
  while r.depth.(!u) > r.depth.(!v) do u := r.parent.(!u) done;
  while r.depth.(!v) > r.depth.(!u) do v := r.parent.(!v) done;
  while !u <> !v do
    u := r.parent.(!u);
    v := r.parent.(!v)
  done;
  !u

type lca_index = {
  idepth : int array;
  up : int array array; (* up.(k).(v) = 2^k-th ancestor (root maps to itself) *)
}

let lca_index r =
  let n = Array.length r.parent in
  let max_depth = Array.fold_left max 0 r.depth in
  let levels =
    let rec go k = if 1 lsl k > max_depth then k + 1 else go (k + 1) in
    go 0
  in
  let up = Array.make levels [||] in
  up.(0) <- Array.init n (fun v -> if r.parent.(v) < 0 then v else r.parent.(v));
  for k = 1 to levels - 1 do
    let prev = up.(k - 1) in
    up.(k) <- Array.init n (fun v -> prev.(prev.(v)))
  done;
  { idepth = r.depth; up }

let lca_fast ix u v =
  let levels = Array.length ix.up in
  let lift x delta =
    let x = ref x and d = ref delta in
    let k = ref 0 in
    while !d > 0 do
      if !d land 1 = 1 then x := ix.up.(!k).(!x);
      d := !d lsr 1;
      incr k
    done;
    !x
  in
  let du = ix.idepth.(u) and dv = ix.idepth.(v) in
  let u = if du > dv then lift u (du - dv) else u in
  let v = if dv > du then lift v (dv - du) else v in
  if u = v then u
  else begin
    let u = ref u and v = ref v in
    for k = levels - 1 downto 0 do
      if ix.up.(k).(!u) <> ix.up.(k).(!v) then begin
        u := ix.up.(k).(!u);
        v := ix.up.(k).(!v)
      end
    done;
    ix.up.(0).(!u)
  end

let distance ix u v =
  ix.idepth.(u) + ix.idepth.(v) - (2 * ix.idepth.(lca_fast ix u v))

(* Euler tour of the canonical rooting plus a sparse table of depth
   minima: LCA(u, v) is the node of minimal depth between the first
   occurrences of u and v on the tour, found in O(1) by overlapping the
   two power-of-two windows covering the range. *)
let build_flat_index t =
  let r = t.canonical in
  let n = t.size in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) r.preorder;
  let elen = (2 * n) - 1 in
  let enode = Array.make elen r.root in
  let edep = Array.make elen 0 in
  let first = Array.make n (-1) in
  (* Iterative Euler tour: every edge is walked down and back up once, so
     the tour visits 2n-1 nodes. [child_ix] tracks, per node, how many of
     its children have been fully toured. *)
  let child_ix = Array.make n 0 in
  let step = ref 0 in
  let visit v =
    enode.(!step) <- v;
    edep.(!step) <- r.depth.(v);
    if first.(v) < 0 then first.(v) <- !step;
    incr step
  in
  let v = ref r.root in
  visit !v;
  while !step < elen do
    let cs = r.children.(!v) in
    if child_ix.(!v) < Array.length cs then begin
      let c = cs.(child_ix.(!v)) in
      child_ix.(!v) <- child_ix.(!v) + 1;
      v := c;
      visit !v
    end
    else begin
      v := r.parent.(!v);
      visit !v
    end
  done;
  let elog2 = Array.make (elen + 1) 0 in
  for i = 2 to elen do
    elog2.(i) <- elog2.(i / 2) + 1
  done;
  let levels = elog2.(elen) + 1 in
  let sparse = Array.make (levels * elen) 0 in
  for i = 0 to elen - 1 do
    sparse.(i) <- i
  done;
  for k = 1 to levels - 1 do
    let half = 1 lsl (k - 1) in
    let prev = (k - 1) * elen and cur = k * elen in
    for i = 0 to elen - 1 do
      if i + (1 lsl k) <= elen then begin
        let a = sparse.(prev + i) and b = sparse.(prev + i + half) in
        sparse.(cur + i) <- (if edep.(a) <= edep.(b) then a else b)
      end
      else sparse.(cur + i) <- sparse.(prev + i)
    done
  done;
  { pos; first; enode; edep; elog2; sparse; elen }

let flat_index t =
  match t.flat with
  | Some ix -> ix
  | None ->
    let ix = build_flat_index t in
    t.flat <- Some ix;
    ix

let path_edges t u v =
  let r = t.canonical in
  let a = lca r u v in
  let rec climb x acc =
    if x = a then acc else climb r.parent.(x) (r.parent_edge.(x) :: acc)
  in
  let up = List.rev (climb u []) in
  (* climb builds v->a in reverse; we need a->v order for the second half. *)
  let down = climb v [] in
  up @ down

(* O(1) via the Euler-tour sparse table (the answer is the same node
   [lca t.canonical] finds by walking parents, so the arithmetic is
   unchanged — only the lookup cost drops). *)
let lca_flat ix u v =
  let i = ix.first.(u) and j = ix.first.(v) in
  let i, j = if i <= j then (i, j) else (j, i) in
  let k = ix.elog2.(j - i + 1) in
  let a = ix.sparse.((k * ix.elen) + i) in
  let b = ix.sparse.((k * ix.elen) + j - (1 lsl k) + 1) in
  ix.enode.(if ix.edep.(a) <= ix.edep.(b) then a else b)

let path_length t u v =
  let r = t.canonical in
  let a = lca_flat (flat_index t) u v in
  r.depth.(u) + r.depth.(v) - (2 * r.depth.(a))

let subtree_sums r w =
  let size = Array.length r.parent in
  let acc = Array.copy w in
  for i = size - 1 downto 1 do
    let v = r.preorder.(i) in
    let p = r.parent.(v) in
    acc.(p) <- acc.(p) + acc.(v)
  done;
  acc

let subtree_sums_into r ~src ~src_off ~dst =
  let size = Array.length r.parent in
  for v = 0 to size - 1 do
    dst.(v) <- src.(src_off + v)
  done;
  for i = size - 1 downto 1 do
    let v = r.preorder.(i) in
    let p = r.parent.(v) in
    dst.(p) <- dst.(p) + dst.(v)
  done

let steiner_edges t nodes =
  match nodes with
  | [] | [ _ ] -> []
  | _ ->
    let mark = Array.make t.size 0 in
    let total = ref 0 in
    List.iter
      (fun v ->
        if mark.(v) = 0 then begin
          mark.(v) <- 1;
          incr total
        end)
      nodes;
    if !total < 2 then []
    else begin
      let r = t.canonical in
      let counts = subtree_sums r mark in
      let result = ref [] in
      for i = Array.length r.preorder - 1 downto 1 do
        let v = r.preorder.(i) in
        if counts.(v) > 0 && counts.(v) < !total then
          result := r.parent_edge.(v) :: !result
      done;
      !result
    end

let first_on_path r ~member v =
  let rec walk x =
    if member x then Some x
    else if x = r.root then None
    else walk r.parent.(x)
  in
  walk v

let nodes_by_level_bottom_up r =
  let size = Array.length r.parent in
  let h = Array.fold_left max 0 r.depth in
  let levels = Array.make (h + 1) [] in
  (* Paper convention: root on level height(T); node at depth d on level
     height - d; index 0 is the deepest level. *)
  for v = size - 1 downto 0 do
    let l = h - r.depth.(v) in
    levels.(l) <- v :: levels.(l)
  done;
  levels

let validate_paper_assumptions t =
  let offending = ref None in
  for e = 0 to num_edges t - 1 do
    let u, v = t.edge_ends.(e) in
    if (is_leaf t u || is_leaf t v) && t.edge_bw.(e) <> 1 then
      offending := Some e
  done;
  match !offending with
  | None -> Ok ()
  | Some e ->
    Error
      (Printf.sprintf
         "edge %d touches a processor but has bandwidth %d (paper assumes 1)"
         e t.edge_bw.(e))

let pp ppf t =
  Format.fprintf ppf "@[<v>hierarchical bus network: %d nodes (%d processors, %d buses), height %d, degree %d@,"
    t.size (num_leaves t) (t.size - num_leaves t) (height t) (max_degree t);
  for e = 0 to num_edges t - 1 do
    let u, v = t.edge_ends.(e) in
    Format.fprintf ppf "  edge %d: %d -- %d (bw %d)@," e u v t.edge_bw.(e)
  done;
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph hbn {\n";
  for v = 0 to t.size - 1 do
    (match t.kinds.(v) with
     | Bus ->
       Buffer.add_string buf
         (Printf.sprintf "  n%d [shape=box,label=\"bus %d\\nbw %d\"];\n" v v
            t.bus_bw.(v))
     | Processor ->
       Buffer.add_string buf
         (Printf.sprintf "  n%d [shape=circle,label=\"P%d\"];\n" v v))
  done;
  for e = 0 to num_edges t - 1 do
    let u, v = t.edge_ends.(e) in
    Buffer.add_string buf
      (Printf.sprintf "  n%d -- n%d [label=\"%d\"];\n" u v t.edge_bw.(e))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
