(** Structure-of-arrays hot path over a tree's canonical rooting.

    [Flat.t] packages the canonical {!Tree.rooted} arrays with the cached
    Euler-tour index ({!Tree.flat_index}) so the pipeline's inner loops —
    leaf→server path walks, Steiner-tree scans, subtree aggregations — run
    over plain [int array]s with O(1) LCA and allocate nothing. All
    iteration orders are bit-identical to the list-returning functions in
    {!Tree} ([path_edges], [steiner_edges]), which is what lets the
    per-object pipeline swap representations without changing a single
    output.

    Mutable state lives exclusively in {!Scratch.t} buffers. A scratch is
    single-owner: each domain (or each worker slot of an
    [Hbn_exec.Exec] pool) must use its own. [Flat.t] itself is immutable
    and freely shared across domains. *)

type t = private {
  tree : Tree.t;
  r : Tree.rooted;  (** the canonical rooting — read-only *)
  ix : Tree.flat_index;
  n : int;  (** number of nodes *)
  m : int;  (** number of edges, [n - 1] *)
}

val of_tree : Tree.t -> t
(** Cheap after the first call per tree: the Euler index is cached inside
    [Tree.t]. Call it once before fanning tasks out so the benign
    construction race never materializes. *)

(** {1 Scratch buffers}

    Preallocated working memory for the non-allocating kernels. The stamp
    discipline avoids clearing: each logical operation bumps [stamp] and
    treats a slot as set iff its stamp array holds the current value, so
    reuse costs nothing and a fresh scratch behaves identically to a
    reused one. *)

module Scratch : sig
  type flat := t

  type t = {
    mutable stamp : int;  (** current generation of the stamp arrays *)
    nstamp : int array;  (** per-node visit stamps, [n] slots *)
    estamp : int array;  (** per-edge visit stamps, [max 1 m] slots *)
    acc : int array;  (** per-node accumulators (subtree sums), [n] slots *)
    stack : int array;  (** edge/int stack, [max 1 m] slots *)
    mutable sp : int;  (** stack pointer *)
    queue : int array;  (** BFS ring, [n] slots *)
  }

  val create : flat -> t
  (** Fresh buffers sized for the given tree. One per owning domain. *)
end

(** {1 O(1) queries} *)

val lca : t -> int -> int -> int
(** Lowest common ancestor on the canonical rooting; same node as
    [Tree.lca (Tree.rooting tree)]. *)

val distance : t -> int -> int -> int
(** Edge count of the [u]–[v] path; same integer as [Tree.path_length]. *)

val depth : t -> int -> int

(** {1 Path iteration}

    All iterators visit edge ids and allocate nothing (beyond the closure
    the caller passes in). *)

val iter_path_to_root : t -> int -> (int -> unit) -> unit
(** Edges from [v] up to the canonical root, bottom-up. *)

val fold_path_to_root : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val iter_path : t -> Scratch.t -> int -> int -> (int -> unit) -> unit
(** [iter_path fl scratch u v f] visits the [u]–[v] path edges in exactly
    [Tree.path_edges]'s traversal order: [u] up to the LCA, then LCA down
    to [v] (the descent is replayed from [scratch.stack]). Empty when
    [u = v]. *)

val fold_path : t -> Scratch.t -> int -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Folding flavor of {!iter_path}, same order. *)

val iter_path_unordered : t -> int -> int -> (int -> unit) -> unit
(** Scratch-free variant visiting [u]→LCA then [v]→LCA, both bottom-up —
    the order the load-accounting engine historically used. Each path
    edge is visited exactly once; only the order differs from
    {!iter_path}. *)

(** {1 Steiner trees} *)

val iter_steiner : t -> Scratch.t -> nodes:((int -> unit) -> unit) -> (int -> unit) -> unit
(** [iter_steiner fl scratch ~nodes f] visits the edges of the minimal
    subtree spanning the nodes produced by the [nodes] iterator
    (duplicates welcome; fewer than two distinct nodes yield no edges).
    Edges are emitted in ascending preorder position of their lower
    endpoint — bit-identical to [Tree.steiner_edges]'s order. O(n) time,
    zero allocation: membership marks use [scratch.nstamp], counts use
    [scratch.acc]. *)

(** {1 Subtree aggregation} *)

val subtree_sums_into : t -> Scratch.t -> src:int array -> src_off:int -> unit
(** Sums [src.(src_off + v)] over canonical subtrees into [scratch.acc]
    (valid until the scratch's next aggregation). Mirrors
    [Tree.subtree_sums] on the canonical rooting. *)
