let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# hierarchical bus network\n";
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Tree.n t));
  for v = 0 to Tree.n t - 1 do
    match Tree.kind t v with
    | Tree.Bus ->
      Buffer.add_string buf (Printf.sprintf "bus %d %d\n" v (Tree.bus_bandwidth t v))
    | Tree.Processor -> Buffer.add_string buf (Printf.sprintf "proc %d\n" v)
  done;
  for e = 0 to Tree.num_edges t - 1 do
    let u, v = Tree.edge_endpoints t e in
    Buffer.add_string buf
      (Printf.sprintf "edge %d %d %d\n" u v (Tree.edge_bandwidth t e))
  done;
  Buffer.add_string buf
    (Printf.sprintf "root %d\n" (Tree.rooting t).Tree.root);
  Buffer.contents buf

type parse_state = {
  mutable nodes : int;
  mutable kinds : (int * Tree.kind * int) list; (* id, kind, bus bw *)
  mutable edges : (int * int * int) list;
  mutable root : int option;
}

let of_string s =
  let st = { nodes = -1; kinds = []; edges = []; root = None } in
  let error lineno msg =
    Error (Printf.sprintf "line %d: %s" lineno msg)
  in
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let words =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun w -> w <> "")
    in
    let int_arg w =
      match int_of_string_opt w with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "line %d: not an integer: %s" lineno w)
    in
    let ( let* ) r f = Result.bind r f in
    match words with
    | [] -> Ok ()
    | [ "nodes"; n ] ->
      let* n = int_arg n in
      if st.nodes >= 0 then error lineno "duplicate nodes declaration"
      else begin
        st.nodes <- n;
        Ok ()
      end
    | [ "bus"; id; bw ] ->
      let* id = int_arg id in
      let* bw = int_arg bw in
      st.kinds <- (id, Tree.Bus, bw) :: st.kinds;
      Ok ()
    | [ "proc"; id ] ->
      let* id = int_arg id in
      st.kinds <- (id, Tree.Processor, 1) :: st.kinds;
      Ok ()
    | [ "edge"; u; v; bw ] ->
      let* u = int_arg u in
      let* v = int_arg v in
      let* bw = int_arg bw in
      st.edges <- (u, v, bw) :: st.edges;
      Ok ()
    | [ "root"; r ] ->
      let* r = int_arg r in
      st.root <- Some r;
      Ok ()
    | w :: _ -> error lineno (Printf.sprintf "unknown directive %S" w)
  in
  let lines = String.split_on_char '\n' s in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      match parse_line lineno line with
      | Ok () -> go (lineno + 1) rest
      | Error _ as e -> e)
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () ->
    if st.nodes < 0 then Error "missing nodes declaration"
    else begin
      let kinds = Array.make (max st.nodes 1) None in
      let bus_bw = Array.make (max st.nodes 1) 1 in
      let dup = ref None in
      List.iter
        (fun (id, kind, bw) ->
          if id < 0 || id >= st.nodes then
            dup := Some (Printf.sprintf "node id %d out of range" id)
          else begin
            if kinds.(id) <> None then
              dup := Some (Printf.sprintf "node %d declared twice" id);
            kinds.(id) <- Some kind;
            bus_bw.(id) <- bw
          end)
        st.kinds;
      match !dup with
      | Some msg -> Error msg
      | None ->
        let missing = ref None in
        let kind_arr =
          Array.mapi
            (fun i k ->
              match k with
              | Some k -> k
              | None ->
                if i < st.nodes && !missing = None then
                  missing := Some (Printf.sprintf "node %d undeclared" i);
                Tree.Processor)
            kinds
        in
        (match !missing with
        | Some msg -> Error msg
        | None -> (
          let kind_arr = Array.sub kind_arr 0 st.nodes in
          match
            Tree.make ~kinds:kind_arr ~edges:(List.rev st.edges)
              ~bus_bandwidth:(fun v -> bus_bw.(v))
              ?root:st.root ()
          with
          | t -> Ok t
          | exception Invalid_argument msg -> Error msg))
    end

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
