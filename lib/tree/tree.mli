(** Hierarchical bus networks modeled as weighted trees.

    Following the paper, a hierarchical bus network is a tree
    [T = (P ∪ B, E, b)]: processors [P] are the leaves, buses [B] are the
    inner nodes, edges are switches. [b] assigns bandwidths to edges and to
    buses; switches connecting processors to buses are the slowest part of
    the system and have bandwidth 1, all other bandwidths are at least 1.

    Nodes are dense integers [0 .. n-1]; edges are dense integers
    [0 .. n-2]. The tree stores a canonical rooting (used by the mapping
    algorithm and the evaluator); algorithms that need a different root
    (e.g. the nibble strategy roots at a per-object center of gravity)
    build a {!rooted} view with {!reroot}. *)

type kind = Processor | Bus

type rooted = {
  root : int;
  parent : int array;  (** [parent.(root) = -1] *)
  parent_edge : int array;  (** edge id towards the parent; [-1] at root *)
  children : int array array;
  depth : int array;
  preorder : int array;
      (** permutation of nodes such that parents precede children *)
}

type t

(** {1 Construction} *)

val make :
  kinds:kind array ->
  edges:(int * int * int) list ->
  bus_bandwidth:(int -> int) ->
  ?root:int ->
  unit ->
  t
(** [make ~kinds ~edges ~bus_bandwidth ()] builds a network with node [i] of
    kind [kinds.(i)] and undirected edges [(u, v, bandwidth)].
    [bus_bandwidth] gives the bandwidth of each bus node. [root] defaults to
    the lowest-numbered bus (or node 0 if there is no bus).

    Raises [Invalid_argument] if the edges do not form a tree, if any leaf
    is not a [Processor], if any inner node is not a [Bus], or if any
    bandwidth is below 1. A single-node network must be one processor. *)

(** {1 Basic accessors} *)

val n : t -> int
(** Number of nodes, [|P ∪ B|]. *)

val num_edges : t -> int

val kind : t -> int -> kind

val is_leaf : t -> int -> bool
(** [is_leaf t v] is [kind t v = Processor]. *)

val leaves : t -> int list
(** All processor nodes, ascending. Cached at construction; O(1). *)

val buses : t -> int list
(** All bus nodes, ascending. Cached at construction; O(1). *)

val leaves_array : t -> int array
(** The processors as an array, ascending — the cached backing store of
    {!leaves}, for hot loops that index or sample. Do not mutate. *)

val buses_array : t -> int array
(** The buses as an array, ascending. Do not mutate. *)

val num_leaves : t -> int
(** O(1). *)

val edge_endpoints : t -> int -> int * int

val edge_bandwidth : t -> int -> int

val bus_bandwidth : t -> int -> int
(** Defined for bus nodes; raises [Invalid_argument] on processors. *)

val neighbors : t -> int -> (int * int) array
(** [neighbors t v] are [(neighbor, edge_id)] pairs. Do not mutate. *)

val degree : t -> int -> int

val max_degree : t -> int
(** [degree(T)]: maximum degree over all nodes. *)

val height : t -> int
(** [height(T)]: maximum depth of the canonical rooting. *)

(** {1 Rootings} *)

val rooting : t -> rooted
(** The canonical rooting chosen at construction. *)

val reroot : t -> int -> rooted
(** [reroot t r] computes parent/children/depth arrays for root [r]. *)

val edge_towards_root : rooted -> int -> int
(** [edge_towards_root r v] is the edge from [v] to its parent;
    raises [Invalid_argument] at the root. *)

(** {1 Paths and Steiner trees} *)

val path_edges : t -> int -> int -> int list
(** [path_edges t u v] are the edges of the unique path from [u] to [v]
    in order of traversal (empty when [u = v]). Uses the canonical rooting. *)

val path_length : t -> int -> int -> int

val lca : rooted -> int -> int -> int
(** Lowest common ancestor in the given rooting, by walking parent
    pointers — O(depth) per query, no preprocessing. *)

type lca_index
(** Binary-lifting ancestor tables over one {!rooted} view: O(n log n)
    preprocessing, O(log n) {!lca_fast}/{!distance} queries. Built by the
    load-accounting engine so nearest-copy distances stop being linear
    walks. *)

val lca_index : rooted -> lca_index

val lca_fast : lca_index -> int -> int -> int
(** Same answer as {!lca} on the rooting the index was built from. *)

val distance : lca_index -> int -> int -> int
(** [distance ix u v] is the number of edges on the [u]–[v] path
    (equals {!path_length} on the canonical rooting). *)

(** Structure-of-arrays index over the {e canonical} rooting: preorder
    positions, the Euler tour, and a sparse table of depth minima giving
    O(1) LCA queries. Built once per tree on first use and cached (a
    benign construction race between domains duplicates work at worst;
    force it with {!flat_index} before fanning tasks out). This is the
    backing store of {!Hbn_tree.Flat}, which packages the arrays with
    reusable scratch buffers and non-allocating path/Steiner kernels —
    treat every array as read-only. *)
type flat_index = {
  pos : int array;  (** preorder position of each node *)
  first : int array;  (** first occurrence of each node on the Euler tour *)
  enode : int array;  (** the Euler tour itself, [2n-1] entries *)
  edep : int array;  (** depth of [enode.(i)] *)
  elog2 : int array;  (** floor log2 table up to [elen] *)
  sparse : int array;  (** argmin-by-depth windows, [levels * elen] flat *)
  elen : int;  (** tour length, [2n-1] *)
}

val flat_index : t -> flat_index
(** The cached index (constructed on first call). *)

val lca_flat : flat_index -> int -> int -> int
(** O(1) lowest common ancestor on the canonical rooting; same answer as
    {!lca} on {!rooting}. *)

val steiner_edges : t -> int list -> int list
(** [steiner_edges t nodes] are the edges of the minimal subtree connecting
    [nodes] (empty for fewer than two distinct nodes). *)

val first_on_path : rooted -> member:(int -> bool) -> int -> int option
(** [first_on_path r ~member v] walks from [v] towards the root and returns
    the first node satisfying [member], if any. *)

(** {1 Aggregation helpers} *)

val subtree_sums : rooted -> int array -> int array
(** [subtree_sums r w] gives, for each node [v], the sum of [w] over the
    subtree of [v] in rooting [r] (linear time, no recursion). *)

val subtree_sums_into : rooted -> src:int array -> src_off:int -> dst:int array -> unit
(** Non-allocating {!subtree_sums}: reads the per-node weights from
    [src.(src_off + v)] (a row of a flat weight matrix) and writes the
    subtree sums into [dst], which must have at least [n] slots. *)

val nodes_by_level_bottom_up : rooted -> int list array
(** [nodes_by_level_bottom_up r] groups nodes by level where, following the
    paper's convention, the root is on level [height] and children of level
    [i+1] nodes are on level [i]; index 0 = deepest level. *)

(** {1 Validation and output} *)

val validate_paper_assumptions : t -> (unit, string) result
(** Checks the additional modeling assumption from Section 1.1 that every
    processor-to-bus switch has bandwidth exactly 1. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line description. *)

val to_dot : t -> string
(** Graphviz rendering (buses as boxes, processors as circles, edges
    labeled with bandwidths). *)
