(** Textual serialization of hierarchical bus networks.

    A small line-oriented format so topologies can be stored in files,
    passed to the CLI, and diffed:

    {v
    # comments and blank lines are ignored
    nodes 6
    bus 0 4        # bus <id> <bandwidth>
    bus 1 2
    proc 3         # proc <id>
    edge 0 1 2     # edge <u> <v> <bandwidth>
    root 0         # optional; defaults to the lowest-numbered bus
    v}

    Every node id in [0, nodes) must be declared exactly once; edges must
    form a tree. {!of_string} returns the same errors as
    {!Tree.make} for structural violations. *)

val to_string : Tree.t -> string
(** Render a network in the format above (parses back to an identical
    network). *)

val of_string : string -> (Tree.t, string) result
(** Parse a network; the error carries the offending line number. *)

val save : Tree.t -> path:string -> unit
(** Write [to_string] to a file. *)

val load : path:string -> (Tree.t, string) result
(** Read and parse a file. *)
