(** Dynamic nearest-marked-node queries on a rooted tree.

    Maintains a set of marked nodes under {!mark}/{!unmark} and answers
    "which marked node is closest to [v]?" in O(height) — the query the
    load-accounting engine ([Hbn_loads.Loads]) asks when a removed copy
    orphans its readers. Each toggle repairs a per-node subtree aggregate
    along the path to the root (O(height · degree)); both bounds are small
    on hierarchical bus networks, which are shallow by construction.

    Ties on distance resolve to the lowest node id, matching the
    reference-copy rule of [Placement.nearest] so that incrementally
    maintained assignments stay bit-identical to from-scratch ones. *)

type t

val create : Tree.rooted -> t
(** An empty mark set over the given rooting. The rooting's arrays must
    outlive the structure and stay unchanged. *)

val mark : t -> int -> unit
(** Idempotent. *)

val unmark : t -> int -> unit
(** Idempotent. *)

val is_marked : t -> int -> bool

val count : t -> int
(** Number of marked nodes. *)

val marked : t -> int list
(** All marked nodes, ascending (O(n) — not for hot paths). *)

val nearest : t -> int -> (int * int) option
(** [nearest t v] is [Some (u, d)] with [u] the marked node closest to
    [v] ([d] edges away; ties to the lowest id), or [None] when nothing
    is marked. [v] itself may be marked (then [d = 0]). *)
