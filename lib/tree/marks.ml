type t = {
  r : Tree.rooted;
  marked : bool array;
  mutable count : int;
  (* Per node: nearest marked node inside its subtree, as (distance, id);
     [best_d.(v) = none] when the subtree holds no marked node. Ties on
     distance break to the lowest id, matching Placement.nearest. *)
  best_d : int array;
  best_n : int array;
}

let none = max_int

let create r =
  let n = Array.length r.Tree.parent in
  {
    r;
    marked = Array.make n false;
    count = 0;
    best_d = Array.make n none;
    best_n = Array.make n (-1);
  }

let is_marked t v = t.marked.(v)

let count t = t.count

let marked t =
  let out = ref [] in
  for v = Array.length t.marked - 1 downto 0 do
    if t.marked.(v) then out := v :: !out
  done;
  !out

(* Recompute [best] at [v] from itself and its children; true if changed. *)
let refresh t v =
  let d = ref (if t.marked.(v) then 0 else none) in
  let id = ref (if t.marked.(v) then v else -1) in
  Array.iter
    (fun c ->
      if t.best_d.(c) <> none then begin
        let cd = t.best_d.(c) + 1 in
        if cd < !d || (cd = !d && t.best_n.(c) < !id) then begin
          d := cd;
          id := t.best_n.(c)
        end
      end)
    t.r.Tree.children.(v);
  if !d = t.best_d.(v) && !id = t.best_n.(v) then false
  else begin
    t.best_d.(v) <- !d;
    t.best_n.(v) <- !id;
    true
  end

let repair_upwards t v =
  let x = ref v and go = ref true in
  while !go do
    go := refresh t !x && !x <> t.r.Tree.root;
    if !go then x := t.r.Tree.parent.(!x)
  done

let mark t v =
  if not t.marked.(v) then begin
    t.marked.(v) <- true;
    t.count <- t.count + 1;
    repair_upwards t v
  end

let unmark t v =
  if t.marked.(v) then begin
    t.marked.(v) <- false;
    t.count <- t.count - 1;
    repair_upwards t v
  end

let nearest t v =
  (* Min over ancestors [a] of (dist(v, a) + best_d.(a)): for the true
     nearest marked node the term is exact at [a = lca], and every other
     term only overestimates, so the scan returns the correct minimum
     (ties to the lowest id, as in the subtree aggregation). *)
  let best_d = ref none and best_n = ref (-1) in
  let a = ref v and dist = ref 0 and go = ref true in
  while !go do
    if t.best_d.(!a) <> none && !dist <= !best_d then begin
      let cand = !dist + t.best_d.(!a) in
      if cand < !best_d || (cand = !best_d && t.best_n.(!a) < !best_n) then begin
        best_d := cand;
        best_n := t.best_n.(!a)
      end
    end;
    if !a = t.r.Tree.root || !dist > !best_d then go := false
    else begin
      a := t.r.Tree.parent.(!a);
      incr dist
    end
  done;
  if !best_n < 0 then None else Some (!best_n, !best_d)
