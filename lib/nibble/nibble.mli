(** Step 1 of the extended-nibble strategy: the nibble placement.

    The nibble strategy (Maggs, Meyer auf der Heide, Vöcking, Westermann,
    FOCS 1997) computes, per object [x], a placement of copies on the nodes
    of a tree — inner nodes included — that minimizes the load on {e very}
    edge simultaneously (Theorem 3.1). With the weight
    [h(v) = h_r(v,x) + h_w(v,x)] and the write contention
    [κ_x = Σ_v h_w(v,x)], the rule is: root the tree at a center of gravity
    [g(T)] of the weights; node [v] receives a copy iff [v = g(T)] or the
    weight of the subtree of [v] exceeds [κ_x]. The copies form a connected
    subtree [T(x)] containing [g(T)]; each processor's reference copy is
    its nearest copy. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type copy_set = {
  obj : int;
  nodes : int list;  (** nodes of [T(x)], ascending; empty for unused objects *)
  gravity : int;  (** the chosen center of gravity [g(T)] *)
  rooted : Tree.rooted;  (** the tree rooted at [gravity] *)
}

val gravity_center : Tree.t -> weights:int array -> int
(** [gravity_center t ~weights] is the smallest-index node whose removal
    splits the tree into components each of weight at most half the total
    (such a node always exists; for total weight 0 every node qualifies). *)

val place : ?scratch:Hbn_tree.Flat.Scratch.t -> Workload.t -> obj:int -> copy_set
(** The nibble copy set for one object. [nodes = []] iff the object has no
    requests. [scratch] (fresh by default) lets hot loops reuse working
    memory; it must belong to the calling domain and is left dirty. *)

val place_all : Workload.t -> copy_set array

val placement : Workload.t -> Placement.t
(** Nibble placement over all objects with nearest-copy reference
    assignment — the optimal tree-model placement that Step 2 and Step 3
    start from, and the per-edge lower bound [L_nib] of the analysis. *)

val edge_loads : Workload.t -> int array
(** [L_nib(e)] for every edge: the loads of {!placement}. *)

(** {1 Request service accounting}

    Step 2 needs to know, per copy, which requests it serves. A request
    group is all of one processor's reads and writes for the object; with
    nearest-copy assignment the group is served by the first copy on the
    processor's path towards the gravity center. *)

type group = { leaf : int; reads : int; writes : int }

val served_groups :
  ?scratch:Hbn_tree.Flat.Scratch.t -> Workload.t -> copy_set -> group list array
(** [served_groups w cs] maps each node of [cs.nodes] to the request groups
    its copy serves (empty lists elsewhere). Every requesting leaf appears
    in exactly one group. [scratch] as in {!place}. *)

val group_weight : group -> int
(** [reads + writes]. *)

(** {1 Structure checks (used by tests and the E3 experiment)} *)

val is_connected : Tree.t -> int list -> bool
(** Whether the node set induces a connected subgraph of the tree. *)
