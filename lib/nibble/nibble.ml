module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type copy_set = {
  obj : int;
  nodes : int list;
  gravity : int;
  rooted : Tree.rooted;
}

let gravity_center t ~weights =
  let r = Tree.rooting t in
  let total = Array.fold_left ( + ) 0 weights in
  let sums = Tree.subtree_sums r weights in
  (* Removing v leaves the children subtrees and the rest of the tree;
     v is a center of gravity iff the heaviest such component carries at
     most half the total weight. *)
  let heaviest v =
    let above = total - sums.(v) in
    Array.fold_left (fun acc c -> max acc sums.(c)) above r.Tree.children.(v)
  in
  let rec search v =
    if v >= Tree.n t then
      invalid_arg "Nibble.gravity_center: no center found (impossible)"
    else if 2 * heaviest v <= total then v
    else search (v + 1)
  in
  search 0

type group = { leaf : int; reads : int; writes : int }

let group_weight g = g.reads + g.writes

let place w ~obj =
  let tree = Workload.tree w in
  (* The instance view carries the weight vector, total and contention in
     one precomputed record; reading it is safe from concurrent domains
     once the workload's views are forced. *)
  let view = Workload.view w ~obj in
  let weights = view.Workload.View.weights in
  let total = Workload.View.total_weight view in
  if total = 0 then
    { obj; nodes = []; gravity = 0; rooted = Tree.rooting tree }
  else begin
    let gravity = gravity_center tree ~weights in
    let rooted = Tree.reroot tree gravity in
    let kappa = view.Workload.View.kappa in
    let sums = Tree.subtree_sums rooted weights in
    let nodes = ref [] in
    for v = Tree.n tree - 1 downto 0 do
      if v = gravity || sums.(v) > kappa then nodes := v :: !nodes
    done;
    { obj; nodes = !nodes; gravity; rooted }
  end

let place_all w = Array.init (Workload.num_objects w) (fun obj -> place w ~obj)

let placement w =
  let sets = place_all w in
  let copies = Array.map (fun cs -> cs.nodes) sets in
  Placement.nearest w ~copies

let edge_loads w = Placement.edge_loads w (placement w)

let served_groups w cs =
  let tree = Workload.tree w in
  let in_set = Array.make (Tree.n tree) false in
  List.iter (fun v -> in_set.(v) <- true) cs.nodes;
  let out = Array.make (Tree.n tree) [] in
  List.iter
    (fun leaf ->
      match Tree.first_on_path cs.rooted ~member:(fun v -> in_set.(v)) leaf with
      | None ->
        invalid_arg "Nibble.served_groups: request with no copy on its path"
      | Some server ->
        let g =
          {
            leaf;
            reads = Workload.reads w ~obj:cs.obj leaf;
            writes = Workload.writes w ~obj:cs.obj leaf;
          }
        in
        out.(server) <- g :: out.(server))
    (Workload.requesting_leaves w ~obj:cs.obj);
  out

let is_connected tree nodes =
  match nodes with
  | [] -> true
  | first :: _ ->
    let in_set = Array.make (Tree.n tree) false in
    List.iter (fun v -> in_set.(v) <- true) nodes;
    let seen = Array.make (Tree.n tree) false in
    let rec dfs v =
      seen.(v) <- true;
      Array.iter
        (fun (u, _) -> if in_set.(u) && not seen.(u) then dfs u)
        (Tree.neighbors tree v)
    in
    dfs first;
    List.for_all (fun v -> seen.(v)) nodes
