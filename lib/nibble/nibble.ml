module Tree = Hbn_tree.Tree
module Flat = Hbn_tree.Flat
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type copy_set = {
  obj : int;
  nodes : int list;
  gravity : int;
  rooted : Tree.rooted;
}

(* Center-of-gravity search shared by the public entry point and the flat
   hot path: [acc] holds the canonical subtree sums of the weights,
   [total] their sum. Removing v leaves the children subtrees and the
   rest of the tree; v is a center of gravity iff the heaviest such
   component carries at most half the total weight. *)
let gravity_of_sums r ~acc ~total n =
  let heaviest v =
    let above = total - acc.(v) in
    Array.fold_left (fun m c -> max m acc.(c)) above r.Tree.children.(v)
  in
  let rec search v =
    if v >= n then
      invalid_arg "Nibble.gravity_center: no center found (impossible)"
    else if 2 * heaviest v <= total then v
    else search (v + 1)
  in
  search 0

let gravity_center t ~weights =
  let r = Tree.rooting t in
  let total = Array.fold_left ( + ) 0 weights in
  let sums = Tree.subtree_sums r weights in
  gravity_of_sums r ~acc:sums ~total (Tree.n t)

type group = { leaf : int; reads : int; writes : int }

let group_weight g = g.reads + g.writes

let place ?scratch w ~obj =
  let tree = Workload.tree w in
  let fl = Flat.of_tree tree in
  let wf = Workload.flat w in
  let total = Workload.Flat.total_weight wf ~obj in
  if total = 0 then
    { obj; nodes = []; gravity = 0; rooted = Tree.rooting tree }
  else begin
    let scratch =
      match scratch with Some s -> s | None -> Flat.Scratch.create fl
    in
    let weights = wf.Workload.Flat.weights in
    let base = Workload.Flat.row_base wf ~obj in
    (* Weight sums over the canonical rooting locate the gravity center
       without materializing a per-object weight vector. *)
    Flat.subtree_sums_into fl scratch ~src:weights ~src_off:base;
    let acc = scratch.Flat.Scratch.acc in
    let gravity = gravity_of_sums fl.Flat.r ~acc ~total fl.Flat.n in
    let rooted = Tree.reroot tree gravity in
    let kappa = Workload.Flat.kappa wf ~obj in
    (* Re-aggregate in the gravity rooting; the nibble rule reads these
       sums. [acc] is reused — the canonical sums are spent. *)
    Tree.subtree_sums_into rooted ~src:weights ~src_off:base ~dst:acc;
    let nodes = ref [] in
    for v = Tree.n tree - 1 downto 0 do
      if v = gravity || acc.(v) > kappa then nodes := v :: !nodes
    done;
    { obj; nodes = !nodes; gravity; rooted }
  end

let place_all w = Array.init (Workload.num_objects w) (fun obj -> place w ~obj)

let placement w =
  let sets = place_all w in
  let copies = Array.map (fun cs -> cs.nodes) sets in
  Placement.nearest w ~copies

let edge_loads w = Placement.edge_loads w (placement w)

let served_groups ?scratch w cs =
  let tree = Workload.tree w in
  let fl = Flat.of_tree tree in
  let scratch =
    match scratch with Some s -> s | None -> Flat.Scratch.create fl
  in
  (* Copy-set membership as stamps: no per-call boolean array. *)
  scratch.Flat.Scratch.stamp <- scratch.Flat.Scratch.stamp + 1;
  let stamp = scratch.Flat.Scratch.stamp in
  let nstamp = scratch.Flat.Scratch.nstamp in
  List.iter (fun v -> nstamp.(v) <- stamp) cs.nodes;
  let out = Array.make (Tree.n tree) [] in
  let wf = Workload.flat w in
  Workload.Flat.iter_requesting wf ~obj:cs.obj (fun leaf ->
      match
        Tree.first_on_path cs.rooted ~member:(fun v -> nstamp.(v) = stamp) leaf
      with
      | None ->
        invalid_arg "Nibble.served_groups: request with no copy on its path"
      | Some server ->
        let g =
          {
            leaf;
            reads = Workload.reads w ~obj:cs.obj leaf;
            writes = Workload.writes w ~obj:cs.obj leaf;
          }
        in
        out.(server) <- g :: out.(server));
  out

let is_connected tree nodes =
  match nodes with
  | [] -> true
  | first :: _ ->
    let in_set = Array.make (Tree.n tree) false in
    List.iter (fun v -> in_set.(v) <- true) nodes;
    let seen = Array.make (Tree.n tree) false in
    let rec dfs v =
      seen.(v) <- true;
      Array.iter
        (fun (u, _) -> if in_set.(u) && not seen.(u) then dfs u)
        (Tree.neighbors tree v)
    in
    dfs first;
    List.for_all (fun v -> seen.(v)) nodes
