module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Prng = Hbn_prng.Prng
module Raw = Hbn_loads.Loads.Raw

type violation = {
  v_request : int;
  v_object : int;
  v_reason : string;
  v_set : int list;
}

type outcome = {
  edge_loads : int array;
  served : int;
  replications : int;
  migrations : int;
  contractions : int;
  max_copies : int;
  final_set : int list;
  violation : violation option;
}

(* The connected copy set is explicit ([in_set] + an [anchor] member);
   per-edge counters decide reconfiguration:
   - [read_credit e] in [0, repl_threshold]: crossing reads earn it,
     spanning writes burn it (replicate at the top, contract at zero);
   - [migr_child]/[migr_parent e]: crossing writes pushing the copies
     towards that side (migrate the whole set across at
     [migr_threshold]); writes served on the copies' side reset the
     opposite pressure. *)
type state = {
  tree : Tree.t;
  rooted : Tree.rooted;
  size : int;  (* object size: transfer cost per edge, cf. [12] *)
  repl_threshold : int;
  migr_threshold : int;
  in_set : bool array;
  read_credit : int array;
  migr_child : int array;
  migr_parent : int array;
  loads : Raw.t;  (* running request loads, maintained through the engine *)
  below : int array;  (* below.(e) = child endpoint of e *)
  mutable anchor : int;
  mutable set_size : int;
  mutable replications : int;
  mutable migrations : int;
  mutable contractions : int;
  mutable max_copies : int;
}

(* Path from [v] to the copy set as a node list [v; ...; u] with [u] the
   first member; [v] alone if it is a member. Uses the anchor: the set is
   connected and contains it, so the path v -> anchor enters the set once. *)
let path_to_set st v =
  if st.in_set.(v) then [ v ]
  else begin
    let r = st.rooted in
    let a = Tree.lca r v st.anchor in
    let climb x stop =
      let rec go x acc =
        if x = stop then List.rev acc else go r.Tree.parent.(x) (x :: acc)
      in
      go x []
    in
    let nodes = climb v a @ (a :: List.rev (climb st.anchor a)) in
    let rec take acc = function
      | [] -> List.rev acc
      | x :: rest ->
        if st.in_set.(x) then List.rev (x :: acc) else take (x :: acc) rest
    in
    take [] nodes
  end

let edge_between st a b =
  let r = st.rooted in
  if r.Tree.parent.(a) = b then r.Tree.parent_edge.(a)
  else if r.Tree.parent.(b) = a then r.Tree.parent_edge.(b)
  else invalid_arg "Online.edge_between: nodes not adjacent"

(* The side of [v] for edge [e]'s migration counter. *)
let migr_counter_towards st e v =
  let c = st.below.(e) in
  let r = st.rooted in
  (* v is on the child side iff c is an ancestor-or-self of v; use depths
     by walking up from v at most depth difference — cheap via the
     preorder test would need arrays; walk instead. *)
  let rec ancestor x =
    if x = c then true
    else if x = r.Tree.root || r.Tree.depth.(x) <= r.Tree.depth.(c) then false
    else ancestor r.Tree.parent.(x)
  in
  if ancestor v then (st.migr_child, st.migr_parent)
  else (st.migr_parent, st.migr_child)

let add_node st v =
  if not st.in_set.(v) then begin
    st.in_set.(v) <- true;
    st.set_size <- st.set_size + 1;
    if st.set_size > st.max_copies then st.max_copies <- st.set_size
  end

let internal_edges st =
  let out = ref [] in
  for e = 0 to Tree.num_edges st.tree - 1 do
    let u, v = Tree.edge_endpoints st.tree e in
    if st.in_set.(u) && st.in_set.(v) then out := e :: !out
  done;
  !out

(* Drop members unreachable from [keep] across zero-credit internal
   edges; reset the counters of edges that stop being internal. *)
let contract st ~keep =
  let reachable = Array.make (Tree.n st.tree) false in
  let rec dfs v =
    reachable.(v) <- true;
    Array.iter
      (fun (u, e) ->
        if st.in_set.(u) && (not reachable.(u)) && st.read_credit.(e) > 0 then
          dfs u)
      (Tree.neighbors st.tree v)
  in
  dfs keep;
  for v = 0 to Tree.n st.tree - 1 do
    if st.in_set.(v) && not reachable.(v) then begin
      st.in_set.(v) <- false;
      st.set_size <- st.set_size - 1;
      st.contractions <- st.contractions + 1
    end
  done;
  st.anchor <- keep

let consecutive_pairs nodes =
  let rec go = function
    | a :: (b :: _ as rest) -> (a, b) :: go rest
    | [ _ ] | [] -> []
  in
  go nodes

let serve st (req : Request.t) =
  let v = req.Request.node in
  let path = path_to_set st v in
  let u = List.nth path (List.length path - 1) in
  let path_edges =
    List.map (fun (a, b) -> edge_between st a b) (consecutive_pairs path)
  in
  match req.Request.kind with
  | Request.Read ->
    (* Crossing loads and credits. *)
    List.iter
      (fun e ->
        Raw.add st.loads e 1;
        st.read_credit.(e) <-
          min st.repl_threshold (st.read_credit.(e) + 1))
      path_edges;
    (* Expansion crawl from the boundary towards the reader. *)
    let rec crawl = function
      | a :: (b :: _ as rest) when st.in_set.(a) && not st.in_set.(b) ->
        let e = edge_between st a b in
        if st.read_credit.(e) >= st.repl_threshold then begin
          add_node st b;
          Raw.add st.loads e st.size;
          st.replications <- st.replications + 1;
          st.read_credit.(e) <- st.repl_threshold;
          crawl rest
        end
      | _ :: _ | [] -> ()
    in
    crawl (List.rev path)
  | Request.Write ->
    let internal = internal_edges st in
    (* Serve: request to the nearest copy plus the update broadcast. *)
    List.iter (fun e -> Raw.add st.loads e 1) path_edges;
    List.iter (fun e -> Raw.add st.loads e 1) internal;
    (* Crossing writes build migration pressure towards the writer. *)
    List.iter
      (fun e ->
        let towards, away = migr_counter_towards st e v in
        towards.(e) <- min st.migr_threshold (towards.(e) + 1);
        away.(e) <- 0)
      path_edges;
    (* Writes served on the copies' side renew their claim: every edge
       that is neither crossed nor spanned sees a local write. *)
    let on_path = Array.make (max 1 (Tree.num_edges st.tree)) false in
    List.iter (fun e -> on_path.(e) <- true) path_edges;
    let is_internal = Array.make (max 1 (Tree.num_edges st.tree)) false in
    List.iter (fun e -> is_internal.(e) <- true) internal;
    for e = 0 to Tree.num_edges st.tree - 1 do
      if (not on_path.(e)) && not is_internal.(e) then begin
        st.migr_child.(e) <- 0;
        st.migr_parent.(e) <- 0
      end
    done;
    (* Spanning writes burn read credit; contract at zero. *)
    let keep = if st.in_set.(v) then v else u in
    let zeroed = ref false in
    List.iter
      (fun e ->
        st.read_credit.(e) <- max 0 (st.read_credit.(e) - 1);
        if st.read_credit.(e) = 0 then zeroed := true)
      internal;
    if !zeroed then contract st ~keep else st.anchor <- keep;
    (* Migration cascade: while the boundary edge towards the writer has
       full pressure, the whole set moves across it. *)
    if not st.in_set.(v) then begin
      let rec cascade = function
        | a :: (b :: _ as rest) when st.in_set.(a) && not st.in_set.(b) ->
          let e = edge_between st a b in
          let towards, _ = migr_counter_towards st e v in
          if towards.(e) >= st.migr_threshold then begin
            (* Collapse the set to the far endpoint. *)
            for x = 0 to Tree.n st.tree - 1 do
              if st.in_set.(x) then begin
                st.in_set.(x) <- false;
                st.set_size <- st.set_size - 1
              end
            done;
            st.set_size <- 0;
            add_node st b;
            st.set_size <- 1;
            st.anchor <- b;
            Raw.add st.loads e st.size;
            st.migrations <- st.migrations + 1;
            st.migr_child.(e) <- 0;
            st.migr_parent.(e) <- 0;
            st.read_credit.(e) <- 0;
            cascade rest
          end
        | _ :: _ | [] -> ()
      in
      cascade (List.rev path)
    end

(* The invariants the per-edge automaton maintains by construction. A
   breach is a bug, but one the caller chooses how to absorb: the result
   carries the reason and the offending copy set instead of raising, so
   a long-running serve loop can drop the object and keep going. *)
let check_consistent st =
  let members =
    List.filter (fun v -> st.in_set.(v)) (List.init (Tree.n st.tree) Fun.id)
  in
  if members = [] then Error ("empty copy set", members)
  else if not st.in_set.(st.anchor) then
    Error ("anchor left the set", members)
  else if List.length members <> st.set_size then
    Error ("size accounting drifted", members)
  else if not (Hbn_nibble.Nibble.is_connected st.tree members) then
    Error ("copy set disconnected", members)
  else Ok members

let run ?(size = 1) ?threshold ?(validate = false) ?(obj = -1) tree ~initial
    reqs =
  if size < 1 then invalid_arg "Online.run: size must be >= 1";
  let threshold = match threshold with Some t -> t | None -> size in
  if threshold < 1 then invalid_arg "Online.run: threshold must be >= 1";
  let m = max 1 (Tree.num_edges tree) in
  let r = Tree.rooting tree in
  let n = Tree.n tree in
  let below = Array.make m (-1) in
  for v = 0 to n - 1 do
    if v <> r.Tree.root then below.(r.Tree.parent_edge.(v)) <- v
  done;
  let st =
    {
      tree;
      rooted = r;
      size;
      repl_threshold = threshold;
      migr_threshold = 2 * threshold;
      in_set = Array.make n false;
      read_credit = Array.make m 0;
      migr_child = Array.make m 0;
      migr_parent = Array.make m 0;
      loads = Raw.create tree;
      below;
      anchor = initial;
      set_size = 0;
      replications = 0;
      migrations = 0;
      contractions = 0;
      max_copies = 1;
    }
  in
  add_node st initial;
  let served = ref 0 in
  let violation = ref None in
  (* Stop at the first invariant breach: the remaining requests would be
     served against a state the automaton no longer vouches for. *)
  (try
     List.iter
       (fun req ->
         serve st req;
         incr served;
         if validate then
           match check_consistent st with
           | Ok _ -> ()
           | Error (reason, set) ->
             violation :=
               Some
                 {
                   v_request = !served - 1;
                   v_object = obj;
                   v_reason = reason;
                   v_set = set;
                 };
             raise Exit)
       reqs
   with Exit -> ());
  {
    edge_loads = Raw.loads st.loads;
    served = !served;
    replications = st.replications;
    migrations = st.migrations;
    contractions = st.contractions;
    max_copies = st.max_copies;
    final_set =
      List.filter (fun v -> st.in_set.(v)) (List.init n Fun.id);
    violation = !violation;
  }

let run_workload ?size ?threshold ?validate ~prng w =
  let tree = Workload.tree w in
  let m = max 1 (Tree.num_edges tree) in
  let loads = Array.make m 0 in
  let served = ref 0
  and repl = ref 0
  and migr = ref 0
  and contr = ref 0
  and maxc = ref 0
  and violation = ref None in
  for obj = 0 to Workload.num_objects w - 1 do
    match Request.of_workload ~prng w ~obj with
    | [] -> ()
    | first :: _ as reqs ->
      let out =
        run ?size ?threshold ?validate ~obj tree ~initial:first.Request.node
          reqs
      in
      Array.iteri (fun e l -> loads.(e) <- loads.(e) + l) out.edge_loads;
      served := !served + out.served;
      repl := !repl + out.replications;
      migr := !migr + out.migrations;
      contr := !contr + out.contractions;
      maxc := max !maxc out.max_copies;
      if !violation = None then violation := out.violation
  done;
  {
    edge_loads = loads;
    served = !served;
    replications = !repl;
    migrations = !migr;
    contractions = !contr;
    max_copies = !maxc;
    final_set = [];
    violation = !violation;
  }

let congestion tree outcome =
  (Placement.congestion_of_edge_loads tree outcome.edge_loads).Placement.value
