module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Prng = Hbn_prng.Prng

type kind = Read | Write

type t = { node : int; kind : kind }

let all_requests w ~obj =
  List.concat_map
    (fun v ->
      List.init (Workload.reads w ~obj v) (fun _ -> { node = v; kind = Read })
      @ List.init (Workload.writes w ~obj v) (fun _ ->
            { node = v; kind = Write }))
    (Workload.requesting_leaves w ~obj)

let of_workload ~prng w ~obj =
  let arr = Array.of_list (all_requests w ~obj) in
  Prng.shuffle prng arr;
  Array.to_list arr

let bursty ~prng w ~obj ~burst =
  if burst < 1 then invalid_arg "Request.bursty: burst must be >= 1";
  (* Per processor, cut its requests into bursts, then shuffle bursts. *)
  let chunks = ref [] in
  List.iter
    (fun v ->
      let mine =
        List.init (Workload.reads w ~obj v) (fun _ -> { node = v; kind = Read })
        @ List.init (Workload.writes w ~obj v) (fun _ ->
              { node = v; kind = Write })
      in
      let mine = Array.of_list mine in
      Prng.shuffle prng mine;
      let n = Array.length mine in
      let i = ref 0 in
      while !i < n do
        let len = min (Prng.int_in prng 1 burst) (n - !i) in
        chunks := Array.to_list (Array.sub mine !i len) :: !chunks;
        i := !i + len
      done)
    (Workload.requesting_leaves w ~obj);
  let chunk_arr = Array.of_list !chunks in
  Prng.shuffle prng chunk_arr;
  List.concat (Array.to_list chunk_arr)

let phases ~prng tree ~readers ~writer ~phase_length ~phases =
  if not (Tree.is_leaf tree writer) then
    invalid_arg "Request.phases: writer must be a processor";
  List.iter
    (fun r ->
      if not (Tree.is_leaf tree r) then
        invalid_arg "Request.phases: readers must be processors")
    readers;
  List.concat
    (List.init phases (fun p ->
         if p mod 2 = 0 then begin
           let reads =
             Array.of_list
               (List.concat_map
                  (fun r ->
                    List.init phase_length (fun _ -> { node = r; kind = Read }))
                  readers)
           in
           Prng.shuffle prng reads;
           Array.to_list reads
         end
         else List.init phase_length (fun _ -> { node = writer; kind = Write })))

let pp ppf r =
  Format.fprintf ppf "%s@%d" (match r.kind with Read -> "R" | Write -> "W")
    r.node
