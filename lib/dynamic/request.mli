(** Online request sequences for the dynamic data management model.

    Section 1.3 of the paper discusses the dynamic companion of the static
    problem (from [MMVW97], its reference [10]): requests arrive one at a
    time with no knowledge of the future, and the strategy migrates and
    replicates copies online. This module represents request sequences and
    derives them from static workloads (so dynamic and static strategies
    can be compared on the same access statistics). *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload

type kind = Read | Write

type t = { node : int; kind : kind }
(** One request, issued by a processor. *)

val of_workload :
  prng:Hbn_prng.Prng.t -> Workload.t -> obj:int -> t list
(** Expands the frequencies of one object into a uniformly shuffled
    request sequence ([h_r(v,x)] reads and [h_w(v,x)] writes per
    processor [v]). *)

val bursty :
  prng:Hbn_prng.Prng.t ->
  Workload.t ->
  obj:int ->
  burst:int ->
  t list
(** Like {!of_workload} but emits each processor's requests in bursts of
    up to [burst] consecutive requests — the locality-friendly regime
    where online replication pays off. *)

val phases :
  prng:Hbn_prng.Prng.t ->
  Tree.t ->
  readers:int list ->
  writer:int ->
  phase_length:int ->
  phases:int ->
  t list
(** Alternating read phases (all [readers] read [phase_length] times) and
    write phases (the [writer] writes [phase_length] times) — the
    adversarial pattern that separates static from dynamic management. *)

val pp : Format.formatter -> t -> unit
