(** Exact per-edge offline optimum for dynamic request sequences.

    On a tree, each edge [e] splits the network in two sides; any
    placement history induces, per edge, a sequence of states in
    {child side only, parent side only, both sides}. The load a request
    or a reconfiguration puts on [e] depends only on that state sequence:

    - a read from side [s] loads [e] iff no copy is on [s];
    - a write loads [e] iff the opposite side holds a copy (update or
      request crossing);
    - replicating or migrating across [e] loads it once; dropping copies
      is free.

    Minimizing over state sequences per edge (a 3-state dynamic program)
    yields, for every edge, a load no strategy — online or offline — can
    beat. Experiment E12 and the tests divide the online strategy's edge
    loads by this optimum to measure the competitive ratio (the paper's
    reference [10] proves 3 for trees). *)

module Tree = Hbn_tree.Tree

val per_edge_optimum :
  ?size:int -> Tree.t -> initial:int -> Request.t list -> int array
(** [per_edge_optimum t ~initial reqs] is the minimum possible load of
    every edge over all copy-placement histories starting from a single
    copy on [initial]. [size] (default 1) is the per-edge transfer cost
    of replications and migrations (the object's data size). *)

val total_optimum : ?size:int -> Tree.t -> initial:int -> Request.t list -> int
(** Sum of {!per_edge_optimum} — a lower bound on the total communication
    load of any dynamic strategy. *)
