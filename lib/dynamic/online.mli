(** Online dynamic data management on trees — the companion strategy.

    Reconstructs the dynamic tree strategy discussed in Section 1.3 of the
    paper (presented in its reference [10], where a competitive ratio of 3
    is proven for trees). The implementation is a per-edge automaton
    scheme realizing the same per-edge guarantee; experiment E12 measures
    its per-edge competitive ratio against the exact per-edge offline
    optimum of {!Offline}: across thousands of random sequences the load
    never exceeds [3·OPT + 4] per edge, and the multiplicative ratio on
    edges with substantial optimum stays below 3.05 — the constant of
    [10], reached exactly by the read/write alternation adversary.

    Per object, each edge [e] of the tree tracks how the connected copy
    set relates to it — entirely on one side, or spanning it — plus a
    read credit and two write-migration counters:

    - a {e crossing read} (no copy on the reader's side) pays 1, earns
      read credit; at [threshold] credits the set {e replicates} across
      (one more unit of transfer load);
    - a {e spanning write} pays 1 (the update broadcast) and burns read
      credit; at zero the side away from the writer is dropped (free);
    - a {e crossing write} pays 1 and builds migration pressure; at
      [2·threshold] crossing writes the copies {e migrate} across the
      edge (one transfer) — a write served on the copies' own side
      resets the opposite pressure.

    Because every edge between the copy set and a requester observes the
    same crossing requests, the per-edge decisions assemble into a
    connected global copy set at all times (checked by [validate]). On
    the adversarial read/write alternation across an edge the scheme pays
    exactly 3 per optimal 1 — the tight ratio of [10]. Copies live on any
    node (the tree model, like the nibble strategy); the static
    extended-nibble strategy remains the right tool when frequencies are
    known and copies must sit on processors. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload

type violation = {
  v_request : int;  (** index of the request whose service broke it *)
  v_object : int;  (** object id; [-1] when run outside a workload *)
  v_reason : string;  (** which invariant, e.g. ["copy set disconnected"] *)
  v_set : int list;  (** the copy set as found at detection *)
}
(** A breached automaton invariant, caught by [validate]. Any violation
    is a bug in the scheme, but a long-running caller (the serving tier)
    needs the context — not an exception mid-run. *)

type outcome = {
  edge_loads : int array;  (** accumulated dynamic load per edge *)
  served : int;  (** requests processed *)
  replications : int;  (** replication transfers *)
  migrations : int;  (** migration transfers *)
  contractions : int;  (** spanning edges dropped back to one side *)
  max_copies : int;  (** peak size of the copy set *)
  final_set : int list;  (** the copy set after the last request *)
  violation : violation option;
      (** first invariant breach, if [validate] caught one — serving
          stopped at that request ([served] counts it), mirroring
          [Runtime.run]'s non-raising contract *)
}

val run :
  ?size:int ->
  ?threshold:int ->
  ?validate:bool ->
  ?obj:int ->
  Tree.t ->
  initial:int ->
  Request.t list ->
  outcome
(** [run t ~initial reqs] plays the sequence for one object whose single
    initial copy sits on [initial]. [size] (default 1) is the object's
    data size, the non-uniform cost model of the paper's reference [12]:
    every replication or migration transfer loads its edge by [size], and
    [threshold] defaults to [size] so the counters amortize the transfer
    (replicate after [size] crossing reads, migrate after [2·size]
    crossing writes), keeping the competitive ratio a constant
    independent of the size.
    [validate] re-checks after every request that the copy set encoded by
    the edge states is nonempty, connected, and spans every marked edge
    (slow; for tests and the serving tier). A breach does not raise: the
    run stops early and the outcome carries the {!violation}, tagged
    with [obj] (default [-1]) as its object id. *)

val run_workload :
  ?size:int ->
  ?threshold:int ->
  ?validate:bool ->
  prng:Hbn_prng.Prng.t ->
  Workload.t ->
  outcome
(** Expands every object of the workload into a shuffled sequence
    ({!Request.of_workload}), runs each object independently (each
    starting on its first requester) and sums the edge loads. With
    [validate], a violating object stops early (its remaining requests
    are unserved), the other objects still run, and the outcome carries
    the first violation. *)

val congestion : Tree.t -> outcome -> float
(** Relative-load congestion of the accumulated dynamic loads (edges and
    buses, same definition as the static evaluator). *)
