module Tree = Hbn_tree.Tree

(* States per edge: copies on the child side only, the parent side only,
   or both. The child side of edge e (in the canonical rooting) is the
   subtree below it. *)

type state = Child | Parent | Both

let states = [ Child; Parent; Both ]

let transition_cost ~size from_ to_ =
  match (from_, to_) with
  | Child, Child | Parent, Parent | Both, Both -> 0
  | Both, Child | Both, Parent -> 0 (* dropping copies is free *)
  | Child, Parent | Parent, Child -> size (* migration crosses the edge *)
  | Child, Both | Parent, Both -> size (* replication crosses the edge *)

let request_cost state ~on_child (kind : Request.kind) =
  match (kind, state, on_child) with
  | Request.Read, Child, true | Request.Read, Parent, false -> 0
  | Request.Read, Both, _ -> 0
  | Request.Read, Child, false | Request.Read, Parent, true -> 1
  | Request.Write, Child, true | Request.Write, Parent, false -> 0
  | Request.Write, Child, false | Request.Write, Parent, true -> 1
  | Request.Write, Both, _ -> 1

let per_edge_optimum ?(size = 1) tree ~initial reqs =
  if size < 1 then invalid_arg "Offline.per_edge_optimum: size must be >= 1";
  let m = max 1 (Tree.num_edges tree) in
  let r = Tree.rooting tree in
  (* in_child.(e).(v): is node v strictly below edge e? Computed per edge
     via the child endpoint's subtree membership. *)
  let below = Array.make m (-1) in
  for v = 0 to Tree.n tree - 1 do
    if v <> r.Tree.root then below.(r.Tree.parent_edge.(v)) <- v
  done;
  let in_subtree =
    (* in_subtree.(v) = preorder interval for subtree membership tests *)
    let enter = Array.make (Tree.n tree) 0 in
    let leave = Array.make (Tree.n tree) 0 in
    let pos = Array.make (Tree.n tree) 0 in
    Array.iteri (fun i v -> pos.(v) <- i) r.Tree.preorder;
    (* preorder positions; subtree of v = contiguous interval starting at
       pos v of size |subtree v| *)
    let size = Tree.subtree_sums r (Array.make (Tree.n tree) 1) in
    Array.iteri
      (fun v p ->
        enter.(v) <- p;
        leave.(v) <- p + size.(v))
      pos;
    fun root v -> enter.(v) >= enter.(root) && enter.(v) < leave.(root)
  in
  let opt = Array.make m 0 in
  for e = 0 to Tree.num_edges tree - 1 do
    let child_root = below.(e) in
    let on_child v = in_subtree child_root v in
    let cost s = match s with Child -> 0 | Parent -> size | Both -> size in
    (* initial single copy on [initial]: state Child costs 0 if the copy
       is below e, else 1 (migrate); symmetric for Parent; Both = 1. *)
    let init s =
      if on_child initial then cost s
      else match s with Child -> size | Parent -> 0 | Both -> size
    in
    let current = List.map (fun s -> (s, init s)) states in
    let step current (req : Request.t) =
      let on_child_req = on_child req.Request.node in
      List.map
        (fun s ->
          let best =
            List.fold_left
              (fun acc (s0, c0) ->
                min acc (c0 + transition_cost ~size s0 s))
              max_int current
          in
          (s, best + request_cost s ~on_child:on_child_req req.Request.kind))
        states
    in
    let final = List.fold_left step current reqs in
    opt.(e) <- List.fold_left (fun acc (_, c) -> min acc c) max_int final
  done;
  opt

let total_optimum ?size tree ~initial reqs =
  Array.fold_left ( + ) 0 (per_edge_optimum ?size tree ~initial reqs)
