(** PARTITION instances and the Theorem 2.1 reduction gadget.

    Theorem 2.1 of the paper reduces PARTITION to static placement on a
    4-ary tree of height 1: given items [k_1 .. k_n] with [Σ k_i = 2k], the
    gadget has processors [a], [b], [s], [s̄] around one bus, objects
    [x_1 .. x_n] and [y] with frequencies [h_w(a,y) = 4k+1],
    [h_w(b,y) = 2k], and [h_w(v, x_i) = k_i] for every processor [v]. A
    placement of congestion at most [4k] exists iff some subset of the
    items sums to exactly [k]. *)

type instance = { items : int array }

val make : int list -> instance
(** Raises [Invalid_argument] on an empty list or non-positive items. *)

val sum : instance -> int

val half : instance -> int option
(** [half i] is [Some k] when [sum i = 2k], [None] for odd sums. *)

val achievable_sums : instance -> bool array
(** [achievable_sums i] has index [v] true iff some subset of the items
    sums to [v]; length [sum i + 1]. *)

val solvable : instance -> bool
(** Exact subset-sum DP: does a subset sum to [sum/2]? [false] for odd
    sums. *)

val find_subset : instance -> int list option
(** Indices of a subset summing to [sum/2], when one exists. *)

val random_yes : prng:Hbn_prng.Prng.t -> items:int -> max_item:int -> instance
(** A random instance guaranteed solvable: items are drawn in pairs of
    equal values and shuffled (each pair splits across the two halves). *)

val random : prng:Hbn_prng.Prng.t -> items:int -> max_item:int -> instance
(** Unconstrained random instance with an even sum (a padding item is added
    when needed). May or may not be solvable; classify with {!solvable}. *)

(** {1 The reduction gadget} *)

type gadget = {
  tree : Hbn_tree.Tree.t;
  workload : Workload.t;
  k : int;  (** half of the item sum *)
  node_a : int;
  node_b : int;
  node_s : int;
  node_sbar : int;
  object_y : int;  (** index of object [y]; items are objects [0 .. n-1] *)
}

val gadget : instance -> gadget
(** Builds the Theorem 2.1 gadget. Raises [Invalid_argument] for odd sums.
    The bus bandwidth is made large enough that edge loads dominate, per
    the proof. *)

val yes_placement : gadget -> int list -> (int * int) list
(** [yes_placement g subset] is the paper's witness placement for a solving
    [subset]: object [x_i] on [s] if [i ∈ subset] else on [s̄], and [y] on
    [a]. Returned as [(object, leaf)] pairs; its congestion is exactly
    [4k]. *)
