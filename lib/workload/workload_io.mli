(** Textual serialization of workloads.

    Line-oriented, paired with {!Hbn_tree.Topology_io}:

    {v
    # comments and blank lines are ignored
    objects 3
    rate 0 5 12 4    # rate <object> <processor> <reads> <writes>
    rate 2 6 0 9
    v}

    Unlisted (object, processor) pairs have zero frequencies. Parsing
    validates against the tree: rates on non-processors or out-of-range
    ids are rejected, and so is a second [rate] line for an (object,
    processor) pair already declared — the error names both line
    numbers. (Duplicates used to accumulate silently, doubling rates on
    concatenated files.) *)

val to_string : Workload.t -> string
(** Render; only nonzero rates are emitted. *)

val of_string : Hbn_tree.Tree.t -> string -> (Workload.t, string) result

val save : Workload.t -> path:string -> unit

val load : Hbn_tree.Tree.t -> path:string -> (Workload.t, string) result
