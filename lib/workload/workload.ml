module Tree = Hbn_tree.Tree

module View = struct
  type t = {
    obj : int;
    kappa : int;
    total_reads : int;
    total_writes : int;
    requesting : int list;
    weights : int array;
  }

  let total_weight v = v.total_reads + v.total_writes
end

type t = {
  tree : Tree.t;
  reads : int array array;
  writes : int array array;
  (* Per-object instance views, computed on first use and invalidated by
     [set_read]/[set_write]. Slots hold immutable records, so a forced
     cache can be read from several domains at once; [views] forces every
     slot before a parallel phase starts. *)
  view_cache : View.t option array;
}

let check_matrix tree label m =
  Array.iteri
    (fun x row ->
      if Array.length row <> Tree.n tree then
        invalid_arg
          (Printf.sprintf "Workload.make: %s row %d has wrong length" label x);
      Array.iteri
        (fun v rate ->
          if rate < 0 then
            invalid_arg
              (Printf.sprintf "Workload.make: negative %s rate at (%d, %d)"
                 label x v);
          if rate > 0 && not (Tree.is_leaf tree v) then
            invalid_arg
              (Printf.sprintf
                 "Workload.make: %s rate on non-processor node %d (object %d)"
                 label v x))
        row)
    m

let make tree ~reads ~writes =
  if Array.length reads <> Array.length writes then
    invalid_arg "Workload.make: reads/writes object counts differ";
  check_matrix tree "read" reads;
  check_matrix tree "write" writes;
  { tree; reads; writes; view_cache = Array.make (Array.length reads) None }

let empty tree ~objects =
  if objects < 0 then invalid_arg "Workload.empty: negative object count";
  {
    tree;
    reads = Array.init objects (fun _ -> Array.make (Tree.n tree) 0);
    writes = Array.init objects (fun _ -> Array.make (Tree.n tree) 0);
    view_cache = Array.make objects None;
  }

let tree t = t.tree

let num_objects t = Array.length t.reads

let reads t ~obj v = t.reads.(obj).(v)

let writes t ~obj v = t.writes.(obj).(v)

let weight t ~obj v = t.reads.(obj).(v) + t.writes.(obj).(v)

let compute_view t obj =
  let n = Tree.n t.tree in
  let rr = t.reads.(obj) and wr = t.writes.(obj) in
  let weights = Array.make n 0 in
  let total_reads = ref 0 and total_writes = ref 0 in
  for v = 0 to n - 1 do
    weights.(v) <- rr.(v) + wr.(v);
    total_reads := !total_reads + rr.(v);
    total_writes := !total_writes + wr.(v)
  done;
  let requesting =
    List.filter (fun v -> weights.(v) > 0) (Tree.leaves t.tree)
  in
  {
    View.obj;
    kappa = !total_writes;
    total_reads = !total_reads;
    total_writes = !total_writes;
    requesting;
    weights;
  }

let view t ~obj =
  match t.view_cache.(obj) with
  | Some v -> v
  | None ->
    let v = compute_view t obj in
    t.view_cache.(obj) <- Some v;
    v

let views t = Array.init (num_objects t) (fun obj -> view t ~obj)

let check_update t v rate =
  if rate < 0 then invalid_arg "Workload.set: negative rate";
  if not (Tree.is_leaf t.tree v) then
    invalid_arg "Workload.set: only processors issue requests"

let set_read t ~obj v rate =
  check_update t v rate;
  t.reads.(obj).(v) <- rate;
  t.view_cache.(obj) <- None

let set_write t ~obj v rate =
  check_update t v rate;
  t.writes.(obj).(v) <- rate;
  t.view_cache.(obj) <- None

let write_contention t ~obj = (view t ~obj).View.kappa

let total_weight t ~obj = View.total_weight (view t ~obj)

let total_requests t =
  let sum = ref 0 in
  for x = 0 to num_objects t - 1 do
    sum := !sum + total_weight t ~obj:x
  done;
  !sum

let read_vector t ~obj = Array.copy t.reads.(obj)

let write_vector t ~obj = Array.copy t.writes.(obj)

let weight_vector t ~obj = Array.copy (view t ~obj).View.weights

let requesting_leaves t ~obj = (view t ~obj).View.requesting

let pp ppf t =
  Format.fprintf ppf "@[<v>workload: %d objects on %d nodes@," (num_objects t)
    (Tree.n t.tree);
  for x = 0 to num_objects t - 1 do
    Format.fprintf ppf "  object %d: kappa=%d, weight=%d, leaves=%d@," x
      (write_contention t ~obj:x) (total_weight t ~obj:x)
      (List.length (requesting_leaves t ~obj:x))
  done;
  Format.fprintf ppf "@]"
