module Tree = Hbn_tree.Tree

module Flat = struct
  type t = {
    nodes : int;
    objects : int;
    weights : int array;
    total_reads : int array;
    kappa : int array;
    req_off : int array;
    req_leaf : int array;
  }

  let row_base f ~obj = obj * f.nodes

  let weight f ~obj v = f.weights.((obj * f.nodes) + v)

  let kappa f ~obj = f.kappa.(obj)

  let total_weight f ~obj = f.total_reads.(obj) + f.kappa.(obj)

  let num_requesting f ~obj = f.req_off.(obj + 1) - f.req_off.(obj)

  let iter_requesting f ~obj g =
    for i = f.req_off.(obj) to f.req_off.(obj + 1) - 1 do
      g f.req_leaf.(i)
    done
end

module View = struct
  type t = {
    obj : int;
    kappa : int;
    total_reads : int;
    total_writes : int;
    requesting : int list;
    weights : int array;
  }

  let total_weight v = v.total_reads + v.total_writes
end

type t = {
  tree : Tree.t;
  reads : int array array;
  writes : int array array;
  (* Per-object instance views, computed on first use and invalidated by
     [set_read]/[set_write]. Slots hold immutable records, so a forced
     cache can be read from several domains at once; [views] forces every
     slot before a parallel phase starts. *)
  view_cache : View.t option array;
  (* The SoA mirror of [reads]/[writes] consumed by the hot pipeline:
     weight rows, per-object totals and the requesting-leaf CSR in shared
     flat arrays. Built on first use, invalidated wholesale by
     [set_read]/[set_write] (generators batch their updates before the
     pipeline reads anything, so rebuilds are rare). Immutable once
     built; force it with [flat] before fanning out domains. *)
  mutable flat : Flat.t option;
}

let check_matrix tree label m =
  Array.iteri
    (fun x row ->
      if Array.length row <> Tree.n tree then
        invalid_arg
          (Printf.sprintf "Workload.make: %s row %d has wrong length" label x);
      Array.iteri
        (fun v rate ->
          if rate < 0 then
            invalid_arg
              (Printf.sprintf "Workload.make: negative %s rate at (%d, %d)"
                 label x v);
          if rate > 0 && not (Tree.is_leaf tree v) then
            invalid_arg
              (Printf.sprintf
                 "Workload.make: %s rate on non-processor node %d (object %d)"
                 label v x))
        row)
    m

let make tree ~reads ~writes =
  if Array.length reads <> Array.length writes then
    invalid_arg "Workload.make: reads/writes object counts differ";
  check_matrix tree "read" reads;
  check_matrix tree "write" writes;
  {
    tree;
    reads;
    writes;
    view_cache = Array.make (Array.length reads) None;
    flat = None;
  }

let empty tree ~objects =
  if objects < 0 then invalid_arg "Workload.empty: negative object count";
  {
    tree;
    reads = Array.init objects (fun _ -> Array.make (Tree.n tree) 0);
    writes = Array.init objects (fun _ -> Array.make (Tree.n tree) 0);
    view_cache = Array.make objects None;
    flat = None;
  }

let tree t = t.tree

let num_objects t = Array.length t.reads

let reads t ~obj v = t.reads.(obj).(v)

let writes t ~obj v = t.writes.(obj).(v)

let weight t ~obj v = t.reads.(obj).(v) + t.writes.(obj).(v)

let build_flat t =
  let nodes = Tree.n t.tree in
  let objects = Array.length t.reads in
  let weights = Array.make (objects * nodes) 0 in
  let total_reads = Array.make objects 0 in
  let kappa = Array.make objects 0 in
  let req_off = Array.make (objects + 1) 0 in
  let leaves = Tree.leaves_array t.tree in
  for obj = 0 to objects - 1 do
    let rr = t.reads.(obj) and wr = t.writes.(obj) in
    let base = obj * nodes in
    let tr = ref 0 and tw = ref 0 in
    for v = 0 to nodes - 1 do
      weights.(base + v) <- rr.(v) + wr.(v);
      tr := !tr + rr.(v);
      tw := !tw + wr.(v)
    done;
    total_reads.(obj) <- !tr;
    kappa.(obj) <- !tw;
    let requesting = ref 0 in
    Array.iter
      (fun leaf -> if weights.(base + leaf) > 0 then incr requesting)
      leaves;
    req_off.(obj + 1) <- req_off.(obj) + !requesting
  done;
  let req_leaf = Array.make req_off.(objects) 0 in
  for obj = 0 to objects - 1 do
    let base = obj * nodes in
    let at = ref req_off.(obj) in
    (* [leaves] is ascending, so each CSR slice is too. *)
    Array.iter
      (fun leaf ->
        if weights.(base + leaf) > 0 then begin
          req_leaf.(!at) <- leaf;
          incr at
        end)
      leaves
  done;
  { Flat.nodes; objects; weights; total_reads; kappa; req_off; req_leaf }

let flat t =
  match t.flat with
  | Some f -> f
  | None ->
    let f = build_flat t in
    t.flat <- Some f;
    f

(* Views are now a boxed materialization of the flat arrays, kept for
   consumers that want one object's data as a standalone record (tests,
   attribution); the pipeline's hot loops read [Flat] directly. *)
let compute_view t obj =
  let f = flat t in
  let n = f.Flat.nodes in
  let base = obj * n in
  let requesting = ref [] in
  for i = f.Flat.req_off.(obj + 1) - 1 downto f.Flat.req_off.(obj) do
    requesting := f.Flat.req_leaf.(i) :: !requesting
  done;
  {
    View.obj;
    kappa = f.Flat.kappa.(obj);
    total_reads = f.Flat.total_reads.(obj);
    total_writes = f.Flat.kappa.(obj);
    requesting = !requesting;
    weights = Array.sub f.Flat.weights base n;
  }

let view t ~obj =
  match t.view_cache.(obj) with
  | Some v -> v
  | None ->
    let v = compute_view t obj in
    t.view_cache.(obj) <- Some v;
    v

let views t = Array.init (num_objects t) (fun obj -> view t ~obj)

let check_update t v rate =
  if rate < 0 then invalid_arg "Workload.set: negative rate";
  if not (Tree.is_leaf t.tree v) then
    invalid_arg "Workload.set: only processors issue requests"

let set_read t ~obj v rate =
  check_update t v rate;
  t.reads.(obj).(v) <- rate;
  t.view_cache.(obj) <- None;
  t.flat <- None

let set_write t ~obj v rate =
  check_update t v rate;
  t.writes.(obj).(v) <- rate;
  t.view_cache.(obj) <- None;
  t.flat <- None

let write_contention t ~obj = Flat.kappa (flat t) ~obj

let total_weight t ~obj = Flat.total_weight (flat t) ~obj

let total_requests t =
  let sum = ref 0 in
  for x = 0 to num_objects t - 1 do
    sum := !sum + total_weight t ~obj:x
  done;
  !sum

let read_vector t ~obj = Array.copy t.reads.(obj)

let write_vector t ~obj = Array.copy t.writes.(obj)

let weight_vector t ~obj = Array.copy (view t ~obj).View.weights

let requesting_leaves t ~obj =
  let f = flat t in
  let acc = ref [] in
  for i = f.Flat.req_off.(obj + 1) - 1 downto f.Flat.req_off.(obj) do
    acc := f.Flat.req_leaf.(i) :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>workload: %d objects on %d nodes@," (num_objects t)
    (Tree.n t.tree);
  for x = 0 to num_objects t - 1 do
    Format.fprintf ppf "  object %d: kappa=%d, weight=%d, leaves=%d@," x
      (write_contention t ~obj:x) (total_weight t ~obj:x)
      (List.length (requesting_leaves t ~obj:x))
  done;
  Format.fprintf ppf "@]"
