module Tree = Hbn_tree.Tree

type t = {
  tree : Tree.t;
  reads : int array array;
  writes : int array array;
}

let check_matrix tree label m =
  Array.iteri
    (fun x row ->
      if Array.length row <> Tree.n tree then
        invalid_arg
          (Printf.sprintf "Workload.make: %s row %d has wrong length" label x);
      Array.iteri
        (fun v rate ->
          if rate < 0 then
            invalid_arg
              (Printf.sprintf "Workload.make: negative %s rate at (%d, %d)"
                 label x v);
          if rate > 0 && not (Tree.is_leaf tree v) then
            invalid_arg
              (Printf.sprintf
                 "Workload.make: %s rate on non-processor node %d (object %d)"
                 label v x))
        row)
    m

let make tree ~reads ~writes =
  if Array.length reads <> Array.length writes then
    invalid_arg "Workload.make: reads/writes object counts differ";
  check_matrix tree "read" reads;
  check_matrix tree "write" writes;
  { tree; reads; writes }

let empty tree ~objects =
  if objects < 0 then invalid_arg "Workload.empty: negative object count";
  {
    tree;
    reads = Array.init objects (fun _ -> Array.make (Tree.n tree) 0);
    writes = Array.init objects (fun _ -> Array.make (Tree.n tree) 0);
  }

let tree t = t.tree

let num_objects t = Array.length t.reads

let reads t ~obj v = t.reads.(obj).(v)

let writes t ~obj v = t.writes.(obj).(v)

let weight t ~obj v = t.reads.(obj).(v) + t.writes.(obj).(v)

let check_update t v rate =
  if rate < 0 then invalid_arg "Workload.set: negative rate";
  if not (Tree.is_leaf t.tree v) then
    invalid_arg "Workload.set: only processors issue requests"

let set_read t ~obj v rate =
  check_update t v rate;
  t.reads.(obj).(v) <- rate

let set_write t ~obj v rate =
  check_update t v rate;
  t.writes.(obj).(v) <- rate

let write_contention t ~obj = Array.fold_left ( + ) 0 t.writes.(obj)

let total_weight t ~obj =
  Array.fold_left ( + ) 0 t.reads.(obj) + Array.fold_left ( + ) 0 t.writes.(obj)

let total_requests t =
  let sum = ref 0 in
  for x = 0 to num_objects t - 1 do
    sum := !sum + total_weight t ~obj:x
  done;
  !sum

let read_vector t ~obj = Array.copy t.reads.(obj)

let write_vector t ~obj = Array.copy t.writes.(obj)

let weight_vector t ~obj =
  Array.mapi (fun v r -> r + t.writes.(obj).(v)) t.reads.(obj)

let requesting_leaves t ~obj =
  List.filter (fun v -> weight t ~obj v > 0) (Tree.leaves t.tree)

let pp ppf t =
  Format.fprintf ppf "@[<v>workload: %d objects on %d nodes@," (num_objects t)
    (Tree.n t.tree);
  for x = 0 to num_objects t - 1 do
    Format.fprintf ppf "  object %d: kappa=%d, weight=%d, leaves=%d@," x
      (write_contention t ~obj:x) (total_weight t ~obj:x)
      (List.length (requesting_leaves t ~obj:x))
  done;
  Format.fprintf ppf "@]"
