(** Shared data objects and access frequencies.

    A workload pairs a hierarchical bus network with the read and write
    frequency functions [h_r, h_w : P × X → N] of the static data
    management problem. Only processors (leaves) issue requests. *)

type t

(** {1 Flat (structure-of-arrays) representation}

    The hot pipeline's view of the workload: all per-object weight
    vectors packed row-major into one shared [int array], per-object
    totals in parallel arrays, and the requesting-leaf sets as one CSR
    ([req_off]/[req_leaf]). Built on first access, cached until the next
    {!set_read}/{!set_write}, immutable once built — force it with
    {!flat} before fanning tasks out, then read it freely from any
    domain. Treat every array as read-only. *)

module Flat : sig
  type t = private {
    nodes : int;  (** row stride: the tree's node count *)
    objects : int;
    weights : int array;
        (** [objects × nodes] row-major; [h_r + h_w] per (object, node) *)
    total_reads : int array;  (** per object *)
    kappa : int array;  (** per object: [κ_x], the total writes *)
    req_off : int array;
        (** CSR offsets into [req_leaf], [objects + 1] entries *)
    req_leaf : int array;
        (** requesting leaves, ascending within each object's slice *)
  }

  val row_base : t -> obj:int -> int
  (** Index of [(obj, node 0)] in [weights]: [obj * nodes]. *)

  val weight : t -> obj:int -> int -> int

  val kappa : t -> obj:int -> int

  val total_weight : t -> obj:int -> int

  val num_requesting : t -> obj:int -> int

  val iter_requesting : t -> obj:int -> (int -> unit) -> unit
  (** Requesting leaves in ascending order, no allocation. *)
end

val flat : t -> Flat.t
(** The (cached) flat representation. *)

(** {1 Per-object instance views}

    Everything the per-object pipeline stages need — the write contention
    [κ_x], read/write totals, the requesting processors, and the weight
    vector that feeds the center-of-gravity computation — gathered in one
    O(n) scan per object instead of one scan per consumer. Views are
    cached on first access and invalidated by {!set_read}/{!set_write};
    the records themselves are immutable, so a forced cache ({!views})
    can be read concurrently from several domains. *)

module View : sig
  type t = {
    obj : int;
    kappa : int;  (** write contention [κ_x = Σ_P h_w(P, x)] *)
    total_reads : int;
    total_writes : int;  (** equals [kappa] *)
    requesting : int list;  (** leaves with nonzero weight, ascending *)
    weights : int array;
        (** [h_r + h_w] per node — a materialized copy of the object's
            {!Flat} row; treat as read-only *)
  }

  val total_weight : t -> int
  (** [total_reads + total_writes]. *)
end

val view : t -> obj:int -> View.t
(** The (cached) instance view of one object. *)

val views : t -> View.t array
(** All views, forcing every cache slot — call before handing the
    workload to concurrent readers ({!Hbn_exec.Exec} tasks). *)

val make : Hbn_tree.Tree.t -> reads:int array array -> writes:int array array -> t
(** [make tree ~reads ~writes] with [reads.(x).(v)] the read frequency of
    node [v] for object [x] (same shape for [writes]). Raises
    [Invalid_argument] if shapes disagree with the tree, any rate is
    negative, or a non-leaf node has a nonzero rate. *)

val empty : Hbn_tree.Tree.t -> objects:int -> t
(** All-zero frequencies for [objects] shared objects. *)

val tree : t -> Hbn_tree.Tree.t

val num_objects : t -> int

val reads : t -> obj:int -> int -> int
(** [reads t ~obj v] is [h_r(v, obj)]. *)

val writes : t -> obj:int -> int -> int

val weight : t -> obj:int -> int -> int
(** [weight t ~obj v] is [h(v) = h_r(v, obj) + h_w(v, obj)]. *)

val set_read : t -> obj:int -> int -> int -> unit
(** [set_read t ~obj v rate] updates a frequency in place. Raises
    [Invalid_argument] on non-leaves or negative rates. *)

val set_write : t -> obj:int -> int -> int -> unit

val write_contention : t -> obj:int -> int
(** [write_contention t ~obj] is [κ_x = Σ_P h_w(P, x)]. *)

val total_weight : t -> obj:int -> int
(** [Σ_P (h_r + h_w)(P, x)]. *)

val total_requests : t -> int
(** Total over all objects and processors. *)

val read_vector : t -> obj:int -> int array
(** Per-node read frequencies (a fresh copy). *)

val write_vector : t -> obj:int -> int array

val weight_vector : t -> obj:int -> int array

val requesting_leaves : t -> obj:int -> int list
(** Leaves with nonzero weight for the object, ascending. *)

val pp : Format.formatter -> t -> unit
