module Tree = Hbn_tree.Tree

let to_string w =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# workload\n";
  Buffer.add_string buf (Printf.sprintf "objects %d\n" (Workload.num_objects w));
  for obj = 0 to Workload.num_objects w - 1 do
    List.iter
      (fun v ->
        let r = Workload.reads w ~obj v and wr = Workload.writes w ~obj v in
        if r > 0 || wr > 0 then
          Buffer.add_string buf (Printf.sprintf "rate %d %d %d %d\n" obj v r wr))
      (Tree.leaves (Workload.tree w))
  done;
  Buffer.contents buf

let of_string tree s =
  let objects = ref (-1) in
  let rates = ref [] in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let words =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun w -> w <> "")
    in
    let int_arg w =
      match int_of_string_opt w with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "line %d: not an integer: %s" lineno w)
    in
    let ( let* ) r f = Result.bind r f in
    match words with
    | [] -> Ok ()
    | [ "objects"; n ] ->
      let* n = int_arg n in
      if !objects >= 0 then error lineno "duplicate objects declaration"
      else begin
        objects := n;
        Ok ()
      end
    | [ "rate"; obj; node; r; wr ] ->
      let* obj = int_arg obj in
      let* node = int_arg node in
      let* r = int_arg r in
      let* wr = int_arg wr in
      rates := (lineno, obj, node, r, wr) :: !rates;
      Ok ()
    | w :: _ -> error lineno (Printf.sprintf "unknown directive %S" w)
  in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      match parse_line lineno line with
      | Ok () -> go (lineno + 1) rest
      | Error _ as e -> e)
  in
  match go 1 (String.split_on_char '\n' s) with
  | Error _ as e -> e
  | Ok () ->
    if !objects < 0 then Error "missing objects declaration"
    else begin
      let w = Workload.empty tree ~objects:!objects in
      let problem = ref None in
      (* A (object, node) pair may be declared once. Accumulating
         duplicates silently used to double rates on concatenated or
         hand-edited files; the error names both lines involved. *)
      let declared = Hashtbl.create 64 in
      List.iter
        (fun (lineno, obj, node, r, wr) ->
          if !problem = None then
            if obj < 0 || obj >= !objects then
              problem := Some (Printf.sprintf "line %d: object %d out of range" lineno obj)
            else if node < 0 || node >= Tree.n tree then
              problem := Some (Printf.sprintf "line %d: node %d out of range" lineno node)
            else
              match Hashtbl.find_opt declared (obj, node) with
              | Some first ->
                problem :=
                  Some
                    (Printf.sprintf
                       "line %d: duplicate rate for object %d at node %d \
                        (first declared on line %d)"
                       lineno obj node first)
              | None -> (
                Hashtbl.add declared (obj, node) lineno;
                match
                  Workload.set_read w ~obj node r;
                  Workload.set_write w ~obj node wr
                with
                | () -> ()
                | exception Invalid_argument msg ->
                  problem := Some (Printf.sprintf "line %d: %s" lineno msg)))
        (List.rev !rates);
      match !problem with None -> Ok w | Some msg -> Error msg
    end

let save w ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string w))

let load tree ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string tree (In_channel.input_all ic))
