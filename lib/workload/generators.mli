(** Synthetic workload families for the experiments.

    Each generator is deterministic in its PRNG so tables regenerate
    exactly. The families mirror the applications named in the paper's
    introduction: global variables of a parallel program (uniform and
    hotspot), pages of a virtual shared memory (producer–consumer), and
    WWW pages (Zipf popularity, read-mostly). *)

open Hbn_prng

val uniform :
  prng:Prng.t ->
  Hbn_tree.Tree.t ->
  objects:int ->
  max_rate:int ->
  Workload.t
(** Every (processor, object) pair independently draws read and write rates
    uniformly from [\[0, max_rate\]]. *)

val zipf_popularity :
  prng:Prng.t ->
  Hbn_tree.Tree.t ->
  objects:int ->
  requests_per_leaf:int ->
  exponent:float ->
  write_fraction:float ->
  Workload.t
(** Each processor issues [requests_per_leaf] requests; the target object of
    each request is Zipf-distributed with the given [exponent] and each
    request is a write with probability [write_fraction]. Models WWW-page
    or cache-line popularity skew. *)

val hotspot :
  prng:Prng.t ->
  Hbn_tree.Tree.t ->
  objects:int ->
  writers_per_object:int ->
  write_rate:int ->
  read_rate:int ->
  Workload.t
(** Per object, a random set of [writers_per_object] processors write with
    rate [write_rate]; every processor reads with a rate uniform in
    [\[0, read_rate\]]. High write contention concentrated on few leaves. *)

val producer_consumer :
  prng:Prng.t ->
  Hbn_tree.Tree.t ->
  objects:int ->
  consumers:int ->
  rate:int ->
  Workload.t
(** Per object, one random producer writes [rate] times and [consumers]
    random processors read [rate] times each. *)

val read_only :
  prng:Prng.t ->
  Hbn_tree.Tree.t ->
  objects:int ->
  max_rate:int ->
  Workload.t
(** Uniform reads, zero writes — the [κ_x = 0] degenerate family. *)

val local_with_background :
  prng:Prng.t ->
  Hbn_tree.Tree.t ->
  objects:int ->
  local_rate:int ->
  background_rate:int ->
  Workload.t
(** Per object, one "home" processor accesses with [local_rate] reads and
    writes while all others access with rates up to [background_rate]:
    strong locality, the regime where the nibble strategy places copies
    deep in the tree. *)

val bsp_neighbor_exchange :
  Hbn_tree.Tree.t -> supersteps:int -> neighbors:int -> Workload.t
(** A deterministic BSP-style parallel program: one object per processor
    (its halo/boundary data). Per superstep each processor writes its own
    object once and reads the objects of its [neighbors] nearest
    index-neighbors (in leaf order, wrapping around) — the classic
    stencil exchange pattern of the paper's "global variables in a
    parallel program" application. *)
