module Tree = Hbn_tree.Tree
module Prng = Hbn_prng.Prng

let uniform ~prng tree ~objects ~max_rate =
  let w = Workload.empty tree ~objects in
  let leaves = Tree.leaves tree in
  for x = 0 to objects - 1 do
    List.iter
      (fun v ->
        Workload.set_read w ~obj:x v (Prng.int_in prng 0 max_rate);
        Workload.set_write w ~obj:x v (Prng.int_in prng 0 max_rate))
      leaves
  done;
  w

let zipf_popularity ~prng tree ~objects ~requests_per_leaf ~exponent
    ~write_fraction =
  if objects <= 0 then invalid_arg "Generators.zipf_popularity: no objects";
  let w = Workload.empty tree ~objects in
  let sample = Prng.zipf_sampler ~n:objects ~s:exponent in
  List.iter
    (fun v ->
      for _ = 1 to requests_per_leaf do
        let x = sample prng in
        if Prng.float prng 1.0 < write_fraction then
          Workload.set_write w ~obj:x v (Workload.writes w ~obj:x v + 1)
        else Workload.set_read w ~obj:x v (Workload.reads w ~obj:x v + 1)
      done)
    (Tree.leaves tree);
  w

let hotspot ~prng tree ~objects ~writers_per_object ~write_rate ~read_rate =
  let w = Workload.empty tree ~objects in
  let leaves = Array.of_list (Tree.leaves tree) in
  for x = 0 to objects - 1 do
    Array.iter
      (fun v -> Workload.set_read w ~obj:x v (Prng.int_in prng 0 read_rate))
      leaves;
    let order = Array.copy leaves in
    Prng.shuffle prng order;
    let writers = min writers_per_object (Array.length order) in
    for i = 0 to writers - 1 do
      Workload.set_write w ~obj:x order.(i) write_rate
    done
  done;
  w

let producer_consumer ~prng tree ~objects ~consumers ~rate =
  let w = Workload.empty tree ~objects in
  let leaves = Array.of_list (Tree.leaves tree) in
  for x = 0 to objects - 1 do
    let order = Array.copy leaves in
    Prng.shuffle prng order;
    Workload.set_write w ~obj:x order.(0) rate;
    let k = min consumers (Array.length order - 1) in
    for i = 1 to k do
      Workload.set_read w ~obj:x order.(i) rate
    done
  done;
  w

let read_only ~prng tree ~objects ~max_rate =
  let w = Workload.empty tree ~objects in
  for x = 0 to objects - 1 do
    List.iter
      (fun v -> Workload.set_read w ~obj:x v (Prng.int_in prng 0 max_rate))
      (Tree.leaves tree)
  done;
  w

let local_with_background ~prng tree ~objects ~local_rate ~background_rate =
  let w = Workload.empty tree ~objects in
  let leaves = Array.of_list (Tree.leaves tree) in
  for x = 0 to objects - 1 do
    Array.iter
      (fun v ->
        Workload.set_read w ~obj:x v (Prng.int_in prng 0 background_rate);
        Workload.set_write w ~obj:x v (Prng.int_in prng 0 background_rate))
      leaves;
    let home = leaves.(Prng.int prng (Array.length leaves)) in
    Workload.set_read w ~obj:x home local_rate;
    Workload.set_write w ~obj:x home local_rate
  done;
  w

let bsp_neighbor_exchange tree ~supersteps ~neighbors =
  if supersteps < 1 then
    invalid_arg "Generators.bsp_neighbor_exchange: supersteps must be >= 1";
  if neighbors < 0 then
    invalid_arg "Generators.bsp_neighbor_exchange: negative neighbors";
  let leaves = Array.of_list (Tree.leaves tree) in
  let n = Array.length leaves in
  let w = Workload.empty tree ~objects:n in
  for i = 0 to n - 1 do
    Workload.set_write w ~obj:i leaves.(i) supersteps;
    for d = 1 to min neighbors (n - 1) do
      let reader = leaves.((i + d) mod n) in
      Workload.set_read w ~obj:i reader
        (Workload.reads w ~obj:i reader + supersteps);
      let reader' = leaves.(((i - d) + n) mod n) in
      Workload.set_read w ~obj:i reader'
        (Workload.reads w ~obj:i reader' + supersteps)
    done
  done;
  w
