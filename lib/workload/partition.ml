module Tree = Hbn_tree.Tree
module Prng = Hbn_prng.Prng

type instance = { items : int array }

let make items =
  if items = [] then invalid_arg "Partition.make: empty instance";
  List.iter
    (fun k -> if k <= 0 then invalid_arg "Partition.make: items must be positive")
    items;
  { items = Array.of_list items }

let sum i = Array.fold_left ( + ) 0 i.items

let half i =
  let s = sum i in
  if s mod 2 = 0 then Some (s / 2) else None

let reachable i =
  (* reachable.(v) = can some subset sum to v *)
  let s = sum i in
  let dp = Array.make (s + 1) false in
  dp.(0) <- true;
  Array.iter
    (fun k ->
      for v = s downto k do
        if dp.(v - k) then dp.(v) <- true
      done)
    i.items;
  dp

let achievable_sums = reachable

let solvable i =
  match half i with
  | None -> false
  | Some k -> (reachable i).(k)

let find_subset i =
  match half i with
  | None -> None
  | Some k ->
    let n = Array.length i.items in
    (* dp.(v) = index of the last item used to first reach v, or -2 for
       unreached, -1 for the empty subset. *)
    let dp = Array.make (sum i + 1) (-2) in
    dp.(0) <- -1;
    for idx = 0 to n - 1 do
      let item = i.items.(idx) in
      for v = sum i downto item do
        if dp.(v) = -2 && dp.(v - item) <> -2 && dp.(v - item) < idx then
          dp.(v) <- idx
      done
    done;
    if dp.(k) = -2 then None
    else begin
      let rec collect v acc =
        if v = 0 then acc
        else
          let idx = dp.(v) in
          collect (v - i.items.(idx)) (idx :: acc)
      in
      Some (collect k [])
    end

let random_yes ~prng ~items ~max_item =
  if items < 2 then invalid_arg "Partition.random_yes: need >= 2 items";
  (* Pairs of equal items split one per half, so the instance is always
     solvable; an odd count uses one balanced triple (2w, w, w) instead of
     its last pair. *)
  let pairs = if items mod 2 = 0 then items / 2 else (items - 3) / 2 in
  let values = ref [] in
  for _ = 1 to pairs do
    let v = Prng.int_in prng 1 max_item in
    values := v :: v :: !values
  done;
  if items mod 2 = 1 then begin
    let w = Prng.int_in prng 1 (max 1 (max_item / 2)) in
    values := (2 * w) :: w :: w :: !values
  end;
  let arr = Array.of_list !values in
  Prng.shuffle prng arr;
  { items = arr }

let random ~prng ~items ~max_item =
  if items < 1 then invalid_arg "Partition.random: need >= 1 item";
  let arr = Array.init items (fun _ -> Prng.int_in prng 1 max_item) in
  let s = Array.fold_left ( + ) 0 arr in
  if s mod 2 = 0 then { items = arr }
  else { items = Array.append arr [| 1 |] }

type gadget = {
  tree : Tree.t;
  workload : Workload.t;
  k : int;
  node_a : int;
  node_b : int;
  node_s : int;
  node_sbar : int;
  object_y : int;
}

let gadget i =
  let k =
    match half i with
    | Some k -> k
    | None -> invalid_arg "Partition.gadget: item sum must be even"
  in
  let n = Array.length i.items in
  (* Node 0 is the bus; processors: 1 = a, 2 = b, 3 = s, 4 = s̄. The bus
     bandwidth exceeds any possible bus load so edges dominate, matching
     the proof ("the bandwidth of the inner node is sufficiently large"). *)
  let big = (16 * k) + (8 * n) + 64 in
  let kinds =
    Array.init 5 (fun v -> if v = 0 then Tree.Bus else Tree.Processor)
  in
  let edges = List.init 4 (fun p -> (0, p + 1, 1)) in
  let tree = Tree.make ~kinds ~edges ~bus_bandwidth:(fun _ -> big) () in
  let workload = Workload.empty tree ~objects:(n + 1) in
  let object_y = n in
  Workload.set_write workload ~obj:object_y 1 ((4 * k) + 1);
  Workload.set_write workload ~obj:object_y 2 (2 * k);
  Array.iteri
    (fun idx ki ->
      List.iter
        (fun v -> Workload.set_write workload ~obj:idx v ki)
        [ 1; 2; 3; 4 ])
    i.items;
  {
    tree;
    workload;
    k;
    node_a = 1;
    node_b = 2;
    node_s = 3;
    node_sbar = 4;
    object_y;
  }

let yes_placement g subset =
  let n = Workload.num_objects g.workload - 1 in
  let in_subset = Array.make n false in
  List.iter
    (fun idx ->
      if idx < 0 || idx >= n then invalid_arg "Partition.yes_placement: index";
      in_subset.(idx) <- true)
    subset;
  let xs =
    List.init n (fun idx ->
        (idx, if in_subset.(idx) then g.node_s else g.node_sbar))
  in
  (g.object_y, g.node_a) :: xs
