type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output mixing (Steele, Lea & Flood 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = bits64 g in
  { state = mix64 seed }

let copy g = { state = g.state }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bias is < 2^-40 for the bounds used
     in workload synthesis. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  v mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let geometric g ~p =
  if p <= 0. || p > 1. then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p = 1. then 0
  else
    let u = float g 1.0 in
    let u = if u = 0. then epsilon_float else u in
    int_of_float (floor (log u /. log (1. -. p)))

let zipf_cdf ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. (1. /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !total
  done;
  Array.iteri (fun i v -> cdf.(i) <- v /. !total) cdf;
  cdf

let search_cdf cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let zipf g ~n ~s =
  let cdf = zipf_cdf ~n ~s in
  search_cdf cdf (float g 1.0)

let zipf_sampler ~n ~s =
  let cdf = zipf_cdf ~n ~s in
  fun g -> search_cdf cdf (float g 1.0)

(* Stateless hashing for schedule-style randomness: callers that must
   answer "is event (a, b, c) selected?" in any order and from any domain
   cannot thread a mutable generator through; they hash the coordinates
   instead. Each word is folded through the SplitMix64 finalizer, so
   adjacent coordinates land in unrelated points of the output space. *)
let hash ~seed data =
  let st = ref (mix64 (Int64.of_int seed)) in
  List.iter
    (fun v ->
      st := mix64 (Int64.add (Int64.mul !st golden_gamma) (Int64.of_int v)))
    data;
  !st

let hash_float ~seed data =
  Int64.to_float (Int64.shift_right_logical (hash ~seed data) 11)
  /. 9007199254740992.0 (* 2^53 *)

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int g (List.length xs))
