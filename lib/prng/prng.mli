(** Deterministic splittable pseudo-random number generation.

    All experiment workloads are generated from explicit seeds so that every
    table in EXPERIMENTS.md is reproducible bit-for-bit; nothing in this
    library reads the clock. The generator is SplitMix64 (Steele, Lea &
    Flood, OOPSLA 2014), which is adequate for workload synthesis and cheap
    to split into independent streams. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] is a generator deterministically derived from [seed]. *)

val split : t -> t
(** [split g] advances [g] and returns a statistically independent child
    generator. Useful for giving each object or each trial its own stream
    so adding trials does not perturb earlier ones. *)

val copy : t -> t
(** [copy g] duplicates the current state (same future outputs). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    when [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val geometric : t -> p:float -> int
(** [geometric g ~p] is the number of failures before the first success of a
    Bernoulli([p]) process, i.e. support [{0, 1, ...}]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf g ~n ~s] samples from a Zipf distribution with exponent [s] over
    ranks [\[0, n)] by inverse-CDF over the precomputed normalizer (linear
    scan; fine for the [n] used in workloads). *)

val zipf_sampler : n:int -> s:float -> t -> int
(** [zipf_sampler ~n ~s] precomputes the CDF once and returns a sampling
    function using binary search; use when drawing many samples. *)

val hash : seed:int -> int list -> int64
(** [hash ~seed data] is a stateless, order-sensitive hash of the integer
    coordinates [data] under [seed] (SplitMix64 finalizer per word). Used
    for schedule-style randomness — e.g. "does the fault plan drop the
    message of round [r] on edge [e]?" — where queries arrive in arbitrary
    order and must not perturb each other. *)

val hash_float : seed:int -> int list -> float
(** [hash_float ~seed data] maps {!hash} uniformly into [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)
