(** Step 2 of the extended-nibble strategy: the deletion algorithm.

    Starting from the nibble placement of one object [x], the algorithm
    removes rarely used copies: processing the connected copy component
    [T(x)] level by level from the deepest level towards its root (the
    gravity center), a copy serving fewer than [κ_x] requests is deleted
    and its requests are reassigned to the copy on its parent; a deleted
    root reassigns to the nearest surviving copy. Afterwards, a copy
    serving more than [2κ_x] requests is split into co-located clones each
    serving between [κ_x] and [2κ_x] requests (Observation 3.2).

    The resulting "modified nibble placement" at most doubles the load of
    the nibble placement on every edge. *)

module Workload = Hbn_workload.Workload
module Nibble = Hbn_nibble.Nibble

type outcome = {
  copies : Copy.t list;  (** surviving copies (clones share a node) *)
  deletions : int;
  splits : int;  (** number of extra clones created *)
  ids_used : int;  (** copy ids consumed: [|cs.nodes| + splits] *)
}

val run :
  ?first_id:int ->
  ?scratch:Hbn_tree.Flat.Scratch.t ->
  Workload.t ->
  Nibble.copy_set ->
  outcome
(** [run w cs] executes the deletion algorithm for object [cs.obj]. The
    function is pure per object: copy ids are [first_id] (default 0)
    onwards, allocated deterministically, and no shared state is touched
    — so the strategy driver can fan objects out over domains and
    renumber ids into one global sequence at merge time (the
    ["deletion.object"] trace event is likewise emitted by the driver's
    sequential merge, not here). Requires [cs.nodes <> []] and [κ_x > 0];
    the strategy driver handles the degenerate cases separately.
    [scratch] (fresh by default) must belong to the calling domain; the
    driver hands each worker slot its own. *)

val split_sizes : served:int -> kappa:int -> int list
(** The bucket sizes used when splitting a copy: [max 1 (served / kappa)]
    near-equal parts, each in [\[kappa, 2·kappa\]] whenever
    [served >= kappa > 0]. Exposed for property tests. *)
