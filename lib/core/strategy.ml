module Tree = Hbn_tree.Tree
module Flat = Hbn_tree.Flat
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Exec = Hbn_exec.Exec
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink
module Attribution = Hbn_obs.Attribution

type result = {
  placement : Placement.t;
  nibble : Placement.t;
  modified : Placement.t;
  tau_max : int;
  mapping : Mapping.stats option;
  deletions : int;
  splits : int;
  mapped_objects : int list;
  copies : Copy.t list;
}

(* Per-object intermediate state after Step 2. *)
type stage =
  | Unused
  | Read_only of int list  (* requesting leaves; copies serve locally *)
  | Copies of Copy.t list

(* Building one object's placement from its stage is pure (all copy
   mutation is over by the time this runs), so it fans out too. *)
let placement_of_stage ?exec w stages =
  Exec.map_chunked
    (Option.value exec ~default:Exec.sequential)
    (Array.length stages)
    (fun obj ->
      match stages.(obj) with
      | Unused -> { Placement.copies = []; assigns = [] }
      | Read_only leaves ->
        let assigns =
          List.map
            (fun leaf ->
              {
                Placement.leaf;
                server = leaf;
                reads = Workload.reads w ~obj leaf;
                writes = Workload.writes w ~obj leaf;
              })
            leaves
        in
        { Placement.copies = leaves; assigns }
      | Copies cs ->
        let copies =
          List.sort_uniq compare (List.map (fun c -> c.Copy.node) cs)
        in
        let assigns =
          List.concat_map
            (fun c ->
              List.filter_map
                (fun g ->
                  if Nibble.group_weight g = 0 then None
                  else
                    Some
                      {
                        Placement.leaf = g.Nibble.leaf;
                        server = c.Copy.node;
                        reads = g.Nibble.reads;
                        writes = g.Nibble.writes;
                      })
                c.Copy.groups)
            cs
        in
        { Placement.copies; assigns })

(* The pure per-object stage of Step 2: local ids from 0, no shared state,
   no tracing — safe on any domain. The sequential merge below renumbers
   ids into one global sequence and emits the per-object trace events. *)
let stage_object ~scratch w cs =
  let obj = cs.Nibble.obj in
  let wf = Workload.flat w in
  if Workload.Flat.total_weight wf ~obj = 0 then (Unused, 0, 0, 0)
  else if Workload.Flat.kappa wf ~obj = 0 then
    (Read_only (Workload.requesting_leaves w ~obj), 0, 0, 0)
  else begin
    let outcome = Deletion.run ~scratch w cs in
    ( Copies outcome.Deletion.copies,
      outcome.Deletion.deletions,
      outcome.Deletion.splits,
      outcome.Deletion.ids_used )
  end

(* One attribution snapshot per pipeline phase, as [strategy.attribution]
   events tagged with the phase name. Guarded by [Trace.enabled] so runs
   without a sink never build the tables. *)
let emit_attribution phase w p =
  if Trace.enabled () then
    List.iter Trace.emit
      (Attribution.events ~name:"strategy.attribution"
         ~attrs:[ ("phase", Sink.Str phase) ]
         (Attribution.of_placement w p))

let run ?(move_leaf_copies = false) ?(verify = false) ?on_mapping_round
    ?(exec = Exec.sequential) w =
  let sp_run = Trace.span "strategy.run" in
  let tree = Workload.tree w in
  (* Force the shared flat structures before fanning out: the tasks then
     only read immutable arrays, through one scratch per executor slot. *)
  let num_objects = Workload.num_objects w in
  ignore (Workload.flat w);
  let fl = Flat.of_tree tree in
  let scratches =
    Array.init (Exec.jobs exec) (fun _ -> Flat.Scratch.create fl)
  in
  let scratch () = scratches.(Exec.current_worker ()) in
  let sp_nibble = Trace.span "strategy.nibble" in
  let step1 =
    Exec.map_chunked exec num_objects (fun obj ->
        let cs = Nibble.place ~scratch:(scratch ()) w ~obj in
        (cs, Placement.nearest_object w ~obj ~copies:cs.Nibble.nodes))
  in
  let sets = Array.map fst step1 in
  let nibble_placement = Array.map snd step1 in
  if Trace.enabled () then
    Trace.finish sp_nibble
      ~attrs:
        [
          ("objects", Sink.Int (Array.length sets));
          ( "copies",
            Sink.Int
              (Array.fold_left
                 (fun a cs -> a + List.length cs.Nibble.nodes)
                 0 sets) );
        ];
  emit_attribution "nibble" w nibble_placement;
  let sp_deletion = Trace.span "strategy.deletion" in
  let staged =
    Exec.map_chunked exec num_objects (fun obj ->
        stage_object ~scratch:(scratch ()) w sets.(obj))
  in
  (* Deterministic merge, in object order: global totals, copy-id
     renumbering (bit-identical to the old shared-counter allocation at
     any job count), and the per-object trace events. *)
  let deletions = ref 0 and splits = ref 0 in
  let next_id = ref 0 in
  let stages =
    Array.mapi
      (fun obj (stage, dels, spls, ids_used) ->
        deletions := !deletions + dels;
        splits := !splits + spls;
        let stage =
          match stage with
          | Unused | Read_only _ -> stage
          | Copies cs ->
            let base = !next_id in
            Copies (List.map (fun c -> { c with Copy.id = base + c.Copy.id }) cs)
        in
        next_id := !next_id + ids_used;
        (if Trace.enabled () then
           match stage with
           | Unused | Read_only _ -> ()
           | Copies cs ->
             Trace.count ~by:dels "deletion.deleted";
             Trace.count ~by:spls "deletion.split_clones";
             Trace.event "deletion.object"
               ~attrs:
                 [
                   ("obj", Sink.Int obj);
                   ("kappa", Sink.Int (Workload.write_contention w ~obj));
                   ("deletions", Sink.Int dels);
                   ("splits", Sink.Int spls);
                   ("survivors", Sink.Int (List.length cs));
                 ]);
        stage)
      staged
  in
  if Trace.enabled () then
    Trace.finish sp_deletion
      ~attrs:
        [
          ("deletions", Sink.Int !deletions);
          ("splits", Sink.Int !splits);
        ];
  let modified = placement_of_stage ~exec w stages in
  emit_attribution "deletion" w modified;
  let all_copies =
    Array.to_list stages
    |> List.concat_map (function Copies cs -> cs | Unused | Read_only _ -> [])
  in
  let has_bus_copy cs =
    List.exists (fun c -> not (Tree.is_leaf tree c.Copy.node)) cs
  in
  let sp_mapping = Trace.span "strategy.mapping" in
  let mapped_objects = ref [] in
  let movable =
    Array.to_list stages
    |> List.mapi (fun obj stage -> (obj, stage))
    |> List.concat_map (fun (obj, stage) ->
           match stage with
           | Unused | Read_only _ -> []
           | Copies cs ->
             if has_bus_copy cs then begin
               mapped_objects := obj :: !mapped_objects;
               if move_leaf_copies then cs
               else
                 List.filter
                   (fun c -> not (Tree.is_leaf tree c.Copy.node))
                   cs
             end
             else [])
  in
  let mapping =
    match movable with
    | [] -> None
    | _ :: _ ->
      let basic_up, basic_down = Mapping.basic_loads tree all_copies in
      Some
        (Mapping.run ~verify ?on_round:on_mapping_round tree ~basic_up
           ~basic_down ~movable)
  in
  if Trace.enabled () then
    Trace.finish sp_mapping
      ~attrs:
        (let tau, up, down =
           match mapping with
           | None -> (0, 0, 0)
           | Some s -> (s.Mapping.tau_max, s.Mapping.moves_up, s.Mapping.moves_down)
         in
         [
           ("tau_max", Sink.Int tau);
           ("mapped_objects", Sink.Int (List.length !mapped_objects));
           ("moves_up", Sink.Int up);
           ("moves_down", Sink.Int down);
         ]);
  let placement = placement_of_stage ~exec w stages in
  emit_attribution "mapping" w placement;
  let result =
    {
      placement;
      nibble = nibble_placement;
      modified;
      tau_max = (match mapping with None -> 0 | Some s -> s.Mapping.tau_max);
      mapping;
      deletions = !deletions;
      splits = !splits;
      mapped_objects = List.rev !mapped_objects;
      copies = all_copies;
    }
  in
  if Trace.enabled () then begin
    Trace.count ~by:result.deletions "strategy.deletions";
    Trace.count ~by:result.splits "strategy.splits";
    Trace.finish sp_run
      ~attrs:
        [
          ("deletions", Sink.Int result.deletions);
          ("splits", Sink.Int result.splits);
          ("tau_max", Sink.Int result.tau_max);
          ("mapped_objects", Sink.Int (List.length result.mapped_objects));
        ]
  end;
  result

let congestion ?move_leaf_copies ?exec w =
  Placement.congestion ?exec w (run ?move_leaf_copies ?exec w).placement
