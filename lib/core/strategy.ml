module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink

type result = {
  placement : Placement.t;
  nibble : Placement.t;
  modified : Placement.t;
  tau_max : int;
  mapping : Mapping.stats option;
  deletions : int;
  splits : int;
  mapped_objects : int list;
  copies : Copy.t list;
}

(* Per-object intermediate state after Step 2. *)
type stage =
  | Unused
  | Read_only of int list  (* requesting leaves; copies serve locally *)
  | Copies of Copy.t list

let placement_of_stage w stages =
  Array.init (Array.length stages) (fun obj ->
      match stages.(obj) with
      | Unused -> { Placement.copies = []; assigns = [] }
      | Read_only leaves ->
        let assigns =
          List.map
            (fun leaf ->
              {
                Placement.leaf;
                server = leaf;
                reads = Workload.reads w ~obj leaf;
                writes = Workload.writes w ~obj leaf;
              })
            leaves
        in
        { Placement.copies = leaves; assigns }
      | Copies cs ->
        let copies =
          List.sort_uniq compare (List.map (fun c -> c.Copy.node) cs)
        in
        let assigns =
          List.concat_map
            (fun c ->
              List.filter_map
                (fun g ->
                  if Nibble.group_weight g = 0 then None
                  else
                    Some
                      {
                        Placement.leaf = g.Nibble.leaf;
                        server = c.Copy.node;
                        reads = g.Nibble.reads;
                        writes = g.Nibble.writes;
                      })
                c.Copy.groups)
            cs
        in
        { Placement.copies; assigns })

let run ?(move_leaf_copies = false) ?(verify = false) ?on_mapping_round w =
  let sp_run = Trace.span "strategy.run" in
  let tree = Workload.tree w in
  let sp_nibble = Trace.span "strategy.nibble" in
  let sets = Nibble.place_all w in
  let nibble_placement =
    Placement.nearest w ~copies:(Array.map (fun cs -> cs.Nibble.nodes) sets)
  in
  if Trace.enabled () then
    Trace.finish sp_nibble
      ~attrs:
        [
          ("objects", Sink.Int (Array.length sets));
          ( "copies",
            Sink.Int
              (Array.fold_left
                 (fun a cs -> a + List.length cs.Nibble.nodes)
                 0 sets) );
        ];
  let sp_deletion = Trace.span "strategy.deletion" in
  let next_id = ref 0 in
  let deletions = ref 0 and splits = ref 0 in
  let stages =
    Array.map
      (fun cs ->
        let obj = cs.Nibble.obj in
        if Workload.total_weight w ~obj = 0 then Unused
        else if Workload.write_contention w ~obj = 0 then
          Read_only (Workload.requesting_leaves w ~obj)
        else begin
          let outcome = Deletion.run ~next_id w cs in
          deletions := !deletions + outcome.Deletion.deletions;
          splits := !splits + outcome.Deletion.splits;
          Copies outcome.Deletion.copies
        end)
      sets
  in
  if Trace.enabled () then
    Trace.finish sp_deletion
      ~attrs:
        [
          ("deletions", Sink.Int !deletions);
          ("splits", Sink.Int !splits);
        ];
  let modified = placement_of_stage w stages in
  let all_copies =
    Array.to_list stages
    |> List.concat_map (function Copies cs -> cs | Unused | Read_only _ -> [])
  in
  let has_bus_copy cs =
    List.exists (fun c -> not (Tree.is_leaf tree c.Copy.node)) cs
  in
  let sp_mapping = Trace.span "strategy.mapping" in
  let mapped_objects = ref [] in
  let movable =
    Array.to_list stages
    |> List.mapi (fun obj stage -> (obj, stage))
    |> List.concat_map (fun (obj, stage) ->
           match stage with
           | Unused | Read_only _ -> []
           | Copies cs ->
             if has_bus_copy cs then begin
               mapped_objects := obj :: !mapped_objects;
               if move_leaf_copies then cs
               else
                 List.filter
                   (fun c -> not (Tree.is_leaf tree c.Copy.node))
                   cs
             end
             else [])
  in
  let mapping =
    match movable with
    | [] -> None
    | _ :: _ ->
      let basic_up, basic_down = Mapping.basic_loads tree all_copies in
      Some
        (Mapping.run ~verify ?on_round:on_mapping_round tree ~basic_up
           ~basic_down ~movable)
  in
  if Trace.enabled () then
    Trace.finish sp_mapping
      ~attrs:
        (let tau, up, down =
           match mapping with
           | None -> (0, 0, 0)
           | Some s -> (s.Mapping.tau_max, s.Mapping.moves_up, s.Mapping.moves_down)
         in
         [
           ("tau_max", Sink.Int tau);
           ("mapped_objects", Sink.Int (List.length !mapped_objects));
           ("moves_up", Sink.Int up);
           ("moves_down", Sink.Int down);
         ]);
  let placement = placement_of_stage w stages in
  let result =
    {
      placement;
      nibble = nibble_placement;
      modified;
      tau_max = (match mapping with None -> 0 | Some s -> s.Mapping.tau_max);
      mapping;
      deletions = !deletions;
      splits = !splits;
      mapped_objects = List.rev !mapped_objects;
      copies = all_copies;
    }
  in
  if Trace.enabled () then begin
    Trace.count ~by:result.deletions "strategy.deletions";
    Trace.count ~by:result.splits "strategy.splits";
    Trace.finish sp_run
      ~attrs:
        [
          ("deletions", Sink.Int result.deletions);
          ("splits", Sink.Int result.splits);
          ("tau_max", Sink.Int result.tau_max);
          ("mapped_objects", Sink.Int (List.length result.mapped_objects));
        ]
  end;
  result

let congestion ?move_leaf_copies w =
  Placement.congestion w (run ?move_leaf_copies w).placement
