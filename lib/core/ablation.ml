module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble

let nearest_leaf tree node =
  if Tree.is_leaf tree node then node
  else begin
    let seen = Array.make (Tree.n tree) false in
    let queue = Queue.create () in
    Queue.add node queue;
    seen.(node) <- true;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if Tree.is_leaf tree v then found := v
      else
        Array.iter
          (fun (u, _) ->
            if not seen.(u) then begin
              seen.(u) <- true;
              Queue.add u queue
            end)
          (Tree.neighbors tree v)
    done;
    !found
  end

let naive_nearest_leaf w =
  let tree = Workload.tree w in
  let sets = Nibble.place_all w in
  Array.map
    (fun cs ->
      if cs.Nibble.nodes = [] then { Placement.copies = []; assigns = [] }
      else begin
        let groups = Nibble.served_groups w cs in
        let assigns = ref [] in
        let copies = ref [] in
        List.iter
          (fun node ->
            let home = nearest_leaf tree node in
            copies := home :: !copies;
            List.iter
              (fun g ->
                if Nibble.group_weight g > 0 then
                  assigns :=
                    {
                      Placement.leaf = g.Nibble.leaf;
                      server = home;
                      reads = g.Nibble.reads;
                      writes = g.Nibble.writes;
                    }
                    :: !assigns)
              groups.(node))
          cs.Nibble.nodes;
        {
          Placement.copies = List.sort_uniq compare !copies;
          assigns = List.rev !assigns;
        }
      end)
    sets

type skip_deletion_outcome = Mapped of Placement.t | Stuck of { node : int }

let skip_deletion w =
  let tree = Workload.tree w in
  let sets = Nibble.place_all w in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Raw nibble copies: one per component node, nearest-copy service, no
     deletion, no splitting. Degenerate objects are handled as in the
     full strategy so the ablation isolates Step 2 only. *)
  let stages =
    Array.map
      (fun cs ->
        let obj = cs.Nibble.obj in
        if Workload.total_weight w ~obj = 0 then `Unused
        else if Workload.write_contention w ~obj = 0 then
          `Read_only (Workload.requesting_leaves w ~obj)
        else begin
          let groups = Nibble.served_groups w cs in
          let kappa = Workload.write_contention w ~obj in
          `Copies
            (List.map
               (fun node ->
                 Copy.make ~id:(fresh ()) ~obj ~kappa ~node groups.(node))
               cs.Nibble.nodes)
        end)
      sets
  in
  let all_copies =
    Array.to_list stages
    |> List.concat_map (function `Copies cs -> cs | `Unused | `Read_only _ -> [])
  in
  let movable =
    List.filter (fun c -> not (Tree.is_leaf tree c.Copy.node)) all_copies
  in
  let build () =
    Array.init (Array.length stages) (fun obj ->
        match stages.(obj) with
        | `Unused -> { Placement.copies = []; assigns = [] }
        | `Read_only leaves ->
          {
            Placement.copies = leaves;
            assigns =
              List.map
                (fun leaf ->
                  {
                    Placement.leaf;
                    server = leaf;
                    reads = Workload.reads w ~obj leaf;
                    writes = Workload.writes w ~obj leaf;
                  })
                leaves;
          }
        | `Copies cs ->
          {
            Placement.copies =
              List.sort_uniq compare (List.map (fun c -> c.Copy.node) cs);
            assigns =
              List.concat_map
                (fun c ->
                  List.filter_map
                    (fun g ->
                      if Nibble.group_weight g = 0 then None
                      else
                        Some
                          {
                            Placement.leaf = g.Nibble.leaf;
                            server = c.Copy.node;
                            reads = g.Nibble.reads;
                            writes = g.Nibble.writes;
                          })
                    c.Copy.groups)
                cs;
          })
  in
  match movable with
  | [] -> Mapped (build ())
  | _ :: _ -> (
    let basic_up, basic_down = Mapping.basic_loads tree all_copies in
    match Mapping.run tree ~basic_up ~basic_down ~movable with
    | _ -> Mapped (build ())
    | exception Mapping.No_free_edge { node; _ } -> Stuck { node })
