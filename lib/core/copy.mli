(** Copies of shared data objects as mutable tokens.

    Steps 2 and 3 of the extended-nibble strategy manipulate individual
    copies: the deletion algorithm merges and splits the request groups a
    copy serves, and the mapping algorithm moves copies between nodes. A
    copy records the object it belongs to, the object's write contention
    [κ_x] (cached because [s(c) + κ_x] is the unit in which mapping loads
    grow), its current node, and the request groups it serves. *)

module Nibble = Hbn_nibble.Nibble

type t = {
  id : int;  (** unique per strategy run, for diagnostics *)
  obj : int;
  kappa : int;  (** [κ_x] of the object this is a copy of *)
  mutable node : int;  (** current location *)
  mutable groups : Nibble.group list;  (** requests served by this copy *)
  mutable served : int;  (** [s(c)]: cached sum of group weights *)
}

val make : id:int -> obj:int -> kappa:int -> node:int -> Nibble.group list -> t
(** Builds a copy; [served] is computed from the groups. *)

val weight : t -> int
(** [s(c) + κ_x]: the amount by which moving this copy along an edge
    increases the edge's mapping load. *)

val absorb : t -> from:t -> unit
(** [absorb c ~from] transfers all of [from]'s groups to [c] (the deletion
    algorithm's reassignment step); [from] is left empty. *)

val pp : Format.formatter -> t -> unit
