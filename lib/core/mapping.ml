module Tree = Hbn_tree.Tree
module Nibble = Hbn_nibble.Nibble
module Heap = Hbn_util.Heap
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink

type state = {
  tree : Tree.t;
  rooted : Tree.rooted;
  tau_max : int;
  lacc_up : int array;
  lacc_down : int array;
  lmap_up : int array;
  lmap_down : int array;
  node_copies : Copy.t list array;
}

type stats = { tau_max : int; moves_up : int; moves_down : int; final : state }

exception No_free_edge of { node : int; copy : Copy.t }

let basic_loads tree copies =
  let m = max 1 (Tree.num_edges tree) in
  let up = Array.make m 0 and down = Array.make m 0 in
  let r = Tree.rooting tree in
  List.iter
    (fun c ->
      List.iter
        (fun g ->
          let amount = Nibble.group_weight g in
          let server = c.Copy.node and leaf = g.Nibble.leaf in
          if amount > 0 && server <> leaf then begin
            (* The serving path runs from the copy to the requesting leaf:
               up from the server to the LCA, then down to the leaf. *)
            let a = Tree.lca r server leaf in
            let v = ref server in
            while !v <> a do
              let e = r.Tree.parent_edge.(!v) in
              up.(e) <- up.(e) + amount;
              v := r.Tree.parent.(!v)
            done;
            let v = ref leaf in
            while !v <> a do
              let e = r.Tree.parent_edge.(!v) in
              down.(e) <- down.(e) + amount;
              v := r.Tree.parent.(!v)
            done
          end)
        c.Copy.groups)
    copies;
  (up, down)

let check_invariant st =
  let tree = st.tree and r = st.rooted in
  let problem = ref None in
  List.iter
    (fun v ->
      (* Outgoing edges of v: the upward direction of its parent edge plus
         the downward direction of each child edge; incoming: the mirror. *)
      let out = ref 0 and inc = ref 0 in
      if v <> r.Tree.root then begin
        let e = r.Tree.parent_edge.(v) in
        out := !out + st.lacc_up.(e) - st.lmap_up.(e);
        inc := !inc + st.lacc_down.(e) - st.lmap_down.(e)
      end;
      Array.iter
        (fun c ->
          let e = r.Tree.parent_edge.(c) in
          out := !out + st.lacc_down.(e) - st.lmap_down.(e);
          inc := !inc + st.lacc_up.(e) - st.lmap_up.(e))
        r.Tree.children.(v);
      (* Corrected form of Invariant 4.2 (see DESIGN.md): the paper's
         "+ 2 Σ s(c)" term is not preserved when a copy moves into v (the
         right side would change by s - κ >= 0); the preserved form uses
         Σ (s(c) + κ_x(c)), which movements change by exactly the same
         amount on both sides and which still implies Lemmas 4.1 and 4.6. *)
      let weight =
        List.fold_left (fun a c -> a + Copy.weight c) 0 st.node_copies.(v)
      in
      if !out < !inc + weight && !problem = None then
        problem :=
          Some
            (Printf.sprintf
               "invariant 4.2 violated at node %d: out=%d in=%d copies=%d" v
               !out !inc weight))
    (Tree.buses tree);
  match !problem with None -> Ok () | Some msg -> Error msg

let run ?(verify = false) ?(inject_lacc_error = 0) ?on_round tree ~basic_up
    ~basic_down ~movable =
  let r = Tree.rooting tree in
  let m = max 1 (Tree.num_edges tree) in
  let tau_max = List.fold_left (fun a c -> max a (Copy.weight c)) 0 movable in
  let st =
    {
      tree;
      rooted = r;
      tau_max;
      lacc_up = Array.map (fun b -> (2 * b) - inject_lacc_error) basic_up;
      lacc_down = Array.map (fun b -> (2 * b) - inject_lacc_error) basic_down;
      lmap_up = Array.make m 0;
      lmap_down = Array.make m 0;
      node_copies = Array.make (Tree.n tree) [];
    }
  in
  List.iter
    (fun c -> st.node_copies.(c.Copy.node) <- c :: st.node_copies.(c.Copy.node))
    movable;
  let moves_up = ref 0 and moves_down = ref 0 in
  let levels = Tree.nodes_by_level_bottom_up r in
  let height = Array.length levels - 1 in
  let round = ref 0 in
  (* [checkpoint phase level] closes one round: it feeds [on_round], emits
     the per-round trace event, and re-checks Invariant 4.2 when asked.
     [phase] is "init" before the first round, then "up" / "down". *)
  let checkpoint phase level =
    (match on_round with Some f -> f st | None -> ());
    if Trace.enabled () then
      Trace.event "mapping.round"
        ~attrs:
          [
            ("round", Sink.Int !round);
            ("phase", Sink.Str phase);
            ("level", Sink.Int level);
            ("tau_max", Sink.Int tau_max);
            ("moves_up", Sink.Int !moves_up);
            ("moves_down", Sink.Int !moves_down);
          ];
    incr round;
    if verify then
      match check_invariant st with
      | Ok () -> ()
      | Error msg -> failwith ("Mapping.run: " ^ msg)
  in
  checkpoint "init" 0;
  (* Upwards phase: rounds 0 .. height-1 (every node but the root). *)
  for l = 0 to height - 1 do
    List.iter
      (fun v ->
        if v <> r.Tree.root then begin
          let e = r.Tree.parent_edge.(v) in
          let parent = r.Tree.parent.(v) in
          let continue = ref true in
          while !continue do
            match st.node_copies.(v) with
            | c :: rest when st.lmap_up.(e) + tau_max <= st.lacc_up.(e) ->
              st.node_copies.(v) <- rest;
              c.Copy.node <- parent;
              st.node_copies.(parent) <- c :: st.node_copies.(parent);
              st.lmap_up.(e) <- st.lmap_up.(e) + Copy.weight c;
              incr moves_up
            | _ :: _ | [] -> continue := false
          done;
          (* In a sound run delta >= 0 (moves keep L_map <= L_acc); the
             clamp only matters under deliberately corrupted bookkeeping,
             where an adjustment must still never increase a load. *)
          let delta = max 0 (st.lacc_up.(e) - st.lmap_up.(e)) in
          st.lacc_up.(e) <- st.lacc_up.(e) - delta;
          st.lacc_down.(e) <- st.lacc_down.(e) - delta
        end)
      levels.(l);
    checkpoint "up" l
  done;
  (* Downwards phase: rounds height .. 1 (every bus; processors keep their
     copies). Free child edges are found through a min-heap keyed by
     L_map - L_acc, so each lookup costs O(log degree). *)
  for l = height downto 1 do
    List.iter
      (fun v ->
        if (not (Tree.is_leaf tree v)) && st.node_copies.(v) <> [] then begin
          let heap = Heap.create () in
          Array.iter
            (fun c ->
              let e = r.Tree.parent_edge.(c) in
              Heap.add heap ~key:(st.lmap_down.(e) - st.lacc_down.(e)) (e, c))
            r.Tree.children.(v);
          let copies = st.node_copies.(v) in
          st.node_copies.(v) <- [];
          List.iter
            (fun c ->
              match Heap.pop_min heap with
              | None -> raise (No_free_edge { node = v; copy = c })
              | Some (key, (e, child)) ->
                if key + Copy.weight c <= tau_max then begin
                  c.Copy.node <- child;
                  st.node_copies.(child) <- c :: st.node_copies.(child);
                  st.lmap_down.(e) <- st.lmap_down.(e) + Copy.weight c;
                  incr moves_down;
                  Heap.add heap ~key:(st.lmap_down.(e) - st.lacc_down.(e))
                    (e, child)
                end
                else raise (No_free_edge { node = v; copy = c }))
            copies
        end)
      levels.(l);
    checkpoint "down" l
  done;
  List.iter
    (fun c ->
      if not (Tree.is_leaf tree c.Copy.node) then
        failwith "Mapping.run: a copy remained on a bus (impossible)")
    movable;
  { tau_max; moves_up = !moves_up; moves_down = !moves_down; final = st }
