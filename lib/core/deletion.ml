module Tree = Hbn_tree.Tree
module Flat = Hbn_tree.Flat
module Workload = Hbn_workload.Workload
module Nibble = Hbn_nibble.Nibble

type outcome = {
  copies : Copy.t list;
  deletions : int;
  splits : int;
  ids_used : int;
}

let split_sizes ~served ~kappa =
  if kappa <= 0 then invalid_arg "Deletion.split_sizes: kappa must be positive";
  if served < kappa then invalid_arg "Deletion.split_sizes: served < kappa";
  let k = max 1 (served / kappa) in
  let base = served / k and extra = served mod k in
  List.init k (fun i -> if i < extra then base + 1 else base)

(* Cut a sequence of request groups into buckets of the given sizes,
   splitting a group across a bucket boundary when necessary (reads are
   consumed before writes, arbitrarily but deterministically). *)
let cut_groups groups sizes =
  let buckets = ref [] in
  let remaining = ref groups in
  List.iter
    (fun size ->
      let bucket = ref [] and need = ref size in
      while !need > 0 do
        match !remaining with
        | [] -> invalid_arg "Deletion.cut_groups: sizes exceed requests"
        | g :: rest ->
          let w = Nibble.group_weight g in
          if w = 0 then remaining := rest
          else if w <= !need then begin
            bucket := g :: !bucket;
            need := !need - w;
            remaining := rest
          end
          else begin
            let take_reads = min g.Nibble.reads !need in
            let take_writes = !need - take_reads in
            bucket :=
              { g with Nibble.reads = take_reads; writes = take_writes }
              :: !bucket;
            remaining :=
              {
                g with
                Nibble.reads = g.Nibble.reads - take_reads;
                writes = g.Nibble.writes - take_writes;
              }
              :: rest;
            need := 0
          end
      done;
      buckets := List.rev !bucket :: !buckets)
    sizes;
  List.rev !buckets

let run ?(first_id = 0) ?scratch w cs =
  let tree = Workload.tree w in
  let scratch =
    match scratch with
    | Some s -> s
    | None -> Flat.Scratch.create (Flat.of_tree tree)
  in
  let kappa = Workload.write_contention w ~obj:cs.Nibble.obj in
  if kappa <= 0 then invalid_arg "Deletion.run: kappa must be positive";
  if cs.Nibble.nodes = [] then invalid_arg "Deletion.run: empty copy set";
  (* Ids are local to this run: [first_id], [first_id + 1], … in the order
     copies are created. The strategy driver renumbers per-object results
     into one global sequence at merge time, so the function stays pure
     (no shared counter) and can run on any domain. *)
  let next_id = ref first_id in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let groups = Nibble.served_groups ~scratch w cs in
  let table = Array.make (Tree.n tree) None in
  List.iter
    (fun v ->
      table.(v) <-
        Some (Copy.make ~id:(fresh ()) ~obj:cs.Nibble.obj ~kappa ~node:v
                groups.(v)))
    cs.Nibble.nodes;
  (* Deepest level of T(x) first; the root (gravity center) comes last. *)
  let depth v = cs.Nibble.rooted.Tree.depth.(v) in
  let order =
    List.sort (fun a b -> compare (depth b, b) (depth a, a)) cs.Nibble.nodes
  in
  let deletions = ref 0 in
  let nearest_survivor () =
    (* BFS from the root of T(x) over the whole tree, on the scratch's
       ring buffer and visit stamps (same FIFO order as a queue — each
       node enters at most once, so [n] slots suffice). *)
    scratch.Flat.Scratch.stamp <- scratch.Flat.Scratch.stamp + 1;
    let stamp = scratch.Flat.Scratch.stamp in
    let nstamp = scratch.Flat.Scratch.nstamp in
    let queue = scratch.Flat.Scratch.queue in
    let head = ref 0 and tail = ref 0 in
    queue.(!tail) <- cs.Nibble.gravity;
    incr tail;
    nstamp.(cs.Nibble.gravity) <- stamp;
    let found = ref None in
    while !found = None && !head < !tail do
      let v = queue.(!head) in
      incr head;
      match table.(v) with
      | Some c when v <> cs.Nibble.gravity -> found := Some c
      | Some _ | None ->
        Array.iter
          (fun (u, _) ->
            if nstamp.(u) <> stamp then begin
              nstamp.(u) <- stamp;
              queue.(!tail) <- u;
              incr tail
            end)
          (Tree.neighbors tree v)
    done;
    !found
  in
  List.iter
    (fun v ->
      match table.(v) with
      | None -> ()
      | Some copy ->
        if copy.Copy.served < kappa then begin
          if v <> cs.Nibble.gravity then begin
            let parent = cs.Nibble.rooted.Tree.parent.(v) in
            match table.(parent) with
            | Some p ->
              Copy.absorb p ~from:copy;
              table.(v) <- None;
              incr deletions
            | None ->
              (* The component is connected and parents are processed after
                 children, so the parent copy still exists. *)
              assert false
          end
          else begin
            match nearest_survivor () with
            | Some c ->
              Copy.absorb c ~from:copy;
              table.(v) <- None;
              incr deletions
            | None ->
              (* The root is the last copy; it serves every request, and
                 total requests >= kappa, so it cannot be under-used. *)
              assert (copy.Copy.served >= kappa)
          end
        end)
    order;
  let splits = ref 0 in
  let copies = ref [] in
  Array.iteri
    (fun v slot ->
      match slot with
      | None -> ()
      | Some copy ->
        if copy.Copy.served > 2 * kappa then begin
          let sizes =
            split_sizes ~served:copy.Copy.served ~kappa
          in
          let buckets = cut_groups copy.Copy.groups sizes in
          (match buckets with
          | [] -> assert false
          | first :: rest ->
            copy.Copy.groups <- first;
            copy.Copy.served <-
              List.fold_left (fun a g -> a + Nibble.group_weight g) 0 first;
            copies := copy :: !copies;
            List.iter
              (fun bucket ->
                incr splits;
                copies :=
                  Copy.make ~id:(fresh ()) ~obj:cs.Nibble.obj ~kappa ~node:v
                    bucket
                  :: !copies)
              rest)
        end
        else copies := copy :: !copies)
    table;
  let copies = List.rev !copies in
  {
    copies;
    deletions = !deletions;
    splits = !splits;
    ids_used = !next_id - first_id;
  }
