(** Ablated variants of the extended-nibble strategy.

    DESIGN.md calls out two design decisions the analysis depends on; the
    variants here remove them so experiment E14 can measure what breaks:

    - {!naive_nearest_leaf} replaces the whole Step 3 load-balancing
      machinery by "move every bus copy to its nearest processor". No
      acceptable-load bookkeeping means a popular bus's processors absorb
      every forwarded request, and the Lemma 4.5 per-edge bound is lost.
    - {!skip_deletion} feeds the raw nibble placement straight into the
      mapping algorithm. Copies may then serve fewer than [κ_x] requests,
      which invalidates the initialization of Invariant 4.2
      ([Σ(s+κ) ≤ 2Σs] needs [s ≥ κ]), and with it Lemma 4.1's free-edge
      guarantee: the downwards phase can fail. The experiment reports how
      often it does. *)

module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

val naive_nearest_leaf : Workload.t -> Placement.t
(** Nibble placement with every bus copy teleported to the processor
    nearest to its bus (ties to the lowest id), requests following their
    copy. Leaf-only and valid, but with no approximation guarantee. *)

type skip_deletion_outcome =
  | Mapped of Placement.t  (** the mapping happened to succeed *)
  | Stuck of { node : int }  (** no free child edge (Lemma 4.1 violated) *)

val skip_deletion : Workload.t -> skip_deletion_outcome
(** Step 1 then Step 3 with Step 2 removed. *)
