(** Step 3 of the extended-nibble strategy: the mapping algorithm.

    Moves the remaining copies from buses down to processors. Every edge of
    the canonically rooted tree is treated as two directed edges. The basic
    load [L_b(ē)] of a directed edge counts the requests of the modified
    nibble placement whose serving path (copy → requesting processor)
    traverses [ē]; the acceptable load starts as [L_acc(ē) = 2·L_b(ē)];
    moving a copy [c] along [ē] adds [s(c) + κ_x(c)] to the mapping load
    [L_map(ē)], an increment bounded by [τ_max = max_c (s(c) + κ_x(c))].

    The {e upwards phase} processes levels bottom-up: each node moves
    copies towards its parent while [L_map + τ_max ≤ L_acc] on the upward
    edge, then the adjustment sets the upward edge's acceptable load to its
    mapping load and decreases the downward edge's acceptable load by the
    same slack. The {e downwards phase} processes levels top-down: every
    bus moves each of its copies along a {e free} child edge
    ([L_map + s(c) + κ_x(c) ≤ L_acc + τ_max]), which Lemma 4.1 shows always
    exists, using a heap over child edges to find it in [O(log degree)].

    Invariant 4.2 holds at every internal node throughout — in the
    corrected form
    [Σ_out (L_acc − L_map) ≥ Σ_in (L_acc − L_map) + Σ_{c ∈ M(v)} (s(c) + κ_x(c))].
    The paper prints the last term as [2 Σ s(c)]; that form holds initially
    but is not preserved when a copy moves {e into} [v] (the right side
    would grow by [s − κ ≥ 0]). The corrected term changes by exactly the
    movement's load on both sides, is implied at initialization because
    [s(c) ≥ κ_x(c)] after Step 2, and still gives Lemma 4.1 (free edges
    exist, since the sum dominates the weight of any single held copy) and
    Lemma 4.6. See DESIGN.md, section "Errata". The [verify] flag re-checks the invariant after every round
    (used by tests and experiment E5). *)

module Tree = Hbn_tree.Tree

type state = {
  tree : Tree.t;
  rooted : Tree.rooted;
  tau_max : int;
  lacc_up : int array;  (** acceptable load per edge, towards the root *)
  lacc_down : int array;
  lmap_up : int array;
  lmap_down : int array;
  node_copies : Copy.t list array;  (** [M(v)] *)
}

type stats = {
  tau_max : int;
  moves_up : int;
  moves_down : int;
  final : state;
}

exception No_free_edge of { node : int; copy : Copy.t }
(** Raised if the downwards phase finds no free child edge — impossible per
    Lemma 4.1 unless the bookkeeping is corrupted (exercised by the
    failure-injection tests). *)

val basic_loads : Tree.t -> Copy.t list -> int array * int array
(** [(up, down)] basic loads per edge induced by the given copies' request
    groups (paths run from the serving copy to the requesting leaf). *)

val run :
  ?verify:bool ->
  ?inject_lacc_error:int ->
  ?on_round:(state -> unit) ->
  Tree.t ->
  basic_up:int array ->
  basic_down:int array ->
  movable:Copy.t list ->
  stats
(** Executes both phases, mutating the [node] field of each movable copy.
    All movable copies end on processors. [basic_up]/[basic_down] must
    come from {!basic_loads} over {e all} copies (movable or not) so that
    Invariant 4.2 holds initially. [inject_lacc_error] subtracts the given
    amount from every initial acceptable load — a deliberate corruption
    used by failure-injection tests to show the free-edge guarantee is not
    vacuous. [verify] checks Invariant 4.2 after every level and raises
    [Failure] on violation. [on_round] is called with the live state before
    the first round and after every level of both phases (instrumentation
    for tests and experiments; do not mutate the state). The same
    checkpoints additionally emit a ["mapping.round"] trace event (attrs:
    [round], [phase] of ["init"|"up"|"down"], [level], [tau_max],
    [moves_up], [moves_down]) when {!Hbn_obs.Trace} is enabled, so
    [on_round] stays supported but external observers no longer need it. *)

val check_invariant : state -> (unit, string) result
(** Invariant 4.2 at every internal node of the tree. *)
