module Nibble = Hbn_nibble.Nibble

type t = {
  id : int;
  obj : int;
  kappa : int;
  mutable node : int;
  mutable groups : Nibble.group list;
  mutable served : int;
}

let total_weight groups =
  List.fold_left (fun acc g -> acc + Nibble.group_weight g) 0 groups

let make ~id ~obj ~kappa ~node groups =
  if kappa < 0 then invalid_arg "Copy.make: negative write contention";
  { id; obj; kappa; node; groups; served = total_weight groups }

let weight c = c.served + c.kappa

let absorb c ~from =
  c.groups <- List.rev_append from.groups c.groups;
  c.served <- c.served + from.served;
  from.groups <- [];
  from.served <- 0

let pp ppf c =
  Format.fprintf ppf "copy#%d(obj %d, node %d, s=%d, kappa=%d)" c.id c.obj
    c.node c.served c.kappa
