module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let check_valid w (res : Strategy.result) =
  let tree = Workload.tree w in
  let* () = Placement.validate w res.Strategy.nibble in
  let* () = Placement.validate w res.Strategy.modified in
  let* () = Placement.validate w res.Strategy.placement in
  if Placement.leaf_only tree res.Strategy.placement then Ok ()
  else Error "final placement stores a copy on a bus"

let check_observation_3_2 w (res : Strategy.result) =
  let per_copy =
    List.fold_left
      (fun acc c ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if c.Copy.kappa > 0 then
            if c.Copy.served < c.Copy.kappa then
              Error
                (Printf.sprintf "copy#%d serves %d < kappa=%d" c.Copy.id
                   c.Copy.served c.Copy.kappa)
            else if c.Copy.served > 2 * c.Copy.kappa then
              Error
                (Printf.sprintf "copy#%d serves %d > 2*kappa=%d" c.Copy.id
                   c.Copy.served (2 * c.Copy.kappa))
            else Ok ()
          else Ok ())
      (Ok ()) res.Strategy.copies
  in
  let* () = per_copy in
  let rec per_object obj =
    if obj >= Workload.num_objects w then Ok ()
    else begin
      let nib = Placement.object_edge_loads w res.Strategy.nibble ~obj in
      let del = Placement.object_edge_loads w res.Strategy.modified ~obj in
      let bad = ref None in
      Array.iteri
        (fun e l ->
          if l > 2 * nib.(e) && !bad = None then
            bad :=
              Some
                (Printf.sprintf
                   "object %d edge %d: modified load %d > 2*nibble %d" obj e l
                   nib.(e)))
        del;
      match !bad with Some msg -> Error msg | None -> per_object (obj + 1)
    end
  in
  per_object 0

let final_and_nibble_loads w (res : Strategy.result) =
  let final = Placement.evaluate w res.Strategy.placement in
  let nib = Placement.evaluate w res.Strategy.nibble in
  (final, nib)

let check_lemma_4_5 w res =
  let final, nib = final_and_nibble_loads w res in
  let tau = res.Strategy.tau_max in
  let bad = ref None in
  Array.iteri
    (fun e l ->
      let bound = (4 * nib.Placement.edge_loads.(e)) + tau in
      if l > bound && !bad = None then
        bad :=
          Some
            (Printf.sprintf "edge %d: load %d > 4*Lnib + tau = %d" e l bound))
    final.Placement.edge_loads;
  match !bad with Some msg -> Error msg | None -> Ok ()

let check_lemma_4_6 w res =
  let final, nib = final_and_nibble_loads w res in
  let tree = Workload.tree w in
  let tau = res.Strategy.tau_max in
  let bad = ref None in
  List.iter
    (fun b ->
      (* Bus loads are stored doubled to stay integral; the bound doubles
         accordingly: 2·L(v) <= 4·(2·Lnib(v)) / 2 ... i.e. compare
         loads2 against 4*nib_loads2 + 2*tau. *)
      let bound = (4 * nib.Placement.bus_loads2.(b)) + (2 * tau) in
      if final.Placement.bus_loads2.(b) > bound && !bad = None then
        bad :=
          Some
            (Printf.sprintf "bus %d: 2*load %d > 2*(4*Lnib(v) + tau) = %d" b
               final.Placement.bus_loads2.(b) bound))
    (Tree.buses tree);
  match !bad with Some msg -> Error msg | None -> Ok ()

let check_theorem_4_3 w res ~optimum =
  let c = Placement.congestion w res.Strategy.placement in
  if c <= (7. *. optimum) +. 1e-9 then Ok ()
  else
    Error
      (Printf.sprintf "congestion %.6f exceeds 7 * optimum (%.6f)" c
         (7. *. optimum))

let check_all w res =
  let* () = check_valid w res in
  let* () = check_observation_3_2 w res in
  let* () = check_lemma_4_5 w res in
  check_lemma_4_6 w res

let max_edge_slack w res =
  let final, nib = final_and_nibble_loads w res in
  let tau = res.Strategy.tau_max in
  let best = ref 0. in
  Array.iteri
    (fun e l ->
      let bound = (4 * nib.Placement.edge_loads.(e)) + tau in
      if bound > 0 then
        best := max !best (float_of_int l /. float_of_int bound))
    final.Placement.edge_loads;
  !best
