(** Machine-checkable certificates for the paper's guarantees.

    Each check corresponds to a numbered statement of the paper and is run
    by the test suite on every generated instance and by experiment E4–E7
    of the harness. All checks are sound for both strategy variants
    ([move_leaf_copies] true or false). *)

module Workload = Hbn_workload.Workload

val check_valid : Workload.t -> Strategy.result -> (unit, string) result
(** The three placements of the result exactly cover the workload, and the
    final placement uses processors only. *)

val check_observation_3_2 :
  Workload.t -> Strategy.result -> (unit, string) result
(** Observation 3.2: every Step 2 copy of an object with [κ_x > 0] serves
    between [κ_x] and [2·κ_x] requests, and per object the modified
    placement's load on every edge is at most twice the nibble
    placement's. *)

val check_lemma_4_5 : Workload.t -> Strategy.result -> (unit, string) result
(** Lemma 4.5: final load [L(e) ≤ 4·L_nib(e) + τ_max] on every edge. *)

val check_lemma_4_6 : Workload.t -> Strategy.result -> (unit, string) result
(** Lemma 4.6: final bus load [L(v) ≤ 4·L_nib(v) + τ_max] on every bus. *)

val check_theorem_4_3 :
  Workload.t -> Strategy.result -> optimum:float -> (unit, string) result
(** Theorem 4.3: final congestion at most [7 · optimum] (plus a 1e-9
    tolerance), where [optimum] is the bus-model optimal congestion. *)

val check_all : Workload.t -> Strategy.result -> (unit, string) result
(** {!check_valid}, {!check_observation_3_2}, {!check_lemma_4_5} and
    {!check_lemma_4_6} in sequence, reporting the first failure. *)

val max_edge_slack : Workload.t -> Strategy.result -> float
(** The largest ratio [L(e) / (4·L_nib(e) + τ_max)] over edges with a
    nonzero bound — how tight Lemma 4.5 is on this instance (≤ 1 when the
    lemma holds). *)
