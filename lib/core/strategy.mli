(** The extended-nibble strategy (the paper's main contribution).

    Pipeline, per Section 3:
    + {b Step 1} — the nibble strategy computes a per-edge-optimal placement
      that may use buses (module {!Hbn_nibble.Nibble}).
    + {b Step 2} — the deletion algorithm removes copies serving fewer than
      [κ_x] requests and splits overloaded ones (module {!Deletion}).
    + {b Step 3} — the mapping algorithm moves the remaining bus copies to
      processors (module {!Mapping}).

    The resulting leaf-only placement has congestion at most [7 · C_opt]
    (Theorem 4.3), where [C_opt] is the optimal congestion of the
    hierarchical bus network.

    Two degenerate object classes bypass Steps 2–3 (see DESIGN.md):
    objects without requests get no copies, and write-free objects
    ([κ_x = 0]) get one copy on every requesting processor, which serves
    locally at zero cost. Objects whose placement contains no bus copy
    after Step 2 are left unchanged, following the paper's remark that the
    strategy "does not change their placement"; with
    [move_leaf_copies = true] the upwards phase additionally moves copies
    that already sit on processors, matching the pseudocode of Figure 5
    verbatim (an ablation; both variants satisfy all certificates). *)

module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type result = {
  placement : Placement.t;  (** the final, leaf-only placement *)
  nibble : Placement.t;  (** the Step 1 placement (per-edge lower bound) *)
  modified : Placement.t;  (** the Step 2 ("modified nibble") placement *)
  tau_max : int;  (** 0 when no object needed mapping *)
  mapping : Mapping.stats option;
  deletions : int;
  splits : int;
  mapped_objects : int list;  (** objects whose copies went through Step 3 *)
  copies : Copy.t list;
      (** every Step 2 copy (positions reflect Step 3 movement; the served
          counts and write contentions are those fixed by Step 2) *)
}

val run :
  ?move_leaf_copies:bool ->
  ?verify:bool ->
  ?on_mapping_round:(Mapping.state -> unit) ->
  ?exec:Hbn_exec.Exec.t ->
  Workload.t ->
  result
(** [run w] executes the full strategy. [verify] turns on Invariant 4.2
    checking after every mapping round (slow; meant for tests);
    [on_mapping_round] is forwarded to {!Mapping.run}.
    [move_leaf_copies] defaults to [false].

    [exec] (default sequential) fans the per-object stages — Step 1,
    Step 2, and placement construction — out over domains via
    {!Hbn_exec.Exec.map}; Step 3 (mapping) shares its load accumulators
    across objects and stays a sequential global phase. Results are
    bit-identical at any job count: per-object work is pure, the merge
    runs in object order, and copy ids are renumbered into the same
    global sequence the old shared-counter allocation produced.

    When {!Hbn_obs.Trace} is enabled, the pipeline emits one span per
    step — [strategy.nibble] (attrs [objects], [copies]),
    [strategy.deletion] (attrs [deletions], [splits]) and
    [strategy.mapping] (attrs [tau_max], [mapped_objects], [moves_up],
    [moves_down]) — nested in a [strategy.run] root span, plus the
    [strategy.deletions] / [strategy.splits] counters. Tracing only
    observes: the computed result is identical with tracing on, off, or
    absent. *)

val congestion :
  ?move_leaf_copies:bool -> ?exec:Hbn_exec.Exec.t -> Workload.t -> float
(** Congestion of [run w].placement — convenience wrapper. *)
