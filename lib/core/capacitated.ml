module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Tree = Hbn_tree.Tree

type result = {
  placement : Placement.t;
  relocations : int;
  merges : int;
}

exception Infeasible of string

let usage tree p =
  let u = Array.make (Tree.n tree) 0 in
  Array.iter
    (fun op ->
      List.iter (fun v -> u.(v) <- u.(v) + 1) op.Placement.copies)
    p;
  u

let respects tree ~capacity p =
  let u = usage tree p in
  let ok = ref true in
  List.iter (fun v -> if u.(v) > capacity v then ok := false) (Tree.leaves tree);
  !ok

(* Requests served at [server] for object [obj] in placement [p]. *)
let served_at p ~obj server =
  List.fold_left
    (fun acc a ->
      if a.Placement.server = server then acc + a.Placement.reads + a.Placement.writes
      else acc)
    0
    p.(obj).Placement.assigns

let reassign op ~from ~to_ =
  {
    Placement.copies =
      List.sort_uniq compare
        (to_ :: List.filter (fun c -> c <> from) op.Placement.copies);
    assigns =
      List.map
        (fun a ->
          if a.Placement.server = from then { a with Placement.server = to_ }
          else a)
        op.Placement.assigns;
  }

let apply w ~capacity p =
  let tree = Workload.tree w in
  if not (Placement.leaf_only tree p) then
    invalid_arg "Capacitated.apply: placement must be leaf-only";
  List.iter
    (fun v ->
      if capacity v < 0 then invalid_arg "Capacitated.apply: negative capacity")
    (Tree.leaves tree);
  let p = Array.map (fun op -> op) p in
  let u = usage tree p in
  let relocations = ref 0 and merges = ref 0 in
  let has_copy obj v = List.mem v p.(obj).Placement.copies in
  (* Nearest destination by BFS: a leaf already holding the object
     (merge) or a leaf with a free slot (relocate). *)
  let bfs_find from pred =
    let seen = Array.make (Tree.n tree) false in
    let queue = Queue.create () in
    Queue.add from queue;
    seen.(from) <- true;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if v <> from && Tree.is_leaf tree v then found := pred v;
      if !found = None then
        Array.iter
          (fun (x, _) ->
            if not seen.(x) then begin
              seen.(x) <- true;
              Queue.add x queue
            end)
          (Tree.neighbors tree v)
    done;
    !found
  in
  let copy_count obj = List.length p.(obj).Placement.copies in
  let destination obj from =
    let direct =
      bfs_find from (fun v ->
          if has_copy obj v then Some (`Merge v)
          else if u.(v) < capacity v then Some (`Move v)
          else None)
    in
    match direct with
    | Some _ as d -> d
    | None ->
      (* Make room: find the nearest full leaf hosting a redundant copy
         of some other object; merging that copy away frees a slot. *)
      bfs_find from (fun v ->
          if has_copy obj v || capacity v = 0 then None
          else
            let redundant =
              List.find_opt
                (fun o -> o <> obj && has_copy o v && copy_count o >= 2)
                (List.init (Workload.num_objects w) Fun.id)
            in
            match redundant with
            | Some o -> Some (`Make_room (v, o))
            | None -> None)
  in
  List.iter
    (fun leaf ->
      let cap = capacity leaf in
      if u.(leaf) > cap then begin
        (* Evict the copies serving the fewest requests here. *)
        let holders =
          List.filter
            (fun obj -> has_copy obj leaf)
            (List.init (Workload.num_objects w) Fun.id)
        in
        let ranked =
          List.sort
            (fun a b ->
              compare (served_at p ~obj:a leaf) (served_at p ~obj:b leaf))
            holders
        in
        let excess = u.(leaf) - cap in
        let victims = List.filteri (fun i _ -> i < excess) ranked in
        List.iter
          (fun obj ->
            match destination obj leaf with
            | None ->
              raise
                (Infeasible
                   (Printf.sprintf
                      "no processor can host object %d evicted from %d" obj
                      leaf))
            | Some (`Merge v) ->
              p.(obj) <- reassign p.(obj) ~from:leaf ~to_:v;
              u.(leaf) <- u.(leaf) - 1;
              incr merges
            | Some (`Move v) ->
              p.(obj) <- reassign p.(obj) ~from:leaf ~to_:v;
              u.(leaf) <- u.(leaf) - 1;
              u.(v) <- u.(v) + 1;
              incr relocations
            | Some (`Make_room (v, other)) ->
              (* Fold [other]'s redundant copy on [v] into its nearest
                 remaining copy, then move [obj] into the freed slot. *)
              let target =
                match
                  bfs_find v (fun x ->
                      if x <> v && has_copy other x then Some x else None)
                with
                | Some x -> x
                | None -> assert false (* copy_count other >= 2 *)
              in
              p.(other) <- reassign p.(other) ~from:v ~to_:target;
              u.(v) <- u.(v) - 1;
              incr merges;
              p.(obj) <- reassign p.(obj) ~from:leaf ~to_:v;
              u.(leaf) <- u.(leaf) - 1;
              u.(v) <- u.(v) + 1;
              incr relocations)
          victims
      end)
    (Tree.leaves tree);
  { placement = p; relocations = !relocations; merges = !merges }

let run ?move_leaf_copies w ~capacity =
  let res = Strategy.run ?move_leaf_copies w in
  apply w ~capacity res.Strategy.placement
