(** Capacity-constrained placements (memory-limited processors).

    The paper's companion work ([13] in its bibliography, SODA 2000)
    extends congestion-driven data management to systems where every
    node can store only a bounded number of objects. This module provides
    that extension for hierarchical bus networks as a post-processing
    pass: given the extended-nibble placement and per-processor
    capacities (a processor can hold at most one copy of each object, and
    at most [capacity v] copies in total), overfull processors evict
    their least-used copies, which either merge into the nearest existing
    copy of the same object or relocate to the nearest processor with a
    free slot.

    The factor-7 guarantee does not carry over (capacities can force
    congestion arbitrarily high — consider one writable object per
    processor and capacity 1 elsewhere); experiment E13 measures the
    degradation curve as capacity shrinks. *)

module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Tree = Hbn_tree.Tree

type result = {
  placement : Placement.t;
  relocations : int;  (** copies moved to another processor *)
  merges : int;  (** copies folded into an existing copy of the object *)
}

exception Infeasible of string
(** Raised when some evicted copy has no processor left to go to. *)

val usage : Tree.t -> Placement.t -> int array
(** [usage t p] counts, per node, the distinct objects with a copy
    there. *)

val respects : Tree.t -> capacity:(int -> int) -> Placement.t -> bool
(** Does the placement fit the capacities? *)

val apply :
  Workload.t -> capacity:(int -> int) -> Placement.t -> result
(** [apply w ~capacity p] rewrites the leaf-only placement [p] to respect
    [capacity]. Raises [Invalid_argument] if [p] stores copies on buses,
    {!Infeasible} if capacities cannot host every object. The result
    covers the workload exactly (same requests, possibly new servers). *)

val run :
  ?move_leaf_copies:bool ->
  Workload.t ->
  capacity:(int -> int) ->
  result
(** Convenience: {!Hbn_core.Strategy.run} followed by {!apply}. *)
