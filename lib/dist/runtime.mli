(** Synchronous message-passing execution on a tree network.

    The distributed claims of the paper assume the standard synchronous
    model: in every round, each node reads the messages its neighbors
    sent in the previous round, updates local state, and sends at most
    one message per incident edge. This module is that model, generic in
    the per-node state and message types; {!Dist_nibble} runs the actual
    distributed nibble computation on it and the tests compare every
    node's local decision with the sequential algorithm.

    The engine enforces the model: a node may only address its tree
    neighbors, and sending two messages over one edge in one round is an
    error (that is what pipelining has to work around). Neighbor
    membership is precomputed per node once per run, so validating a
    send is O(1) regardless of degree.

    A {!Faults.plan} degrades the network deterministically: scheduled
    messages are dropped, crashed nodes neither step nor receive (state
    frozen until restart), and cut edges lose everything crossing them.
    Every fault is logged. With no plan — or an empty one — the run is
    bit-identical to the fault-free engine.

    Both entry points share one discrete-event core driven by
    {!Hbn_event.Engine}: nodes step at integer ticks of a virtual clock
    and every message is a timestamped delivery event. {!run} gives
    every delivery latency exactly 1 — the classic synchronous
    semantics, round for round — while {!run_async} draws arrival times
    from a per-level {!Hbn_event.Link} model, so messages cross slow
    levels over several ticks and serialize on busy links. *)

module Tree = Hbn_tree.Tree

type ('state, 'msg) node_fn =
  round:int ->
  node:int ->
  'state ->
  inbox:(int * 'msg) list ->
  'state * (int * 'msg) list
(** One round of one node: consumes the inbox (sender, message) pairs
    from the previous round and returns the new state plus outgoing
    (neighbor, message) pairs. *)

type stats = {
  rounds : int;
  messages : int;
      (** sends attempted, including those a fault plan then dropped *)
  max_inbox : int;  (** largest inbox any node saw in one round *)
  max_node_messages : int;  (** most messages through a single node *)
}

type termination =
  | Quiescent  (** the protocol went silent — the normal ending *)
  | Round_limit
      (** [max_rounds] elapsed with traffic still flowing; the outcome
          carries the partial states and everything counted so far *)

type 'state outcome = {
  states : 'state array;
  stats : stats;
  termination : termination;
  faults : Faults.event list;  (** chronological fault log; [[]] without
                                   a plan *)
  health : Hbn_obs.Monitor.verdict option;
      (** end-of-run drift verdict; [None] without a monitor *)
}

val run :
  ?max_rounds:int ->
  ?quiet_rounds:int ->
  ?faults:Faults.plan ->
  ?telemetry:Hbn_obs.Telemetry.t ->
  ?monitor:Hbn_obs.Monitor.t ->
  ?msg_bytes:('msg -> int) ->
  Tree.t ->
  init:(int -> 'state) ->
  step:('state, 'msg) node_fn ->
  'state outcome
(** Runs rounds until quiescence or [max_rounds] (default 100_000;
    reaching it yields [termination = Round_limit] instead of raising,
    preserving states and stats). Raises [Invalid_argument] if a node
    addresses a non-neighbor or doubles up on an edge — those are
    protocol bugs, not runtime conditions.

    [quiet_rounds] (default 1) is the termination-detection window: the
    run is quiescent after that many consecutive rounds without a send.
    Protocols with retransmit timers must pass their timeout plus one,
    so a lull while every sender waits on a timer is not mistaken for
    completion; under a fault plan the window additionally cannot close
    before {!Faults.quiet_after}, since a crashed node may still restart
    and resume sending.

    [faults] applies a {!Faults.plan}: a message sent in round [r] is
    delivered iff its edge is not cut in [r], the drop schedule spares
    it in [r], and the target is not down in [r + 1]. Dropped messages
    still count into [stats.messages] (the send happened) but never
    reach an inbox. With [Faults.none] — or no plan — behavior, stats
    and traces are bit-identical to the fault-free engine.

    [telemetry] records one {!Hbn_obs.Telemetry} sample per round —
    sends, deliveries, drops, bytes, live nodes, per-edge traversals —
    into a caller-owned collector ([begin_round]/[end_round] are driven
    here; protocol hooks like retransmit counting fire from [step] in
    between). Pass a fresh collector per run: rounds restart at 1.
    [msg_bytes] sizes one message's payload for the byte series
    (default: 1 abstract unit per message). Recording is pure
    bookkeeping on the side; behavior, stats and traces are unchanged.

    [monitor] watches the run for drift: at end of run the (folded)
    telemetry series are fed through the caller-owned
    {!Hbn_obs.Monitor} and the outcome carries [Some] verdict. With no
    [telemetry] collector a private one is recorded into just for the
    monitor, so [~monitor] alone is enough to get a health verdict.
    Like telemetry, monitoring never changes behavior, stats or
    traces.

    When {!Hbn_obs.Trace} is enabled, the run emits the
    [runtime.messages] / [runtime.rounds] counters and a final
    [runtime.quiescent] (or [runtime.round_limit]) event; under a
    non-empty plan it additionally emits one [fault] event per log entry
    and a [runtime.dropped] counter when any message was lost. *)

val run_async :
  ?max_rounds:int ->
  ?quiet_rounds:int ->
  ?faults:Faults.plan ->
  ?telemetry:Hbn_obs.Telemetry.t ->
  ?monitor:Hbn_obs.Monitor.t ->
  ?msg_bytes:('msg -> int) ->
  link:Hbn_event.Link.config ->
  Tree.t ->
  init:(int -> 'state) ->
  step:('state, 'msg) node_fn ->
  'state outcome
(** {!run} over a per-level link model. A message granted in round [r]
    over edge [e] transmits on the serialized directed link
    ({!Hbn_event.Link.transmit}, sized by [msg_bytes]) and is consumed
    at the first tick at or after its arrival — ticks remain the
    consecutive integers [1, 2, …], so round-counting timers inside
    [step] (e.g. stop-and-wait retransmission) work unchanged and
    [stats.rounds] is both the round count and the elapsed virtual time.
    Inboxes order deliveries by arrival time, ties by send order.

    Under [link = Hbn_event.Link.sync] every arrival is exactly one tick
    after the send and the outcome — states, stats, termination, fault
    log, telemetry — is bit-identical to {!run}; the test suite pins
    this equivalence over random topologies, workloads and fault plans.

    Fault windows keep their round semantics on the virtual-time axis
    (see {!Faults.round_of_time}): drop and cut schedules apply at the
    send round, and the target-down check moves from [round + 1] to the
    message's arrival time — the same instant under [sync]. Quiescence
    additionally requires an empty sky: silence with messages still in
    transit never terminates the run. *)
