(** Synchronous message-passing execution on a tree network.

    The distributed claims of the paper assume the standard synchronous
    model: in every round, each node reads the messages its neighbors
    sent in the previous round, updates local state, and sends at most
    one message per incident edge. This module is that model, generic in
    the per-node state and message types; {!Dist_nibble} runs the actual
    distributed nibble computation on it and the tests compare every
    node's local decision with the sequential algorithm.

    The engine enforces the model: a node may only address its tree
    neighbors, and sending two messages over one edge in one round is an
    error (that is what pipelining has to work around). *)

module Tree = Hbn_tree.Tree

type ('state, 'msg) node_fn =
  round:int ->
  node:int ->
  'state ->
  inbox:(int * 'msg) list ->
  'state * (int * 'msg) list
(** One round of one node: consumes the inbox (sender, message) pairs
    from the previous round and returns the new state plus outgoing
    (neighbor, message) pairs. *)

type stats = {
  rounds : int;
  messages : int;
  max_inbox : int;  (** largest inbox any node saw in one round *)
  max_node_messages : int;  (** most messages through a single node *)
}

val run :
  ?max_rounds:int ->
  Tree.t ->
  init:(int -> 'state) ->
  step:('state, 'msg) node_fn ->
  'state array * stats
(** Runs rounds until quiescence — a round in which no node sends
    anything — or [max_rounds] (default 100_000; reaching it raises
    [Failure]). Returns the final states. Raises [Invalid_argument] if a
    node addresses a non-neighbor or doubles up on an edge. *)
