module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload

type msg =
  | Sub of { obj : int; h : int; w : int }
  | Tot of { obj : int; total_h : int; total_w : int }
  | Min_cand of { obj : int; cand : int }  (* max_int = no candidate *)
  | Grav of { obj : int; gravity : int }  (* -1 = object unused *)

type node_state = {
  parent : int;  (* -1 at the root *)
  children : int list;
  (* per-object protocol state *)
  child_h : int array array;  (* indexed like [children] *)
  child_w : int array array;
  subs_missing : int array;
  h_sub : int array;
  w_sub : int array;
  total_h : int array;
  total_w : int array;
  child_min : int array array;
  mins_missing : int array;
  holds_copy : bool array;
  decided : bool array;
  (* outgoing queues, one per neighbor, drained one message per round *)
  outq : (int * msg Queue.t) list;
}

let enqueue st target msg = Queue.add msg (List.assoc target st.outq)

(* Candidacy: every component around v carries at most half the total. *)
let is_candidate st ~obj =
  let above = st.total_h.(obj) - st.h_sub.(obj) in
  let worst = Array.fold_left max above st.child_h.(obj) in
  2 * worst <= st.total_h.(obj)

let child_index st c =
  let rec go i = function
    | [] -> invalid_arg "Dist_nibble: unknown child"
    | x :: rest -> if x = c then i else go (i + 1) rest
  in
  go 0 st.children

let decide st ~node ~obj ~gravity =
  st.decided.(obj) <- true;
  if gravity < 0 then st.holds_copy.(obj) <- false
  else if gravity = node then st.holds_copy.(obj) <- true
  else begin
    (* Direction to the gravity center: the child whose subtree reported
       it as its candidate minimum, otherwise the parent. *)
    let via_child = ref (-1) in
    List.iteri
      (fun i c -> if st.child_min.(obj).(i) = gravity then via_child := c)
      st.children;
    let subtree_weight =
      if !via_child >= 0 then
        st.total_h.(obj) - st.child_h.(obj).(child_index st !via_child)
      else st.h_sub.(obj)
    in
    st.holds_copy.(obj) <- subtree_weight > st.total_w.(obj)
  end

let maybe_finish_min st ~node ~obj =
  if st.mins_missing.(obj) = 0 && st.total_h.(obj) > 0 && not st.decided.(obj)
  then begin
    let own = if is_candidate st ~obj then node else max_int in
    let best = Array.fold_left min own st.child_min.(obj) in
    if st.parent >= 0 then enqueue st st.parent (Min_cand { obj; cand = best })
    else begin
      (* The root elects the gravity center and starts the final wave. *)
      decide st ~node ~obj ~gravity:best;
      List.iter (fun c -> enqueue st c (Grav { obj; gravity = best })) st.children
    end
  end

let finish_sub st ~node ~obj =
  if st.parent >= 0 then
    enqueue st st.parent (Sub { obj; h = st.h_sub.(obj); w = st.w_sub.(obj) })
  else begin
    (* Root: the totals are now known; start the downward phase. *)
    st.total_h.(obj) <- st.h_sub.(obj);
    st.total_w.(obj) <- st.w_sub.(obj);
    List.iter
      (fun c ->
        enqueue st c
          (Tot { obj; total_h = st.total_h.(obj); total_w = st.total_w.(obj) }))
      st.children;
    if st.total_h.(obj) = 0 then begin
      (* Unused object: nobody holds a copy. *)
      decide st ~node ~obj ~gravity:(-1);
      List.iter (fun c -> enqueue st c (Grav { obj; gravity = -1 })) st.children
    end
    else maybe_finish_min st ~node ~obj
  end

let run w =
  let tree = Workload.tree w in
  let r = Tree.rooting tree in
  let objects = Workload.num_objects w in
  let init v =
    let children = Array.to_list r.Tree.children.(v) in
    let nc = List.length children in
    let neighbors =
      (if v = r.Tree.root then [] else [ r.Tree.parent.(v) ]) @ children
    in
    {
      parent = r.Tree.parent.(v);
      children;
      child_h = Array.init objects (fun _ -> Array.make nc 0);
      child_w = Array.init objects (fun _ -> Array.make nc 0);
      subs_missing = Array.make objects nc;
      h_sub = Array.init objects (fun obj -> Workload.weight w ~obj v);
      w_sub = Array.init objects (fun obj -> Workload.writes w ~obj v);
      total_h = Array.make objects (-1);
      total_w = Array.make objects (-1);
      child_min = Array.init objects (fun _ -> Array.make nc max_int);
      mins_missing = Array.make objects nc;
      holds_copy = Array.make objects false;
      decided = Array.make objects false;
      outq = List.map (fun u -> (u, Queue.create ())) neighbors;
    }
  in
  let step ~round ~node st ~inbox =
    (* Nodes without children (and the single-node network's root) kick
       off their convergecast contributions in round 1. *)
    if round = 1 then
      for obj = 0 to objects - 1 do
        if st.subs_missing.(obj) = 0 then finish_sub st ~node ~obj
      done;
    List.iter
      (fun (sender, msg) ->
        match msg with
        | Sub { obj; h; w = wr } ->
          let i = child_index st sender in
          st.child_h.(obj).(i) <- h;
          st.child_w.(obj).(i) <- wr;
          st.h_sub.(obj) <- st.h_sub.(obj) + h;
          st.w_sub.(obj) <- st.w_sub.(obj) + wr;
          st.subs_missing.(obj) <- st.subs_missing.(obj) - 1;
          if st.subs_missing.(obj) = 0 then finish_sub st ~node ~obj
        | Tot { obj; total_h; total_w } ->
          st.total_h.(obj) <- total_h;
          st.total_w.(obj) <- total_w;
          List.iter
            (fun c -> enqueue st c (Tot { obj; total_h; total_w }))
            st.children;
          maybe_finish_min st ~node ~obj
        | Min_cand { obj; cand } ->
          let i = child_index st sender in
          st.child_min.(obj).(i) <- cand;
          st.mins_missing.(obj) <- st.mins_missing.(obj) - 1;
          maybe_finish_min st ~node ~obj
        | Grav { obj; gravity } ->
          decide st ~node ~obj ~gravity;
          List.iter (fun c -> enqueue st c (Grav { obj; gravity })) st.children)
      inbox;
    (* Drain at most one queued message per incident edge. *)
    let sends =
      List.filter_map
        (fun (u, q) ->
          match Queue.take_opt q with Some m -> Some (u, m) | None -> None)
        st.outq
    in
    (st, sends)
  in
  let states, stats = Runtime.run tree ~init ~step in
  let result = Array.make objects [] in
  for obj = objects - 1 downto 0 do
    for v = Tree.n tree - 1 downto 0 do
      if not states.(v).decided.(obj) then
        failwith "Dist_nibble.run: a node never decided";
      if states.(v).holds_copy.(obj) then result.(obj) <- v :: result.(obj)
    done
  done;
  (result, stats)
