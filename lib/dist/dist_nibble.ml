module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Trace = Hbn_obs.Trace
module Telemetry = Hbn_obs.Telemetry

type msg =
  | Sub of { obj : int; h : int; w : int }
  | Tot of { obj : int; total_h : int; total_w : int }
  | Min_cand of { obj : int; cand : int }  (* max_int = no candidate *)
  | Grav of { obj : int; gravity : int }  (* -1 = object unused *)

type node_state = {
  parent : int;  (* -1 at the root *)
  children : int list;
  (* per-object protocol state *)
  child_h : int array array;  (* indexed like [children] *)
  child_w : int array array;
  subs_missing : int array;
  h_sub : int array;
  w_sub : int array;
  total_h : int array;
  total_w : int array;
  child_min : int array array;
  mins_missing : int array;
  holds_copy : bool array;
  decided : bool array;
  (* outgoing queues, one per neighbor, drained one message per round *)
  outq : (int * msg Queue.t) list;
}

let enqueue st target msg = Queue.add msg (List.assoc target st.outq)

(* Candidacy: every component around v carries at most half the total. *)
let is_candidate st ~obj =
  let above = st.total_h.(obj) - st.h_sub.(obj) in
  let worst = Array.fold_left max above st.child_h.(obj) in
  2 * worst <= st.total_h.(obj)

let child_index st c =
  let rec go i = function
    | [] -> invalid_arg "Dist_nibble: unknown child"
    | x :: rest -> if x = c then i else go (i + 1) rest
  in
  go 0 st.children

let decide st ~node ~obj ~gravity =
  st.decided.(obj) <- true;
  if gravity < 0 then st.holds_copy.(obj) <- false
  else if gravity = node then st.holds_copy.(obj) <- true
  else begin
    (* Direction to the gravity center: the child whose subtree reported
       it as its candidate minimum, otherwise the parent. *)
    let via_child = ref (-1) in
    List.iteri
      (fun i c -> if st.child_min.(obj).(i) = gravity then via_child := c)
      st.children;
    let subtree_weight =
      if !via_child >= 0 then
        st.total_h.(obj) - st.child_h.(obj).(child_index st !via_child)
      else st.h_sub.(obj)
    in
    st.holds_copy.(obj) <- subtree_weight > st.total_w.(obj)
  end

let maybe_finish_min st ~node ~obj =
  if st.mins_missing.(obj) = 0 && st.total_h.(obj) > 0 && not st.decided.(obj)
  then begin
    let own = if is_candidate st ~obj then node else max_int in
    let best = Array.fold_left min own st.child_min.(obj) in
    if st.parent >= 0 then enqueue st st.parent (Min_cand { obj; cand = best })
    else begin
      (* The root elects the gravity center and starts the final wave. *)
      decide st ~node ~obj ~gravity:best;
      List.iter (fun c -> enqueue st c (Grav { obj; gravity = best })) st.children
    end
  end

let finish_sub st ~node ~obj =
  if st.parent >= 0 then
    enqueue st st.parent (Sub { obj; h = st.h_sub.(obj); w = st.w_sub.(obj) })
  else begin
    (* Root: the totals are now known; start the downward phase. *)
    st.total_h.(obj) <- st.h_sub.(obj);
    st.total_w.(obj) <- st.w_sub.(obj);
    List.iter
      (fun c ->
        enqueue st c
          (Tot { obj; total_h = st.total_h.(obj); total_w = st.total_w.(obj) }))
      st.children;
    if st.total_h.(obj) = 0 then begin
      (* Unused object: nobody holds a copy. *)
      decide st ~node ~obj ~gravity:(-1);
      List.iter (fun c -> enqueue st c (Grav { obj; gravity = -1 })) st.children
    end
    else maybe_finish_min st ~node ~obj
  end

(* One protocol message, applied to the local state. Shared between the
   lossless step function and the fault-hardened one — the reliable link
   layer below delivers each payload exactly once and in order, so the
   handlers need no idempotence of their own. *)
let handle st ~node ~sender msg =
  match msg with
  | Sub { obj; h; w = wr } ->
    let i = child_index st sender in
    st.child_h.(obj).(i) <- h;
    st.child_w.(obj).(i) <- wr;
    st.h_sub.(obj) <- st.h_sub.(obj) + h;
    st.w_sub.(obj) <- st.w_sub.(obj) + wr;
    st.subs_missing.(obj) <- st.subs_missing.(obj) - 1;
    if st.subs_missing.(obj) = 0 then finish_sub st ~node ~obj
  | Tot { obj; total_h; total_w } ->
    st.total_h.(obj) <- total_h;
    st.total_w.(obj) <- total_w;
    List.iter (fun c -> enqueue st c (Tot { obj; total_h; total_w })) st.children;
    maybe_finish_min st ~node ~obj
  | Min_cand { obj; cand } ->
    let i = child_index st sender in
    st.child_min.(obj).(i) <- cand;
    st.mins_missing.(obj) <- st.mins_missing.(obj) - 1;
    maybe_finish_min st ~node ~obj
  | Grav { obj; gravity } ->
    decide st ~node ~obj ~gravity;
    List.iter (fun c -> enqueue st c (Grav { obj; gravity })) st.children

let neighbors_of (r : Tree.rooted) v =
  (if v = r.Tree.root then [] else [ r.Tree.parent.(v) ])
  @ Array.to_list r.Tree.children.(v)

let proto_init w (r : Tree.rooted) objects v =
  let children = Array.to_list r.Tree.children.(v) in
  let nc = List.length children in
  {
    parent = r.Tree.parent.(v);
    children;
    child_h = Array.init objects (fun _ -> Array.make nc 0);
    child_w = Array.init objects (fun _ -> Array.make nc 0);
    subs_missing = Array.make objects nc;
    h_sub = Array.init objects (fun obj -> Workload.weight w ~obj v);
    w_sub = Array.init objects (fun obj -> Workload.writes w ~obj v);
    total_h = Array.make objects (-1);
    total_w = Array.make objects (-1);
    child_min = Array.init objects (fun _ -> Array.make nc max_int);
    mins_missing = Array.make objects nc;
    holds_copy = Array.make objects false;
    decided = Array.make objects false;
    outq = List.map (fun u -> (u, Queue.create ())) (neighbors_of r v);
  }

(* Drain at most one queued message per incident edge. *)
let drain_one st =
  List.filter_map
    (fun (u, q) ->
      match Queue.take_opt q with Some m -> Some (u, m) | None -> None)
    st.outq

let collect_result tree objects states ~decided ~holds_copy =
  let result = Array.make objects [] in
  let undecided = ref 0 in
  for obj = objects - 1 downto 0 do
    for v = Tree.n tree - 1 downto 0 do
      if not (decided states.(v) obj) then incr undecided
      else if holds_copy states.(v) obj then result.(obj) <- v :: result.(obj)
    done
  done;
  (result, !undecided)

let run w =
  let tree = Workload.tree w in
  let r = Tree.rooting tree in
  let objects = Workload.num_objects w in
  let init = proto_init w r objects in
  let step ~round ~node st ~inbox =
    (* Nodes without children (and the single-node network's root) kick
       off their convergecast contributions in round 1. *)
    if round = 1 then
      for obj = 0 to objects - 1 do
        if st.subs_missing.(obj) = 0 then finish_sub st ~node ~obj
      done;
    List.iter (fun (sender, msg) -> handle st ~node ~sender msg) inbox;
    (st, drain_one st)
  in
  let out = Runtime.run tree ~init ~step in
  if out.Runtime.termination = Runtime.Round_limit then
    failwith "Runtime.run: round limit reached";
  let result, undecided =
    collect_result tree objects out.Runtime.states
      ~decided:(fun st obj -> st.decided.(obj))
      ~holds_copy:(fun st obj -> st.holds_copy.(obj))
  in
  if undecided > 0 then failwith "Dist_nibble.run: a node never decided";
  (result, out.Runtime.stats)

(* -- fault-hardened execution ------------------------------------------- *)

(* A reliable link: stop-and-wait with cumulative acknowledgements over
   one directed edge. Frames carry a sequence number, the highest
   delivered sequence of the reverse direction (piggybacked ack), and an
   optional payload; a frame with no payload is a pure ack. The sender
   keeps at most one frame in flight and retransmits it every [timeout]
   rounds until acked; the receiver delivers in sequence order exactly
   once and re-acks duplicates. *)
type frame = { seq : int; ack : int; payload : msg option }

type link = {
  mutable next_seq : int;  (* sequence for the next fresh payload *)
  mutable unacked : (int * msg) option;  (* the frame in flight *)
  mutable last_send : int;  (* round [unacked] was last transmitted *)
  mutable expected : int;  (* next sequence to deliver from the peer *)
  mutable ack_pending : bool;  (* delivered since our last frame out *)
}

type hardened_state = {
  p : node_state;
  links : (int * link) list;
  mutable started : bool;
      (* the convergecast kickoff ran — a flag rather than [round = 1] so
         a node crashed in round 1 still initiates after its restart *)
}

type robust_stats = {
  runtime : Runtime.stats;
  retransmissions : int;
  duplicates : int;
  pure_acks : int;
  undecided : int;
}

type outcome =
  | Complete of {
      placement : int list array;
      stats : robust_stats;
      log : Faults.event list;
    }
  | Degraded of {
      reason : [ `Round_limit | `Undecided ];
      partial : int list array;
      stats : robust_stats;
      log : Faults.event list;
    }

(* Frame sizing for the telemetry byte series: a link-layer header of
   two ints (seq + piggybacked ack), plus the payload's own fields. *)
let msg_payload_bytes = function
  | Sub _ | Tot _ -> 24  (* obj + two aggregates *)
  | Min_cand _ | Grav _ -> 16  (* obj + one value *)

let frame_bytes fr =
  16 + match fr.payload with None -> 0 | Some m -> msg_payload_bytes m

let run_robust ?(max_rounds = 100_000) ?(timeout = 4) ?(faults = Faults.none)
    ?telemetry ?monitor ?link w =
  if timeout < 1 then invalid_arg "Dist_nibble.run_robust: timeout must be >= 1";
  let tree = Workload.tree w in
  let r = Tree.rooting tree in
  let objects = Workload.num_objects w in
  let retransmissions = ref 0 and duplicates = ref 0 and pure_acks = ref 0 in
  (* Protocol-level telemetry hooks: these fire from inside [step],
     between the runtime's begin_round/end_round, so retransmits and
     duplicate suppressions land in the round they happened in. *)
  let tel_retransmit () =
    match telemetry with None -> () | Some t -> Telemetry.retransmit t
  and tel_duplicate () =
    match telemetry with None -> () | Some t -> Telemetry.duplicate t
  in
  let init v =
    {
      p = proto_init w r objects v;
      links =
        List.map
          (fun u ->
            ( u,
              {
                next_seq = 0;
                unacked = None;
                last_send = 0;
                expected = 0;
                ack_pending = false;
              } ))
          (neighbors_of r v);
      started = false;
    }
  in
  let step ~round ~node st ~inbox =
    if not st.started then begin
      st.started <- true;
      for obj = 0 to objects - 1 do
        if st.p.subs_missing.(obj) = 0 then finish_sub st.p ~node ~obj
      done
    end;
    List.iter
      (fun (sender, fr) ->
        let l = List.assoc sender st.links in
        (match l.unacked with
        | Some (s, _) when fr.ack >= s -> l.unacked <- None
        | _ -> ());
        match fr.payload with
        | None -> ()
        | Some m ->
          if fr.seq = l.expected then begin
            l.expected <- l.expected + 1;
            l.ack_pending <- true;
            handle st.p ~node ~sender m
          end
          else begin
            (* A retransmit of something already delivered: the ack back
               must have been lost, so re-ack. *)
            incr duplicates;
            tel_duplicate ();
            l.ack_pending <- true
          end)
      inbox;
    let sends =
      List.filter_map
        (fun (peer, l) ->
          let frame seq payload =
            l.ack_pending <- false;
            Some (peer, { seq; ack = l.expected - 1; payload })
          in
          match l.unacked with
          | Some (s, m) ->
            if round - l.last_send >= timeout then begin
              incr retransmissions;
              tel_retransmit ();
              l.last_send <- round;
              frame s (Some m)
            end
            else if l.ack_pending then begin
              incr pure_acks;
              frame (-1) None
            end
            else None
          | None -> (
            match Queue.take_opt (List.assoc peer st.p.outq) with
            | Some m ->
              let s = l.next_seq in
              l.next_seq <- s + 1;
              l.unacked <- Some (s, m);
              l.last_send <- round;
              frame s (Some m)
            | None ->
              if l.ack_pending then begin
                incr pure_acks;
                frame (-1) None
              end
              else None))
        st.links
    in
    (st, sends)
  in
  let out =
    (* The stop-and-wait timers count rounds; the async engine keeps its
       ticks on the integer virtual times, so [timeout] means the same
       thing under both entry points. *)
    match link with
    | None ->
      Runtime.run ~max_rounds ~quiet_rounds:(timeout + 1) ~faults ?telemetry
        ?monitor ~msg_bytes:frame_bytes tree ~init ~step
    | Some link ->
      Runtime.run_async ~max_rounds ~quiet_rounds:(timeout + 1) ~faults
        ?telemetry ?monitor ~msg_bytes:frame_bytes ~link tree ~init ~step
  in
  let placement, undecided =
    collect_result tree objects out.Runtime.states
      ~decided:(fun st obj -> st.p.decided.(obj))
      ~holds_copy:(fun st obj -> st.p.holds_copy.(obj))
  in
  let stats =
    {
      runtime = out.Runtime.stats;
      retransmissions = !retransmissions;
      duplicates = !duplicates;
      pure_acks = !pure_acks;
      undecided;
    }
  in
  if Trace.enabled () && !retransmissions > 0 then
    Trace.count ~by:!retransmissions "dist.retransmissions";
  match (out.Runtime.termination, undecided) with
  | Runtime.Quiescent, 0 ->
    Complete { placement; stats; log = out.Runtime.faults }
  | Runtime.Round_limit, _ ->
    Degraded
      { reason = `Round_limit; partial = placement; stats;
        log = out.Runtime.faults }
  | Runtime.Quiescent, _ ->
    Degraded
      { reason = `Undecided; partial = placement; stats;
        log = out.Runtime.faults }
