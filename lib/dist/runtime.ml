module Tree = Hbn_tree.Tree
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink
module Telemetry = Hbn_obs.Telemetry
module Monitor = Hbn_obs.Monitor
module Engine = Hbn_event.Engine
module Link = Hbn_event.Link

type ('state, 'msg) node_fn =
  round:int ->
  node:int ->
  'state ->
  inbox:(int * 'msg) list ->
  'state * (int * 'msg) list

type stats = {
  rounds : int;
  messages : int;
  max_inbox : int;
  max_node_messages : int;
}

type termination = Quiescent | Round_limit

type 'state outcome = {
  states : 'state array;
  stats : stats;
  termination : termination;
  faults : Faults.event list;
  health : Monitor.verdict option;
}

(* The engine-driven core behind both entry points. Nodes step at the
   integer ticks of a discrete-event engine; a message granted at tick
   [r] is a delivery event at its arrival time (rank 0, so it lands
   before the tick that consumes it) and is read at the first tick at or
   after arrival. Without a link model every arrival is [now + 1] and
   the ticks are exactly the rounds of the classic synchronous loop, bit
   for bit; with one, arrivals come from the serialized per-level
   {!Link.transmit} clock. Ticks stay consecutive integers either way —
   timers in step functions keep counting rounds — so the round axis
   {e is} the virtual-time axis and the outcome type needs no second
   clock. *)
let run_core ~max_rounds ~quiet_rounds ~faults ~telemetry ~monitor ~msg_bytes
    ~link tree ~init ~step =
  if quiet_rounds < 1 then invalid_arg "Runtime.run: quiet_rounds must be >= 1";
  let n = Tree.n tree in
  (* A monitor needs a series to watch: with no caller-owned collector,
     record into a private one just for the end-of-run ingest. *)
  let telemetry =
    match (telemetry, monitor) with
    | None, Some _ ->
      Some (Telemetry.create ~num_edges:(Tree.num_edges tree) ())
    | _ -> telemetry
  in
  (* An empty plan and no plan are the same run, bit for bit. *)
  let plan =
    match faults with
    | Some p when not (Faults.is_empty p) -> Some p
    | _ -> None
  in
  let quiet_after = match plan with None -> 0 | Some p -> Faults.quiet_after p in
  let attached = Option.map (fun c -> Link.attach c tree) link in
  let states = Array.init n init in
  (* Per-node inbox, newest delivery first; reversed at consumption, so
     the step function sees deliveries in arrival order. *)
  let inboxes = Array.make n [] in
  let through = Array.make n 0 in
  let rounds = ref 0 and messages = ref 0 and max_inbox = ref 0 in
  let termination = ref Quiescent in
  let silent = ref 0 in
  let in_flight = ref 0 in
  (* Once the run is over — quiescent or out of rounds — deliveries
     still draining from the engine must not revive the tick chain. *)
  let stopped = ref false in
  let log = ref [] (* reverse chronological *) in
  let record round kind = log := { Faults.round; kind } :: !log in
  (* Per-node neighbor membership, precomputed once: [edge_of.(v)] maps a
     neighbor [u] to the id of the edge {v,u}. Sends used to re-scan
     [Tree.neighbors] per message — O(degree), quadratic over a round on a
     star — and the fault layer needs the edge id anyway. *)
  let edge_of =
    Array.init n (fun v ->
        let nbrs = Tree.neighbors tree v in
        let tbl = Hashtbl.create (Array.length nbrs) in
        Array.iter (fun (u, e) -> Hashtbl.add tbl u e) nbrs;
        tbl)
  in
  (* Crash/outage window transitions, logged as they open and close. *)
  let down_prev = Array.make n false in
  let cut_prev = Array.make (Tree.num_edges tree) false in
  let log_transitions p round =
    for v = 0 to n - 1 do
      let d = Faults.node_down p ~round ~node:v in
      if d <> down_prev.(v) then
        record round
          (if d then Faults.Crashed { node = v }
           else Faults.Restarted { node = v });
      down_prev.(v) <- d
    done;
    for e = 0 to Tree.num_edges tree - 1 do
      let c = Faults.edge_cut p ~round ~edge:e in
      if c <> cut_prev.(e) then
        record round
          (if c then Faults.Cut { edge = e } else Faults.Restored { edge = e });
      cut_prev.(e) <- c
    done
  in
  let engine = Engine.create () in
  let tick_scheduled = Hashtbl.create 64 in
  (* Ticks run at rank 1 so same-time deliveries (rank 0) land first: a
     tick always sees every message that arrived by its time. *)
  let rec ensure_tick time =
    if not (Hashtbl.mem tick_scheduled time) then begin
      Hashtbl.add tick_scheduled time ();
      Engine.at engine ~rank:1 ~time tick
    end
  and tick () =
    let now = Engine.now engine in
    incr rounds;
    let round = int_of_float now in
    (match telemetry with
    | None -> ()
    | Some tel -> Telemetry.begin_round ~vtime:now tel ~round);
    (match plan with None -> () | Some p -> log_transitions p round);
    let any_sent = ref false in
    let live = ref n in
    for v = 0 to n - 1 do
      let v_down =
        match plan with
        | None -> false
        | Some p -> Faults.node_down p ~round ~node:v
      in
      if v_down then begin
        (* A crashed node neither steps nor receives; its state is
           frozen. Its inbox is empty by construction: messages to it
           were dropped at send time. *)
        decr live;
        inboxes.(v) <- []
      end
      else begin
        let inbox = List.rev inboxes.(v) in
        inboxes.(v) <- [];
        let k = List.length inbox in
        if k > !max_inbox then max_inbox := k;
        let state, sends = step ~round ~node:v states.(v) ~inbox in
        states.(v) <- state;
        let used = Hashtbl.create 4 in
        List.iter
          (fun (target, msg) ->
            match Hashtbl.find_opt edge_of.(v) target with
            | None ->
              invalid_arg
                (Printf.sprintf "Runtime.run: node %d is no neighbor of %d"
                   target v)
            | Some edge ->
              if Hashtbl.mem used target then
                invalid_arg
                  (Printf.sprintf
                     "Runtime.run: node %d sent twice over edge to %d in \
                      round %d"
                     v target round);
              Hashtbl.add used target ();
              any_sent := true;
              incr messages;
              through.(v) <- through.(v) + 1;
              through.(target) <- through.(target) + 1;
              (match telemetry with
              | None -> ()
              | Some tel -> Telemetry.send tel ~edge ~bytes:(msg_bytes msg));
              (* The serialized transmission happens whether or not a
                 fault then swallows the message — a dropped frame still
                 occupied its link. *)
              let arrival =
                match attached with
                | None -> now +. 1.
                | Some l ->
                  Link.transmit l ~now ~edge ~src:v ~bytes:(msg_bytes msg)
              in
              let lost =
                match plan with
                | None -> false
                | Some p ->
                  Faults.edge_cut p ~round ~edge
                  || Faults.drops p ~round ~edge ~src:v
                  || Faults.node_down_at p ~time:arrival ~node:target
              in
              if lost then begin
                (match telemetry with
                | None -> ()
                | Some tel -> Telemetry.drop tel);
                record round (Faults.Dropped { edge; src = v; dst = target })
              end
              else begin
                incr in_flight;
                Engine.at engine ~time:arrival (fun () ->
                    decr in_flight;
                    inboxes.(target) <- (v, msg) :: inboxes.(target);
                    (* The first tick at or after the arrival consumes
                       it — unless the run already ended. *)
                    if not !stopped then ensure_tick (Float.ceil arrival))
              end)
          sends
      end
    done;
    (match telemetry with
    | None -> ()
    | Some tel -> Telemetry.end_round tel ~live_nodes:!live);
    if !any_sent then silent := 0 else incr silent;
    (* Drop-tolerant termination detection: silence only proves
       quiescence once every pending retransmit timer would have fired
       ([quiet_rounds] consecutive silent rounds), no crash or outage
       window can still wake a node up ([quiet_after]), and nothing is
       still in transit on a slow link. With no plan and the default
       window of 1 this is the classic rule: one round without sends. *)
    if !silent >= quiet_rounds && round >= quiet_after && !in_flight = 0 then
      stopped := true
    else if round >= max_rounds then begin
      termination := Round_limit;
      stopped := true
    end
    else ensure_tick (now +. 1.)
  in
  if max_rounds < 1 then termination := Round_limit else ensure_tick 1.;
  Engine.drain engine;
  let stats =
    {
      rounds = !rounds;
      messages = !messages;
      max_inbox = !max_inbox;
      max_node_messages = Array.fold_left max 0 through;
    }
  in
  let faults_log = List.rev !log in
  if Trace.enabled () then begin
    Trace.count ~by:stats.messages "runtime.messages";
    Trace.count ~by:stats.rounds "runtime.rounds";
    Trace.event
      (match !termination with
      | Quiescent -> "runtime.quiescent"
      | Round_limit -> "runtime.round_limit")
      ~attrs:
        [
          ("rounds", Sink.Int stats.rounds);
          ("messages", Sink.Int stats.messages);
          ("max_inbox", Sink.Int stats.max_inbox);
          ("max_node_messages", Sink.Int stats.max_node_messages);
        ];
    if plan <> None then begin
      List.iter (fun ev -> Trace.emit (Faults.sink_event ev)) faults_log;
      let dropped =
        List.length
          (List.filter
             (fun ev ->
               match ev.Faults.kind with Faults.Dropped _ -> true | _ -> false)
             faults_log)
      in
      if dropped > 0 then Trace.count ~by:dropped "runtime.dropped"
    end
  end;
  let health =
    Option.map
      (fun mon ->
        (match telemetry with
        | Some tel -> Monitor.ingest mon tel
        | None -> ());
        Monitor.health mon)
      monitor
  in
  { states; stats; termination = !termination; faults = faults_log; health }

let run ?(max_rounds = 100_000) ?(quiet_rounds = 1) ?faults ?telemetry ?monitor
    ?(msg_bytes = fun _ -> 1) tree ~init ~step =
  run_core ~max_rounds ~quiet_rounds ~faults ~telemetry ~monitor ~msg_bytes
    ~link:None tree ~init ~step

let run_async ?(max_rounds = 100_000) ?(quiet_rounds = 1) ?faults ?telemetry
    ?monitor ?(msg_bytes = fun _ -> 1) ~link tree ~init ~step =
  run_core ~max_rounds ~quiet_rounds ~faults ~telemetry ~monitor ~msg_bytes
    ~link:(Some link) tree ~init ~step
