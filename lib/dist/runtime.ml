module Tree = Hbn_tree.Tree
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink

type ('state, 'msg) node_fn =
  round:int ->
  node:int ->
  'state ->
  inbox:(int * 'msg) list ->
  'state * (int * 'msg) list

type stats = {
  rounds : int;
  messages : int;
  max_inbox : int;
  max_node_messages : int;
}

let run ?(max_rounds = 100_000) tree ~init ~step =
  let n = Tree.n tree in
  let states = Array.init n init in
  let inboxes = Array.make n [] in
  let next_inboxes = Array.make n [] in
  let through = Array.make n 0 in
  let rounds = ref 0 and messages = ref 0 and max_inbox = ref 0 in
  let quiescent = ref false in
  let is_neighbor v u =
    Array.exists (fun (x, _) -> x = u) (Tree.neighbors tree v)
  in
  while not !quiescent do
    if !rounds >= max_rounds then failwith "Runtime.run: round limit reached";
    incr rounds;
    let any_sent = ref false in
    for v = 0 to n - 1 do
      let inbox = List.rev inboxes.(v) in
      inboxes.(v) <- [];
      let k = List.length inbox in
      if k > !max_inbox then max_inbox := k;
      let state, sends = step ~round:!rounds ~node:v states.(v) ~inbox in
      states.(v) <- state;
      let used = Hashtbl.create 4 in
      List.iter
        (fun (target, msg) ->
          if not (is_neighbor v target) then
            invalid_arg
              (Printf.sprintf "Runtime.run: node %d is no neighbor of %d"
                 target v);
          if Hashtbl.mem used target then
            invalid_arg
              (Printf.sprintf
                 "Runtime.run: node %d sent twice over edge to %d in round %d"
                 v target !rounds);
          Hashtbl.add used target ();
          any_sent := true;
          incr messages;
          through.(v) <- through.(v) + 1;
          through.(target) <- through.(target) + 1;
          next_inboxes.(target) <- (v, msg) :: next_inboxes.(target))
        sends
    done;
    for v = 0 to n - 1 do
      inboxes.(v) <- next_inboxes.(v);
      next_inboxes.(v) <- []
    done;
    if not !any_sent then quiescent := true
  done;
  let stats =
    {
      rounds = !rounds;
      messages = !messages;
      max_inbox = !max_inbox;
      max_node_messages = Array.fold_left max 0 through;
    }
  in
  if Trace.enabled () then begin
    Trace.count ~by:stats.messages "runtime.messages";
    Trace.count ~by:stats.rounds "runtime.rounds";
    Trace.event "runtime.quiescent"
      ~attrs:
        [
          ("rounds", Sink.Int stats.rounds);
          ("messages", Sink.Int stats.messages);
          ("max_inbox", Sink.Int stats.max_inbox);
          ("max_node_messages", Sink.Int stats.max_node_messages);
        ]
  end;
  (states, stats)
