(** Deterministic, seeded fault plans for the synchronous runtime.

    A plan describes everything that can go wrong in a {!Runtime.run}:

    - {b message drops}: every (round, edge, sender) triple is dropped
      independently with probability [drop] during rounds
      [1 .. drop_until], decided by a stateless hash of the plan seed —
      the schedule is a pure function, so queries in any order (and from
      any domain) agree bit-for-bit;
    - {b node crashes}: a crashed node does not execute its step function
      and receives nothing; its local state is frozen (crash-recovery
      with stable storage) and it resumes on restart;
    - {b edge outages}: every message crossing a cut edge is dropped for
      the duration of the window.

    All intervals are inclusive round ranges. Plans are plain data:
    building one performs no side effects, and the same plan replays the
    same faults on every run. Faults are an extension beyond the SPAA
    2000 model — the paper's network is perfectly synchronous and
    lossless — so the zero-fault path of the runtime is kept
    bit-identical and every fault is logged as an {!event}. *)

type kind =
  | Dropped of { edge : int; src : int; dst : int }
      (** a message crossing [edge] from [src] to [dst] was lost *)
  | Crashed of { node : int }
  | Restarted of { node : int }
  | Cut of { edge : int }  (** outage window opened *)
  | Restored of { edge : int }  (** outage window closed *)

type event = { round : int; kind : kind }
(** One logged fault occurrence. [round] is the runtime round in which
    the fault took effect (for [Dropped], the round the message was
    sent). *)

type plan

val none : plan
(** The empty plan: no drops, no crashes, no outages. Running under
    [none] is bit-identical to running without a plan. *)

val make :
  ?seed:int ->
  ?drop:float ->
  ?drop_until:int ->
  ?crashes:(int * int * int) list ->
  ?cuts:(int * int * int) list ->
  unit ->
  plan
(** [make ()] is {!none}. [drop] (default 0, must be in [\[0, 1\]]) is
    the per-message drop probability applied to rounds
    [1 .. drop_until] (default 64). [crashes] are
    [(node, from_round, to_round)] and [cuts] are
    [(edge, from_round, to_round)] inclusive windows; [to_round =
    max_int] means "forever". Raises [Invalid_argument] on malformed
    windows or probabilities. *)

val of_spec : ?seed:int -> string -> (plan, string) result
(** Parses the CLI fault-spec grammar: comma-separated clauses

    {v
    drop=P           per-message drop probability in [0, 1]
    until=R          last round the drop schedule applies to (default 64)
    crash=N:A-B      node N is down for rounds A..B (B = "inf" allowed)
    cut=E:A-B        edge E is down for rounds A..B (B = "inf" allowed)
    v}

    e.g. ["drop=0.2,until=40,crash=3:5-15,cut=2:10-14"]. [seed]
    (default 0) keys the drop schedule. Errors name the offending
    clause by index and character offset, e.g.
    ["clause 2 at char 9: bad drop probability \"2.0\" …"]. An empty
    spec is rejected — an explicitly fault-free plan is spelled
    ["drop=0"]. *)

val to_spec : plan -> string
(** Renders a plan back into the {!of_spec} grammar (canonical clause
    order); [of_spec ~seed:(seed p) (to_spec p)] reproduces [p]. *)

val is_empty : plan -> bool

val seed : plan -> int

val quiet_after : plan -> int
(** The first round from which no node is (or will again be) crashed and
    no edge cut — the structural horizon after which silence implies
    termination. 0 for plans without crash or cut windows (drops need no
    horizon: they only affect messages actually sent). [max_int] when
    some window never closes. *)

(** {1 Queries} (pure; used by the runtime per round) *)

val drops : plan -> round:int -> edge:int -> src:int -> bool
(** Whether the message sent in [round] over [edge] by [src] is dropped
    by the drop schedule. *)

val node_down : plan -> round:int -> node:int -> bool

val edge_cut : plan -> round:int -> edge:int -> bool

(** {1 Virtual-time queries}

    The event-driven runtime ({!Runtime.run_async}) measures time on a
    continuous virtual axis whose integer ticks are the rounds of the
    synchronous engine. Plans keep their round-window semantics on that
    axis: a window [A..B] covers the half-open virtual-time interval
    [(A-1, B]], so [round_of_time] is [ceil], integer times land in
    their own round, and on the synchronous regime (all times integral)
    the shims below are bit-identical to the round queries. *)

val round_of_time : float -> int
(** [ceil time] as a round number ([max_int] on overflow). Raises
    [Invalid_argument] on NaN or negative times. *)

val drops_at : plan -> time:float -> edge:int -> src:int -> bool

val node_down_at : plan -> time:float -> node:int -> bool

val edge_cut_at : plan -> time:float -> edge:int -> bool

(** {1 Rendering} *)

val describe : event -> string
(** One human-readable line, e.g. ["round 7: crash of node 3"]. *)

val sink_event : event -> Hbn_obs.Sink.event
(** The [Fault] observability event for one log entry (name
    ["runtime.fault"]), ready for {!Hbn_obs.Trace.emit}. *)
