(** The nibble placement computed by the network itself.

    Runs the distributed nibble computation on the synchronous
    message-passing model of {!Runtime}: a pipelined convergecast of
    per-object subtree weights, a broadcast of totals and write
    contentions, a second convergecast electing the smallest-index center
    of gravity, and a final broadcast after which {e every node decides
    locally} whether it holds a copy of each object — exactly the
    protocol sketched in Section 3.1 of the paper ("the placement can be
    calculated efficiently by the processors of the tree network in a
    distributed fashion", with pipelining over the objects).

    The tests assert that the local decisions coincide with the
    sequential {!Hbn_nibble.Nibble.place_all} on every instance, and that
    the round count stays [O(|X| + height)] — the pipelined bound. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload

val run : Workload.t -> int list array * Runtime.stats
(** [run w] executes the protocol; result [i] holds the nodes that
    decided to keep a copy of object [i] (ascending). *)

(** {1 Fault-hardened execution}

    {!run} assumes the synchronous model delivers every message. Under a
    {!Faults.plan} it would wedge (a lost [Sub] stalls the convergecast
    forever), so {!run_robust} wraps the identical protocol logic in a
    reliable link layer: per-edge stop-and-wait with piggybacked
    cumulative acknowledgements, retransmission after [timeout] silent
    rounds, and in-order exactly-once delivery to the protocol handlers.
    Crashed nodes resume from their frozen state on restart (the model's
    stand-in for stable storage) and re-initiate their convergecast
    contributions if the crash preempted round 1. *)

type robust_stats = {
  runtime : Runtime.stats;
  retransmissions : int;  (** frames re-sent after a timeout *)
  duplicates : int;  (** already-delivered frames received again *)
  pure_acks : int;  (** frames carrying only an acknowledgement *)
  undecided : int;  (** (node, object) pairs still open at the end *)
}

type outcome =
  | Complete of {
      placement : int list array;
      stats : robust_stats;
      log : Faults.event list;
    }
      (** Every node decided every object. Under bounded faults the
          placement equals the one {!run} computes on the pristine
          network — the tests and [simulate --faults] check it against
          the sequential nibble. *)
  | Degraded of {
      reason : [ `Round_limit | `Undecided ];
      partial : int list array;
      stats : robust_stats;
      log : Faults.event list;
    }
      (** The run ended without full agreement — the round budget ran
          out, or quiescence was reached with open decisions (a
          permanently crashed node). [partial] holds what was decided. *)

val run_robust :
  ?max_rounds:int ->
  ?timeout:int ->
  ?faults:Faults.plan ->
  ?telemetry:Hbn_obs.Telemetry.t ->
  ?monitor:Hbn_obs.Monitor.t ->
  ?link:Hbn_event.Link.config ->
  Workload.t ->
  outcome
(** [run_robust w] executes the hardened protocol under [faults]
    (default {!Faults.none}). [timeout] (default 4) is the retransmit
    interval in rounds; the quiescence window is [timeout + 1] so a lull
    while retransmit timers tick is not mistaken for completion. Never
    raises on faults — any ending is reported as an {!outcome}.
    [Invalid_argument] only for [timeout < 1].

    [telemetry] threads a fresh {!Hbn_obs.Telemetry} collector through
    the underlying {!Runtime.run}: per-round sends/deliveries/drops and
    per-edge traversals from the engine, frame bytes from a sizer that
    charges a 16-byte link header plus the payload's fields, and
    retransmissions/duplicate-suppressions attributed to the round they
    occur in. [monitor] is handed to the runtime the same way: the
    caller-owned {!Hbn_obs.Monitor} ingests the folded series at end of
    run and can then be asked for alerts and a health verdict.

    [link] runs the protocol on the event-driven engine
    ({!Runtime.run_async}) instead of the synchronous one: frames take
    [bytes/B + D] virtual time per their level's clause and serialize on
    busy links, while the stop-and-wait timers keep counting integer
    ticks, so [timeout] retains its meaning. Passing
    [Hbn_event.Link.sync] — or nothing — reproduces the synchronous run
    bit for bit. *)
