(** The nibble placement computed by the network itself.

    Runs the distributed nibble computation on the synchronous
    message-passing model of {!Runtime}: a pipelined convergecast of
    per-object subtree weights, a broadcast of totals and write
    contentions, a second convergecast electing the smallest-index center
    of gravity, and a final broadcast after which {e every node decides
    locally} whether it holds a copy of each object — exactly the
    protocol sketched in Section 3.1 of the paper ("the placement can be
    calculated efficiently by the processors of the tree network in a
    distributed fashion", with pipelining over the objects).

    The tests assert that the local decisions coincide with the
    sequential {!Hbn_nibble.Nibble.place_all} on every instance, and that
    the round count stays [O(|X| + height)] — the pipelined bound. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload

val run : Workload.t -> int list array * Runtime.stats
(** [run w] executes the protocol; result [i] holds the nodes that
    decided to keep a copy of object [i] (ascending). *)
